package dss

import (
	"testing"

	"oltpsim/internal/core"
	"oltpsim/internal/kernel"
	"oltpsim/internal/memref"
)

func TestParamsValidate(t *testing.T) {
	p := TestParams(0)
	if err := p.Validate(); err == nil {
		t.Fatal("0 CPUs accepted")
	}
	p = TestParams(8)
	p.CoresPerChip = 3
	if err := p.Validate(); err == nil {
		t.Fatal("non-dividing cores accepted")
	}
	if err := TestParams(8).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestScanStreamShape(t *testing.T) {
	h := MustNewHarness(TestParams(1))
	var loads, stores, ifetch int
	now := uint64(0)
	for i := 0; i < 20_000; i++ {
		r, st, wake := h.Next(0, now)
		switch st {
		case kernel.StatusRef:
			switch r.Kind {
			case memref.IFetch:
				ifetch++
			case memref.Load:
				loads++
			case memref.Store:
				stores++
			}
			now += uint64(r.Instrs) + 1
		case kernel.StatusIdle:
			now = wake
		default:
			t.Fatal("scan stream ended")
		}
	}
	if loads == 0 || ifetch == 0 {
		t.Fatal("degenerate scan stream")
	}
	// Scans are read-dominated: stores only aggregate.
	if stores*10 > loads {
		t.Fatalf("too many stores for a scan: %d stores vs %d loads", stores, loads)
	}
	if h.Committed() == 0 {
		t.Fatal("no scan units completed")
	}
}

// TestDSSInsensitivity is the paper's framing claim: DSS barely cares about
// L2 organization, and integration helps it much less than OLTP.
func TestDSSInsensitivity(t *testing.T) {
	run := func(cfg core.Config) float64 {
		p := TestParams(cfg.Processors)
		p.CoresPerChip = cfg.CoresPerChip
		sys := core.MustNewSystem(cfg, MustNewHarness(p))
		res := sys.Run(50, 300)
		return res.CyclesPerTxn()
	}

	// L2 organization insensitivity (uniprocessor): 1M 1-way vs 8M 4-way
	// within a few percent.
	small := run(core.BaseConfig(1, 1*core.MB, 1))
	big := run(core.BaseConfig(1, 8*core.MB, 4))
	if ratio := small / big; ratio > 1.15 {
		t.Fatalf("DSS sensitive to L2 organization: 1M1w/8M4w = %.2f", ratio)
	}

	// Integration gain well below OLTP's ~1.35x.
	base := run(core.BaseConfig(4, 8*core.MB, 1))
	full := run(core.FullConfig(4, 2*core.MB, 8))
	gain := base / full
	if gain < 1.0 || gain > 1.25 {
		t.Fatalf("DSS integration gain %.2f; expected modest (paper: DSS relatively insensitive)", gain)
	}
}

// TestDSSNoDirtySharing: scans never create 3-hop misses.
func TestDSSNoDirtySharing(t *testing.T) {
	cfg := core.BaseConfig(4, 2*core.MB, 8)
	sys := core.MustNewSystem(cfg, MustNewHarness(TestParams(4)))
	res := sys.Run(20, 200)
	if res.Miss.RemoteDirty() > res.Miss.Total()/100 {
		t.Fatalf("scan workload produced %d dirty 3-hop misses of %d",
			res.Miss.RemoteDirty(), res.Miss.Total())
	}
	if res.Miss.RemoteClean() == 0 {
		t.Fatal("no 2-hop misses despite round-robin placement")
	}
}
