// Package dss implements the contrast workload the paper uses to motivate
// its focus on OLTP: decision support (DSS). The paper's introduction notes
// that "applications such as decision support (DSS) and Web index search
// have been shown to be relatively insensitive to memory system
// performance [1]" — OLTP is the hard case. This package makes that
// contrast measurable inside the same simulator: sequential scan queries
// over the account table of the same TPC-B database, with a small, tight
// instruction loop, no inter-processor write sharing, and streaming data
// references that no realistic L2 can capture.
//
// The expected (and measured — see BenchmarkExtensionDSS) behaviour:
//
//   - L2 size and associativity barely matter (the scan footprint streams);
//   - there are essentially no 3-hop misses (read-only data is never dirty
//     in another cache);
//   - chip-level integration helps far less than for OLTP, because the only
//     lever is the modest 2-hop latency reduction.
package dss

import (
	"fmt"

	"oltpsim/internal/kernel"
	"oltpsim/internal/memref"
	"oltpsim/internal/sim"
	"oltpsim/internal/tpcb"
)

// Params configures the DSS workload.
type Params struct {
	// CPUs is the number of cores.
	CPUs int
	// CoresPerChip groups cores onto chips (as in the OLTP harness).
	CoresPerChip int
	// ScannersPerCPU is the query parallelism per processor; scans are
	// CPU-light, so 1-2 suffice.
	ScannersPerCPU int
	// Seed drives row sampling.
	Seed uint64
	// TPCB sizes the database being scanned.
	TPCB tpcb.Config
	// RowLinesPerBlock is how many row lines a scan touches per 8 KB block
	// (predicate evaluation reads a sample of the rows' lines).
	RowLinesPerBlock int
	// BlocksPerUnit is the scan length counted as one unit of work (the
	// "transaction" equivalent for the Run protocol).
	BlocksPerUnit int
	// SchedQuantum is the scheduler time slice in references.
	SchedQuantum int
}

// DefaultParams returns a paper-scale scan workload.
func DefaultParams(cpus int) Params {
	return Params{
		CPUs:             cpus,
		ScannersPerCPU:   2,
		Seed:             0xd55_0217,
		TPCB:             tpcb.DefaultConfig(),
		RowLinesPerBlock: 16,
		BlocksPerUnit:    32,
		SchedQuantum:     40_000,
	}
}

// TestParams returns a scaled-down variant. The scanned table must still
// exceed every cache under study (64 MB, with scanner partitions 32 MB apart, vs. at most 8 MB of L2), or the
// workload stops streaming and the DSS insensitivity result degenerates.
func TestParams(cpus int) Params {
	p := DefaultParams(cpus)
	p.TPCB = tpcb.SmallConfig()
	p.TPCB.AccountsPerBranch = 160_000
	p.TPCB.BufferFrames = p.TPCB.TotalBlocks() + 256
	p.BlocksPerUnit = 8
	return p
}

// Validate reports parameter errors.
func (p Params) Validate() error {
	if p.CPUs <= 0 || p.ScannersPerCPU <= 0 || p.RowLinesPerBlock <= 0 || p.BlocksPerUnit <= 0 {
		return fmt.Errorf("dss: non-positive parameter")
	}
	if p.CoresPerChip < 0 || (p.CoresPerChip > 1 && p.CPUs%p.CoresPerChip != 0) {
		return fmt.Errorf("dss: %d CPUs do not divide into chips of %d", p.CPUs, p.CoresPerChip)
	}
	return p.TPCB.Validate()
}

// spaceAlloc is the DSS harness's address-space builder (shared regions
// round-robin, private regions node-local), mirroring the OLTP layout.
type spaceAlloc struct {
	as      *kernel.AddressSpace
	next    uint64
	prvNext uint64
}

func pageAlign(v uint64) uint64 {
	const p = memref.PageBytes
	return (v + p - 1) &^ uint64(p-1)
}

// Alloc implements tpcb.Allocator.
func (a *spaceAlloc) Alloc(name string, size uint64, kind tpcb.RegionKind) uint64 {
	a.next = pageAlign(a.next)
	base := a.next
	a.next += pageAlign(size)
	a.as.AddRegion(kernel.Region{
		Name: name, Base: base, Size: pageAlign(size),
		Placement: kernel.RoundRobinPages, Code: kind == tpcb.KindCode,
	})
	return base
}

func (a *spaceAlloc) allocPrivate(name string, size uint64, node int) uint64 {
	a.prvNext = pageAlign(a.prvNext)
	base := a.prvNext
	a.prvNext += pageAlign(size)
	a.as.AddRegion(kernel.Region{
		Name: name, Base: base, Size: pageAlign(size),
		Placement: kernel.NodeLocal, Node: node,
	})
	return base
}

// Harness implements core.Workload for scan queries.
type Harness struct {
	p     Params
	chips int
	as    *kernel.AddressSpace
	sched *kernel.Scheduler
	eng   *tpcb.Engine

	units    uint64
	scanCode *tpcb.CodeFn
	aggCode  *tpcb.CodeFn
}

// NewHarness builds the scan workload over a prewarmed database.
func NewHarness(p Params) (*Harness, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	cores := p.CoresPerChip
	if cores == 0 {
		cores = 1
	}
	h := &Harness{p: p, chips: p.CPUs / cores}
	h.as = kernel.NewAddressSpace(h.chips)
	alloc := &spaceAlloc{as: h.as, next: 64 << 20, prvNext: 64 << 30}

	// The scan kernel is a small, tight loop — the opposite of OLTP's
	// sprawling code footprint — so it lives in the L1 I-cache.
	mkFn := func(name string, sizeKB, path int) *tpcb.CodeFn {
		size := uint64(sizeKB) << 10
		base := alloc.Alloc("dsscode."+name, size, tpcb.KindCode)
		return &tpcb.CodeFn{Name: name, Base: base, SizeLines: int(size / memref.LineBytes),
			PathInstrs: path, Loopy: true, Stride: 0}
	}
	h.scanCode = mkFn("scan_loop", 8, 220)
	h.aggCode = mkFn("aggregate", 4, 60)

	// The engine allocates the SGA (including the block buffer the scans
	// read) through the same allocator; the emitter is installed per
	// segment by the scanners.
	em := &segEmitter{}
	eng, err := tpcb.NewEngine(p.TPCB, alloc, em, p.Seed)
	if err != nil {
		return nil, err
	}
	h.eng = eng
	h.eng.Prewarm()

	h.sched = kernel.NewScheduler(p.CPUs, p.SchedQuantum, nil)
	rng := sim.NewRNG(p.Seed)
	total := p.CPUs * p.ScannersPerCPU
	for c := 0; c < p.CPUs; c++ {
		for i := 0; i < p.ScannersPerCPU; i++ {
			id := c*p.ScannersPerCPU + i
			g := &scannerGen{
				h:   h,
				em:  em,
				rng: rng.Fork(),
				pga: alloc.allocPrivate(fmt.Sprintf("dss.pga%d", id), memref.PageBytes, c/cores),
				// Partition the table: scanner k starts at offset k/total.
				cursor: id * h.accountBlocks() / total,
			}
			h.sched.Spawn(c, fmt.Sprintf("scanner%d", id), g)
		}
	}
	return h, nil
}

// MustNewHarness panics on parameter errors.
func MustNewHarness(p Params) *Harness {
	h, err := NewHarness(p)
	if err != nil {
		panic(err)
	}
	return h
}

func (h *Harness) accountBlocks() int { return h.p.TPCB.AccountBlocks() }

// accountBlockNo maps a scan cursor to the engine's block numbering
// (accounts follow branches and tellers).
func (h *Harness) accountBlockNo(cursor int) int32 {
	base := h.p.TPCB.BranchBlocks() + h.p.TPCB.TellerBlocks()
	return int32(base + cursor%h.accountBlocks())
}

// Next implements core.Workload.
func (h *Harness) Next(cpu int, now uint64) (memref.Ref, kernel.Status, uint64) {
	return h.sched.Next(cpu, now)
}

// HomeOf implements core.Workload.
func (h *Harness) HomeOf(line uint64) int { return h.as.HomeOf(line) }

// Committed implements core.Workload: one "commit" per scanned unit.
func (h *Harness) Committed() uint64 { return h.units }

// Engine exposes the scanned database.
func (h *Harness) Engine() *tpcb.Engine { return h.eng }

// segEmitter collects the engine's emissions into the current segment
// buffer (the DSS path emits directly, so this only needs to forward).
type segEmitter struct {
	out *kernel.RefBuffer
}

func (e *segEmitter) Code(fn *tpcb.CodeFn) {
	fn.Lines(func(addr uint64, instrs int) {
		e.out.Append(memref.Ref{Addr: addr, Kind: memref.IFetch, Instrs: uint16(instrs)})
	})
}

func (e *segEmitter) Load(addr uint64, dep bool) {
	e.out.Append(memref.Ref{Addr: addr, Kind: memref.Load, DepPrev: dep})
}

func (e *segEmitter) Store(addr uint64, dep bool) {
	e.out.Append(memref.Ref{Addr: addr, Kind: memref.Store})
}

// scannerGen is one scan query worker: it walks its partition of the
// account table, touching a sample of row lines per block and aggregating
// into private memory.
type scannerGen struct {
	h      *Harness
	em     *segEmitter
	rng    *sim.RNG
	pga    uint64
	cursor int
}

// NextSegment implements kernel.Generator: one unit of BlocksPerUnit blocks.
func (g *scannerGen) NextSegment(now uint64, out *kernel.RefBuffer) kernel.Directive {
	g.em.out = out
	pool := g.h.eng.Pool()
	lines := 8192 / memref.LineBytes // lines per block
	for b := 0; b < g.h.p.BlocksPerUnit; b++ {
		block := g.h.accountBlockNo(g.cursor)
		g.cursor++
		g.em.Code(g.h.scanCode)
		// Block header, then a strided sample of the row lines.
		g.em.Load(pool.BlockAddr(block, 0), false)
		stride := lines / g.h.p.RowLinesPerBlock
		if stride == 0 {
			stride = 1
		}
		for l := 1; l < lines; l += stride {
			g.em.Load(pool.BlockAddr(block, l*memref.LineBytes), false)
		}
		// Aggregate into the private PGA.
		g.em.Code(g.h.aggCode)
		g.em.Store(g.pga+uint64(g.cursor%8)*memref.LineBytes, false)
	}
	return kernel.Directive{
		Kind: kernel.Run,
		OnDrain: func(uint64) {
			g.h.units++
		},
	}
}
