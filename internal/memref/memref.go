// Package memref defines the memory-reference vocabulary shared by the
// workload generators and the timing models: a Ref is one instruction-fetch
// line or one data access, annotated with enough information for both the
// in-order and out-of-order processor models to time it and for the
// statistics machinery to attribute it.
package memref

// LineBytes is the coherence/cache line size used throughout the study
// (paper Figure 2: 64-byte lines).
const LineBytes = 64

// LineShift is log2(LineBytes).
const LineShift = 6

// PageBytes is the virtual-memory page size (8 KB, the Alpha page size).
const PageBytes = 8192

// PageShift is log2(PageBytes).
const PageShift = 13

// Kind distinguishes the three access types the simulator times.
type Kind uint8

const (
	// IFetch is an instruction fetch of one cache line. Its Instrs field
	// carries the number of instructions executed out of that line, which is
	// the busy-cycle contribution of the fetch on the single-issue model.
	IFetch Kind = iota
	// Load is a data read.
	Load
	// Store is a data write. The simulated memory system is sequentially
	// consistent, so stores stall the in-order processor just as loads do.
	Store
)

// String implements fmt.Stringer for diagnostics.
func (k Kind) String() string {
	switch k {
	case IFetch:
		return "ifetch"
	case Load:
		return "load"
	case Store:
		return "store"
	default:
		return "unknown"
	}
}

// Ref is a single memory reference emitted by a workload generator.
type Ref struct {
	// Addr is the (virtual == simulated physical) byte address.
	Addr uint64
	// Kind says whether this is an instruction fetch, load, or store.
	Kind Kind
	// Kernel marks references issued in kernel mode, for the user/system
	// attribution the paper reports (~25% kernel for OLTP).
	Kernel bool
	// DepPrev marks a data access whose address depends on the result of the
	// previous data access by the same process (pointer chasing, e.g. hash
	// chain walks). The out-of-order model serializes such chains; everything
	// else may overlap within the instruction window.
	DepPrev bool
	// Instrs is, for IFetch refs, the number of instructions executed from
	// the fetched line (1..16 for 4-byte instructions in a 64-byte line).
	// Zero for data refs: a data access's instruction is accounted by the
	// fetch of the line containing it.
	Instrs uint16
}

// Line returns the cache-line address (byte address with the offset bits
// cleared).
func (r Ref) Line() uint64 { return r.Addr &^ (LineBytes - 1) }

// LineOf returns the line address containing addr.
func LineOf(addr uint64) uint64 { return addr &^ (LineBytes - 1) }

// PageOf returns the page number containing addr.
func PageOf(addr uint64) uint64 { return addr >> PageShift }
