package memref

import (
	"testing"
	"testing/quick"
)

func TestLineOf(t *testing.T) {
	cases := []struct{ addr, want uint64 }{
		{0, 0},
		{63, 0},
		{64, 64},
		{65, 64},
		{8191, 8128},
		{1<<40 + 130, 1<<40 + 128},
	}
	for _, c := range cases {
		if got := LineOf(c.addr); got != c.want {
			t.Errorf("LineOf(%#x) = %#x, want %#x", c.addr, got, c.want)
		}
	}
}

func TestRefLineMatchesLineOf(t *testing.T) {
	f := func(addr uint64) bool {
		r := Ref{Addr: addr}
		return r.Line() == LineOf(addr) && r.Line()%LineBytes == 0 && r.Line() <= addr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPageOf(t *testing.T) {
	if PageOf(0) != 0 || PageOf(8191) != 0 || PageOf(8192) != 1 {
		t.Fatal("PageOf boundaries wrong")
	}
}

func TestKindString(t *testing.T) {
	if IFetch.String() != "ifetch" || Load.String() != "load" || Store.String() != "store" {
		t.Fatal("Kind strings wrong")
	}
	if Kind(99).String() != "unknown" {
		t.Fatal("unknown Kind string wrong")
	}
}

func TestConstantsConsistent(t *testing.T) {
	if 1<<LineShift != LineBytes {
		t.Fatalf("LineShift %d inconsistent with LineBytes %d", LineShift, LineBytes)
	}
	if 1<<PageShift != PageBytes {
		t.Fatalf("PageShift %d inconsistent with PageBytes %d", PageShift, PageBytes)
	}
}
