package tpcb

import (
	"fmt"

	"oltpsim/internal/snapshot"
)

// SaveState writes the engine's functional and structural state: table
// balances, history/undo cursors, the structural RNG, code-walk cursors,
// latch/pool/log state, and the workload-shape counters. Addresses, Zipf
// constants, and layout fields are derived from the configuration at
// construction and are not state.
func (e *Engine) SaveState(enc *snapshot.Encoder) {
	enc.I64s(e.accountBal)
	enc.I64s(e.tellerBal)
	enc.I64s(e.branchBal)
	enc.U64(e.historyLen)
	enc.I64(e.deltaSum)
	enc.Int(len(e.histSlot))
	for _, s := range e.histSlot {
		enc.I64(int64(s.block))
		enc.Int(s.rows)
	}
	enc.Int(e.histCursor)
	e.rng.SaveState(enc)
	enc.U64(e.Stats.Txns)
	enc.U64(e.Stats.RemoteBranch)
	enc.U64(e.Stats.HistoryBlocks)
	enc.U64(e.Stats.UndoBlocks)
	enc.U64(e.Stats.ReadTxns)
	enc.U64(e.Stats.ScanTxns)
	enc.Int(len(e.code.All))
	for _, f := range e.code.All {
		enc.Int(f.pos)
	}
	enc.U64(e.lt.Acquires)
	e.pool.SaveState(enc)
	e.log.SaveState(enc)
}

// LoadState restores an engine built from the identical configuration.
func (e *Engine) LoadState(d *snapshot.Decoder) error {
	accounts := d.I64s()
	tellers := d.I64s()
	branches := d.I64s()
	historyLen := d.U64()
	deltaSum := d.I64()
	nSlots := d.Int()
	if d.Err() != nil {
		return d.Err()
	}
	if len(accounts) != len(e.accountBal) || len(tellers) != len(e.tellerBal) || len(branches) != len(e.branchBal) {
		return fmt.Errorf("tpcb: snapshot tables sized %d/%d/%d, want %d/%d/%d",
			len(accounts), len(tellers), len(branches), len(e.accountBal), len(e.tellerBal), len(e.branchBal))
	}
	if nSlots != len(e.histSlot) {
		return fmt.Errorf("tpcb: snapshot has %d history slots, want %d", nSlots, len(e.histSlot))
	}
	slots := make([]histSlot, nSlots)
	for i := range slots {
		slots[i] = histSlot{block: int32(d.I64()), rows: d.Int()}
	}
	histCursor := d.Int()
	e.rng.LoadState(d)
	stats := EngineStats{
		Txns:          d.U64(),
		RemoteBranch:  d.U64(),
		HistoryBlocks: d.U64(),
		UndoBlocks:    d.U64(),
		ReadTxns:      d.U64(),
		ScanTxns:      d.U64(),
	}
	nFns := d.Int()
	if d.Err() != nil {
		return d.Err()
	}
	if nFns != len(e.code.All) {
		return fmt.Errorf("tpcb: snapshot has %d code functions, want %d", nFns, len(e.code.All))
	}
	poss := make([]int, nFns)
	for i := range poss {
		poss[i] = d.Int()
	}
	acquires := d.U64()
	if d.Err() != nil {
		return d.Err()
	}
	for i, s := range slots {
		window := int32(e.cfg.HistoryWindowBlocks)
		if s.block < e.historyBlock0 || s.block >= e.historyBlock0+window || s.rows < 0 {
			return fmt.Errorf("tpcb: history slot %d (block %d, rows %d) out of range", i, s.block, s.rows)
		}
	}
	for i, pos := range poss {
		if pos < 0 || pos >= e.code.All[i].SizeLines {
			return fmt.Errorf("tpcb: code cursor %d for %s out of range", pos, e.code.All[i].Name)
		}
	}
	if err := e.pool.LoadState(d); err != nil {
		return err
	}
	if err := e.log.LoadState(d); err != nil {
		return err
	}
	copy(e.accountBal, accounts)
	copy(e.tellerBal, tellers)
	copy(e.branchBal, branches)
	e.historyLen = historyLen
	e.deltaSum = deltaSum
	copy(e.histSlot, slots)
	e.histCursor = histCursor
	e.Stats = stats
	for i, f := range e.code.All {
		f.pos = poss[i]
	}
	e.lt.Acquires = acquires
	return nil
}

// SaveState writes the persistent walk cursor; everything else in a CodeFn
// is fixed at construction.
func (f *CodeFn) SaveState(e *snapshot.Encoder) { e.Int(f.pos) }

// LoadState restores the walk cursor.
func (f *CodeFn) LoadState(d *snapshot.Decoder) error {
	pos := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if pos < 0 || pos >= f.SizeLines {
		return fmt.Errorf("tpcb: code cursor %d for %s out of range", pos, f.Name)
	}
	f.pos = pos
	return nil
}

// SaveState writes the per-session transaction cursors. ID, PGABase, and
// UndoSeg are fixed at construction.
func (s *Session) SaveState(e *snapshot.Encoder) {
	e.Int(s.undoBlockIdx)
	e.Int(s.undoOff)
	pinned := make([]int64, len(s.pinned))
	for i, f := range s.pinned {
		pinned[i] = int64(f)
	}
	e.I64s(pinned)
	e.U64(s.lastLSN)
	e.I64(int64(s.scanBlock))
}

// LoadState restores the session cursors.
func (s *Session) LoadState(d *snapshot.Decoder) error {
	idx := d.Int()
	off := d.Int()
	pinned := d.I64s()
	lastLSN := d.U64()
	scanBlock := d.I64()
	if err := d.Err(); err != nil {
		return err
	}
	if idx < 0 || off < 0 {
		return fmt.Errorf("tpcb: session %d undo cursor %d/%d negative", s.ID, idx, off)
	}
	if scanBlock < 0 {
		return fmt.Errorf("tpcb: session %d scan cursor %d negative", s.ID, scanBlock)
	}
	s.undoBlockIdx = idx
	s.undoOff = off
	s.pinned = s.pinned[:0]
	for _, f := range pinned {
		s.pinned = append(s.pinned, int32(f))
	}
	s.lastLSN = lastLSN
	s.scanBlock = int32(scanBlock)
	return nil
}

// SaveState writes the buffer pool's frame table, free list (a LIFO whose
// order is architectural), LRU clock, dirty queue, and counters. The
// block-to-frame map is derived from the frame table and rebuilt on load.
func (p *BufferPool) SaveState(e *snapshot.Encoder) {
	e.Int(len(p.frames))
	for _, fr := range p.frames {
		e.I64(int64(fr.block))
		e.Bool(fr.dirty)
		e.Bool(fr.inDirty)
		e.U64(fr.lastUse)
	}
	e.I64s(int32s(p.free))
	e.U64(p.clock)
	e.I64s(int32s(p.dirtyQueue))
	e.U64(p.Stats.Gets)
	e.U64(p.Stats.Misses)
	e.U64(p.Stats.Evictions)
	e.U64(p.Stats.DirtyMarked)
	e.U64(p.Stats.Cleaned)
}

// LoadState restores a pool of identical frame count and rebuilds the
// block-to-frame index.
func (p *BufferPool) LoadState(d *snapshot.Decoder) error {
	n := d.Int()
	if d.Err() != nil {
		return d.Err()
	}
	if n != len(p.frames) {
		return fmt.Errorf("tpcb: snapshot has %d frames, want %d", n, len(p.frames))
	}
	frames := make([]frame, n)
	for i := range frames {
		frames[i] = frame{
			block:   int32(d.I64()),
			dirty:   d.Bool(),
			inDirty: d.Bool(),
			lastUse: d.U64(),
		}
	}
	free := d.I64s()
	clock := d.U64()
	dirtyQueue := d.I64s()
	stats := PoolStats{
		Gets:        d.U64(),
		Misses:      d.U64(),
		Evictions:   d.U64(),
		DirtyMarked: d.U64(),
		Cleaned:     d.U64(),
	}
	if err := d.Err(); err != nil {
		return err
	}
	b2f := make(map[int32]int32, len(p.blockToFrame))
	for i, fr := range frames {
		if fr.block < -1 {
			return fmt.Errorf("tpcb: frame %d holds invalid block %d", i, fr.block)
		}
		if fr.block >= 0 {
			if _, dup := b2f[fr.block]; dup {
				return fmt.Errorf("tpcb: block %d resident in two frames", fr.block)
			}
			b2f[fr.block] = int32(i)
		}
	}
	for _, f := range free {
		if f < 0 || f >= int64(n) || frames[f].block != -1 {
			return fmt.Errorf("tpcb: free list entry %d invalid", f)
		}
	}
	for _, f := range dirtyQueue {
		if f < 0 || f >= int64(n) {
			return fmt.Errorf("tpcb: dirty queue entry %d out of range", f)
		}
	}
	copy(p.frames, frames)
	p.free = p.free[:0]
	for _, f := range free {
		p.free = append(p.free, int32(f))
	}
	p.clock = clock
	p.dirtyQueue = p.dirtyQueue[:0]
	for _, f := range dirtyQueue {
		p.dirtyQueue = append(p.dirtyQueue, int32(f))
	}
	p.blockToFrame = b2f
	p.Stats = stats
	return p.CheckConsistency()
}

// SaveState writes the redo log's LSN horizon and counters.
func (l *RedoLog) SaveState(e *snapshot.Encoder) {
	e.U64(l.nextLSN)
	e.U64(l.requestedLSN)
	e.U64(l.flushedLSN)
	e.U64(l.Stats.Appends)
	e.U64(l.Stats.BytesWritten)
	e.U64(l.Stats.Gathers)
	e.U64(l.Stats.Overruns)
}

// LoadState restores the log position.
func (l *RedoLog) LoadState(d *snapshot.Decoder) error {
	next := d.U64()
	requested := d.U64()
	flushed := d.U64()
	stats := LogStats{
		Appends:      d.U64(),
		BytesWritten: d.U64(),
		Gathers:      d.U64(),
		Overruns:     d.U64(),
	}
	if err := d.Err(); err != nil {
		return err
	}
	if requested > next || flushed > next {
		return fmt.Errorf("tpcb: log LSNs out of order (next %d, requested %d, flushed %d)", next, requested, flushed)
	}
	l.nextLSN = next
	l.requestedLSN = requested
	l.flushedLSN = flushed
	l.Stats = stats
	return nil
}

func int32s(vs []int32) []int64 {
	out := make([]int64, len(vs))
	for i, v := range vs {
		out[i] = int64(v)
	}
	return out
}
