package tpcb

import (
	"fmt"

	"oltpsim/internal/memref"
)

// PoolStats counts buffer-pool activity.
type PoolStats struct {
	Gets        uint64
	Misses      uint64 // block not resident (disk read required)
	Evictions   uint64
	DirtyMarked uint64 // transitions clean -> dirty
	Cleaned     uint64 // DBWR write-outs
}

// BufferPool is the SGA block buffer area: frames holding database blocks,
// found through a hash of cache-buffers-chains buckets, each get pinning the
// buffer header. Headers are written on every get (pin count, touch count),
// which is the main source of migratory sharing on hot blocks — exactly the
// communication misses the paper attributes to the SGA metadata area.
type BufferPool struct {
	cfg  *Config
	em   Emitter
	code *ServerCode
	lt   *LatchTable

	frames []frame
	// blockToFrame is the hash index over frames.
	//oltpvet:derived not saved: LoadState rebuilds the index from each decoded frame's block assignment
	blockToFrame map[int32]int32
	free         []int32
	clock        uint64

	// dirty tracking for the database writer
	dirtyQueue []int32

	// simulated addresses
	hdrBase    uint64 // one line per frame (buffer headers)
	bucketBase uint64 // one line per hash bucket
	blockBase  uint64 // the block buffer itself (BlockBytes per frame slot, addressed by block number)

	Stats PoolStats
}

type frame struct {
	block   int32 // -1 when free
	dirty   bool
	inDirty bool // already queued for DBWR
	lastUse uint64
}

func newBufferPool(cfg *Config, alloc Allocator, em Emitter, code *ServerCode, lt *LatchTable) *BufferPool {
	p := &BufferPool{
		cfg:          cfg,
		em:           em,
		code:         code,
		lt:           lt,
		frames:       make([]frame, cfg.BufferFrames),
		blockToFrame: make(map[int32]int32, cfg.TotalBlocks()),
		hdrBase:      alloc.Alloc("sga.buffer_headers", uint64(cfg.BufferFrames)*memref.LineBytes, KindShared),
		bucketBase:   alloc.Alloc("sga.hash_buckets", uint64(cfg.HashBuckets)*memref.LineBytes, KindShared),
		blockBase:    alloc.Alloc("sga.block_buffer", uint64(cfg.TotalBlocks())*uint64(cfg.BlockBytes), KindShared),
	}
	for i := range p.frames {
		p.frames[i].block = -1
		p.free = append(p.free, int32(i))
	}
	return p
}

// HeaderAddr returns the buffer header line of frame f.
func (p *BufferPool) HeaderAddr(f int32) uint64 {
	return p.hdrBase + uint64(f)*memref.LineBytes
}

// BlockAddr returns the address of byte off within block b's buffer. Blocks
// are addressed by block number: the pool holds every block in steady state
// (paper setup: the SGA caches the whole database), so a stable mapping both
// simplifies the model and matches the measured system.
func (p *BufferPool) BlockAddr(b int32, off int) uint64 {
	return p.blockBase + uint64(b)*uint64(p.cfg.BlockBytes) + uint64(off)
}

func (p *BufferPool) bucketOf(b int32) int {
	// Multiplicative hash; buckets are a power of two in the default config
	// but this works for any size.
	h := uint64(b) * 0x9e3779b97f4a7c15
	return int(h % uint64(p.cfg.HashBuckets))
}

// Get pins block b, emitting the cache-buffers-chains walk: CBC latch,
// bucket header, buffer header probe, and the pin/touch update of the
// header. It returns the frame and whether the block had to be read from
// disk (miss).
func (p *BufferPool) Get(b int32) (f int32, missed bool) {
	p.Stats.Gets++
	p.em.Code(p.code.BufGet)
	bucket := p.bucketOf(b)
	latch := p.lt.CBC(bucket, p.cfg.CBCLatches)
	p.lt.Acquire(latch)
	p.em.Load(p.bucketBase+uint64(bucket)*memref.LineBytes, false)

	f, ok := p.blockToFrame[b]
	if !ok {
		p.Stats.Misses++
		f = p.allocFrame(b)
	}
	// Header probe then the pin/touch-count update — a store of the header
	// line on every get.
	h := p.HeaderAddr(f)
	p.em.Load(h, true)
	p.em.Store(h, false)
	p.lt.Release(latch)

	p.clock++
	p.frames[f].lastUse = p.clock
	return f, !ok
}

// Unpin emits the pin-release write of the header (post-commit cleanup).
func (p *BufferPool) Unpin(f int32) {
	p.em.Store(p.HeaderAddr(f), false)
}

// MarkDirty flags the frame dirty and queues it for the database writer on
// the clean->dirty transition.
func (p *BufferPool) MarkDirty(f int32) {
	fr := &p.frames[f]
	if !fr.dirty {
		fr.dirty = true
		p.Stats.DirtyMarked++
	}
	if !fr.inDirty {
		fr.inDirty = true
		p.dirtyQueue = append(p.dirtyQueue, f)
	}
}

// allocFrame finds a frame for block b, evicting if necessary.
func (p *BufferPool) allocFrame(b int32) int32 {
	var f int32
	if n := len(p.free); n > 0 {
		f = p.free[n-1]
		p.free = p.free[:n-1]
	} else {
		f = p.evict()
	}
	p.frames[f].block = b
	p.frames[f].dirty = false
	p.frames[f].inDirty = false
	p.blockToFrame[b] = f
	return f
}

// evict reclaims the least-recently-used frame. The default configuration
// holds the whole database, so this path only runs in deliberately
// undersized ablation configurations; a linear scan is acceptable there.
func (p *BufferPool) evict() int32 {
	p.em.Code(p.code.BufRepl)
	p.lt.Acquire(latchLRU0)
	best := int32(-1)
	var bestUse uint64
	for i := range p.frames {
		fr := &p.frames[i]
		if fr.block < 0 {
			continue
		}
		if best < 0 || fr.lastUse < bestUse {
			best, bestUse = int32(i), fr.lastUse
		}
	}
	if best < 0 {
		panic("tpcb: buffer pool has no evictable frame")
	}
	fr := &p.frames[best]
	delete(p.blockToFrame, fr.block)
	// A dirty victim is handed to the write queue (asynchronous write).
	if fr.dirty {
		p.em.Store(p.HeaderAddr(best), false)
	}
	fr.block = -1
	fr.dirty = false
	p.Stats.Evictions++
	p.lt.Release(latchLRU0)
	return best
}

// Prewarm makes every database block resident without emitting references,
// modelling the steady state the paper positions its workload into before
// measuring.
func (p *BufferPool) Prewarm(totalBlocks int) {
	if totalBlocks > len(p.frames) {
		panic(fmt.Sprintf("tpcb: prewarm of %d blocks exceeds %d frames", totalBlocks, len(p.frames)))
	}
	for b := 0; b < totalBlocks; b++ {
		if _, ok := p.blockToFrame[int32(b)]; ok {
			continue
		}
		f := p.free[len(p.free)-1]
		p.free = p.free[:len(p.free)-1]
		p.frames[f].block = int32(b)
		p.blockToFrame[int32(b)] = f
	}
}

// PopDirty removes up to max frames from the dirty queue for the database
// writer, returning the frames still dirty at pop time.
func (p *BufferPool) PopDirty(max int) []int32 {
	out := make([]int32, 0, max)
	for len(p.dirtyQueue) > 0 && len(out) < max {
		f := p.dirtyQueue[0]
		p.dirtyQueue = p.dirtyQueue[1:]
		fr := &p.frames[f]
		fr.inDirty = false
		if fr.dirty {
			out = append(out, f)
		}
	}
	return out
}

// Clean marks frame f clean (DBWR completed its write) and emits the header
// update.
func (p *BufferPool) Clean(f int32) {
	p.em.Load(p.HeaderAddr(f), false)
	p.em.Store(p.HeaderAddr(f), false)
	if p.frames[f].dirty {
		p.frames[f].dirty = false
		p.Stats.Cleaned++
	}
}

// DirtyBacklog returns the number of queued dirty frames.
func (p *BufferPool) DirtyBacklog() int { return len(p.dirtyQueue) }

// CheckConsistency verifies the pool's structural invariants: the
// block-to-frame map is a bijection onto occupied frames, and no free frame
// claims a block. It iterates the frames slice, not the map, so the error
// it returns (part of restore failures surfaced to output) is deterministic;
// the counting argument at the end makes the frame walk equivalent to a map
// walk: every occupied frame must have a matching map entry, and a map with
// no extra entries (same cardinality, keys unique) can contain nothing else.
func (p *BufferPool) CheckConsistency() error {
	occupied := 0
	for i := range p.frames {
		b := p.frames[i].block
		if b < 0 {
			continue
		}
		occupied++
		f, ok := p.blockToFrame[b]
		if !ok {
			return fmt.Errorf("tpcb: frame %d holds block %d without a map entry", i, b)
		}
		if f != int32(i) {
			return fmt.Errorf("tpcb: frame %d holds block %d but the map sends it to frame %d", i, b, f)
		}
	}
	if occupied != len(p.blockToFrame) {
		return fmt.Errorf("tpcb: %d occupied frames but %d map entries", occupied, len(p.blockToFrame))
	}
	return nil
}

// Resident returns the number of blocks currently mapped.
func (p *BufferPool) Resident() int { return len(p.blockToFrame) }
