package tpcb

// Emitter receives the memory references the engine performs. The simulation
// harness implements it to feed the timing models; NopEmitter lets the engine
// run purely functionally (cmd/tpcb).
type Emitter interface {
	// Code emits the instruction fetches for one invocation of fn.
	Code(fn *CodeFn)
	// Load emits a data read of addr. dep marks address-generation
	// dependence on the immediately preceding data access (pointer chasing).
	Load(addr uint64, dep bool)
	// Store emits a data write of addr.
	Store(addr uint64, dep bool)
}

// NopEmitter discards all references; the engine then runs as a plain
// in-memory database.
type NopEmitter struct{}

// Code implements Emitter.
func (NopEmitter) Code(*CodeFn) {}

// Load implements Emitter.
func (NopEmitter) Load(uint64, bool) {}

// Store implements Emitter.
func (NopEmitter) Store(uint64, bool) {}

// CountingEmitter tallies references by type; tests use it to assert the
// shape of the stream without a full simulator.
type CountingEmitter struct {
	Calls  uint64 // Code invocations
	Instrs uint64 // instructions implied by Code invocations
	Loads  uint64
	Stores uint64
}

// Code implements Emitter.
func (c *CountingEmitter) Code(fn *CodeFn) {
	c.Calls++
	c.Instrs += uint64(fn.PathInstrs)
	fn.Advance()
}

// Load implements Emitter.
func (c *CountingEmitter) Load(uint64, bool) { c.Loads++ }

// Store implements Emitter.
func (c *CountingEmitter) Store(uint64, bool) { c.Stores++ }

// RegionKind tells the allocator what placement policy a region needs.
type RegionKind uint8

const (
	// KindShared: SGA-like shared data, round-robin page placement.
	KindShared RegionKind = iota
	// KindCode: instruction region (subject to the replication experiment).
	KindCode
)

// Allocator hands out simulated addresses for the engine's structures and
// registers them with the machine's address space. Returned bases are always
// line-aligned.
type Allocator interface {
	Alloc(name string, size uint64, kind RegionKind) uint64
}

// BumpAllocator is a trivial Allocator for functional runs and tests: it
// lays regions out contiguously from a base address.
type BumpAllocator struct {
	Next uint64
}

// Alloc implements Allocator.
func (b *BumpAllocator) Alloc(name string, size uint64, kind RegionKind) uint64 {
	const align = 1 << 13
	b.Next = (b.Next + align - 1) &^ (align - 1)
	base := b.Next
	b.Next += size
	return base
}
