package tpcb

import "oltpsim/internal/memref"

// InstrsPerLine is the number of 4-byte instructions in a 64-byte line.
const InstrsPerLine = 16

// CodeFn models one function (or module) of the database engine or kernel:
// a contiguous instruction region walked on each invocation. Together the
// functions form the large, skewed instruction footprint that is a defining
// property of OLTP (paper Section 1: "large instruction and data
// footprints... that overwhelm the first-level caches").
type CodeFn struct {
	// Name identifies the function in diagnostics.
	Name string
	// Base is the simulated address of the first instruction line.
	Base uint64
	// SizeLines is the region size in cache lines.
	SizeLines int
	// PathInstrs is the dynamic instruction count of one invocation.
	PathInstrs int
	// Loopy selects the walk mode. Loopy functions restart near Base each
	// call (tight loops: latch spins, redo copy, index probes) and therefore
	// have high instruction-cache reuse. Non-loopy functions resume where
	// the previous call left off, cycling through the whole region over many
	// calls (large multi-path modules: SQL execution, parse), which is what
	// spreads the instruction footprint.
	Loopy bool
	// Stride, for loopy functions, drifts the entry point by this many lines
	// per call, modelling the branch-path diversity inside a hot module: the
	// loop body stays cached while its surroundings slowly rotate through
	// the instruction cache.
	Stride int
	// Kernel marks operating-system code (attribution of kernel time).
	Kernel bool

	pos int // persistent walk cursor for non-loopy functions
}

// Lines returns the fetch line addresses of one invocation in order, calling
// visit for each, and advances the persistent cursor. The emitter uses this
// to produce IFetch refs.
func (f *CodeFn) Lines(visit func(addr uint64, instrs int)) {
	n := (f.PathInstrs + InstrsPerLine - 1) / InstrsPerLine
	line := f.pos
	remaining := f.PathInstrs
	for i := 0; i < n; i++ {
		// Wraparound by subtraction instead of a divide per line: line
		// enters each iteration at most SizeLines past the region end.
		if line >= f.SizeLines {
			line -= f.SizeLines
		}
		instrs := InstrsPerLine
		if remaining < InstrsPerLine {
			instrs = remaining
		}
		remaining -= instrs
		visit(f.Base+uint64(line)*memref.LineBytes, instrs)
		line++
	}
	f.Advance()
}

// Advance moves the persistent cursor as one invocation would. Emitters that
// synthesize fetches themselves (CountingEmitter) call it directly.
func (f *CodeFn) Advance() {
	if f.Loopy {
		f.pos = (f.pos + f.Stride) % f.SizeLines
		return
	}
	n := (f.PathInstrs + InstrsPerLine - 1) / InstrsPerLine
	f.pos = (f.pos + n) % f.SizeLines
}

// SizeBytes returns the code region size in bytes.
func (f *CodeFn) SizeBytes() uint64 { return uint64(f.SizeLines) * memref.LineBytes }

// codeSpec declares one function before allocation.
type codeSpec struct {
	name   string
	sizeKB int
	path   int
	loopy  bool
	stride int
}

// ServerCode is the engine's instruction footprint: the Oracle-like server
// code paths invoked per transaction. Sizes are chosen so the hot server
// text totals ~560 KB, which together with kernel text (~160 KB, owned by
// the harness) reproduces the paper's observation that the instruction
// footprint overwhelms 64 KB L1 caches yet is captured by a 2 MB associative
// L2.
type ServerCode struct {
	SQLPrep    *CodeFn // cursor open / soft parse
	SQLExec    *CodeFn // statement execution driver
	IdxLookup  *CodeFn // hash-index probe
	BufGet     *CodeFn // buffer cache get (cache buffers chains)
	BufRepl    *CodeFn // buffer replacement / LRU maintenance
	RowUpdate  *CodeFn // row locking + update
	RowInsert  *CodeFn // history insert
	UndoWrite  *CodeFn // rollback segment record
	RedoGen    *CodeFn // redo record construction
	RedoCopy   *CodeFn // redo copy into log buffer (under latch)
	LatchAcq   *CodeFn // latch acquire/release
	TxnCommit  *CodeFn // commit processing
	TxnCleanup *CodeFn // post-commit cleanup, unpins
	LgwrMain   *CodeFn // log writer gather/write loop
	DbwrMain   *CodeFn // database writer scan loop
	All        []*CodeFn
}

// newServerCode allocates the code regions through alloc.
func newServerCode(alloc Allocator) *ServerCode {
	specs := []codeSpec{
		{"sql_prep", 64, 400, false, 0},
		{"sql_exec", 80, 330, false, 0},
		{"idx_lookup", 24, 130, true, 3},
		{"buf_get", 32, 150, true, 5},
		{"buf_repl", 24, 180, true, 0},
		{"row_update", 48, 200, false, 0},
		{"row_insert", 32, 180, false, 0},
		{"undo_write", 24, 110, true, 4},
		{"redo_gen", 32, 160, true, 5},
		{"redo_copy", 16, 90, true, 2},
		{"latch", 8, 32, true, 1},
		{"txn_commit", 32, 250, false, 0},
		{"txn_cleanup", 32, 210, false, 0},
		{"lgwr_main", 24, 230, true, 4},
		{"dbwr_main", 24, 190, true, 4},
	}
	fns := make([]*CodeFn, len(specs))
	for i, s := range specs {
		size := uint64(s.sizeKB) << 10
		base := alloc.Alloc("code."+s.name, size, KindCode)
		fns[i] = &CodeFn{
			Name:       s.name,
			Base:       base,
			SizeLines:  int(size / memref.LineBytes),
			PathInstrs: s.path,
			Loopy:      s.loopy,
			Stride:     s.stride,
		}
	}
	sc := &ServerCode{
		SQLPrep: fns[0], SQLExec: fns[1], IdxLookup: fns[2], BufGet: fns[3],
		BufRepl: fns[4], RowUpdate: fns[5], RowInsert: fns[6], UndoWrite: fns[7],
		RedoGen: fns[8], RedoCopy: fns[9], LatchAcq: fns[10], TxnCommit: fns[11],
		TxnCleanup: fns[12], LgwrMain: fns[13], DbwrMain: fns[14],
	}
	sc.All = fns
	return sc
}

// TotalBytes sums the server code footprint.
func (s *ServerCode) TotalBytes() uint64 {
	var n uint64
	for _, f := range s.All {
		n += f.SizeBytes()
	}
	return n
}
