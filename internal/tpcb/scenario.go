package tpcb

import (
	"oltpsim/internal/memref"
	"oltpsim/internal/sim"
)

// This file holds the engine entry points used by time-varying scenario
// runs (internal/scenario): shaped input selection plus the read-only and
// scan transaction bodies. Default steady-state runs never reach the read
// and scan paths, and DrawTxnShaped with a nil Zipf and a full working set
// consumes exactly DrawTxn's RNG stream, so a single-phase pure-update
// profile is byte-identical to today's steady state.

// DrawTxnShaped picks a transaction input under scenario shaping:
// branchZipf, when non-nil, skews the teller/branch choice toward hot
// branches (branch first, then a uniform teller within it); workingSet
// scales the active account range per branch to its first
// ceil(workingSet*AccountsPerBranch) accounts. branchZipf == nil with
// workingSet >= 1 consumes the identical RNG draw sequence as DrawTxn —
// the degenerate-profile identity tests pin this.
func (e *Engine) DrawTxnShaped(r *sim.RNG, branchZipf *sim.Zipf, workingSet float64) TxnInput {
	var teller, branch int
	if branchZipf != nil {
		branch = branchZipf.Next(r)
		teller = branch*e.cfg.TellersPerBranch + r.Intn(e.cfg.TellersPerBranch)
	} else {
		teller = r.Intn(e.cfg.Tellers())
		branch = teller / e.cfg.TellersPerBranch
	}
	active := e.cfg.AccountsPerBranch
	if workingSet < 1 {
		active = int(workingSet * float64(e.cfg.AccountsPerBranch))
		if active < 1 {
			active = 1
		}
	}
	acctBranch := branch
	if e.cfg.Branches > 1 && r.Float64() < 0.15 {
		acctBranch = r.Intn(e.cfg.Branches - 1)
		if acctBranch >= branch {
			acctBranch++
		}
	}
	acct := acctBranch*e.cfg.AccountsPerBranch + r.Intn(active)
	delta := int64(r.Intn(1_999_999)) - 999_999 // [-999999, +999999] per spec
	return TxnInput{Teller: teller, Branch: branch, Acct: acct, Delta: delta}
}

// ExecReadTxn runs the read-only variant of the TPC-B transaction: the same
// cursor executions, index walk, and three row lookups, but no mutation —
// no undo, no redo, no history insert, and no commit record, so the session
// has nothing to wait on and the balance/history invariants are untouched.
func (e *Engine) ExecReadTxn(sess *Session, in TxnInput) {
	e.Stats.ReadTxns++
	sess.pinned = sess.pinned[:0]

	e.em.Code(e.code.SQLPrep)
	e.touchSharedPoolTail()
	e.em.Store(sess.PGABase, false)

	// SELECT balance FROM account WHERE id = :acct
	e.execCursor(stmtUpdateAccount)
	e.indexLookup(in.Acct)
	e.readRow(sess, e.accountBlock(in.Acct), in.Acct%e.cfg.AccountsPerBlock, 96)

	// SELECT from teller and branch (dictionary-resolved blocks).
	e.execCursor(stmtUpdateTeller)
	e.em.Load(e.dictAddr(in.Teller%32), false)
	e.readRow(sess, e.tellerBlock(in.Teller), in.Teller%e.cfg.TellersPerBlock, 128)

	e.execCursor(stmtUpdateBranch)
	e.em.Load(e.dictAddr(32+in.Branch%16), false)
	e.readRow(sess, e.branchBlock(in.Branch), in.Branch%e.cfg.BranchesPerBlock, 128)

	e.em.Code(e.code.TxnCommit)
}

// readRow pins the block and reads the row. The row-access driver is the
// same server code as an update (RowUpdate), minus the mutation stores and
// header stamp.
func (e *Engine) readRow(sess *Session, block int32, slot, rowBytes int) {
	f, _ := e.pool.Get(block)
	sess.pinned = append(sess.pinned, f)
	e.em.Code(e.code.RowUpdate)
	e.em.Load(e.rowAddr(block, slot, rowBytes), true)
}

// scanRowLines is how many row lines one scanned block touches, matching
// the DSS table layout's rows-per-block density.
const scanRowLines = 16

// ExecScan runs a DSS-style sequential scan: blocks account blocks from the
// session's persistent scan cursor (wrapping over the account table), each
// pinned, row-sampled with scanRowLines strided loads, and unpinned
// immediately — the no-reuse streaming pattern that flushes capacity out of
// small caches.
func (e *Engine) ExecScan(sess *Session, blocks int) {
	e.Stats.ScanTxns++
	sess.pinned = sess.pinned[:0]

	e.em.Code(e.code.SQLPrep)
	e.touchSharedPoolTail()
	e.em.Store(sess.PGABase, false)
	e.em.Code(e.code.SQLExec)

	nblocks := int32(e.cfg.AccountBlocks())
	lines := e.cfg.BlockBytes / memref.LineBytes
	stride := (lines - 1) / scanRowLines
	if stride < 1 {
		stride = 1
	}
	for b := 0; b < blocks; b++ {
		if sess.scanBlock >= nblocks {
			sess.scanBlock = 0
		}
		block := e.accountBlock0 + sess.scanBlock
		sess.scanBlock++
		f, _ := e.pool.Get(block)
		for l := 0; l < scanRowLines && 1+l*stride < lines; l++ {
			e.em.Load(e.pool.BlockAddr(block, (1+l*stride)*memref.LineBytes), false)
		}
		e.pool.Unpin(f)
	}
	e.em.Code(e.code.TxnCommit)
}
