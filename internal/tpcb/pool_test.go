package tpcb

import (
	"testing"

	"oltpsim/internal/sim"
)

func newTestPool(frames int) (*BufferPool, *Config) {
	cfg := SmallConfig()
	cfg.BufferFrames = frames
	alloc := &BumpAllocator{}
	code := newServerCode(alloc)
	lt := newLatchTable(alloc, NopEmitter{}, code, cfg.CBCLatches)
	return newBufferPool(&cfg, alloc, NopEmitter{}, code, lt), &cfg
}

func TestPoolGetMissAndHit(t *testing.T) {
	p, _ := newTestPool(64)
	f1, missed := p.Get(7)
	if !missed {
		t.Fatal("first get did not miss")
	}
	f2, missed := p.Get(7)
	if missed || f2 != f1 {
		t.Fatalf("second get: missed=%v frame %d vs %d", missed, f2, f1)
	}
	if p.Stats.Gets != 2 || p.Stats.Misses != 1 {
		t.Fatalf("stats %+v", p.Stats)
	}
	if err := p.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestPoolEvictionLRU(t *testing.T) {
	p, _ := newTestPool(4)
	for b := int32(0); b < 4; b++ {
		p.Get(b)
	}
	p.Get(0) // refresh block 0
	p.Get(9) // must evict block 1 (LRU)
	if _, missed := p.Get(0); missed {
		t.Fatal("block 0 evicted despite being MRU")
	}
	if _, missed := p.Get(1); !missed {
		t.Fatal("block 1 not evicted")
	}
	if p.Stats.Evictions == 0 {
		t.Fatal("no evictions recorded")
	}
	if err := p.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestPoolEvictDirtyVictim(t *testing.T) {
	p, _ := newTestPool(2)
	f, _ := p.Get(0)
	p.MarkDirty(f)
	p.Get(1)
	p.Get(2) // evicts one of them, possibly the dirty frame
	if err := p.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestPoolDirtyQueueDedup(t *testing.T) {
	p, _ := newTestPool(16)
	f, _ := p.Get(3)
	p.MarkDirty(f)
	p.MarkDirty(f) // second mark must not enqueue twice
	if p.DirtyBacklog() != 1 {
		t.Fatalf("backlog %d, want 1", p.DirtyBacklog())
	}
	got := p.PopDirty(8)
	if len(got) != 1 || got[0] != f {
		t.Fatalf("popped %v", got)
	}
	p.Clean(f)
	if p.Stats.Cleaned != 1 {
		t.Fatalf("cleaned %d", p.Stats.Cleaned)
	}
	// Re-dirty after clean requeues.
	p.MarkDirty(f)
	if p.DirtyBacklog() != 1 {
		t.Fatal("re-dirty did not requeue")
	}
}

func TestPoolPopDirtySkipsCleaned(t *testing.T) {
	p, _ := newTestPool(16)
	f1, _ := p.Get(1)
	f2, _ := p.Get(2)
	p.MarkDirty(f1)
	p.MarkDirty(f2)
	p.Clean(f1) // cleaned before DBWR pops it
	got := p.PopDirty(8)
	if len(got) != 1 || got[0] != f2 {
		t.Fatalf("PopDirty returned %v, want only frame %d", got, f2)
	}
}

func TestPoolPrewarmOverflowPanics(t *testing.T) {
	p, _ := newTestPool(4)
	defer func() {
		if recover() == nil {
			t.Fatal("prewarm beyond capacity did not panic")
		}
	}()
	p.Prewarm(5)
}

func TestPoolConsistencyUnderChurn(t *testing.T) {
	p, _ := newTestPool(8)
	r := sim.NewRNG(4)
	for i := 0; i < 5000; i++ {
		f, _ := p.Get(int32(r.Intn(64)))
		if r.Bool(0.3) {
			p.MarkDirty(f)
		}
		if r.Bool(0.1) {
			for _, df := range p.PopDirty(4) {
				p.Clean(df)
			}
		}
	}
	if err := p.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestEngineCheckIncludesPool(t *testing.T) {
	e := newTestEngine(t, NopEmitter{})
	runTxns(e, 100, 31)
	if err := e.Pool().CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}
