package tpcb

import (
	"fmt"

	"oltpsim/internal/memref"
	"oltpsim/internal/sim"
)

// Statement identifiers for the four SQL statements of a TPC-B transaction.
const (
	stmtUpdateAccount = iota
	stmtUpdateTeller
	stmtUpdateBranch
	stmtInsertHistory
	numStatements
)

// EngineStats aggregates workload-shape counters beyond the pool/log stats.
type EngineStats struct {
	Txns          uint64
	RemoteBranch  uint64 // transactions whose account came from another branch
	HistoryBlocks uint64 // history block switches
	UndoBlocks    uint64 // undo block switches
	ReadTxns      uint64 // read-only transactions (scenario mixes)
	ScanTxns      uint64 // scan transactions (scenario mixes)
}

// Session is the per-server-process execution context: its private PGA, its
// assigned rollback segment, and its currently pinned buffers.
type Session struct {
	ID      int
	PGABase uint64
	UndoSeg int

	undoBlockIdx int // cursor within the segment's block window
	undoOff      int
	pinned       []int32 // frames pinned by the current transaction
	lastLSN      uint64
	scanBlock    int32 // persistent scan cursor over account blocks
}

// Engine is the instrumented TPC-B database engine. All methods must be
// called from a single goroutine (the simulation loop serializes process
// execution); the "concurrency" between sessions is the simulated kind.
type Engine struct {
	cfg  Config
	em   Emitter
	code *ServerCode
	lt   *LatchTable
	pool *BufferPool
	log  *RedoLog

	// Functional table state.
	accountBal []int64
	tellerBal  []int64
	branchBal  []int64
	historyLen uint64
	deltaSum   int64

	// Block-number layout: [branch][teller][account][history window][undo].
	branchBlock0, tellerBlock0, accountBlock0, historyBlock0, undoBlock0 int32

	// History insert slots: rotating insert points, each with a current
	// block and fill count.
	histSlot   []histSlot
	histCursor int // next window block to hand out

	// Shared pool / library cache.
	sharedPoolBase  uint64
	sharedPoolLines int
	cursorBase      [numStatements]uint64
	cursorStats     [numStatements]uint64
	poolZipf        *sim.Zipf
	rng             *sim.RNG // structural randomness (shared-pool tail walks)

	// Row cache (dictionary metadata: object, column, privilege entries hit
	// on every statement execution), skewed like a real dc_* cache.
	rowCacheBase  uint64
	rowCacheLines int
	rcZipf        *sim.Zipf

	// Dictionary cache lines (teller/branch block lookup shortcuts).
	dictBase uint64

	// Account hash index.
	idxBucketBase uint64
	idxBuckets    int
	idxEntryBase  uint64

	Stats EngineStats
}

type histSlot struct {
	block int32
	rows  int
}

// NewEngine builds the engine, allocating every SGA structure through alloc
// and emitting references through em. seed drives structural randomness
// (shared-pool tail access patterns).
func NewEngine(cfg Config, alloc Allocator, em Emitter, seed uint64) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	code := newServerCode(alloc)
	lt := newLatchTable(alloc, em, code, cfg.CBCLatches)
	e := &Engine{
		cfg:  cfg,
		em:   em,
		code: code,
		lt:   lt,
		rng:  sim.NewRNG(seed),
	}
	e.pool = newBufferPool(&cfg, alloc, em, code, lt)
	e.log = newRedoLog(&cfg, alloc, em, code, lt)

	e.accountBal = make([]int64, cfg.Accounts())
	e.tellerBal = make([]int64, cfg.Tellers())
	e.branchBal = make([]int64, cfg.Branches)

	e.branchBlock0 = 0
	e.tellerBlock0 = e.branchBlock0 + int32(cfg.BranchBlocks())
	e.accountBlock0 = e.tellerBlock0 + int32(cfg.TellerBlocks())
	e.historyBlock0 = e.accountBlock0 + int32(cfg.AccountBlocks())
	e.undoBlock0 = e.historyBlock0 + int32(cfg.HistoryWindowBlocks)

	e.histSlot = make([]histSlot, cfg.HistoryInsertSlots)
	for i := range e.histSlot {
		e.histSlot[i].block = e.historyBlock0 + int32(i)
	}
	e.histCursor = cfg.HistoryInsertSlots

	e.sharedPoolBase = alloc.Alloc("sga.shared_pool", uint64(cfg.SharedPoolBytes), KindShared)
	e.sharedPoolLines = cfg.SharedPoolBytes / memref.LineBytes
	e.poolZipf = sim.NewZipfCached(e.sharedPoolLines, 0.93, cfg.Zeta)
	e.rowCacheBase = alloc.Alloc("sga.row_cache", 512<<10, KindShared)
	e.rowCacheLines = (512 << 10) / memref.LineBytes
	e.rcZipf = sim.NewZipfCached(e.rowCacheLines, 0.65, cfg.Zeta)
	// Scatter the per-statement cursors (and their migratory stats lines)
	// across distinct pages of the shared pool so their NUMA homes spread,
	// as they would inside a real library cache.
	for s := 0; s < numStatements; s++ {
		e.cursorBase[s] = e.sharedPoolBase + uint64(s)*(17*memref.PageBytes+3*memref.LineBytes)
		e.cursorStats[s] = e.cursorBase[s] + uint64(e.cfg.CursorHotLines+2)*memref.LineBytes
	}
	e.dictBase = alloc.Alloc("sga.dictionary", 64*(memref.PageBytes+memref.LineBytes), KindShared)

	e.idxBuckets = 1 << 12
	e.idxBucketBase = alloc.Alloc("sga.acct_index_buckets", uint64(e.idxBuckets)*memref.LineBytes, KindShared)
	e.idxEntryBase = alloc.Alloc("sga.acct_index_entries", uint64(cfg.Accounts())*16, KindShared)
	return e, nil
}

// MustNewEngine panics on configuration errors (experiment definitions are
// static, so errors there are programming mistakes).
func MustNewEngine(cfg Config, alloc Allocator, em Emitter, seed uint64) *Engine {
	e, err := NewEngine(cfg, alloc, em, seed)
	if err != nil {
		panic(err)
	}
	return e
}

// Config returns the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

// Code exposes the engine's code regions (the harness walks some of them for
// kernel-adjacent paths and reports footprints).
func (e *Engine) Code() *ServerCode { return e.code }

// Pool exposes the buffer pool for statistics and tests.
func (e *Engine) Pool() *BufferPool { return e.pool }

// Log exposes the redo log for the log-writer daemon and tests.
func (e *Engine) Log() *RedoLog { return e.log }

// Latches exposes the latch table for statistics.
func (e *Engine) Latches() *LatchTable { return e.lt }

// Prewarm positions the engine in steady state: every database block
// resident in the SGA, as in the paper's measurement methodology.
func (e *Engine) Prewarm() {
	e.pool.Prewarm(e.cfg.TotalBlocks())
}

// NewSession creates the execution context for one server process. pgaBase
// is the process's private memory region.
func (e *Engine) NewSession(id int, pgaBase uint64) *Session {
	s := &Session{ID: id, PGABase: pgaBase, UndoSeg: id % e.cfg.UndoSegments}
	// Stagger scan cursors (scenario mixes) so concurrent scanning sessions
	// cover different parts of the account table instead of convoying.
	s.scanBlock = int32(uint64(id) * 2654435761 % uint64(e.cfg.AccountBlocks()))
	return s
}

// dictAddr returns a dictionary-cache entry's line, page-strided so entry
// homes spread across nodes.
func (e *Engine) dictAddr(i int) uint64 {
	return e.dictBase + uint64(i)*(memref.PageBytes+memref.LineBytes)
}

// Block-number helpers.

func (e *Engine) branchBlock(branch int) int32 {
	return e.branchBlock0 + int32(branch/e.cfg.BranchesPerBlock)
}

func (e *Engine) tellerBlock(teller int) int32 {
	return e.tellerBlock0 + int32(teller/e.cfg.TellersPerBlock)
}

func (e *Engine) accountBlock(acct int) int32 {
	return e.accountBlock0 + int32(acct/e.cfg.AccountsPerBlock)
}

// rowAddr returns the address of a row's first line within its block. Row 0
// starts one line past the block header line.
func (e *Engine) rowAddr(block int32, slot, rowBytes int) uint64 {
	return e.pool.BlockAddr(block, memref.LineBytes+slot*rowBytes)
}

// TxnInput selects the rows of one transaction. The harness draws it with
// the process's RNG so engine state stays independent of selection
// randomness.
type TxnInput struct {
	Teller int
	Branch int // the teller's branch
	Acct   int
	Delta  int64
}

// DrawTxn picks a TPC-B transaction input: a uniform teller, its branch, and
// an account from the same branch with probability 85% (the TPC-A/B
// "remote branch" rule), uniform over all other branches otherwise.
func (e *Engine) DrawTxn(r *sim.RNG) TxnInput {
	return e.DrawTxnShaped(r, nil, 1)
}

// ExecTxn runs one TPC-B transaction body for sess up to and including the
// commit record, returning the LSN the session must wait on before the
// commit is durable (group commit through the log writer). The caller emits
// the surrounding client/kernel activity and blocks the process until the
// log writer acknowledges the LSN.
func (e *Engine) ExecTxn(sess *Session, in TxnInput) (commitLSN uint64) {
	e.Stats.Txns++
	if in.Acct/e.cfg.AccountsPerBranch != in.Branch {
		e.Stats.RemoteBranch++
	}
	sess.pinned = sess.pinned[:0]

	// Cursor open / soft parse for the transaction's statements.
	e.em.Code(e.code.SQLPrep)
	e.touchSharedPoolTail()
	// Session state in the PGA.
	e.em.Store(sess.PGABase, false)

	// UPDATE account SET balance = balance + :delta WHERE id = :acct
	e.execCursor(stmtUpdateAccount)
	ablock := e.accountBlock(in.Acct)
	e.indexLookup(in.Acct)
	af := e.updateRow(sess, ablock, in.Acct%e.cfg.AccountsPerBlock, 96)
	e.accountBal[in.Acct] += in.Delta
	_ = af

	// UPDATE teller (dictionary-resolved block, no index walk).
	e.execCursor(stmtUpdateTeller)
	e.em.Load(e.dictAddr(in.Teller%32), false)
	tblock := e.tellerBlock(in.Teller)
	e.updateRow(sess, tblock, in.Teller%e.cfg.TellersPerBlock, 128)
	e.tellerBal[in.Teller] += in.Delta

	// UPDATE branch: the classic TPC-B hot spot — 40 rows shared by every
	// processor.
	e.execCursor(stmtUpdateBranch)
	e.em.Load(e.dictAddr(32+in.Branch%16), false)
	bblock := e.branchBlock(in.Branch)
	e.updateRow(sess, bblock, in.Branch%e.cfg.BranchesPerBlock, 128)
	e.branchBal[in.Branch] += in.Delta

	// INSERT INTO history.
	e.execCursor(stmtInsertHistory)
	e.insertHistory(sess, in)
	e.deltaSum += in.Delta
	e.historyLen++

	// Commit: commit record into the redo stream.
	e.em.Code(e.code.TxnCommit)
	commitLSN = e.log.Append(64, true, sess.ID)
	sess.lastLSN = commitLSN
	return commitLSN
}

// PostCommit performs the work after the commit is durable: unpinning
// buffers and cleaning up transaction state.
func (e *Engine) PostCommit(sess *Session) {
	e.em.Code(e.code.TxnCleanup)
	for _, f := range sess.pinned {
		e.pool.Unpin(f)
	}
	sess.pinned = sess.pinned[:0]
	e.em.Store(sess.PGABase+memref.LineBytes, false)
}

// execCursor emits the statement-execution driver: SQL engine code, the hot
// shared cursor lines (read-shared across all processors), the row-cache
// dictionary lookups every execution performs, a library-cache pin, and the
// cursor execution-statistics update (a migratory store).
func (e *Engine) execCursor(stmt int) {
	e.em.Code(e.code.SQLExec)
	// The shared cursor is a linked structure (Oracle's library-cache heaps
	// are pointer-chased), so the walk is a dependence chain.
	for i := 0; i < e.cfg.CursorHotLines; i++ {
		e.em.Load(e.cursorBase[stmt]+uint64(i)*memref.LineBytes, i > 0)
	}
	// Row-cache lookups: object/column/privilege entries, heavily skewed;
	// each is a bucket probe followed by a chained entry.
	for i := 0; i < 4; i++ {
		line := e.rcZipf.Next(e.rng)
		e.em.Load(e.rowCacheBase+uint64(line)*memref.LineBytes, i%2 == 1)
	}
	// Library cache pin (shared latch) + execution statistics.
	e.lt.Acquire(latchDML0 + stmt%numDML)
	e.em.Store(e.cursorStats[stmt], false)
	e.lt.Release(latchDML0 + stmt%numDML)
}

// touchSharedPoolTail models the library-cache lookups outside the hot
// cursors: a couple of skewed reads over the whole shared pool.
func (e *Engine) touchSharedPoolTail() {
	for i := 0; i < 2; i++ {
		line := e.poolZipf.Next(e.rng)
		e.em.Load(e.sharedPoolBase+uint64(line)*memref.LineBytes, i > 0)
	}
}

// indexLookup walks the account hash index: bucket line, then the entry line
// (address-dependent chain).
func (e *Engine) indexLookup(acct int) {
	e.em.Code(e.code.IdxLookup)
	h := uint64(acct) * 0x9e3779b97f4a7c15
	bucket := h % uint64(e.idxBuckets)
	e.em.Load(e.idxBucketBase+bucket*memref.LineBytes, false)
	e.em.Load(e.idxEntryBase+uint64(acct)*16, true)
}

// updateRow pins the block, updates the row (load + store), stamps the block
// header (ITL/SCN update), writes undo, and generates redo.
func (e *Engine) updateRow(sess *Session, block int32, slot, rowBytes int) int32 {
	f, missed := e.pool.Get(block)
	_ = missed // steady state: the pool holds every block
	sess.pinned = append(sess.pinned, f)

	e.em.Code(e.code.RowUpdate)
	row := e.rowAddr(block, slot, rowBytes)
	e.em.Load(row, true)
	e.em.Store(row, false)
	// Block header: transaction list / SCN stamp — a store to line 0 of the
	// block on every update, shared by all updaters of the block.
	e.em.Store(e.pool.BlockAddr(block, 0), false)
	e.pool.MarkDirty(f)

	e.writeUndo(sess)
	e.em.Code(e.code.RedoGen)
	e.log.Append(e.cfg.RedoPerUpdate, false, sess.ID)
	return f
}

// writeUndo appends the before-image to the session's rollback segment.
func (e *Engine) writeUndo(sess *Session) {
	e.em.Code(e.code.UndoWrite)
	block := e.undoBlock0 + int32(sess.UndoSeg*e.cfg.UndoBlocksPerSegment+sess.undoBlockIdx)
	f, _ := e.pool.Get(block)
	addr := e.pool.BlockAddr(block, memref.LineBytes+sess.undoOff)
	e.em.Store(addr, false)
	e.pool.MarkDirty(f)
	e.pool.Unpin(f)

	sess.undoOff += 160
	if sess.undoOff+160 > e.cfg.BlockBytes-memref.LineBytes {
		sess.undoOff = 0
		sess.undoBlockIdx = (sess.undoBlockIdx + 1) % e.cfg.UndoBlocksPerSegment
		e.Stats.UndoBlocks++
	}
	return
}

// insertHistory appends the history row at one of the rotating insert
// points.
func (e *Engine) insertHistory(sess *Session, in TxnInput) {
	e.em.Code(e.code.RowInsert)
	slot := &e.histSlot[sess.ID%len(e.histSlot)]
	const histRowBytes = 160
	addr := e.pool.BlockAddr(slot.block, memref.LineBytes+slot.rows*histRowBytes)
	f, _ := e.pool.Get(slot.block)
	sess.pinned = append(sess.pinned, f)
	e.em.Store(addr, false)
	e.em.Store(e.pool.BlockAddr(slot.block, 0), false)
	e.pool.MarkDirty(f)

	e.writeUndo(sess)
	e.em.Code(e.code.RedoGen)
	e.log.Append(e.cfg.RedoPerUpdate+32, false, sess.ID)

	slot.rows++
	if (slot.rows+1)*histRowBytes > e.cfg.BlockBytes-memref.LineBytes {
		// Block full: take the next window block (recycled in steady state)
		// and format it.
		slot.rows = 0
		slot.block = e.historyBlock0 + int32(e.histCursor%e.cfg.HistoryWindowBlocks)
		e.histCursor++
		e.Stats.HistoryBlocks++
		nf, _ := e.pool.Get(slot.block)
		e.em.Store(e.pool.BlockAddr(slot.block, 0), false)
		e.pool.MarkDirty(nf)
		e.pool.Unpin(nf)
	}
}

// --- Daemon operations -----------------------------------------------------

// LogWriterGather is the log writer's work loop body: it reads the unflushed
// redo out of the log buffer and returns the target LSN and byte count for
// the disk write (0 bytes means nothing to do). The caller models the I/O
// wait and then calls LogWriterComplete.
func (e *Engine) LogWriterGather() (target uint64, bytes int) {
	target = e.log.RequestedLSN()
	bytes = e.log.Gather(target)
	return target, bytes
}

// LogWriterComplete marks redo durable through target.
func (e *Engine) LogWriterComplete(target uint64) {
	e.log.MarkFlushed(target)
}

// DBWriterScan is the database writer's work loop body: it takes up to max
// dirty buffers, emits the header scan and cleaning stores, and returns how
// many blocks the subsequent disk write covers.
func (e *Engine) DBWriterScan(max int) int {
	e.em.Code(e.code.DbwrMain)
	frames := e.pool.PopDirty(max)
	for _, f := range frames {
		e.pool.Clean(f)
	}
	return len(frames)
}

// --- Invariants -------------------------------------------------------------

// CheckInvariants verifies the TPC-B consistency conditions on the
// functional state: the sum of account, teller, and branch balances must
// each equal the sum of all applied deltas, and the history length must
// equal the number of executed transactions.
func (e *Engine) CheckInvariants() error {
	var aSum, tSum, bSum int64
	for _, v := range e.accountBal {
		aSum += v
	}
	for _, v := range e.tellerBal {
		tSum += v
	}
	for _, v := range e.branchBal {
		bSum += v
	}
	if aSum != e.deltaSum || tSum != e.deltaSum || bSum != e.deltaSum {
		return fmt.Errorf("tpcb: balance invariant violated: accounts=%d tellers=%d branches=%d want %d",
			aSum, tSum, bSum, e.deltaSum)
	}
	if e.historyLen != e.Stats.Txns {
		return fmt.Errorf("tpcb: history length %d != transactions %d", e.historyLen, e.Stats.Txns)
	}
	return e.pool.CheckConsistency()
}

// Balances returns the totals for external assertions.
func (e *Engine) Balances() (accounts, tellers, branches, deltas int64) {
	var aSum, tSum, bSum int64
	for _, v := range e.accountBal {
		aSum += v
	}
	for _, v := range e.tellerBal {
		tSum += v
	}
	for _, v := range e.branchBal {
		bSum += v
	}
	return aSum, tSum, bSum, e.deltaSum
}

// AccountBalance returns one account's balance (tests).
func (e *Engine) AccountBalance(acct int) int64 { return e.accountBal[acct] }

// HistoryLen returns the number of history rows ever inserted.
func (e *Engine) HistoryLen() uint64 { return e.historyLen }
