// Package tpcb implements a functional miniature OLTP database engine that
// executes TPC-B transactions (paper Section 2.1) while emitting the memory
// references the execution would perform, into a simulated address space.
//
// The engine stands in for Oracle 7.3.2: it has a block buffer cache with
// hash lookup and LRU replacement, buffer-header pins, cache-buffers-chains
// latches, a circular redo log buffer with a redo-allocation latch and group
// commit, undo (rollback) segments, and log-writer / database-writer daemon
// operations. Those are exactly the structures whose sharing behaviour
// produces the communication misses the paper measures: buffer headers and
// branch/teller rows migrate between processors (3-hop misses), the redo
// allocation latch is a migratory hot line, the log writer pulls every redo
// line from the cache that wrote it, and the enormous mostly-cold account
// table supplies the capacity/cold miss tail.
//
// The engine is genuinely functional — balances update and the TPC-B
// consistency conditions hold — so tests can assert correctness, and the
// reference stream is produced by real executions rather than a synthetic
// statistical model.
package tpcb

import (
	"fmt"

	"oltpsim/internal/sim"
)

// Config sizes the database and its engine structures. Defaults reproduce
// the paper's setup: a TPC-B database with 40 branches and an SGA over
// 900 MB of which >100 MB is metadata.
type Config struct {
	// Branches is the TPC-B scale factor (paper: 40).
	Branches int
	// TellersPerBranch is 10 per the TPC-B specification.
	TellersPerBranch int
	// AccountsPerBranch is 100,000 per the TPC-B specification.
	AccountsPerBranch int

	// BlockBytes is the database block size (8 KB, Oracle's typical size and
	// the Alpha page size).
	BlockBytes int
	// AccountsPerBlock controls row packing for the account table
	// (~100-byte rows => 80 rows per 8 KB block).
	AccountsPerBlock int
	// TellersPerBlock packs teller rows (20 per block).
	TellersPerBlock int
	// BranchesPerBlock is 1: the classic TPC-B tuning that gives each
	// branch row a private block to reduce (but not eliminate) contention.
	BranchesPerBlock int
	// HistoryRowsPerBlock packs ~160-byte history rows (48 per block).
	HistoryRowsPerBlock int

	// BufferFrames is the number of block buffers in the SGA block buffer
	// area. The default gives ~790 MB of cached blocks, comfortably holding
	// the whole database, matching the paper's steady state where block
	// reads rarely go to disk.
	BufferFrames int
	// HashBuckets is the number of cache-buffers-chains hash buckets.
	HashBuckets int
	// CBCLatches is the number of cache-buffers-chains latches protecting
	// those buckets.
	CBCLatches int

	// LogBufferBytes is the circular redo log buffer size (1 MB).
	LogBufferBytes int
	// RedoPerUpdate is the redo payload bytes generated per row update.
	RedoPerUpdate int

	// UndoSegments is the number of rollback segments; sessions are assigned
	// round-robin, so concurrent transactions write different undo blocks.
	UndoSegments int
	// UndoBlocksPerSegment is the recycled window of blocks per segment.
	UndoBlocksPerSegment int

	// HistoryInsertSlots is the number of free-list insert points for the
	// history table; concurrent inserters rotate among them.
	HistoryInsertSlots int
	// HistoryWindowBlocks is the recycled window of history blocks (the
	// simulated steady state where old history has been checkpointed out).
	HistoryWindowBlocks int

	// SharedPoolBytes sizes the library-cache / cursor region of the SGA
	// metadata area; executions read skewed portions of it.
	SharedPoolBytes int
	// CursorHotLines is the per-statement hot cursor footprint in lines.
	CursorHotLines int

	// PGABytes is the per-process private memory (session heap, redo
	// scratch, sort area slices).
	PGABytes int

	// Zeta, when non-nil, memoizes the O(n) Zipf harmonic-sum constants
	// across engine constructions (one engine per experiment bar; the sums
	// depend only on the sizes above, so a sweep recomputes them
	// identically for every bar). The cached constants are bit-identical to
	// freshly computed ones, so sharing a cache never changes simulation
	// output. Nil means compute per engine.
	Zeta *sim.ZetaCache
}

// DefaultConfig returns the paper-scale configuration.
func DefaultConfig() Config {
	return Config{
		Branches:             40,
		TellersPerBranch:     10,
		AccountsPerBranch:    100_000,
		BlockBytes:           8192,
		AccountsPerBlock:     80,
		TellersPerBlock:      20,
		BranchesPerBlock:     1,
		HistoryRowsPerBlock:  48,
		BufferFrames:         101_000,
		HashBuckets:          8192,
		CBCLatches:           512,
		LogBufferBytes:       384 << 10,
		RedoPerUpdate:        144,
		UndoSegments:         8,
		UndoBlocksPerSegment: 4,
		HistoryInsertSlots:   4,
		HistoryWindowBlocks:  1024,
		SharedPoolBytes:      96 << 20,
		CursorHotLines:       24,
		PGABytes:             1 << 20,
	}
}

// SmallConfig returns a scaled-down database for fast unit tests. The engine
// logic is identical; only the table sizes shrink.
func SmallConfig() Config {
	c := DefaultConfig()
	c.Branches = 4
	c.AccountsPerBranch = 1000
	c.BufferFrames = 2048
	c.HashBuckets = 512
	c.CBCLatches = 32
	c.UndoSegments = 4
	c.HistoryWindowBlocks = 64
	c.SharedPoolBytes = 4 << 20
	return c
}

// Tellers returns the total teller count.
func (c Config) Tellers() int { return c.Branches * c.TellersPerBranch }

// Accounts returns the total account count.
func (c Config) Accounts() int { return c.Branches * c.AccountsPerBranch }

// BranchBlocks returns the number of blocks holding branch rows.
func (c Config) BranchBlocks() int {
	return (c.Branches + c.BranchesPerBlock - 1) / c.BranchesPerBlock
}

// TellerBlocks returns the number of blocks holding teller rows.
func (c Config) TellerBlocks() int {
	return (c.Tellers() + c.TellersPerBlock - 1) / c.TellersPerBlock
}

// AccountBlocks returns the number of blocks holding account rows.
func (c Config) AccountBlocks() int {
	return (c.Accounts() + c.AccountsPerBlock - 1) / c.AccountsPerBlock
}

// UndoBlocks returns the total undo block count.
func (c Config) UndoBlocks() int { return c.UndoSegments * c.UndoBlocksPerSegment }

// TotalBlocks returns the number of distinct database blocks the engine can
// reference (branch + teller + account + history window + undo).
func (c Config) TotalBlocks() int {
	return c.BranchBlocks() + c.TellerBlocks() + c.AccountBlocks() +
		c.HistoryWindowBlocks + c.UndoBlocks()
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Branches <= 0:
		return fmt.Errorf("tpcb: Branches must be positive, got %d", c.Branches)
	case c.TellersPerBranch <= 0 || c.AccountsPerBranch <= 0:
		return fmt.Errorf("tpcb: tellers/accounts per branch must be positive")
	case c.BlockBytes <= 0 || c.BlockBytes%64 != 0:
		return fmt.Errorf("tpcb: BlockBytes %d must be a positive multiple of the line size", c.BlockBytes)
	case c.AccountsPerBlock <= 0 || c.TellersPerBlock <= 0 || c.BranchesPerBlock <= 0 || c.HistoryRowsPerBlock <= 0:
		return fmt.Errorf("tpcb: row packing factors must be positive")
	case c.BufferFrames < c.TotalBlocks():
		return fmt.Errorf("tpcb: BufferFrames %d cannot hold the %d database blocks (the paper's SGA holds the whole database in steady state)",
			c.BufferFrames, c.TotalBlocks())
	case c.HashBuckets <= 0 || c.CBCLatches <= 0:
		return fmt.Errorf("tpcb: hash buckets and latches must be positive")
	case c.LogBufferBytes < 4096:
		return fmt.Errorf("tpcb: LogBufferBytes %d too small", c.LogBufferBytes)
	case c.UndoSegments <= 0 || c.UndoBlocksPerSegment <= 0:
		return fmt.Errorf("tpcb: undo configuration must be positive")
	case c.HistoryInsertSlots <= 0 || c.HistoryWindowBlocks < c.HistoryInsertSlots:
		return fmt.Errorf("tpcb: history window must cover the insert slots")
	}
	return nil
}
