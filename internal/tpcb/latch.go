package tpcb

import "oltpsim/internal/memref"

// LatchTable models the SGA's latch array: one latch per cache line (real
// latches are padded to a line precisely to avoid false sharing). Latches
// are the purest migratory-sharing objects in the workload: every acquire
// performs a read-modify-write of the latch line, so whichever processor
// last held a hot latch (the redo allocation latch above all) donates a
// 3-hop dirty miss to the next acquirer.
//
// The simulation emits the accesses but does not block on conflicts: the
// paper's results are memory-system effects, and latch hold times in a tuned
// OLTP system are far shorter than the scheduling quantum.
type LatchTable struct {
	em   Emitter
	code *ServerCode
	base uint64
	n    int

	// Acquires counts total latch acquisitions, for the workload-shape
	// tests.
	Acquires uint64
}

// Latch identifiers. The named singletons come first; the cache-buffers-
// chains latches occupy the tail of the table.
const (
	latchRedoAlloc = 0
	latchRedoCopy0 = 1 // 4 redo copy latches
	numRedoCopy    = 4
	latchLRU0      = latchRedoCopy0 + numRedoCopy // 8 LRU latches
	numLRU         = 8
	latchDML0      = latchLRU0 + numLRU // 4 DML lock latches
	numDML         = 4
	latchCBC0      = latchDML0 + numDML // CBC latches follow
)

// latchStride scatters latches across pages (and cache sets): in a real SGA
// the hot latches live inside the structures they protect, spread over the
// whole shared region, so their NUMA homes are distributed — not packed
// into the first page of a dedicated array.
const latchStride = memref.PageBytes + 3*memref.LineBytes

func newLatchTable(alloc Allocator, em Emitter, code *ServerCode, cbcLatches int) *LatchTable {
	n := latchCBC0 + cbcLatches
	base := alloc.Alloc("sga.latches", uint64(n)*latchStride+memref.PageBytes, KindShared)
	return &LatchTable{em: em, code: code, base: base, n: n}
}

func (lt *LatchTable) addr(i int) uint64 {
	if i < 0 || i >= lt.n {
		panic("tpcb: latch index out of range")
	}
	return lt.base + uint64(i)*latchStride
}

// Acquire emits one latch acquisition: the latch code path plus the
// test-and-set of the latch line. The atomic RMW issues as a single
// read-exclusive transaction (a store in the protocol's terms), so grabbing
// a latch held last by another processor is one 3-hop ownership transfer,
// not a read miss followed by an upgrade.
func (lt *LatchTable) Acquire(i int) {
	lt.Acquires++
	lt.em.Code(lt.code.LatchAcq)
	lt.em.Store(lt.addr(i), false)
}

// Release emits the latch release store.
func (lt *LatchTable) Release(i int) {
	lt.em.Store(lt.addr(i), false)
}

// CBC returns the cache-buffers-chains latch protecting bucket.
func (lt *LatchTable) CBC(bucket, cbcLatches int) int {
	return latchCBC0 + bucket%cbcLatches
}
