package tpcb

import (
	"testing"
	"testing/quick"

	"oltpsim/internal/sim"
)

func newTestEngine(t *testing.T, em Emitter) *Engine {
	t.Helper()
	cfg := SmallConfig()
	e, err := NewEngine(cfg, &BumpAllocator{}, em, 1)
	if err != nil {
		t.Fatal(err)
	}
	e.Prewarm()
	return e
}

func runTxns(e *Engine, n int, seed uint64) {
	r := sim.NewRNG(seed)
	sess := e.NewSession(0, 1<<40)
	for i := 0; i < n; i++ {
		lsn := e.ExecTxn(sess, e.DrawTxn(r))
		target, _ := e.LogWriterGather()
		if target < lsn {
			panic("gather target below commit lsn")
		}
		e.LogWriterComplete(target)
		e.PostCommit(sess)
	}
}

func TestInvariantsAfterTransactions(t *testing.T) {
	e := newTestEngine(t, NopEmitter{})
	runTxns(e, 500, 7)
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if e.HistoryLen() != 500 {
		t.Fatalf("history %d", e.HistoryLen())
	}
	a, tl, b, d := e.Balances()
	if a != d || tl != d || b != d {
		t.Fatalf("balances %d %d %d vs deltas %d", a, tl, b, d)
	}
}

func TestInvariantsProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		e := MustNewEngine(SmallConfig(), &BumpAllocator{}, NopEmitter{}, seed)
		e.Prewarm()
		runTxns(e, int(n%64)+1, seed)
		return e.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestDrawTxnDistribution(t *testing.T) {
	e := newTestEngine(t, NopEmitter{})
	r := sim.NewRNG(3)
	remote := 0
	const n = 20_000
	for i := 0; i < n; i++ {
		in := e.DrawTxn(r)
		if in.Teller < 0 || in.Teller >= e.cfg.Tellers() {
			t.Fatal("teller out of range")
		}
		if in.Branch != in.Teller/e.cfg.TellersPerBranch {
			t.Fatal("branch does not match teller")
		}
		if in.Acct < 0 || in.Acct >= e.cfg.Accounts() {
			t.Fatal("account out of range")
		}
		if in.Acct/e.cfg.AccountsPerBranch != in.Branch {
			remote++
		}
		if in.Delta < -999_999 || in.Delta > 999_999 {
			t.Fatalf("delta %d out of TPC-B range", in.Delta)
		}
	}
	frac := float64(remote) / n
	if frac < 0.13 || frac > 0.17 {
		t.Fatalf("remote-branch fraction %.3f, want ~0.15 (TPC-B rule)", frac)
	}
}

func TestAccountBalanceUpdated(t *testing.T) {
	e := newTestEngine(t, NopEmitter{})
	sess := e.NewSession(0, 1<<40)
	in := TxnInput{Teller: 0, Branch: 0, Acct: 42, Delta: 100}
	e.ExecTxn(sess, in)
	e.PostCommit(sess)
	if e.AccountBalance(42) != 100 {
		t.Fatalf("balance %d", e.AccountBalance(42))
	}
	e.ExecTxn(sess, TxnInput{Teller: 0, Branch: 0, Acct: 42, Delta: -30})
	if e.AccountBalance(42) != 70 {
		t.Fatalf("balance %d after second txn", e.AccountBalance(42))
	}
}

func TestEmissionShape(t *testing.T) {
	var em CountingEmitter
	cfg := SmallConfig()
	e := MustNewEngine(cfg, &BumpAllocator{}, &em, 1)
	e.Prewarm()
	sess := e.NewSession(0, 1<<40)
	r := sim.NewRNG(5)
	for i := 0; i < 10; i++ {
		e.ExecTxn(sess, e.DrawTxn(r))
		e.PostCommit(sess)
	}
	perTxnInstrs := float64(em.Instrs) / 10
	perTxnLoads := float64(em.Loads) / 10
	perTxnStores := float64(em.Stores) / 10
	// The transaction path must look like OLTP: thousands of instructions,
	// a heavy store component (metadata, redo, undo, history).
	if perTxnInstrs < 2000 || perTxnInstrs > 50_000 {
		t.Fatalf("instructions per txn %.0f implausible", perTxnInstrs)
	}
	if perTxnLoads < 30 || perTxnStores < 30 {
		t.Fatalf("loads %.0f stores %.0f per txn too few", perTxnLoads, perTxnStores)
	}
	if perTxnStores < perTxnLoads/4 {
		t.Fatalf("store share too small for TPC-B (loads %.0f stores %.0f)", perTxnLoads, perTxnStores)
	}
}

func TestLogGroupCommit(t *testing.T) {
	e := newTestEngine(t, NopEmitter{})
	r := sim.NewRNG(9)
	s1 := e.NewSession(1, 1<<40)
	s2 := e.NewSession(2, 2<<40)
	lsn1 := e.ExecTxn(s1, e.DrawTxn(r))
	lsn2 := e.ExecTxn(s2, e.DrawTxn(r))
	if lsn2 <= lsn1 {
		t.Fatal("LSNs not monotonic")
	}
	target, bytes := e.LogWriterGather()
	if target < lsn2 || bytes == 0 {
		t.Fatalf("gather target %d bytes %d", target, bytes)
	}
	e.LogWriterComplete(target)
	if e.Log().Pending() {
		t.Fatal("pending redo after complete")
	}
	// A second gather with nothing new must be empty.
	if _, bytes := e.LogWriterGather(); bytes != 0 {
		t.Fatalf("idle gather returned %d bytes", bytes)
	}
}

func TestLogWraparound(t *testing.T) {
	e := newTestEngine(t, NopEmitter{})
	r := sim.NewRNG(11)
	sess := e.NewSession(0, 1<<40)
	// Enough transactions to wrap the small log buffer several times.
	for i := 0; i < 2000; i++ {
		e.ExecTxn(sess, e.DrawTxn(r))
		t1, _ := e.LogWriterGather()
		e.LogWriterComplete(t1)
		e.PostCommit(sess)
	}
	if e.Log().Stats.Overruns != 0 {
		t.Fatalf("log overruns %d with a keeping-up writer", e.Log().Stats.Overruns)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDBWriterCleansDirty(t *testing.T) {
	e := newTestEngine(t, NopEmitter{})
	runTxns(e, 50, 13)
	if e.Pool().DirtyBacklog() == 0 {
		t.Fatal("no dirty buffers after 50 txns")
	}
	total := 0
	for i := 0; i < 100 && e.Pool().DirtyBacklog() > 0; i++ {
		total += e.DBWriterScan(16)
	}
	if total == 0 {
		t.Fatal("DBWR wrote nothing")
	}
	if e.Pool().DirtyBacklog() != 0 {
		t.Fatalf("backlog %d remains", e.Pool().DirtyBacklog())
	}
	if e.Pool().Stats.Cleaned == 0 {
		t.Fatal("no cleaned counter")
	}
}

func TestPrewarmMakesResident(t *testing.T) {
	cfg := SmallConfig()
	e := MustNewEngine(cfg, &BumpAllocator{}, NopEmitter{}, 1)
	e.Prewarm()
	if e.Pool().Resident() != cfg.TotalBlocks() {
		t.Fatalf("resident %d, want %d", e.Pool().Resident(), cfg.TotalBlocks())
	}
	// Steady state: transactions cause no pool misses.
	runTxns(e, 200, 17)
	if e.Pool().Stats.Misses != 0 {
		t.Fatalf("pool misses %d in steady state", e.Pool().Stats.Misses)
	}
}

func TestPoolMissWithoutPrewarm(t *testing.T) {
	cfg := SmallConfig()
	e := MustNewEngine(cfg, &BumpAllocator{}, NopEmitter{}, 1)
	sess := e.NewSession(0, 1<<40)
	e.ExecTxn(sess, TxnInput{Teller: 0, Branch: 0, Acct: 0, Delta: 1})
	if e.Pool().Stats.Misses == 0 {
		t.Fatal("cold pool produced no misses")
	}
}

func TestHistoryBlockRotation(t *testing.T) {
	e := newTestEngine(t, NopEmitter{})
	runTxns(e, 400, 19)
	if e.Stats.HistoryBlocks == 0 {
		t.Fatal("history never advanced to a new block")
	}
	if e.Stats.UndoBlocks == 0 {
		t.Fatal("undo window never rotated")
	}
}

func TestLatchActivity(t *testing.T) {
	e := newTestEngine(t, NopEmitter{})
	runTxns(e, 10, 23)
	// Each transaction takes at least: redo alloc per statement + CBC per
	// get + copy latches.
	if e.Latches().Acquires < 10*10 {
		t.Fatalf("latch acquires %d too few", e.Latches().Acquires)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := SmallConfig()
	bad.BufferFrames = 10 // cannot hold the database
	if _, err := NewEngine(bad, &BumpAllocator{}, NopEmitter{}, 1); err == nil {
		t.Fatal("undersized pool accepted")
	}
	bad2 := SmallConfig()
	bad2.Branches = 0
	if err := bad2.Validate(); err == nil {
		t.Fatal("zero branches accepted")
	}
	bad3 := SmallConfig()
	bad3.BlockBytes = 100
	if err := bad3.Validate(); err == nil {
		t.Fatal("non-line-multiple block accepted")
	}
}

func TestBlockLayoutDisjoint(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	// Paper scale: 40 branches, 400 tellers, 4M accounts.
	if cfg.Accounts() != 4_000_000 || cfg.Tellers() != 400 {
		t.Fatalf("scale wrong: %d accounts %d tellers", cfg.Accounts(), cfg.Tellers())
	}
	e := MustNewEngine(cfg, &BumpAllocator{}, NopEmitter{}, 1)
	// Block number ranges must be disjoint and ordered.
	if !(e.branchBlock0 < e.tellerBlock0 && e.tellerBlock0 < e.accountBlock0 &&
		e.accountBlock0 < e.historyBlock0 && e.historyBlock0 < e.undoBlock0) {
		t.Fatal("block ranges out of order")
	}
	if int(e.undoBlock0)+cfg.UndoBlocks() != cfg.TotalBlocks() {
		t.Fatal("total block count inconsistent")
	}
}

func TestCodeFootprint(t *testing.T) {
	alloc := &BumpAllocator{}
	sc := newServerCode(alloc)
	total := sc.TotalBytes()
	// The paper's premise: the server instruction footprint overwhelms a
	// 64 KB L1 but fits comfortably in a 2 MB associative L2.
	if total < 256<<10 || total > 1<<20 {
		t.Fatalf("server code footprint %d bytes outside plausible band", total)
	}
}

func TestCodeFnWalk(t *testing.T) {
	fn := &CodeFn{Name: "w", Base: 0x1000, SizeLines: 8, PathInstrs: 40, Loopy: true}
	var lines []uint64
	var instrs int
	fn.Lines(func(a uint64, n int) { lines = append(lines, a); instrs += n })
	if instrs != 40 {
		t.Fatalf("instrs %d", instrs)
	}
	if len(lines) != 3 { // ceil(40/16)
		t.Fatalf("lines %d", len(lines))
	}
	if lines[0] != 0x1000 || lines[1] != 0x1040 {
		t.Fatalf("walk addresses wrong: %#x %#x", lines[0], lines[1])
	}
}

func TestCodeFnPersistentCursor(t *testing.T) {
	fn := &CodeFn{Name: "p", Base: 0, SizeLines: 100, PathInstrs: 160} // 10 lines per call
	first := make(map[uint64]bool)
	fn.Lines(func(a uint64, n int) { first[a] = true })
	overlap := 0
	fn.Lines(func(a uint64, n int) {
		if first[a] {
			overlap++
		}
	})
	if overlap != 0 {
		t.Fatalf("non-loopy second call revisited %d lines", overlap)
	}
}

func TestCodeFnStride(t *testing.T) {
	fn := &CodeFn{Name: "s", Base: 0, SizeLines: 100, PathInstrs: 32, Loopy: true, Stride: 5}
	var a1, a2 uint64
	fn.Lines(func(a uint64, n int) { a1 = a })
	fn.Lines(func(a uint64, n int) { a2 = a })
	_ = a1
	if a2 != 5*64+64 { // second call starts at line 5; captured addr is its 2nd line
		t.Fatalf("stride walk second call ended at %#x", a2)
	}
}

func TestBumpAllocatorAlignment(t *testing.T) {
	a := &BumpAllocator{}
	x := a.Alloc("x", 100, KindShared)
	y := a.Alloc("y", 100, KindShared)
	if y <= x || y%8192 != 0 {
		t.Fatalf("allocator alignment wrong: %#x %#x", x, y)
	}
}
