package tpcb

import "oltpsim/internal/memref"

// LogStats counts redo-log activity.
type LogStats struct {
	Appends      uint64
	BytesWritten uint64
	Gathers      uint64
	Overruns     uint64 // writer caught up with unflushed tail (should stay 0)
}

// RedoLog is the circular redo log buffer plus its latches. Servers append
// redo under the redo-allocation latch (the hottest line in the SGA) and one
// of a few redo-copy latches; the log writer gathers the appended bytes —
// reading every line out of whichever processor's cache wrote it, a steady
// source of 3-hop misses on the multiprocessor — and writes them to disk,
// after which commits waiting on those bytes are acknowledged (group
// commit).
type RedoLog struct {
	cfg  *Config
	em   Emitter
	code *ServerCode
	lt   *LatchTable

	base uint64
	size uint64

	// LSNs are monotonically increasing byte offsets; the buffer position is
	// lsn % size.
	nextLSN      uint64
	requestedLSN uint64 // highest commit LSN awaiting flush
	flushedLSN   uint64

	Stats LogStats
}

func newRedoLog(cfg *Config, alloc Allocator, em Emitter, code *ServerCode, lt *LatchTable) *RedoLog {
	return &RedoLog{
		cfg:  cfg,
		em:   em,
		code: code,
		lt:   lt,
		base: alloc.Alloc("sga.log_buffer", uint64(cfg.LogBufferBytes), KindShared),
		size: uint64(cfg.LogBufferBytes),
	}
}

// lineAddr maps an LSN to its line address in the circular buffer.
func (l *RedoLog) lineAddr(lsn uint64) uint64 {
	return l.base + (lsn%l.size)&^uint64(memref.LineBytes-1)
}

// Append allocates n bytes of redo, copies them into the buffer (emitting
// the stores), and returns the LSN one past the record. commit marks the
// record as one a session will wait on.
func (l *RedoLog) Append(n int, commit bool, copyLatch int) uint64 {
	l.Stats.Appends++
	l.Stats.BytesWritten += uint64(n)

	// Allocation: the single redo allocation latch serializes LSN claims.
	l.lt.Acquire(latchRedoAlloc)
	start := l.nextLSN
	l.nextLSN += uint64(n)
	l.lt.Release(latchRedoAlloc)

	if l.nextLSN-l.flushedLSN > l.size {
		// The buffer wrapped onto unflushed redo. Real Oracle stalls the
		// session ("log buffer space"); our log writer keeps up in practice,
		// so we count the event and advance flushed to stay functional.
		l.Stats.Overruns++
		l.flushedLSN = l.nextLSN - l.size
	}

	// Copy under one of the redo copy latches.
	l.em.Code(l.code.RedoCopy)
	l.lt.Acquire(latchRedoCopy0 + copyLatch%numRedoCopy)
	for off := uint64(0); off < uint64(n); off += memref.LineBytes {
		l.em.Store(l.lineAddr(start+off), false)
	}
	l.lt.Release(latchRedoCopy0 + copyLatch%numRedoCopy)

	if commit {
		l.requestedLSN = l.nextLSN
	}
	return l.nextLSN
}

// RequestedLSN returns the highest LSN a committing session is waiting on.
func (l *RedoLog) RequestedLSN() uint64 { return l.requestedLSN }

// FlushedLSN returns the LSN through which redo is durably on disk.
func (l *RedoLog) FlushedLSN() uint64 { return l.flushedLSN }

// Gather is the log writer's read of the unflushed region [flushed, target):
// it emits a load of every line (pulling each from the writing processor's
// cache) and returns the byte count to be written to disk. target must not
// exceed nextLSN.
func (l *RedoLog) Gather(target uint64) int {
	if target > l.nextLSN {
		panic("tpcb: log gather beyond appended redo")
	}
	if target <= l.flushedLSN {
		return 0
	}
	l.Stats.Gathers++
	l.em.Code(l.code.LgwrMain)
	from := l.flushedLSN &^ uint64(memref.LineBytes-1)
	for off := from; off < target; off += memref.LineBytes {
		l.em.Load(l.lineAddr(off), false)
	}
	return int(target - l.flushedLSN)
}

// MarkFlushed advances the durable LSN after the disk write completes.
func (l *RedoLog) MarkFlushed(lsn uint64) {
	if lsn > l.flushedLSN {
		l.flushedLSN = lsn
	}
}

// Pending reports whether unflushed commit redo exists.
func (l *RedoLog) Pending() bool { return l.requestedLSN > l.flushedLSN }
