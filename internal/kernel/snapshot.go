package kernel

import (
	"fmt"

	"oltpsim/internal/memref"
	"oltpsim/internal/snapshot"
)

// refBytes is the encoded size of one memref.Ref, used to bound the
// allocation a hostile length prefix could force.
const refBytes = 8 + 1 + 1 + 1 + 4

func encodeRefs(e *snapshot.Encoder, refs []memref.Ref) {
	e.Int(len(refs))
	for _, r := range refs {
		e.U64(r.Addr)
		e.U8(uint8(r.Kind))
		e.Bool(r.Kernel)
		e.Bool(r.DepPrev)
		e.U32(uint32(r.Instrs))
	}
}

func decodeRefs(d *snapshot.Decoder) ([]memref.Ref, error) {
	n := d.Int()
	if d.Err() != nil {
		return nil, d.Err()
	}
	if n < 0 || n*refBytes > d.Remaining() {
		return nil, fmt.Errorf("kernel: ref count %d exceeds remaining input", n)
	}
	refs := make([]memref.Ref, n)
	for i := range refs {
		refs[i] = memref.Ref{
			Addr:    d.U64(),
			Kind:    memref.Kind(d.U8()),
			Kernel:  d.Bool(),
			DepPrev: d.Bool(),
			Instrs:  uint16(d.U32()),
		}
	}
	return refs, d.Err()
}

// SaveState writes every process's execution position and the per-CPU run
// queues. A pending directive's OnDrain closure cannot be serialized
// directly; drainTag maps it to a small integer the workload layer knows how
// to rebind on load (0 is reserved for "no closure").
func (s *Scheduler) SaveState(e *snapshot.Encoder, drainTag func(p *Proc) uint8) {
	e.Int(len(s.cpus))
	for ci := range s.cpus {
		c := &s.cpus[ci]
		e.Int(len(c.procs))
		for _, p := range c.procs {
			e.U8(uint8(p.state))
			e.U64(p.wakeAt)
			encodeRefs(e, p.buf.Refs)
			e.Int(p.pos)
			e.Bool(p.hasPending)
			e.U8(uint8(p.pending.Kind))
			e.U64(p.pending.Until)
			e.U64(p.pending.Dur)
			tag := uint8(0)
			if p.hasPending && p.pending.OnDrain != nil {
				tag = drainTag(p)
				if tag == 0 {
					panic(fmt.Sprintf("kernel: process %q has an untaggable drain action", p.Name))
				}
			}
			e.U8(tag)
			e.Int(p.sliceUsed)
		}
		cur := -1
		for i, p := range c.procs {
			if p == c.cur {
				cur = i
			}
		}
		e.Int(cur)
		encodeRefs(e, c.swBuf.Refs)
		e.Int(c.swPos)
	}
	e.U64(s.ContextSwitches)
	e.U64(s.Preemptions)
}

// LoadState restores a scheduler with the identical process topology.
// rebind resolves a nonzero drain tag back to the closure it stood for.
func (s *Scheduler) LoadState(d *snapshot.Decoder, rebind func(p *Proc, tag uint8) (func(uint64), error)) error {
	if n := d.Int(); d.Err() == nil && n != len(s.cpus) {
		return fmt.Errorf("kernel: snapshot has %d CPUs, want %d", n, len(s.cpus))
	}
	if d.Err() != nil {
		return d.Err()
	}
	for ci := range s.cpus {
		c := &s.cpus[ci]
		if n := d.Int(); d.Err() == nil && n != len(c.procs) {
			return fmt.Errorf("kernel: CPU %d has %d processes in snapshot, want %d", ci, n, len(c.procs))
		}
		for _, p := range c.procs {
			state := procState(d.U8())
			wakeAt := d.U64()
			refs, err := decodeRefs(d)
			if err != nil {
				return err
			}
			pos := d.Int()
			hasPending := d.Bool()
			pending := Directive{Kind: DirectiveKind(d.U8()), Until: d.U64(), Dur: d.U64()}
			tag := d.U8()
			sliceUsed := d.Int()
			if err := d.Err(); err != nil {
				return err
			}
			if state > stateDead {
				return fmt.Errorf("kernel: process %q has invalid state %d", p.Name, state)
			}
			if pending.Kind > Exit {
				return fmt.Errorf("kernel: process %q has invalid directive %d", p.Name, pending.Kind)
			}
			if pos < 0 || pos > len(refs) {
				return fmt.Errorf("kernel: process %q position %d outside %d refs", p.Name, pos, len(refs))
			}
			if tag != 0 {
				if !hasPending {
					return fmt.Errorf("kernel: process %q has a drain tag without a pending directive", p.Name)
				}
				fn, err := rebind(p, tag)
				if err != nil {
					return err
				}
				pending.OnDrain = fn
			}
			p.state = state
			p.wakeAt = wakeAt
			p.buf.Refs = append(p.buf.Refs[:0], refs...)
			p.pos = pos
			p.pending = pending
			p.hasPending = hasPending
			p.sliceUsed = sliceUsed
		}
		cur := d.Int()
		swRefs, err := decodeRefs(d)
		if err != nil {
			return err
		}
		swPos := d.Int()
		if err := d.Err(); err != nil {
			return err
		}
		if cur < -1 || cur >= len(c.procs) {
			return fmt.Errorf("kernel: CPU %d current process %d out of range", ci, cur)
		}
		if swPos < 0 || swPos > len(swRefs) {
			return fmt.Errorf("kernel: CPU %d switch position %d outside %d refs", ci, swPos, len(swRefs))
		}
		if cur >= 0 {
			if c.procs[cur].state != stateRunning {
				return fmt.Errorf("kernel: CPU %d current process %q not running", ci, c.procs[cur].Name)
			}
			c.cur = c.procs[cur]
		} else {
			c.cur = nil
		}
		c.swBuf.Refs = append(c.swBuf.Refs[:0], swRefs...)
		c.swPos = swPos
		c.owValid = false
	}
	s.ContextSwitches = d.U64()
	s.Preemptions = d.U64()
	return d.Err()
}
