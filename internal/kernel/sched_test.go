package kernel

import (
	"reflect"
	"testing"

	"oltpsim/internal/memref"
)

// scriptGen replays a list of scripted segments.
type scriptGen struct {
	segments []scriptSeg
	pos      int
	drains   []uint64
}

type scriptSeg struct {
	refs int
	dir  Directive
}

func (g *scriptGen) NextSegment(now uint64, out *RefBuffer) Directive {
	if g.pos >= len(g.segments) {
		return Directive{Kind: Exit}
	}
	seg := g.segments[g.pos]
	g.pos++
	for i := 0; i < seg.refs; i++ {
		out.Append(memref.Ref{Addr: uint64(i) * 64, Kind: memref.Load})
	}
	d := seg.dir
	prev := d.OnDrain
	d.OnDrain = func(t uint64) {
		g.drains = append(g.drains, t)
		if prev != nil {
			prev(t)
		}
	}
	return d
}

// drain pulls refs from the scheduler, advancing a fake clock one cycle per
// reference, and returns the refs seen and the final status.
func drain(s *Scheduler, cpu int, start uint64, max int) (n int, st Status, wake uint64, now uint64) {
	now = start
	for i := 0; i < max; i++ {
		_, status, w := s.Next(cpu, now)
		if status != StatusRef {
			return n, status, w, now
		}
		n++
		now++
	}
	return n, StatusRef, 0, now
}

func TestRunThenExit(t *testing.T) {
	s := NewScheduler(1, 100, nil)
	g := &scriptGen{segments: []scriptSeg{{refs: 5, dir: Directive{Kind: Run}}, {refs: 3, dir: Directive{Kind: Exit}}}}
	s.Spawn(0, "p", g)
	n, st, _, _ := drain(s, 0, 0, 100)
	if n != 8 || st != StatusDone {
		t.Fatalf("drained %d refs, status %v", n, st)
	}
}

func TestOnDrainFiresAfterRefs(t *testing.T) {
	s := NewScheduler(1, 100, nil)
	g := &scriptGen{segments: []scriptSeg{{refs: 4, dir: Directive{Kind: Exit}}}}
	s.Spawn(0, "p", g)
	_, _, _, now := drain(s, 0, 10, 100)
	if len(g.drains) != 1 {
		t.Fatalf("OnDrain fired %d times", len(g.drains))
	}
	if g.drains[0] != now {
		t.Fatalf("OnDrain at %d, want drain time %d", g.drains[0], now)
	}
}

func TestSleepAndWake(t *testing.T) {
	s := NewScheduler(1, 100, nil)
	g := &scriptGen{segments: []scriptSeg{
		{refs: 2, dir: Directive{Kind: Sleep, Until: 1000}},
		{refs: 1, dir: Directive{Kind: Exit}},
	}}
	s.Spawn(0, "p", g)
	n, st, wake, now := drain(s, 0, 0, 100)
	if n != 2 || st != StatusIdle || wake != 1000 {
		t.Fatalf("n=%d st=%v wake=%d", n, st, wake)
	}
	_ = now
	n, st, _, _ = drain(s, 0, 1000, 100)
	if n != 1 || st != StatusDone {
		t.Fatalf("after sleep: n=%d st=%v", n, st)
	}
}

func TestIOWaitMeasuredFromDrain(t *testing.T) {
	s := NewScheduler(1, 100, nil)
	g := &scriptGen{segments: []scriptSeg{
		{refs: 3, dir: Directive{Kind: IOWait, Dur: 500}},
		{refs: 1, dir: Directive{Kind: Exit}},
	}}
	s.Spawn(0, "p", g)
	n, st, wake, now := drain(s, 0, 100, 100)
	if n != 3 || st != StatusIdle {
		t.Fatalf("n=%d st=%v", n, st)
	}
	if wake != now+500 {
		t.Fatalf("wake %d, want drain(%d)+500", wake, now)
	}
}

func TestBlockAndExplicitWake(t *testing.T) {
	s := NewScheduler(1, 100, nil)
	g := &scriptGen{segments: []scriptSeg{
		{refs: 1, dir: Directive{Kind: Block}},
		{refs: 1, dir: Directive{Kind: Exit}},
	}}
	p := s.Spawn(0, "p", g)
	_, st, _, now := drain(s, 0, 0, 100)
	if st != StatusIdle {
		t.Fatalf("blocked proc: status %v", st)
	}
	s.Wake(p, now+50)
	n, st, _, _ := drain(s, 0, now+50, 100)
	if n != 1 || st != StatusDone {
		t.Fatalf("after wake: n=%d st=%v", n, st)
	}
}

func TestWakeNonWaitingIsNoop(t *testing.T) {
	s := NewScheduler(1, 100, nil)
	g := &scriptGen{segments: []scriptSeg{{refs: 1, dir: Directive{Kind: Exit}}}}
	p := s.Spawn(0, "p", g)
	s.Wake(p, 5) // ready, not waiting
	if p.state != stateReady {
		t.Fatal("Wake changed a ready process")
	}
}

func TestRoundRobinBetweenProcs(t *testing.T) {
	s := NewScheduler(1, 2, nil) // tiny quantum
	a := &scriptGen{segments: []scriptSeg{{refs: 10, dir: Directive{Kind: Exit}}}}
	b := &scriptGen{segments: []scriptSeg{{refs: 10, dir: Directive{Kind: Exit}}}}
	s.Spawn(0, "a", a)
	s.Spawn(0, "b", b)
	n, st, _, _ := drain(s, 0, 0, 100)
	if n != 20 || st != StatusDone {
		t.Fatalf("n=%d st=%v", n, st)
	}
	if s.Preemptions == 0 {
		t.Fatal("tiny quantum produced no preemptions")
	}
	if s.ContextSwitches < 2 {
		t.Fatalf("context switches %d", s.ContextSwitches)
	}
}

func TestContextSwitchOverheadInjected(t *testing.T) {
	switches := 0
	s := NewScheduler(1, 1000, func(cpu int, out *RefBuffer) {
		switches++
		out.Append(memref.Ref{Addr: 0xdead0000, Kind: memref.IFetch, Instrs: 16, Kernel: true})
	})
	g := &scriptGen{segments: []scriptSeg{{refs: 2, dir: Directive{Kind: Exit}}}}
	s.Spawn(0, "p", g)
	r, st, _ := s.Next(0, 0)
	if st != StatusRef || r.Addr != 0xdead0000 || !r.Kernel {
		t.Fatalf("first ref not switch overhead: %+v (%v)", r, st)
	}
	if switches != 1 {
		t.Fatalf("switch hook ran %d times", switches)
	}
}

func TestCrossCPUPinning(t *testing.T) {
	s := NewScheduler(2, 100, nil)
	g0 := &scriptGen{segments: []scriptSeg{{refs: 3, dir: Directive{Kind: Exit}}}}
	g1 := &scriptGen{segments: []scriptSeg{{refs: 4, dir: Directive{Kind: Exit}}}}
	s.Spawn(0, "p0", g0)
	s.Spawn(1, "p1", g1)
	n0, st0, _, _ := drain(s, 0, 0, 100)
	n1, st1, _, _ := drain(s, 1, 0, 100)
	if n0 != 3 || n1 != 4 || st0 != StatusDone || st1 != StatusDone {
		t.Fatalf("per-cpu drain: %d/%v %d/%v", n0, st0, n1, st1)
	}
}

func TestIdleRecheckWhenAllWaiting(t *testing.T) {
	s := NewScheduler(1, 100, nil)
	g := &scriptGen{segments: []scriptSeg{
		{refs: 1, dir: Directive{Kind: Block}},
		{refs: 1, dir: Directive{Kind: Exit}},
	}}
	s.Spawn(0, "p", g)
	_, st, wake, now := drain(s, 0, 0, 100)
	if st != StatusIdle || wake <= now {
		t.Fatalf("all-waiting idle: st=%v wake=%d now=%d", st, wake, now)
	}
}

func TestEmptySegmentAppliesDirective(t *testing.T) {
	s := NewScheduler(1, 100, nil)
	g := &scriptGen{segments: []scriptSeg{
		{refs: 0, dir: Directive{Kind: Sleep, Until: 77}},
		{refs: 1, dir: Directive{Kind: Exit}},
	}}
	s.Spawn(0, "p", g)
	_, st, wake, _ := drain(s, 0, 0, 100)
	if st != StatusIdle || wake != 77 {
		t.Fatalf("st=%v wake=%d", st, wake)
	}
}

func TestSchedulerValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewScheduler(0, 1, nil) },
		func() { NewScheduler(1, 0, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid scheduler did not panic")
				}
			}()
			f()
		}()
	}
	s := NewScheduler(1, 1, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("spawn on bad CPU did not panic")
		}
	}()
	s.Spawn(5, "x", &scriptGen{})
}

func TestDumpState(t *testing.T) {
	s := NewScheduler(1, 100, nil)
	s.Spawn(0, "p", &scriptGen{})
	if out := s.DumpState(); out == "" {
		t.Fatal("empty dump")
	}
}

// TestPendingViewMatchesServe checks that Pending describes exactly what
// Next will serve — segment remainder, slice accounting, other-process wake
// — and that taking the view mutates nothing: a scheduler inspected between
// every reference serves the same stream as an uninspected twin.
func TestPendingViewMatchesServe(t *testing.T) {
	build := func() *Scheduler {
		s := NewScheduler(1, 6, nil)
		s.Spawn(0, "a", &scriptGen{segments: []scriptSeg{{refs: 5, dir: Directive{Kind: Run}}, {refs: 4, dir: Directive{Kind: Exit}}}})
		s.Spawn(0, "b", &scriptGen{segments: []scriptSeg{{refs: 3, dir: Directive{Kind: Exit}}}})
		return s
	}
	probed, control := build(), build()

	// Before any dispatch there is nothing pending.
	if pr := probed.Pending(0); pr.Seg != nil || pr.Switch != nil {
		t.Fatalf("fresh scheduler has pending work: %+v", pr)
	}
	now := uint64(0)
	for i := 0; i < 100; i++ {
		pr := probed.Pending(0)
		if pr2 := probed.Pending(0); len(pr2.Seg) != len(pr.Seg) || pr2.SliceUsed != pr.SliceUsed || pr2.OtherWake != pr.OtherWake {
			t.Fatalf("Pending not idempotent: %+v then %+v", pr, pr2)
		}
		r, st, _ := probed.Next(0, now)
		rc, stc, _ := control.Next(0, now)
		if r != rc || st != stc {
			t.Fatalf("step %d: probed scheduler diverged from control: (%v,%v) vs (%v,%v)", i, r, st, rc, stc)
		}
		if st == StatusDone {
			return
		}
		if st == StatusRef && len(pr.Seg) > 0 {
			// Unless the view's own preemption test fires, the served ref
			// must be the head of the pending view; when it does fire, the
			// scheduler must preempt, i.e. serve some other process's ref.
			if preempt := pr.SliceUsed >= pr.Quantum && pr.OtherWake <= now; !preempt {
				if r != pr.Seg[0] {
					t.Fatalf("step %d: served %+v, Pending showed %+v", i, r, pr.Seg[0])
				}
			} else if r == pr.Seg[0] {
				t.Fatalf("step %d: preemption test fired but the old head was served", i)
			}
		}
		now++
	}
	t.Fatal("scheduler never finished")
}

// TestPendingOtherWake pins OtherWake: the earliest wake among the other
// ready or sleeping processes, ^0 when the running process is alone.
func TestPendingOtherWake(t *testing.T) {
	s := NewScheduler(1, 100, nil)
	s.Spawn(0, "a", &scriptGen{segments: []scriptSeg{{refs: 4, dir: Directive{Kind: Exit}}}})
	b := s.Spawn(0, "b", &scriptGen{segments: []scriptSeg{{refs: 1, dir: Directive{Kind: Exit}}}})
	b.state = stateSleeping
	b.wakeAt = 77

	if _, st, _ := s.Next(0, 0); st != StatusRef {
		t.Fatalf("expected a ref, got %v", st)
	}
	pr := s.Pending(0)
	if pr.OtherWake != 77 {
		t.Fatalf("OtherWake = %d, want 77", pr.OtherWake)
	}
	if pr.SliceUsed != 1 || len(pr.Seg) != 3 {
		t.Fatalf("view = used %d, seg %d; want 1, 3", pr.SliceUsed, len(pr.Seg))
	}
	// Poking the state directly bypasses the scheduler's own mutation
	// surface (Next/Wake/Spawn/LoadState), which is what keeps the cached
	// OtherWake coherent — so invalidate the cache the way those paths do.
	b.state = stateDead
	s.cpus[0].owValid = false
	if pr := s.Pending(0); pr.OtherWake != ^uint64(0) {
		t.Fatalf("OtherWake with no other live proc = %d, want ^0", pr.OtherWake)
	}
}

// TestConsumeRunMatchesNext pins ConsumeRun's contract: consuming n pending
// references in bulk leaves the scheduler in exactly the state n sequential
// Next calls produce, for any split across the switch buffer and the
// segment. Two identically built schedulers run side by side — one advanced
// by Next, one by ConsumeRun — and must agree on every subsequent event.
func TestConsumeRunMatchesNext(t *testing.T) {
	build := func() *Scheduler {
		s := NewScheduler(1, 100, func(cpu int, out *RefBuffer) {
			for i := 0; i < 3; i++ {
				out.Append(memref.Ref{Addr: uint64(1000 + i*64), Kind: memref.IFetch, Instrs: 1})
			}
		})
		s.Spawn(0, "a", &scriptGen{segments: []scriptSeg{
			{refs: 6, dir: Directive{Kind: Run}},
			{refs: 2, dir: Directive{Kind: Exit}},
		}})
		s.Spawn(0, "b", &scriptGen{segments: []scriptSeg{{refs: 2, dir: Directive{Kind: Exit}}}})
		return s
	}

	for _, bulk := range []int{1, 2, 4} {
		byNext, byRun := build(), build()
		now := uint64(0)
		for step := 0; step < 100; step++ {
			// Peek both pending views; they must agree before each move.
			pn, pr := byNext.Pending(0), byRun.Pending(0)
			if !reflect.DeepEqual(pn, pr) {
				t.Fatalf("bulk=%d step %d: pending views diverged:\nnext: %+v\nrun:  %+v", bulk, step, pn, pr)
			}
			// Consume up to bulk refs from the front of the pending run —
			// but only while no slice expiry could fire, mirroring the
			// fast path's preemption stop.
			nSwitch := len(pn.Switch)
			if nSwitch > bulk {
				nSwitch = bulk
			}
			nSeg := bulk - nSwitch
			if room := pn.Quantum - pn.SliceUsed; pn.OtherWake <= now && nSeg > room {
				nSeg = room
			}
			if nSeg > len(pn.Seg) {
				nSeg = len(pn.Seg)
			}
			if nSwitch+nSeg > 0 {
				for i := 0; i < nSwitch+nSeg; i++ {
					r, st, _ := byNext.Next(0, now)
					if st != StatusRef {
						t.Fatalf("bulk=%d step %d: Next gave status %v inside the pending run", bulk, step, st)
					}
					want := pn.Switch
					k := i
					if i >= nSwitch {
						want, k = pn.Seg, i-nSwitch
					}
					if r != want[k] {
						t.Fatalf("bulk=%d step %d: Next served %+v, pending showed %+v", bulk, step, r, want[k])
					}
				}
				byRun.ConsumeRun(0, nSwitch, nSeg)
				continue
			}
			// No consumable prefix: advance both through one real event.
			rn, sn, _ := byNext.Next(0, now)
			rr, sr, _ := byRun.Next(0, now)
			if rn != rr || sn != sr {
				t.Fatalf("bulk=%d step %d: events diverged: (%+v, %v) vs (%+v, %v)", bulk, step, rn, sn, rr, sr)
			}
			if sn == StatusDone {
				break
			}
			now++
		}
		if byNext.ContextSwitches != byRun.ContextSwitches || byNext.Preemptions != byRun.Preemptions {
			t.Fatalf("bulk=%d: counters diverged: switches %d/%d preemptions %d/%d", bulk,
				byNext.ContextSwitches, byRun.ContextSwitches, byNext.Preemptions, byRun.Preemptions)
		}
	}
}

// TestConsumeRunBoundsPanic pins the guard rails: consuming past the switch
// buffer or the running segment must panic rather than corrupt cursors.
func TestConsumeRunBoundsPanic(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	s := NewScheduler(1, 100, nil)
	s.Spawn(0, "p", &scriptGen{segments: []scriptSeg{{refs: 2, dir: Directive{Kind: Exit}}}})
	if _, st, _ := s.Next(0, 0); st != StatusRef {
		t.Fatalf("expected a ref, got %v", st)
	}
	expectPanic("segment overrun", func() { s.ConsumeRun(0, 0, 100) })
	expectPanic("switch overrun", func() { s.ConsumeRun(0, 100, 0) })
}

// TestOtherWakeCacheCoherent drives every scheduler mutation path and checks
// the cached OtherWake against a from-scratch recomputation after each step.
func TestOtherWakeCacheCoherent(t *testing.T) {
	recompute := func(s *Scheduler, cpu int) uint64 {
		c := &s.cpus[cpu]
		ow := ^uint64(0)
		for _, p := range c.procs {
			if p == c.cur {
				continue
			}
			switch p.state {
			case stateReady:
				if p.wakeAt < ow {
					ow = p.wakeAt
				}
			case stateSleeping:
				if p.wakeAt < ow {
					ow = p.wakeAt
				}
			}
		}
		return ow
	}

	s := NewScheduler(1, 3, nil)
	gen := func(n int) *scriptGen {
		segs := make([]scriptSeg, n)
		for i := range segs {
			segs[i] = scriptSeg{refs: 2, dir: Directive{Kind: Sleep, Until: uint64(10 * (i + 1))}}
		}
		segs[n-1].dir = Directive{Kind: Exit}
		return &scriptGen{segments: segs}
	}
	s.Spawn(0, "a", gen(3))
	p := s.Spawn(0, "b", gen(2))
	now := uint64(0)
	for i := 0; i < 200; i++ {
		_, st, _ := s.Next(0, now)
		if got, want := s.Pending(0).OtherWake, recompute(s, 0); got != want {
			t.Fatalf("step %d: cached OtherWake = %d, recomputed %d", i, got, want)
		}
		if i == 5 {
			s.Wake(p, now)
			if got, want := s.Pending(0).OtherWake, recompute(s, 0); got != want {
				t.Fatalf("after Wake: cached OtherWake = %d, recomputed %d", got, want)
			}
		}
		if st == StatusDone {
			return
		}
		now++
	}
	t.Fatal("scheduler never finished")
}
