package kernel

import (
	"testing"

	"oltpsim/internal/memref"
)

func TestRegionPlacement(t *testing.T) {
	as := NewAddressSpace(8)
	as.AddRegion(Region{Name: "rr", Base: 0, Size: 64 * memref.PageBytes, Placement: RoundRobinPages})
	as.AddRegion(Region{Name: "local3", Base: 1 << 30, Size: memref.PageBytes, Placement: NodeLocal, Node: 3})
	as.AddRegion(Region{Name: "il", Base: 2 << 30, Size: memref.PageBytes, Placement: Interleaved})

	// Round-robin: page i of the region lives on node i%8.
	for p := 0; p < 16; p++ {
		addr := uint64(p * memref.PageBytes)
		if got := as.HomeOf(addr); got != p%8 {
			t.Fatalf("rr page %d home %d, want %d", p, got, p%8)
		}
	}
	if as.HomeOf(1<<30+100) != 3 {
		t.Fatal("node-local region not on node 3")
	}
	// Interleaved: successive lines rotate nodes.
	for l := 0; l < 16; l++ {
		addr := uint64(2<<30 + l*64)
		if got := as.HomeOf(addr); got != l%8 {
			t.Fatalf("interleaved line %d home %d", l, got)
		}
	}
}

func TestHomeOfUnmappedFallsBack(t *testing.T) {
	as := NewAddressSpace(4)
	// No regions: still total function, page round-robin.
	if as.HomeOf(0) != 0 || as.HomeOf(memref.PageBytes) != 1 {
		t.Fatal("fallback placement wrong")
	}
}

func TestRegionOverlapPanics(t *testing.T) {
	as := NewAddressSpace(2)
	as.AddRegion(Region{Name: "a", Base: 0, Size: 8192, Placement: RoundRobinPages})
	defer func() {
		if recover() == nil {
			t.Fatal("overlapping AddRegion did not panic")
		}
	}()
	as.AddRegion(Region{Name: "b", Base: 4096, Size: 8192, Placement: RoundRobinPages})
}

func TestZeroSizeRegionPanics(t *testing.T) {
	as := NewAddressSpace(2)
	defer func() {
		if recover() == nil {
			t.Fatal("zero-size AddRegion did not panic")
		}
	}()
	as.AddRegion(Region{Name: "z", Base: 0, Size: 0})
}

func TestRegionOf(t *testing.T) {
	as := NewAddressSpace(2)
	as.AddRegion(Region{Name: "a", Base: 8192, Size: 8192, Placement: RoundRobinPages})
	if r := as.RegionOf(8192); r == nil || r.Name != "a" {
		t.Fatal("RegionOf missed the region start")
	}
	if r := as.RegionOf(8192 + 8191); r == nil {
		t.Fatal("RegionOf missed the region end")
	}
	if as.RegionOf(0) != nil || as.RegionOf(16384) != nil {
		t.Fatal("RegionOf matched outside the region")
	}
}

func TestRoundRobinSpreadsEvenly(t *testing.T) {
	as := NewAddressSpace(8)
	size := uint64(800 * memref.PageBytes)
	as.AddRegion(Region{Name: "sga", Base: 0, Size: size, Placement: RoundRobinPages})
	counts := make([]int, 8)
	for p := uint64(0); p < 800; p++ {
		counts[as.HomeOf(p*memref.PageBytes)]++
	}
	for n, c := range counts {
		if c != 100 {
			t.Fatalf("node %d got %d pages, want 100 (the paper's 1-in-8 locality)", n, c)
		}
	}
}

func TestTotalSizeAndRegions(t *testing.T) {
	as := NewAddressSpace(2)
	as.AddRegion(Region{Name: "a", Base: 0, Size: 8192})
	as.AddRegion(Region{Name: "b", Base: 8192, Size: 16384})
	if as.TotalSize() != 24576 {
		t.Fatalf("total %d", as.TotalSize())
	}
	if len(as.Regions()) != 2 || as.Nodes() != 2 {
		t.Fatal("region table wrong")
	}
}

func TestPlacementString(t *testing.T) {
	if RoundRobinPages.String() != "round-robin" || NodeLocal.String() != "node-local" || Interleaved.String() != "interleaved" {
		t.Fatal("placement strings wrong")
	}
}
