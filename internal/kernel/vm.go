// Package kernel models the operating-system pieces the workload depends on:
// a virtual address space with NUMA page-placement policies (including the
// OS-based code replication studied in paper Section 6), and a per-CPU
// process scheduler with time slices, blocking, and context-switch overhead.
// The paper runs Oracle under Digital Unix inside SimOS and reports ~25% of
// OLTP execution in the kernel; this package is our stand-in for that layer.
package kernel

import (
	"fmt"
	"sort"

	"oltpsim/internal/memref"
)

// Placement is a page-placement policy for a region of the address space.
type Placement uint8

const (
	// RoundRobinPages stripes successive pages across nodes. This is the
	// paper's situation for the SGA: "it is very difficult to do data
	// placement for OLTP, hence the chance of finding data locally is on
	// average 1-in-8 given 8 nodes".
	RoundRobinPages Placement = iota
	// NodeLocal places the whole region on one node (process-private memory:
	// stacks, PGA, kernel per-process structures).
	NodeLocal
	// Interleaved stripes at line granularity rather than page granularity;
	// available for ablations (fine-grain interleave was a real design knob
	// of the era).
	Interleaved
)

// String implements fmt.Stringer.
func (p Placement) String() string {
	switch p {
	case RoundRobinPages:
		return "round-robin"
	case NodeLocal:
		return "node-local"
	case Interleaved:
		return "interleaved"
	default:
		return "?"
	}
}

// Region is a contiguous range of the simulated address space with one
// placement policy.
type Region struct {
	Name      string
	Base      uint64
	Size      uint64
	Placement Placement
	// Node is the owner for NodeLocal regions.
	Node int
	// Code marks instruction regions; the replication experiment only
	// affects these.
	Code bool
}

// End returns one past the last byte of the region.
func (r Region) End() uint64 { return r.Base + r.Size }

// AddressSpace maps lines to home nodes through its region table. Regions
// must not overlap; lookups outside any region fall back to round-robin
// placement so that stray addresses are never fatal in a long simulation.
type AddressSpace struct {
	nodes   int
	regions []Region // sorted by Base
	// bases/ends shadow regions' bounds in flat slices so the lookup binary
	// search touches small contiguous memory instead of striding across the
	// full Region structs.
	bases []uint64
	ends  []uint64
	// last is the index of the most recently matched region. Reference
	// streams have strong region locality (a code walk or a block touch
	// issues runs of addresses in one region), so checking it first skips
	// the search entirely most of the time. It only short-circuits to an
	// identical answer, so lookups stay pure functions of the address.
	last int
}

// NewAddressSpace creates an address space for a machine with nodes memories.
func NewAddressSpace(nodes int) *AddressSpace {
	if nodes <= 0 {
		panic("kernel: address space needs at least one node")
	}
	return &AddressSpace{nodes: nodes}
}

// AddRegion registers a region. It panics on overlap — the layout is
// constructed once by the harness, so an overlap is a programming error.
func (as *AddressSpace) AddRegion(r Region) {
	if r.Size == 0 {
		panic(fmt.Sprintf("kernel: region %s has zero size", r.Name))
	}
	for _, q := range as.regions {
		if r.Base < q.End() && q.Base < r.End() {
			panic(fmt.Sprintf("kernel: region %s [%#x,%#x) overlaps %s [%#x,%#x)",
				r.Name, r.Base, r.End(), q.Name, q.Base, q.End()))
		}
	}
	as.regions = append(as.regions, r)
	sort.Slice(as.regions, func(i, j int) bool { return as.regions[i].Base < as.regions[j].Base })
	as.bases = as.bases[:0]
	as.ends = as.ends[:0]
	for i := range as.regions {
		as.bases = append(as.bases, as.regions[i].Base)
		as.ends = append(as.ends, as.regions[i].End())
	}
	as.last = 0
}

// RegionOf returns the region containing addr, or nil.
func (as *AddressSpace) RegionOf(addr uint64) *Region {
	if len(as.bases) == 0 {
		return nil
	}
	if i := as.last; addr >= as.bases[i] && addr < as.ends[i] {
		return &as.regions[i]
	}
	// Manual binary search for the first base > addr; sort.Search's closure
	// calls are too expensive for a per-reference lookup.
	lo, hi := 0, len(as.bases)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if as.bases[mid] > addr {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo == 0 {
		return nil
	}
	i := lo - 1
	if addr >= as.ends[i] {
		return nil
	}
	as.last = i
	return &as.regions[i]
}

// HomeOf returns the home node of the line containing addr.
func (as *AddressSpace) HomeOf(addr uint64) int {
	r := as.RegionOf(addr)
	if r == nil {
		return int(memref.PageOf(addr)) % as.nodes
	}
	switch r.Placement {
	case NodeLocal:
		return r.Node
	case Interleaved:
		return int((addr-r.Base)>>memref.LineShift) % as.nodes
	default:
		return int((addr-r.Base)>>memref.PageShift) % as.nodes
	}
}

// Nodes returns the machine size the space was built for.
func (as *AddressSpace) Nodes() int { return as.nodes }

// Regions returns a copy of the region table for reporting.
func (as *AddressSpace) Regions() []Region {
	out := make([]Region, len(as.regions))
	copy(out, as.regions)
	return out
}

// TotalSize sums the sizes of all regions.
func (as *AddressSpace) TotalSize() uint64 {
	var n uint64
	for _, r := range as.regions {
		n += r.Size
	}
	return n
}
