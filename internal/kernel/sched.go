package kernel

import (
	"fmt"

	"oltpsim/internal/memref"
)

// Status is what the scheduler hands the timing engine for a CPU.
type Status uint8

const (
	// StatusRef: a reference was produced and should be timed.
	StatusRef Status = iota
	// StatusIdle: no process is runnable; the CPU should advance its clock
	// to the accompanying wake time and count idle cycles.
	StatusIdle
	// StatusDone: every process pinned to this CPU has exited.
	StatusDone
)

// DirectiveKind says what a process does when its current reference segment
// has been consumed.
type DirectiveKind uint8

const (
	// Run: call the generator again immediately (the segment was split only
	// for buffering reasons).
	Run DirectiveKind = iota
	// Block: wait until another process calls Scheduler.Wake (commit waiting
	// for the log writer, a daemon waiting for work).
	Block
	// Sleep: wait until an absolute time (periodic daemons).
	Sleep
	// IOWait: wait for a fixed duration measured from the moment the CPU
	// consumed the last reference of the segment (a disk I/O issued at the
	// end of the segment).
	IOWait
	// Exit: the process is finished.
	Exit
)

// Directive tells the scheduler what to do after a segment drains.
type Directive struct {
	Kind  DirectiveKind
	Until uint64 // absolute wake time for Sleep
	Dur   uint64 // duration for IOWait
	// OnDrain, when non-nil, runs at the moment the CPU has consumed the
	// segment's last reference (with the CPU clock at that instant), before
	// Kind is applied. Generators use it for actions that must be ordered
	// after the segment's memory references — signalling the log writer,
	// counting a committed transaction.
	OnDrain func(now uint64)
}

// RefBuffer collects the references of one segment. Generators append to it;
// the scheduler feeds it to the CPU one reference at a time.
type RefBuffer struct {
	Refs []memref.Ref
}

// Append adds one reference.
func (b *RefBuffer) Append(r memref.Ref) { b.Refs = append(b.Refs, r) }

// Len returns the number of buffered references.
func (b *RefBuffer) Len() int { return len(b.Refs) }

// Generator produces the reference stream of one simulated process, one
// segment at a time. A segment typically covers the work between two blocking
// points (e.g. one transaction up to its commit wait).
type Generator interface {
	// NextSegment appends the next segment's references to out and returns
	// the directive to apply once they have been consumed. now is the
	// process's CPU-local clock at the call.
	NextSegment(now uint64, out *RefBuffer) Directive
}

type procState uint8

const (
	stateReady procState = iota
	stateRunning
	stateWaiting  // blocked on an explicit Wake
	stateSleeping // blocked on a time
	stateDead
)

// Proc is one simulated process, pinned to a CPU (the paper uses Oracle in
// dedicated mode with servers distributed evenly; we pin for determinism).
type Proc struct {
	ID   int
	Name string
	CPU  int

	gen        Generator
	state      procState
	wakeAt     uint64
	buf        RefBuffer
	pos        int
	pending    Directive
	hasPending bool
	sliceUsed  int
}

// State descriptions for diagnostics.
func (p *Proc) stateName() string {
	switch p.state {
	case stateReady:
		return "ready"
	case stateRunning:
		return "running"
	case stateWaiting:
		return "waiting"
	case stateSleeping:
		return "sleeping"
	case stateDead:
		return "dead"
	default:
		return "?"
	}
}

type cpuQueue struct {
	cur   *Proc
	procs []*Proc // every proc pinned to this CPU
	// Pending context-switch overhead, kept inline so the per-reference
	// fast path in Next touches only this struct.
	swBuf RefBuffer
	swPos int
	// otherWake caches Pending's OtherWake — the earliest wake instant of a
	// ready or sleeping process other than cur — so the per-run lookahead
	// does not rescan the run queue. owValid is cleared by everything that
	// can change a pinned process's state, wakeAt, or cur: any Next call
	// (dispatch, preemption, drain directives), Wake, Spawn, and LoadState.
	// ConsumeRun touches only positions and slice accounting, so hit-run
	// fast-forwarding keeps the cache warm across whole runs.
	otherWake uint64
	owValid   bool
}

// Scheduler multiplexes the processes pinned to each CPU, implementing the
// timing engine's per-CPU reference source. It injects context-switch
// overhead references (supplied by the harness, since they are kernel code
// walks) whenever it switches processes — the resulting cache pollution is
// part of what makes OLTP instruction footprints overwhelm the L1s.
type Scheduler struct {
	cpus    []cpuQueue
	quantum int // references per time slice
	// switchRefs, when non-nil, appends the context-switch path to a buffer.
	switchRefs func(cpu int, out *RefBuffer)

	// ContextSwitches counts scheduler-driven process changes.
	ContextSwitches uint64
	// Preemptions counts slice-expiry switches (subset of ContextSwitches).
	Preemptions uint64
	// nextID feeds Spawn's process IDs.
	//oltpvet:derived not saved: LoadState requires the identical process topology, so resume replays the same Spawn sequence and re-derives the counter
	nextID int
}

// idleRecheck is how long a CPU with no known wake time naps before
// rechecking; cross-CPU wakes land within one interval.
const idleRecheck = 2048

// NewScheduler creates a scheduler for cpus processors. quantum is the time
// slice in references (a proxy for cycles; OLTP processes block far more
// often than slices expire). switchRefs may be nil to disable switch
// overhead.
func NewScheduler(cpus, quantum int, switchRefs func(cpu int, out *RefBuffer)) *Scheduler {
	if cpus <= 0 {
		panic("kernel: scheduler needs at least one CPU")
	}
	if quantum <= 0 {
		panic("kernel: scheduler quantum must be positive")
	}
	return &Scheduler{
		cpus:       make([]cpuQueue, cpus),
		quantum:    quantum,
		switchRefs: switchRefs,
	}
}

// Spawn creates a process pinned to cpu. Processes start Ready at time 0.
func (s *Scheduler) Spawn(cpu int, name string, g Generator) *Proc {
	if cpu < 0 || cpu >= len(s.cpus) {
		panic(fmt.Sprintf("kernel: spawn %q on CPU %d of %d", name, cpu, len(s.cpus)))
	}
	p := &Proc{ID: s.nextID, Name: name, CPU: cpu, gen: g, state: stateReady}
	s.nextID++
	s.cpus[cpu].procs = append(s.cpus[cpu].procs, p)
	s.cpus[cpu].owValid = false
	return p
}

// Wake makes a Waiting process Ready at time at. Waking a process that is
// not Waiting is a no-op (the signal is then handled by generator-level
// flags, e.g. the log writer noticing queued commits before sleeping).
func (s *Scheduler) Wake(p *Proc, at uint64) {
	if p.state != stateWaiting {
		return
	}
	p.state = stateReady
	p.wakeAt = at
	s.cpus[p.CPU].owValid = false
}

// Next produces the next reference for cpu, whose local clock reads now.
// Status semantics follow the Status constants; wake is meaningful only for
// StatusIdle.
func (s *Scheduler) Next(cpu int, now uint64) (r memref.Ref, st Status, wake uint64) {
	c := &s.cpus[cpu]
	// Any Next call may dispatch, preempt, or apply a drain directive, and a
	// drain's OnDrain can Wake a process on any CPU (Wake clears that CPU's
	// cache itself); conservatively drop this CPU's OtherWake cache.
	c.owValid = false
	for {
		// Pending context-switch overhead takes priority.
		if c.swPos < len(c.swBuf.Refs) {
			r = c.swBuf.Refs[c.swPos]
			c.swPos++
			return r, StatusRef, 0
		}

		if c.cur == nil {
			if !s.dispatch(c, cpu, now) {
				wake, any := s.earliestWake(c, now)
				if !any {
					if s.allDead(c) {
						return memref.Ref{}, StatusDone, 0
					}
					// Everything is Waiting on a cross-CPU event whose time
					// we cannot know yet; nap briefly and recheck.
					return memref.Ref{}, StatusIdle, now + idleRecheck
				}
				return memref.Ref{}, StatusIdle, wake
			}
			continue
		}

		p := c.cur
		if p.pos < len(p.buf.Refs) {
			if p.sliceUsed >= s.quantum && s.someoneElseReady(c, p, now) {
				// Slice expired: preempt at this reference boundary.
				p.state = stateReady
				p.wakeAt = now
				c.cur = nil
				s.Preemptions++
				continue
			}
			r = p.buf.Refs[p.pos]
			p.pos++
			p.sliceUsed++
			return r, StatusRef, 0
		}

		// Segment drained: apply the pending directive, if any.
		if p.hasPending {
			p.hasPending = false
			if p.pending.OnDrain != nil {
				p.pending.OnDrain(now)
			}
			switch p.pending.Kind {
			case Run:
				// fall through to refill
			case Block:
				p.state = stateWaiting
				c.cur = nil
				continue
			case Sleep:
				p.state = stateSleeping
				p.wakeAt = p.pending.Until
				c.cur = nil
				continue
			case IOWait:
				p.state = stateSleeping
				p.wakeAt = now + p.pending.Dur
				c.cur = nil
				continue
			case Exit:
				p.state = stateDead
				c.cur = nil
				continue
			}
		}

		p.buf.Refs = p.buf.Refs[:0]
		p.pos = 0
		p.pending = p.gen.NextSegment(now, &p.buf)
		p.hasPending = true
	}
}

// dispatch picks the next runnable process for cpu. Returns false if none.
func (s *Scheduler) dispatch(c *cpuQueue, cpu int, now uint64) bool {
	var best *Proc
	for _, p := range c.procs {
		if p.state == stateSleeping && p.wakeAt <= now {
			p.state = stateReady
		}
		if p.state != stateReady || p.wakeAt > now {
			continue
		}
		// Oldest wake time first gives round-robin-ish fairness.
		if best == nil || p.wakeAt < best.wakeAt {
			best = p
		}
	}
	if best == nil {
		return false
	}
	best.state = stateRunning
	best.sliceUsed = 0
	c.cur = best
	s.ContextSwitches++
	if s.switchRefs != nil {
		c.swBuf.Refs = c.swBuf.Refs[:0]
		c.swPos = 0
		s.switchRefs(cpu, &c.swBuf)
	}
	return true
}

func (s *Scheduler) someoneElseReady(c *cpuQueue, cur *Proc, now uint64) bool {
	for _, p := range c.procs {
		if p == cur {
			continue
		}
		if p.state == stateReady && p.wakeAt <= now {
			return true
		}
		if p.state == stateSleeping && p.wakeAt <= now {
			return true
		}
	}
	return false
}

func (s *Scheduler) earliestWake(c *cpuQueue, now uint64) (uint64, bool) {
	var min uint64
	found := false
	for _, p := range c.procs {
		var t uint64
		switch p.state {
		case stateSleeping:
			t = p.wakeAt
		case stateReady:
			t = p.wakeAt // woken for the future by a cross-CPU event
		default:
			continue
		}
		if !found || t < min {
			min, found = t, true
		}
	}
	if found && min <= now {
		min = now + 1
	}
	return min, found
}

func (s *Scheduler) allDead(c *cpuQueue) bool {
	for _, p := range c.procs {
		if p.state != stateDead {
			return false
		}
	}
	return true
}

// PendingRun is a read-only view of the references cpu would serve next,
// taken for speculative lookahead (the epoch-sharded stepping engine in
// internal/core). The slices alias scheduler-owned buffers and are valid
// only until the next mutating call for this cpu.
//
// The serve order it describes: every Switch reference first (context-switch
// overhead is served unconditionally, with no slice accounting), then Seg
// references one at a time, where serving Seg[k] is preceded by the
// preemption test `SliceUsed+k >= Quantum && OtherWake <= now`. Anything
// after the last Seg reference (drain directives, refills, dispatches) is
// not visible here — by design, since those mutate scheduler state.
type PendingRun struct {
	Switch    []memref.Ref // pending context-switch overhead
	Seg       []memref.Ref // running process's remaining segment references
	SliceUsed int          // references the running process has used this slice
	Quantum   int          // scheduler time slice, in references
	// OtherWake is the earliest instant at which some other process on this
	// cpu is (or becomes) runnable — the exact quantity someoneElseReady
	// compares against now — or ^0 when no other process is ready or
	// sleeping.
	OtherWake uint64
}

// Pending returns the read-only lookahead view for cpu without mutating any
// scheduler state.
func (s *Scheduler) Pending(cpu int) PendingRun {
	c := &s.cpus[cpu]
	pr := PendingRun{Quantum: s.quantum}
	if c.swPos < len(c.swBuf.Refs) {
		pr.Switch = c.swBuf.Refs[c.swPos:]
	}
	p := c.cur
	if p != nil && p.pos < len(p.buf.Refs) {
		pr.Seg = p.buf.Refs[p.pos:]
		pr.SliceUsed = p.sliceUsed
	}
	if !c.owValid {
		ow := ^uint64(0)
		for _, q := range c.procs {
			if q == p {
				continue
			}
			if (q.state == stateReady || q.state == stateSleeping) && q.wakeAt < ow {
				ow = q.wakeAt
			}
		}
		c.otherWake = ow
		c.owValid = true
	}
	pr.OtherWake = c.otherWake
	return pr
}

// ConsumeRun advances cpu's bookkeeping past references the caller served
// directly from the Pending view: nSwitch context-switch references followed
// by nSeg segment references. It applies exactly the state updates that many
// StatusRef returns from Next would have — switch references advance the
// overhead cursor and nothing else; segment references advance the running
// process's position and slice accounting. The caller must have served
// precisely those references, in Pending order, stopping short of every
// scheduler event (preemption, drain, dispatch): ConsumeRun performs none,
// so consuming past them would silently skip them.
func (s *Scheduler) ConsumeRun(cpu int, nSwitch, nSeg int) {
	c := &s.cpus[cpu]
	if nSwitch > 0 {
		c.swPos += nSwitch
		if c.swPos > len(c.swBuf.Refs) {
			panic("kernel: ConsumeRun past the pending context-switch overhead")
		}
	}
	if nSeg > 0 {
		p := c.cur
		if p == nil {
			panic("kernel: ConsumeRun segment references with no running process")
		}
		p.pos += nSeg
		p.sliceUsed += nSeg
		if p.pos > len(p.buf.Refs) {
			panic("kernel: ConsumeRun past the running process's segment")
		}
	}
}

// Procs returns all processes pinned to cpu (diagnostics and tests).
func (s *Scheduler) Procs(cpu int) []*Proc { return s.cpus[cpu].procs }

// DumpState formats the scheduler state for debugging deadlocks.
func (s *Scheduler) DumpState() string {
	out := ""
	for i := range s.cpus {
		out += fmt.Sprintf("cpu%d:", i)
		for _, p := range s.cpus[i].procs {
			out += fmt.Sprintf(" %s=%s@%d", p.Name, p.stateName(), p.wakeAt)
		}
		out += "\n"
	}
	return out
}
