package mem

import "testing"

func TestBankQueueing(t *testing.T) {
	c := NewController(Config{Banks: 2, BankBusyCycles: 40, Storage: DirInMemoryECC})
	// Two accesses to the same bank back to back: second queues.
	if d := c.Access(0, 100); d != 0 {
		t.Fatalf("first access delayed %d", d)
	}
	if d := c.Access(0, 110); d != 30 {
		t.Fatalf("second access delayed %d, want 30", d)
	}
	// Different bank: no delay.
	if d := c.Access(64, 110); d != 0 {
		t.Fatalf("other-bank access delayed %d", d)
	}
	if c.Stats.Accesses != 3 || c.Stats.QueueCycles != 30 {
		t.Fatalf("stats %+v", c.Stats)
	}
}

func TestBankFreesUp(t *testing.T) {
	c := NewController(Config{Banks: 1, BankBusyCycles: 40})
	c.Access(0, 0)
	if d := c.Access(0, 1000); d != 0 {
		t.Fatalf("access after bank idle delayed %d", d)
	}
}

func TestDefaultConfigOnBadBanks(t *testing.T) {
	c := NewController(Config{Banks: 0})
	if d := c.Access(0, 0); d != 0 {
		t.Fatal("default controller first access delayed")
	}
}

func TestDirectoryOverhead(t *testing.T) {
	const gb = uint64(1) << 30
	if DirectoryOverheadBytes(gb, DirInMemoryECC) != 0 {
		t.Fatal("in-memory ECC directory should cost no dedicated storage")
	}
	want := gb / 64 * 8 // one 8-byte entry per line
	if got := DirectoryOverheadBytes(gb, DirDedicatedSRAM); got != want {
		t.Fatalf("dedicated overhead %d, want %d", got, want)
	}
}

func TestStorageString(t *testing.T) {
	if DirInMemoryECC.String() != "in-memory ECC" || DirDedicatedSRAM.String() != "dedicated SRAM" {
		t.Fatal("storage strings wrong")
	}
}

func TestResetStats(t *testing.T) {
	c := NewController(DefaultConfig())
	c.Access(0, 0)
	c.ResetStats()
	if c.Stats != (Stats{}) {
		t.Fatal("stats not reset")
	}
}
