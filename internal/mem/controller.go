// Package mem models each node's main-memory system: a direct-Rambus-style
// banked memory controller (paper Section 2.3 assumes RDRAM reached over few
// pins) and the directory-storage arrangement, which is the structural
// difference between coupling and separating the coherence controller and
// memory controller (paper Sections 3-4).
//
// In the paper-fidelity configurations the end-to-end latencies of Figure 3
// already include the controller, so the queuing model here is an optional
// contention layer: it adds bank-conflict delay on top of the base latency
// when enabled, and the ablation benchmarks use it to show how much headroom
// the fixed-latency assumption hides.
package mem

import "oltpsim/internal/memref"

// DirectoryStorage describes where the coherence directory lives, which
// depends on whether the coherence controller sits next to the memory
// controller.
type DirectoryStorage uint8

const (
	// DirInMemoryECC: directory bits computed into spare ECC bits of main
	// memory — essentially free, but only practical when the coherence
	// controller has a first-class path to the memory controller (Base and
	// FullIntegration arrangements; paper cites S3.mp [14] and [19]).
	DirInMemoryECC DirectoryStorage = iota
	// DirDedicatedSRAM: a dedicated directory store with its own data path,
	// required when the MC is integrated but the CC is not (paper Figure 9).
	DirDedicatedSRAM
)

// String implements fmt.Stringer.
func (d DirectoryStorage) String() string {
	if d == DirDedicatedSRAM {
		return "dedicated SRAM"
	}
	return "in-memory ECC"
}

// DirectoryOverheadBytes returns the dedicated storage a directory needs for
// memBytes of main memory: zero for the in-memory ECC scheme, or one entry
// (sharer vector + state, 8 bytes at <=64 nodes) per line for the dedicated
// store. This quantifies the paper's cost argument for coupling CC and MC.
func DirectoryOverheadBytes(memBytes uint64, storage DirectoryStorage) uint64 {
	if storage == DirInMemoryECC {
		return 0
	}
	return memBytes / memref.LineBytes * 8
}

// Config sizes one node's memory controller.
type Config struct {
	// Banks is the number of independent RDRAM banks.
	Banks int
	// BankBusyCycles is how long one access occupies a bank.
	BankBusyCycles uint32
	// Storage is the directory arrangement (reporting + overhead).
	Storage DirectoryStorage
}

// DefaultConfig returns a plausible direct-Rambus arrangement: 16 banks,
// 40-cycle bank occupancy.
func DefaultConfig() Config {
	return Config{Banks: 16, BankBusyCycles: 40, Storage: DirInMemoryECC}
}

// Stats counts controller activity.
type Stats struct {
	Accesses    uint64
	QueueCycles uint64 // total bank-conflict delay
}

// Controller is one node's memory controller.
type Controller struct {
	cfg      Config
	bankBusy []uint64
	Stats    Stats
}

// NewController builds a controller.
func NewController(cfg Config) *Controller {
	if cfg.Banks <= 0 {
		cfg = DefaultConfig()
	}
	return &Controller{cfg: cfg, bankBusy: make([]uint64, cfg.Banks)}
}

// Access reserves the bank for line at time at and returns the queuing delay
// beyond the base latency (0 when the bank is free).
func (c *Controller) Access(line uint64, at uint64) uint32 {
	c.Stats.Accesses++
	bank := (line >> memref.LineShift) % uint64(len(c.bankBusy))
	delay := uint32(0)
	if c.bankBusy[bank] > at {
		delay = uint32(c.bankBusy[bank] - at)
		c.Stats.QueueCycles += uint64(delay)
		at = c.bankBusy[bank]
	}
	c.bankBusy[bank] = at + uint64(c.cfg.BankBusyCycles)
	return delay
}

// ResetStats zeroes counters.
func (c *Controller) ResetStats() { c.Stats = Stats{} }
