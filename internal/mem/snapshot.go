package mem

import (
	"fmt"

	"oltpsim/internal/snapshot"
)

// SaveState writes the bank reservation horizon and the counters.
func (c *Controller) SaveState(e *snapshot.Encoder) {
	e.U64s(c.bankBusy)
	e.U64(c.Stats.Accesses)
	e.U64(c.Stats.QueueCycles)
}

// LoadState restores a controller of identical bank count.
func (c *Controller) LoadState(d *snapshot.Decoder) error {
	busy := d.U64s()
	stats := Stats{Accesses: d.U64(), QueueCycles: d.U64()}
	if err := d.Err(); err != nil {
		return err
	}
	if len(busy) != len(c.bankBusy) {
		return fmt.Errorf("mem: snapshot has %d banks, want %d", len(busy), len(c.bankBusy))
	}
	copy(c.bankBusy, busy)
	c.Stats = stats
	return nil
}
