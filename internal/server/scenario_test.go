package server

import (
	"net/http/httptest"
	"testing"

	"oltpsim/internal/cli"
	"oltpsim/internal/experiments"
	"oltpsim/internal/scenario"
)

// scenarioSpec is a phased job: one machine under a two-phase mix-flip
// profile, sized so the 50-transaction checkpoint quantum fires mid-phase.
func scenarioSpec() string {
	return `{
		"name": "phased",
		"machines": [
			{"procs": 2, "level": "full", "l2": "1M", "assoc": 2}
		],
		"warmup_txns": 60,
		"measure_txns": 1,
		"quick": true,
		"scenario": {
			"name": "flip",
			"phases": [
				{"name": "writes", "txns": 70},
				{"name": "reads", "txns": 70, "ramp_txns": 20, "mix": {"update": 1, "read": 2}, "skew": 0.7}
			]
		}
	}`
}

// TestServerScenarioJob submits a phased job and pins its contract: the
// result the checkpointed server path returns is byte-for-byte the
// whole-run total of running the same scenario through experiments
// directly, and the progress target is the schedule's total (measure_txns
// is ignored).
func TestServerScenarioJob(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	s := newTestServer(t, testServerConfig(t.TempDir()))
	ts := httptest.NewServer(s)
	defer ts.Close()

	st := postJob(t, ts, scenarioSpec())
	if state := waitTerminal(t, s, st.ID); state != StateDone {
		t.Fatalf("job ended in state %q", state)
	}
	got := getStatus(t, ts, st.ID)
	if len(got.Results) != 1 {
		t.Fatalf("got %d results, want 1", len(got.Results))
	}

	o := smokeOptions()
	prof := scenario.Profile{Name: "flip", Phases: []scenario.Phase{
		{Name: "writes", Txns: 70},
		{Name: "reads", Txns: 70, RampTxns: 20, Mix: &scenario.Mix{Update: 1, Read: 2}, Skew: 0.7},
	}}
	o.Scenario = prof.MustCompile()
	cfg, err := cli.Build(cli.MachineSpec{Procs: 2, Level: "full", L2: "1M", Assoc: 2})
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := o.RunScenarioCheckpointed(cfg, experiments.CheckpointRun{})
	if err != nil {
		t.Fatal(err)
	}
	if string(mustJSON(t, got.Results[0])) != string(mustJSON(t, want.Total)) {
		t.Errorf("server scenario result differs from direct run:\n got %s\nwant %s",
			mustJSON(t, got.Results[0]), mustJSON(t, want.Total))
	}
	if got.Results[0].Txns != o.Scenario.TotalTxns() {
		t.Errorf("result spans %d txns, want the schedule total %d", got.Results[0].Txns, o.Scenario.TotalTxns())
	}
}
