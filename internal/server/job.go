package server

import (
	"sync"
	"time"

	"oltpsim/internal/core"
	"oltpsim/internal/stats"
)

// State is a job's position in the lifecycle state machine:
//
//	queued → running → checkpointed → done | failed | cancelled
//	            ↑______________|   (next configuration starts)
//
// "checkpointed" is running-with-a-restart-point: the job has persisted at
// least one checkpoint for its in-flight configuration, so killing the
// server here loses no more than one checkpoint quantum of work. A server
// restart re-queues every non-terminal job and resumes it from its latest
// checkpoint; DESIGN.md §6 argues why the resumed results are
// bit-identical.
type State string

const (
	StateQueued       State = "queued"
	StateRunning      State = "running"
	StateCheckpointed State = "checkpointed"
	StateDone         State = "done"
	StateFailed       State = "failed"
	StateCancelled    State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// valid reports whether s is one of the defined states (used when reading
// persisted state files back).
func (s State) valid() bool {
	switch s {
	case StateQueued, StateRunning, StateCheckpointed, StateDone, StateFailed, StateCancelled:
		return true
	}
	return false
}

// Event is one entry of a job's progress stream, delivered over SSE as the
// `data:` JSON of an event whose `event:` field is Type.
type Event struct {
	// Seq numbers events per job from 0; it is the SSE id field.
	Seq int `json:"seq"`
	// Type is the event kind: queued, started, config, checkpoint,
	// progress, result, done, failed, cancelled.
	Type string `json:"type"`
	// Config is the configuration index the event concerns (-1 for
	// job-level events).
	Config int `json:"config"`
	// Done and Total count completed configurations.
	Done  int `json:"done"`
	Total int `json:"total"`
	// Measured and Target report measurement progress of the in-flight
	// configuration in committed transactions.
	Measured uint64 `json:"measured,omitempty"`
	Target   uint64 `json:"target,omitempty"`
	// Error carries the failure reason on a failed event.
	Error string `json:"error,omitempty"`
}

// maxEventHistory bounds the per-job event log kept for SSE replay. Old
// events are dropped from the front; live subscribers have already seen
// them and late subscribers still get the full current status from the
// retained tail plus GET /jobs/{id}.
const maxEventHistory = 1024

// Job is one submitted sweep and everything the server knows about it.
type Job struct {
	// ID is the server-assigned identifier ("job-000001"). Immutable.
	ID string
	// Spec is the submission as decoded. Immutable.
	Spec JobSpec

	// cfgs are the resolved machine configurations. Immutable.
	cfgs []core.Config

	mu    sync.Mutex
	state State
	err   string
	// results holds the completed configurations' results, a prefix of cfgs.
	results []stats.RunResult
	// cancel is set by DELETE; the executor honors it at the next
	// checkpoint-quantum boundary.
	cancel bool
	// resume carries the recovered checkpoint of the in-flight
	// configuration across a server restart; consumed by the executor.
	resume       []byte
	resumeConfig int
	// checkpoints counts checkpoint writes over the job's whole life
	// (surviving restarts — recovered from the persisted state).
	checkpoints int
	// curConfig/curMeasured/curTarget describe the in-flight configuration.
	curConfig   int
	curMeasured uint64
	curTarget   uint64
	// sweepDone tracks configurations completed on the checkpoint-free
	// RunMany path, where results only land at the end of the sweep.
	sweepDone int
	// steps counts simulator steps this process executed for the job;
	// wall accumulates executor wall-clock time. Together they give the
	// ns/ref exposition.
	steps uint64
	wall  time.Duration

	// events is the SSE replay log; firstSeq is events[0].Seq after the
	// history cap trims the front. subs are live subscriber channels (in
	// subscription order), closed (and dropped) when a terminal event is
	// published.
	events   []Event
	firstSeq int
	subs     []subscriber
	nextSub  int
}

// subscriber is one live SSE listener.
type subscriber struct {
	id int
	ch chan Event
}

// Status is the JSON view returned by GET /jobs/{id}.
type Status struct {
	ID    string `json:"id"`
	Name  string `json:"name,omitempty"`
	State State  `json:"state"`
	Error string `json:"error,omitempty"`
	// Configs counts the sweep's configurations; Done the completed ones.
	Configs int `json:"configs"`
	Done    int `json:"configs_done"`
	// Config is the in-flight configuration index; Measured/Target its
	// measurement progress in committed transactions.
	Config   int    `json:"config"`
	Measured uint64 `json:"measured"`
	Target   uint64 `json:"target"`
	// Checkpoints counts checkpoint writes across the job's life.
	Checkpoints int `json:"checkpoints"`
	// CancelRequested reports a DELETE not yet honored.
	CancelRequested bool `json:"cancel_requested,omitempty"`
	// Results are the completed configurations' results, in sweep order.
	// Complete exactly when State == done.
	Results []stats.RunResult `json:"results,omitempty"`
}

// status snapshots the job under its lock.
func (j *Job) status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	done := len(j.results)
	if j.sweepDone > done {
		// Checkpoint-free RunMany path: results only land when the whole
		// sweep commits, so the Progress hook's count is the live view.
		done = j.sweepDone
	}
	st := Status{
		ID:              j.ID,
		Name:            j.Spec.Name,
		State:           j.state,
		Error:           j.err,
		Configs:         len(j.cfgs),
		Done:            done,
		Config:          j.curConfig,
		Measured:        j.curMeasured,
		Target:          j.curTarget,
		Checkpoints:     j.checkpoints,
		CancelRequested: j.cancel && !j.state.Terminal(),
	}
	if len(j.results) > 0 {
		st.Results = append([]stats.RunResult(nil), j.results...)
	}
	return st
}

// publish appends one event to the job's log and fans it out to live
// subscribers, closing them after a terminal event. Slow subscribers are
// skipped rather than blocked on — the replay log and GET /jobs/{id} are
// the catch-up paths. Callers must not hold j.mu.
func (j *Job) publish(ev Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	ev.Seq = j.firstSeq + len(j.events)
	if len(j.events) == maxEventHistory {
		j.events = append(j.events[:0], j.events[1:]...)
		j.events = j.events[:maxEventHistory-1]
		j.firstSeq++
	}
	j.events = append(j.events, ev)
	for _, sub := range j.subs {
		select {
		case sub.ch <- ev:
		default:
		}
	}
	if State(ev.Type).valid() && State(ev.Type).Terminal() {
		for _, sub := range j.subs {
			close(sub.ch)
		}
		j.subs = nil
	}
}

// subscribe returns the replayable event history and, unless the job is
// already terminal, a live channel registered for future events along with
// its unsubscribe function.
func (j *Job) subscribe() (replay []Event, ch chan Event, unsubscribe func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	replay = append([]Event(nil), j.events...)
	if j.state.Terminal() {
		return replay, nil, func() {}
	}
	id := j.nextSub
	j.nextSub++
	ch = make(chan Event, 64)
	j.subs = append(j.subs, subscriber{id: id, ch: ch})
	return replay, ch, func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		for i, sub := range j.subs {
			if sub.id == id {
				j.subs = append(j.subs[:i], j.subs[i+1:]...)
				close(ch)
				return
			}
		}
	}
}

// canceled reports whether a DELETE asked this job to stop.
func (j *Job) canceled() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cancel
}

// snapshotState captures the job's durable state for persistence.
func (j *Job) snapshotState() persistedState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return persistedStateLocked(j)
}

// startConfig marks configuration i as in flight with a fresh progress
// window.
func (j *Job) startConfig(i int, target uint64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.curConfig = i
	j.curMeasured = 0
	j.curTarget = target
}

// setProgress records measurement progress of the in-flight configuration.
func (j *Job) setProgress(measured, target uint64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.curMeasured = measured
	j.curTarget = target
}

// setSweepProgress records completed configurations on the RunMany path.
func (j *Job) setSweepProgress(done int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.sweepDone = done
}

// noteCheckpoint records one durable checkpoint for configuration i and
// moves the job into the checkpointed state.
func (j *Job) noteCheckpoint(i int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.checkpoints++
	j.curConfig = i
	if j.state == StateRunning {
		j.state = StateCheckpointed
	}
}

// addWork accumulates executed simulator steps and wall-clock time (the
// ns-per-step exposition on /metrics).
func (j *Job) addWork(steps uint64, wall time.Duration) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.steps += steps
	j.wall += wall
}

// workDone returns the accumulated (steps, wall) pair.
func (j *Job) workDone() (uint64, time.Duration) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.steps, j.wall
}

// event builds a job-level event of the given type from current progress.
// Callers must not hold j.mu.
func (j *Job) event(typ string, config int) Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	done := len(j.results)
	if j.sweepDone > done {
		done = j.sweepDone
	}
	return Event{
		Type:     typ,
		Config:   config,
		Done:     done,
		Total:    len(j.cfgs),
		Measured: j.curMeasured,
		Target:   j.curTarget,
		Error:    j.err,
	}
}
