package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
)

// routes wires the REST surface on a Go 1.22 method+pattern mux:
//
//	POST   /jobs             submit a sweep (202, Location header)
//	GET    /jobs             list every job's status, submission order
//	GET    /jobs/{id}        one job's status (results when done)
//	GET    /jobs/{id}/stream SSE progress stream with full replay
//	DELETE /jobs/{id}        request cancellation
//	GET    /healthz          liveness (503 while draining)
//	GET    /metrics          Prometheus text exposition
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// Encoding a Status/apiError cannot fail, and the client is gone if the
	// write does; nothing useful is left to do with the error.
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, apiError{Error: msg})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	spec, cfgs, err := DecodeJobSpec(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	j, err := s.submit(spec, cfgs)
	switch {
	case errors.Is(err, errQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(s.cfg.RetryAfterSeconds))
		writeError(w, http.StatusTooManyRequests,
			fmt.Sprintf("job queue is full (%d jobs active)", s.cfg.QueueDepth))
		return
	case errors.Is(err, errClosing):
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Location", "/jobs/"+j.ID)
	writeJSON(w, http.StatusAccepted, j.status())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.statuses())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobByID(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobByID(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	if !s.cancelJob(j) {
		writeError(w, http.StatusConflict, "job already finished")
		return
	}
	writeJSON(w, http.StatusAccepted, j.status())
}

// handleStream serves the job's event history followed by live events as
// Server-Sent Events, ending at the job's terminal event (or when the
// client goes away or the server closes). No goroutines: the handler
// blocks on the subscriber channel and the request context directly.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobByID(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)

	replay, live, unsubscribe := j.subscribe()
	defer unsubscribe()
	lastSeq := -1
	for _, ev := range replay {
		writeEvent(w, ev)
		lastSeq = ev.Seq
	}
	flusher.Flush()
	if live == nil {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-live:
			if !ok {
				return
			}
			// A subscriber registered mid-publish can see one event both in
			// the replay and on the channel; the Seq guard drops the dup.
			if ev.Seq <= lastSeq {
				continue
			}
			lastSeq = ev.Seq
			writeEvent(w, ev)
			flusher.Flush()
			if State(ev.Type).valid() && State(ev.Type).Terminal() {
				return
			}
		}
	}
}

// writeEvent emits one SSE frame: id, event, and a JSON data line.
func writeEvent(w http.ResponseWriter, ev Event) {
	data, err := json.Marshal(ev)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	closing := s.closing
	jobs := len(s.order)
	s.mu.Unlock()
	if closing {
		writeError(w, http.StatusServiceUnavailable, "shutting down")
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
		Jobs   int    `json:"jobs"`
	}{Status: "ok", Jobs: jobs})
}
