package server

import (
	"fmt"
	"net/http"
	"strings"
)

// handleMetrics renders the Prometheus text exposition (version 0.0.4) by
// hand — the package is stdlib-only. Series order is fixed: scalar
// families in declaration order, per-state gauges in state-machine order,
// per-job series in submission order. Two scrapes of the same server state
// are byte-identical, which is what the golden metrics test pins.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, s.renderMetrics())
}

// metricStates fixes the exposition order of the per-state job gauge.
var metricStates = []State{
	StateQueued, StateRunning, StateCheckpointed,
	StateDone, StateFailed, StateCancelled,
}

// renderMetrics builds the full exposition.
func (s *Server) renderMetrics() string {
	s.mu.Lock()
	// Resolve job pointers while the lock is held; indexing the jobs map
	// after unlocking would race with submit()'s inserts.
	jobList := make([]*Job, len(s.order))
	for i, id := range s.order {
		jobList[i] = s.jobs[id]
	}
	queueDepth := len(s.pending) + s.busy + s.reserved
	capacity := s.cfg.QueueDepth
	workers := s.cfg.Workers
	busy := s.busy
	counters := []struct {
		name, help string
		value      uint64
	}{
		{"oltpserver_jobs_accepted_total", "Jobs admitted to the queue.", s.jobsAccepted},
		{"oltpserver_jobs_recovered_total", "Jobs recovered from the data directory at startup.", s.jobsRecovered},
		{"oltpserver_jobs_resumed_total", "Configurations resumed from a recovered checkpoint.", s.jobsResumed},
		{"oltpserver_jobs_completed_total", "Jobs that reached the done state.", s.jobsCompleted},
		{"oltpserver_jobs_failed_total", "Jobs that reached the failed state.", s.jobsFailed},
		{"oltpserver_jobs_cancelled_total", "Jobs that reached the cancelled state.", s.jobsCancelled},
		{"oltpserver_jobs_rejected_total", "Submissions rejected because the queue was full.", s.jobsRejected},
		{"oltpserver_checkpoints_written_total", "Checkpoints made durable across all jobs.", s.checkpointsWritten},
	}
	s.mu.Unlock()

	var b strings.Builder
	for _, c := range counters {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", c.name, c.help, c.name, c.name, c.value)
	}

	// Per-state gauge, computed from live job states in fixed state order.
	byState := make(map[State]int)
	for _, j := range jobList {
		st := j.status()
		byState[st.State]++
	}
	fmt.Fprint(&b, "# HELP oltpserver_jobs Jobs currently known, by lifecycle state.\n# TYPE oltpserver_jobs gauge\n")
	for _, st := range metricStates {
		fmt.Fprintf(&b, "oltpserver_jobs{state=%q} %d\n", st, byState[st])
	}

	fmt.Fprintf(&b, "# HELP oltpserver_queue_depth Jobs admitted but not yet terminal.\n# TYPE oltpserver_queue_depth gauge\noltpserver_queue_depth %d\n", queueDepth)
	fmt.Fprintf(&b, "# HELP oltpserver_queue_capacity Admission limit on concurrent jobs.\n# TYPE oltpserver_queue_capacity gauge\noltpserver_queue_capacity %d\n", capacity)
	fmt.Fprintf(&b, "# HELP oltpserver_workers Configured worker-pool size.\n# TYPE oltpserver_workers gauge\noltpserver_workers %d\n", workers)
	fmt.Fprintf(&b, "# HELP oltpserver_workers_busy Workers currently executing a job.\n# TYPE oltpserver_workers_busy gauge\noltpserver_workers_busy %d\n", busy)

	// Per-job wall-clock cost per simulator reference (step), submission
	// order. Only jobs that executed steps in this process have a value.
	fmt.Fprint(&b, "# HELP oltpserver_job_ns_per_ref Wall-clock nanoseconds per simulator step, per job.\n# TYPE oltpserver_job_ns_per_ref gauge\n")
	for _, j := range jobList {
		steps, wall := j.workDone()
		if steps == 0 {
			continue
		}
		fmt.Fprintf(&b, "oltpserver_job_ns_per_ref{job=%q} %.3f\n", j.ID, float64(wall.Nanoseconds())/float64(steps))
	}
	return b.String()
}
