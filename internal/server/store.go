package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"oltpsim/internal/stats"
)

// On-disk layout under Config.DataDir:
//
//	jobs/job-000001/spec.json      — the submission, verbatim JobSpec
//	jobs/job-000001/state.json     — persistedState (below)
//	jobs/job-000001/results.json   — completed configurations' RunResults
//	jobs/job-000001/checkpoint.bin — latest checkpoint of the in-flight config
//
// Every write goes through an atomic tmp+rename, so any file that exists is
// complete: a server killed mid-write leaves either the old content or the
// new, never a torn file. That is what lets recovery trust whatever it
// finds.

// persistedState is the durable slice of a Job's mutable state — enough to
// re-queue and resume it after a restart.
type persistedState struct {
	State State  `json:"state"`
	Error string `json:"error,omitempty"`
	// Config is the in-flight configuration index (== completed results).
	Config int `json:"config"`
	// Checkpoints counts checkpoint writes over the job's whole life.
	Checkpoints int `json:"checkpoints"`
	// Cancel records a DELETE not yet honored when the state was written.
	Cancel bool `json:"cancel,omitempty"`
}

// store is the server's disk layer. All methods are safe for concurrent use
// on distinct job IDs; the server serializes per-job access itself.
type store struct {
	dir string // <DataDir>/jobs
}

func newStore(dataDir string) (*store, error) {
	dir := filepath.Join(dataDir, "jobs")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &store{dir: dir}, nil
}

func (st *store) jobDir(id string) string { return filepath.Join(st.dir, id) }

// writeFile atomically replaces <jobdir>/<name> with data. The temp file is
// fsynced before the rename and the directory after it, so the
// either-old-or-new guarantee covers OS crashes and power loss, not just
// process kills — rename-before-data-flush could otherwise surface an
// empty or torn file.
func (st *store) writeFile(id, name string, data []byte) error {
	dir := st.jobDir(id)
	tmp := filepath.Join(dir, name+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry survives an OS crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

func (st *store) writeJSON(id, name string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return st.writeFile(id, name, data)
}

// createJob makes the job directory and persists the spec and the initial
// queued state.
func (st *store) createJob(id string, spec JobSpec) error {
	if err := os.MkdirAll(st.jobDir(id), 0o755); err != nil {
		return err
	}
	if err := st.writeJSON(id, "spec.json", spec); err != nil {
		return err
	}
	return st.writeJSON(id, "state.json", persistedState{State: StateQueued})
}

func (st *store) writeState(id string, ps persistedState) error {
	return st.writeJSON(id, "state.json", ps)
}

func (st *store) writeResults(id string, results []stats.RunResult) error {
	return st.writeJSON(id, "results.json", results)
}

func (st *store) writeCheckpoint(id string, data []byte) error {
	return st.writeFile(id, "checkpoint.bin", data)
}

// removeJob deletes a job's directory entirely. Used only to roll back a
// submission the client was never told succeeded (a Close racing submit);
// accepted jobs are never removed.
func (st *store) removeJob(id string) error {
	return os.RemoveAll(st.jobDir(id))
}

// removeCheckpoint deletes the in-flight configuration's checkpoint once
// that configuration's result is durable. Absence is not an error.
func (st *store) removeCheckpoint(id string) error {
	err := os.Remove(filepath.Join(st.jobDir(id), "checkpoint.bin"))
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	return err
}

// recoverJobs scans the store and rebuilds every persisted job. Directory
// entries come back name-sorted from os.ReadDir, so recovery order — and
// therefore the re-queue order of interrupted jobs — is the original
// submission order. It returns the jobs plus the highest sequence number
// seen, so new IDs continue after the recovered ones.
func (st *store) recoverJobs() ([]*Job, uint64, error) {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, 0, err
	}
	var jobs []*Job
	var maxSeq uint64
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		var seq uint64
		if _, err := fmt.Sscanf(e.Name(), "job-%06d", &seq); err != nil {
			continue
		}
		j, err := st.readJob(e.Name())
		if err != nil {
			return nil, 0, fmt.Errorf("recovering %s: %w", e.Name(), err)
		}
		if seq > maxSeq {
			maxSeq = seq
		}
		jobs = append(jobs, j)
	}
	return jobs, maxSeq, nil
}

// readJob rebuilds one job from its directory. The spec re-resolves through
// the same validation as submission, so a recovered job's configurations
// are identical to the originals; the in-flight configuration's checkpoint
// is attached only when the persisted state says it belongs to the next
// configuration to run (a crash between "result durable" and "checkpoint
// removed" leaves a stale checkpoint, which this guard discards).
func (st *store) readJob(id string) (*Job, error) {
	specData, err := os.ReadFile(filepath.Join(st.jobDir(id), "spec.json"))
	if err != nil {
		return nil, err
	}
	spec, cfgs, err := DecodeJobSpec(bytes.NewReader(specData))
	if err != nil {
		return nil, fmt.Errorf("spec.json: %w", err)
	}
	stateData, err := os.ReadFile(filepath.Join(st.jobDir(id), "state.json"))
	if err != nil {
		return nil, err
	}
	var ps persistedState
	if err := json.Unmarshal(stateData, &ps); err != nil {
		return nil, fmt.Errorf("state.json: %w", err)
	}
	if !ps.State.valid() {
		return nil, fmt.Errorf("state.json: unknown state %q", ps.State)
	}
	j := &Job{
		ID:          id,
		Spec:        spec,
		cfgs:        cfgs,
		state:       ps.State,
		err:         ps.Error,
		cancel:      ps.Cancel,
		checkpoints: ps.Checkpoints,
		curConfig:   ps.Config,
	}
	resData, err := os.ReadFile(filepath.Join(st.jobDir(id), "results.json"))
	switch {
	case err == nil:
		if err := json.Unmarshal(resData, &j.results); err != nil {
			return nil, fmt.Errorf("results.json: %w", err)
		}
	case errors.Is(err, fs.ErrNotExist):
	default:
		return nil, err
	}
	if !ps.State.Terminal() {
		ck, err := os.ReadFile(filepath.Join(st.jobDir(id), "checkpoint.bin"))
		switch {
		case err == nil && ps.Config == len(j.results):
			j.resume = ck
			j.resumeConfig = ps.Config
		case err == nil || errors.Is(err, fs.ErrNotExist):
		default:
			return nil, err
		}
	}
	return j, nil
}
