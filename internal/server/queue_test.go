package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestQueueSaturation pins the backpressure contract: once queued plus
// running jobs reach QueueDepth, submissions get 429 with the configured
// Retry-After header, and capacity freed by finishing jobs is usable again.
func TestQueueSaturation(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	gate := make(chan struct{})
	var once sync.Once
	cfg := testServerConfig(t.TempDir())
	cfg.QueueDepth = 2
	cfg.RetryAfterSeconds = 7
	cfg.OnCheckpoint = func(string, int, int) { <-gate }
	s := newTestServer(t, cfg)
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer once.Do(func() { close(gate) })

	// Fill the queue: one job on the (parked) worker, one waiting.
	first := postJob(t, ts, smokeSpec())
	second := postJob(t, ts, smokeSpec())

	// The third submission must bounce with backpressure headers.
	resp, err := ts.Client().Post(ts.URL+"/jobs", "application/json", strings.NewReader(smokeSpec()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submission over capacity: status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Errorf("Retry-After = %q, want %q", got, "7")
	}

	// A rejected submission leaves no trace: no job directory, no queue
	// slot, just the rejection counter.
	s.mu.Lock()
	known, rejected := len(s.order), s.jobsRejected
	s.mu.Unlock()
	if known != 2 {
		t.Errorf("server knows %d jobs after rejection, want 2", known)
	}
	if rejected != 1 {
		t.Errorf("jobsRejected = %d, want 1", rejected)
	}

	// Draining the queue frees capacity for new submissions.
	once.Do(func() { close(gate) })
	for _, st := range []Status{first, second} {
		if got := waitTerminal(t, s, st.ID); got != StateDone {
			t.Fatalf("job %s finished %q", st.ID, got)
		}
	}
	third := postJob(t, ts, smokeSpec())
	if got := waitTerminal(t, s, third.ID); got != StateDone {
		t.Fatalf("post-drain job finished %q", got)
	}
}

// TestConcurrentSubmissions races many clients against one server (run
// under -race in CI): every accepted job gets a unique ID, acceptances
// plus rejections add up exactly, and the accepted count never exceeds
// QueueDepth at admission time.
func TestConcurrentSubmissions(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	gate := make(chan struct{})
	var once sync.Once
	cfg := testServerConfig(t.TempDir())
	cfg.QueueDepth = 4
	cfg.OnCheckpoint = func(string, int, int) { <-gate }
	s := newTestServer(t, cfg)
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer once.Do(func() { close(gate) })

	const clients = 16
	type outcome struct {
		status int
		id     string
	}
	results := make(chan outcome, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := ts.Client().Post(ts.URL+"/jobs", "application/json", strings.NewReader(smokeSpec()))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			o := outcome{status: resp.StatusCode}
			if resp.StatusCode == http.StatusAccepted {
				var st Status
				if err := decodeBody(resp, &st); err != nil {
					t.Error(err)
					return
				}
				o.id = st.ID
			}
			results <- o
		}()
	}
	wg.Wait()
	close(results)

	ids := make(map[string]bool)
	accepted, rejected := 0, 0
	for o := range results {
		switch o.status {
		case http.StatusAccepted:
			accepted++
			if ids[o.id] {
				t.Errorf("duplicate job ID %s", o.id)
			}
			ids[o.id] = true
		case http.StatusTooManyRequests:
			rejected++
		default:
			t.Errorf("unexpected status %d", o.status)
		}
	}
	if accepted+rejected != clients {
		t.Fatalf("%d accepted + %d rejected != %d clients", accepted, rejected, clients)
	}
	// Exactly QueueDepth slots existed and no submission ran concurrently
	// with a completion, so admission is exact, not approximate.
	if accepted != cfg.QueueDepth {
		t.Errorf("accepted %d jobs, want exactly QueueDepth=%d", accepted, cfg.QueueDepth)
	}

	once.Do(func() { close(gate) })
	for id := range ids {
		if got := waitTerminal(t, s, id); got != StateDone {
			t.Errorf("job %s finished %q", id, got)
		}
	}
}

// TestConcurrentReadsDuringSubmission races the read surface behind GET
// /jobs and GET /metrics against a submission storm. Run under -race in
// CI: it pins that the jobs map is never indexed outside the server lock
// while submit() is inserting — list snapshots must resolve job pointers
// under s.mu, not copy the map header and index it after unlocking. The
// readers call statuses()/renderMetrics() directly in tight loops (HTTP
// round-trips would leave the race window open only microseconds per
// request, letting the detector miss real races).
func TestConcurrentReadsDuringSubmission(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	const clients = 24
	cfg := testServerConfig(t.TempDir())
	cfg.QueueDepth = clients
	s := newTestServer(t, cfg)

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for _, read := range []func(){
		func() { s.statuses() },
		func() { s.renderMetrics() },
	} {
		readers.Add(1)
		go func(read func()) {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					read()
				}
			}
		}(read)
	}

	spec, cfgs, err := DecodeJobSpec(strings.NewReader(smokeSpec()))
	if err != nil {
		t.Fatal(err)
	}
	var writers sync.WaitGroup
	for i := 0; i < clients; i++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			if _, err := s.submit(spec, cfgs); err != nil {
				t.Errorf("submit: %v", err)
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()

	// Cancel everything still pending so the test doesn't pay for 24 full
	// sweeps; the storm above is the part under test.
	for _, st := range s.statuses() {
		j, _ := s.jobByID(st.ID)
		s.cancelJob(j)
	}
	for _, st := range s.statuses() {
		if got := waitTerminal(t, s, st.ID); !got.Terminal() {
			t.Errorf("job %s left in state %q", st.ID, got)
		}
	}
}

// decodeBody decodes a JSON response body.
func decodeBody(resp *http.Response, v any) error {
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		return fmt.Errorf("decoding %s response: %w", resp.Request.URL.Path, err)
	}
	return nil
}
