package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"oltpsim/internal/experiments"
	"oltpsim/internal/sim"
)

// testClock returns a deterministic injected clock: strictly monotonic,
// one millisecond per reading, starting from a fixed epoch. The servers
// under test never touch the real wall clock.
func testClock() func() time.Time {
	var mu sync.Mutex
	now := time.Unix(1_000_000, 0)
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		now = now.Add(time.Millisecond)
		return now
	}
}

// testServerConfig is the base configuration for an in-test server.
func testServerConfig(dir string) Config {
	return Config{
		DataDir:         dir,
		Workers:         1,
		QueueDepth:      8,
		CheckpointEvery: 50,
		Now:             testClock(),
	}
}

// newTestServer builds and starts a server, tying its shutdown to the test.
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	t.Cleanup(func() { s.Close() })
	return s
}

// smokeSpec is the protocol the lifecycle tests run: two small machines
// under a quick workload, long enough that a 50-transaction checkpoint
// quantum fires several times per configuration.
func smokeSpec() string {
	return `{
		"name": "smoke",
		"machines": [
			{"procs": 1, "level": "base", "l2": "1M", "assoc": 1},
			{"procs": 2, "level": "full", "l2": "1M", "assoc": 2}
		],
		"warmup_txns": 60,
		"measure_txns": 120,
		"quick": true
	}`
}

// smokeOptions mirrors smokeSpec as direct experiments.Options.
func smokeOptions() experiments.Options {
	return experiments.Options{WarmupTxns: 60, MeasureTxns: 120, Quick: true, Zeta: sim.NewZetaCache()}
}

// postJob submits a spec over HTTP and decodes the accepted status.
func postJob(t *testing.T, ts *httptest.Server, body string) Status {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /jobs: status %d: %s", resp.StatusCode, msg)
	}
	if loc := resp.Header.Get("Location"); !strings.HasPrefix(loc, "/jobs/job-") {
		t.Fatalf("POST /jobs Location = %q", loc)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// getStatus fetches one job's status over HTTP.
func getStatus(t *testing.T, ts *httptest.Server, id string) Status {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /jobs/%s: status %d", id, resp.StatusCode)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitTerminal blocks until the job reaches a terminal state, using the
// same event stream SSE rides on (no polling, no timeouts of its own — the
// test binary's deadline is the backstop).
func waitTerminal(t *testing.T, s *Server, id string) State {
	t.Helper()
	j, ok := s.jobByID(id)
	if !ok {
		t.Fatalf("no such job %s", id)
	}
	replay, live, unsubscribe := j.subscribe()
	defer unsubscribe()
	for _, ev := range replay {
		if st := State(ev.Type); st.valid() && st.Terminal() {
			return st
		}
	}
	if live != nil {
		for ev := range live {
			if st := State(ev.Type); st.valid() && st.Terminal() {
				return st
			}
		}
	}
	return j.status().State
}

// readStream consumes the SSE stream of one job until its terminal event,
// returning every decoded event in order.
func readStream(t *testing.T, ts *httptest.Server, id string) []Event {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET stream: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream Content-Type = %q", ct)
	}
	var events []Event
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		line := scanner.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad SSE data line %q: %v", line, err)
		}
		events = append(events, ev)
		if st := State(ev.Type); st.valid() && st.Terminal() {
			return events
		}
	}
	t.Fatalf("stream ended without a terminal event (%d events)", len(events))
	return nil
}

// mustJSON marshals for byte-for-byte result comparisons: Go's encoder is
// digit-exact for uint64 and shortest-round-trip for float64, so equal
// encodings mean equal values.
func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestServerLifecycle drives the full happy path over HTTP — submit, poll,
// stream, fetch results — and pins the headline guarantee: the results a
// checkpointed server job returns are byte-for-byte the results of calling
// experiments directly.
func TestServerLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	s := newTestServer(t, testServerConfig(t.TempDir()))
	ts := httptest.NewServer(s)
	defer ts.Close()

	st := postJob(t, ts, smokeSpec())
	if st.State != StateQueued {
		t.Errorf("accepted job state = %q, want queued", st.State)
	}
	if st.Configs != 2 || st.Name != "smoke" {
		t.Errorf("accepted status = %+v", st)
	}

	events := readStream(t, ts, st.ID)
	final := getStatus(t, ts, st.ID)
	if final.State != StateDone {
		t.Fatalf("job finished %q (%s), want done", final.State, final.Error)
	}
	if final.Done != 2 || len(final.Results) != 2 {
		t.Fatalf("done job has %d/%d results", final.Done, len(final.Results))
	}
	if final.Checkpoints < 3 {
		t.Errorf("job wrote %d checkpoints, want >= 3 (quantum 50 over 60+120 txns x2)", final.Checkpoints)
	}

	// The event stream is complete and ordered: seq dense from 0, the
	// lifecycle markers in protocol order, a checkpoint before the first
	// result, terminal event last.
	for i, ev := range events {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d (stream must be dense from 0)", i, ev.Seq)
		}
	}
	var kinds []string
	for _, ev := range events {
		kinds = append(kinds, ev.Type)
	}
	joined := strings.Join(kinds, " ")
	for _, marker := range []string{"queued", "started", "config", "checkpoint", "progress", "result", "done"} {
		if !strings.Contains(joined, marker) {
			t.Errorf("stream missing %q event: %s", marker, joined)
		}
	}
	if kinds[len(kinds)-1] != "done" {
		t.Errorf("stream ended with %q, want done", kinds[len(kinds)-1])
	}

	// Byte-for-byte equality with the direct experiments call.
	_, cfgs, err := DecodeJobSpec(strings.NewReader(smokeSpec()))
	if err != nil {
		t.Fatal(err)
	}
	want := smokeOptions().RunMany(cfgs)
	if got, exp := mustJSON(t, final.Results), mustJSON(t, want); !bytes.Equal(got, exp) {
		t.Errorf("server results differ from direct RunMany:\n got %s\nwant %s", got, exp)
	}

	// The listing includes the job.
	resp, err := ts.Client().Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var all []Status
	if err := json.NewDecoder(resp.Body).Decode(&all); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(all) != 1 || all[0].ID != st.ID {
		t.Errorf("GET /jobs returned %+v", all)
	}
}

// TestServerRunManyPath pins the checkpoint-free executor: an explicit
// checkpoint_every of 0 routes the sweep through RunMany (optionally
// fanned across job workers) and still produces byte-identical results.
func TestServerRunManyPath(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	s := newTestServer(t, testServerConfig(t.TempDir()))
	ts := httptest.NewServer(s)
	defer ts.Close()

	body := strings.Replace(smokeSpec(), `"quick": true`, `"quick": true, "checkpoint_every": 0, "workers": 2`, 1)
	st := postJob(t, ts, body)
	if got := waitTerminal(t, s, st.ID); got != StateDone {
		t.Fatalf("job finished %q, want done", got)
	}
	final := getStatus(t, ts, st.ID)
	if final.Checkpoints != 0 {
		t.Errorf("checkpoint-free job wrote %d checkpoints", final.Checkpoints)
	}
	_, cfgs, err := DecodeJobSpec(strings.NewReader(smokeSpec()))
	if err != nil {
		t.Fatal(err)
	}
	want := smokeOptions().RunMany(cfgs)
	if got, exp := mustJSON(t, final.Results), mustJSON(t, want); !bytes.Equal(got, exp) {
		t.Errorf("RunMany-path results differ from direct call:\n got %s\nwant %s", got, exp)
	}
}

// TestServerAPIErrors covers the REST error surface that needs no
// simulation: malformed specs, unknown jobs, double cancels, and
// submissions to a draining server.
func TestServerAPIErrors(t *testing.T) {
	s := newTestServer(t, testServerConfig(t.TempDir()))
	ts := httptest.NewServer(s)
	defer ts.Close()
	client := ts.Client()

	resp, err := client.Post(ts.URL+"/jobs", "application/json", strings.NewReader(`{"bogus": true}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad spec: status %d, want 400", resp.StatusCode)
	}

	for _, path := range []string{"/jobs/job-000099", "/jobs/job-000099/stream"} {
		resp, err = client.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", path, resp.StatusCode)
		}
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/job-000099", nil)
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("DELETE unknown: status %d, want 404", resp.StatusCode)
	}

	resp, err = client.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: status %d, want 200", resp.StatusCode)
	}

	s.Close()
	resp, err = client.Post(ts.URL+"/jobs", "application/json", strings.NewReader(smokeSpec()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit while draining: status %d, want 503", resp.StatusCode)
	}
	resp, err = client.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining: status %d, want 503", resp.StatusCode)
	}
}

// TestServerCancel exercises both cancellation paths: a queued job cancels
// immediately; a running job stops at the next checkpoint boundary with
// ErrCanceled mid-measurement, and a second DELETE conflicts.
func TestServerCancel(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	gate := make(chan struct{})
	var once sync.Once
	cfg := testServerConfig(t.TempDir())
	cfg.OnCheckpoint = func(string, int, int) { <-gate }
	s := newTestServer(t, cfg)
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer once.Do(func() { close(gate) })

	// Job 1 occupies the single worker, parked at its first checkpoint.
	// Job 2 stays queued behind it.
	running := postJob(t, ts, smokeSpec())
	queued := postJob(t, ts, smokeSpec())

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+queued.ID, nil)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE queued: status %d, want 202", resp.StatusCode)
	}
	if st := getStatus(t, ts, queued.ID); st.State != StateCancelled {
		t.Errorf("queued job after DELETE: %q, want cancelled immediately", st.State)
	}

	// Cancel the running job, then release the worker: it must stop at the
	// next quantum boundary without finishing the sweep.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+running.ID, nil)
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE running: status %d, want 202", resp.StatusCode)
	}
	if st := getStatus(t, ts, running.ID); !st.CancelRequested {
		t.Error("running job does not report cancel_requested")
	}
	once.Do(func() { close(gate) })
	if got := waitTerminal(t, s, running.ID); got != StateCancelled {
		t.Fatalf("running job finished %q, want cancelled", got)
	}
	if st := getStatus(t, ts, running.ID); len(st.Results) != 0 {
		t.Errorf("cancelled mid-first-config job has %d results", len(st.Results))
	}

	// Terminal jobs conflict on further DELETEs.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+running.ID, nil)
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("DELETE terminal: status %d, want 409", resp.StatusCode)
	}

	// A stream opened after the fact replays the whole history including
	// the terminal event.
	events := readStream(t, ts, running.ID)
	if last := events[len(events)-1].Type; last != string(StateCancelled) {
		t.Errorf("replayed stream ends with %q, want cancelled", last)
	}
}
