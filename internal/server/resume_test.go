package server

import (
	"bytes"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

// submitDirect hands a spec straight to the queue (the resume tests pin
// executor and persistence behavior; the HTTP surface has its own suite).
func submitDirect(t *testing.T, s *Server, body string) *Job {
	t.Helper()
	spec, cfgs, err := DecodeJobSpec(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	j, err := s.submit(spec, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// TestServerResumeEquivalence is the PR's headline acceptance test: for
// several checkpoint quanta, a server killed mid-job (no goodbyes, no
// final writes — the deterministic stand-in for SIGKILL) and restarted on
// the same data directory finishes the job with a RunResult byte-identical
// to an uninterrupted direct run. The kill lands at a different protocol
// position per quantum — mid-warmup, at the phase boundary, and
// mid-measurement — so every resume path through the executor is covered.
func TestServerResumeEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	_, cfgs, err := DecodeJobSpec(strings.NewReader(smokeSpec()))
	if err != nil {
		t.Fatal(err)
	}
	want := mustJSON(t, smokeOptions().RunMany(cfgs))

	// killAfter counts durable checkpoints before the kill. With warmup 60
	// and measure 120: quantum 25 dies in config 0's warmup; quantum 60
	// dies right at config 0's warmup/measure boundary; quantum 121 (with
	// three checkpoints: warmup-end and measure-end of config 0, then
	// config 1's warmup-end) dies inside config 1.
	for _, tc := range []struct {
		quantum   uint64
		killAfter int32
	}{
		{25, 2},
		{60, 1},
		{121, 3},
	} {
		dir := t.TempDir()
		cfg := testServerConfig(dir)
		cfg.CheckpointEvery = tc.quantum

		var (
			writes int32
			victim *Server
		)
		killed := make(chan struct{})
		cfg.OnCheckpoint = func(id string, config, seq int) {
			if atomic.AddInt32(&writes, 1) == tc.killAfter {
				victim.Kill()
				close(killed)
			}
		}
		s1, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		victim = s1
		j := submitDirect(t, s1, smokeSpec())
		s1.Start()
		<-killed
		s1.Close() // joins the worker after the kill takes effect

		if got := atomic.LoadInt32(&writes); got < tc.killAfter {
			t.Fatalf("quantum %d: only %d checkpoints before the kill point %d", tc.quantum, got, tc.killAfter)
		}
		if st := j.status(); st.State.Terminal() {
			t.Fatalf("quantum %d: job reached %q before the kill", tc.quantum, st.State)
		}

		// A fresh server on the same directory recovers the job, resumes
		// the interrupted configuration from its checkpoint, and finishes.
		cfg2 := testServerConfig(dir)
		cfg2.CheckpointEvery = tc.quantum
		s2 := newTestServer(t, cfg2)
		j2, ok := s2.jobByID(j.ID)
		if !ok {
			t.Fatalf("quantum %d: restart lost job %s", tc.quantum, j.ID)
		}
		if got := waitTerminal(t, s2, j.ID); got != StateDone {
			t.Fatalf("quantum %d: resumed job finished %q (%s)", tc.quantum, got, j2.status().Error)
		}
		final := j2.status()
		if got := mustJSON(t, final.Results); !bytes.Equal(got, want) {
			t.Errorf("quantum %d: resumed results diverge from uninterrupted run:\n got %s\nwant %s", tc.quantum, got, want)
		}
		s2.mu.Lock()
		recovered, resumed := s2.jobsRecovered, s2.jobsResumed
		s2.mu.Unlock()
		if recovered != 1 {
			t.Errorf("quantum %d: recovered %d jobs, want 1", tc.quantum, recovered)
		}
		if resumed != 1 {
			t.Errorf("quantum %d: resumed %d configurations from checkpoint, want 1", tc.quantum, resumed)
		}
		if final.Checkpoints < int(tc.killAfter) {
			t.Errorf("quantum %d: final checkpoint count %d below pre-kill count %d (state.json lost history)",
				tc.quantum, final.Checkpoints, tc.killAfter)
		}
	}
}

// TestCommitBoundaryCrashRecovery pins the crash window inside
// commitResult itself. The commit order is results → checkpoint removal →
// state advance, so the only stale-checkpoint image a crash can leave is
// "results.json already holds configuration i, state.json still points at
// i, checkpoint.bin still holds config i's last checkpoint". Recovery must
// discard that checkpoint (state.Config != len(results)) and start
// configuration i+1 fresh — feeding config i's checkpoint to config i+1
// would fail its machine-fingerprint gate and dead-end the job. The test
// forges the image from a real mid-config-0 kill plus a directly computed
// config-0 result, then restarts on it.
func TestCommitBoundaryCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	_, cfgs, err := DecodeJobSpec(strings.NewReader(smokeSpec()))
	if err != nil {
		t.Fatal(err)
	}
	want := mustJSON(t, smokeOptions().RunMany(cfgs))
	dir := t.TempDir()

	// Kill mid-configuration-0 so the directory holds config 0's checkpoint
	// with state.Config == 0 and no results yet.
	cfg := testServerConfig(dir)
	cfg.CheckpointEvery = 25
	var (
		writes int32
		victim *Server
	)
	killed := make(chan struct{})
	cfg.OnCheckpoint = func(string, int, int) {
		if atomic.AddInt32(&writes, 1) == 2 {
			victim.Kill()
			close(killed)
		}
	}
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	victim = s1
	id := submitDirect(t, s1, smokeSpec()).ID
	s1.Start()
	<-killed
	s1.Close()

	// Forge the mid-commit crash: configuration 0's result became durable,
	// but the crash hit before the checkpoint removal (and therefore before
	// the state advance too).
	st, err := newStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.writeResults(id, smokeOptions().RunMany(cfgs[:1])); err != nil {
		t.Fatal(err)
	}

	cfg2 := testServerConfig(dir)
	cfg2.CheckpointEvery = 25
	s2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	j2, ok := s2.jobByID(id)
	if !ok {
		t.Fatalf("restart lost job %s", id)
	}
	if j2.resume != nil {
		t.Fatal("recovery attached configuration 0's stale checkpoint to the next configuration")
	}
	s2.Start()
	t.Cleanup(func() { s2.Close() })
	if got := waitTerminal(t, s2, id); got != StateDone {
		t.Fatalf("job finished %q after commit-boundary crash (%s)", got, j2.status().Error)
	}
	if got := mustJSON(t, j2.status().Results); !bytes.Equal(got, want) {
		t.Errorf("results diverge from uninterrupted run:\n got %s\nwant %s", got, want)
	}
	s2.mu.Lock()
	resumed := s2.jobsResumed
	s2.mu.Unlock()
	if resumed != 0 {
		t.Errorf("jobsResumed = %d after discarding a stale checkpoint, want 0", resumed)
	}
}

// TestServerDoubleKillResume chains two kills through the same job: crash,
// resume, crash again further along, resume again — the result must still
// be byte-identical. This is the "any interleaving" half of the resume
// determinism argument.
func TestServerDoubleKillResume(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	_, cfgs, err := DecodeJobSpec(strings.NewReader(smokeSpec()))
	if err != nil {
		t.Fatal(err)
	}
	want := mustJSON(t, smokeOptions().RunMany(cfgs))
	dir := t.TempDir()

	var id string
	for round, killAfter := range []int32{2, 3} {
		cfg := testServerConfig(dir)
		cfg.CheckpointEvery = 25
		var (
			writes int32
			victim *Server
		)
		killed := make(chan struct{})
		cfg.OnCheckpoint = func(string, int, int) {
			if atomic.AddInt32(&writes, 1) == killAfter {
				victim.Kill()
				close(killed)
			}
		}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		victim = s
		if round == 0 {
			id = submitDirect(t, s, smokeSpec()).ID
		}
		s.Start()
		<-killed
		s.Close()
		j, ok := s.jobByID(id)
		if !ok {
			t.Fatalf("round %d: job %s lost", round, id)
		}
		if st := j.status(); st.State.Terminal() {
			t.Fatalf("round %d: job reached %q before the kill", round, st.State)
		}
	}

	cfg := testServerConfig(dir)
	cfg.CheckpointEvery = 25
	s := newTestServer(t, cfg)
	if got := waitTerminal(t, s, id); got != StateDone {
		t.Fatalf("job finished %q after two crash cycles", got)
	}
	j, _ := s.jobByID(id)
	if got := mustJSON(t, j.status().Results); !bytes.Equal(got, want) {
		t.Errorf("twice-crashed job diverges from uninterrupted run:\n got %s\nwant %s", got, want)
	}
}

// TestServerGracefulCloseResume covers the third stop cause: Close (not
// Kill) preempts a running job at a checkpoint boundary, leaving it
// resumable, and a new server finishes it to the identical result. Also
// verifies a job still queued at close time is recovered and run.
func TestServerGracefulCloseResume(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	_, cfgs, err := DecodeJobSpec(strings.NewReader(smokeSpec()))
	if err != nil {
		t.Fatal(err)
	}
	want := mustJSON(t, smokeOptions().RunMany(cfgs))
	dir := t.TempDir()

	cfg := testServerConfig(dir)
	reached := make(chan struct{})
	proceed := make(chan struct{})
	var once1, once2 bool
	cfg.OnCheckpoint = func(string, int, int) {
		if !once1 {
			once1 = true
			close(reached)
		}
		if !once2 {
			<-proceed
			once2 = true
		}
	}
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first := submitDirect(t, s1, smokeSpec())
	second := submitDirect(t, s1, smokeSpec())
	s1.Start()

	// Park the worker at the first checkpoint, begin a graceful close on
	// another goroutine, and only then let the worker continue: its next
	// quantum-boundary poll sees the shutdown and preempts.
	<-reached
	closed := make(chan struct{})
	go func() {
		s1.Close()
		close(closed)
	}()
	for !s1.stopping() {
		runtime.Gosched()
	}
	close(proceed)
	<-closed
	if st := first.status(); st.State.Terminal() {
		t.Fatalf("first job reached %q before close finished", st.State)
	}
	if st := second.status(); st.State != StateQueued {
		t.Fatalf("second job is %q at close, want queued", st.State)
	}

	s2 := newTestServer(t, testServerConfig(dir))
	for _, id := range []string{first.ID, second.ID} {
		if got := waitTerminal(t, s2, id); got != StateDone {
			t.Fatalf("job %s finished %q after graceful restart", id, got)
		}
		j, _ := s2.jobByID(id)
		if got := mustJSON(t, j.status().Results); !bytes.Equal(got, want) {
			t.Errorf("job %s diverges from uninterrupted run after graceful restart", id)
		}
	}
}

// TestServerRestartKeepsHistory: terminal jobs survive a restart as
// queryable history without re-running.
func TestServerRestartKeepsHistory(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	dir := t.TempDir()
	s1 := newTestServer(t, testServerConfig(dir))
	j := submitDirect(t, s1, smokeSpec())
	if got := waitTerminal(t, s1, j.ID); got != StateDone {
		t.Fatalf("job finished %q", got)
	}
	wantResults := mustJSON(t, j.status().Results)
	s1.Close()

	s2 := newTestServer(t, testServerConfig(dir))
	j2, ok := s2.jobByID(j.ID)
	if !ok {
		t.Fatal("restart lost the finished job")
	}
	st := j2.status()
	if st.State != StateDone {
		t.Errorf("recovered job state %q, want done", st.State)
	}
	if got := mustJSON(t, st.Results); !bytes.Equal(got, wantResults) {
		t.Error("recovered results differ from the originals")
	}
	s2.mu.Lock()
	pending := len(s2.pending)
	s2.mu.Unlock()
	if pending != 0 {
		t.Errorf("restart re-queued %d terminal jobs", pending)
	}
	// IDs continue after the recovered sequence instead of colliding.
	j3 := submitDirect(t, s2, smokeSpec())
	if j3.ID == j.ID {
		t.Errorf("new job reused recovered ID %s", j.ID)
	}
	s2.cancelJob(j3)
}
