package server

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// FuzzJobSpecDecode hammers the submission decoder: whatever bytes arrive,
// it must never panic, and any spec it accepts must resolve only into
// configurations core.Config.Validate approves and the documented bounds
// allow — nothing the simulator would choke on can reach the job queue.
// Accepted specs must also survive a marshal/decode round trip to the same
// configurations (the persistence layer re-decodes spec.json on recovery).
func FuzzJobSpecDecode(f *testing.F) {
	f.Add(validSpecJSON)
	f.Add(`{"machines": [{"procs": 1, "level": "base", "l2": "1M", "assoc": 1}], "measure_txns": 10}`)
	f.Add(`{"machines": [{"procs": 8, "level": "l2mc", "l2": "8M", "assoc": 4, "cores": 2}], "warmup_txns": 3000, "measure_txns": 2000, "checkpoint_every": 500}`)
	f.Add(`{"machines": [{"procs": 4, "level": "full", "l2": "8M", "assoc": 4, "rac": "2M", "repl": true}], "measure_txns": 100, "workers": 4, "step_workers": 2}`)
	f.Add(`{"machines": [{"procs": 2, "level": "l2", "l2": "512K", "assoc": 2, "dram": true, "ooo": true}], "measure_txns": 5, "seed": 42, "quick": true}`)
	f.Add(`{"machines": [{"procs": 1, "level": "cons", "l2": "0.5M", "assoc": 1}], "measure_txns": 1, "checkpoint_every": 0}`)
	f.Add(`{"machines": [{"procs": 8, "level": "l2", "l2": "2M", "assoc": 8}], "measure_txns": 10, "scenario": {"name": "burst", "phases": [{"name": "calm", "txns": 100}, {"name": "spike", "txns": 50, "ramp_txns": 10, "mix": {"update": 1, "read": 3}, "skew": 0.9}]}}`)
	f.Add(`{"machines": [{"procs": 1, "level": "base", "l2": "8M", "assoc": 1}], "measure_txns": 10, "scenario": {"phases": [{"txns": 0}]}}`)
	f.Add(`{"machines": []}`)
	f.Add(`{"measure_txns": 18446744073709551615}`)
	f.Add(`[1,2,3]`)
	f.Add(`{"machines": [{"procs": -1, "level": "base", "l2": "-1M", "assoc": -1}], "measure_txns": 10}`)
	f.Fuzz(func(t *testing.T, body string) {
		spec, cfgs, err := DecodeJobSpec(strings.NewReader(body))
		if err != nil {
			return
		}
		if len(cfgs) == 0 || len(cfgs) > MaxMachines {
			t.Fatalf("accepted spec resolved %d configs outside (0,%d]", len(cfgs), MaxMachines)
		}
		if spec.MeasureTxns == 0 || spec.MeasureTxns > MaxTxns || spec.WarmupTxns > MaxTxns {
			t.Fatalf("accepted spec with out-of-bounds protocol: warmup=%d measure=%d", spec.WarmupTxns, spec.MeasureTxns)
		}
		if spec.Workers < 0 || spec.Workers > MaxWorkers || spec.StepWorkers < 0 || spec.StepWorkers > MaxWorkers {
			t.Fatalf("accepted spec with out-of-bounds workers: %d/%d", spec.Workers, spec.StepWorkers)
		}
		if spec.Scenario != nil {
			sched, err := spec.Scenario.Compile()
			if err != nil {
				t.Fatalf("accepted spec carries a scenario that does not compile: %v", err)
			}
			if sched.TotalTxns() == 0 || sched.TotalTxns() > MaxTxns {
				t.Fatalf("accepted spec scenario totals %d transactions", sched.TotalTxns())
			}
		}
		for i, cfg := range cfgs {
			if err := cfg.Validate(); err != nil {
				t.Fatalf("accepted spec resolved invalid config %d (%q): %v", i, cfg.Name, err)
			}
		}
		// Round trip through the persistence encoding: recovery decodes
		// spec.json and must land on the identical sweep.
		encoded, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("re-encoding accepted spec: %v", err)
		}
		spec2, cfgs2, err := DecodeJobSpec(bytes.NewReader(encoded))
		if err != nil {
			t.Fatalf("re-decoding persisted spec: %v", err)
		}
		if len(cfgs2) != len(cfgs) {
			t.Fatalf("round trip changed config count: %d != %d", len(cfgs2), len(cfgs))
		}
		for i := range cfgs {
			if cfgs[i].Name != cfgs2[i].Name {
				t.Fatalf("round trip changed config %d: %q != %q", i, cfgs[i].Name, cfgs2[i].Name)
			}
		}
		if (spec.CheckpointEvery == nil) != (spec2.CheckpointEvery == nil) {
			t.Fatal("round trip changed checkpoint_every explicitness")
		}
	})
}
