package server

import (
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"oltpsim/internal/core"
)

// Config configures a Server. The zero value is not usable: Now is
// mandatory (the package never reads the wall clock itself; cmd/oltpserver
// injects time.Now, tests inject fakes).
type Config struct {
	// DataDir is the persistence root. Job specs, states, results, and
	// checkpoints live under DataDir/jobs; a server restarted on the same
	// directory recovers every job and resumes the interrupted ones.
	DataDir string
	// Workers is the job worker-pool size; 0 means 1.
	Workers int
	// QueueDepth bounds the jobs admitted but not yet terminal (queued plus
	// running). Submissions beyond it get 429 with a Retry-After header.
	// 0 means 16.
	QueueDepth int
	// CheckpointEvery is the default checkpoint quantum in committed
	// transactions for jobs that do not set checkpoint_every themselves.
	// 0 means 500.
	CheckpointEvery uint64
	// RetryAfterSeconds is the Retry-After value advertised on 429
	// responses. 0 means 1.
	RetryAfterSeconds int
	// Now supplies the wall clock (job timing metrics only — never
	// simulation inputs). Required.
	Now func() time.Time
	// Logf, when non-nil, receives one line per job lifecycle transition.
	Logf func(format string, args ...any)
	// OnCheckpoint, when non-nil, is called synchronously on the worker
	// goroutine after checkpoint seq (1-based, per configuration) of the
	// given job and configuration is durable. The lifecycle tests use it to
	// stop the server at an exact checkpoint boundary; production leaves it
	// nil.
	OnCheckpoint func(jobID string, config, seq int)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 500
	}
	if c.RetryAfterSeconds <= 0 {
		c.RetryAfterSeconds = 1
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Server is the oltpsim job server: a bounded queue of simulation sweeps,
// a worker pool executing them with periodic checkpoints, and an
// http.Handler exposing the REST/SSE/metrics surface. Create with New,
// start the workers with Start, stop with Close (graceful) or Kill
// (abandon, simulating a crash).
type Server struct {
	cfg Config
	st  *store
	mux *http.ServeMux

	mu   sync.Mutex
	cond *sync.Cond
	// jobs holds every known job; order is their submission order (the only
	// iteration order used anywhere — the map itself is never ranged into
	// output).
	jobs  map[string]*Job
	order []string
	// pending is the run queue (job IDs, FIFO); reserved counts submissions
	// between capacity admission and queue insertion, so a burst cannot
	// overshoot QueueDepth while specs are being persisted.
	pending  []string
	reserved int
	// busy counts workers currently executing a job.
	busy int
	// seq is the last assigned job sequence number.
	seq     uint64
	started bool
	closing bool
	killed  bool

	// Monotonic counters for /metrics.
	jobsAccepted       uint64
	jobsRecovered      uint64
	jobsResumed        uint64
	jobsCompleted      uint64
	jobsFailed         uint64
	jobsCancelled      uint64
	jobsRejected       uint64
	checkpointsWritten uint64

	wg sync.WaitGroup
}

// New builds a Server over cfg.DataDir, recovering every persisted job:
// terminal jobs become queryable history, non-terminal jobs re-enter the
// run queue (in original submission order) carrying their latest checkpoint
// so Start resumes them where the previous process stopped.
func New(cfg Config) (*Server, error) {
	if cfg.Now == nil {
		return nil, errors.New("server: Config.Now is required")
	}
	cfg = cfg.withDefaults()
	st, err := newStore(cfg.DataDir)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:  cfg,
		st:   st,
		jobs: make(map[string]*Job),
	}
	s.cond = sync.NewCond(&s.mu)
	jobs, maxSeq, err := st.recoverJobs()
	if err != nil {
		return nil, err
	}
	s.seq = maxSeq
	for _, j := range jobs {
		s.jobs[j.ID] = j
		s.order = append(s.order, j.ID)
		s.jobsRecovered++
		if !j.state.Terminal() {
			// Interrupted mid-run or never started: back in the queue. The
			// in-memory state returns to queued; the persisted state stays
			// whatever it was (another crash before the worker picks it up
			// recovers identically).
			j.state = StateQueued
			s.pending = append(s.pending, j.ID)
			s.cfg.Logf("recovered %s: re-queued with %d/%d configurations done (resume checkpoint: %v)",
				j.ID, len(j.results), len(j.cfgs), j.resume != nil)
		}
	}
	s.mux = s.routes()
	return s, nil
}

// ServeHTTP exposes the REST API, SSE streams, health, and metrics.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Close stops the server gracefully: no new submissions are admitted,
// workers preempt their jobs at the next checkpoint boundary (leaving them
// resumable on disk), and Close returns once every worker has exited. Live
// SSE streams are terminated. Safe to call more than once, and after Kill.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closing = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
	for _, j := range s.jobList() {
		j.closeSubs()
	}
	return nil
}

// Kill makes the server abandon everything as fast as it can without
// touching the disk again — the deterministic stand-in for SIGKILL the
// resume tests are built on. It does not wait for workers (call Close
// afterwards to join them; Kill may be called from inside OnCheckpoint,
// where waiting would deadlock). Whatever the store holds at the moment of
// the kill is exactly what a new Server on the same DataDir recovers.
func (s *Server) Kill() {
	s.mu.Lock()
	s.killed = true
	s.closing = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// closeSubs tears down a job's live SSE subscribers without publishing an
// event (used on server close; terminal events close subscribers in
// publish).
func (j *Job) closeSubs() {
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, sub := range j.subs {
		close(sub.ch)
	}
	j.subs = nil
}

// stopping reports whether the server is shutting down (gracefully or
// killed).
func (s *Server) stopping() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closing
}

// isKilled reports whether Kill was called.
func (s *Server) isKilled() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.killed
}

// jobByID looks a job up.
func (s *Server) jobByID(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// jobList snapshots every job pointer in submission order. Pointers are
// resolved while s.mu is held — indexing the jobs map after unlocking would
// race with submit()'s inserts.
func (s *Server) jobList() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, len(s.order))
	for i, id := range s.order {
		out[i] = s.jobs[id]
	}
	return out
}

// statuses snapshots every job's status in submission order.
func (s *Server) statuses() []Status {
	list := s.jobList()
	out := make([]Status, len(list))
	for i, j := range list {
		out[i] = j.status()
	}
	return out
}

// errQueueFull is returned by submit when the queue is at capacity.
var errQueueFull = errors.New("server: job queue is full")

// errClosing is returned by submit when the server is shutting down.
var errClosing = errors.New("server: shutting down")

// submit admits one decoded job: reserve a queue slot under the lock,
// persist the spec outside it, then insert and wake a worker. The
// reservation keeps concurrent submissions from overshooting QueueDepth
// during the persistence window, and the persist-before-insert order means
// a job a client ever saw accepted is durable.
func (s *Server) submit(spec JobSpec, cfgs []core.Config) (*Job, error) {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return nil, errClosing
	}
	active := len(s.pending) + s.busy + s.reserved
	if active >= s.cfg.QueueDepth {
		s.jobsRejected++
		s.mu.Unlock()
		return nil, errQueueFull
	}
	s.reserved++
	s.seq++
	id := fmt.Sprintf("job-%06d", s.seq)
	s.mu.Unlock()

	if err := s.st.createJob(id, spec); err != nil {
		s.mu.Lock()
		s.reserved--
		s.mu.Unlock()
		return nil, fmt.Errorf("server: persisting job: %w", err)
	}

	j := &Job{ID: id, Spec: spec, cfgs: cfgs, state: StateQueued}
	s.mu.Lock()
	s.reserved--
	if s.closing {
		// Close slipped in during the persistence window: the workers are
		// gone (or going), so enqueueing would strand the job until a
		// restart. Reject it and roll the persisted spec back — the client
		// is told "shutting down", so nothing may survive to recovery.
		// After a Kill the disk must stay untouched; the spec stays, and
		// recovery runs the job exactly as it would after a real crash
		// that cut the 202 off in flight.
		killed := s.killed
		s.mu.Unlock()
		if !killed {
			if err := s.st.removeJob(id); err != nil {
				s.cfg.Logf("removing spec of rejected %s: %v", id, err)
			}
		}
		return nil, errClosing
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.pending = append(s.pending, id)
	s.jobsAccepted++
	s.cond.Signal()
	s.mu.Unlock()
	j.publish(j.event("queued", -1))
	s.cfg.Logf("accepted %s (%d configurations, name %q)", id, len(cfgs), spec.Name)
	return j, nil
}

// cancelJob requests cancellation. Queued jobs cancel immediately; running
// checkpointed jobs stop at their next quantum boundary; terminal jobs
// return false.
func (s *Server) cancelJob(j *Job) bool {
	s.mu.Lock()
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		s.mu.Unlock()
		return false
	}
	j.cancel = true
	queued := j.state == StateQueued
	if queued {
		for i, id := range s.pending {
			if id == j.ID {
				s.pending = append(s.pending[:i], s.pending[i+1:]...)
				break
			}
		}
		j.state = StateCancelled
		s.jobsCancelled++
	}
	ps := persistedStateLocked(j)
	j.mu.Unlock()
	s.mu.Unlock()
	// Persist the cancel (and, for queued jobs, the terminal state) so a
	// restart honors it.
	if err := s.st.writeState(j.ID, ps); err != nil {
		s.cfg.Logf("persisting cancel of %s: %v", j.ID, err)
	}
	if queued {
		j.publish(j.event(string(StateCancelled), -1))
		s.cfg.Logf("cancelled %s while queued", j.ID)
	}
	return true
}

// persistedStateLocked snapshots a job's durable state. Caller holds j.mu.
func persistedStateLocked(j *Job) persistedState {
	return persistedState{
		State:       j.state,
		Error:       j.err,
		Config:      len(j.results),
		Checkpoints: j.checkpoints,
		Cancel:      j.cancel && !j.state.Terminal(),
	}
}
