// Package server implements the oltpsim job server: a bounded queue of
// simulation sweeps submitted over a REST/JSON API, executed by a worker
// pool on top of internal/experiments, checkpointed to disk so a killed
// server resumes in-flight jobs bit-identically on restart, and observable
// through Server-Sent Events and a Prometheus text exposition.
//
// The package is deliberately free of ambient inputs: the wall clock is
// injected through Config.Now, randomness is never used (job IDs are
// sequential), and every simulation a job runs remains a pure function of
// (config, seed) — which is what makes "resume equals uninterrupted"
// provable rather than aspirational.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"oltpsim/internal/cli"
	"oltpsim/internal/core"
	"oltpsim/internal/scenario"
)

// Spec bounds. They are generous for real studies while keeping a hostile
// submission from parking the worker pool on one absurd job or allocating
// caches the machine model was never sized for.
const (
	// MaxSpecBytes bounds the JSON body of one job submission.
	MaxSpecBytes = 1 << 20
	// MaxMachines bounds the configurations in one sweep.
	MaxMachines = 64
	// MaxTxns bounds warmup and measured transactions per configuration.
	MaxTxns = 10_000_000
	// MaxWorkers bounds the per-job RunMany fan-out and the sharded
	// stepping workers.
	MaxWorkers = 256
	// MaxNameLen bounds the display name.
	MaxNameLen = 200
	// maxCacheBytes bounds any single simulated cache array (L2 or RAC).
	maxCacheBytes = int64(1) << 30
)

// JobSpec is the wire format of one job: a sweep of machine configurations
// under a shared measurement protocol. Machine entries use the same
// vocabulary as the oltpsim CLI flags (internal/cli.MachineSpec).
type JobSpec struct {
	// Name labels the job in listings; optional.
	Name string `json:"name,omitempty"`
	// Machines are the sweep's configurations, one bar each, run in order.
	Machines []cli.MachineSpec `json:"machines"`
	// WarmupTxns and MeasureTxns set the protocol (experiments.Options).
	WarmupTxns  uint64 `json:"warmup_txns"`
	MeasureTxns uint64 `json:"measure_txns"`
	// Seed varies the workload; 0 is the paper's default seed.
	Seed uint64 `json:"seed,omitempty"`
	// Quick selects the scaled-down database.
	Quick bool `json:"quick,omitempty"`
	// Workers fans the sweep across a per-job RunMany pool. Only honored on
	// the checkpoint-free path (CheckpointEvery pointing at 0); checkpointed
	// jobs run their configurations serially so exactly one machine state is
	// in flight per job. 0 means serial.
	Workers int `json:"workers,omitempty"`
	// StepWorkers enables epoch-sharded stepping inside each simulation
	// (bit-identical to serial; see experiments.Options.StepWorkers).
	StepWorkers int `json:"step_workers,omitempty"`
	// CheckpointEvery is the checkpoint quantum in committed transactions.
	// Absent (null) means the server's configured default; an explicit 0
	// disables checkpointing for this job, which makes it run through
	// experiments.RunMany but also makes it non-resumable and cancellable
	// only while queued.
	CheckpointEvery *uint64 `json:"checkpoint_every,omitempty"`
	// Scenario, when present, runs every configuration under a time-varying
	// workload profile (internal/scenario) instead of the fixed mix: the
	// measured length becomes the schedule's total and measure_txns is
	// ignored. Results remain whole-run totals — identical to the last
	// cumulative collection of a phased run — so the result wire format is
	// unchanged; per-phase timelines are the oltpsim -scenario CLI's job.
	Scenario *scenario.Profile `json:"scenario,omitempty"`
}

// DecodeJobSpec reads, strictly decodes, and bounds-checks one job spec,
// and resolves every machine entry into a validated core.Config. Any spec
// it accepts builds configurations that core.Config.Validate approves —
// nothing the simulator would panic on reaches the queue (fuzzed by
// FuzzJobSpecDecode).
func DecodeJobSpec(r io.Reader) (JobSpec, []core.Config, error) {
	var spec JobSpec
	lim := io.LimitReader(r, MaxSpecBytes+1)
	dec := json.NewDecoder(lim)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return JobSpec{}, nil, fmt.Errorf("decoding job spec: %w", err)
	}
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return JobSpec{}, nil, errors.New("decoding job spec: trailing data after JSON object")
	}
	cfgs, err := spec.Configs()
	if err != nil {
		return JobSpec{}, nil, err
	}
	return spec, cfgs, nil
}

// Configs validates the spec's bounds and resolves its machines.
func (s *JobSpec) Configs() ([]core.Config, error) {
	if len(s.Name) > MaxNameLen {
		return nil, fmt.Errorf("job spec: name longer than %d bytes", MaxNameLen)
	}
	if len(s.Machines) == 0 {
		return nil, errors.New("job spec: no machines")
	}
	if len(s.Machines) > MaxMachines {
		return nil, fmt.Errorf("job spec: %d machines exceeds the limit of %d", len(s.Machines), MaxMachines)
	}
	if s.MeasureTxns == 0 {
		return nil, errors.New("job spec: measure_txns must be >= 1")
	}
	if s.MeasureTxns > MaxTxns || s.WarmupTxns > MaxTxns {
		return nil, fmt.Errorf("job spec: transaction counts exceed the limit of %d", uint64(MaxTxns))
	}
	if s.Workers < 0 || s.Workers > MaxWorkers {
		return nil, fmt.Errorf("job spec: workers out of range [0,%d]", MaxWorkers)
	}
	if s.StepWorkers < 0 || s.StepWorkers > MaxWorkers {
		return nil, fmt.Errorf("job spec: step_workers out of range [0,%d]", MaxWorkers)
	}
	if s.CheckpointEvery != nil && *s.CheckpointEvery > MaxTxns {
		return nil, fmt.Errorf("job spec: checkpoint_every exceeds the limit of %d", uint64(MaxTxns))
	}
	if s.Scenario != nil {
		sched, err := s.Scenario.Compile()
		if err != nil {
			return nil, fmt.Errorf("job spec: scenario: %w", err)
		}
		if sched.TotalTxns() > MaxTxns {
			return nil, fmt.Errorf("job spec: scenario totals %d transactions, limit is %d", sched.TotalTxns(), uint64(MaxTxns))
		}
	}
	cfgs := make([]core.Config, len(s.Machines))
	for i, m := range s.Machines {
		cfg, err := cli.Build(m)
		if err != nil {
			return nil, fmt.Errorf("job spec: machine %d: %w", i, err)
		}
		if cfg.L2SizeBytes <= 0 || cfg.L2SizeBytes > maxCacheBytes {
			return nil, fmt.Errorf("job spec: machine %d: L2 size out of range", i)
		}
		if cfg.RAC != nil && (cfg.RAC.SizeBytes <= 0 || cfg.RAC.SizeBytes > maxCacheBytes) {
			return nil, fmt.Errorf("job spec: machine %d: RAC size out of range", i)
		}
		cfgs[i] = cfg
	}
	return cfgs, nil
}
