package server

import (
	"errors"
	"time"

	"oltpsim/internal/experiments"
	"oltpsim/internal/sim"
	"oltpsim/internal/stats"
)

// This file is the package's only concurrency seam: Start's worker
// goroutines (approved in internal/lint.ApprovedGoroutineFiles). Workers
// pull job IDs off the FIFO run queue under the server mutex and execute
// one job at a time; the simulations they drive are pure functions of
// (config, seed), so worker scheduling can never change a result — only
// which wall-clock moment it lands on.

// Start launches the worker pool. Call once after New; jobs recovered from
// disk begin resuming immediately.
func (s *Server) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started || s.closing {
		return
	}
	s.started = true
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// worker executes queued jobs until the server shuts down.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j := s.nextJob()
		if j == nil {
			return
		}
		s.runJob(j)
		s.mu.Lock()
		s.busy--
		s.mu.Unlock()
	}
}

// nextJob blocks until a job is available or the server is stopping.
func (s *Server) nextJob() *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closing {
			return nil
		}
		if len(s.pending) > 0 {
			id := s.pending[0]
			s.pending = s.pending[1:]
			s.busy++
			return s.jobs[id]
		}
		s.cond.Wait()
	}
}

// options builds the measurement protocol for one job.
func (j *Job) options() experiments.Options {
	o := experiments.Options{
		WarmupTxns:  j.Spec.WarmupTxns,
		MeasureTxns: j.Spec.MeasureTxns,
		Seed:        j.Spec.Seed,
		Quick:       j.Spec.Quick,
		StepWorkers: j.Spec.StepWorkers,
		Zeta:        sim.NewZetaCache(),
	}
	// The spec was validated at submission (and again at restore), so a
	// present scenario always compiles.
	if sp := j.Spec.Scenario; sp != nil {
		o.Scenario = sp.MustCompile()
	}
	return o
}

// quantum resolves the job's checkpoint quantum: its own checkpoint_every
// if present, the server default otherwise.
func (s *Server) quantum(j *Job) uint64 {
	if j.Spec.CheckpointEvery != nil {
		return *j.Spec.CheckpointEvery
	}
	return s.cfg.CheckpointEvery
}

// runJob executes one job to a terminal state — or to a preemption point
// when the server is stopping. All persistence happens here (and in the
// checkpoint Write hook), on the worker goroutine, so per-job disk state
// never sees concurrent writers.
func (s *Server) runJob(j *Job) {
	start := s.cfg.Now()

	j.mu.Lock()
	if j.state.Terminal() { // cancelled between dequeue and here
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	resume, resumeConfig := j.resume, j.resumeConfig
	j.resume = nil
	first := len(j.results)
	j.mu.Unlock()

	if err := s.st.writeState(j.ID, j.snapshotState()); err != nil {
		s.finishJob(j, StateFailed, "persisting state: "+err.Error())
		return
	}
	j.publish(j.event("started", -1))
	s.cfg.Logf("running %s from configuration %d/%d", j.ID, first, len(j.cfgs))

	o := j.options()
	every := s.quantum(j)
	if every == 0 {
		s.runJobSweep(j, o, start)
		return
	}

	for i := first; i < len(j.cfgs); i++ {
		j.startConfig(i, o.MeasuredTxns())
		j.publish(j.event("config", i))
		cr := experiments.CheckpointRun{
			Every:      every,
			Write:      s.checkpointWriter(j, i),
			Canceled:   func() bool { return s.stopping() || j.canceled() },
			OnProgress: s.progressReporter(j, i),
		}
		if i == resumeConfig && resume != nil {
			cr.Resume = resume
			resume = nil
			s.mu.Lock()
			s.jobsResumed++
			s.mu.Unlock()
			s.cfg.Logf("resuming %s configuration %d from checkpoint", j.ID, i)
		}
		res, steps, err := o.RunCheckpointed(j.cfgs[i], cr)
		end := s.cfg.Now()
		j.addWork(steps, end.Sub(start))
		start = end
		if err != nil {
			s.stopJob(j, i, err)
			return
		}
		if err := s.commitResult(j, i, res); err != nil {
			s.finishJob(j, StateFailed, "persisting result: "+err.Error())
			return
		}
		j.publish(j.event("result", i))
	}
	s.finishJob(j, StateDone, "")
}

// runJobSweep is the checkpoint-free path (checkpoint_every explicitly 0):
// the whole sweep goes through experiments.Options.RunMany, optionally
// fanned across the job's own worker count, with the Progress hook feeding
// the event stream. No checkpoints means no mid-sweep preemption — the job
// is cancellable only while queued, and a kill loses it entirely.
func (s *Server) runJobSweep(j *Job, o experiments.Options, start time.Time) {
	o.Workers = j.Spec.Workers
	if o.Workers == 0 {
		o.Workers = 1
	}
	o.Progress = func(done, total int) {
		j.setSweepProgress(done)
		j.publish(j.event("progress", -1))
	}
	results := o.RunMany(j.cfgs)
	j.addWork(0, s.cfg.Now().Sub(start))
	if s.isKilled() {
		return
	}
	j.mu.Lock()
	j.results = append(j.results[:0], results...)
	j.mu.Unlock()
	if err := s.st.writeResults(j.ID, results); err != nil {
		s.finishJob(j, StateFailed, "persisting results: "+err.Error())
		return
	}
	s.finishJob(j, StateDone, "")
}

// checkpointWriter persists one checkpoint for configuration i of job j and
// records it durably in the job state, then fires the OnCheckpoint hook.
// After a kill it refuses to touch the disk — the store must stay exactly
// as the "crash" left it.
func (s *Server) checkpointWriter(j *Job, i int) func([]byte) error {
	seq := 0
	return func(data []byte) error {
		if s.isKilled() {
			return errKilled
		}
		if err := s.st.writeCheckpoint(j.ID, data); err != nil {
			return err
		}
		seq++
		j.noteCheckpoint(i)
		s.mu.Lock()
		s.checkpointsWritten++
		s.mu.Unlock()
		if err := s.st.writeState(j.ID, j.snapshotState()); err != nil {
			return err
		}
		j.publish(j.event("checkpoint", i))
		if s.cfg.OnCheckpoint != nil {
			s.cfg.OnCheckpoint(j.ID, i, seq)
		}
		return nil
	}
}

// progressReporter feeds measurement progress into the job and its event
// stream. Throttled to quantum boundaries by RunCheckpointed itself.
func (s *Server) progressReporter(j *Job, i int) func(measured, target uint64) {
	return func(measured, target uint64) {
		j.setProgress(measured, target)
		j.publish(j.event("progress", i))
	}
}

// errKilled aborts checkpoint writes after Kill.
var errKilled = errors.New("server: killed")

// stopJob handles a RunCheckpointed error for configuration i: cancellation
// (user, close, or kill) or a persistence failure.
func (s *Server) stopJob(j *Job, i int, err error) {
	switch {
	case errors.Is(err, experiments.ErrCanceled) || errors.Is(err, errKilled):
		if s.isKilled() {
			// Simulated crash: no disk writes, no events. Recovery replays
			// from whatever the store holds.
			return
		}
		if j.canceled() {
			s.finishJob(j, StateCancelled, "")
			return
		}
		// Graceful close: leave the persisted running/checkpointed state in
		// place; New on the same DataDir re-queues and resumes this job.
		s.cfg.Logf("preempted %s at configuration %d for shutdown", j.ID, i)
	default:
		s.finishJob(j, StateFailed, err.Error())
	}
}

// commitResult makes configuration i's result durable and advances the
// job: results first, then the now-stale checkpoint's removal, then the
// state pointing past i — so a crash between any two steps recovers without
// losing a completed configuration or resuming from config i's checkpoint.
// A crash before the removal leaves state.Config == i != len(results), so
// readJob's guard discards the stale checkpoint; a crash after it leaves no
// checkpoint at all, and recovery starts config i+1 fresh (results, not
// state.Config, decide where runJob resumes).
func (s *Server) commitResult(j *Job, i int, res stats.RunResult) error {
	j.mu.Lock()
	j.results = append(j.results, res)
	results := append([]stats.RunResult(nil), j.results...)
	j.mu.Unlock()
	if err := s.st.writeResults(j.ID, results); err != nil {
		return err
	}
	if err := s.st.removeCheckpoint(j.ID); err != nil {
		return err
	}
	return s.st.writeState(j.ID, j.snapshotState())
}

// finishJob drives a job to a terminal state, persists it, updates the
// server counters, and publishes the terminal event.
func (s *Server) finishJob(j *Job, state State, errMsg string) {
	j.mu.Lock()
	j.state = state
	j.err = errMsg
	j.mu.Unlock()
	s.mu.Lock()
	switch state {
	case StateDone:
		s.jobsCompleted++
	case StateFailed:
		s.jobsFailed++
	case StateCancelled:
		s.jobsCancelled++
	}
	s.mu.Unlock()
	if err := s.st.writeState(j.ID, j.snapshotState()); err != nil {
		s.cfg.Logf("persisting terminal state of %s: %v", j.ID, err)
	}
	if state == StateDone {
		if err := s.st.removeCheckpoint(j.ID); err != nil {
			s.cfg.Logf("removing checkpoint of %s: %v", j.ID, err)
		}
	}
	j.publish(j.event(string(state), -1))
	s.cfg.Logf("%s %s%s", j.ID, state, errSuffix(errMsg))
}

func errSuffix(msg string) string {
	if msg == "" {
		return ""
	}
	return ": " + msg
}
