package server

import (
	"fmt"
	"strings"
	"testing"

	"oltpsim/internal/cli"
)

// validSpecJSON is a well-formed two-machine submission used across the
// decode tests.
const validSpecJSON = `{
	"name": "smoke",
	"machines": [
		{"procs": 1, "level": "base", "l2": "1M", "assoc": 1},
		{"procs": 2, "level": "full", "l2": "1M", "assoc": 2}
	],
	"warmup_txns": 60,
	"measure_txns": 120,
	"quick": true
}`

func TestDecodeJobSpecValid(t *testing.T) {
	spec, cfgs, err := DecodeJobSpec(strings.NewReader(validSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "smoke" || spec.WarmupTxns != 60 || spec.MeasureTxns != 120 || !spec.Quick {
		t.Errorf("decoded spec fields wrong: %+v", spec)
	}
	if len(cfgs) != 2 {
		t.Fatalf("resolved %d configs, want 2", len(cfgs))
	}
	// The wire format resolves through the same path as the CLI flags.
	want, err := cli.Build(cli.MachineSpec{Procs: 2, Level: "full", L2: "1M", Assoc: 2})
	if err != nil {
		t.Fatal(err)
	}
	if cfgs[1].Name != want.Name || cfgs[1].Processors != want.Processors {
		t.Errorf("machine 1 resolved to %q, want %q", cfgs[1].Name, want.Name)
	}
	for _, cfg := range cfgs {
		if err := cfg.Validate(); err != nil {
			t.Errorf("accepted spec produced invalid config %q: %v", cfg.Name, err)
		}
	}
}

func TestDecodeJobSpecRejects(t *testing.T) {
	machine := `{"procs": 1, "level": "base", "l2": "1M", "assoc": 1}`
	manyMachines := machine + strings.Repeat(","+machine, MaxMachines)
	cases := []struct {
		name, body string
	}{
		{"empty body", ``},
		{"not json", `procs=8`},
		{"unknown field", `{"machines": [` + machine + `], "measure_txns": 10, "bogus": 1}`},
		{"trailing data", `{"machines": [` + machine + `], "measure_txns": 10} extra`},
		{"second json value", `{"machines": [` + machine + `], "measure_txns": 10} {}`},
		{"no machines", `{"machines": [], "measure_txns": 10}`},
		{"machines absent", `{"measure_txns": 10}`},
		{"too many machines", `{"machines": [` + manyMachines + `], "measure_txns": 10}`},
		{"zero measure", `{"machines": [` + machine + `], "measure_txns": 0}`},
		{"measure too large", fmt.Sprintf(`{"machines": [%s], "measure_txns": %d}`, machine, uint64(MaxTxns)+1)},
		{"warmup too large", fmt.Sprintf(`{"machines": [%s], "measure_txns": 10, "warmup_txns": %d}`, machine, uint64(MaxTxns)+1)},
		{"negative workers", `{"machines": [` + machine + `], "measure_txns": 10, "workers": -1}`},
		{"huge workers", fmt.Sprintf(`{"machines": [%s], "measure_txns": 10, "workers": %d}`, machine, MaxWorkers+1)},
		{"huge step workers", fmt.Sprintf(`{"machines": [%s], "measure_txns": 10, "step_workers": %d}`, machine, MaxWorkers+1)},
		{"long name", `{"name": "` + strings.Repeat("x", MaxNameLen+1) + `", "machines": [` + machine + `], "measure_txns": 10}`},
		{"bad level", `{"machines": [{"procs": 1, "level": "warp", "l2": "1M", "assoc": 1}], "measure_txns": 10}`},
		{"bad size", `{"machines": [{"procs": 1, "level": "base", "l2": "zero", "assoc": 1}], "measure_txns": 10}`},
		{"zero procs", `{"machines": [{"procs": 0, "level": "base", "l2": "1M", "assoc": 1}], "measure_txns": 10}`},
		{"checkpoint quantum too large", fmt.Sprintf(`{"machines": [%s], "measure_txns": 10, "checkpoint_every": %d}`, machine, uint64(MaxTxns)+1)},
		{"oversized body", `{"name": "` + strings.Repeat("x", MaxSpecBytes) + `"}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := DecodeJobSpec(strings.NewReader(tc.body)); err == nil {
				t.Errorf("spec accepted, want rejection")
			}
		})
	}
}

// TestDecodeJobSpecCheckpointEvery pins the tri-state quantum: absent means
// nil (server default), explicit 0 survives as a non-nil zero (the
// checkpoint-free RunMany path), and a positive value passes through.
func TestDecodeJobSpecCheckpointEvery(t *testing.T) {
	machine := `{"procs": 1, "level": "base", "l2": "1M", "assoc": 1}`
	spec, _, err := DecodeJobSpec(strings.NewReader(`{"machines": [` + machine + `], "measure_txns": 10}`))
	if err != nil {
		t.Fatal(err)
	}
	if spec.CheckpointEvery != nil {
		t.Errorf("absent checkpoint_every decoded non-nil: %v", *spec.CheckpointEvery)
	}
	spec, _, err = DecodeJobSpec(strings.NewReader(`{"machines": [` + machine + `], "measure_txns": 10, "checkpoint_every": 0}`))
	if err != nil {
		t.Fatal(err)
	}
	if spec.CheckpointEvery == nil || *spec.CheckpointEvery != 0 {
		t.Errorf("explicit checkpoint_every 0 lost its explicitness: %v", spec.CheckpointEvery)
	}
	spec, _, err = DecodeJobSpec(strings.NewReader(`{"machines": [` + machine + `], "measure_txns": 10, "checkpoint_every": 75}`))
	if err != nil {
		t.Fatal(err)
	}
	if spec.CheckpointEvery == nil || *spec.CheckpointEvery != 75 {
		t.Errorf("checkpoint_every 75 decoded as %v", spec.CheckpointEvery)
	}
}
