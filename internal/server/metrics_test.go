package server

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// fabricatedServer builds a server with hand-placed state: two terminal
// jobs with known step/wall accounting, one queued, one running — no
// simulations, no goroutines, so the exposition is exactly reproducible.
func fabricatedServer(t *testing.T) *Server {
	t.Helper()
	cfg := testServerConfig(t.TempDir())
	cfg.Workers = 2
	cfg.QueueDepth = 4
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	add := func(j *Job) {
		s.jobs[j.ID] = j
		s.order = append(s.order, j.ID)
	}
	add(&Job{ID: "job-000001", state: StateDone, steps: 4000, wall: 10 * time.Millisecond})
	add(&Job{ID: "job-000002", state: StateCancelled})
	add(&Job{ID: "job-000003", state: StateCheckpointed, steps: 1000, wall: 1500 * time.Microsecond})
	add(&Job{ID: "job-000004", state: StateQueued})
	s.pending = []string{"job-000004"}
	s.busy = 1
	s.seq = 4
	s.jobsAccepted = 4
	s.jobsCompleted = 1
	s.jobsCancelled = 1
	s.jobsRejected = 2
	s.checkpointsWritten = 7
	return s
}

// metricsGolden is the pinned /metrics exposition of the fabricated
// server. This is a format contract: any change to series names, help
// strings, label shapes, or ordering is a breaking change for scrapers and
// must show up as a diff here.
const metricsGolden = `# HELP oltpserver_jobs_accepted_total Jobs admitted to the queue.
# TYPE oltpserver_jobs_accepted_total counter
oltpserver_jobs_accepted_total 4
# HELP oltpserver_jobs_recovered_total Jobs recovered from the data directory at startup.
# TYPE oltpserver_jobs_recovered_total counter
oltpserver_jobs_recovered_total 0
# HELP oltpserver_jobs_resumed_total Configurations resumed from a recovered checkpoint.
# TYPE oltpserver_jobs_resumed_total counter
oltpserver_jobs_resumed_total 0
# HELP oltpserver_jobs_completed_total Jobs that reached the done state.
# TYPE oltpserver_jobs_completed_total counter
oltpserver_jobs_completed_total 1
# HELP oltpserver_jobs_failed_total Jobs that reached the failed state.
# TYPE oltpserver_jobs_failed_total counter
oltpserver_jobs_failed_total 0
# HELP oltpserver_jobs_cancelled_total Jobs that reached the cancelled state.
# TYPE oltpserver_jobs_cancelled_total counter
oltpserver_jobs_cancelled_total 1
# HELP oltpserver_jobs_rejected_total Submissions rejected because the queue was full.
# TYPE oltpserver_jobs_rejected_total counter
oltpserver_jobs_rejected_total 2
# HELP oltpserver_checkpoints_written_total Checkpoints made durable across all jobs.
# TYPE oltpserver_checkpoints_written_total counter
oltpserver_checkpoints_written_total 7
# HELP oltpserver_jobs Jobs currently known, by lifecycle state.
# TYPE oltpserver_jobs gauge
oltpserver_jobs{state="queued"} 1
oltpserver_jobs{state="running"} 0
oltpserver_jobs{state="checkpointed"} 1
oltpserver_jobs{state="done"} 1
oltpserver_jobs{state="failed"} 0
oltpserver_jobs{state="cancelled"} 1
# HELP oltpserver_queue_depth Jobs admitted but not yet terminal.
# TYPE oltpserver_queue_depth gauge
oltpserver_queue_depth 2
# HELP oltpserver_queue_capacity Admission limit on concurrent jobs.
# TYPE oltpserver_queue_capacity gauge
oltpserver_queue_capacity 4
# HELP oltpserver_workers Configured worker-pool size.
# TYPE oltpserver_workers gauge
oltpserver_workers 2
# HELP oltpserver_workers_busy Workers currently executing a job.
# TYPE oltpserver_workers_busy gauge
oltpserver_workers_busy 1
# HELP oltpserver_job_ns_per_ref Wall-clock nanoseconds per simulator step, per job.
# TYPE oltpserver_job_ns_per_ref gauge
oltpserver_job_ns_per_ref{job="job-000001"} 2500.000
oltpserver_job_ns_per_ref{job="job-000003"} 1500.000
`

// TestMetricsGolden pins the full exposition byte-for-byte.
func TestMetricsGolden(t *testing.T) {
	s := fabricatedServer(t)
	got := s.renderMetrics()
	if got != metricsGolden {
		t.Errorf("metrics exposition drifted from the golden format.\n--- got ---\n%s\n--- want ---\n%s", got, metricsGolden)
		gotLines, wantLines := strings.Split(got, "\n"), strings.Split(metricsGolden, "\n")
		for i := 0; i < len(gotLines) && i < len(wantLines); i++ {
			if gotLines[i] != wantLines[i] {
				t.Errorf("first divergence at line %d:\n got: %q\nwant: %q", i+1, gotLines[i], wantLines[i])
				break
			}
		}
	}
	// Two scrapes of unchanged state are byte-identical (no map-order or
	// wall-clock leakage into the exposition).
	if again := s.renderMetrics(); again != got {
		t.Error("second scrape differs from the first with unchanged state")
	}
}

// TestMetricsEndpoint checks the HTTP shape: the Prometheus text content
// type and the same body renderMetrics produces.
func TestMetricsEndpoint(t *testing.T) {
	s := fabricatedServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != metricsGolden {
		t.Error("HTTP exposition differs from renderMetrics golden")
	}
}
