// Package allow is an oltpvet fixture for the suppression convention. The
// expectations are asserted by hand in lint_test.go because the bare-allow
// case reports on the comment's own line, where a want comment cannot sit.
package allow

import "time"

func inline() int64 {
	return time.Now().UnixNano() //oltpvet:allow fixture demonstrates the escape hatch
}

func standalone() int64 {
	//oltpvet:allow a standalone comment suppresses the next line
	return time.Now().UnixNano()
}

//oltpvet:allow
func bare() int64 {
	return time.Now().UnixNano()
}

func groupedMid() int64 {
	// The justification below runs past the marker; the suppression anchors
	//oltpvet:allow a marker inside a comment group covers the group's next line
	// on the line after the whole group, not the line after the marker.
	return time.Now().UnixNano()
}

func detached() int64 {
	//oltpvet:allow a blank line ends the group, so this reaches nothing

	return time.Now().UnixNano()
}
