// Package counterowner is an oltpvet fixture: counter mutation outside the
// owning package's Count*/Add* accumulators.
package counterowner

import "oltpsim/internal/lint/testdata/counterowner/counters"

type node struct {
	miss counters.MissTable
}

func tamper(n *node, res *counters.RunResult) {
	n.miss.I[0]++        // want "MissTable.I"
	n.miss.RACHitsI += 2 // want "MissTable.RACHitsI"
	res.Txns++           // want "RunResult.Txns"
	res.Stores += 5      // want "RunResult.Stores"
}

func legal(n *node, res *counters.RunResult) {
	n.miss.Count(true, 0)
	res.AddNode(&n.miss, 1)
	// Plain assignment is result assembly (copying a total), not
	// accumulation.
	res.Txns = 100
	res.Name = "ok"
	// Derived, non-counter fields are not owned.
	res.Rate = 0.5
	res.Rate += 0.1
	// Whole-struct zeroing re-initializes the containing field.
	n.miss = counters.MissTable{}
}
