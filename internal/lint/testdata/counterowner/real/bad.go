// Package real proves the production analyzer configuration catches writes
// to the actual stats types, not just the fixture stand-ins.
package real

import "oltpsim/internal/stats"

func tamper(m *stats.MissTable, r *stats.RunResult) {
	m.RACHitsI++ // want "MissTable.RACHitsI"
	r.Txns += 1  // want "RunResult.Txns"
}
