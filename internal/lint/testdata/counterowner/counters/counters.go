// Package counters is the fixture stand-in for internal/stats: the
// counterowner test points the analyzer's owner-package parameter here, so
// the fixture can probe both sides of the ownership boundary without
// touching the real stats package.
package counters

// MissTable mirrors the shape of stats.MissTable.
type MissTable struct {
	I        [4]uint64
	D        [4]uint64
	RACHitsI uint64
}

// RunResult mirrors the counter/derived split of stats.RunResult.
type RunResult struct {
	Txns   uint64
	Stores uint64
	Name   string
	Rate   float64
}

// Count records one miss.
func (m *MissTable) Count(instruction bool, cat int) {
	if instruction {
		m.I[cat]++
	} else {
		m.D[cat]++
	}
}

// Add accumulates o into m.
func (m *MissTable) Add(o *MissTable) {
	for i := range m.I {
		m.I[i] += o.I[i]
		m.D[i] += o.D[i]
	}
	m.RACHitsI += o.RACHitsI
}

// AddNode accumulates one node's counters.
func (r *RunResult) AddNode(m *MissTable, stores uint64) {
	r.Stores += stores
}

// reset lives in the owning package but is not a Count*/Add* accumulator,
// so its counter writes are still flagged: ownership is per-method, not
// per-package.
func (m *MissTable) reset() {
	m.I[0] = 0   // want "MissTable.I"
	m.RACHitsI-- // want "MissTable.RACHitsI"
}
