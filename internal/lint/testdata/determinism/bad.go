// Package determinism is an oltpvet fixture: each flagged line carries a
// `// want "substring"` comment naming the expected diagnostic.
package determinism

import (
	"math/rand" // want "non-deterministic import"
	"os"
	"time"
)

// mutated is written from run-time code below, which breaks determinism.
var mutated int

// table is only written during init: a lookup table computed once during
// initialization is deterministic and legal.
var table map[string]int

func init() {
	table = map[string]int{"a": 1}
}

func wallClock() int64 {
	return time.Now().UnixNano() // want "time.Now"
}

func sinceStart(t0 time.Time) time.Duration {
	return time.Since(t0) // want "time.Since"
}

func sleepy() {
	time.Sleep(time.Millisecond) // want "time.Sleep"
}

func fromEnv() string {
	return os.Getenv("OLTPSIM_SEED") // want "os.Getenv"
}

func draw() int {
	return rand.Int()
}

func bump() {
	mutated++ // want "package-level var mutated"
}

func set(v int) {
	mutated = v // want "package-level var mutated"
}

func readOnly() int {
	return table["a"] + mutated
}
