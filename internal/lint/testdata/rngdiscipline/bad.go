// Package rngdiscipline is an oltpvet fixture for the modulo-bias and
// constant-seed rules; it exercises the real sim.RNG type. The
// `r.Uint64() % n` cases are the exact bug class PR 1 fixed.
package rngdiscipline

import "oltpsim/internal/sim"

func biased64(r *sim.RNG, n uint64) uint64 {
	return r.Uint64() % n // want "modulo-biased"
}

func biased32(r *sim.RNG, n uint32) uint32 {
	return r.Uint32() % n // want "modulo-biased"
}

func unbiased(r *sim.RNG, n uint64) uint64 {
	return r.Uint64n(n)
}

func unbiasedInt(r *sim.RNG, n int) int {
	return r.Intn(n)
}

func hardcodedSeed() *sim.RNG {
	return sim.NewRNG(42) // want "constant"
}

const defaultSeed = 1234

func hardcodedConstSeed() *sim.RNG {
	return sim.NewRNG(defaultSeed) // want "constant"
}

func threadedSeed(seed uint64) *sim.RNG {
	return sim.NewRNG(seed)
}

func forked(parent *sim.RNG) *sim.RNG {
	return parent.Fork()
}

// remOnBoundedDraw is legal: the draw is already debiased, and % here is
// plain arithmetic rather than range reduction of a raw stream.
func remOnBoundedDraw(r *sim.RNG) uint64 {
	return r.Uint64n(100) % 2
}
