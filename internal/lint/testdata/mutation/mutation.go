// Package mutation is the snapshotcomplete mutation test: a copy of the
// real cache.VictimBuffer snapshot pair (victim.go + snapshot.go) with one
// serialization deleted — the round-robin replacement cursor `next` is
// neither written by SaveState nor restored by LoadState. Resuming such a
// snapshot would silently restart replacement at slot 0 and diverge from
// the uninterrupted run; the analyzer must catch the omission.
package mutation

import (
	"fmt"

	"oltpsim/internal/snapshot"
)

// State mirrors cache.State for the copied logic.
type State uint8

// States in increasing privilege order, as in the cache package.
const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
)

// VictimBuffer is the copied type under mutation.
type VictimBuffer struct {
	entries []victimEntry
	next    int // want "VictimBuffer.next is mutated outside constructors but not referenced by SaveState or LoadState"

	Hits   uint64
	Probes uint64
}

type victimEntry struct {
	line  uint64
	state State
}

// NewVictimBuffer returns a buffer with n entries.
func NewVictimBuffer(n int) *VictimBuffer {
	return &VictimBuffer{entries: make([]victimEntry, n)}
}

// Put stages an evicted line, returning the entry it displaced.
func (v *VictimBuffer) Put(line uint64, st State) (displaced uint64, dstate State) {
	if st == Invalid {
		return 0, Invalid
	}
	if len(v.entries) == 0 {
		return line, st
	}
	displaced, dstate = v.entries[v.next].line, v.entries[v.next].state
	v.entries[v.next] = victimEntry{line: line, state: st}
	v.next = (v.next + 1) % len(v.entries)
	return displaced, dstate
}

// Take removes and returns the state of line if buffered.
func (v *VictimBuffer) Take(line uint64) (State, bool) {
	v.Probes++
	for i := range v.entries {
		if v.entries[i].state != Invalid && v.entries[i].line == line {
			st := v.entries[i].state
			v.entries[i].state = Invalid
			v.Hits++
			return st, true
		}
	}
	return Invalid, false
}

// SaveState is the mutated copy: the real pair writes the replacement
// cursor between the entries and the counters; here that line is deleted.
func (v *VictimBuffer) SaveState(e *snapshot.Encoder) {
	e.Int(len(v.entries))
	for _, ent := range v.entries {
		e.U64(ent.line)
		e.U8(uint8(ent.state))
	}
	e.U64(v.Hits)
	e.U64(v.Probes)
}

// LoadState is the mutated copy: the cursor restore is deleted alongside.
func (v *VictimBuffer) LoadState(d *snapshot.Decoder) error {
	n := d.Int()
	if d.Err() != nil {
		return d.Err()
	}
	if n != len(v.entries) {
		return fmt.Errorf("victim buffer: snapshot has %d entries, want %d", n, len(v.entries))
	}
	entries := make([]victimEntry, n)
	for i := range entries {
		entries[i] = victimEntry{line: d.U64(), state: State(d.U8())}
	}
	hits := d.U64()
	probes := d.U64()
	if err := d.Err(); err != nil {
		return err
	}
	if hits > probes {
		return fmt.Errorf("victim buffer: %d hits exceed %d probes", hits, probes)
	}
	copy(v.entries, entries)
	v.Hits = hits
	v.Probes = probes
	return nil
}
