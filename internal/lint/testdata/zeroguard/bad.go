// Package zeroguard is an oltpvet fixture: float64 ratios of counter fields
// and counter accessors must carry a dominating zero test.
package zeroguard

type counters struct {
	hits, probes uint64
}

func (c counters) total() uint64 { return c.hits + c.probes }

func unguardedField(c counters) float64 {
	return float64(c.hits) / float64(c.probes) // want "no dominating zero test"
}

func unguardedAccessor(c counters) float64 {
	return float64(c.hits) / float64(c.total()) // want "no dominating zero test"
}

func guardedEarlyReturn(c counters) float64 {
	if c.probes == 0 {
		return 0
	}
	return float64(c.hits) / float64(c.probes)
}

func guardedEnclosing(c counters) float64 {
	if c.total() > 0 {
		return float64(c.hits) / float64(c.total())
	}
	return 0
}

func guardedWrongExpr(c counters) float64 {
	if c.hits != 0 {
		return 0
	}
	return float64(c.hits) / float64(c.probes) // want "no dominating zero test"
}

// localsAreExempt: guarding a local denominator is visible at a glance, so
// the analyzer stays out of the way.
func localsAreExempt(c counters) float64 {
	d := c.probes
	return float64(c.hits) / float64(d)
}
