// Package hotpathalloc is the oltpvet fixture for the hot-path allocation
// analyzer. The test wires System.Step as the hot root; every helper Step
// calls demonstrates one flagged construct or one deliberately quiet idiom,
// and offline shows that the same constructs are free off the hot path.
package hotpathalloc

import (
	"fmt"
	"strings"
)

// point is a small struct used for the escape and boxing cases.
type point struct{ x, y int }

// System mirrors the production hot root shape.
type System struct {
	q     []int
	count uint64
}

// Step is the hot root: everything it reaches is on the allocation-free
// path.
func (s *System) Step(v int) {
	s.count++
	s.enqueue(v)
	s.format(v)
	s.build(v)
	s.fresh(v)
	s.bounded(v)
	s.escape(v)
	s.box(v)
	s.assignBox(v)
	s.literal(v)
	s.closure(v)
	s.guard(v)
	s.debug(v)
}

// enqueue grows long-lived state: amortized doubling, the allowed idiom.
func (s *System) enqueue(v int) {
	s.q = append(s.q, v)
}

// format calls fmt per step.
func (s *System) format(v int) string {
	return fmt.Sprintf("%d", v) // want "fmt.Sprintf formats and allocates in the hot path"
}

// build assembles a string per step.
func (s *System) build(v int) string {
	var b strings.Builder
	b.WriteByte(byte(v)) // want "strings.Builder.WriteByte builds strings on the heap"
	return b.String()    // want "strings.Builder.String builds strings on the heap"
}

// fresh appends to a slice born this call: the growth is never amortized.
func (s *System) fresh(v int) int {
	out := make([]int, 0)
	out = append(out, v) // want "append may grow its backing array each step"
	return len(out)
}

// bounded appends into an explicitly pre-sized buffer: the capacity states
// the bound, so the append cannot grow it.
func (s *System) bounded(v int) int {
	buf := make([]int, 0, 4)
	buf = append(buf, v)
	return len(buf)
}

// escape returns a pointer to a literal, forcing it to the heap.
func (s *System) escape(v int) *point {
	return &point{x: v} // want "point escapes to the heap"
}

func eat(v any) {}

// box passes a struct value into an interface parameter.
func (s *System) box(v int) {
	eat(point{x: v}) // want "boxes it on the heap"
}

// assignBox boxes through a plain assignment into an interface variable.
func (s *System) assignBox(v int) any {
	var sink any
	sink = v // want "boxes it on the heap"
	return sink
}

// literal allocates backing stores for slice and map literals per step.
func (s *System) literal(v int) {
	xs := []int{v}         // want "literal allocates its backing store"
	m := map[int]int{v: v} // want "literal allocates its backing store"
	_, _ = xs, m
}

// closure shows that a literal created on the hot path is itself hot.
func (s *System) closure(v int) int {
	f := func() string {
		return fmt.Sprint(v) // want "fmt.Sprint formats and allocates"
	}
	return len(f())
}

// guard shows the panic exemption: by the time the arguments evaluate, the
// run is already lost.
func (s *System) guard(v int) {
	if v < 0 {
		panic(fmt.Sprintf("negative step %d", v))
	}
}

// debug is diagnostic-only instrumentation, pruned from the hot set.
//
//oltpvet:coldpath fixture: excluded so its formatting stays legal
func (s *System) debug(v int) {
	fmt.Println("dbg", v)
}

// offline is never called from Step: allocation is free off the hot path.
func offline(n int) []int {
	out := []int{}
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}
