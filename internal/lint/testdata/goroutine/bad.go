// Package goroutine exercises the goroutine-discipline analyzer: a `go`
// statement in an unapproved file under internal/ is reported, while the
// identical statement in an approved concurrency seam (approved.go in this
// fixture) stays silent.
package goroutine

func spawnUnapproved(done chan struct{}) {
	go func() { close(done) }() // want "go statement outside the approved concurrency seams"
}

func spawnNested(jobs []int, done chan struct{}) {
	for range jobs {
		go worker(done) // want "go statement outside the approved concurrency seams"
	}
}

func worker(done chan struct{}) { <-done }
