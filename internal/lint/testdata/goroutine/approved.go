package goroutine

// spawnApproved starts a goroutine in a file on the analyzer's approved
// list, which must not be reported.
func spawnApproved(done chan struct{}) {
	go func() { close(done) }()
}
