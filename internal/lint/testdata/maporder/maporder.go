// Package maporder is the oltpvet fixture for the map-order analyzer: map
// ranges that leak iteration order into output fire, the laundering idioms
// (collect-then-sort, commutative folds) stay quiet, and functions outside
// the sink-flow scope are never inspected at all.
package maporder

import (
	"fmt"
	"sort"
)

// report prints per-key values straight out of the range: the canonical
// nondeterminism leak.
func report(m map[string]int) {
	for k, v := range m { // want "range over map m in a function whose results flow to stats, output, or serialization"
		fmt.Println(k, v)
	}
	fmt.Println(filter(m))
}

// reportSorted launders the order through the collect-then-sort idiom.
func reportSorted(m map[string]int) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k, m[k])
	}
}

// total folds commutatively: integer += cannot observe the order.
func total(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	fmt.Println(sum)
	return sum
}

// filter copies entries into another map keyed by the unique loop key,
// behind a call-free guard: still order-independent, still quiet. It is in
// scope because report (a sink feeder) calls it.
func filter(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		if v != 0 {
			out[k] = v
		}
	}
	return out
}

// leak never touches fmt itself, but printAll does and calls it, so its
// unsorted keys flow to output: the call-graph scoping must catch it.
func leak(m map[string]int) []string {
	var out []string
	for k := range m { // want "range over map m"
		out = append(out, k)
	}
	return out
}

func printAll(m map[string]int) {
	for _, k := range leak(m) {
		fmt.Println(k)
	}
}

// pure reaches no sink and no sink feeder calls it: out of scope, so even
// its order-sensitive range is legal.
func pure(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k+"!")
	}
	return out
}

// Enc is a stand-in encoder for the snapshot-pair sink case.
type Enc struct {
	keys []string
	vals []uint64
}

// Put records one entry.
func (e *Enc) Put(k string, v uint64) {
	e.keys = append(e.keys, k)
	e.vals = append(e.vals, v)
}

// Get replays one value.
func (e *Enc) Get() uint64 { return e.vals[0] }

// Table's save half ranges its map directly: snapshot pair methods are
// sinks through the snapshotcomplete fact, with no fmt anywhere near.
type Table struct {
	counts map[string]uint64
}

// Bump mutates the map.
func (t *Table) Bump(k string) { t.counts[k]++ }

// SaveState serializes in map order: a snapshot that differs run to run.
func (t *Table) SaveState(e *Enc) {
	for k, v := range t.counts { // want "range over map t.counts"
		e.Put(k, v)
	}
}

// LoadState restores the map.
func (t *Table) LoadState(e *Enc) {
	t.counts = make(map[string]uint64)
	t.counts[""] = e.Get()
}
