// Package snapshotcomplete is the oltpvet fixture for the snapshot-coverage
// analyzer: one type per rule, firing cases annotated with want comments and
// the legal variants beside them. The bare //oltpvet:derived marker on
// Bare.idx is additionally reported by the annotation scanner on its own
// line, which a want comment cannot sit on; program_test.go asserts it by
// hand.
package snapshotcomplete

import "io"

// Enc is a stand-in encoder: SaveState/LoadState pair by name, whatever the
// parameter shape, so the fixture needs no real serialization machinery.
type Enc struct {
	words []uint64
	r     int
}

// U64 records one word.
func (e *Enc) U64(v uint64) { e.words = append(e.words, v) }

// Next replays one word.
func (e *Enc) Next() uint64 {
	v := e.words[e.r]
	e.r++
	return v
}

// Machine exercises the core field rules: clock is covered through a
// same-package callee, missing is saved but never restored, memo is a
// legitimately derived index, stale carries an annotation the pair has
// outgrown, and cfg is constructor-only configuration.
type Machine struct {
	clock   uint64
	missing uint64 // want "Machine.missing is mutated outside constructors but not referenced by LoadState"
	//oltpvet:derived rebuilt from scratch by reindex on load
	memo map[uint64]int
	//oltpvet:derived the pair covers it, so this annotation is stale
	stale uint64 // want "Machine.stale carries //oltpvet:derived but is referenced by both SaveState and LoadState; drop the stale annotation"
	cfg   int
}

// NewMachine is the constructor: its writes are initialization, not
// mutation, so cfg stays immutable in the analyzer's eyes.
func NewMachine(cfg int) *Machine {
	return &Machine{cfg: cfg, memo: make(map[uint64]int)}
}

// Tick mutates every field the pair is audited for.
func (m *Machine) Tick(line uint64) {
	m.clock++
	m.missing++
	m.stale++
	m.memo[line] = int(m.clock)
}

// SaveState covers clock only through emitClock: references in same-package
// transitive callees count.
func (m *Machine) SaveState(e *Enc) {
	m.emitClock(e)
	e.U64(m.missing)
	e.U64(m.stale)
}

// LoadState restores clock and stale; missing is the silent omission the
// analyzer exists to catch, memo is rebuilt by reindex.
func (m *Machine) LoadState(e *Enc) {
	m.clock = e.Next()
	m.stale = e.Next()
	m.reindex()
}

func (m *Machine) emitClock(e *Enc) { e.U64(m.clock) }

func (m *Machine) reindex() { m.memo = make(map[uint64]int) }

// Base is embedded in Wrap: a reference to the promoted N covers the
// embedded field itself.
type Base struct{ N uint64 }

// Wrap serializes the embedded state only through promotion and must stay
// quiet.
type Wrap struct {
	Base
	extra uint64
}

// Bump mutates through promotion, which must also count as a write to the
// embedded field.
func (w *Wrap) Bump() {
	w.N++
	w.extra++
}

// SaveState references the promoted field, covering Base.
func (w *Wrap) SaveState(e *Enc) {
	e.U64(w.N)
	e.U64(w.extra)
}

// LoadState restores through promotion too.
func (w *Wrap) LoadState(e *Enc) {
	w.N = e.Next()
	w.extra = e.Next()
}

// Lit restores itself wholesale through a keyed composite literal: each
// keyed field is covered.
type Lit struct {
	a, b uint64
}

// Step mutates both fields.
func (l *Lit) Step() {
	l.a++
	l.b++
}

// SaveState writes both fields.
func (l *Lit) SaveState(e *Enc) {
	e.U64(l.a)
	e.U64(l.b)
}

// LoadState assigns a keyed literal, covering a and b.
func (l *Lit) LoadState(e *Enc) {
	*l = Lit{a: e.Next(), b: e.Next()}
}

// Zeroed shows that an empty literal covers nothing: resetting to the zero
// value is exactly the omission shape being hunted.
type Zeroed struct {
	n uint64 // want "Zeroed.n is mutated outside constructors but not referenced by LoadState"
}

// Inc mutates n.
func (z *Zeroed) Inc() { z.n++ }

// SaveState writes n.
func (z *Zeroed) SaveState(e *Enc) { e.U64(z.n) }

// LoadState zeroes the whole value, silently dropping n.
func (z *Zeroed) LoadState(e *Enc) { *z = Zeroed{} }

// Half has a save method and no load: a checkpoint that lies.
type Half struct{ n uint64 }

// Inc mutates n.
func (h *Half) Inc() { h.n++ }

// SaveState has no LoadState counterpart.
func (h *Half) SaveState(e *Enc) { e.U64(h.n) } // want "Half has SaveState but no matching load method"

// Container uses the io.Writer/io.Reader pair form.
type Container struct{ n uint64 }

// Inc mutates n.
func (c *Container) Inc() { c.n++ }

// Save is the container half: leading io.Writer qualifies it.
func (c *Container) Save(w io.Writer) error {
	_, err := w.Write([]byte{byte(c.n)})
	return err
}

// Load is the matching half: leading io.Reader qualifies it.
func (c *Container) Load(r io.Reader) error {
	var b [1]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return err
	}
	c.n = uint64(b[0])
	return nil
}

// Emitter's Load is not a snapshot half — no io.Reader first parameter — so
// the lone method is not reported.
type Emitter struct{ addr uint64 }

// Load issues a load reference; the name collides with the snapshot
// convention but the signature does not.
func (e *Emitter) Load(addr uint64, dep int) { e.addr = addr + uint64(dep) }

// Bare shows that a reasonless derived marker exempts nothing: the field is
// still audited (and the bare marker itself is reported on its own line).
type Bare struct {
	//oltpvet:derived
	idx uint64 // want "Bare.idx is mutated outside constructors but not referenced by SaveState or LoadState"
}

// Inc mutates idx.
func (b *Bare) Inc() { b.idx++ }

// SaveState ignores idx.
func (b *Bare) SaveState(e *Enc) { e.U64(0) }

// LoadState ignores idx.
func (b *Bare) LoadState(e *Enc) { _ = e.Next() }
