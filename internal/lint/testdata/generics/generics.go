// Package generics is the loader edge-case fixture: generic types and
// functions must type-check, resolve through the call graph, and satisfy
// the snapshot-coverage analyzer without diagnostics — type parameters are
// exempt from boxing judgments and method sets resolve through the origin
// type.
package generics

// Enc is a stand-in encoder.
type Enc struct {
	ints []int
	r    int
}

// Int records one value.
func (e *Enc) Int(v int) { e.ints = append(e.ints, v) }

// Next replays one value.
func (e *Enc) Next() int {
	v := e.ints[e.r]
	e.r++
	return v
}

// Stack is a generic container with a snapshot pair: coverage analysis runs
// on the origin type's fields.
type Stack[T any] struct {
	items []T
	top   int
}

// Push mutates both fields.
func (s *Stack[T]) Push(v T) {
	s.items = append(s.items, v)
	s.top++
}

// SaveState references both fields.
func (s *Stack[T]) SaveState(e *Enc) {
	e.Int(s.top)
	e.Int(len(s.items))
}

// LoadState restores both fields.
func (s *Stack[T]) LoadState(e *Enc) {
	s.top = e.Next()
	s.items = s.items[:e.Next()]
}

// Map is a generic function taking a function value: the graph must connect
// its dynamic call to the literal UseMap passes.
func Map[T, U any](xs []T, f func(T) U) []U {
	out := make([]U, 0, len(xs))
	for _, x := range xs {
		out = append(out, f(x))
	}
	return out
}

// UseMap instantiates Map with a literal.
func UseMap() []int {
	return Map([]int{1, 2}, func(v int) int { return v * 2 })
}
