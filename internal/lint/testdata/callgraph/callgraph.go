// Package callgraph is the fixture for the conservative call-graph
// resolution tests: interface calls resolve to every implementation,
// method values taken as callbacks resolve through dynamic calls, and
// function literals are nodes of their own.
package callgraph

// Runner is implemented by Direct (value receiver) and Indirect (pointer
// receiver); a call through the interface must resolve to both.
type Runner interface{ Run() int }

// Direct implements Runner on the value type.
type Direct struct{ n int }

// Run implements Runner.
func (d Direct) Run() int { return d.n }

// Indirect implements Runner only on the pointer type.
type Indirect struct{ n int }

// Run implements Runner.
func (i *Indirect) Run() int { return i.n }

// helper's bump method is passed around as a method value.
type helper struct{ n int }

func (h helper) bump() int { return h.n + 1 }

// Entry drives every resolution shape the tests assert on.
func Entry(r Runner) int {
	total := r.Run()
	total += apply(callback)
	h := helper{}
	total += apply(h.bump)
	f := func() int { return leafLit() }
	total += f()
	return total
}

// apply invokes its parameter dynamically: the graph must connect it to
// every address-taken function of matching signature.
func apply(f func() int) int { return f() }

func callback() int { return 1 }

func leafLit() int { return 2 }

// unused is never called and never taken, and its signature matches no
// dynamic call: it must stay unreachable from Entry.
func unused(s string) string { return s + "!" }
