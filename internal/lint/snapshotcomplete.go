package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// SnapPairFact is published by snapshotcomplete for every snapshot pair it
// finds: other analyzers (maporder) treat the pair's methods as
// serialization sinks, and the clean-repo pin enumerates the pairs the
// analyzer actually verified so a detection regression cannot pass
// silently.
type SnapPairFact struct {
	// Type is the receiver type's name.
	Type string
	// Save and Load are the method names of the pair (SaveState/LoadState,
	// or Save/Load for the io.Writer/io.Reader container form).
	Save string
	Load string
}

const snapshotCompleteName = "snapshotcomplete"

// NewSnapshotComplete builds the snapshot-coverage analyzer. For every type
// with a snapshot pair — methods SaveState/LoadState, or Save/Load taking
// io.Writer/io.Reader — it verifies that every mutable field is referenced
// by both halves of the pair, where:
//
//   - a field is mutable if any non-constructor function in the package
//     writes it (a constructor is a package-level function whose results
//     include the type; fields it alone writes are configuration, fixed for
//     the life of the value);
//   - a field is referenced by a method if the method or any same-package
//     function it transitively calls (per the program call graph) mentions
//     the field, including mentions through embedded-field promotion;
//   - a field annotated `//oltpvet:derived <reason>` is exempt: it is
//     recomputed on load (heap mirrors, memo tables, scratch buffers), and
//     the annotation is published as a fact so the clean-repo pin can count
//     every exemption.
//
// A type with one half of a pair and not the other is itself a diagnostic:
// state that is saved but never restored (or restorable but never saved) is
// a checkpoint that lies.
func NewSnapshotComplete() *Analyzer {
	sc := &snapshotComplete{pending: make(map[string][]Diagnostic)}
	return &Analyzer{
		Name: snapshotCompleteName,
		Doc: "every mutable field of a type with a SaveState/LoadState pair must be " +
			"referenced by both methods or carry an //oltpvet:derived annotation",
		Collect: sc.collect,
		Run:     sc.run,
	}
}

type snapshotComplete struct {
	// pending holds diagnostics computed during Collect, keyed by package
	// path; the Run phase replays them so suppression and reporting scope
	// apply normally.
	pending map[string][]Diagnostic
}

func (sc *snapshotComplete) run(pass *Pass) {
	*pass.diags = append(*pass.diags, sc.pending[pass.Path]...)
}

// pairMethods accumulates the snapshot methods seen on one type.
type pairMethods struct {
	save, load *types.Func
	saveDecl   *ast.FuncDecl
	loadDecl   *ast.FuncDecl
}

func (sc *snapshotComplete) collect(pass *Pass) {
	if pass.Prog == nil {
		return
	}
	sc.pending[pass.Path] = nil
	report := func(pos token.Pos, format string, args ...any) {
		sc.pending[pass.Path] = append(sc.pending[pass.Path], Diagnostic{
			Pos:      pass.Fset.Position(pos),
			Analyzer: snapshotCompleteName,
			Message:  fmt.Sprintf(format, args...),
		})
	}

	byType := make(map[*types.TypeName]*pairMethods)
	var order []*types.TypeName
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil {
				continue
			}
			fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			sig := fn.Type().(*types.Signature)
			recv := namedType(sig.Recv().Type())
			if recv == nil {
				continue
			}
			role := snapshotRole(fd.Name.Name, sig)
			if role == 0 {
				continue
			}
			tn := recv.Origin().Obj()
			pm := byType[tn]
			if pm == nil {
				pm = &pairMethods{}
				byType[tn] = pm
				order = append(order, tn)
			}
			if role == roleSave {
				pm.save, pm.saveDecl = fn, fd
			} else {
				pm.load, pm.loadDecl = fn, fd
			}
		}
	}

	for _, tn := range order {
		pm := byType[tn]
		switch {
		case pm.save == nil:
			report(pm.loadDecl.Name.Pos(),
				"%s has %s but no matching save method; a snapshot pair must save what it restores",
				tn.Name(), pm.load.Name())
			continue
		case pm.load == nil:
			report(pm.saveDecl.Name.Pos(),
				"%s has %s but no matching load method; a snapshot pair must restore what it saves",
				tn.Name(), pm.save.Name())
			continue
		}
		sc.checkPair(pass, tn, pm, report)
		pass.Prog.Facts().Publish(snapshotCompleteName, pass.Path, "pair:"+tn.Name(), SnapPairFact{
			Type: tn.Name(),
			Save: pm.save.Name(),
			Load: pm.load.Name(),
		})
	}
}

const (
	roleSave = 1
	roleLoad = 2
)

// snapshotRole classifies a method as the save or load half of a snapshot
// pair, or 0. SaveState/LoadState match by name (their encoder parameter
// shape varies: kernel.Scheduler threads rebind callbacks through its
// pair); Save/Load only match the container form with a leading io.Writer /
// io.Reader, so unrelated Load methods (emitter Load(addr, dep), the lint
// loader's Load(path)) are not mistaken for snapshot halves.
func snapshotRole(name string, sig *types.Signature) int {
	switch name {
	case "SaveState":
		return roleSave
	case "LoadState":
		return roleLoad
	case "Save":
		if sig.Params().Len() > 0 && isPkgType(sig.Params().At(0).Type(), "io", "Writer") {
			return roleSave
		}
	case "Load":
		if sig.Params().Len() > 0 && isPkgType(sig.Params().At(0).Type(), "io", "Reader") {
			return roleLoad
		}
	}
	return 0
}

func (sc *snapshotComplete) checkPair(pass *Pass, tn *types.TypeName, pm *pairMethods, report func(token.Pos, string, ...any)) {
	named, _ := tn.Type().(*types.Named)
	if named == nil {
		return
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		// Non-struct pairs (sim.RNG-style wrappers around one value) have no
		// fields to audit; the pair's existence is the contract.
		return
	}
	nf := st.NumFields()
	if nf == 0 {
		return
	}

	fieldPos := make([]token.Pos, nf)
	for i := 0; i < nf; i++ {
		fieldPos[i] = st.Field(i).Pos()
	}
	derived := sc.derivedFields(pass, tn, st)

	fieldIndex := make(map[string]int, nf)
	for i := 0; i < nf; i++ {
		fieldIndex[st.Field(i).Name()] = i
	}
	const (
		inSave = 1 << iota
		inLoad
	)
	covered := make([]int, nf)
	g := pass.Prog.CallGraph()
	mark := func(fn *types.Func, bit int) {
		root := g.NodeOf(fn)
		if root == nil {
			return
		}
		// Field mentions count only in this package: a snapshot method's
		// cross-package callees (the encoder, fmt) cannot see these fields
		// anyway, and restricting the walk keeps it small.
		reach := g.ReachableFrom([]*Node{root}, func(n *Node) bool {
			return n.Pkg == nil || n.Pkg.Path != pass.Path
		})
		for _, n := range g.Sorted(reach) {
			body := n.Body()
			if body == nil {
				continue
			}
			info := n.Pkg.Info
			ast.Inspect(body, func(x ast.Node) bool {
				switch e := x.(type) {
				case *ast.SelectorExpr:
					s, ok := info.Selections[e]
					if !ok || s.Kind() != types.FieldVal {
						return true
					}
					if rn := namedType(s.Recv()); rn == nil || rn.Origin().Obj() != tn {
						return true
					}
					// Index()[0] is the receiver type's own field even when
					// the selection reaches a promoted field through
					// embedding — so serializing through an embedded struct
					// covers it.
					covered[s.Index()[0]] |= bit
				case *ast.CompositeLit:
					// T{F: v, ...} mentions each keyed field; a positional
					// T{a, b, c} must list every field (the compiler enforces
					// it), so it covers all of them. An empty T{} mentions
					// nothing: zeroing is exactly the silent-omission shape
					// this analyzer exists to catch.
					lt := info.TypeOf(e)
					if rn := namedType(lt); rn == nil || rn.Origin().Obj() != tn {
						return true
					}
					for _, elt := range e.Elts {
						kv, ok := elt.(*ast.KeyValueExpr)
						if !ok {
							for i := range covered {
								covered[i] |= bit
							}
							break
						}
						if id, ok := kv.Key.(*ast.Ident); ok {
							if i, ok := fieldIndex[id.Name]; ok {
								covered[i] |= bit
							}
						}
					}
				}
				return true
			})
		}
	}
	mark(pm.save, inSave)
	mark(pm.load, inLoad)

	mutable := sc.mutableFields(pass, tn, nf)

	for i := 0; i < nf; i++ {
		if !mutable[i] || covered[i] == inSave|inLoad {
			continue
		}
		name := st.Field(i).Name()
		if reason, ok := derived[i]; ok && reason != "" {
			pass.Prog.Facts().Publish(snapshotCompleteName, pass.Path,
				fmt.Sprintf("derived:%s.%s", tn.Name(), name), reason)
			continue
		}
		var missing []string
		if covered[i]&inSave == 0 {
			missing = append(missing, pm.save.Name())
		}
		if covered[i]&inLoad == 0 {
			missing = append(missing, pm.load.Name())
		}
		report(fieldPos[i],
			"%s.%s is mutated outside constructors but not referenced by %s; serialize it or annotate //oltpvet:derived <reason>",
			tn.Name(), name, strings.Join(missing, " or "))
	}
	// A derived annotation on a field the pair fully covers is stale: the
	// field is serialized, so the exemption documents nothing.
	for i := 0; i < nf; i++ {
		if reason, ok := derived[i]; ok && reason != "" && mutable[i] && covered[i] == inSave|inLoad {
			report(fieldPos[i],
				"%s.%s carries //oltpvet:derived but is referenced by both %s and %s; drop the stale annotation",
				tn.Name(), st.Field(i).Name(), pm.save.Name(), pm.load.Name())
		}
	}
}

// derivedFields maps field index to the //oltpvet:derived reason found on
// the field's declaration (doc comment or trailing comment). A bare marker
// maps to the empty reason; the suppression scanner reports it.
func (sc *snapshotComplete) derivedFields(pass *Pass, tn *types.TypeName, st *types.Struct) map[int]string {
	out := make(map[int]string)
	spec := sc.typeSpec(pass, tn)
	if spec == nil {
		return out
	}
	stx, ok := spec.Type.(*ast.StructType)
	if !ok {
		return out
	}
	idx := 0
	for _, field := range stx.Fields.List {
		n := len(field.Names)
		if n == 0 {
			n = 1 // embedded field
		}
		if reason, ok := fieldAnnotation(field, derivedPrefix); ok {
			for k := 0; k < n; k++ {
				out[idx+k] = reason
			}
		}
		idx += n
	}
	return out
}

func (sc *snapshotComplete) typeSpec(pass *Pass, tn *types.TypeName) *ast.TypeSpec {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if ok && pass.Info.Defs[ts.Name] == tn {
					return ts
				}
			}
		}
	}
	return nil
}

// fieldAnnotation scans a struct field's doc and trailing comments for an
// //oltpvet:<kind> marker and returns its reason.
func fieldAnnotation(field *ast.Field, prefix string) (reason string, ok bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			rest, cut := strings.CutPrefix(c.Text, prefix)
			if cut && (rest == "" || rest[0] == ' ' || rest[0] == '\t') {
				return strings.TrimSpace(rest), true
			}
		}
	}
	return "", false
}

// mutableFields reports which fields of tn are written by any
// non-constructor code in the package. Writes inside function literals
// count even when the literal is created inside a constructor: a callback
// built at construction time runs for the life of the value.
func (sc *snapshotComplete) mutableFields(pass *Pass, tn *types.TypeName, nf int) []bool {
	mutable := make([]bool, nf)
	markWrite := func(info *types.Info, e ast.Expr) {
		for {
			switch x := e.(type) {
			case *ast.ParenExpr:
				e = x.X
			case *ast.IndexExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			case *ast.SliceExpr:
				e = x.X
			case *ast.SelectorExpr:
				if s, ok := info.Selections[x]; ok && s.Kind() == types.FieldVal {
					if rn := namedType(s.Recv()); rn != nil && rn.Origin().Obj() == tn {
						mutable[s.Index()[0]] = true
					}
				}
				e = x.X
			default:
				return
			}
		}
	}
	scanWrites := func(info *types.Info, body ast.Node) {
		ast.Inspect(body, func(x ast.Node) bool {
			switch st := x.(type) {
			case *ast.AssignStmt:
				for _, lhs := range st.Lhs {
					markWrite(info, lhs)
				}
			case *ast.IncDecStmt:
				markWrite(info, st.X)
			case *ast.CallExpr:
				// copy and clear mutate their first operand in place.
				if id, ok := ast.Unparen(st.Fun).(*ast.Ident); ok && len(st.Args) > 0 {
					if _, builtin := info.Uses[id].(*types.Builtin); builtin && (id.Name == "copy" || id.Name == "clear") {
						markWrite(info, st.Args[0])
					}
				}
			}
			return true
		})
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
			if fn != nil && fd.Recv == nil && returnsType(fn.Type().(*types.Signature), tn) {
				// Constructor: its own writes are initialization, but any
				// literal it creates outlives it.
				ast.Inspect(fd.Body, func(x ast.Node) bool {
					if lit, ok := x.(*ast.FuncLit); ok {
						scanWrites(pass.Info, lit.Body)
						return false
					}
					return true
				})
				continue
			}
			scanWrites(pass.Info, fd.Body)
		}
	}
	return mutable
}

// returnsType reports whether the signature's results include tn (by value
// or pointer) — the shape of a constructor.
func returnsType(sig *types.Signature, tn *types.TypeName) bool {
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if rn := namedType(res.At(i).Type()); rn != nil && rn.Origin().Obj() == tn {
			return true
		}
	}
	return false
}
