package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// bannedImports are package imports that introduce a global random source.
// Seeded randomness must come from sim.RNG so it forks deterministically.
var bannedImports = map[string]string{
	"math/rand":    "global random source; use sim.RNG seeded from config",
	"math/rand/v2": "global random source; use sim.RNG seeded from config",
	"crypto/rand":  "entropy source; the simulator must be a pure function of config and seed",
}

// bannedCalls are selector calls that read ambient state: the wall clock or
// the process environment.
var bannedCalls = map[string]map[string]string{
	"time": {
		"Now":       "wall clock",
		"Since":     "wall clock",
		"Until":     "wall clock",
		"Sleep":     "wall-clock delay",
		"After":     "wall-clock timer",
		"Tick":      "wall-clock ticker",
		"NewTimer":  "wall-clock timer",
		"NewTicker": "wall-clock ticker",
		"AfterFunc": "wall-clock timer",
	},
	"os": {
		"Getenv":    "environment read",
		"LookupEnv": "environment read",
		"Environ":   "environment read",
	},
}

// NewDeterminism returns the determinism analyzer: inside internal/ packages
// nothing may read the wall clock, the environment, or a global random
// source, and no package-level variable may be mutated outside init. These
// are exactly the inputs that would make a run something other than a pure
// function of (config, seed) — the property every committed figure and the
// paper-comparison score rely on.
func NewDeterminism() *Analyzer {
	a := &Analyzer{
		Name: "determinism",
		Doc: "forbid wall-clock reads (time.Now/Since/...), environment reads (os.Getenv/...),\n" +
			"global random sources (math/rand, crypto/rand), and mutated package-level state\n" +
			"inside internal/ packages; every run must be a pure function of config and seed",
	}
	a.Run = func(pass *Pass) {
		if !pass.Internal() {
			return
		}
		for _, f := range pass.Files {
			checkImports(pass, f)
			checkBannedCalls(pass, f)
		}
		checkGlobalMutation(pass)
	}
	return a
}

func checkImports(pass *Pass, f *ast.File) {
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		if why, ok := bannedImports[path]; ok {
			pass.Reportf(imp.Pos(), "non-deterministic import %q: %s", path, why)
		}
		if imp.Name != nil && imp.Name.Name == "." && bannedCalls[path] != nil {
			pass.Reportf(imp.Pos(), "dot import of %q hides non-deterministic calls from analysis", path)
		}
	}
}

func checkBannedCalls(pass *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := pass.Info.Uses[id].(*types.PkgName)
		if !ok {
			return true
		}
		if why, ok := bannedCalls[pn.Imported().Path()][sel.Sel.Name]; ok {
			pass.Reportf(sel.Pos(), "%s.%s is a %s; a simulation run must be a pure function of config and seed",
				pn.Imported().Path(), sel.Sel.Name, why)
		}
		return true
	})
}

// checkGlobalMutation flags writes to package-level variables from any
// function other than init. A table computed once during initialization is
// deterministic; state mutated at run time couples independent runs (and
// races under the parallel experiment runner).
func checkGlobalMutation(pass *Pass) {
	globals := make(map[types.Object]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if name.Name == "_" {
						continue
					}
					if obj := pass.Info.Defs[name]; obj != nil {
						globals[obj] = true
					}
				}
			}
		}
	}
	if len(globals) == 0 {
		return
	}
	report := func(e ast.Expr, pos token.Pos) {
		id := baseIdent(e)
		if id == nil {
			return
		}
		if obj := pass.Info.Uses[id]; obj != nil && globals[obj] {
			pass.Reportf(pos, "package-level var %s is mutated at run time; global mutable state breaks determinism and races under the parallel runner", id.Name)
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Recv == nil && fd.Name.Name == "init" {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch st := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range st.Lhs {
						report(lhs, st.Pos())
					}
				case *ast.IncDecStmt:
					report(st.X, st.Pos())
				}
				return true
			})
		}
	}
}
