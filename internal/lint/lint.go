// Package lint is the project's static-analysis suite: five analyzers that
// machine-check the contracts the reproduction depends on but the compiler
// cannot see. The `internal/sim` package doc promises that every run is a
// pure function of configuration and seed; PR 1 fixed a `Uint64() % n`
// modulo-bias bug that had silently skewed every figure by tenths of a
// point. Both bug classes — and two more like them — are cheap to
// reintroduce by hand and cheap to catch by machine, so `cmd/oltpvet`
// runs this package over the tree in CI.
//
// The analyzers:
//
//   - determinism: no wall clock, environment reads, global random sources,
//     or mutated package-level state under internal/.
//   - rngdiscipline: no `%` on RNG.Uint64/Uint32 results (modulo bias) and
//     no constant RNG seeds inside internal/ (seeds flow from config).
//   - zeroguard: no `float64(a)/float64(b)` where the denominator is a
//     counter field or counter accessor without a dominating zero test.
//   - counterowner: stats.MissTable and stats.RunResult counter fields are
//     written only by the stats package's Count*/Add* accumulators.
//   - goroutine: `go` statements under internal/ appear only in the two
//     approved concurrency seams (the epoch-sharded stepping engine and
//     the experiment worker pool), whose determinism arguments are
//     documented and tested.
//
// A diagnostic can be suppressed with a trailing or immediately preceding
// comment of the form
//
//	//oltpvet:allow <reason>
//
// The reason is mandatory; a bare allow comment is itself a diagnostic.
// The suite analyzes non-test files only: tests legitimately construct
// fixtures, poke counters, and use the wall clock for timeouts.
//
// Everything here is standard library only (go/ast, go/parser, go/types,
// go/importer); there is no dependency on golang.org/x/tools, so the tool
// builds offline with the bare toolchain.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding at a source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and documentation.
	Name string
	// Doc explains what the analyzer enforces and why.
	Doc string
	// Run reports diagnostics through the pass.
	Run func(*Pass)
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Path is the package's import path (e.g. "oltpsim/internal/sim").
	Path  string
	Pkg   *types.Package
	Info  *types.Info
	Files []*ast.File

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Internal reports whether the package under analysis lives below an
// internal/ directory — the scope in which the determinism contract is
// absolute. Command and example packages are configuration roots: a literal
// seed or a wall-clock read there is an explicit user-facing choice.
func (p *Pass) Internal() bool {
	return strings.Contains(p.Path, "internal/")
}

// Run applies the analyzers to one loaded package and returns the surviving
// diagnostics: suppressed findings are removed, and malformed allow comments
// are themselves reported.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Path:     pkg.Path,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Files:    pkg.Files,
			diags:    &diags,
		}
		a.Run(pass)
	}
	diags = suppress(pkg, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return diags
}

// allowPrefix introduces a suppression comment; the rest of the comment is
// the mandatory reason.
const allowPrefix = "//oltpvet:allow"

// suppress drops diagnostics covered by an //oltpvet:allow comment on the
// same line or the line immediately above, and reports allow comments that
// carry no reason.
func suppress(pkg *Package, diags []Diagnostic) []Diagnostic {
	allowed := make(map[string]map[int]bool)
	var out []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				reason := strings.TrimSpace(strings.TrimPrefix(c.Text, allowPrefix))
				if reason == "" {
					out = append(out, Diagnostic{
						Pos:      pos,
						Analyzer: "allow",
						Message:  "//oltpvet:allow needs a reason: //oltpvet:allow <why this is safe>",
					})
					continue
				}
				if allowed[pos.Filename] == nil {
					allowed[pos.Filename] = make(map[int]bool)
				}
				allowed[pos.Filename][pos.Line] = true
			}
		}
	}
	for _, d := range diags {
		lines := allowed[d.Pos.Filename]
		if lines != nil && (lines[d.Pos.Line] || lines[d.Pos.Line-1]) {
			continue
		}
		out = append(out, d)
	}
	return out
}

// All returns the full analyzer suite with production configuration.
func All() []*Analyzer {
	return []*Analyzer{
		NewDeterminism(),
		NewRNGDiscipline(SimPkgPath),
		NewZeroGuard(),
		NewCounterOwner(StatsPkgPath),
		NewGoroutineDiscipline(ApprovedGoroutineFiles),
	}
}

// Canonical paths of the packages whose contracts the suite enforces. The
// analyzer constructors take them as parameters so fixture tests can stand
// up small owner packages under testdata.
const (
	SimPkgPath   = "oltpsim/internal/sim"
	StatsPkgPath = "oltpsim/internal/stats"
)

// baseIdent unwraps selector, index, star, and paren expressions down to the
// root identifier of an lvalue, or nil if the root is not an identifier.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// namedType unwraps pointers and returns the named type of t, or nil.
func namedType(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// isPkgType reports whether t (possibly behind a pointer) is the named type
// pkgPath.name.
func isPkgType(t types.Type, pkgPath, name string) bool {
	n := namedType(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == pkgPath && n.Obj().Name() == name
}
