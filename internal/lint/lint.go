// Package lint is the project's static-analysis suite: eight analyzers that
// machine-check the contracts the reproduction depends on but the compiler
// cannot see. The `internal/sim` package doc promises that every run is a
// pure function of configuration and seed; PR 1 fixed a `Uint64() % n`
// modulo-bias bug that had silently skewed every figure by tenths of a
// point. Bug classes like it are cheap to reintroduce by hand and cheap to
// catch by machine, so `cmd/oltpvet` runs this package over the tree in CI.
//
// The per-file analyzers inspect one package at a time:
//
//   - determinism: no wall clock, environment reads, global random sources,
//     or mutated package-level state under internal/.
//   - rngdiscipline: no `%` on RNG.Uint64/Uint32 results (modulo bias) and
//     no constant RNG seeds inside internal/ (seeds flow from config).
//   - zeroguard: no `float64(a)/float64(b)` where the denominator is a
//     counter field or counter accessor without a dominating zero test.
//   - counterowner: stats.MissTable and stats.RunResult counter fields are
//     written only by the stats package's Count*/Add* accumulators.
//   - goroutine: `go` statements under internal/ appear only in the two
//     approved concurrency seams (the epoch-sharded stepping engine and
//     the experiment worker pool), whose determinism arguments are
//     documented and tested.
//
// The contract analyzers reason about cross-package flows over a Program —
// the whole module loaded at once, with a conservative static call graph
// (direct calls, interface method sets, address-taken functions matched to
// dynamic calls; no pointer analysis) and a fact store analyzers publish to
// during a Collect phase and query during Run:
//
//   - snapshotcomplete: every mutable field of a type with a
//     SaveState/LoadState (or io.Writer/io.Reader Save/Load) pair is
//     referenced by both halves, or carries `//oltpvet:derived <reason>`
//     marking it recomputed on load. Lone pair halves and stale derived
//     annotations are themselves diagnostics.
//   - maporder: no `range` over a map in any function whose results can
//     flow to stats, output, or serialization (fmt, io, os, encoding/*,
//     the stats and snapshot packages, and every snapshot pair method via
//     the fact store). The collect-then-sort idiom and commutative
//     integer/map folds stay quiet.
//   - hotpathalloc: no allocation-prone constructs — formatting, growing
//     appends, escaping composite literals, interface boxing — in
//     functions reachable from core.System.Step, the loop whose
//     0 allocs/op steady state is a benchmark invariant. Functions
//     annotated `//oltpvet:coldpath <reason>` are pruned from the hot set.
//
// A diagnostic can be suppressed with a trailing or immediately preceding
// comment of the form
//
//	//oltpvet:allow <reason>
//
// A standalone marker anchors on the line after its whole comment group, so
// it can sit inside a longer justification. The reason is mandatory for
// allow, derived, and coldpath alike; a bare marker is itself a diagnostic,
// and every derived/coldpath exemption is published as a fact so the test
// suite pins the exact set in force. The suite analyzes non-test files
// only: tests legitimately construct fixtures, poke counters, and use the
// wall clock for timeouts.
//
// Everything here is standard library only (go/ast, go/parser, go/types,
// go/importer); there is no dependency on golang.org/x/tools, so the tool
// builds offline with the bare toolchain.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding at a source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and documentation.
	Name string
	// Doc explains what the analyzer enforces and why.
	Doc string
	// Collect, when non-nil, runs over every program package before any
	// Run phase, publishing cross-package facts through Pass.Prog.Facts().
	Collect func(*Pass)
	// Run reports diagnostics through the pass.
	Run func(*Pass)
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Path is the package's import path (e.g. "oltpsim/internal/sim").
	Path  string
	Pkg   *types.Package
	Info  *types.Info
	Files []*ast.File
	// Prog is the whole-program context (call graph, facts); nil when the
	// analyzer runs through the legacy single-package Run entry point, in
	// which case program-scoped analyzers do nothing.
	Prog *Program

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Internal reports whether the package under analysis lives below an
// internal/ directory — the scope in which the determinism contract is
// absolute. Command and example packages are configuration roots: a literal
// seed or a wall-clock read there is an explicit user-facing choice.
func (p *Pass) Internal() bool {
	return strings.Contains(p.Path, "internal/")
}

// Run applies the analyzers to one loaded package and returns the surviving
// diagnostics: suppressed findings are removed, and malformed allow comments
// are themselves reported.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Path:     pkg.Path,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Files:    pkg.Files,
			diags:    &diags,
		}
		if a.Collect != nil {
			a.Collect(pass)
		}
		if a.Run != nil {
			a.Run(pass)
		}
	}
	diags = suppress(pkg, diags)
	sortDiagnostics(diags)
	return diags
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
}

// The annotation vocabulary. Every marker requires a reason; a bare marker
// is itself a diagnostic.
//
//   - allow suppresses one diagnostic on its anchor line;
//   - derived marks a struct field as intentionally absent from its type's
//     SaveState/LoadState pair (recomputed on load: heap mirrors, memo
//     tables, scratch state);
//   - coldpath marks a function that is statically reachable from the hot
//     path but excluded from the steady-state allocation contract
//     (diagnostic-only instrumentation, crash dumps).
const (
	allowPrefix    = "//oltpvet:allow"
	derivedPrefix  = "//oltpvet:derived"
	coldpathPrefix = "//oltpvet:coldpath"
)

// suppress drops diagnostics covered by an //oltpvet:allow comment and
// reports bare annotation markers (allow, derived, coldpath) that carry no
// reason.
//
// An allow anchors on its own comment line-group: it covers diagnostics on
// the comment's line (the trailing-comment form) and on the first line
// after the group ends (the standalone form) — so an allow inside a
// multi-line comment block covers the statement the block is attached to,
// and never a line buried mid-block. Earlier versions anchored on the
// allow comment's own line + 1, which silently missed the statement when
// the allow was not the block's last line.
func suppress(pkg *Package, diags []Diagnostic) []Diagnostic {
	allowed := make(map[string]map[int]bool)
	var out []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			groupEnd := pkg.Fset.Position(cg.End()).Line
			for _, c := range cg.List {
				prefix := ""
				for _, p := range []string{allowPrefix, derivedPrefix, coldpathPrefix} {
					// derivedPrefix would also prefix-match a hypothetical
					// longer marker, so require an exact marker word.
					rest, ok := strings.CutPrefix(c.Text, p)
					if ok && (rest == "" || rest[0] == ' ' || rest[0] == '\t') {
						prefix = p
						break
					}
				}
				if prefix == "" {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				reason := strings.TrimSpace(strings.TrimPrefix(c.Text, prefix))
				if reason == "" {
					out = append(out, Diagnostic{
						Pos:      pos,
						Analyzer: "annotation",
						Message:  fmt.Sprintf("%s needs a reason: %s <why>", prefix, prefix),
					})
					continue
				}
				if prefix != allowPrefix {
					continue
				}
				if allowed[pos.Filename] == nil {
					allowed[pos.Filename] = make(map[int]bool)
				}
				allowed[pos.Filename][pos.Line] = true
				allowed[pos.Filename][groupEnd+1] = true
			}
		}
	}
	for _, d := range diags {
		if allowed[d.Pos.Filename][d.Pos.Line] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// All returns the full analyzer suite with production configuration.
func All() []*Analyzer {
	return []*Analyzer{
		NewDeterminism(),
		NewRNGDiscipline(SimPkgPath),
		NewZeroGuard(),
		NewCounterOwner(StatsPkgPath),
		NewGoroutineDiscipline(ApprovedGoroutineFiles),
		NewSnapshotComplete(),
		NewMapOrder(DefaultMapOrderSinks),
		NewHotPathAlloc(DefaultHotRoots),
	}
}

// Canonical paths of the packages whose contracts the suite enforces. The
// analyzer constructors take them as parameters so fixture tests can stand
// up small owner packages under testdata.
const (
	SimPkgPath      = "oltpsim/internal/sim"
	StatsPkgPath    = "oltpsim/internal/stats"
	SnapshotPkgPath = "oltpsim/internal/snapshot"
	CorePkgPath     = "oltpsim/internal/core"
)

// baseIdent unwraps selector, index, star, and paren expressions down to the
// root identifier of an lvalue, or nil if the root is not an identifier.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// namedType unwraps pointers and returns the named type of t, or nil.
func namedType(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// isPkgType reports whether t (possibly behind a pointer) is the named type
// pkgPath.name.
func isPkgType(t types.Type, pkgPath, name string) bool {
	n := namedType(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == pkgPath && n.Obj().Name() == name
}
