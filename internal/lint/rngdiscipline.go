package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NewRNGDiscipline returns the rngdiscipline analyzer for the RNG type in
// rngPkg. It statically kills the PR-1 bug class two ways:
//
//   - `rng.Uint64() % n` (and the Uint32 variant) over-weights small values
//     whenever n does not divide the generator's range; the bias silently
//     skewed every committed figure by tenths of a point before PR 1
//     replaced it with Lemire bounded rejection. Any new `%` on a raw draw
//     is flagged; callers must use Uint64n/Intn/Int63n.
//   - `NewRNG(<constant>)` inside internal/ pins a seed the configuration
//     cannot reach, so two experiments that should be independent share a
//     stream. Seeds must flow in from config or be derived with Fork.
func NewRNGDiscipline(rngPkg string) *Analyzer {
	a := &Analyzer{
		Name: "rngdiscipline",
		Doc: "forbid `%` on RNG.Uint64/Uint32 results (modulo bias: use Uint64n/Intn/Int63n)\n" +
			"and constant seeds to NewRNG inside internal/ (seeds must come from config or Fork)",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch e := n.(type) {
				case *ast.BinaryExpr:
					checkModuloBias(pass, rngPkg, e)
				case *ast.CallExpr:
					if pass.Internal() {
						checkConstantSeed(pass, rngPkg, e)
					}
				}
				return true
			})
		}
	}
	return a
}

// checkModuloBias flags `x.Uint64() % n` / `x.Uint32() % n` where x is the
// RNG type.
func checkModuloBias(pass *Pass, rngPkg string, e *ast.BinaryExpr) {
	if e.Op != token.REM {
		return
	}
	call, ok := ast.Unparen(e.X).(*ast.CallExpr)
	if !ok {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	s := pass.Info.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal {
		return
	}
	name := s.Obj().Name()
	if name != "Uint64" && name != "Uint32" {
		return
	}
	if !isPkgType(s.Recv(), rngPkg, "RNG") {
		return
	}
	pass.Reportf(e.Pos(), "RNG.%s() %% n is modulo-biased toward small values; use Uint64n/Intn/Int63n (Lemire bounded rejection)", name)
}

// checkConstantSeed flags NewRNG(<constant>) calls.
func checkConstantSeed(pass *Pass, rngPkg string, call *ast.CallExpr) {
	var fn types.Object
	switch f := call.Fun.(type) {
	case *ast.SelectorExpr:
		fn = pass.Info.Uses[f.Sel]
	case *ast.Ident:
		fn = pass.Info.Uses[f]
	default:
		return
	}
	if fn == nil || fn.Name() != "NewRNG" || fn.Pkg() == nil || fn.Pkg().Path() != rngPkg {
		return
	}
	if len(call.Args) != 1 {
		return
	}
	if tv, ok := pass.Info.Types[call.Args[0]]; ok && tv.Value != nil {
		pass.Reportf(call.Pos(), "RNG seeded with constant %s inside internal/; thread the seed from configuration or derive it with Fork", tv.Value)
	}
}
