package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Node is one function in the call graph: a declared function or method
// (Fn non-nil), a function literal (Lit non-nil), or a bodiless function
// outside the program — an imported or interface function that appears
// only as a call target.
type Node struct {
	// Fn is the type-checker object (its generic origin for instantiated
	// functions); nil for function literals.
	Fn *types.Func
	// Lit is the literal's syntax; nil for declared functions.
	Lit *ast.FuncLit
	// Pkg is the program package holding the body; nil for bodiless nodes.
	Pkg *Package
	// Decl is the function's declaration; for a literal, the declaration
	// lexically enclosing it. Nil for bodiless nodes.
	Decl *ast.FuncDecl
}

// Body returns the function body, or nil for bodiless nodes.
func (n *Node) Body() *ast.BlockStmt {
	if n.Lit != nil {
		return n.Lit.Body
	}
	if n.Decl != nil {
		return n.Decl.Body
	}
	return nil
}

// Pos returns the node's source position (NoPos for bodiless stdlib nodes
// whose file set entry is elsewhere).
func (n *Node) Pos() token.Pos {
	if n.Lit != nil {
		return n.Lit.Pos()
	}
	if n.Fn != nil {
		return n.Fn.Pos()
	}
	return token.NoPos
}

func (n *Node) String() string {
	if n.Fn != nil {
		return n.Fn.FullName()
	}
	if n.Decl != nil {
		return fmt.Sprintf("func literal in %s", n.Decl.Name.Name)
	}
	return "func literal"
}

// CallGraph is a conservative static call graph over a Program. Edges come
// from four resolution rules, each an over-approximation in the safe
// direction (extra edges, never missing ones, for anything the loader can
// see):
//
//   - direct calls to declared functions and methods resolve exactly;
//   - interface method calls resolve to that method on every named type in
//     the program whose method set satisfies the interface (method-set
//     resolution, no pointer analysis);
//   - calls through function-typed values (fields, variables, parameters)
//     resolve to every function or closure whose value is taken somewhere
//     in the program with an identical signature;
//   - referencing a function as a value (method value, callback, closure
//     creation) adds an edge from the referencing function, since the
//     referee may run wherever the value flows.
//
// The graph does not see through reflection or code outside the loaded
// packages; neither appears in this repository's non-test code (the
// determinism analyzer keeps the surface small).
type CallGraph struct {
	prog  *Program
	nodes map[any]*Node // keyed by *types.Func (origin) or *ast.FuncLit
	// order holds every node in creation order — a deterministic sequence,
	// since the builder walks sorted packages and files in syntax order —
	// so no graph traversal ever depends on map iteration order.
	order   []*Node
	callees map[*Node][]*Node
	callers map[*Node][]*Node
}

// NodeOf returns the graph node for a declared function, or nil if the
// function was never seen.
func (g *CallGraph) NodeOf(fn *types.Func) *Node {
	if fn == nil {
		return nil
	}
	return g.nodes[originFunc(fn)]
}

// Callees returns the functions n may call, in deterministic order.
func (g *CallGraph) Callees(n *Node) []*Node { return g.callees[n] }

// Callers returns the functions that may call n, in deterministic order.
func (g *CallGraph) Callers(n *Node) []*Node { return g.callers[n] }

// Nodes returns every node in deterministic order.
func (g *CallGraph) Nodes() []*Node {
	out := append([]*Node(nil), g.order...)
	sortNodes(out)
	return out
}

// Sorted filters the graph's nodes down to the given set, in deterministic
// order — the way to iterate a reachability result.
func (g *CallGraph) Sorted(set map[*Node]bool) []*Node {
	var out []*Node
	for _, n := range g.order {
		if set[n] {
			out = append(out, n)
		}
	}
	sortNodes(out)
	return out
}

// ReachableFrom returns the set of nodes reachable from the roots along
// callee edges, including the roots. A non-nil skip predicate prunes the
// walk: a skipped node is neither included nor expanded.
func (g *CallGraph) ReachableFrom(roots []*Node, skip func(*Node) bool) map[*Node]bool {
	return g.walk(roots, g.callees, skip)
}

// Reaching returns the set of nodes from which some sink is reachable
// along callee edges, including the sinks themselves.
func (g *CallGraph) Reaching(sinks []*Node, skip func(*Node) bool) map[*Node]bool {
	return g.walk(sinks, g.callers, skip)
}

func (g *CallGraph) walk(start []*Node, edges map[*Node][]*Node, skip func(*Node) bool) map[*Node]bool {
	seen := make(map[*Node]bool)
	var queue []*Node
	for _, n := range start {
		if n != nil && !seen[n] && (skip == nil || !skip(n)) {
			seen[n] = true
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, next := range edges[n] {
			if !seen[next] && (skip == nil || !skip(next)) {
				seen[next] = true
				queue = append(queue, next)
			}
		}
	}
	return seen
}

// originFunc normalizes an instantiated generic function to its origin so
// every instantiation shares one graph node.
func originFunc(fn *types.Func) *types.Func {
	if o := fn.Origin(); o != nil {
		return o
	}
	return fn
}

// graphBuilder accumulates edges while walking every function body once.
// Edges are kept in insertion order (deduplicated through seen) so the
// finished graph never iterates a map.
type graphBuilder struct {
	prog  *Program
	graph *CallGraph
	edges map[*Node][]*Node
	seen  map[[2]*Node]bool

	// named is every package-level named type in the program, for
	// interface method-set resolution.
	named []*types.Named
	// implCache memoizes interface-call resolution per (interface, method).
	implCache map[string][]*types.Func
	// taken maps a receiver-stripped signature string to every function or
	// literal whose value is taken somewhere with that signature.
	taken map[string][]*Node
	// dynamic records calls through function-typed values, resolved
	// against taken after the walk.
	dynamic []dynCall
}

type dynCall struct {
	from *Node
	sig  string
}

func buildCallGraph(prog *Program) *CallGraph {
	g := &CallGraph{
		prog:    prog,
		nodes:   make(map[any]*Node),
		callees: make(map[*Node][]*Node),
		callers: make(map[*Node][]*Node),
	}
	b := &graphBuilder{
		prog:      prog,
		graph:     g,
		edges:     make(map[*Node][]*Node),
		seen:      make(map[[2]*Node]bool),
		implCache: make(map[string][]*types.Func),
		taken:     make(map[string][]*Node),
	}
	for _, pkg := range prog.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			if tn, ok := scope.Lookup(name).(*types.TypeName); ok && !tn.IsAlias() {
				if named, ok := tn.Type().(*types.Named); ok {
					b.named = append(b.named, named)
				}
			}
		}
	}
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				node := b.nodeForFunc(fn)
				node.Pkg, node.Decl = pkg, fd
				b.walkBody(node, pkg, fd.Body)
			}
		}
	}
	// Resolve calls through function-typed values against everything whose
	// value is taken with a matching signature.
	for _, dc := range b.dynamic {
		for _, target := range b.taken[dc.sig] {
			b.edge(dc.from, target)
		}
	}
	for _, from := range g.order {
		out := b.edges[from]
		sortNodes(out)
		g.callees[from] = out
		for _, to := range out {
			g.callers[to] = append(g.callers[to], from)
		}
	}
	for _, n := range g.order {
		sortNodes(g.callers[n])
	}
	return g
}

func sortNodes(ns []*Node) {
	sort.Slice(ns, func(i, j int) bool {
		a, b := ns[i], ns[j]
		if a.Pos() != b.Pos() {
			return a.Pos() < b.Pos()
		}
		return a.String() < b.String()
	})
}

func (b *graphBuilder) nodeForFunc(fn *types.Func) *Node {
	fn = originFunc(fn)
	if n, ok := b.graph.nodes[fn]; ok {
		return n
	}
	n := &Node{Fn: fn}
	b.graph.nodes[fn] = n
	b.graph.order = append(b.graph.order, n)
	return n
}

func (b *graphBuilder) nodeForLit(lit *ast.FuncLit, pkg *Package, decl *ast.FuncDecl) *Node {
	if n, ok := b.graph.nodes[lit]; ok {
		return n
	}
	n := &Node{Lit: lit, Pkg: pkg, Decl: decl}
	b.graph.nodes[lit] = n
	b.graph.order = append(b.graph.order, n)
	return n
}

func (b *graphBuilder) edge(from, to *Node) {
	k := [2]*Node{from, to}
	if b.seen[k] {
		return
	}
	b.seen[k] = true
	b.edges[from] = append(b.edges[from], to)
}

// sigKey renders a signature with any receiver stripped, so a method value
// and a plain function of the same shape compare equal.
func sigKey(sig *types.Signature) string {
	flat := types.NewSignatureType(nil, nil, nil, sig.Params(), sig.Results(), sig.Variadic())
	return types.TypeString(flat, func(p *types.Package) string { return p.Path() })
}

// walkBody attributes every call and function-value reference lexically
// inside body to cur, descending into nested literals as their own nodes.
func (b *graphBuilder) walkBody(cur *Node, pkg *Package, body *ast.BlockStmt) {
	var visit func(n ast.Node, cur *Node) bool
	visit = func(n ast.Node, cur *Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			child := b.nodeForLit(x, pkg, cur.Decl)
			// Creating a literal both takes its value (it may run wherever
			// the value flows) and, conservatively, lets the creator call it.
			if sig, ok := pkg.Info.TypeOf(x).(*types.Signature); ok {
				b.takeValue(child, sig)
			}
			b.edge(cur, child)
			ast.Inspect(x.Body, func(m ast.Node) bool { return visit(m, child) })
			return false
		case *ast.CallExpr:
			b.call(cur, pkg, x)
			// Arguments and the callee's operand subtrees still need the
			// value-reference walk; the call-position function itself is
			// handled by call, so mark it.
			for _, arg := range x.Args {
				ast.Inspect(arg, func(m ast.Node) bool { return visit(m, cur) })
			}
			if inner := calleeOperand(x.Fun); inner != nil {
				ast.Inspect(inner, func(m ast.Node) bool { return visit(m, cur) })
			}
			return false
		case *ast.Ident:
			b.valueRef(cur, pkg, x, nil)
			return false
		case *ast.SelectorExpr:
			b.valueRef(cur, pkg, x.Sel, x)
			ast.Inspect(x.X, func(m ast.Node) bool { return visit(m, cur) })
			return false
		}
		return true
	}
	ast.Inspect(body, func(n ast.Node) bool { return visit(n, cur) })
}

// calleeOperand returns the receiver/operand expression of a call target
// whose nested expressions still need walking (x in x.M(), f in f[T]()),
// or nil when the target is a bare identifier or literal.
func calleeOperand(fun ast.Expr) ast.Expr {
	switch x := ast.Unparen(fun).(type) {
	case *ast.SelectorExpr:
		return x.X
	case *ast.IndexExpr:
		return x.X
	case *ast.IndexListExpr:
		return x.X
	}
	return nil
}

// takeValue registers a node as address-taken under its signature.
func (b *graphBuilder) takeValue(n *Node, sig *types.Signature) {
	key := sigKey(sig)
	for _, prev := range b.taken[key] {
		if prev == n {
			return
		}
	}
	b.taken[key] = append(b.taken[key], n)
}

// valueRef handles a function referenced as a value (not called): the
// referee becomes address-taken and the referencing function gains a
// conservative edge to it. sel is non-nil when the reference is a selector
// (method value or qualified function).
func (b *graphBuilder) valueRef(cur *Node, pkg *Package, id *ast.Ident, sel *ast.SelectorExpr) {
	if sel != nil {
		if s, ok := pkg.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			fn, _ := s.Obj().(*types.Func)
			if fn == nil {
				return
			}
			if types.IsInterface(s.Recv()) {
				for _, impl := range b.implementations(s.Recv(), fn.Name()) {
					n := b.nodeForFunc(impl)
					b.takeValue(n, boundSig(impl))
					b.edge(cur, n)
				}
				return
			}
			n := b.nodeForFunc(fn)
			b.takeValue(n, boundSig(fn))
			b.edge(cur, n)
			return
		}
	}
	fn, _ := pkg.Info.Uses[id].(*types.Func)
	if fn == nil {
		return
	}
	n := b.nodeForFunc(fn)
	if sig := boundSig(fn); sig != nil {
		b.takeValue(n, sig)
	}
	b.edge(cur, n)
}

// boundSig returns a function's signature; for methods the receiver is
// stripped by sigKey, matching how a bound method value is called.
func boundSig(fn *types.Func) *types.Signature {
	sig, _ := fn.Type().(*types.Signature)
	return sig
}

// call resolves one call expression into edges.
func (b *graphBuilder) call(cur *Node, pkg *Package, call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)
	// Generic instantiation f[T](...) or m[T](...).
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(ix.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(ix.X)
	}
	switch x := fun.(type) {
	case *ast.FuncLit:
		b.edge(cur, b.nodeForLit(x, pkg, cur.Decl))
		return
	case *ast.Ident:
		switch obj := pkg.Info.Uses[x].(type) {
		case *types.Func:
			b.edge(cur, b.nodeForFunc(obj))
			return
		case *types.Builtin, *types.TypeName, nil:
			return // builtin or conversion
		case *types.Var:
			b.dynamicCall(cur, obj.Type())
			return
		}
	case *ast.SelectorExpr:
		if s, ok := pkg.Info.Selections[x]; ok {
			switch s.Kind() {
			case types.MethodVal:
				fn, _ := s.Obj().(*types.Func)
				if fn == nil {
					return
				}
				if types.IsInterface(s.Recv()) {
					b.interfaceCall(cur, s.Recv(), fn)
					return
				}
				b.edge(cur, b.nodeForFunc(fn))
				return
			case types.FieldVal:
				b.dynamicCall(cur, s.Obj().Type())
				return
			}
		}
		// Qualified reference pkg.F or method expression used directly.
		switch obj := pkg.Info.Uses[x.Sel].(type) {
		case *types.Func:
			b.edge(cur, b.nodeForFunc(obj))
		case *types.Var:
			b.dynamicCall(cur, obj.Type())
		}
		return
	}
	// Anything else (call of a call result, indexed function slice, ...)
	// is a dynamic call through the expression's signature.
	if t := pkg.Info.TypeOf(call.Fun); t != nil {
		b.dynamicCall(cur, t)
	}
}

func (b *graphBuilder) dynamicCall(cur *Node, t types.Type) {
	sig, ok := t.Underlying().(*types.Signature)
	if !ok {
		return
	}
	b.dynamic = append(b.dynamic, dynCall{from: cur, sig: sigKey(sig)})
}

// interfaceCall resolves a call through an interface to that method on
// every named program type whose method set satisfies the interface.
func (b *graphBuilder) interfaceCall(cur *Node, recv types.Type, ifaceMethod *types.Func) {
	// The interface method itself gets an edge too: it is bodiless, but
	// keeps the call visible in the graph even with no implementations.
	b.edge(cur, b.nodeForFunc(ifaceMethod))
	for _, impl := range b.implementations(recv, ifaceMethod.Name()) {
		b.edge(cur, b.nodeForFunc(impl))
	}
}

// implementations finds the named method on every program type satisfying
// the interface type recv (a type parameter resolves to its constraint).
func (b *graphBuilder) implementations(recv types.Type, name string) []*types.Func {
	if tp, ok := recv.(*types.TypeParam); ok {
		recv = tp.Constraint()
	}
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	key := fmt.Sprintf("%s\x00%s", types.TypeString(iface, func(p *types.Package) string { return p.Path() }), name)
	if impls, ok := b.implCache[key]; ok {
		return impls
	}
	var impls []*types.Func
	for _, named := range b.named {
		if types.IsInterface(named) {
			continue
		}
		ptr := types.NewPointer(named)
		if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(ptr, true, named.Obj().Pkg(), name)
		if fn, ok := obj.(*types.Func); ok {
			impls = append(impls, originFunc(fn))
		}
	}
	b.implCache[key] = impls
	return impls
}

// funcAnnotation scans a declaration's doc comment for an //oltpvet:<kind>
// marker and returns its reason. Used for the coldpath marker on function
// declarations.
func funcAnnotation(decl *ast.FuncDecl, prefix string) (reason string, ok bool) {
	if decl == nil || decl.Doc == nil {
		return "", false
	}
	for _, c := range decl.Doc.List {
		if strings.HasPrefix(c.Text, prefix) {
			return strings.TrimSpace(strings.TrimPrefix(c.Text, prefix)), true
		}
	}
	return "", false
}
