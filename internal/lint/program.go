package lint

import (
	"fmt"
	"go/types"
	"sort"
)

// Program is a set of packages analyzed together: the unit over which the
// call graph and the cross-package fact store are built. Per-file pattern
// matching (the PR-2 analyzers) needs only one package at a time; the
// contract analyzers added in PR 7 (snapshotcomplete, maporder,
// hotpathalloc) reason about flows that cross package boundaries — a map
// iterated in internal/experiments whose slice is printed by cmd/figures,
// or an allocation in internal/kernel reached from core.System.Step — so
// the driver loads the whole module into one Program and runs the suite
// over it.
type Program struct {
	Loader *Loader
	// Pkgs are the successfully type-checked packages, sorted by import
	// path so every traversal of the program is deterministic.
	Pkgs []*Package
	// Broken are packages that failed to type-check. They are excluded
	// from the call graph (analysis over them is unreliable); the driver
	// reports them as failures.
	Broken []*Package

	byPath map[string]*Package
	graph  *CallGraph
	facts  *Facts
}

// NewProgram loads every listed package into one analysis program.
// Duplicate paths are loaded once.
func NewProgram(ld *Loader, paths []string) (*Program, error) {
	prog := &Program{Loader: ld, byPath: make(map[string]*Package), facts: NewFacts()}
	seen := make(map[string]bool)
	sorted := append([]string(nil), paths...)
	sort.Strings(sorted)
	for _, path := range sorted {
		if seen[path] {
			continue
		}
		seen[path] = true
		pkg, err := ld.Load(path)
		if err != nil {
			return nil, err
		}
		if len(pkg.TypeErrors) > 0 {
			prog.Broken = append(prog.Broken, pkg)
			continue
		}
		prog.Pkgs = append(prog.Pkgs, pkg)
		prog.byPath[path] = pkg
	}
	return prog, nil
}

// Package returns the type-checked package at path, or nil.
func (prog *Program) Package(path string) *Package { return prog.byPath[path] }

// Facts returns the program's cross-package fact store.
func (prog *Program) Facts() *Facts { return prog.facts }

// CallGraph returns the program's conservative static call graph, building
// it on first use.
func (prog *Program) CallGraph() *CallGraph {
	if prog.graph == nil {
		prog.graph = buildCallGraph(prog)
	}
	return prog.graph
}

// LookupFunc resolves a function or method in the program: pkgPath.name for
// a package function (typeName empty), or the method name on type typeName
// (value or pointer receiver). Returns nil if the package is not in the
// program or the object does not exist.
func (prog *Program) LookupFunc(pkgPath, typeName, name string) *types.Func {
	pkg := prog.byPath[pkgPath]
	if pkg == nil || pkg.Types == nil {
		return nil
	}
	scope := pkg.Types.Scope()
	if typeName == "" {
		f, _ := scope.Lookup(name).(*types.Func)
		return f
	}
	tn, _ := scope.Lookup(typeName).(*types.TypeName)
	if tn == nil {
		return nil
	}
	obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(tn.Type()), true, pkg.Types, name)
	f, _ := obj.(*types.Func)
	if f != nil {
		return originFunc(f)
	}
	return nil
}

// Run applies the analyzers to the program: every analyzer's Collect phase
// runs over every package first (publishing facts), then the Run phase
// reports diagnostics for the packages named in reportPaths (all packages
// when empty). Suppression comments are honored.
func (prog *Program) Run(analyzers []*Analyzer, reportPaths ...string) []Diagnostic {
	return prog.run(analyzers, reportPaths, true)
}

// RunUnsuppressed is Run with //oltpvet:allow comments ignored: every raw
// diagnostic is returned. The clean-repo pin uses it so a suppression can
// never hide a finding from the analyzers whose zero-findings state is a
// committed invariant.
func (prog *Program) RunUnsuppressed(analyzers []*Analyzer, reportPaths ...string) []Diagnostic {
	return prog.run(analyzers, reportPaths, false)
}

func (prog *Program) run(analyzers []*Analyzer, reportPaths []string, suppressed bool) []Diagnostic {
	var diags []Diagnostic
	pass := func(pkg *Package, a *Analyzer, phase func(*Pass)) {
		phase(&Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Path:     pkg.Path,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Files:    pkg.Files,
			Prog:     prog,
			diags:    &diags,
		})
	}
	for _, pkg := range prog.Pkgs {
		for _, a := range analyzers {
			if a.Collect != nil {
				pass(pkg, a, a.Collect)
			}
		}
	}
	report := prog.Pkgs
	if len(reportPaths) > 0 {
		report = nil
		for _, path := range reportPaths {
			if pkg := prog.byPath[path]; pkg != nil {
				report = append(report, pkg)
			}
		}
	}
	var out []Diagnostic
	for _, pkg := range report {
		diags = diags[:0]
		for _, a := range analyzers {
			if a.Run != nil {
				pass(pkg, a, a.Run)
			}
		}
		if suppressed {
			out = append(out, suppress(pkg, diags)...)
		} else {
			out = append(out, diags...)
		}
	}
	sortDiagnostics(out)
	return out
}

// Fact is one piece of cross-package knowledge an analyzer published.
type Fact struct {
	// Analyzer is the publishing analyzer's name.
	Analyzer string
	// Pkg is the import path of the package the fact describes.
	Pkg string
	// Key distinguishes facts within one (analyzer, package).
	Key string
	// Value is the payload; consumers type-assert it.
	Value any
}

// Facts is the program-wide fact store: analyzers publish facts about
// their package during the Collect phase and query facts from every
// package during the Run phase — the same split go/analysis uses, so an
// analyzer never observes a partially populated store.
type Facts struct {
	facts []Fact
	index map[string]int
}

// NewFacts returns an empty store.
func NewFacts() *Facts { return &Facts{index: make(map[string]int)} }

func factKey(analyzer, pkg, key string) string {
	return fmt.Sprintf("%s\x00%s\x00%s", analyzer, pkg, key)
}

// Publish records a fact, overwriting any previous value under the same
// (analyzer, pkg, key).
func (f *Facts) Publish(analyzer, pkg, key string, value any) {
	k := factKey(analyzer, pkg, key)
	if i, ok := f.index[k]; ok {
		f.facts[i].Value = value
		return
	}
	f.index[k] = len(f.facts)
	f.facts = append(f.facts, Fact{Analyzer: analyzer, Pkg: pkg, Key: key, Value: value})
}

// Lookup returns the fact under (analyzer, pkg, key).
func (f *Facts) Lookup(analyzer, pkg, key string) (any, bool) {
	if i, ok := f.index[factKey(analyzer, pkg, key)]; ok {
		return f.facts[i].Value, true
	}
	return nil, false
}

// All returns every fact the named analyzer published, in a deterministic
// (pkg, key) order.
func (f *Facts) All(analyzer string) []Fact {
	var out []Fact
	for _, ft := range f.facts {
		if ft.Analyzer == analyzer {
			out = append(out, ft)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pkg != out[j].Pkg {
			return out[i].Pkg < out[j].Pkg
		}
		return out[i].Key < out[j].Key
	})
	return out
}
