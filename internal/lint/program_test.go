package lint

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// progFixture loads one fixture package into a whole-program pass.
func progFixture(t *testing.T, name string) (*Program, string) {
	t.Helper()
	ld := testLoader(t)
	path := fixturePrefix + name
	prog, err := NewProgram(ld, []string{path})
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range prog.Broken {
		t.Fatalf("fixture %s does not type-check: %v", pkg.Path, pkg.TypeErrors)
	}
	if prog.Package(path) == nil {
		t.Fatalf("fixture %s missing from program", path)
	}
	return prog, path
}

// checkProgFixture runs analyzers over a fixture through the Program driver
// and matches diagnostics against want comments the same way checkFixture
// does. extra lists substrings of diagnostics expected on lines a want
// comment cannot sit on (the annotation scanner reports bare markers on
// their own comment line); each must fire exactly once.
func checkProgFixture(t *testing.T, name string, analyzers []*Analyzer, extra ...string) {
	t.Helper()
	prog, path := progFixture(t, name)
	wants := wantsOf(prog.Package(path))
	for _, d := range prog.Run(analyzers, path) {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		matched := false
		rest := wants[key][:0:0]
		for _, w := range wants[key] {
			if !matched && strings.Contains(d.Message, w) {
				matched = true
				continue
			}
			rest = append(rest, w)
		}
		wants[key] = rest
		if !matched {
			for i, e := range extra {
				if e != "" && strings.Contains(d.Message, e) {
					extra[i] = ""
					matched = true
					break
				}
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			t.Errorf("%s: expected diagnostic matching %q did not fire", key, w)
		}
	}
	for _, e := range extra {
		if e != "" {
			t.Errorf("expected diagnostic matching %q did not fire", e)
		}
	}
}

// TestSnapshotCompleteFixture is the table of field rules: omitted fields
// fire (including through an empty composite literal), transitive and
// promoted references cover, derived exempts, a stale derived annotation
// and a lone pair half are themselves diagnostics, and a bare derived
// marker both exempts nothing and is reported.
func TestSnapshotCompleteFixture(t *testing.T) {
	checkProgFixture(t, "snapshotcomplete", []*Analyzer{NewSnapshotComplete()},
		"//oltpvet:derived needs a reason")
}

// TestSnapshotCompleteFacts pins what the fixture run publishes: a pair
// fact for every verified pair (the lone Half and the non-snapshot Emitter
// excluded) and the single derived exemption.
func TestSnapshotCompleteFacts(t *testing.T) {
	prog, path := progFixture(t, "snapshotcomplete")
	prog.Run([]*Analyzer{NewSnapshotComplete()}, path)
	if _, ok := prog.Facts().Lookup(snapshotCompleteName, path, "derived:Machine.memo"); !ok {
		t.Error("derived exemption for Machine.memo was not published as a fact")
	}
	var pairs []string
	for _, f := range prog.Facts().All(snapshotCompleteName) {
		if p, ok := f.Value.(SnapPairFact); ok {
			pairs = append(pairs, p.Type)
		}
	}
	want := []string{"Bare", "Container", "Lit", "Machine", "Wrap", "Zeroed"}
	if !reflect.DeepEqual(pairs, want) {
		t.Errorf("verified pairs = %v, want %v", pairs, want)
	}
}

// TestMapOrderFixture checks sink-flow scoping and the two laundering
// idioms; snapshotcomplete runs alongside so pair methods register as sinks
// through the fact store.
func TestMapOrderFixture(t *testing.T) {
	checkProgFixture(t, "maporder",
		[]*Analyzer{NewSnapshotComplete(), NewMapOrder(DefaultMapOrderSinks)})
}

// TestHotPathAllocFixture checks every flagged construct class and every
// deliberate exemption, with the fixture's own System.Step as the root.
func TestHotPathAllocFixture(t *testing.T) {
	root := HotRoot{Pkg: fixturePrefix + "hotpathalloc", Type: "System", Method: "Step"}
	checkProgFixture(t, "hotpathalloc", []*Analyzer{NewHotPathAlloc([]HotRoot{root})})
}

// TestHotPathColdpathFact pins the coldpath exemption fact the fixture
// publishes.
func TestHotPathColdpathFact(t *testing.T) {
	prog, path := progFixture(t, "hotpathalloc")
	root := HotRoot{Pkg: path, Type: "System", Method: "Step"}
	prog.Run([]*Analyzer{NewHotPathAlloc([]HotRoot{root})}, path)
	v, ok := prog.Facts().Lookup(hotPathAllocName, path, "coldpath:System.debug")
	if !ok {
		t.Fatal("coldpath exemption for System.debug was not published as a fact")
	}
	if reason, _ := v.(string); !strings.Contains(reason, "excluded") {
		t.Errorf("coldpath fact carries reason %q, want the annotation's reason", v)
	}
}

// TestSnapshotMutation is the detection guarantee behind the clean-repo
// pin: a copy of the real cache.VictimBuffer pair with the replacement
// cursor's serialization deleted must be caught.
func TestSnapshotMutation(t *testing.T) {
	checkProgFixture(t, "mutation", []*Analyzer{NewSnapshotComplete()})
}

// TestGenericsFixture is the loader edge case: generic types and functions
// must type-check and pass the whole suite quietly — the Stack snapshot
// pair is audited on its origin type, and type parameters are exempt from
// boxing judgments.
func TestGenericsFixture(t *testing.T) {
	checkProgFixture(t, "generics", All())
}

// TestCallGraphResolution checks the conservative resolution rules on the
// callgraph fixture: interface calls reach every implementation (value and
// pointer receivers), method values taken as callbacks resolve through the
// dynamic call in apply, function literals connect to their callees, and a
// function that is neither called nor taken stays unreachable.
func TestCallGraphResolution(t *testing.T) {
	prog, path := progFixture(t, "callgraph")
	g := prog.CallGraph()
	entryFn := prog.LookupFunc(path, "", "Entry")
	if entryFn == nil {
		t.Fatal("Entry not found")
	}
	entry := g.NodeOf(entryFn)
	if entry == nil {
		t.Fatal("Entry has no call-graph node")
	}
	reach := g.ReachableFrom([]*Node{entry}, nil)
	check := func(typeName, name string, want bool) {
		t.Helper()
		fn := prog.LookupFunc(path, typeName, name)
		if fn == nil {
			t.Fatalf("%s.%s not found in fixture", typeName, name)
		}
		n := g.NodeOf(fn)
		if got := n != nil && reach[n]; got != want {
			t.Errorf("reachable(Entry -> %s.%s) = %v, want %v", typeName, name, got, want)
		}
	}
	check("Direct", "Run", true)
	check("Indirect", "Run", true)
	check("helper", "bump", true)
	check("", "callback", true)
	check("", "apply", true)
	check("", "leafLit", true)
	check("", "unused", false)
}

// TestContractAnalyzersPinned is the zero-suppression pin for the contract
// analyzers: over the whole module they must be clean with suppression
// comments ignored, and every exemption they publish — derived fields,
// coldpath functions, verified snapshot pairs — is enumerated exactly, so
// adding one is a conscious edit here, not a silent escape.
func TestContractAnalyzersPinned(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	ld := testLoader(t)
	paths, err := ld.Expand([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := NewProgram(ld, paths)
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range prog.Broken {
		t.Fatalf("%s does not type-check: %v", pkg.Path, pkg.TypeErrors)
	}
	analyzers := []*Analyzer{
		NewSnapshotComplete(),
		NewMapOrder(DefaultMapOrderSinks),
		NewHotPathAlloc(DefaultHotRoots),
	}
	for _, d := range prog.RunUnsuppressed(analyzers) {
		t.Errorf("contract analyzers must hold without suppression: %s", d)
	}

	var derived, pairs []string
	for _, f := range prog.Facts().All(snapshotCompleteName) {
		switch {
		case strings.HasPrefix(f.Key, "derived:"):
			derived = append(derived, f.Pkg+" "+strings.TrimPrefix(f.Key, "derived:"))
		case strings.HasPrefix(f.Key, "pair:"):
			pairs = append(pairs, f.Pkg+" "+strings.TrimPrefix(f.Key, "pair:"))
		}
	}
	var coldpath []string
	for _, f := range prog.Facts().All(hotPathAllocName) {
		if strings.HasPrefix(f.Key, "coldpath:") {
			coldpath = append(coldpath, f.Pkg+" "+strings.TrimPrefix(f.Key, "coldpath:"))
		}
	}

	wantDerived := []string{
		"oltpsim/internal/core System.eng",
		"oltpsim/internal/core System.ffSteps",
		"oltpsim/internal/core System.heap",
		"oltpsim/internal/core System.noFF",
		"oltpsim/internal/core System.pos",
		"oltpsim/internal/core System.stepWorkers",
		"oltpsim/internal/kernel Scheduler.nextID",
		"oltpsim/internal/tpcb BufferPool.blockToFrame",
	}
	if !reflect.DeepEqual(derived, wantDerived) {
		t.Errorf("derived exemptions = %v, want %v", derived, wantDerived)
	}
	wantColdpath := []string{"oltpsim/internal/cache Classifier.Observe"}
	if !reflect.DeepEqual(coldpath, wantColdpath) {
		t.Errorf("coldpath exemptions = %v, want %v", coldpath, wantColdpath)
	}
	wantPairs := []string{
		"oltpsim/internal/cache Cache",
		"oltpsim/internal/cache VictimBuffer",
		"oltpsim/internal/coherence Directory",
		"oltpsim/internal/core System",
		"oltpsim/internal/cpu Breakdown",
		"oltpsim/internal/cpu InOrder",
		"oltpsim/internal/cpu OOO",
		"oltpsim/internal/kernel Scheduler",
		"oltpsim/internal/mem Controller",
		"oltpsim/internal/noc Network",
		"oltpsim/internal/oltp Harness",
		"oltpsim/internal/rac RAC",
		"oltpsim/internal/sim RNG",
		"oltpsim/internal/stats MissTable",
		"oltpsim/internal/stats RunResult",
		"oltpsim/internal/tpcb BufferPool",
		"oltpsim/internal/tpcb CodeFn",
		"oltpsim/internal/tpcb Engine",
		"oltpsim/internal/tpcb RedoLog",
		"oltpsim/internal/tpcb Session",
	}
	if !reflect.DeepEqual(pairs, wantPairs) {
		t.Errorf("verified snapshot pairs = %v, want %v", pairs, wantPairs)
	}
}
