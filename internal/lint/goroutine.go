package lint

import (
	"go/ast"
	"path/filepath"
	"strings"
)

// ApprovedGoroutineFiles are the only files under internal/ allowed to start
// goroutines. Everything the simulator computes must be a pure function of
// configuration and seed, and the files below are the only places where
// concurrency has a proven determinism argument:
//
//   - internal/core/shard.go: the epoch-sharded stepping engine, whose
//     barrier protocol guarantees parallel phases execute exactly the
//     serial-order prefix (see DESIGN.md, "Event-queue core");
//   - internal/core/epochpool.go: that engine's persistent worker pool —
//     the goroutines are dumb executors of the engine's phases, created and
//     retired inside one RunUntil, synchronized by the same barrier;
//   - internal/experiments/runner.go: the experiment worker pool, which
//     parallelizes across independent System instances that share no
//     mutable state;
//   - internal/server/queue.go: the job server's worker pool, which only
//     decides which wall-clock moment a job runs at — each job's results
//     remain a pure function of (config, seed), so scheduling cannot
//     change output (pinned by the server lifecycle tests).
//
// A `go` statement anywhere else under internal/ is an unreviewed
// concurrency seam and is reported.
var ApprovedGoroutineFiles = []string{
	"internal/core/shard.go",
	"internal/core/epochpool.go",
	"internal/experiments/runner.go",
	"internal/server/queue.go",
}

// NewGoroutineDiscipline returns the goroutine-discipline analyzer: inside
// internal/ packages, `go` statements may appear only in the approved files.
// approved entries are slash-separated path suffixes matched against the
// file the statement appears in.
func NewGoroutineDiscipline(approved []string) *Analyzer {
	a := &Analyzer{
		Name: "goroutine",
		Doc: "forbid `go` statements under internal/ outside the approved concurrency\n" +
			"seams (the epoch-sharded stepping engine and the experiment worker pool);\n" +
			"ad-hoc goroutines are how nondeterminism and data races enter a simulator",
	}
	a.Run = func(pass *Pass) {
		if !pass.Internal() {
			return
		}
		for _, f := range pass.Files {
			name := filepath.ToSlash(pass.Fset.Position(f.Pos()).Filename)
			if approvedGoroutineFile(name, approved) {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					pass.Reportf(g.Pos(), "go statement outside the approved concurrency seams; deterministic parallelism belongs in the epoch scheduler (internal/core/shard.go) or the experiment runner pool")
				}
				return true
			})
		}
	}
	return a
}

func approvedGoroutineFile(name string, approved []string) bool {
	for _, suffix := range approved {
		if name == suffix || strings.HasSuffix(name, "/"+suffix) {
			return true
		}
	}
	return false
}
