package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NewZeroGuard returns the zeroguard analyzer. Every normalized metric in
// this codebase is a ratio of counters — cycles per transaction, misses per
// transaction, hit rates — and a counter can legitimately be zero (a
// zero-transaction warmup window, a RAC that was never probed). A division
// `float64(a)/float64(b)` whose denominator is a counter field or counter
// accessor silently turns that into ±Inf or NaN and poisons every figure
// downstream, so each such division must be dominated by a zero test of the
// same denominator (the `stats.safeDiv` pattern).
//
// Detection is deliberately narrow: the denominator must be a float64
// conversion of a field selector (`x.Count`) or a no-argument accessor on a
// selector chain (`x.Miss.Total()`). Local variables are exempt — guarding
// those is visible at a glance — and a textually identical comparison
// against zero anywhere earlier in the same function counts as the
// dominating test (early-return guards and enclosing ifs both match).
func NewZeroGuard() *Analyzer {
	a := &Analyzer{
		Name: "zeroguard",
		Doc: "require a dominating zero test on float64(a)/float64(b) divisions whose\n" +
			"denominator is a counter field or accessor; unguarded ratios turn a legal\n" +
			"zero counter into Inf/NaN that poisons every downstream figure",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if ok && fd.Body != nil {
					checkFuncDivisions(pass, fd)
				}
			}
		}
	}
	return a
}

func checkFuncDivisions(pass *Pass, fd *ast.FuncDecl) {
	// Collect zero-comparisons: the textual form of the non-zero operand,
	// with the position of the comparison.
	type guard struct {
		expr string
		pos  token.Pos
	}
	var guards []guard
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.EQL, token.NEQ, token.GTR, token.LSS, token.GEQ, token.LEQ:
		default:
			return true
		}
		if isZero(pass, be.Y) {
			guards = append(guards, guard{types.ExprString(ast.Unparen(be.X)), be.Pos()})
		} else if isZero(pass, be.X) {
			guards = append(guards, guard{types.ExprString(ast.Unparen(be.Y)), be.Pos()})
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || be.Op != token.QUO {
			return true
		}
		den := floatConversionArg(pass, be.Y)
		if den == nil || !isCounterExpr(den) {
			return true
		}
		want := types.ExprString(den)
		for _, g := range guards {
			if g.expr == want && g.pos < be.Pos() {
				return true
			}
		}
		pass.Reportf(be.Pos(), "division by %s has no dominating zero test; guard it or use the stats.safeDiv pattern", want)
		return true
	})
}

// floatConversionArg returns the operand of a float64(...) conversion, or
// nil if e is not one.
func floatConversionArg(pass *Pass, e ast.Expr) ast.Expr {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return nil
	}
	tv, ok := pass.Info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return nil
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	if !ok || b.Kind() != types.Float64 {
		return nil
	}
	return ast.Unparen(call.Args[0])
}

// isCounterExpr reports whether e reads a counter: a field selector or a
// no-argument method call on a selector chain.
func isCounterExpr(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.SelectorExpr:
		return true
	case *ast.CallExpr:
		if len(x.Args) != 0 {
			return false
		}
		_, ok := x.Fun.(*ast.SelectorExpr)
		return ok
	}
	return false
}

// isZero reports whether e is the constant 0.
func isZero(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	return tv.Value.String() == "0"
}
