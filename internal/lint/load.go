package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package ready for analysis.
type Package struct {
	// Path is the import path ("oltpsim/internal/sim").
	Path string
	// Dir is the directory the sources were read from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors holds any type-checking errors. Analysis over a package
	// with type errors is unreliable, so the driver refuses to vet one.
	TypeErrors []error
}

// Loader parses and type-checks packages of one module from source, with no
// dependency on the go command or golang.org/x/tools. Imports inside the
// module resolve by mapping the import path under the module root; standard
// library imports resolve through the stdlib source importer.
type Loader struct {
	// ModPath is the module path from go.mod ("oltpsim").
	ModPath string
	// ModDir is the absolute module root.
	ModDir string

	fset *token.FileSet
	std  types.Importer
	pkgs map[string]*Package
}

// NewLoader builds a loader for the module rooted at or above dir.
func NewLoader(dir string) (*Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModPath: modPath,
		ModDir:  root,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
	}, nil
}

// findModule walks up from dir to the first go.mod and returns the module
// root and module path.
func findModule(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// dirFor maps an import path inside the module to its source directory.
func (l *Loader) dirFor(path string) (string, bool) {
	if path == l.ModPath {
		return l.ModDir, true
	}
	if rest, ok := strings.CutPrefix(path, l.ModPath+"/"); ok {
		return filepath.Join(l.ModDir, filepath.FromSlash(rest)), true
	}
	return "", false
}

// Load parses and type-checks the package at the given module-internal
// import path, caching the result.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	dir, ok := l.dirFor(path)
	if !ok {
		return nil, fmt.Errorf("lint: %s is outside module %s", path, l.ModPath)
	}
	names, err := goSources(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go source files in %s", dir)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.fset}
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, f)
	}
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Check returns the (possibly incomplete) package even on error; the
	// collected TypeErrors carry the details.
	pkg.Types, _ = conf.Check(path, l.fset, pkg.Files, pkg.Info)
	l.pkgs[path] = pkg
	return pkg, nil
}

// Import implements types.Importer so module-internal packages can depend on
// each other during type checking.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, ok := l.dirFor(path); ok {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		if len(p.TypeErrors) > 0 {
			return nil, fmt.Errorf("lint: %s: %v", path, p.TypeErrors[0])
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// Expand resolves command-line package patterns to import paths. Supported
// forms: "./..." (the whole module), "dir/..." (a subtree), and plain
// directories. Directories named testdata or vendor and hidden directories
// are skipped, as are directories with no non-test Go files.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	add := func(path string) {
		if !seen[path] {
			seen[path] = true
			out = append(out, path)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "" || pat == "." {
				pat = "."
			}
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(l.ModDir, dir)
		}
		dir = filepath.Clean(dir)
		rel, err := filepath.Rel(l.ModDir, dir)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("lint: pattern %q is outside the module", pat)
		}
		if !recursive {
			names, err := goSources(dir)
			if err != nil {
				return nil, err
			}
			if len(names) == 0 {
				return nil, fmt.Errorf("lint: no Go source files in %s", dir)
			}
			add(importPathFor(l.ModPath, rel))
			continue
		}
		err = filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != dir && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			names, err := goSources(p)
			if err != nil {
				return err
			}
			if len(names) > 0 {
				rel, err := filepath.Rel(l.ModDir, p)
				if err != nil {
					return err
				}
				add(importPathFor(l.ModPath, rel))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(out)
	return out, nil
}

func importPathFor(modPath, rel string) string {
	if rel == "." {
		return modPath
	}
	return modPath + "/" + filepath.ToSlash(rel)
}

// goSources lists the non-test Go files of dir in sorted order.
func goSources(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}
