package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DefaultMapOrderSinks are the packages whose functions count as
// observation points for map iteration order: anything formatted, written,
// accumulated into statistics, or serialized escapes into output the
// determinism contract covers byte-for-byte.
var DefaultMapOrderSinks = []string{
	"fmt",
	"io",
	"os",
	"encoding/json",
	"encoding/csv",
	StatsPkgPath,
	SnapshotPkgPath,
}

const mapOrderName = "maporder"

// NewMapOrder builds the map-order analyzer: it flags `range` over a map in
// any function whose results can flow to stats, output, or serialization.
// Go randomizes map iteration order per run, so such a range is the
// canonical nondeterminism leak the per-file determinism analyzer cannot
// see — the map is fine, the iteration is fine, only the combination with
// an order-sensitive consumer is a bug.
//
// "Flows to" is scoped with the program call graph: a function is in scope
// if it can reach a sink (it feeds output directly) or is callable from a
// sink-reaching function (its results flow upward into one). Sinks are the
// functions of the sink packages plus every snapshot pair method published
// by snapshotcomplete through the fact store.
//
// Two shapes stay quiet because they launder the order away:
//
//   - collect-then-sort: the loop body only appends to a slice that the
//     same function later passes to sort or slices;
//   - commutative accumulation: every statement in the body is an
//     integer += / ++ style fold or a write into another map keyed by the
//     loop key — order-independent by construction.
func NewMapOrder(sinkPkgs []string) *Analyzer {
	mo := &mapOrder{sinks: sinkPkgs}
	return &Analyzer{
		Name: mapOrderName,
		Doc: "no range over a map in functions whose results flow to stats, " +
			"output, or serialization; iterate sorted keys instead",
		Run: mo.run,
	}
}

type mapOrder struct {
	sinks []string

	scopeProg *Program
	scope     map[*Node]bool
}

// scopeFor computes (once per program) the set of functions whose results
// can flow to a sink.
func (mo *mapOrder) scopeFor(prog *Program) map[*Node]bool {
	if mo.scopeProg == prog {
		return mo.scope
	}
	sinkPkg := make(map[string]bool, len(mo.sinks))
	for _, p := range mo.sinks {
		sinkPkg[p] = true
	}
	g := prog.CallGraph()
	var sinks []*Node
	for _, n := range g.Nodes() {
		if n.Fn != nil && n.Fn.Pkg() != nil && sinkPkg[n.Fn.Pkg().Path()] {
			sinks = append(sinks, n)
		}
	}
	for _, f := range prog.Facts().All(snapshotCompleteName) {
		pair, ok := f.Value.(SnapPairFact)
		if !ok {
			continue
		}
		for _, method := range []string{pair.Save, pair.Load} {
			if fn := prog.LookupFunc(f.Pkg, pair.Type, method); fn != nil {
				if n := g.NodeOf(fn); n != nil {
					sinks = append(sinks, n)
				}
			}
		}
	}
	feeders := g.Reaching(sinks, nil)
	roots := make([]*Node, 0, len(feeders))
	for _, n := range g.Nodes() {
		if feeders[n] {
			roots = append(roots, n)
		}
	}
	mo.scopeProg, mo.scope = prog, g.ReachableFrom(roots, nil)
	return mo.scope
}

func (mo *mapOrder) run(pass *Pass) {
	if pass.Prog == nil {
		return
	}
	scope := mo.scopeFor(pass.Prog)
	for _, n := range pass.Prog.CallGraph().Nodes() {
		if !scope[n] || n.Pkg == nil || n.Pkg.Path != pass.Path {
			continue
		}
		body := n.Body()
		if body == nil {
			continue
		}
		info := n.Pkg.Info
		// Nested literals are their own nodes (and in scope whenever their
		// creator is), so each range statement is scanned exactly once.
		inspectOwn(n, func(x ast.Node) {
			rs, ok := x.(*ast.RangeStmt)
			if !ok {
				return
			}
			t := info.TypeOf(rs.X)
			if t == nil {
				return
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return
			}
			if mo.collectThenSort(info, n, rs) || commutativeBody(info, rs) {
				return
			}
			pass.Reportf(rs.For,
				"range over map %s in a function whose results flow to stats, output, or serialization; iterate sorted keys (map order is randomized per run)",
				types.ExprString(rs.X))
		})
	}
}

// inspectOwn walks a node's own body, not descending into nested function
// literals (they are separate call-graph nodes).
func inspectOwn(n *Node, f func(ast.Node)) {
	root := n.Body()
	ast.Inspect(root, func(x ast.Node) bool {
		if lit, ok := x.(*ast.FuncLit); ok && lit != n.Lit {
			return false
		}
		if x != nil {
			f(x)
		}
		return true
	})
}

// collectThenSort recognizes the canonical deterministic-iteration idiom:
//
//	for k := range m { keys = append(keys, k) }
//	sort.Slice(keys, ...)
//
// The body must be a single self-append of the loop key, and the enclosing
// function must pass the slice to the sort or slices package afterwards.
func (mo *mapOrder) collectThenSort(info *types.Info, n *Node, rs *ast.RangeStmt) bool {
	if len(rs.Body.List) != 1 {
		return false
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 || as.Tok != token.ASSIGN {
		return false
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return false
	}
	fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fn.Name != "append" {
		return false
	}
	if _, builtin := info.Uses[fn].(*types.Builtin); !builtin {
		return false
	}
	dst := info.ObjectOf(baseIdent(as.Lhs[0]))
	src := info.ObjectOf(baseIdent(call.Args[0]))
	if dst == nil || dst != src {
		return false
	}
	// Every appended value must be a loop variable (key, or key and value).
	keyObj := info.ObjectOf(baseIdent(rs.Key))
	var valObj types.Object
	if rs.Value != nil {
		valObj = info.ObjectOf(baseIdent(rs.Value))
	}
	for _, arg := range call.Args[1:] {
		obj := info.ObjectOf(baseIdent(arg))
		if obj == nil || (obj != keyObj && obj != valObj) {
			return false
		}
	}
	// The slice must reach the sort or slices package later in this
	// function.
	sorted := false
	inspectOwn(n, func(x ast.Node) {
		call, ok := x.(*ast.CallExpr)
		if !ok || sorted {
			return
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return
		}
		callee, _ := info.Uses[sel.Sel].(*types.Func)
		if callee == nil || callee.Pkg() == nil {
			return
		}
		if p := callee.Pkg().Path(); p != "sort" && p != "slices" {
			return
		}
		for _, arg := range call.Args {
			if info.ObjectOf(baseIdent(arg)) == dst {
				sorted = true
				return
			}
		}
	})
	return sorted
}

// commutativeBody reports whether every statement in the range body is an
// order-independent fold: integer compound assignment or increment, or an
// insert/delete into another map keyed by the (unique) loop key.
func commutativeBody(info *types.Info, rs *ast.RangeStmt) bool {
	if len(rs.Body.List) == 0 {
		return false
	}
	keyObj := info.ObjectOf(baseIdent(rs.Key))
	var stmts func(list []ast.Stmt) bool
	stmts = func(list []ast.Stmt) bool {
		for _, stmt := range list {
			switch st := stmt.(type) {
			case *ast.IncDecStmt:
				if !isIntegerExpr(info, st.X) {
					return false
				}
			case *ast.AssignStmt:
				if !commutativeAssign(info, st, keyObj) {
					return false
				}
			case *ast.ExprStmt:
				call, ok := st.X.(*ast.CallExpr)
				if !ok || !isBuiltinDelete(info, call) {
					return false
				}
				if len(call.Args) != 2 || keyObj == nil || info.ObjectOf(baseIdent(call.Args[1])) != keyObj {
					return false
				}
			case *ast.IfStmt:
				// A side-effect-free guard keeps a commutative body
				// commutative: each iteration's effect still depends only on
				// its own (unique) key and value.
				if st.Init != nil || hasCall(st.Cond) || !stmts(st.Body.List) {
					return false
				}
				if st.Else != nil {
					eb, ok := st.Else.(*ast.BlockStmt)
					if !ok || !stmts(eb.List) {
						return false
					}
				}
			default:
				return false
			}
		}
		return true
	}
	return stmts(rs.Body.List)
}

// hasCall reports whether the expression contains any call — the cheap
// proxy for "may have side effects".
func hasCall(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(x ast.Node) bool {
		if _, ok := x.(*ast.CallExpr); ok {
			found = true
		}
		return !found
	})
	return found
}

func commutativeAssign(info *types.Info, st *ast.AssignStmt, keyObj types.Object) bool {
	if len(st.Lhs) != 1 || len(st.Rhs) != 1 {
		return false
	}
	switch st.Tok {
	case token.ADD_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		// Commutative and associative only over integers: float addition
		// order changes the rounding, string += is pure concatenation order.
		return isIntegerExpr(info, st.Lhs[0])
	case token.ASSIGN:
		// m2[k] = v: the loop key is unique per iteration, so insertion
		// order cannot matter.
		ix, ok := ast.Unparen(st.Lhs[0]).(*ast.IndexExpr)
		if !ok {
			return false
		}
		if t := info.TypeOf(ix.X); t == nil {
			return false
		} else if _, isMap := t.Underlying().(*types.Map); !isMap {
			return false
		}
		return keyObj != nil && info.ObjectOf(baseIdent(ix.Index)) == keyObj
	}
	return false
}

func isIntegerExpr(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func isBuiltinDelete(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "delete" {
		return false
	}
	_, builtin := info.Uses[id].(*types.Builtin)
	return builtin
}
