package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotRoot names one entry point of the allocation-free hot path.
type HotRoot struct {
	Pkg    string
	Type   string // empty for a package-level function
	Method string
}

// DefaultHotRoots is the production hot path: everything reachable from the
// per-reference stepping loop, whose 0 allocs/op steady state is the PR-3
// benchmark invariant.
var DefaultHotRoots = []HotRoot{
	{Pkg: CorePkgPath, Type: "System", Method: "Step"},
}

const hotPathAllocName = "hotpathalloc"

// NewHotPathAlloc builds the hot-path allocation analyzer: it computes the
// set of functions reachable from the hot roots through the program call
// graph and flags allocation-prone constructs inside them, turning the
// "0 allocs/op" benchmark number into a reviewable static report that names
// the construct instead of just failing a counter.
//
// Flagged in hot functions:
//
//   - calls into fmt, and method calls on strings.Builder or bytes.Buffer
//     (formatting machinery allocates by design);
//   - append that can grow its backing array per step: appending to a slice
//     allocated in the same function, or an append whose result does not
//     feed back into its source. Self-append to long-lived state
//     (s.queue = append(s.queue, x)) stays quiet — growth is amortized;
//   - composite literals that allocate: &T{...}, and slice or map literals.
//     Plain struct values stay on the stack and stay quiet, as do make and
//     new — the hot path's capacity-gated doubling is amortized by the same
//     argument as self-append;
//   - implicit conversions to interface types that box the value: call
//     arguments, assignments, and returns where a non-pointer-shaped
//     non-constant value meets an interface. Pointer-shaped values
//     (pointers, maps, channels, funcs) fit in the interface word.
//
// Escape hatches are explicit: a function annotated
// `//oltpvet:coldpath <reason>` is excluded from the hot set and not
// expanded through (diagnostic-only instrumentation, crash dumps), and the
// arguments of panic are always exempt — by the time they evaluate, the
// run is already lost. Every coldpath annotation is published as a fact so
// the clean-repo pin counts the exemptions.
func NewHotPathAlloc(roots []HotRoot) *Analyzer {
	h := &hotPathAlloc{roots: roots}
	return &Analyzer{
		Name: hotPathAllocName,
		Doc: "no allocation-prone constructs in functions reachable from the " +
			"hot roots (core.System.Step)",
		Collect: h.collect,
		Run:     h.run,
	}
}

type hotPathAlloc struct {
	roots []HotRoot

	hotProg *Program
	hot     map[*Node]bool
}

// collect publishes every //oltpvet:coldpath annotation in the package as a
// fact, keyed by the annotated function, so exemptions are enumerable.
func (h *hotPathAlloc) collect(pass *Pass) {
	if pass.Prog == nil {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			reason, ok := funcAnnotation(fd, coldpathPrefix)
			if !ok || reason == "" {
				continue
			}
			name := fd.Name.Name
			if fn, _ := pass.Info.Defs[fd.Name].(*types.Func); fn != nil {
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
					if rn := namedType(sig.Recv().Type()); rn != nil {
						name = rn.Origin().Obj().Name() + "." + name
					}
				}
			}
			pass.Prog.Facts().Publish(hotPathAllocName, pass.Path, "coldpath:"+name, reason)
		}
	}
}

// hotFor computes (once per program) the coldpath-pruned hot set.
func (h *hotPathAlloc) hotFor(prog *Program) map[*Node]bool {
	if h.hotProg == prog {
		return h.hot
	}
	g := prog.CallGraph()
	var roots []*Node
	for _, r := range h.roots {
		if fn := prog.LookupFunc(r.Pkg, r.Type, r.Method); fn != nil {
			if n := g.NodeOf(fn); n != nil {
				roots = append(roots, n)
			}
		}
	}
	h.hotProg = prog
	h.hot = g.ReachableFrom(roots, func(n *Node) bool {
		// A coldpath annotation on a declaration also covers the literals it
		// creates: Node.Decl is the lexically enclosing declaration.
		reason, ok := funcAnnotation(n.Decl, coldpathPrefix)
		return ok && reason != ""
	})
	return h.hot
}

func (h *hotPathAlloc) run(pass *Pass) {
	if pass.Prog == nil {
		return
	}
	hot := h.hotFor(pass.Prog)
	for _, n := range pass.Prog.CallGraph().Nodes() {
		if !hot[n] || n.Pkg == nil || n.Pkg.Path != pass.Path || n.Body() == nil {
			continue
		}
		h.checkNode(pass, n)
	}
}

func (h *hotPathAlloc) checkNode(pass *Pass, n *Node) {
	info := n.Pkg.Info
	sig := nodeSignature(info, n)
	fresh := freshLocals(info, n)
	// quiet marks expressions a parent construct already judged: append
	// calls accepted as amortized self-appends, composite literals reported
	// once through their & operator.
	quiet := make(map[ast.Node]bool)

	var visit func(x ast.Node) bool
	visit = func(x ast.Node) bool {
		switch e := x.(type) {
		case *ast.FuncLit:
			// Nested literals are their own hot-set nodes.
			return false
		case *ast.AssignStmt:
			h.checkAssign(pass, info, e, fresh, quiet)
		case *ast.ReturnStmt:
			h.checkReturn(pass, info, sig, e)
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if lit, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
					pass.Reportf(e.Pos(), "&%s escapes to the heap in the hot path; reuse long-lived state",
						compactType(info, lit))
					quiet[lit] = true
				}
			}
		case *ast.CompositeLit:
			if quiet[e] {
				return true
			}
			if t := info.TypeOf(e); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					pass.Reportf(e.Pos(), "%s literal allocates its backing store in the hot path",
						compactType(info, e))
				}
			}
		case *ast.CallExpr:
			if isBuiltinNamed(info, e, "panic") {
				// The run is already lost when panic's arguments evaluate.
				return false
			}
			h.checkCall(pass, info, e, quiet)
		}
		return true
	}
	ast.Inspect(n.Body(), func(x ast.Node) bool {
		if x == nil {
			return false
		}
		return visit(x)
	})
}

func nodeSignature(info *types.Info, n *Node) *types.Signature {
	if n.Fn != nil {
		sig, _ := n.Fn.Type().(*types.Signature)
		return sig
	}
	if n.Lit != nil {
		sig, _ := info.TypeOf(n.Lit).(*types.Signature)
		return sig
	}
	return nil
}

// checkAssign judges append statements and interface-boxing assignments.
func (h *hotPathAlloc) checkAssign(pass *Pass, info *types.Info, st *ast.AssignStmt, fresh map[types.Object]bool, quiet map[ast.Node]bool) {
	for i, rhs := range st.Rhs {
		if len(st.Lhs) == len(st.Rhs) {
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isBuiltinNamed(info, call, "append") && len(call.Args) > 0 {
				if st.Tok == token.ASSIGN && selfAppend(st.Lhs[i], call) {
					base := baseIdent(st.Lhs[i])
					if base == nil || !fresh[info.ObjectOf(base)] {
						// Amortized growth of long-lived state: the allowed
						// idiom.
						quiet[call] = true
					}
				}
				continue
			}
			// Plain assignment into an existing interface-typed location
			// boxes the value. := infers the concrete type, so it cannot.
			if st.Tok == token.ASSIGN {
				h.checkBoxing(pass, info, info.TypeOf(st.Lhs[i]), rhs)
			}
		}
	}
}

// selfAppend reports whether the append's first operand (modulo reslicing,
// as in s.q[:0]) is syntactically the assignment target.
func selfAppend(lhs ast.Expr, call *ast.CallExpr) bool {
	src := ast.Unparen(call.Args[0])
	if sl, ok := src.(*ast.SliceExpr); ok {
		src = sl.X
	}
	return types.ExprString(ast.Unparen(lhs)) == types.ExprString(src)
}

func (h *hotPathAlloc) checkReturn(pass *Pass, info *types.Info, sig *types.Signature, st *ast.ReturnStmt) {
	if sig == nil || len(st.Results) != sig.Results().Len() {
		return
	}
	for i, res := range st.Results {
		h.checkBoxing(pass, info, sig.Results().At(i).Type(), res)
	}
}

func (h *hotPathAlloc) checkCall(pass *Pass, info *types.Info, call *ast.CallExpr, quiet map[ast.Node]bool) {
	// Explicit conversion T(x): only interface targets can allocate.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			h.checkBoxing(pass, info, tv.Type, call.Args[0])
		}
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, builtin := info.Uses[id].(*types.Builtin); builtin {
			if id.Name == "append" && !quiet[call] {
				pass.Reportf(call.Pos(),
					"append may grow its backing array each step in the hot path; reuse an amortized buffer (self-append to long-lived state)")
			}
			return
		}
	}
	callee := calleeFunc(info, call)
	if callee != nil && callee.Pkg() != nil {
		if callee.Pkg().Path() == "fmt" {
			pass.Reportf(call.Pos(), "fmt.%s formats and allocates in the hot path", callee.Name())
			return
		}
		if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
			if rn := namedType(sig.Recv().Type()); rn != nil && rn.Obj().Pkg() != nil {
				p, t := rn.Obj().Pkg().Path(), rn.Obj().Name()
				if (p == "strings" && t == "Builder") || (p == "bytes" && t == "Buffer") {
					pass.Reportf(call.Pos(), "%s.%s.%s builds strings on the heap in the hot path", p, t, callee.Name())
					return
				}
			}
		}
	}
	// Implicit interface conversions at the call boundary box their
	// arguments.
	sig, _ := info.TypeOf(call.Fun).(*types.Signature)
	if sig == nil || call.Ellipsis.IsValid() {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (i < params.Len() && !sig.Variadic()):
			pt = params.At(i).Type()
		case sig.Variadic():
			if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		}
		if pt != nil {
			h.checkBoxing(pass, info, pt, arg)
		}
	}
}

func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[f.Sel].(*types.Func)
		return fn
	}
	return nil
}

// checkBoxing reports an implicit conversion of expr to the interface type
// target when the conversion must box: the operand is a concrete,
// non-pointer-shaped, non-constant value. Constants stay quiet — small
// integers box allocation-free through the runtime's static table, and a
// constant at a call site is configuration, not per-step data.
func (h *hotPathAlloc) checkBoxing(pass *Pass, info *types.Info, target types.Type, expr ast.Expr) {
	if target == nil {
		return
	}
	if _, ok := target.(*types.TypeParam); ok {
		return
	}
	if !types.IsInterface(target) {
		return
	}
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil || tv.Value != nil || tv.IsNil() {
		return
	}
	at := tv.Type
	if types.IsInterface(at) || pointerShaped(at) {
		return
	}
	if _, ok := at.(*types.TypeParam); ok {
		return
	}
	pass.Reportf(expr.Pos(), "passing %s by value into interface %s boxes it on the heap in the hot path",
		types.TypeString(at, types.RelativeTo(nil)), types.TypeString(target, types.RelativeTo(nil)))
}

// pointerShaped reports whether values of t fit directly in an interface's
// data word without boxing.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

func isBuiltinNamed(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, builtin := info.Uses[id].(*types.Builtin)
	return builtin
}

// freshLocals collects the variables a node's own body allocates itself:
// declared here with a make, composite-literal, or zero/nil initializer.
// Appending to one of them grows storage born this call, so the growth is
// never amortized across steps.
func freshLocals(info *types.Info, n *Node) map[types.Object]bool {
	fresh := make(map[types.Object]bool)
	freshExpr := func(e ast.Expr) bool {
		switch x := ast.Unparen(e).(type) {
		case *ast.CompositeLit:
			return true
		case *ast.CallExpr:
			// make with an explicit capacity is pre-sized: appends bounded
			// by that capacity never grow it, so the author has stated the
			// bound and the allocation itself is judged where it happens.
			return isBuiltinNamed(info, x, "make") && len(x.Args) < 3
		case *ast.Ident:
			return x.Name == "nil" && info.Uses[x] == types.Universe.Lookup("nil")
		}
		return false
	}
	inspectOwn(n, func(x ast.Node) {
		switch st := x.(type) {
		case *ast.AssignStmt:
			if st.Tok != token.DEFINE || len(st.Lhs) != len(st.Rhs) {
				return
			}
			for i, lhs := range st.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if obj := info.Defs[id]; obj != nil && freshExpr(st.Rhs[i]) {
					fresh[obj] = true
				}
			}
		case *ast.ValueSpec:
			for i, id := range st.Names {
				obj := info.Defs[id]
				if obj == nil {
					continue
				}
				if len(st.Values) == 0 || (i < len(st.Values) && freshExpr(st.Values[i])) {
					fresh[obj] = true
				}
			}
		}
	})
	return fresh
}

// compactType renders a composite literal's type for a diagnostic.
func compactType(info *types.Info, lit *ast.CompositeLit) string {
	if t := info.TypeOf(lit); t != nil {
		return types.TypeString(t, types.RelativeTo(nil))
	}
	return "composite"
}
