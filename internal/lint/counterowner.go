package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// runResultCounters are the RunResult fields with conservation properties:
// monotone event counts that the figures and cross-checks sum, difference,
// and normalize. Derived values (rates, fractions, Name) are excluded.
var runResultCounters = map[string]bool{
	"Txns":          true,
	"Invalidations": true,
	"Writebacks":    true,
	"Stores":        true,
	"WriteInvalOps": true,
	"RACProbes":     true,
	"RACHits":       true,
	"L1IAccesses":   true,
	"L1IMisses":     true,
	"L1DAccesses":   true,
	"L1DMisses":     true,
	"L2Accesses":    true,
	"IdleCycles":    true,
}

// NewCounterOwner returns the counterowner analyzer for the stats types in
// ownerPkg. The figures depend on conservation properties — every L2 miss
// lands in exactly one MissTable category, RAC hits are a subset of local
// misses, per-node counters sum to the run totals. Those properties hold
// because mutation is funneled through a handful of accumulators
// (Count/CountUpgrade/CountRACHit/Add/AddNode); a stray `m.I[cat]++` or
// `res.Stores +=` elsewhere can double-count or skip a category without any
// test noticing. The analyzer therefore flags:
//
//   - any write to a MissTable field outside ownerPkg's Count*/Add* methods
//     (MissTable's accumulators are its complete mutation API), and
//   - accumulating writes (++, --, +=, -=, ...) to RunResult counter fields
//     outside those methods. Plain `=` stores remain legal everywhere:
//     result assembly such as `res.Invalidations = dir.Stats.Invalidations`
//     copies a total rather than accumulating one.
func NewCounterOwner(ownerPkg string) *Analyzer {
	a := &Analyzer{
		Name: "counterowner",
		Doc: "forbid writes to stats.MissTable fields and accumulating writes to\n" +
			"stats.RunResult counter fields outside the stats Count*/Add* accumulators;\n" +
			"ad-hoc counter mutation breaks the conservation properties the figures rely on",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if pass.Path == ownerPkg && isAccumulator(fd.Name.Name) {
					continue
				}
				checkCounterWrites(pass, ownerPkg, fd)
			}
		}
	}
	return a
}

func isAccumulator(name string) bool {
	return strings.HasPrefix(name, "Count") || strings.HasPrefix(name, "Add")
}

func checkCounterWrites(pass *Pass, ownerPkg string, fd *ast.FuncDecl) {
	check := func(e ast.Expr, accumulating bool, pos token.Pos) {
		// Unwrap index expressions so `m.I[cat]` resolves to the field I.
		e = ast.Unparen(e)
		if ix, ok := e.(*ast.IndexExpr); ok {
			e = ast.Unparen(ix.X)
		}
		sel, ok := e.(*ast.SelectorExpr)
		if !ok {
			return
		}
		s := pass.Info.Selections[sel]
		if s == nil || s.Kind() != types.FieldVal {
			return
		}
		field := s.Obj().Name()
		switch {
		case isPkgType(s.Recv(), ownerPkg, "MissTable"):
			pass.Reportf(pos, "MissTable.%s written outside the stats Count*/Add* accumulators; use Count, CountUpgrade, CountRACHit, or Add", field)
		case isPkgType(s.Recv(), ownerPkg, "RunResult") && accumulating && runResultCounters[field]:
			pass.Reportf(pos, "RunResult.%s accumulated outside the stats Count*/Add* accumulators; use AddNode or add an accumulator to stats", field)
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			accumulating := st.Tok != token.ASSIGN && st.Tok != token.DEFINE
			for _, lhs := range st.Lhs {
				check(lhs, accumulating, st.Pos())
			}
		case *ast.IncDecStmt:
			check(st.X, true, st.Pos())
		}
		return true
	})
}
