package lint

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// testLoader builds a loader rooted at this module. Loaders cache packages,
// so each test gets its own to keep fixtures independent.
func testLoader(t *testing.T) *Loader {
	t.Helper()
	ld, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	return ld
}

const fixturePrefix = "oltpsim/internal/lint/testdata/"

// loadFixture type-checks one fixture package and fails the test on any
// type error: a fixture that does not compile proves nothing.
func loadFixture(t *testing.T, ld *Loader, name string) *Package {
	t.Helper()
	pkg, err := ld.Load(fixturePrefix + name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("fixture %s does not type-check: %v", name, pkg.TypeErrors)
	}
	return pkg
}

var wantRe = regexp.MustCompile(`"([^"]*)"`)

// wantsOf extracts `// want "substring"` expectations from a fixture,
// keyed by file:line of the comment.
func wantsOf(pkg *Package) map[string][]string {
	wants := make(map[string][]string)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, m := range wantRe.FindAllStringSubmatch(rest, -1) {
					wants[key] = append(wants[key], m[1])
				}
			}
		}
	}
	return wants
}

// checkFixture runs the analyzers over the fixture and matches diagnostics
// against the want comments exactly: every diagnostic must be wanted, every
// want must fire.
func checkFixture(t *testing.T, pkg *Package, analyzers []*Analyzer) {
	t.Helper()
	wants := wantsOf(pkg)
	for _, d := range Run(pkg, analyzers) {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		matched := false
		rest := wants[key][:0:0]
		for _, w := range wants[key] {
			if !matched && strings.Contains(d.Message, w) {
				matched = true
				continue
			}
			rest = append(rest, w)
		}
		wants[key] = rest
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			t.Errorf("%s: expected diagnostic matching %q did not fire", key, w)
		}
	}
}

// TestAnalyzersOnFixtures is the table-driven failing-fixture suite: each
// analyzer must catch its target pattern (including the `Uint64() % n`
// regression that PR 1 fixed) and stay quiet on the legal variants beside
// it.
func TestAnalyzersOnFixtures(t *testing.T) {
	ownerFixture := fixturePrefix + "counterowner/counters"
	cases := []struct {
		fixture   string
		analyzers []*Analyzer
	}{
		{"determinism", []*Analyzer{NewDeterminism()}},
		{"rngdiscipline", []*Analyzer{NewRNGDiscipline(SimPkgPath)}},
		{"zeroguard", []*Analyzer{NewZeroGuard()}},
		{"counterowner/counters", []*Analyzer{NewCounterOwner(ownerFixture)}},
		{"counterowner", []*Analyzer{NewCounterOwner(ownerFixture)}},
		{"counterowner/real", []*Analyzer{NewCounterOwner(StatsPkgPath)}},
		{"goroutine", []*Analyzer{NewGoroutineDiscipline([]string{"testdata/goroutine/approved.go"})}},
	}
	ld := testLoader(t)
	for _, tc := range cases {
		t.Run(strings.ReplaceAll(tc.fixture, "/", "_"), func(t *testing.T) {
			checkFixture(t, loadFixture(t, ld, tc.fixture), tc.analyzers)
		})
	}
}

// TestAllowComments checks the suppression convention end to end: an inline
// allow comment, a standalone allow comment, and a marker inside a larger
// comment group each suppress one diagnostic (the group anchors on its own
// last line), while a bare allow (no reason) suppresses nothing and is
// itself reported, and a marker separated from the code by a blank line
// reaches nothing.
func TestAllowComments(t *testing.T) {
	ld := testLoader(t)
	pkg := loadFixture(t, ld, "allow")
	diags := Run(pkg, []*Analyzer{NewDeterminism()})
	if len(diags) != 3 {
		t.Fatalf("want exactly 3 diagnostics (bare allow + its unsuppressed time.Now + detached time.Now), got %d:\n%v", len(diags), diags)
	}
	if diags[0].Analyzer != "annotation" || !strings.Contains(diags[0].Message, "needs a reason") {
		t.Errorf("first diagnostic should report the bare allow comment, got %s", diags[0])
	}
	if diags[1].Analyzer != "determinism" || !strings.Contains(diags[1].Message, "time.Now") {
		t.Errorf("second diagnostic should be bare()'s unsuppressed time.Now, got %s", diags[1])
	}
	if diags[2].Analyzer != "determinism" || !strings.Contains(diags[2].Message, "time.Now") {
		t.Errorf("third diagnostic should be detached()'s time.Now past the blank line, got %s", diags[2])
	}
	// groupedMid's call must be suppressed: the marker sits mid-group and
	// anchors on the line after the group's end, not its own next line.
	for _, d := range diags {
		if d.Pos.Line > 20 && d.Pos.Line < 28 {
			t.Errorf("groupedMid's suppressed call leaked a diagnostic: %s", d)
		}
	}
}

// TestDeterminismScopedToInternal checks that the determinism analyzer
// ignores packages outside internal/: cmd and example binaries are
// configuration roots where reading flags or clocks is an explicit choice.
func TestDeterminismScopedToInternal(t *testing.T) {
	pass := &Pass{Path: "oltpsim/cmd/tpcb"}
	if pass.Internal() {
		t.Fatal("cmd/tpcb must not be in determinism scope")
	}
	pass = &Pass{Path: "oltpsim/internal/sim"}
	if !pass.Internal() {
		t.Fatal("internal/sim must be in determinism scope")
	}
}

// TestExpandSkipsTestdata checks pattern expansion: ./... covers the module
// but never descends into testdata (the fixtures intentionally fail).
func TestExpandSkipsTestdata(t *testing.T) {
	ld := testLoader(t)
	paths, err := ld.Expand([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for _, p := range paths {
		seen[p] = true
		if strings.Contains(p, "testdata") {
			t.Errorf("Expand descended into %s", p)
		}
	}
	for _, want := range []string{"oltpsim", "oltpsim/internal/sim", "oltpsim/internal/lint", "oltpsim/cmd/oltpvet"} {
		if !seen[want] {
			t.Errorf("Expand missed %s (got %d packages)", want, len(paths))
		}
	}
}

// TestRepoIsClean is the acceptance criterion as a regression test: the
// full analyzer suite over every package of the module must report
// nothing. The whole module loads into one Program so the call-graph
// analyzers see the same cross-package flows the oltpvet binary does.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	ld := testLoader(t)
	paths, err := ld.Expand([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := NewProgram(ld, paths)
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range prog.Broken {
		t.Fatalf("%s does not type-check: %v", pkg.Path, pkg.TypeErrors)
	}
	for _, d := range prog.Run(All()) {
		t.Errorf("%s", d)
	}
}

// TestNoSuppressionsUnderInternal pins the other acceptance criterion: the
// determinism and invariant contracts hold in internal/ without a single
// escape hatch. Fixture files under testdata are exempt — demonstrating the
// convention is their job.
func TestNoSuppressionsUnderInternal(t *testing.T) {
	ld := testLoader(t)
	root := filepath.Join(ld.ModDir, "internal")
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(p, ".go") || strings.HasSuffix(p, "_test.go") {
			return nil
		}
		// Apply exactly the rule the suppressor applies: a comment token
		// whose text starts with the allow prefix. Mentions inside doc
		// prose or string literals do not suppress and do not count.
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, p, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.HasPrefix(c.Text, allowPrefix) {
					t.Errorf("%s has a suppression; internal/ must satisfy the contracts without %s", fset.Position(c.Pos()), allowPrefix)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
