// Package oltp glues the functional TPC-B engine to the simulated machine:
// it lays every engine structure out in a NUMA address space, runs the
// Oracle-style process architecture (dedicated server processes, a log
// writer, a database writer) on the kernel scheduler, wraps transactions in
// the kernel activity around them (client pipes, semaphores, context
// switches, I/O), and streams the resulting memory references to the timing
// models. This is the workload side of the paper's methodology (Section 2):
// 8 server processes per processor, TPC-B against a >900 MB SGA, kernel
// activity around 25% of execution.
package oltp

import (
	"oltpsim/internal/kernel"
	"oltpsim/internal/memref"
	"oltpsim/internal/tpcb"
)

// Emitter converts engine-level operations into memref.Refs in the current
// process's segment buffer. It collapses consecutive references to the same
// line (they are guaranteed L1 hits and only slow the simulation), applies
// the code-replication address transform, and tags kernel-mode references.
type Emitter struct {
	out  *kernel.RefBuffer
	node int

	// Code replication: code addresses inside the arena are rebased to the
	// node-local copy.
	replicate bool
	arenaBase uint64
	arenaSize uint64

	kernelMode bool

	// Collapse state.
	lastLine  uint64
	lastStore bool
	lastValid bool
}

// SetOutput points the emitter at the segment buffer of the process about to
// run on node. It resets the collapse window (a context switch means the L1
// residency assumption no longer holds for "same line as last time").
func (e *Emitter) SetOutput(out *kernel.RefBuffer, node int) {
	e.out = out
	e.node = node
	e.lastValid = false
	e.kernelMode = false
}

// SetKernel toggles kernel-mode attribution for subsequent references.
func (e *Emitter) SetKernel(k bool) { e.kernelMode = k }

// Code implements tpcb.Emitter: it walks the function's fetch lines. The
// replication rebase is hoisted out of the per-line closure: a function's
// region is contiguous, so either every fetch line lands in the arena or
// none does (the allocator panics on arena overflow, so a region cannot
// straddle its end).
func (e *Emitter) Code(fn *tpcb.CodeFn) {
	kern := e.kernelMode || fn.Kernel
	var rebase uint64
	if e.replicate && fn.Base >= e.arenaBase && fn.Base < e.arenaBase+e.arenaSize {
		rebase = uint64(e.node) * e.arenaSize
	}
	out := e.out
	fn.Lines(func(addr uint64, instrs int) {
		out.Append(memref.Ref{
			Addr:   addr + rebase,
			Kind:   memref.IFetch,
			Kernel: kern,
			Instrs: uint16(instrs),
		})
	})
}

// Load implements tpcb.Emitter.
func (e *Emitter) Load(addr uint64, dep bool) {
	line := memref.LineOf(addr)
	if e.lastValid && line == e.lastLine {
		return // guaranteed L1 hit; skip for simulation speed
	}
	e.out.Append(memref.Ref{Addr: addr, Kind: memref.Load, Kernel: e.kernelMode, DepPrev: dep})
	e.lastLine, e.lastStore, e.lastValid = line, false, true
}

// Store implements tpcb.Emitter.
func (e *Emitter) Store(addr uint64, dep bool) {
	line := memref.LineOf(addr)
	if e.lastValid && line == e.lastLine && e.lastStore {
		return // consecutive store to the same line: guaranteed hit with rights
	}
	e.out.Append(memref.Ref{Addr: addr, Kind: memref.Store, Kernel: e.kernelMode, DepPrev: dep})
	e.lastLine, e.lastStore, e.lastValid = line, true, true
}
