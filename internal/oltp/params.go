package oltp

import (
	"fmt"

	"oltpsim/internal/scenario"
	"oltpsim/internal/tpcb"
)

// Params configures the workload harness.
type Params struct {
	// CPUs is the number of cores (matches core.Config.Processors).
	CPUs int
	// CoresPerChip groups cores onto chips; the address space then has
	// CPUs/CoresPerChip NUMA nodes (0 or 1 = one core per chip).
	CoresPerChip int
	// ServersPerCPU is the dedicated-server multiprogramming level (paper:
	// 8 per processor, to hide I/O latencies).
	ServersPerCPU int
	// Seed drives every random stream in the workload.
	Seed uint64
	// TPCB sizes the database.
	TPCB tpcb.Config
	// CodeReplication replicates instruction pages at every node (paper
	// Section 6's OS-based replication experiment).
	CodeReplication bool
	// Scenario, when non-nil, runs the time-varying workload schedule:
	// transaction mix, branch skew, and working-set scale switch per phase
	// at exact committed-transaction boundaries. Nil keeps today's
	// steady-state fixed-mix TPC-B, byte for byte.
	Scenario *scenario.Schedule
	// ScenarioBase is the committed-transaction count at which the
	// schedule's phase clock starts (normally the warmup length, so phase 0
	// also governs warmup).
	ScenarioBase uint64

	// LogIOCycles is the redo-log disk write latency (battery-backed
	// controller class device; group commit amortizes it).
	LogIOCycles uint64
	// LogIOPerKB adds transfer time per KB of gathered redo.
	LogIOPerKB uint64
	// DBWRSleepCycles is the database writer's wakeup period.
	DBWRSleepCycles uint64
	// DBWRBatch is how many dirty blocks one DBWR pass writes.
	DBWRBatch int
	// DBWRIOCycles is the DBWR write latency.
	DBWRIOCycles uint64
	// SchedQuantum is the scheduler time slice in references.
	SchedQuantum int
}

// DefaultParams returns the paper-fidelity workload for a machine size.
func DefaultParams(cpus int) Params {
	return Params{
		CPUs:            cpus,
		ServersPerCPU:   8,
		Seed:            0x5eed_0217_beef_cafe,
		TPCB:            tpcb.DefaultConfig(),
		LogIOCycles:     45_000,
		LogIOPerKB:      500,
		DBWRSleepCycles: 1_500_000,
		DBWRBatch:       64,
		DBWRIOCycles:    150_000,
		SchedQuantum:    40_000,
	}
}

// TestParams returns a scaled-down workload for unit tests: the small
// database and short I/O times keep test runs fast while exercising the same
// code paths.
func TestParams(cpus int) Params {
	p := DefaultParams(cpus)
	p.TPCB = tpcb.SmallConfig()
	p.LogIOCycles = 20_000
	p.DBWRSleepCycles = 300_000
	p.DBWRIOCycles = 30_000
	return p
}

// Validate reports parameter errors.
func (p Params) Validate() error {
	if p.CPUs <= 0 {
		return fmt.Errorf("oltp: CPUs must be positive")
	}
	if p.CoresPerChip < 0 || (p.CoresPerChip > 1 && p.CPUs%p.CoresPerChip != 0) {
		return fmt.Errorf("oltp: %d CPUs do not divide into chips of %d", p.CPUs, p.CoresPerChip)
	}
	if p.ServersPerCPU <= 0 {
		return fmt.Errorf("oltp: ServersPerCPU must be positive")
	}
	if p.SchedQuantum <= 0 {
		return fmt.Errorf("oltp: SchedQuantum must be positive")
	}
	return p.TPCB.Validate()
}
