package oltp

import (
	"oltpsim/internal/kernel"
	"oltpsim/internal/scenario"
	"oltpsim/internal/sim"
	"oltpsim/internal/tpcb"
)

// Transaction kinds a scenario phase can mix.
const (
	txnKindUpdate = iota
	txnKindRead
	txnKindScan
)

// scenarioCtl is the harness's compiled view of a scenario schedule: the
// schedule itself, the committed-transaction position its phase clock
// starts from, and one pre-built branch-Zipf sampler per skewed phase.
// Everything here is derived from Params at construction — the samplers
// are stateless and the schedule immutable — so scenario runs add no
// snapshot state to the harness.
type scenarioCtl struct {
	sched *scenario.Schedule
	base  uint64
	zipf  []*sim.Zipf // per phase; nil = uniform branch selection
}

func newScenarioCtl(sched *scenario.Schedule, base uint64, cfg *tpcb.Config) *scenarioCtl {
	c := &scenarioCtl{sched: sched, base: base, zipf: make([]*sim.Zipf, sched.NumPhases())}
	for i := range c.zipf {
		if sh := sched.Shape(i); sh.Skew > 0 && cfg.Branches > 1 {
			c.zipf[i] = sim.NewZipfCached(cfg.Branches, sh.Skew, cfg.Zeta)
		}
	}
	return c
}

// scenarioDraw picks the next transaction's kind and input for g under the
// schedule. The phase clock is the global committed-transaction counter
// relative to the scenario base, so every server switches parameters at the
// same exact commit boundary on every execution path (serial, sharded,
// fast-forward): commits retire one per scheduler step, and the draw below
// happens on the step after the counter advanced. Inside a ramp window one
// extra uniform draw per transaction interpolates between the previous and
// incoming phase's whole parameter set; outside ramps (and in mixless
// phases) the draw sequence is exactly the steady-state one.
func (h *Harness) scenarioDraw(g *serverGen) (kind int, in tpcb.TxnInput, scanBlocks int) {
	c := h.scn
	var pos uint64
	if t := h.committed; t > c.base {
		pos = t - c.base
	}
	pt := c.sched.At(pos)
	idx := pt.Phase
	if pt.InRamp && g.rng.Float64() >= pt.RampFrac {
		idx--
	}
	sh := c.sched.Shape(idx)
	if sh.Mix.Read > 0 || sh.Mix.Scan > 0 {
		u := g.rng.Float64()
		switch {
		case u < sh.Mix.Read:
			return txnKindRead, h.eng.DrawTxnShaped(g.rng, c.zipf[idx], sh.WorkingSet), 0
		case u < sh.Mix.Read+sh.Mix.Scan:
			return txnKindScan, tpcb.TxnInput{}, sh.ScanBlocks
		}
	}
	return txnKindUpdate, h.eng.DrawTxnShaped(g.rng, c.zipf[idx], sh.WorkingSet), 0
}

// scenarioTxn is the scenario-mode transaction phase of a server process.
// Updates follow the exact steady-state sequence (body, semaphore wait,
// block on the group-commit flush). Read-only and scan transactions have no
// redo to wait on: they finish their body and proceed straight to the
// committed phase with a plain run directive — its nil OnDrain keeps the
// commit-ordering snapshot contract untouched.
func (g *serverGen) scenarioTxn() kernel.Directive {
	kind, in, blocks := g.h.scenarioDraw(g)
	switch kind {
	case txnKindRead:
		g.h.eng.ExecReadTxn(g.sess, in)
		g.phase = serverPhaseCommitted
		return kernel.Directive{Kind: kernel.Run}
	case txnKindScan:
		g.h.eng.ExecScan(g.sess, blocks)
		g.phase = serverPhaseCommitted
		return kernel.Directive{Kind: kernel.Run}
	default:
		g.waitLSN = g.h.eng.ExecTxn(g.sess, in)
		g.h.kernelSemWait(g)
		g.phase = serverPhaseCommitted
		return kernel.Directive{
			Kind: kernel.Block,
			OnDrain: func(drain uint64) {
				g.h.lgwr.requestFlush(g, g.waitLSN, drain)
			},
		}
	}
}
