package oltp

import (
	"oltpsim/internal/memref"
	"oltpsim/internal/tpcb"
)

// kernelCode is the operating-system instruction footprint: the syscall and
// interrupt paths the workload exercises. Together with the server code it
// reproduces the paper's observation that kernel activity is ~25% of OLTP
// execution and that the combined instruction footprint overwhelms the L1s.
type kernelCode struct {
	pipeRead  *tpcb.CodeFn
	pipeWrite *tpcb.CodeFn
	semWait   *tpcb.CodeFn
	semPost   *tpcb.CodeFn
	ctxSwitch *tpcb.CodeFn
	ioSubmit  *tpcb.CodeFn
	ioIntr    *tpcb.CodeFn
	all       []*tpcb.CodeFn
}

func newKernelCode(alloc tpcb.Allocator) *kernelCode {
	mk := func(name string, sizeKB, path int, loopy bool) *tpcb.CodeFn {
		size := uint64(sizeKB) << 10
		base := alloc.Alloc("kcode."+name, size, tpcb.KindCode)
		return &tpcb.CodeFn{
			Name:       name,
			Base:       base,
			SizeLines:  int(size / memref.LineBytes),
			PathInstrs: path,
			Loopy:      loopy,
			Kernel:     true,
		}
	}
	k := &kernelCode{
		pipeRead:  mk("pipe_read", 24, 650, false),
		pipeWrite: mk("pipe_write", 24, 650, false),
		semWait:   mk("sem_wait", 16, 350, false),
		semPost:   mk("sem_post", 16, 250, true),
		ctxSwitch: mk("ctx_switch", 16, 450, false),
		ioSubmit:  mk("io_submit", 16, 400, false),
		ioIntr:    mk("io_intr", 16, 200, true),
	}
	k.all = []*tpcb.CodeFn{k.pipeRead, k.pipeWrite, k.semWait, k.semPost, k.ctxSwitch, k.ioSubmit, k.ioIntr}
	return k
}

// kernelPipeRead models the server receiving a request from its client:
// syscall entry, pipe buffer copy, process bookkeeping.
func (h *Harness) kernelPipeRead(g *serverGen) {
	h.em.SetKernel(true)
	h.em.Code(h.kc.pipeRead)
	h.em.Load(g.pipe, false)
	h.em.Load(g.pipe+memref.LineBytes, false)
	h.em.Store(g.pipe+2*memref.LineBytes, false)
	h.em.SetKernel(false)
}

// kernelPipeWrite models the reply to the client.
func (h *Harness) kernelPipeWrite(g *serverGen) {
	h.em.SetKernel(true)
	h.em.Code(h.kc.pipeWrite)
	h.em.Store(g.pipe+3*memref.LineBytes, false)
	h.em.Store(g.pipe+4*memref.LineBytes, false)
	h.em.SetKernel(false)
}

// kernelSemWait models the commit wait registration: the server arms its
// semaphore (a shared line the log writer will post) and descends into the
// scheduler.
func (h *Harness) kernelSemWait(g *serverGen) {
	h.em.SetKernel(true)
	h.em.Code(h.kc.semWait)
	h.em.Store(g.sem, false)
	h.em.SetKernel(false)
}

// kernelSemPost is the log writer's side: posting one waiter's semaphore —
// a guaranteed cross-processor store on the multiprocessor.
func (h *Harness) kernelSemPost(sem uint64) {
	h.em.SetKernel(true)
	h.em.Code(h.kc.semPost)
	h.em.Store(sem, false)
	h.em.SetKernel(false)
}

// kernelIOSubmit models queueing a disk write.
func (h *Harness) kernelIOSubmit(percpu uint64) {
	h.em.SetKernel(true)
	h.em.Code(h.kc.ioSubmit)
	h.em.Store(percpu+4*memref.LineBytes, false)
	h.em.SetKernel(false)
}

// kernelIOIntr models the completion interrupt.
func (h *Harness) kernelIOIntr(percpu uint64) {
	h.em.SetKernel(true)
	h.em.Code(h.kc.ioIntr)
	h.em.Load(percpu+4*memref.LineBytes, false)
	h.em.Store(percpu+5*memref.LineBytes, false)
	h.em.SetKernel(false)
}
