package oltp

import (
	"oltpsim/internal/kernel"
	"oltpsim/internal/sim"
	"oltpsim/internal/tpcb"
)

// serverGen is one dedicated server process: it loops TPC-B transactions,
// blocking at commit until the log writer has made the redo durable (group
// commit), exactly the paper's dedicated-mode Oracle arrangement.
type serverGen struct {
	h    *Harness
	id   int
	rng  *sim.RNG
	sess *tpcb.Session
	proc *kernel.Proc
	pipe uint64 // private pipe buffer
	sem  uint64 // shared semaphore line

	waitLSN uint64
	phase   int
}

const (
	serverPhaseTxn = iota
	serverPhaseCommitted
)

// NextSegment implements kernel.Generator.
func (g *serverGen) NextSegment(now uint64, out *kernel.RefBuffer) kernel.Directive {
	g.h.em.SetOutput(out, g.h.chipOf(g.proc.CPU))
	switch g.phase {
	case serverPhaseTxn:
		// Receive the request, run the transaction body, arm the commit
		// wait. The log-writer signal fires when the CPU has actually
		// consumed these references, so the redo stores are globally visible
		// before the log writer reads them.
		g.h.kernelPipeRead(g)
		if g.h.scn != nil {
			return g.scenarioTxn()
		}
		in := g.h.eng.DrawTxn(g.rng)
		g.waitLSN = g.h.eng.ExecTxn(g.sess, in)
		g.h.kernelSemWait(g)
		g.phase = serverPhaseCommitted
		return kernel.Directive{
			Kind: kernel.Block,
			OnDrain: func(drain uint64) {
				g.h.lgwr.requestFlush(g, g.waitLSN, drain)
			},
		}
	default:
		// Commit is durable: cleanup, reply to the client, next transaction.
		g.h.eng.PostCommit(g.sess)
		g.h.kernelPipeWrite(g)
		g.phase = serverPhaseTxn
		return kernel.Directive{
			Kind: kernel.Run,
			OnDrain: func(uint64) {
				g.h.committed++
			},
		}
	}
}

// commitWaiter records a server blocked on the log writer.
type commitWaiter struct {
	g   *serverGen
	lsn uint64
}

// lgwrGen is the log writer daemon: it gathers unflushed redo out of the log
// buffer (pulling every line from the cache of the processor that wrote
// it), writes it to the log device, and posts the semaphores of every
// transaction covered by the write — group commit.
type lgwrGen struct {
	h    *Harness
	proc *kernel.Proc

	waiters  []commitWaiter
	pending  bool
	ioTarget uint64
	phase    int

	// Flushes and GroupedCommits measure group-commit efficiency.
	Flushes        uint64
	GroupedCommits uint64
}

const (
	lgwrPhaseIdle = iota
	lgwrPhaseIO
)

// requestFlush registers a commit wait and kicks the daemon.
func (l *lgwrGen) requestFlush(g *serverGen, lsn uint64, now uint64) {
	l.waiters = append(l.waiters, commitWaiter{g: g, lsn: lsn})
	l.pending = true
	l.h.sched.Wake(l.proc, now)
}

// NextSegment implements kernel.Generator.
func (l *lgwrGen) NextSegment(now uint64, out *kernel.RefBuffer) kernel.Directive {
	l.h.em.SetOutput(out, l.h.chipOf(l.proc.CPU))
	switch l.phase {
	case lgwrPhaseIdle:
		target, bytes := l.h.eng.LogWriterGather()
		if bytes == 0 {
			l.pending = false
			return kernel.Directive{Kind: kernel.Block}
		}
		l.h.kernelIOSubmit(l.h.schedData[l.proc.CPU])
		l.ioTarget = target
		l.phase = lgwrPhaseIO
		l.Flushes++
		dur := l.h.p.LogIOCycles + l.h.p.LogIOPerKB*uint64(bytes)/1024
		return kernel.Directive{Kind: kernel.IOWait, Dur: dur}
	default:
		// The write completed: mark durable and post every covered waiter.
		l.h.kernelIOIntr(l.h.schedData[l.proc.CPU])
		l.h.eng.LogWriterComplete(l.ioTarget)
		kept := l.waiters[:0]
		for _, w := range l.waiters {
			if w.lsn <= l.ioTarget {
				l.h.kernelSemPost(w.g.sem)
				l.h.sched.Wake(w.g.proc, now)
				l.GroupedCommits++
			} else {
				kept = append(kept, w)
			}
		}
		l.waiters = kept
		l.phase = lgwrPhaseIdle
		return kernel.Directive{Kind: kernel.Run}
	}
}

// dbwrGen is the database writer daemon: it periodically takes a batch of
// dirty buffers, cleans their headers (touching metadata dirtied by every
// processor), and writes them out.
type dbwrGen struct {
	h    *Harness
	proc *kernel.Proc

	phase  int
	Writes uint64
}

const (
	dbwrPhaseScan = iota
	dbwrPhaseIO
)

// NextSegment implements kernel.Generator.
func (d *dbwrGen) NextSegment(now uint64, out *kernel.RefBuffer) kernel.Directive {
	d.h.em.SetOutput(out, d.h.chipOf(d.proc.CPU))
	switch d.phase {
	case dbwrPhaseScan:
		n := d.h.eng.DBWriterScan(d.h.p.DBWRBatch)
		if n == 0 {
			return kernel.Directive{Kind: kernel.Sleep, Until: now + d.h.p.DBWRSleepCycles}
		}
		d.Writes += uint64(n)
		d.h.kernelIOSubmit(d.h.schedData[d.proc.CPU])
		d.phase = dbwrPhaseIO
		return kernel.Directive{Kind: kernel.IOWait, Dur: d.h.p.DBWRIOCycles}
	default:
		d.h.kernelIOIntr(d.h.schedData[d.proc.CPU])
		d.phase = dbwrPhaseScan
		if d.h.eng.Pool().DirtyBacklog() > 4*d.h.p.DBWRBatch {
			return kernel.Directive{Kind: kernel.Run}
		}
		return kernel.Directive{Kind: kernel.Sleep, Until: now + d.h.p.DBWRSleepCycles}
	}
}
