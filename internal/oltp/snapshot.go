package oltp

import (
	"fmt"

	"oltpsim/internal/kernel"
	"oltpsim/internal/snapshot"
)

// Drain tags name the two OnDrain closures a server process can hold when a
// snapshot is taken; the closures themselves cannot be serialized, so the tag
// is saved and the closure rebuilt against the restored harness on load.
const (
	drainTagCommitWait = 1 // commit wait: signal the log writer at drain time
	drainTagCommitted  = 2 // transaction durable: count it committed
)

// serverOf maps a process back to its server generator. The spawn order is
// fixed (log writer ID 0, database writer ID 1, servers from ID 2 in CPU
// order), so a server's slot is its process ID minus the two daemons.
func (h *Harness) serverOf(p *kernel.Proc) *serverGen {
	idx := p.ID - 2
	if idx < 0 || idx >= len(h.servers) || h.servers[idx].proc != p {
		return nil
	}
	return h.servers[idx]
}

// drainTag implements the kernel.Scheduler save hook. Only servers arm
// OnDrain closures, and the server's phase says which of the two it was: the
// transaction phase ends by arming the commit wait, the committed phase ends
// by arming the commit count.
func (h *Harness) drainTag(p *kernel.Proc) uint8 {
	g := h.serverOf(p)
	if g == nil {
		return 0
	}
	if g.phase == serverPhaseCommitted {
		return drainTagCommitWait
	}
	return drainTagCommitted
}

// rebindDrain implements the kernel.Scheduler load hook: it rebuilds the
// closure a drain tag stood for, closing over the restored generator exactly
// as NextSegment would have.
func (h *Harness) rebindDrain(p *kernel.Proc, tag uint8) (func(uint64), error) {
	g := h.serverOf(p)
	if g == nil {
		return nil, fmt.Errorf("oltp: drain tag %d on non-server process %q", tag, p.Name)
	}
	switch tag {
	case drainTagCommitWait:
		return func(drain uint64) {
			g.h.lgwr.requestFlush(g, g.waitLSN, drain)
		}, nil
	case drainTagCommitted:
		return func(uint64) {
			g.h.committed++
		}, nil
	default:
		return nil, fmt.Errorf("oltp: unknown drain tag %d on %q", tag, p.Name)
	}
}

// SaveState writes the complete workload state: the commit count, every
// server's RNG and transaction position, the daemon state machines, the
// kernel code-walk cursors, the database engine, and the process scheduler.
// Address-space layout, emitter configuration, and semaphore addresses are
// construction-derived and not state.
func (h *Harness) SaveState(e *snapshot.Encoder) {
	e.U64(h.committed)
	e.Int(len(h.servers))
	for _, g := range h.servers {
		e.U64(g.waitLSN)
		e.Int(g.phase)
		g.rng.SaveState(e)
		g.sess.SaveState(e)
	}
	e.Int(len(h.lgwr.waiters))
	for _, w := range h.lgwr.waiters {
		e.Int(w.g.id)
		e.U64(w.lsn)
	}
	e.Bool(h.lgwr.pending)
	e.U64(h.lgwr.ioTarget)
	e.Int(h.lgwr.phase)
	e.U64(h.lgwr.Flushes)
	e.U64(h.lgwr.GroupedCommits)
	e.Int(h.dbwr.phase)
	e.U64(h.dbwr.Writes)
	for _, f := range h.kc.all {
		f.SaveState(e)
	}
	h.eng.SaveState(e)
	h.sched.SaveState(e, h.drainTag)
}

// LoadState restores a harness built from the identical parameters.
func (h *Harness) LoadState(d *snapshot.Decoder) error {
	committed := d.U64()
	if n := d.Int(); d.Err() == nil && n != len(h.servers) {
		return fmt.Errorf("oltp: snapshot has %d servers, want %d", n, len(h.servers))
	}
	if d.Err() != nil {
		return d.Err()
	}
	for _, g := range h.servers {
		waitLSN := d.U64()
		phase := d.Int()
		if d.Err() != nil {
			return d.Err()
		}
		if phase != serverPhaseTxn && phase != serverPhaseCommitted {
			return fmt.Errorf("oltp: server %d has invalid phase %d", g.id, phase)
		}
		g.waitLSN = waitLSN
		g.phase = phase
		g.rng.LoadState(d)
		if err := g.sess.LoadState(d); err != nil {
			return err
		}
	}
	nWaiters := d.Int()
	if d.Err() != nil {
		return d.Err()
	}
	if nWaiters < 0 || nWaiters > len(h.servers) {
		return fmt.Errorf("oltp: %d commit waiters for %d servers", nWaiters, len(h.servers))
	}
	waiters := make([]commitWaiter, nWaiters)
	for i := range waiters {
		id := d.Int()
		lsn := d.U64()
		if d.Err() != nil {
			return d.Err()
		}
		if id < 0 || id >= len(h.servers) {
			return fmt.Errorf("oltp: commit waiter references server %d of %d", id, len(h.servers))
		}
		waiters[i] = commitWaiter{g: h.servers[id], lsn: lsn}
	}
	lgwrPending := d.Bool()
	lgwrIOTarget := d.U64()
	lgwrPhase := d.Int()
	lgwrFlushes := d.U64()
	lgwrGrouped := d.U64()
	dbwrPhase := d.Int()
	dbwrWrites := d.U64()
	if d.Err() != nil {
		return d.Err()
	}
	if lgwrPhase != lgwrPhaseIdle && lgwrPhase != lgwrPhaseIO {
		return fmt.Errorf("oltp: log writer has invalid phase %d", lgwrPhase)
	}
	if dbwrPhase != dbwrPhaseScan && dbwrPhase != dbwrPhaseIO {
		return fmt.Errorf("oltp: database writer has invalid phase %d", dbwrPhase)
	}
	for _, f := range h.kc.all {
		if err := f.LoadState(d); err != nil {
			return err
		}
	}
	if err := h.eng.LoadState(d); err != nil {
		return err
	}
	h.committed = committed
	h.lgwr.waiters = append(h.lgwr.waiters[:0], waiters...)
	h.lgwr.pending = lgwrPending
	h.lgwr.ioTarget = lgwrIOTarget
	h.lgwr.phase = lgwrPhase
	h.lgwr.Flushes = lgwrFlushes
	h.lgwr.GroupedCommits = lgwrGrouped
	h.dbwr.phase = dbwrPhase
	h.dbwr.Writes = dbwrWrites
	return h.sched.LoadState(d, h.rebindDrain)
}
