package oltp

import (
	"testing"

	"oltpsim/internal/kernel"
	"oltpsim/internal/memref"
	"oltpsim/internal/tpcb"
)

func testCodeFn() *tpcb.CodeFn {
	return &tpcb.CodeFn{Name: "t", Base: codeArenaBase + 4096, SizeLines: 4, PathInstrs: 16, Loopy: true}
}

// pull drives every CPU of the harness in global-time order (the way the
// timing engine does, with a trivial 1-cycle-per-instruction clock) and
// returns the first n references observed on CPU cpu. Driving all CPUs is
// essential: commits on any CPU depend on the log writer running on CPU 0.
func pull(h *Harness, cpu int, n int) []memref.Ref {
	cpus := h.p.CPUs
	clocks := make([]uint64, cpus)
	var out []memref.Ref
	for len(out) < n {
		// Pick the CPU with the smallest clock.
		c := 0
		for i := 1; i < cpus; i++ {
			if clocks[i] < clocks[c] {
				c = i
			}
		}
		r, st, wake := h.Next(c, clocks[c])
		switch st {
		case kernel.StatusRef:
			if c == cpu {
				out = append(out, r)
			}
			clocks[c] += uint64(r.Instrs) + 1
		case kernel.StatusIdle:
			clocks[c] = wake
		default:
			return out
		}
	}
	return out
}

func TestHarnessStreams(t *testing.T) {
	h := MustNewHarness(TestParams(2))
	refs := pull(h, 0, 20_000)
	if len(refs) != 20_000 {
		t.Fatalf("stream ended early: %d refs", len(refs))
	}
	var ifetch, loads, stores, kern int
	for _, r := range refs {
		switch r.Kind {
		case memref.IFetch:
			ifetch++
			if r.Instrs == 0 || r.Instrs > 16 {
				t.Fatalf("ifetch with %d instrs", r.Instrs)
			}
		case memref.Load:
			loads++
		case memref.Store:
			stores++
		}
		if r.Kernel {
			kern++
		}
	}
	if ifetch == 0 || loads == 0 || stores == 0 {
		t.Fatalf("mix broken: %d/%d/%d", ifetch, loads, stores)
	}
	if kern == 0 {
		t.Fatal("no kernel references")
	}
}

func TestHarnessCommits(t *testing.T) {
	h := MustNewHarness(TestParams(1))
	now := uint64(0)
	for h.Committed() < 20 {
		r, st, wake := h.Next(0, now)
		switch st {
		case kernel.StatusRef:
			now += uint64(r.Instrs) + 1
		case kernel.StatusIdle:
			now = wake
		default:
			t.Fatal("stream done before 20 commits")
		}
	}
	if err := h.Engine().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestKernelFraction(t *testing.T) {
	h := MustNewHarness(TestParams(1))
	refs := pull(h, 0, 100_000)
	var kernInstr, instr uint64
	for _, r := range refs {
		if r.Kind == memref.IFetch {
			instr += uint64(r.Instrs)
			if r.Kernel {
				kernInstr += uint64(r.Instrs)
			}
		}
	}
	frac := float64(kernInstr) / float64(instr)
	// The paper reports ~25% kernel time for OLTP; the instruction share
	// should be in that neighbourhood.
	if frac < 0.10 || frac > 0.45 {
		t.Fatalf("kernel instruction share %.2f outside plausible band", frac)
	}
}

func TestHomeOfDistribution(t *testing.T) {
	h := MustNewHarness(TestParams(8))
	refs := pull(h, 3, 50_000)
	counts := make([]int, 8)
	data := 0
	for _, r := range refs {
		if r.Kind == memref.IFetch {
			continue
		}
		counts[h.HomeOf(r.Line())]++
		data++
	}
	// Shared data is round-robin placed: every node must be home to a
	// non-trivial share, near the paper's "1-in-8 chance of finding data
	// locally".
	for n, c := range counts {
		frac := float64(c) / float64(data)
		if frac < 0.04 || frac > 0.30 {
			t.Fatalf("node %d home share %.3f of %d refs; want roughly 1/8", n, frac, data)
		}
	}
	// And the PGA region of a CPU-3 server must be node-local to 3.
	if home := h.HomeOf(h.servers[3*h.p.ServersPerCPU].sess.PGABase); home != 3 {
		t.Fatalf("cpu 3 server PGA homed at node %d", home)
	}
}

func TestCodeReplicationMakesIFetchLocal(t *testing.T) {
	p := TestParams(4)
	p.CodeReplication = true
	h := MustNewHarness(p)
	refs := pull(h, 2, 30_000)
	for _, r := range refs {
		if r.Kind != memref.IFetch {
			continue
		}
		if home := h.HomeOf(r.Line()); home != 2 {
			t.Fatalf("replicated ifetch %#x homed at node %d", r.Addr, home)
		}
	}
}

func TestNoReplicationSpreadsCode(t *testing.T) {
	h := MustNewHarness(TestParams(4))
	refs := pull(h, 2, 30_000)
	counts := make([]int, 4)
	for _, r := range refs {
		if r.Kind == memref.IFetch {
			counts[h.HomeOf(r.Line())]++
		}
	}
	nonzero := 0
	for _, c := range counts {
		if c > 0 {
			nonzero++
		}
	}
	if nonzero < 3 {
		t.Fatalf("unreplicated code touched only %d nodes", nonzero)
	}
}

func TestDeterministicStream(t *testing.T) {
	mk := func() []memref.Ref { return pull(MustNewHarness(TestParams(2)), 0, 5000) }
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streams diverge at ref %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestEmitterCollapse(t *testing.T) {
	var buf kernel.RefBuffer
	e := &Emitter{}
	e.SetOutput(&buf, 0)
	e.Load(100, false)
	e.Load(110, false) // same line (64): collapsed
	e.Load(200, false)
	e.Store(200, false) // load->store same line: kept (needs write rights)
	e.Store(210, false) // store->store same line (192): collapsed
	e.Load(220, false)  // load after store, same line: collapsed (line held M)
	e.Load(300, false)  // new line: kept
	if len(buf.Refs) != 4 {
		t.Fatalf("collapse produced %d refs, want 4", len(buf.Refs))
	}
}

func TestEmitterReplicationOffset(t *testing.T) {
	var buf kernel.RefBuffer
	e := &Emitter{replicate: true, arenaBase: codeArenaBase, arenaSize: codeArenaSize}
	e.SetOutput(&buf, 3)
	fn := testCodeFn()
	e.Code(fn)
	want := fn.Base + 3*codeArenaSize
	if buf.Refs[0].Addr != want {
		t.Fatalf("replicated code at %#x, want %#x", buf.Refs[0].Addr, want)
	}
	// Node 0 keeps the original address.
	var buf0 kernel.RefBuffer
	e.SetOutput(&buf0, 0)
	e.Code(fn)
	if buf0.Refs[0].Addr != fn.Base {
		t.Fatalf("node 0 code at %#x", buf0.Refs[0].Addr)
	}
}

func TestParamsValidate(t *testing.T) {
	p := TestParams(0)
	if err := p.Validate(); err == nil {
		t.Fatal("0 CPUs accepted")
	}
	p = TestParams(1)
	p.ServersPerCPU = 0
	if err := p.Validate(); err == nil {
		t.Fatal("0 servers accepted")
	}
	p = TestParams(1)
	p.SchedQuantum = 0
	if err := p.Validate(); err == nil {
		t.Fatal("0 quantum accepted")
	}
}

func TestGroupCommitBatches(t *testing.T) {
	h := MustNewHarness(TestParams(1))
	now := uint64(0)
	for h.Committed() < 50 {
		r, st, wake := h.Next(0, now)
		switch st {
		case kernel.StatusRef:
			now += uint64(r.Instrs) + 1
		case kernel.StatusIdle:
			now = wake
		}
	}
	if h.lgwr.Flushes == 0 {
		t.Fatal("log writer never flushed")
	}
	if h.lgwr.GroupedCommits < 50 {
		t.Fatalf("grouped commits %d < committed 50", h.lgwr.GroupedCommits)
	}
	// Group commit: strictly fewer flushes than commits.
	if h.lgwr.Flushes >= h.lgwr.GroupedCommits {
		t.Fatalf("no batching: %d flushes for %d commits", h.lgwr.Flushes, h.lgwr.GroupedCommits)
	}
}
