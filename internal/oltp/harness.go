package oltp

import (
	"fmt"

	"oltpsim/internal/kernel"
	"oltpsim/internal/memref"
	"oltpsim/internal/sim"
	"oltpsim/internal/tpcb"
)

// codeArenaBase is where instruction regions live; with replication the
// arena is duplicated per node at arenaBase + node*codeArenaSize.
const (
	codeArenaBase = uint64(64) << 20
	codeArenaSize = uint64(16) << 20
	sharedBase    = uint64(4) << 30 // shared (SGA/kernel-shared) regions
	privateBase   = uint64(64) << 30
)

// spaceAlloc implements tpcb.Allocator on top of the kernel address space.
type spaceAlloc struct {
	as       *kernel.AddressSpace
	codeNext uint64
	shrNext  uint64
	prvNext  uint64
	nodes    int
}

func pageAlign(v uint64) uint64 {
	const p = memref.PageBytes
	return (v + p - 1) &^ uint64(p-1)
}

// Alloc implements tpcb.Allocator. Code goes into the (possibly replicated)
// arena; everything else becomes a round-robin-placed shared region.
func (a *spaceAlloc) Alloc(name string, size uint64, kind tpcb.RegionKind) uint64 {
	switch kind {
	case tpcb.KindCode:
		a.codeNext = pageAlign(a.codeNext)
		base := a.codeNext
		a.codeNext += size
		if a.codeNext > codeArenaBase+codeArenaSize {
			panic(fmt.Sprintf("oltp: code arena overflow allocating %s", name))
		}
		return base
	default:
		a.shrNext = pageAlign(a.shrNext)
		base := a.shrNext
		a.shrNext += size
		a.as.AddRegion(kernel.Region{
			Name: name, Base: base, Size: pageAlign(size),
			Placement: kernel.RoundRobinPages,
		})
		return base
	}
}

// allocPrivate carves a node-local region (PGA, stacks, per-CPU kernel
// structures).
func (a *spaceAlloc) allocPrivate(name string, size uint64, node int) uint64 {
	a.prvNext = pageAlign(a.prvNext)
	base := a.prvNext
	a.prvNext += pageAlign(size)
	a.as.AddRegion(kernel.Region{
		Name: name, Base: base, Size: pageAlign(size),
		Placement: kernel.NodeLocal, Node: node,
	})
	return base
}

// Harness is the assembled workload: it implements core.Workload.
type Harness struct {
	p     Params
	chips int
	as    *kernel.AddressSpace
	sched *kernel.Scheduler
	em    *Emitter
	eng   *tpcb.Engine
	kc    *kernelCode

	servers []*serverGen
	lgwr    *lgwrGen
	dbwr    *dbwrGen
	scn     *scenarioCtl // nil = steady state

	committed uint64

	// per-CPU kernel scheduler data lines (runqueue, per-CPU area)
	schedData []uint64
	// shared semaphore region: one line per server
	semBase uint64
}

// NewHarness builds the workload: database engine (prewarmed to steady
// state), address space, processes, and daemons.
func NewHarness(p Params) (*Harness, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	cores := p.CoresPerChip
	if cores == 0 {
		cores = 1
	}
	h := &Harness{p: p, chips: p.CPUs / cores}
	h.as = kernel.NewAddressSpace(h.chips)
	alloc := &spaceAlloc{
		as:       h.as,
		codeNext: codeArenaBase,
		shrNext:  sharedBase,
		prvNext:  privateBase,
		nodes:    h.chips,
	}

	// Register the code arena itself: one copy striped across nodes, or one
	// node-local copy per node when replication is on.
	if p.CodeReplication {
		for n := 0; n < h.chips; n++ {
			h.as.AddRegion(kernel.Region{
				Name: fmt.Sprintf("text.replica%d", n),
				Base: codeArenaBase + uint64(n)*codeArenaSize, Size: codeArenaSize,
				Placement: kernel.NodeLocal, Node: n, Code: true,
			})
		}
	} else {
		h.as.AddRegion(kernel.Region{
			Name: "text", Base: codeArenaBase, Size: codeArenaSize,
			Placement: kernel.RoundRobinPages, Code: true,
		})
	}

	h.em = &Emitter{
		replicate: p.CodeReplication,
		arenaBase: codeArenaBase,
		arenaSize: codeArenaSize,
	}
	h.kc = newKernelCode(alloc)

	rng := sim.NewRNG(p.Seed)
	eng, err := tpcb.NewEngine(p.TPCB, alloc, h.em, rng.Uint64())
	if err != nil {
		return nil, err
	}
	h.eng = eng
	h.eng.Prewarm()

	if p.Scenario != nil {
		h.scn = newScenarioCtl(p.Scenario, p.ScenarioBase, &p.TPCB)
	}

	// Shared semaphore lines (server <-> log writer communication).
	totalServers := p.CPUs * p.ServersPerCPU
	h.semBase = alloc.Alloc("kern.semaphores", uint64(totalServers)*memref.LineBytes, tpcb.KindShared)

	// Per-CPU kernel scheduler data.
	h.schedData = make([]uint64, p.CPUs)
	for c := 0; c < p.CPUs; c++ {
		h.schedData[c] = alloc.allocPrivate(fmt.Sprintf("kern.percpu%d", c), memref.PageBytes, h.chipOf(c))
	}

	h.sched = kernel.NewScheduler(p.CPUs, p.SchedQuantum, h.emitContextSwitch)

	// Daemons first (IDs before servers, like a real instance): the log
	// writer on CPU 0, the database writer on the last CPU.
	h.lgwr = &lgwrGen{h: h}
	h.lgwr.proc = h.sched.Spawn(0, "lgwr", h.lgwr)
	h.dbwr = &dbwrGen{h: h}
	h.dbwr.proc = h.sched.Spawn(p.CPUs-1, "dbwr", h.dbwr)

	// Dedicated servers, ServersPerCPU per processor.
	for c := 0; c < p.CPUs; c++ {
		for i := 0; i < p.ServersPerCPU; i++ {
			id := c*p.ServersPerCPU + i
			pga := alloc.allocPrivate(fmt.Sprintf("pga.s%d", id), uint64(p.TPCB.PGABytes), h.chipOf(c))
			pipe := alloc.allocPrivate(fmt.Sprintf("pipe.s%d", id), 4*memref.PageBytes, h.chipOf(c))
			g := &serverGen{
				h:    h,
				id:   id,
				rng:  rng.Fork(),
				sess: h.eng.NewSession(id, pga),
				pipe: pipe,
				sem:  h.semBase + uint64(id)*memref.LineBytes,
			}
			g.proc = h.sched.Spawn(c, fmt.Sprintf("server%d", id), g)
			h.servers = append(h.servers, g)
		}
	}
	return h, nil
}

// MustNewHarness panics on parameter errors.
func MustNewHarness(p Params) *Harness {
	h, err := NewHarness(p)
	if err != nil {
		panic(err)
	}
	return h
}

// Next implements core.Workload by delegating to the scheduler.
func (h *Harness) Next(cpu int, now uint64) (memref.Ref, kernel.Status, uint64) {
	return h.sched.Next(cpu, now)
}

// RefSource implements core.RefSource: Next above is a pure delegation, so
// the timing loop may call the scheduler directly.
func (h *Harness) RefSource() *kernel.Scheduler { return h.sched }

// HomeOf implements core.Workload.
func (h *Harness) HomeOf(line uint64) int { return h.as.HomeOf(line) }

// Committed implements core.Workload.
func (h *Harness) Committed() uint64 { return h.committed }

// CommitCounter implements core.CommitSource: the timing loop tests the
// commit boundary after every reference, and this pointer makes that test a
// single load.
func (h *Harness) CommitCounter() *uint64 { return &h.committed }

// Engine exposes the database engine (invariant checks in tests).
func (h *Harness) Engine() *tpcb.Engine { return h.eng }

// Scheduler exposes the process scheduler (diagnostics).
func (h *Harness) Scheduler() *kernel.Scheduler { return h.sched }

// AddressSpace exposes the region table (reporting).
func (h *Harness) AddressSpace() *kernel.AddressSpace { return h.as }

// chipOf maps a CPU index to its chip (NUMA node).
func (h *Harness) chipOf(cpu int) int {
	cores := h.p.CoresPerChip
	if cores == 0 {
		cores = 1
	}
	return cpu / cores
}

// emitContextSwitch is the scheduler's switch-overhead hook: the kernel
// context-switch path plus the CPU's run-queue and per-CPU data.
func (h *Harness) emitContextSwitch(cpu int, out *kernel.RefBuffer) {
	h.em.SetOutput(out, h.chipOf(cpu))
	h.em.SetKernel(true)
	h.em.Code(h.kc.ctxSwitch)
	base := h.schedData[cpu]
	h.em.Load(base, false)
	h.em.Store(base, false)
	h.em.Load(base+2*memref.LineBytes, false)
	h.em.SetKernel(false)
}
