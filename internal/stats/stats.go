// Package stats defines the measurement vocabulary of the study — L2 miss
// tables broken down the way the paper plots them, run results combining
// execution-time breakdowns with protocol counters — plus the normalization
// and ASCII rendering used to regenerate each figure.
package stats

import (
	"fmt"
	"strings"

	"oltpsim/internal/coherence"
	"oltpsim/internal/cpu"
)

// MissTable decomposes L2 misses exactly as the paper's right-hand graphs
// do: instruction vs. data, each split into local, remote-clean (2-hop) and
// remote-dirty (3-hop, with RAC-sourced tracked separately).
type MissTable struct {
	// I and D are indexed by coherence.Category.
	I [coherence.NumCategories]uint64
	D [coherence.NumCategories]uint64
	// RACHitsI/D are the subsets of I/D local misses satisfied by the
	// node's own RAC.
	RACHitsI uint64
	RACHitsD uint64
	// Upgrades counts write-permission transactions (no data transfer);
	// the paper's miss graphs exclude them but the invalidation-rate
	// discussion in Section 6 depends on them.
	Upgrades [coherence.NumCategories]uint64
}

// Count records one miss.
func (m *MissTable) Count(instruction bool, cat coherence.Category) {
	if instruction {
		m.I[cat]++
	} else {
		m.D[cat]++
	}
}

// CountUpgrade records one upgrade.
func (m *MissTable) CountUpgrade(cat coherence.Category) { m.Upgrades[cat]++ }

// CountRACHit records a local miss satisfied by the node's own RAC. The
// caller records the CatLocal miss itself via Count; this tracks the
// RAC-sourced subset the paper's Fig. 11 breakdown needs.
func (m *MissTable) CountRACHit(instruction bool) {
	if instruction {
		m.RACHitsI++
	} else {
		m.RACHitsD++
	}
}

// ITotal returns all instruction misses.
func (m *MissTable) ITotal() uint64 { return sum(m.I[:]) }

// DTotal returns all data misses.
func (m *MissTable) DTotal() uint64 { return sum(m.D[:]) }

// Total returns all misses (excluding upgrades, as the paper plots).
func (m *MissTable) Total() uint64 { return m.ITotal() + m.DTotal() }

// Local returns misses serviced locally (including RAC hits).
func (m *MissTable) Local() uint64 {
	return m.I[coherence.CatLocal] + m.D[coherence.CatLocal]
}

// RemoteClean returns 2-hop misses.
func (m *MissTable) RemoteClean() uint64 {
	return m.I[coherence.CatRemoteClean] + m.D[coherence.CatRemoteClean]
}

// RemoteDirty returns 3-hop misses (L2- and RAC-sourced).
func (m *MissTable) RemoteDirty() uint64 {
	return m.I[coherence.CatRemoteDirty] + m.I[coherence.CatRemoteDirtyRAC] +
		m.D[coherence.CatRemoteDirty] + m.D[coherence.CatRemoteDirtyRAC]
}

// UpgradeTotal returns all upgrades.
func (m *MissTable) UpgradeTotal() uint64 { return sum(m.Upgrades[:]) }

// Sub removes prev from m. Miss counters are monotone, so with prev an
// earlier collection of the same run the difference is the segment between
// the two collection points. Like LoadState, it assembles a fresh table and
// assigns it whole, keeping field mutation confined to the Count*/Add*
// accumulators the counterowner analyzer enforces.
func (m *MissTable) Sub(prev *MissTable) {
	var i, d, up [coherence.NumCategories]uint64
	for c := range i {
		i[c] = m.I[c] - prev.I[c]
		d[c] = m.D[c] - prev.D[c]
		up[c] = m.Upgrades[c] - prev.Upgrades[c]
	}
	t := MissTable{
		I: i, D: d, Upgrades: up,
		RACHitsI: m.RACHitsI - prev.RACHitsI,
		RACHitsD: m.RACHitsD - prev.RACHitsD,
	}
	*m = t
}

// Add accumulates other into m.
func (m *MissTable) Add(other *MissTable) {
	for i := range m.I {
		m.I[i] += other.I[i]
		m.D[i] += other.D[i]
		m.Upgrades[i] += other.Upgrades[i]
	}
	m.RACHitsI += other.RACHitsI
	m.RACHitsD += other.RACHitsD
}

func sum(v []uint64) uint64 {
	var t uint64
	for _, x := range v {
		t += x
	}
	return t
}

// RunResult is the outcome of one simulated configuration: what every
// figure's bars are built from.
type RunResult struct {
	// Name labels the configuration (bar label in the figures).
	Name string
	// Txns is the number of committed transactions measured.
	Txns uint64
	// Breakdown is the execution-time decomposition summed over CPUs.
	Breakdown cpu.Breakdown
	// Miss is the L2 miss table summed over CPUs.
	Miss MissTable

	// Protocol and structure counters.
	Invalidations uint64
	Writebacks    uint64
	Stores        uint64 // store references issued (for invalidation rate)
	WriteInvalOps uint64 // write/upgrade transactions that sent >=1 invalidation
	RACProbes     uint64
	RACHits       uint64
	L1IMissRate   float64
	L1DMissRate   float64
	// L1IAccesses..L1DMisses are the raw counters behind the miss rates.
	// Rates cannot be differenced across cumulative collections, so
	// per-phase segmentation (Sub) recomputes them from these.
	L1IAccesses    uint64
	L1IMisses      uint64
	L1DAccesses    uint64
	L1DMisses      uint64
	L2Accesses     uint64
	KernelFraction float64
	Utilization    float64 // busy / non-idle
	IdleCycles     uint64
}

// AddNode accumulates one chip's counters into the result. All counter
// accumulation from other packages flows through stats accumulators like
// this one so the conservation properties the figures depend on stay in one
// place (enforced by the counterowner analyzer in internal/lint).
func (r *RunResult) AddNode(miss *MissTable, stores, l2Accesses, racProbes, racHits uint64) {
	r.Miss.Add(miss)
	r.Stores += stores
	r.L2Accesses += l2Accesses
	r.RACProbes += racProbes
	r.RACHits += racHits
}

// Sub returns cum minus prev: the run segment between two cumulative
// collection points (a scenario phase). Monotone counters subtract;
// rates and fractions are recomputed from the segment's own counters, and
// the Name carries over from cum (callers relabel per phase).
func Sub(cum, prev *RunResult) RunResult {
	r := RunResult{
		Name:          cum.Name,
		Txns:          cum.Txns - prev.Txns,
		Breakdown:     cum.Breakdown,
		Miss:          cum.Miss,
		Invalidations: cum.Invalidations - prev.Invalidations,
		Writebacks:    cum.Writebacks - prev.Writebacks,
		Stores:        cum.Stores - prev.Stores,
		WriteInvalOps: cum.WriteInvalOps - prev.WriteInvalOps,
		RACProbes:     cum.RACProbes - prev.RACProbes,
		RACHits:       cum.RACHits - prev.RACHits,
		L1IAccesses:   cum.L1IAccesses - prev.L1IAccesses,
		L1IMisses:     cum.L1IMisses - prev.L1IMisses,
		L1DAccesses:   cum.L1DAccesses - prev.L1DAccesses,
		L1DMisses:     cum.L1DMisses - prev.L1DMisses,
		L2Accesses:    cum.L2Accesses - prev.L2Accesses,
		IdleCycles:    cum.IdleCycles - prev.IdleCycles,
	}
	r.Breakdown.Sub(&prev.Breakdown)
	r.Miss.Sub(&prev.Miss)
	if r.L1IAccesses > 0 {
		r.L1IMissRate = float64(r.L1IMisses) / float64(r.L1IAccesses)
	}
	if r.L1DAccesses > 0 {
		r.L1DMissRate = float64(r.L1DMisses) / float64(r.L1DAccesses)
	}
	if nd := r.Breakdown.NonIdle(); nd > 0 {
		r.KernelFraction = float64(r.Breakdown.Kernel) / float64(nd)
		r.Utilization = float64(r.Breakdown.Busy) / float64(nd)
	}
	return r
}

// CyclesPerTxn is the figure metric: non-idle cycles per committed
// transaction (Fig. 12 explicitly uses non-idle execution time).
func (r *RunResult) CyclesPerTxn() float64 {
	if r.Txns == 0 {
		return 0
	}
	return float64(r.Breakdown.NonIdle()) / float64(r.Txns)
}

// MissesPerTxn normalizes the miss count.
func (r *RunResult) MissesPerTxn() float64 {
	if r.Txns == 0 {
		return 0
	}
	return float64(r.Miss.Total()) / float64(r.Txns)
}

// InvalPerStore is the Section 6 invalidation rate ("about 1 in 6 without a
// RAC, and about 1 in 3 with a RAC"): write transactions that invalidated at
// least one other cache, per store-driven coherence operation.
func (r *RunResult) InvalPerStore() float64 {
	if r.Stores == 0 {
		return 0
	}
	return float64(r.WriteInvalOps) / float64(r.Stores)
}

// RACHitRate returns the RAC hit rate.
func (r *RunResult) RACHitRate() float64 {
	if r.RACProbes == 0 {
		return 0
	}
	return float64(r.RACHits) / float64(r.RACProbes)
}

// Speedup returns base/this in cycles per transaction (how many times
// faster this configuration is than base).
func (r *RunResult) Speedup(base *RunResult) float64 {
	if r.CyclesPerTxn() == 0 {
		return 0
	}
	return base.CyclesPerTxn() / r.CyclesPerTxn()
}

// fmtPct formats a fraction as a percentage.
func fmtPct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

// Summary renders one result as a multi-line report.
func (r *RunResult) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %8.0f cycles/txn  (%d txns)\n", r.Name, r.CyclesPerTxn(), r.Txns)
	nd := r.Breakdown.NonIdle()
	if nd > 0 {
		fmt.Fprintf(&b, "  breakdown: CPU %s  L2Hit %s  Local %s  Remote %s  Dirty %s\n",
			fmtPct(float64(r.Breakdown.Busy)/float64(nd)),
			fmtPct(float64(r.Breakdown.L2Hit)/float64(nd)),
			fmtPct(float64(r.Breakdown.Local)/float64(nd)),
			fmtPct(float64(r.Breakdown.Remote)/float64(nd)),
			fmtPct(float64(r.Breakdown.RemoteDirty)/float64(nd)))
	}
	fmt.Fprintf(&b, "  L2 misses/txn: %.1f (I %.1f, D %.1f; local %d, 2-hop %d, 3-hop %d)\n",
		r.MissesPerTxn(),
		safeDiv(r.Miss.ITotal(), r.Txns), safeDiv(r.Miss.DTotal(), r.Txns),
		r.Miss.Local(), r.Miss.RemoteClean(), r.Miss.RemoteDirty())
	fmt.Fprintf(&b, "  kernel %s  utilization %s  idle %d\n",
		fmtPct(r.KernelFraction), fmtPct(r.Utilization), r.IdleCycles)
	return b.String()
}

func safeDiv(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
