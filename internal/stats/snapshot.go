package stats

import (
	"fmt"

	"oltpsim/internal/coherence"
	"oltpsim/internal/snapshot"
)

// SaveState writes the miss table.
func (m *MissTable) SaveState(e *snapshot.Encoder) {
	e.U64s(m.I[:])
	e.U64s(m.D[:])
	e.U64(m.RACHitsI)
	e.U64(m.RACHitsD)
	e.U64s(m.Upgrades[:])
}

// LoadState restores the miss table. Counter writes live here, in the stats
// package, so the counterowner analyzer's single-accumulation-point rule
// holds for snapshot restore exactly as it does for simulation.
func (m *MissTable) LoadState(d *snapshot.Decoder) error {
	i := d.U64s()
	dd := d.U64s()
	racI := d.U64()
	racD := d.U64()
	up := d.U64s()
	if err := d.Err(); err != nil {
		return err
	}
	nc := int(coherence.NumCategories)
	if len(i) != nc || len(dd) != nc || len(up) != nc {
		return fmt.Errorf("stats: miss table has %d/%d/%d categories, want %d", len(i), len(dd), len(up), nc)
	}
	t := MissTable{RACHitsI: racI, RACHitsD: racD}
	copy(t.I[:], i)
	copy(t.D[:], dd)
	copy(t.Upgrades[:], up)
	*m = t
	return nil
}

// SaveState writes one run result (scenario checkpoints persist completed
// phase segments so a resumed run reproduces them byte-identically).
// Floats round-trip exactly through their IEEE bit patterns (F64).
func (r *RunResult) SaveState(e *snapshot.Encoder) {
	e.String(r.Name)
	e.U64(r.Txns)
	r.Breakdown.SaveState(e)
	r.Miss.SaveState(e)
	e.U64(r.Invalidations)
	e.U64(r.Writebacks)
	e.U64(r.Stores)
	e.U64(r.WriteInvalOps)
	e.U64(r.RACProbes)
	e.U64(r.RACHits)
	e.F64(r.L1IMissRate)
	e.F64(r.L1DMissRate)
	e.U64(r.L1IAccesses)
	e.U64(r.L1IMisses)
	e.U64(r.L1DAccesses)
	e.U64(r.L1DMisses)
	e.U64(r.L2Accesses)
	e.F64(r.KernelFraction)
	e.F64(r.Utilization)
	e.U64(r.IdleCycles)
}

// LoadState restores one run result.
func (r *RunResult) LoadState(d *snapshot.Decoder) error {
	var t RunResult
	t.Name = d.String()
	t.Txns = d.U64()
	t.Breakdown.LoadState(d)
	if err := t.Miss.LoadState(d); err != nil {
		return err
	}
	t.Invalidations = d.U64()
	t.Writebacks = d.U64()
	t.Stores = d.U64()
	t.WriteInvalOps = d.U64()
	t.RACProbes = d.U64()
	t.RACHits = d.U64()
	t.L1IMissRate = d.F64()
	t.L1DMissRate = d.F64()
	t.L1IAccesses = d.U64()
	t.L1IMisses = d.U64()
	t.L1DAccesses = d.U64()
	t.L1DMisses = d.U64()
	t.L2Accesses = d.U64()
	t.KernelFraction = d.F64()
	t.Utilization = d.F64()
	t.IdleCycles = d.U64()
	if err := d.Err(); err != nil {
		return err
	}
	*r = t
	return nil
}
