package stats

import (
	"fmt"

	"oltpsim/internal/coherence"
	"oltpsim/internal/snapshot"
)

// SaveState writes the miss table.
func (m *MissTable) SaveState(e *snapshot.Encoder) {
	e.U64s(m.I[:])
	e.U64s(m.D[:])
	e.U64(m.RACHitsI)
	e.U64(m.RACHitsD)
	e.U64s(m.Upgrades[:])
}

// LoadState restores the miss table. Counter writes live here, in the stats
// package, so the counterowner analyzer's single-accumulation-point rule
// holds for snapshot restore exactly as it does for simulation.
func (m *MissTable) LoadState(d *snapshot.Decoder) error {
	i := d.U64s()
	dd := d.U64s()
	racI := d.U64()
	racD := d.U64()
	up := d.U64s()
	if err := d.Err(); err != nil {
		return err
	}
	nc := int(coherence.NumCategories)
	if len(i) != nc || len(dd) != nc || len(up) != nc {
		return fmt.Errorf("stats: miss table has %d/%d/%d categories, want %d", len(i), len(dd), len(up), nc)
	}
	t := MissTable{RACHitsI: racI, RACHitsD: racD}
	copy(t.I[:], i)
	copy(t.D[:], dd)
	copy(t.Upgrades[:], up)
	*m = t
	return nil
}
