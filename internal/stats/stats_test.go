package stats

import (
	"strings"
	"testing"

	"oltpsim/internal/coherence"
	"oltpsim/internal/cpu"
)

func TestMissTableCounting(t *testing.T) {
	var m MissTable
	m.Count(true, coherence.CatLocal)
	m.Count(true, coherence.CatRemoteClean)
	m.Count(false, coherence.CatRemoteDirty)
	m.Count(false, coherence.CatRemoteDirtyRAC)
	m.CountUpgrade(coherence.CatRemoteClean)

	if m.ITotal() != 2 || m.DTotal() != 2 || m.Total() != 4 {
		t.Fatalf("totals I=%d D=%d", m.ITotal(), m.DTotal())
	}
	if m.Local() != 1 || m.RemoteClean() != 1 || m.RemoteDirty() != 2 {
		t.Fatalf("categories %d/%d/%d", m.Local(), m.RemoteClean(), m.RemoteDirty())
	}
	if m.UpgradeTotal() != 1 {
		t.Fatalf("upgrades %d", m.UpgradeTotal())
	}
}

func TestMissTableAdd(t *testing.T) {
	var a, b MissTable
	a.Count(true, coherence.CatLocal)
	b.Count(false, coherence.CatRemoteDirty)
	b.RACHitsD = 3
	a.Add(&b)
	if a.Total() != 2 || a.RACHitsD != 3 {
		t.Fatalf("add wrong: %+v", a)
	}
}

func mkResult(cyclesPerTxn uint64, txns uint64) RunResult {
	r := RunResult{Name: "t", Txns: txns}
	r.Breakdown = cpu.Breakdown{Busy: cyclesPerTxn * txns}
	return r
}

func TestCyclesPerTxn(t *testing.T) {
	r := mkResult(1000, 50)
	if r.CyclesPerTxn() != 1000 {
		t.Fatalf("cycles/txn %v", r.CyclesPerTxn())
	}
	empty := RunResult{}
	if empty.CyclesPerTxn() != 0 || empty.MissesPerTxn() != 0 {
		t.Fatal("zero-txn result not guarded")
	}
}

func TestSpeedup(t *testing.T) {
	base := mkResult(1400, 10)
	fast := mkResult(1000, 10)
	if s := fast.Speedup(&base); s < 1.39 || s > 1.41 {
		t.Fatalf("speedup %v", s)
	}
}

func TestInvalPerStore(t *testing.T) {
	r := RunResult{Stores: 600, WriteInvalOps: 100}
	if got := r.InvalPerStore(); got < 0.166 || got > 0.167 {
		t.Fatalf("inval/store %v, want ~1/6", got)
	}
	if (&RunResult{}).InvalPerStore() != 0 {
		t.Fatal("zero stores not guarded")
	}
}

func TestRACHitRate(t *testing.T) {
	r := RunResult{RACProbes: 100, RACHits: 42}
	if r.RACHitRate() != 0.42 {
		t.Fatalf("hit rate %v", r.RACHitRate())
	}
}

func TestSummaryContainsEssentials(t *testing.T) {
	r := mkResult(1000, 10)
	r.Miss.Count(false, coherence.CatRemoteDirty)
	s := r.Summary()
	for _, want := range []string{"cycles/txn", "breakdown", "L2 misses", "kernel"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
}
