package stats

import (
	"strings"
	"testing"

	"oltpsim/internal/coherence"
	"oltpsim/internal/cpu"
)

func TestMissTableCounting(t *testing.T) {
	var m MissTable
	m.Count(true, coherence.CatLocal)
	m.Count(true, coherence.CatRemoteClean)
	m.Count(false, coherence.CatRemoteDirty)
	m.Count(false, coherence.CatRemoteDirtyRAC)
	m.CountUpgrade(coherence.CatRemoteClean)

	if m.ITotal() != 2 || m.DTotal() != 2 || m.Total() != 4 {
		t.Fatalf("totals I=%d D=%d", m.ITotal(), m.DTotal())
	}
	if m.Local() != 1 || m.RemoteClean() != 1 || m.RemoteDirty() != 2 {
		t.Fatalf("categories %d/%d/%d", m.Local(), m.RemoteClean(), m.RemoteDirty())
	}
	if m.UpgradeTotal() != 1 {
		t.Fatalf("upgrades %d", m.UpgradeTotal())
	}
}

func TestMissTableAdd(t *testing.T) {
	var a, b MissTable
	a.Count(true, coherence.CatLocal)
	b.Count(false, coherence.CatRemoteDirty)
	b.RACHitsD = 3
	a.Add(&b)
	if a.Total() != 2 || a.RACHitsD != 3 {
		t.Fatalf("add wrong: %+v", a)
	}
}

func TestMissTableCountRACHit(t *testing.T) {
	var m MissTable
	m.CountRACHit(true)
	m.CountRACHit(false)
	m.CountRACHit(false)
	if m.RACHitsI != 1 || m.RACHitsD != 2 {
		t.Fatalf("RAC hits I=%d D=%d, want 1/2", m.RACHitsI, m.RACHitsD)
	}
	// CountRACHit tracks a subset of local misses; it must not touch the
	// category tables themselves.
	if m.Total() != 0 {
		t.Fatalf("CountRACHit changed miss totals: %d", m.Total())
	}
}

func TestRunResultAddNode(t *testing.T) {
	var r RunResult
	var m MissTable
	m.Count(false, coherence.CatLocal)
	r.AddNode(&m, 10, 20, 30, 40)
	r.AddNode(&m, 1, 2, 3, 4)
	if r.Miss.Total() != 2 {
		t.Fatalf("misses %d, want 2", r.Miss.Total())
	}
	if r.Stores != 11 || r.L2Accesses != 22 || r.RACProbes != 33 || r.RACHits != 44 {
		t.Fatalf("counters %d/%d/%d/%d, want 11/22/33/44", r.Stores, r.L2Accesses, r.RACProbes, r.RACHits)
	}
}

func mkResult(cyclesPerTxn uint64, txns uint64) RunResult {
	r := RunResult{Name: "t", Txns: txns}
	r.Breakdown = cpu.Breakdown{Busy: cyclesPerTxn * txns}
	return r
}

func TestCyclesPerTxn(t *testing.T) {
	r := mkResult(1000, 50)
	if r.CyclesPerTxn() != 1000 {
		t.Fatalf("cycles/txn %v", r.CyclesPerTxn())
	}
	empty := RunResult{}
	if empty.CyclesPerTxn() != 0 || empty.MissesPerTxn() != 0 {
		t.Fatal("zero-txn result not guarded")
	}
}

func TestSpeedup(t *testing.T) {
	base := mkResult(1400, 10)
	fast := mkResult(1000, 10)
	if s := fast.Speedup(&base); s < 1.39 || s > 1.41 {
		t.Fatalf("speedup %v", s)
	}
}

func TestInvalPerStore(t *testing.T) {
	r := RunResult{Stores: 600, WriteInvalOps: 100}
	if got := r.InvalPerStore(); got < 0.166 || got > 0.167 {
		t.Fatalf("inval/store %v, want ~1/6", got)
	}
	if (&RunResult{}).InvalPerStore() != 0 {
		t.Fatal("zero stores not guarded")
	}
}

func TestRACHitRate(t *testing.T) {
	r := RunResult{RACProbes: 100, RACHits: 42}
	if r.RACHitRate() != 0.42 {
		t.Fatalf("hit rate %v", r.RACHitRate())
	}
}

// TestSummaryGolden pins the exact rendering of Summary for a fully
// populated result, mirroring the figures_output.txt discipline: any change
// to the report format must be deliberate and show up in review as a new
// golden string, not as silent drift.
func TestSummaryGolden(t *testing.T) {
	r := RunResult{
		Name: "full-2M",
		Txns: 100,
		Breakdown: cpu.Breakdown{
			Busy:   40_000,
			L2Hit:  20_000,
			Local:  15_000,
			Remote: 15_000, RemoteDirty: 10_000,
			Idle:   5_000,
			Kernel: 25_000,
		},
		Miss: MissTable{
			I:        [4]uint64{100, 50, 0, 0},
			D:        [4]uint64{200, 0, 150, 50},
			RACHitsD: 30,
		},
		KernelFraction: 0.25,
		Utilization:    0.4,
		IdleCycles:     5_000,
	}
	want := "full-2M            1000 cycles/txn  (100 txns)\n" +
		"  breakdown: CPU 40.0%  L2Hit 20.0%  Local 15.0%  Remote 15.0%  Dirty 10.0%\n" +
		"  L2 misses/txn: 5.5 (I 1.5, D 4.0; local 300, 2-hop 50, 3-hop 200)\n" +
		"  kernel 25.0%  utilization 40.0%  idle 5000\n"
	if got := r.Summary(); got != want {
		t.Fatalf("Summary rendering changed:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestSummaryGoldenZeroTxns pins the degenerate rendering: a result that
// measured nothing must render finite zeros, never Inf/NaN.
func TestSummaryGoldenZeroTxns(t *testing.T) {
	r := RunResult{Name: "empty"}
	want := "empty                 0 cycles/txn  (0 txns)\n" +
		"  L2 misses/txn: 0.0 (I 0.0, D 0.0; local 0, 2-hop 0, 3-hop 0)\n" +
		"  kernel 0.0%  utilization 0.0%  idle 0\n"
	if got := r.Summary(); got != want {
		t.Fatalf("Summary rendering changed:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestSummaryContainsEssentials(t *testing.T) {
	r := mkResult(1000, 10)
	r.Miss.Count(false, coherence.CatRemoteDirty)
	s := r.Summary()
	for _, want := range []string{"cycles/txn", "breakdown", "L2 misses", "kernel"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
}
