package noc

import "testing"

func TestDims(t *testing.T) {
	cases := []struct{ nodes, w, h int }{
		{8, 4, 2}, {16, 4, 4}, {4, 2, 2}, {1, 1, 1}, {6, 3, 2},
	}
	for _, c := range cases {
		w, h := dims(c.nodes)
		if w != c.w || h != c.h {
			t.Errorf("dims(%d) = %dx%d, want %dx%d", c.nodes, w, h, c.w, c.h)
		}
	}
}

func TestHopCountTorus(t *testing.T) {
	n := New(Config{Width: 4, Height: 2, HopCycles: 25, LinkBusyCycles: 16})
	if n.Nodes() != 8 {
		t.Fatalf("nodes = %d", n.Nodes())
	}
	cases := []struct{ a, b, hops int }{
		{0, 0, 0},
		{0, 1, 1},
		{0, 3, 1}, // torus wrap in x
		{0, 4, 1}, // one hop in y
		{0, 5, 2},
		{1, 7, 3}, // (1,0) -> (3,1): two x hops (no shorter wrap) plus one y hop
		{0, 6, 3},
	}
	for _, c := range cases {
		if got := n.HopCount(c.a, c.b); got != c.hops {
			t.Errorf("HopCount(%d,%d) = %d, want %d", c.a, c.b, got, c.hops)
		}
	}
}

func TestHopCountSymmetric(t *testing.T) {
	n := New(DefaultConfig(8))
	for a := 0; a < 8; a++ {
		for b := 0; b < 8; b++ {
			if n.HopCount(a, b) != n.HopCount(b, a) {
				t.Fatalf("asymmetric hop count %d<->%d", a, b)
			}
		}
	}
}

func TestSendLatency(t *testing.T) {
	n := New(Config{Width: 4, Height: 2, HopCycles: 25, LinkBusyCycles: 16})
	lat, q := n.Send(0, 5, 0)
	if q != 0 {
		t.Fatalf("uncontended send queued %d", q)
	}
	if want := uint32(2 * 25); lat != want {
		t.Fatalf("latency %d, want %d", lat, want)
	}
	if lat, _ := n.Send(3, 3, 0); lat != 0 {
		t.Fatal("self-send has latency")
	}
}

func TestLinkContention(t *testing.T) {
	n := New(Config{Width: 4, Height: 1, HopCycles: 25, LinkBusyCycles: 16})
	n.Send(0, 1, 100)
	_, q := n.Send(0, 1, 100) // same link, same instant
	if q == 0 {
		t.Fatal("second message on a busy link was not queued")
	}
	if n.Stats.QueueCycles == 0 || n.Stats.Messages != 2 {
		t.Fatalf("stats %+v", n.Stats)
	}
}

func TestSendStatsAndReset(t *testing.T) {
	n := New(DefaultConfig(8))
	n.Send(0, 6, 0)
	if n.Stats.HopsTotal == 0 {
		t.Fatal("no hops recorded")
	}
	n.ResetStats()
	if n.Stats != (Stats{}) {
		t.Fatal("stats not reset")
	}
}

func TestBadTorusPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with zero dims did not panic")
		}
	}()
	New(Config{Width: 0, Height: 2})
}
