package noc

import (
	"fmt"

	"oltpsim/internal/snapshot"
)

// SaveState writes the link reservation horizon and the counters.
func (n *Network) SaveState(e *snapshot.Encoder) {
	e.U64s(n.linkBusy)
	e.U64(n.Stats.Messages)
	e.U64(n.Stats.HopsTotal)
	e.U64(n.Stats.QueueCycles)
}

// LoadState restores a network of identical topology.
func (n *Network) LoadState(d *snapshot.Decoder) error {
	busy := d.U64s()
	stats := Stats{Messages: d.U64(), HopsTotal: d.U64(), QueueCycles: d.U64()}
	if err := d.Err(); err != nil {
		return err
	}
	if len(busy) != len(n.linkBusy) {
		return fmt.Errorf("noc: snapshot has %d links, want %d", len(busy), len(n.linkBusy))
	}
	copy(n.linkBusy, busy)
	n.Stats = stats
	return nil
}
