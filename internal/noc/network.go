// Package noc models the interconnect of the multiprocessor: a 2D-torus
// point-to-point network like the one the Alpha 21364 forms by tiling
// processors (paper Figure 1B), with dimension-order routing, per-hop
// latency, and optional link occupancy. The paper's Figure 3 latencies are
// end-to-end, so the base configurations do not consult the network for
// latency; the detailed/contention mode and the ablation benchmarks use it
// to expose topology and bandwidth effects the fixed numbers hide.
package noc

import "fmt"

// Config describes the network.
type Config struct {
	// Width and Height define the torus (4x2 for the paper's 8 nodes).
	Width, Height int
	// HopCycles is the per-hop latency (router + link flight).
	HopCycles uint32
	// LinkBusyCycles is how long one message occupies a link (serialization
	// at >4 GB/s per paper Section 2.3: a 64-byte line plus header in ~16ns).
	LinkBusyCycles uint32
}

// DefaultConfig returns the 8-node torus.
func DefaultConfig(nodes int) Config {
	w, h := dims(nodes)
	return Config{Width: w, Height: h, HopCycles: 25, LinkBusyCycles: 16}
}

// dims picks a near-square factorization.
func dims(nodes int) (int, int) {
	bestW, bestH := nodes, 1
	for w := 1; w*w <= nodes; w++ {
		if nodes%w == 0 {
			bestW, bestH = nodes/w, w
		}
	}
	return bestW, bestH
}

// Stats counts network activity.
type Stats struct {
	Messages    uint64
	HopsTotal   uint64
	QueueCycles uint64
}

// Network is the torus with per-link occupancy. Links are indexed by
// (node, direction); four directions per node.
type Network struct {
	cfg      Config
	linkBusy []uint64 // [node*4 + dir]
	Stats    Stats
}

const (
	dirEast = iota
	dirWest
	dirNorth
	dirSouth
)

// New builds the network.
func New(cfg Config) *Network {
	if cfg.Width <= 0 || cfg.Height <= 0 {
		panic(fmt.Sprintf("noc: bad torus %dx%d", cfg.Width, cfg.Height))
	}
	return &Network{cfg: cfg, linkBusy: make([]uint64, cfg.Width*cfg.Height*4)}
}

// Nodes returns the node count.
func (n *Network) Nodes() int { return n.cfg.Width * n.cfg.Height }

func (n *Network) coords(node int) (x, y int) {
	return node % n.cfg.Width, node / n.cfg.Width
}

// torusDelta returns the signed shortest displacement from a to b on a ring
// of size m.
func torusDelta(a, b, m int) int {
	d := (b - a) % m
	if d < 0 {
		d += m
	}
	if d > m/2 {
		d -= m
	}
	return d
}

// HopCount returns the dimension-order hop count between two nodes.
func (n *Network) HopCount(a, b int) int {
	ax, ay := n.coords(a)
	bx, by := n.coords(b)
	dx := torusDelta(ax, bx, n.cfg.Width)
	dy := torusDelta(ay, by, n.cfg.Height)
	return abs(dx) + abs(dy)
}

// Send routes one message from a to b at time at, reserving each link along
// the dimension-order path, and returns (latency, queueDelay): latency is
// hops*HopCycles plus any queuing.
func (n *Network) Send(a, b int, at uint64) (latency, queued uint32) {
	n.Stats.Messages++
	if a == b {
		return 0, 0
	}
	ax, ay := n.coords(a)
	bx, by := n.coords(b)
	dx := torusDelta(ax, bx, n.cfg.Width)
	dy := torusDelta(ay, by, n.cfg.Height)

	t := at
	x, y := ax, ay
	step := func(node, dir, nx, ny int) {
		li := node*4 + dir
		if n.linkBusy[li] > t {
			q := n.linkBusy[li] - t
			queued += uint32(q)
			n.Stats.QueueCycles += q
			t = n.linkBusy[li]
		}
		n.linkBusy[li] = t + uint64(n.cfg.LinkBusyCycles)
		t += uint64(n.cfg.HopCycles)
		n.Stats.HopsTotal++
		x, y = nx, ny
	}
	for dx != 0 {
		if dx > 0 {
			step(y*n.cfg.Width+x, dirEast, (x+1)%n.cfg.Width, y)
			dx--
		} else {
			step(y*n.cfg.Width+x, dirWest, (x-1+n.cfg.Width)%n.cfg.Width, y)
			dx++
		}
	}
	for dy != 0 {
		if dy > 0 {
			step(y*n.cfg.Width+x, dirSouth, x, (y+1)%n.cfg.Height)
			dy--
		} else {
			step(y*n.cfg.Width+x, dirNorth, x, (y-1+n.cfg.Height)%n.cfg.Height)
			dy++
		}
	}
	latency = uint32(t - at)
	return latency, queued
}

// ResetStats zeroes counters.
func (n *Network) ResetStats() { n.Stats = Stats{} }

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
