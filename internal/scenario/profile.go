// Package scenario defines declarative time-varying workload profiles: an
// ordered list of phases, each overriding the transaction mix (update /
// read / scan), the hot-branch Zipf skew, the active working-set scale, and
// its duration in retired transactions, with optional linear ramps between
// phases and a global time-compression knob. Profiles are plain JSON
// (stdlib only), strictly decoded and validated, and compiled into an
// immutable Schedule the workload layer queries once per committed
// transaction. Everything here is a pure function of the profile text — no
// clocks, no maps, no global state — so a compiled schedule perturbs
// simulation determinism only through the parameters it was asked to vary.
package scenario

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Profile bounds. They are generous for real studies while keeping a
// hostile profile from parking the simulator on one absurd schedule.
const (
	// MaxProfileBytes bounds the JSON text of one profile.
	MaxProfileBytes = 1 << 20
	// MaxPhases bounds the phases in one profile.
	MaxPhases = 64
	// MaxNameLen bounds the profile and phase display names.
	MaxNameLen = 100
	// MaxPhaseTxns bounds one phase's duration in retired transactions.
	MaxPhaseTxns = 10_000_000
	// MaxScanBlocks bounds the per-scan block count.
	MaxScanBlocks = 256
	// MaxTimeCompression bounds the duration divisor.
	MaxTimeCompression = 1e6
	// DefaultScanBlocks is the scan length when a phase leaves scan_blocks
	// at 0.
	DefaultScanBlocks = 8
)

// Mix is a phase's transaction mix as non-negative weights. Weights are
// normalized at compile time, so {3,1,0} and {0.75,0.25,0} are the same mix.
// A nil Mix on a phase means pure update — today's steady-state TPC-B.
type Mix struct {
	// Update weights the classic TPC-B read-modify-write transaction.
	Update float64 `json:"update"`
	// Read weights the read-only variant: the same three row lookups with
	// no mutation, undo, redo, or history insert.
	Read float64 `json:"read,omitempty"`
	// Scan weights a DSS-style sequential scan over account blocks.
	Scan float64 `json:"scan,omitempty"`
}

// Phase is one segment of the profile, measured in retired transactions.
type Phase struct {
	// Name labels the phase in timelines; optional.
	Name string `json:"name,omitempty"`
	// Txns is the phase duration in committed transactions (before time
	// compression). Must be >= 1.
	Txns uint64 `json:"txns"`
	// RampTxns is the length of the linear transition at the start of this
	// phase: over the first RampTxns transactions, each transaction draws
	// this phase's parameter set with probability position/RampTxns and the
	// previous phase's otherwise. Must be <= Txns; the first phase has
	// nothing to ramp from and must leave it 0.
	RampTxns uint64 `json:"ramp_txns,omitempty"`
	// Mix overrides the transaction mix; nil means pure update.
	Mix *Mix `json:"mix,omitempty"`
	// Skew is the hot-branch Zipf theta in [0, 1): 0 keeps the uniform
	// teller/branch selection, larger values concentrate transactions on a
	// few hot branches.
	Skew float64 `json:"skew,omitempty"`
	// WorkingSet scales the active account range per branch, in (0, 1];
	// 0 means 1 (the whole branch).
	WorkingSet float64 `json:"working_set,omitempty"`
	// ScanBlocks is how many account blocks one scan transaction touches;
	// 0 means DefaultScanBlocks.
	ScanBlocks int `json:"scan_blocks,omitempty"`
}

// Profile is the decoded JSON form of a scenario: ordered phases plus the
// knobs that apply across them.
type Profile struct {
	// Name labels the profile in timelines; optional.
	Name string `json:"name,omitempty"`
	// TimeCompression divides every phase duration (and ramp), so the same
	// shape can run short for tests and long for studies; 0 means 1.
	TimeCompression float64 `json:"time_compression,omitempty"`
	// Phases run in order; at least one is required. Positions past the
	// last phase hold its parameters.
	Phases []Phase `json:"phases"`
}

// DecodeProfile reads, strictly decodes, bounds, and validates one profile.
// Any profile it accepts compiles into a valid Schedule (fuzzed by
// FuzzProfileDecode), and re-encoding an accepted profile round-trips.
func DecodeProfile(r io.Reader) (Profile, error) {
	var p Profile
	dec := json.NewDecoder(io.LimitReader(r, MaxProfileBytes+1))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return Profile{}, fmt.Errorf("scenario: decoding profile: %w", err)
	}
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return Profile{}, errors.New("scenario: trailing data after profile JSON")
	}
	if err := p.Validate(); err != nil {
		return Profile{}, err
	}
	return p, nil
}

// validName rejects characters that would corrupt the CSV timeline or the
// fingerprint framing.
func validName(s string) error {
	if len(s) > MaxNameLen {
		return fmt.Errorf("longer than %d bytes", MaxNameLen)
	}
	if strings.ContainsAny(s, ",\"|\n\r") {
		return errors.New(`contains one of , " | or a newline`)
	}
	return nil
}

func finite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }

// Validate reports structural errors: bounds, weights, ramp placement.
func (p *Profile) Validate() error {
	if err := validName(p.Name); err != nil {
		return fmt.Errorf("scenario: profile name %v", err)
	}
	if len(p.Phases) == 0 {
		return errors.New("scenario: profile has no phases")
	}
	if len(p.Phases) > MaxPhases {
		return fmt.Errorf("scenario: %d phases exceeds the limit of %d", len(p.Phases), MaxPhases)
	}
	if tc := p.TimeCompression; tc != 0 && (!finite(tc) || tc <= 0 || tc > MaxTimeCompression) {
		return fmt.Errorf("scenario: time_compression %v outside (0, %g]", tc, float64(MaxTimeCompression))
	}
	for i := range p.Phases {
		ph := &p.Phases[i]
		if err := validName(ph.Name); err != nil {
			return fmt.Errorf("scenario: phase %d name %v", i, err)
		}
		if ph.Txns == 0 || ph.Txns > MaxPhaseTxns {
			return fmt.Errorf("scenario: phase %d txns %d outside [1, %d]", i, ph.Txns, uint64(MaxPhaseTxns))
		}
		if ph.RampTxns > ph.Txns {
			return fmt.Errorf("scenario: phase %d ramp_txns %d exceeds txns %d", i, ph.RampTxns, ph.Txns)
		}
		if i == 0 && ph.RampTxns != 0 {
			return errors.New("scenario: the first phase has nothing to ramp from; ramp_txns must be 0")
		}
		if m := ph.Mix; m != nil {
			for _, w := range [3]float64{m.Update, m.Read, m.Scan} {
				if !finite(w) || w < 0 {
					return fmt.Errorf("scenario: phase %d mix weight %v negative or non-finite", i, w)
				}
			}
			if m.Update+m.Read+m.Scan <= 0 {
				return fmt.Errorf("scenario: phase %d mix weights sum to zero", i)
			}
		}
		if !finite(ph.Skew) || ph.Skew < 0 || ph.Skew >= 1 {
			return fmt.Errorf("scenario: phase %d skew %v outside [0, 1)", i, ph.Skew)
		}
		if ws := ph.WorkingSet; ws != 0 && (!finite(ws) || ws <= 0 || ws > 1) {
			return fmt.Errorf("scenario: phase %d working_set %v outside (0, 1]", i, ws)
		}
		if ph.ScanBlocks < 0 || ph.ScanBlocks > MaxScanBlocks {
			return fmt.Errorf("scenario: phase %d scan_blocks %d outside [0, %d]", i, ph.ScanBlocks, MaxScanBlocks)
		}
	}
	return nil
}

// Shape is one phase's effective generator parameters after normalization:
// the workload layer reads these once per transaction.
type Shape struct {
	// Mix is normalized to sum to 1.
	Mix Mix
	// Skew is the hot-branch Zipf theta (0 = uniform).
	Skew float64
	// WorkingSet is the active account fraction in (0, 1].
	WorkingSet float64
	// ScanBlocks is the per-scan block count, >= 1.
	ScanBlocks int
}

// compiledPhase is one phase with time compression applied.
type compiledPhase struct {
	name  string
	txns  uint64
	ramp  uint64
	shape Shape
}

// Schedule is the compiled, immutable form of a profile. All methods are
// read-only and allocation-free, so the workload layer may call them from
// the simulator's hot path.
type Schedule struct {
	name        string
	fingerprint string
	phases      []compiledPhase
	// bounds[i] is the cumulative transaction position at which phase i
	// ends; bounds[len-1] is the total.
	bounds []uint64
}

// compress divides n by the time-compression factor, rounding to nearest,
// with a floor (1 for phase durations so every phase retires at least one
// transaction, 0 for ramps).
func compress(n uint64, tc float64, floor uint64) uint64 {
	if tc == 0 || tc == 1 {
		return n
	}
	c := uint64(math.Round(float64(n) / tc))
	if c < floor {
		return floor
	}
	return c
}

// Compile validates the profile and builds its schedule.
func (p *Profile) Compile() (*Schedule, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	s := &Schedule{
		name:   p.Name,
		phases: make([]compiledPhase, len(p.Phases)),
		bounds: make([]uint64, len(p.Phases)),
	}
	var cum uint64
	for i := range p.Phases {
		ph := &p.Phases[i]
		cp := &s.phases[i]
		cp.name = ph.Name
		if cp.name == "" {
			cp.name = "phase" + strconv.Itoa(i)
		}
		cp.txns = compress(ph.Txns, p.TimeCompression, 1)
		cp.ramp = compress(ph.RampTxns, p.TimeCompression, 0)
		if cp.ramp > cp.txns {
			cp.ramp = cp.txns
		}
		cp.shape = Shape{Mix: Mix{Update: 1}, Skew: ph.Skew, WorkingSet: 1, ScanBlocks: DefaultScanBlocks}
		if m := ph.Mix; m != nil {
			sum := m.Update + m.Read + m.Scan
			cp.shape.Mix = Mix{Update: m.Update / sum, Read: m.Read / sum, Scan: m.Scan / sum}
		}
		if ph.WorkingSet != 0 {
			cp.shape.WorkingSet = ph.WorkingSet
		}
		if ph.ScanBlocks != 0 {
			cp.shape.ScanBlocks = ph.ScanBlocks
		}
		cum += cp.txns
		s.bounds[i] = cum
	}
	s.fingerprint = s.computeFingerprint()
	return s, nil
}

// MustCompile panics on validation errors (test fixtures are static, so an
// error there is a programming mistake).
func (p *Profile) MustCompile() *Schedule {
	s, err := p.Compile()
	if err != nil {
		panic(err)
	}
	return s
}

// Name returns the profile's display name.
func (s *Schedule) Name() string { return s.name }

// NumPhases returns the phase count.
func (s *Schedule) NumPhases() int { return len(s.phases) }

// PhaseName returns phase i's display name ("phase<i>" when the profile
// left it blank).
func (s *Schedule) PhaseName(i int) string { return s.phases[i].name }

// PhaseTxns returns phase i's compiled duration in retired transactions.
func (s *Schedule) PhaseTxns(i int) uint64 { return s.phases[i].txns }

// RampTxns returns phase i's compiled ramp length.
func (s *Schedule) RampTxns(i int) uint64 { return s.phases[i].ramp }

// Shape returns phase i's effective generator parameters.
func (s *Schedule) Shape(i int) *Shape { return &s.phases[i].shape }

// Boundary returns the cumulative transaction position at which phase i
// ends (Boundary(NumPhases()-1) == TotalTxns()).
func (s *Schedule) Boundary(i int) uint64 { return s.bounds[i] }

// TotalTxns returns the schedule's total duration in retired transactions.
func (s *Schedule) TotalTxns() uint64 { return s.bounds[len(s.bounds)-1] }

// Point locates one retired-transaction position on the schedule.
type Point struct {
	// Phase is the index of the phase holding the position (positions past
	// the end stay in the last phase).
	Phase int
	// InRamp reports whether the position lies in the phase's ramp window.
	InRamp bool
	// RampFrac is the probability of drawing the incoming phase's
	// parameters at this position (meaningful only when InRamp).
	RampFrac float64
}

// At locates pos. The linear walk is over at most MaxPhases entries and
// allocates nothing, so the workload layer calls it once per transaction.
func (s *Schedule) At(pos uint64) Point {
	for i, b := range s.bounds {
		if pos >= b {
			continue
		}
		pt := Point{Phase: i}
		if i > 0 {
			if r := s.phases[i].ramp; r > 0 {
				if off := pos - s.bounds[i-1]; off < r {
					pt.InRamp = true
					pt.RampFrac = float64(off) / float64(r)
				}
			}
		}
		return pt
	}
	return Point{Phase: len(s.phases) - 1}
}

// Fingerprint identifies the compiled schedule: two profiles that compile
// to the same phases produce the same fingerprint. Checkpoint containers
// carry it so a resume under a different scenario is rejected instead of
// silently mixing streams.
func (s *Schedule) Fingerprint() string { return s.fingerprint }

func fmtF(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

func (s *Schedule) computeFingerprint() string {
	var b strings.Builder
	b.WriteString("scenario1|")
	b.WriteString(s.name)
	for i := range s.phases {
		p := &s.phases[i]
		fmt.Fprintf(&b, "|%s,%d,%d,%s,%s,%s,%s,%s,%d",
			p.name, p.txns, p.ramp,
			fmtF(p.shape.Mix.Update), fmtF(p.shape.Mix.Read), fmtF(p.shape.Mix.Scan),
			fmtF(p.shape.Skew), fmtF(p.shape.WorkingSet), p.shape.ScanBlocks)
	}
	return b.String()
}
