package scenario

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
)

func decode(t *testing.T, text string) Profile {
	t.Helper()
	p, err := DecodeProfile(strings.NewReader(text))
	if err != nil {
		t.Fatalf("DecodeProfile(%q): %v", text, err)
	}
	return p
}

func TestDecodeMinimal(t *testing.T) {
	p := decode(t, `{"phases":[{"txns":100}]}`)
	if len(p.Phases) != 1 || p.Phases[0].Txns != 100 {
		t.Fatalf("unexpected profile: %+v", p)
	}
	s := p.MustCompile()
	if s.NumPhases() != 1 || s.TotalTxns() != 100 {
		t.Fatalf("unexpected schedule: phases=%d total=%d", s.NumPhases(), s.TotalTxns())
	}
	sh := s.Shape(0)
	want := Shape{Mix: Mix{Update: 1}, WorkingSet: 1, ScanBlocks: DefaultScanBlocks}
	if *sh != want {
		t.Fatalf("default shape = %+v, want %+v", *sh, want)
	}
	if s.PhaseName(0) != "phase0" {
		t.Fatalf("default phase name = %q", s.PhaseName(0))
	}
}

func TestDecodeRejects(t *testing.T) {
	cases := []struct{ name, text string }{
		{"empty", `{}`},
		{"no phases", `{"phases":[]}`},
		{"zero txns", `{"phases":[{"txns":0}]}`},
		{"txns over cap", `{"phases":[{"txns":10000001}]}`},
		{"unknown field", `{"phases":[{"txns":1,"bogus":2}]}`},
		{"trailing data", `{"phases":[{"txns":1}]}{"phases":[{"txns":1}]}`},
		{"ramp on first phase", `{"phases":[{"txns":10,"ramp_txns":5}]}`},
		{"ramp exceeds txns", `{"phases":[{"txns":10},{"txns":10,"ramp_txns":11}]}`},
		{"negative skew", `{"phases":[{"txns":1,"skew":-0.5}]}`},
		{"skew at one", `{"phases":[{"txns":1,"skew":1}]}`},
		{"working set over one", `{"phases":[{"txns":1,"working_set":1.5}]}`},
		{"negative working set", `{"phases":[{"txns":1,"working_set":-0.25}]}`},
		{"zero mix", `{"phases":[{"txns":1,"mix":{"update":0}}]}`},
		{"negative mix weight", `{"phases":[{"txns":1,"mix":{"update":1,"read":-1}}]}`},
		{"scan blocks over cap", `{"phases":[{"txns":1,"scan_blocks":257}]}`},
		{"negative scan blocks", `{"phases":[{"txns":1,"scan_blocks":-1}]}`},
		{"bad time compression", `{"time_compression":-2,"phases":[{"txns":1}]}`},
		{"comma in name", `{"name":"a,b","phases":[{"txns":1}]}`},
		{"not an object", `[1,2,3]`},
	}
	for _, c := range cases {
		if _, err := DecodeProfile(strings.NewReader(c.text)); err == nil {
			t.Errorf("%s: DecodeProfile(%q) accepted", c.name, c.text)
		}
	}
}

func TestDecodeSizeLimit(t *testing.T) {
	huge := `{"name":"` + strings.Repeat("x", MaxProfileBytes) + `","phases":[{"txns":1}]}`
	if _, err := DecodeProfile(strings.NewReader(huge)); err == nil {
		t.Fatal("oversized profile accepted")
	}
}

func TestRoundTrip(t *testing.T) {
	text := `{"name":"diurnal","time_compression":2,"phases":[
		{"name":"day","txns":100,"mix":{"update":3,"read":1},"skew":0.6,"working_set":0.5},
		{"name":"night","txns":60,"ramp_txns":20,"mix":{"update":1,"read":2,"scan":1},"scan_blocks":4}]}`
	p := decode(t, text)
	enc, err := json.Marshal(&p)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	p2, err := DecodeProfile(bytes.NewReader(enc))
	if err != nil {
		t.Fatalf("re-decode: %v", err)
	}
	if !reflect.DeepEqual(p, p2) {
		t.Fatalf("round trip changed the profile:\n%+v\n%+v", p, p2)
	}
	if p.MustCompile().Fingerprint() != p2.MustCompile().Fingerprint() {
		t.Fatal("round trip changed the fingerprint")
	}
}

func TestCompileNormalizesMix(t *testing.T) {
	p := decode(t, `{"phases":[{"txns":10,"mix":{"update":3,"read":1}}]}`)
	sh := p.MustCompile().Shape(0)
	if math.Abs(sh.Mix.Update-0.75) > 1e-12 || math.Abs(sh.Mix.Read-0.25) > 1e-12 || sh.Mix.Scan != 0 {
		t.Fatalf("normalized mix = %+v", sh.Mix)
	}
}

func TestTimeCompression(t *testing.T) {
	p := decode(t, `{"time_compression":10,"phases":[{"txns":100},{"txns":95,"ramp_txns":40},{"txns":3}]}`)
	s := p.MustCompile()
	if got := s.PhaseTxns(0); got != 10 {
		t.Fatalf("phase 0 compressed to %d, want 10", got)
	}
	// 95/10 rounds to nearest (10), 40/10 compresses the ramp to 4.
	if got := s.PhaseTxns(1); got != 10 {
		t.Fatalf("phase 1 compressed to %d, want 10", got)
	}
	if got := s.RampTxns(1); got != 4 {
		t.Fatalf("phase 1 ramp compressed to %d, want 4", got)
	}
	// 3/10 rounds to 0 but phases always retire at least one transaction.
	if got := s.PhaseTxns(2); got != 1 {
		t.Fatalf("phase 2 compressed to %d, want 1", got)
	}
	if s.TotalTxns() != 21 {
		t.Fatalf("total = %d, want 21", s.TotalTxns())
	}
}

func TestAt(t *testing.T) {
	p := decode(t, `{"phases":[{"txns":10},{"txns":10,"ramp_txns":4},{"txns":5}]}`)
	s := p.MustCompile()
	cases := []struct {
		pos  uint64
		want Point
	}{
		{0, Point{Phase: 0}},
		{9, Point{Phase: 0}},
		{10, Point{Phase: 1, InRamp: true, RampFrac: 0}},
		{12, Point{Phase: 1, InRamp: true, RampFrac: 0.5}},
		{13, Point{Phase: 1, InRamp: true, RampFrac: 0.75}},
		{14, Point{Phase: 1}},
		{19, Point{Phase: 1}},
		{20, Point{Phase: 2}},
		{24, Point{Phase: 2}},
		// Positions past the end clamp to the last phase.
		{25, Point{Phase: 2}},
		{1 << 40, Point{Phase: 2}},
	}
	for _, c := range cases {
		if got := s.At(c.pos); got != c.want {
			t.Errorf("At(%d) = %+v, want %+v", c.pos, got, c.want)
		}
	}
}

func TestBoundaries(t *testing.T) {
	p := decode(t, `{"phases":[{"txns":7},{"txns":11},{"txns":13}]}`)
	s := p.MustCompile()
	want := []uint64{7, 18, 31}
	for i, w := range want {
		if got := s.Boundary(i); got != w {
			t.Errorf("Boundary(%d) = %d, want %d", i, got, w)
		}
	}
	if s.TotalTxns() != 31 {
		t.Fatalf("TotalTxns = %d, want 31", s.TotalTxns())
	}
}

func TestFingerprintDistinguishes(t *testing.T) {
	base := decode(t, `{"phases":[{"txns":10},{"txns":10}]}`)
	variants := []string{
		`{"phases":[{"txns":10},{"txns":11}]}`,
		`{"phases":[{"txns":10},{"txns":10,"ramp_txns":3}]}`,
		`{"phases":[{"txns":10},{"txns":10,"skew":0.5}]}`,
		`{"phases":[{"txns":10},{"txns":10,"working_set":0.5}]}`,
		`{"phases":[{"txns":10},{"txns":10,"mix":{"update":1,"read":1}}]}`,
	}
	fp := base.MustCompile().Fingerprint()
	for _, text := range variants {
		v := decode(t, text)
		if v.MustCompile().Fingerprint() == fp {
			t.Errorf("variant %q shares the base fingerprint", text)
		}
	}
	// Equivalent mixes compile to the same schedule and fingerprint.
	a := decode(t, `{"phases":[{"txns":10,"mix":{"update":3,"read":1}}]}`)
	b := decode(t, `{"phases":[{"txns":10,"mix":{"update":0.75,"read":0.25}}]}`)
	if a.MustCompile().Fingerprint() != b.MustCompile().Fingerprint() {
		t.Fatal("equivalent mixes fingerprint differently")
	}
}
