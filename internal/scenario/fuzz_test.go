package scenario

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"testing"
)

// FuzzProfileDecode guards the profile decoder's contract: hostile JSON
// never panics, and every accepted profile (a) survives an encode/decode
// round trip unchanged, (b) compiles into a schedule whose phases all
// carry in-range shapes, and (c) answers At() for any position without
// panicking.
func FuzzProfileDecode(f *testing.F) {
	f.Add([]byte(`{"phases":[{"txns":100}]}`))
	f.Add([]byte(`{"name":"diurnal","phases":[{"name":"day","txns":200,"mix":{"update":3,"read":1},"skew":0.6},{"name":"night","txns":100,"ramp_txns":25,"mix":{"update":1,"read":2,"scan":1},"working_set":0.25,"scan_blocks":4}]}`))
	f.Add([]byte(`{"time_compression":10,"phases":[{"txns":1000},{"txns":500,"ramp_txns":100,"skew":0.99}]}`))
	f.Add([]byte(`{"phases":[{"txns":0}]}`))
	f.Add([]byte(`{"phases":[{"txns":1,"skew":1.5}]}`))
	f.Add([]byte(`{"phases":[{"txns":1}],"bogus":true}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"phases":[{"txns":1}]}trailing`))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodeProfile(bytes.NewReader(data))
		if err != nil {
			return
		}
		enc, err := json.Marshal(&p)
		if err != nil {
			t.Fatalf("accepted profile does not re-encode: %v", err)
		}
		p2, err := DecodeProfile(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("re-encoded profile rejected: %v\n%s", err, enc)
		}
		if !reflect.DeepEqual(p, p2) {
			t.Fatalf("round trip changed the profile:\n%+v\n%+v", p, p2)
		}
		s, err := p.Compile()
		if err != nil {
			t.Fatalf("accepted profile does not compile: %v", err)
		}
		if s.NumPhases() != len(p.Phases) {
			t.Fatalf("compiled %d phases from %d", s.NumPhases(), len(p.Phases))
		}
		var cum uint64
		for i := 0; i < s.NumPhases(); i++ {
			n := s.PhaseTxns(i)
			if n < 1 {
				t.Fatalf("phase %d compiled to %d txns", i, n)
			}
			if r := s.RampTxns(i); r > n || (i == 0 && r != 0) {
				t.Fatalf("phase %d ramp %d out of place (txns %d)", i, r, n)
			}
			cum += n
			if s.Boundary(i) != cum {
				t.Fatalf("Boundary(%d) = %d, want %d", i, s.Boundary(i), cum)
			}
			sh := s.Shape(i)
			sum := sh.Mix.Update + sh.Mix.Read + sh.Mix.Scan
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("phase %d mix sums to %v", i, sum)
			}
			if sh.Skew < 0 || sh.Skew >= 1 || sh.WorkingSet <= 0 || sh.WorkingSet > 1 ||
				sh.ScanBlocks < 1 || sh.ScanBlocks > MaxScanBlocks {
				t.Fatalf("phase %d shape out of range: %+v", i, *sh)
			}
		}
		if s.TotalTxns() != cum {
			t.Fatalf("TotalTxns = %d, want %d", s.TotalTxns(), cum)
		}
		for _, pos := range []uint64{0, cum / 2, cum - 1, cum, cum + 1, math.MaxUint64} {
			pt := s.At(pos)
			if pt.Phase < 0 || pt.Phase >= s.NumPhases() {
				t.Fatalf("At(%d).Phase = %d", pos, pt.Phase)
			}
			if pt.RampFrac < 0 || pt.RampFrac >= 1 {
				t.Fatalf("At(%d).RampFrac = %v", pos, pt.RampFrac)
			}
		}
		if s.Fingerprint() == "" {
			t.Fatal("empty fingerprint")
		}
	})
}
