package cpu

import "oltpsim/internal/memref"

// InOrder is the single-issue pipelined processor model (paper Section 2.2:
// SimOS-Alpha's medium-speed model, used for the bulk of the study). Every
// instruction costs one busy cycle; every memory stall is fully exposed —
// the memory system is sequentially consistent, so stores stall exactly like
// loads.
type InOrder struct {
	now uint64
	b   Breakdown
}

// NewInOrder returns a model with its clock at zero.
func NewInOrder() *InOrder { return &InOrder{} }

// Account implements Model.
func (m *InOrder) Account(r memref.Ref, lat uint32, cat StallCat) {
	if r.Kind == memref.IFetch {
		n := uint64(r.Instrs)
		m.now += n
		m.b.Busy += n
		m.b.Instructions += n
		if r.Kernel {
			m.b.Kernel += n
		}
	}
	if lat > 0 {
		m.now += uint64(lat)
		m.b.charge(cat, uint64(lat), r.Kernel)
	}
}

// AccountRun batch-accounts a fast-forwarded run of zero-latency L1 hits:
// instrs fetched instructions, kernelInstrs of them in kernel mode, and no
// stall cycles. It is exactly Account folded over the run's references —
// data hits with zero latency contribute nothing, so only the instruction
// totals remain — applied in O(1) instead of per reference.
func (m *InOrder) AccountRun(instrs, kernelInstrs uint64) {
	m.now += instrs
	m.b.Busy += instrs
	m.b.Instructions += instrs
	m.b.Kernel += kernelInstrs
}

// Now implements Model.
func (m *InOrder) Now() uint64 { return m.now }

// AdvanceTo implements Model.
func (m *InOrder) AdvanceTo(t uint64) {
	if t > m.now {
		m.b.Idle += t - m.now
		m.now = t
	}
}

// Breakdown implements Model.
func (m *InOrder) Breakdown() *Breakdown { return &m.b }

// ResetStats implements Model.
func (m *InOrder) ResetStats() { m.b = Breakdown{} }
