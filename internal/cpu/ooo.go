package cpu

import "oltpsim/internal/memref"

// OOOConfig parametrizes the out-of-order model.
type OOOConfig struct {
	// Width is the issue/retire width (4 in the paper).
	Width int
	// Window is the instruction window size (64 in the paper).
	Window int
	// MemPorts is the number of load/store units (2 in the paper).
	MemPorts int
	// EffectiveWidth is the sustained non-stalled issue rate on OLTP code;
	// it folds in the fetch and branch-prediction losses the abstract
	// reference stream does not model. The paper observes that OLTP has
	// limited ILP and a 4-wide OOO core gains only ~1.4x over single issue.
	EffectiveWidth float64
	// ChainFraction is the probability that a load participates in a
	// dependence chain beyond the explicitly-marked pointer walks: OLTP
	// integer code feeds almost every load into address computation,
	// branches, or a following store, so most load latency cannot leave the
	// critical path. Applied deterministically by sequence hash.
	ChainFraction float64
}

// OOO is the multiple-issue out-of-order processor model (paper Section 7).
// It is an event-driven window model rather than a cycle-accurate core:
//
//   - Non-memory instructions retire at EffectiveWidth per cycle.
//   - A memory operation at instruction sequence s may not issue before
//     instruction s-Window has retired (the ROB gate). Independent misses
//     that fall inside one window overlap — real memory-level parallelism —
//     while misses more than a window apart serialize.
//   - A load marked DepPrev (address generation depends on the previous
//     memory access: index chains, hash buckets, linked cursors) cannot
//     issue before that access completes. OLTP's pointer-chased metadata
//     makes such chains pervasive, which is why the paper finds the large
//     memory stall "extremely difficult to hide".
//   - The memory system is sequentially consistent and the model does not
//     speculate past stores: a store issues at the retire frontier and its
//     latency is fully exposed (consistent with Ranganathan et al. [16]).
//   - Load/store units bound memory issue bandwidth.
//
// Retire is in order, so the clock is the retire frontier and every gap is
// attributed to the stalling reference's category, mirroring head-of-ROB
// stall accounting.
type OOO struct {
	cfg OOOConfig
	// portStep is 1/MemPorts, precomputed at construction: it keeps the
	// per-reference issue path division-free and MemPorts is validated
	// non-zero exactly once.
	portStep float64

	seq             uint64  // instruction sequence count
	now             float64 // retire frontier
	lastMemComplete float64
	ports           []float64
	nextPort        int

	// gates is a ring of (seq, retire-time) checkpoints used to find the
	// retire time of instruction seq-Window.
	gates []gate
	gHead int
	gLen  int

	b    Breakdown
	frac [8]float64 // fractional carries per bucket to keep integer sums exact
}

type gate struct {
	seq uint64
	t   float64
}

// iFetchExposure is the fraction of an instruction-fetch miss that the
// window drain cannot cover.
const iFetchExposure = 0.72

const (
	fracBusy = iota
	fracL2
	fracLocal
	fracRemote
	fracDirty
	fracKernel
)

// NewOOO builds the model; zero-valued fields of cfg take the paper's
// defaults (4-wide, 64-entry, 2 ports, effective width 2.0).
func NewOOO(cfg OOOConfig) *OOO {
	if cfg.Width == 0 {
		cfg.Width = 4
	}
	if cfg.Window == 0 {
		cfg.Window = 64
	}
	if cfg.MemPorts == 0 {
		cfg.MemPorts = 2
	}
	if cfg.EffectiveWidth == 0 {
		cfg.EffectiveWidth = 1.6
	}
	if cfg.ChainFraction == 0 {
		cfg.ChainFraction = 0.85
	}
	return &OOO{
		cfg:      cfg,
		portStep: 1.0 / float64(cfg.MemPorts),
		ports:    make([]float64, cfg.MemPorts),
		gates:    make([]gate, 256),
	}
}

// pushGate records that instruction seq retired at time t.
func (m *OOO) pushGate(s uint64, t float64) {
	if m.gLen == len(m.gates) {
		// Grow the ring (rare; bounded by Window/min-group-size in steady
		// state because old gates are pruned).
		ng := make([]gate, 2*len(m.gates))
		for i := 0; i < m.gLen; i++ {
			ng[i] = m.gates[(m.gHead+i)%len(m.gates)]
		}
		m.gates = ng
		m.gHead = 0
	}
	m.gates[(m.gHead+m.gLen)%len(m.gates)] = gate{seq: s, t: t}
	m.gLen++
}

// gateTime returns the retire time of the newest checkpoint at or below
// target, pruning older ones. Instructions before the first checkpoint
// retired at time <= the first checkpoint's time; returning 0 for them is
// safe (no constraint).
func (m *OOO) gateTime(target uint64) float64 {
	best := 0.0
	for m.gLen > 0 {
		g := m.gates[m.gHead]
		if g.seq > target {
			break
		}
		best = g.t
		m.gHead = (m.gHead + 1) % len(m.gates)
		m.gLen--
	}
	// Re-push the found checkpoint so later, smaller windows still see it.
	if best > 0 {
		m.gHead = (m.gHead - 1 + len(m.gates)) % len(m.gates)
		m.gates[m.gHead] = gate{seq: target, t: best}
		m.gLen++
	}
	return best
}

// Account implements Model.
func (m *OOO) Account(r memref.Ref, lat uint32, cat StallCat) {
	if r.Kind == memref.IFetch {
		n := float64(r.Instrs)
		m.seq += uint64(r.Instrs)
		m.now += n / m.cfg.EffectiveWidth
		m.b.Instructions += uint64(r.Instrs)
		m.chargeF(fracBusy, n/m.cfg.EffectiveWidth, r.Kernel)
		if lat > 0 {
			// Instruction fetch is in-order: an L1I miss stalls the
			// frontend while the backend drains the window. The drainable
			// work scales with the outstanding miss, so the covered portion
			// is proportional to the miss latency rather than a fixed
			// credit — which is also why the paper finds the *relative*
			// integration gains identical for in-order and out-of-order
			// processors.
			if exposed := float64(lat) * iFetchExposure; exposed > 0 {
				m.now += exposed
				m.chargeCatF(cat, exposed, r.Kernel)
			}
		}
		m.pushGate(m.seq, m.now)
		return
	}

	// The ROB gate: this operation occupies an ROB slot, so instruction
	// seq-Window must have retired before it can even be in flight.
	issue := m.gateTime(sub(m.seq, uint64(m.cfg.Window)))
	chained := r.DepPrev
	if !chained && r.Kind == memref.Load {
		// Deterministic pseudo-random chain marking by sequence hash.
		h := (m.seq * 0x9e3779b97f4a7c15) >> 40
		chained = float64(h&0xffff)/65536.0 < m.cfg.ChainFraction
	}
	if chained && m.lastMemComplete > issue {
		issue = m.lastMemComplete
	}
	if p := m.ports[m.nextPort]; p > issue {
		issue = p
	}
	if r.Kind == memref.Store {
		// Sequential consistency without store speculation: the store's
		// memory transaction begins at the retire frontier.
		issue = m.now
	}
	m.ports[m.nextPort] = issue + m.portStep
	m.nextPort = (m.nextPort + 1) % m.cfg.MemPorts

	eff := float64(lat)
	if lat == 0 {
		eff = 1 // L1 hit load-to-use
	}
	complete := issue + eff
	m.lastMemComplete = complete

	if complete > m.now {
		stall := complete - m.now
		m.now = complete
		if lat > 0 {
			m.chargeCatF(cat, stall, r.Kernel)
		} else {
			m.chargeF(fracBusy, stall, r.Kernel)
		}
	}
	m.pushGate(m.seq, m.now)
}

func sub(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}

// Now implements Model.
func (m *OOO) Now() uint64 { return uint64(m.now) }

// AdvanceTo implements Model.
func (m *OOO) AdvanceTo(t uint64) {
	if ft := float64(t); ft > m.now {
		m.b.Idle += uint64(ft - m.now)
		m.now = ft
	}
}

// Breakdown implements Model.
func (m *OOO) Breakdown() *Breakdown { return &m.b }

// ResetStats implements Model.
func (m *OOO) ResetStats() {
	m.b = Breakdown{}
	m.frac = [8]float64{}
}

func (m *OOO) chargeCatF(cat StallCat, cycles float64, kernel bool) {
	switch cat {
	case CatL2Hit:
		m.addF(fracL2, &m.b.L2Hit, cycles)
	case CatLocal:
		m.addF(fracLocal, &m.b.Local, cycles)
	case CatRemote:
		m.addF(fracRemote, &m.b.Remote, cycles)
	case CatRemoteDirty:
		m.addF(fracDirty, &m.b.RemoteDirty, cycles)
	default:
		m.addF(fracBusy, &m.b.Busy, cycles)
	}
	if kernel {
		m.addF(fracKernel, &m.b.Kernel, cycles)
	}
}

func (m *OOO) chargeF(bucket int, cycles float64, kernel bool) {
	m.addF(bucket, &m.b.Busy, cycles)
	if kernel {
		m.addF(fracKernel, &m.b.Kernel, cycles)
	}
}

// addF accumulates a fractional cycle count into an integer bucket, carrying
// the remainder so long runs do not drift.
func (m *OOO) addF(bucket int, dst *uint64, cycles float64) {
	m.frac[bucket] += cycles
	whole := uint64(m.frac[bucket])
	m.frac[bucket] -= float64(whole)
	*dst += whole
}
