// Package cpu provides the processor timing models: the single-issue
// pipelined in-order model that produces most of the paper's results, and
// the four-wide out-of-order model of Section 7. Both consume the same
// stream of (reference, latency, category) events from the memory system
// and maintain the execution-time breakdown the paper plots: CPU busy, L2
// hit stall, local memory stall, and remote stall split into clean (2-hop)
// and dirty (3-hop) components.
package cpu

import "oltpsim/internal/memref"

// StallCat attributes a memory stall to the bucket the paper plots.
type StallCat uint8

const (
	// CatNone: no stall (L1 hit).
	CatNone StallCat = iota
	// CatL2Hit: stall for an L2 (or victim buffer) hit.
	CatL2Hit
	// CatLocal: stall for local memory (including own-RAC hits).
	CatLocal
	// CatRemote: stall for remote clean memory (2-hop).
	CatRemote
	// CatRemoteDirty: stall for a dirty remote copy (3-hop, L2- or
	// RAC-sourced).
	CatRemoteDirty
)

// Breakdown is the per-CPU execution-time decomposition, in cycles.
type Breakdown struct {
	Busy        uint64
	L2Hit       uint64
	Local       uint64
	Remote      uint64
	RemoteDirty uint64
	Idle        uint64

	// Kernel tracks the portion of Busy+stalls attributed to kernel-mode
	// references (the paper reports ~25% kernel time for OLTP).
	Kernel uint64
	// Instructions counts retired instructions.
	Instructions uint64
}

// NonIdle is the execution time metric of the paper's figures (Fig. 12
// explicitly plots non-idle execution time).
func (b *Breakdown) NonIdle() uint64 {
	return b.Busy + b.L2Hit + b.Local + b.Remote + b.RemoteDirty
}

// RemoteTotal is the combined 2-hop + 3-hop stall ("RemStall" in figures).
func (b *Breakdown) RemoteTotal() uint64 { return b.Remote + b.RemoteDirty }

// Add accumulates other into b.
func (b *Breakdown) Add(other *Breakdown) {
	b.Busy += other.Busy
	b.L2Hit += other.L2Hit
	b.Local += other.Local
	b.Remote += other.Remote
	b.RemoteDirty += other.RemoteDirty
	b.Idle += other.Idle
	b.Kernel += other.Kernel
	b.Instructions += other.Instructions
}

// Sub removes prev from b. Cycle counters are monotone, so with prev an
// earlier collection of the same run the difference is the segment between
// the two collection points (per-phase scenario timelines).
func (b *Breakdown) Sub(prev *Breakdown) {
	b.Busy -= prev.Busy
	b.L2Hit -= prev.L2Hit
	b.Local -= prev.Local
	b.Remote -= prev.Remote
	b.RemoteDirty -= prev.RemoteDirty
	b.Idle -= prev.Idle
	b.Kernel -= prev.Kernel
	b.Instructions -= prev.Instructions
}

func (b *Breakdown) charge(cat StallCat, cycles uint64, kernel bool) {
	switch cat {
	case CatL2Hit:
		b.L2Hit += cycles
	case CatLocal:
		b.Local += cycles
	case CatRemote:
		b.Remote += cycles
	case CatRemoteDirty:
		b.RemoteDirty += cycles
	}
	if kernel {
		b.Kernel += cycles
	}
}

// Model is a processor timing model. The system engine feeds it one timed
// reference at a time, in program order.
type Model interface {
	// Account consumes one reference with its memory latency (0 for an L1
	// hit) and stall category.
	Account(r memref.Ref, lat uint32, cat StallCat)
	// Now returns the CPU's local clock in cycles.
	Now() uint64
	// AdvanceTo moves the clock forward to t, counting idle cycles. It is a
	// no-op if t is in the past.
	AdvanceTo(t uint64)
	// Breakdown exposes the mutable execution-time decomposition.
	Breakdown() *Breakdown
	// ResetStats zeroes the breakdown (end of warmup) without moving the
	// clock.
	ResetStats()
}
