package cpu

import (
	"fmt"

	"oltpsim/internal/snapshot"
)

// SaveState writes the execution-time decomposition.
func (b *Breakdown) SaveState(e *snapshot.Encoder) {
	e.U64(b.Busy)
	e.U64(b.L2Hit)
	e.U64(b.Local)
	e.U64(b.Remote)
	e.U64(b.RemoteDirty)
	e.U64(b.Idle)
	e.U64(b.Kernel)
	e.U64(b.Instructions)
}

// LoadState restores the decomposition.
func (b *Breakdown) LoadState(d *snapshot.Decoder) {
	b.Busy = d.U64()
	b.L2Hit = d.U64()
	b.Local = d.U64()
	b.Remote = d.U64()
	b.RemoteDirty = d.U64()
	b.Idle = d.U64()
	b.Kernel = d.U64()
	b.Instructions = d.U64()
}

// SaveState writes the in-order model's clock and breakdown.
func (m *InOrder) SaveState(e *snapshot.Encoder) {
	e.U64(m.now)
	m.b.SaveState(e)
}

// LoadState restores the in-order model.
func (m *InOrder) LoadState(d *snapshot.Decoder) error {
	m.now = d.U64()
	m.b.LoadState(d)
	return d.Err()
}

// SaveState writes the out-of-order model's mutable state. The gate ring is
// dumped as its logical contents (oldest first): the ring's capacity and
// head position are representation, not architectural state, so the dump is
// canonical and Save→Load→Save is byte-stable.
func (m *OOO) SaveState(e *snapshot.Encoder) {
	e.U64(m.seq)
	e.F64(m.now)
	e.F64(m.lastMemComplete)
	e.F64s(m.ports)
	e.Int(m.nextPort)
	e.Int(m.gLen)
	for i := 0; i < m.gLen; i++ {
		g := m.gates[(m.gHead+i)%len(m.gates)]
		e.U64(g.seq)
		e.F64(g.t)
	}
	m.b.SaveState(e)
	for _, f := range m.frac {
		e.F64(f)
	}
}

// LoadState restores the out-of-order model, rebuilding the gate ring at
// its canonical (head-zero) layout.
func (m *OOO) LoadState(d *snapshot.Decoder) error {
	seq := d.U64()
	now := d.F64()
	lastMem := d.F64()
	ports := d.F64s()
	nextPort := d.Int()
	gLen := d.Int()
	if d.Err() != nil {
		return d.Err()
	}
	if len(ports) != m.cfg.MemPorts {
		return fmt.Errorf("cpu: snapshot has %d memory ports, want %d", len(ports), m.cfg.MemPorts)
	}
	if nextPort < 0 || nextPort >= m.cfg.MemPorts {
		return fmt.Errorf("cpu: port cursor %d out of range", nextPort)
	}
	if gLen < 0 {
		return fmt.Errorf("cpu: negative gate count %d", gLen)
	}
	size := 256
	for size < gLen {
		size *= 2
	}
	gates := make([]gate, size)
	var prevSeq uint64
	for i := 0; i < gLen; i++ {
		g := gate{seq: d.U64(), t: d.F64()}
		if d.Err() != nil {
			return d.Err()
		}
		if i > 0 && g.seq < prevSeq {
			return fmt.Errorf("cpu: gate %d sequence %d not monotonic", i, g.seq)
		}
		prevSeq = g.seq
		gates[i] = g
	}
	m.b.LoadState(d)
	for i := range m.frac {
		m.frac[i] = d.F64()
	}
	if err := d.Err(); err != nil {
		return err
	}
	m.seq = seq
	m.now = now
	m.lastMemComplete = lastMem
	copy(m.ports, ports)
	m.nextPort = nextPort
	m.gates = gates
	m.gHead = 0
	m.gLen = gLen
	return nil
}
