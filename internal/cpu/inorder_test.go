package cpu

import (
	"testing"

	"oltpsim/internal/memref"
)

func TestInOrderBusyAccounting(t *testing.T) {
	m := NewInOrder()
	m.Account(memref.Ref{Kind: memref.IFetch, Instrs: 16}, 0, CatNone)
	if m.Now() != 16 || m.Breakdown().Busy != 16 {
		t.Fatalf("now %d busy %d", m.Now(), m.Breakdown().Busy)
	}
	if m.Breakdown().Instructions != 16 {
		t.Fatalf("instructions %d", m.Breakdown().Instructions)
	}
}

func TestInOrderStallAccounting(t *testing.T) {
	m := NewInOrder()
	m.Account(memref.Ref{Kind: memref.Load}, 25, CatL2Hit)
	m.Account(memref.Ref{Kind: memref.Store}, 100, CatLocal)
	m.Account(memref.Ref{Kind: memref.Load}, 175, CatRemote)
	m.Account(memref.Ref{Kind: memref.Load}, 275, CatRemoteDirty)
	b := m.Breakdown()
	if b.L2Hit != 25 || b.Local != 100 || b.Remote != 175 || b.RemoteDirty != 275 {
		t.Fatalf("breakdown %+v", b)
	}
	if m.Now() != 25+100+175+275 {
		t.Fatalf("now %d", m.Now())
	}
	if b.NonIdle() != 575 {
		t.Fatalf("non-idle %d", b.NonIdle())
	}
}

func TestInOrderL1HitIsFree(t *testing.T) {
	m := NewInOrder()
	m.Account(memref.Ref{Kind: memref.Load}, 0, CatNone)
	if m.Now() != 0 {
		t.Fatalf("L1 hit advanced clock to %d", m.Now())
	}
}

func TestInOrderKernelAttribution(t *testing.T) {
	m := NewInOrder()
	m.Account(memref.Ref{Kind: memref.IFetch, Instrs: 10, Kernel: true}, 0, CatNone)
	m.Account(memref.Ref{Kind: memref.Load, Kernel: true}, 25, CatL2Hit)
	m.Account(memref.Ref{Kind: memref.Load}, 25, CatL2Hit)
	if k := m.Breakdown().Kernel; k != 35 {
		t.Fatalf("kernel cycles %d, want 35", k)
	}
}

func TestInOrderIdle(t *testing.T) {
	m := NewInOrder()
	m.Account(memref.Ref{Kind: memref.IFetch, Instrs: 8}, 0, CatNone)
	m.AdvanceTo(100)
	if m.Now() != 100 || m.Breakdown().Idle != 92 {
		t.Fatalf("now %d idle %d", m.Now(), m.Breakdown().Idle)
	}
	m.AdvanceTo(50) // no-op in the past
	if m.Now() != 100 {
		t.Fatal("AdvanceTo went backwards")
	}
}

func TestInOrderResetStats(t *testing.T) {
	m := NewInOrder()
	m.Account(memref.Ref{Kind: memref.IFetch, Instrs: 8}, 25, CatL2Hit)
	m.ResetStats()
	if m.Breakdown().NonIdle() != 0 {
		t.Fatal("breakdown not reset")
	}
	if m.Now() == 0 {
		t.Fatal("clock must survive stats reset")
	}
}

func TestBreakdownAdd(t *testing.T) {
	a := Breakdown{Busy: 1, L2Hit: 2, Local: 3, Remote: 4, RemoteDirty: 5, Idle: 6, Kernel: 7, Instructions: 8}
	b := a
	b.Add(&a)
	if b.Busy != 2 || b.RemoteDirty != 10 || b.Instructions != 16 {
		t.Fatalf("add wrong: %+v", b)
	}
	if a.RemoteTotal() != 9 {
		t.Fatalf("remote total %d", a.RemoteTotal())
	}
}
