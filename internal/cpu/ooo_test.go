package cpu

import (
	"testing"

	"oltpsim/internal/memref"
)

func newTestOOO() *OOO {
	return NewOOO(OOOConfig{Width: 4, Window: 64, MemPorts: 2, EffectiveWidth: 2, ChainFraction: 1e-12})
}

func fetch(m *OOO, instrs int) {
	for instrs > 0 {
		n := instrs
		if n > 16 {
			n = 16
		}
		m.Account(memref.Ref{Kind: memref.IFetch, Instrs: uint16(n)}, 0, CatNone)
		instrs -= n
	}
}

func TestOOOBusyCompression(t *testing.T) {
	m := newTestOOO()
	fetch(m, 160)
	if m.Now() != 80 {
		t.Fatalf("160 instrs at width 2 took %d cycles, want 80", m.Now())
	}
}

func TestOOOIndependentMissesOverlap(t *testing.T) {
	// Two independent 100-cycle loads separated by 16 instructions: the
	// second issues while the first is outstanding, so total time is far
	// less than 200 cycles of stall.
	m := newTestOOO()
	fetch(m, 16)
	m.Account(memref.Ref{Kind: memref.Load}, 100, CatLocal)
	fetch(m, 16)
	m.Account(memref.Ref{Kind: memref.Load}, 100, CatLocal)
	total := m.Now()
	if total > 130 {
		t.Fatalf("two overlapping misses took %d cycles", total)
	}
	serial := NewInOrder()
	serial.Account(memref.Ref{Kind: memref.IFetch, Instrs: 16}, 0, CatNone)
	serial.Account(memref.Ref{Kind: memref.Load}, 100, CatLocal)
	serial.Account(memref.Ref{Kind: memref.IFetch, Instrs: 16}, 0, CatNone)
	serial.Account(memref.Ref{Kind: memref.Load}, 100, CatLocal)
	if total >= serial.Now() {
		t.Fatalf("OOO (%d) not faster than in-order (%d)", total, serial.Now())
	}
}

func TestOOOWindowLimitsOverlap(t *testing.T) {
	// Misses more than a window apart cannot overlap: the second's ROB slot
	// only exists after the first retires.
	m := newTestOOO()
	m.Account(memref.Ref{Kind: memref.Load}, 100, CatLocal)
	fetch(m, 128) // two windows of instructions
	m.Account(memref.Ref{Kind: memref.Load}, 100, CatLocal)
	// First miss: ~100; 128 instrs: 64; second miss gated by window: ~100
	// mostly exposed beyond the fetch time.
	if m.Now() < 190 {
		t.Fatalf("far-apart misses finished in %d cycles; window not limiting", m.Now())
	}
}

func TestOOODependentChainSerializes(t *testing.T) {
	m := newTestOOO()
	fetch(m, 16)
	m.Account(memref.Ref{Kind: memref.Load}, 100, CatLocal)
	m.Account(memref.Ref{Kind: memref.Load, DepPrev: true}, 100, CatLocal)
	if m.Now() < 200 {
		t.Fatalf("dependent chain finished in %d cycles, want >= 200", m.Now())
	}
}

func TestOOOStoresFullyExposed(t *testing.T) {
	// Sequential consistency: a store's latency starts at the retire
	// frontier, so back-to-back store misses serialize.
	m := newTestOOO()
	m.Account(memref.Ref{Kind: memref.Store}, 100, CatLocal)
	m.Account(memref.Ref{Kind: memref.Store}, 100, CatLocal)
	if m.Now() < 200 {
		t.Fatalf("SC stores overlapped: %d cycles", m.Now())
	}
	if m.Breakdown().Local < 199 {
		t.Fatalf("store stall attribution %d", m.Breakdown().Local)
	}
}

func TestOOOIFetchMissPartiallyExposed(t *testing.T) {
	m := newTestOOO()
	m.Account(memref.Ref{Kind: memref.IFetch, Instrs: 16}, 100, CatLocal)
	want := uint64(8 + 72) // 16/2 busy + 100*0.72 exposure
	if m.Now() != want {
		t.Fatalf("ifetch miss: now %d, want %d", m.Now(), want)
	}
	if m.Breakdown().Local != 72 {
		t.Fatalf("ifetch stall attribution %d", m.Breakdown().Local)
	}
}

func TestOOOChainFractionForcesSerialization(t *testing.T) {
	chained := NewOOO(OOOConfig{EffectiveWidth: 2, ChainFraction: 0.999999})
	free := newTestOOO()
	for i := 0; i < 50; i++ {
		fetch(chained, 16)
		chained.Account(memref.Ref{Kind: memref.Load}, 100, CatLocal)
		fetch(free, 16)
		free.Account(memref.Ref{Kind: memref.Load}, 100, CatLocal)
	}
	if chained.Now() <= free.Now() {
		t.Fatalf("chained (%d) not slower than unchained (%d)", chained.Now(), free.Now())
	}
}

func TestOOODefaults(t *testing.T) {
	m := NewOOO(OOOConfig{})
	if m.cfg.Width != 4 || m.cfg.Window != 64 || m.cfg.MemPorts != 2 {
		t.Fatalf("defaults %+v", m.cfg)
	}
	if m.cfg.EffectiveWidth <= 0 || m.cfg.ChainFraction <= 0 {
		t.Fatal("calibrated defaults missing")
	}
}

func TestOOOIdleAndReset(t *testing.T) {
	m := newTestOOO()
	fetch(m, 32)
	m.AdvanceTo(1000)
	if m.Breakdown().Idle != 1000-16 {
		t.Fatalf("idle %d", m.Breakdown().Idle)
	}
	m.ResetStats()
	if m.Breakdown().NonIdle() != 0 || m.Now() != 1000 {
		t.Fatal("reset semantics wrong")
	}
}

func TestOOOGateRingGrowth(t *testing.T) {
	// Many data refs between fetches stress the checkpoint ring; it must
	// neither panic nor lose accounting.
	m := newTestOOO()
	for i := 0; i < 10_000; i++ {
		m.Account(memref.Ref{Kind: memref.Load}, 0, CatNone)
		if i%100 == 0 {
			fetch(m, 16)
		}
	}
	if m.Breakdown().Instructions != 16*100 {
		t.Fatalf("instructions %d", m.Breakdown().Instructions)
	}
}

func TestOOOCompareWithInOrderOnSameStream(t *testing.T) {
	// On any stream, OOO must never be slower than in-order at equal width
	// would suggest: its busy time alone is half, and stalls are bounded by
	// full exposure.
	ooo := NewOOO(OOOConfig{EffectiveWidth: 2, ChainFraction: 0.9})
	io := NewInOrder()
	refs := []struct {
		r   memref.Ref
		lat uint32
		cat StallCat
	}{
		{memref.Ref{Kind: memref.IFetch, Instrs: 16}, 0, CatNone},
		{memref.Ref{Kind: memref.Load}, 25, CatL2Hit},
		{memref.Ref{Kind: memref.IFetch, Instrs: 16}, 25, CatL2Hit},
		{memref.Ref{Kind: memref.Store}, 275, CatRemoteDirty},
		{memref.Ref{Kind: memref.Load, DepPrev: true}, 175, CatRemote},
	}
	for i := 0; i < 200; i++ {
		for _, x := range refs {
			ooo.Account(x.r, x.lat, x.cat)
			io.Account(x.r, x.lat, x.cat)
		}
	}
	if ooo.Now() >= io.Now() {
		t.Fatalf("OOO (%d) not faster than in-order (%d)", ooo.Now(), io.Now())
	}
	// And the speedup must stay within the plausible band the paper
	// reports (roughly 1.2x - 1.8x for OLTP-like mixes).
	ratio := float64(io.Now()) / float64(ooo.Now())
	if ratio < 1.05 || ratio > 2.5 {
		t.Fatalf("OOO speedup %.2f outside plausible band", ratio)
	}
}
