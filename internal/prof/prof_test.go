package prof

import (
	"os"
	"path/filepath"
	"testing"
)

// TestStartStopWritesProfiles pins the happy path: both profiles come out
// non-empty and the stop function is safe with either path disabled.
func TestStartStopWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")

	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to record.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

// TestStartDisabled pins that empty paths are a no-op pair.
func TestStartDisabled(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

// TestStartBadPath pins the error path: an uncreatable CPU profile file
// fails Start rather than silently profiling nothing.
func TestStartBadPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "x"), ""); err == nil {
		t.Fatal("Start succeeded with an uncreatable path")
	}
}
