// Package prof wires the runtime's CPU and heap profilers into the
// command-line tools. The simulator's hot path is a hand-flattened loop
// whose performance claims (DESIGN.md §5, EXPERIMENTS.md "Hot-path
// performance") are only credible if anyone can reproduce the profiles
// behind them; this package gives every command the same two flags'
// behavior — -cpuprofile for a pprof CPU trace of the whole run and
// -memprofile for a heap snapshot at exit — without each main duplicating
// the open/start/stop/write choreography.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins profiling per the two (possibly empty) output paths and
// returns a stop function to be called exactly once when the measured work
// is done. An empty path disables that profile. The stop function finishes
// the CPU profile and then writes the heap profile after a final GC, so the
// snapshot shows live retained memory rather than garbage awaiting
// collection.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("prof: cpu profile: %w", err)
		}
		cpuFile = f
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("prof: cpu profile: %w", err)
			}
		}
		if memPath == "" {
			return nil
		}
		f, err := os.Create(memPath)
		if err != nil {
			return fmt.Errorf("prof: %w", err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("prof: heap profile: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("prof: heap profile: %w", err)
		}
		return nil
	}, nil
}
