package sim

import "oltpsim/internal/snapshot"

// SaveState writes the generator position. The whole stream is a pure
// function of this one word, so restoring it resumes the exact sequence.
func (r *RNG) SaveState(e *snapshot.Encoder) { e.U64(r.state) }

// LoadState restores the generator position.
func (r *RNG) LoadState(d *snapshot.Decoder) { r.state = d.U64() }

// Zipf and ZetaCache carry no snapshot state: their constants are pure
// functions of (n, theta) and are rebuilt bit-identically by construction.
