package sim

import (
	"math"
	"testing"
)

// FuzzZipfNext drives the inverse-CDF Zipf sampler with arbitrary (seed, n,
// theta) and checks its only output contract: every draw lies in [0, n) and
// the sampler never panics or produces NaN-poisoned indices for any valid
// parameterization. It also pins the ZetaCache transparency guarantee — a
// cache-constructed sampler must draw a bit-identical stream to an uncached
// one, hit or miss.
func FuzzZipfNext(f *testing.F) {
	f.Add(uint64(1), int64(100), 0.93)
	f.Add(uint64(42), int64(1), 0.65)
	f.Add(uint64(0), int64(2), 0.99)
	f.Add(uint64(0xdeadbeef), int64(1<<20), 0.5)
	f.Add(uint64(7), int64(3), 0.0001)
	f.Fuzz(func(t *testing.T, seed uint64, n int64, theta float64) {
		// Constructor preconditions (documented panics) and cases where the
		// distribution is undefined; also bound n so one input can't eat the
		// fuzz budget on the O(n) harmonic sum.
		if n <= 0 || n > 1<<22 {
			t.Skip()
		}
		if math.IsNaN(theta) || theta <= 0 || theta >= 1 {
			t.Skip()
		}

		z := NewZipf(int(n), theta)
		cache := NewZetaCache()
		warm := NewZipfCached(int(n), theta, cache) // cache miss
		hot := NewZipfCached(int(n), theta, cache)  // cache hit
		r1, r2, r3 := NewRNG(seed), NewRNG(seed), NewRNG(seed)
		for i := 0; i < 64; i++ {
			v := z.Next(r1)
			if v < 0 || v >= int(n) {
				t.Fatalf("Zipf(%d, %v).Next() = %d, outside [0, %d)", n, theta, v, n)
			}
			if w := warm.Next(r2); w != v {
				t.Fatalf("cache-miss Zipf diverged from uncached: %d != %d (draw %d)", w, v, i)
			}
			if h := hot.Next(r3); h != v {
				t.Fatalf("cache-hit Zipf diverged from uncached: %d != %d (draw %d)", h, v, i)
			}
		}
	})
}

// FuzzRNGBounded exercises the bounded generators with arbitrary seeds and
// bounds: results must respect the bound for any n, with no panic on any
// positive bound and no value escaping [0, n). Determinism is checked by
// replaying the same seed.
func FuzzRNGBounded(f *testing.F) {
	f.Add(uint64(0), uint64(1))
	f.Add(uint64(1), uint64(2))
	f.Add(uint64(0xfeedface), uint64(1<<63))
	f.Add(uint64(99), uint64(3))
	f.Add(uint64(12345), ^uint64(0))
	f.Fuzz(func(t *testing.T, seed, n uint64) {
		if n == 0 {
			t.Skip() // Uint64n(0) would divide by zero; callers guarantee n > 0
		}
		r := NewRNG(seed)
		for i := 0; i < 64; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d", n, v)
			}
		}
		if in := int(n); in > 0 { // n may overflow int; Intn documents a panic for those
			if v := NewRNG(seed).Intn(in); v < 0 || v >= in {
				t.Fatalf("Intn(%d) = %d", in, v)
			}
		}
		if i64 := int64(n); i64 > 0 {
			if v := NewRNG(seed).Int63n(i64); v < 0 || v >= i64 {
				t.Fatalf("Int63n(%d) = %d", i64, v)
			}
		}

		// Same seed, same stream.
		a, b := NewRNG(seed), NewRNG(seed)
		for i := 0; i < 8; i++ {
			if x, y := a.Uint64n(n), b.Uint64n(n); x != y {
				t.Fatalf("seed %d not reproducible: %d != %d", seed, x, y)
			}
		}
	})
}
