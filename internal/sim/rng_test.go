package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestRNGForkIndependence(t *testing.T) {
	parent := NewRNG(7)
	c1 := parent.Fork()
	c2 := parent.Fork()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("forked children produced identical first values")
	}
}

func TestRNGForkDeterministic(t *testing.T) {
	mk := func() uint64 {
		p := NewRNG(99)
		return p.Fork().Uint64()
	}
	if mk() != mk() {
		t.Fatal("fork is not deterministic")
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10_000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d out of range", v)
		}
	}
}

// TestIntnUnbiased checks the Lemire bounded-rejection draw for uniformity:
// Intn(3) over splitmix64 output must land each bucket within tolerance of
// n/3. (The old `Uint64() % n` path was biased toward small values for n not
// a power of two; for small n the bias is tiny, so this is a distribution
// sanity check plus a guard against gross regressions such as an off-by-one
// in the rejection threshold.)
func TestIntnUnbiased(t *testing.T) {
	const n = 300_000
	for _, seed := range []uint64{1, 42, 0xdeadbeef} {
		r := NewRNG(seed)
		var counts [3]int
		for i := 0; i < n; i++ {
			counts[r.Intn(3)]++
		}
		for b, c := range counts {
			frac := float64(c) / n
			if frac < 0.323 || frac > 0.343 { // 1/3 +- ~3 sigma
				t.Fatalf("seed %d: Intn(3) bucket %d frac %.4f, want ~0.3333", seed, b, frac)
			}
		}
	}
}

// TestUint64nCoversRange checks the rejection path with an n just above a
// power of two (worst case for the biased fringe) and verifies bounds and
// that both endpoints are reachable.
func TestUint64nCoversRange(t *testing.T) {
	r := NewRNG(9)
	const n = 1<<16 + 1
	seenLow, seenHigh := false, false
	for i := 0; i < 2_000_000; i++ {
		v := r.Uint64n(n)
		if v >= n {
			t.Fatalf("Uint64n(%d) = %d out of range", n, v)
		}
		if v == 0 {
			seenLow = true
		}
		if v == n-1 {
			seenHigh = true
		}
	}
	if !seenLow || !seenHigh {
		t.Fatalf("endpoints not reached: low=%v high=%v", seenLow, seenHigh)
	}
}

func TestInt63nBounds(t *testing.T) {
	r := NewRNG(31)
	for i := 0; i < 10_000; i++ {
		v := r.Int63n(999_983) // prime: exercises the non-power-of-two path
		if v < 0 || v >= 999_983 {
			t.Fatalf("Int63n = %d out of range", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 10_000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	sum := 0.0
	const n = 100_000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if mean < 0.49 || mean > 0.51 {
		t.Fatalf("Float64 mean %v too far from 0.5", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(13)
	hits := 0
	const n = 100_000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.23 || frac > 0.27 {
		t.Fatalf("Bool(0.25) hit rate %v", frac)
	}
}

func TestZipfBounds(t *testing.T) {
	z := NewZipf(1000, 0.9)
	r := NewRNG(17)
	for i := 0; i < 50_000; i++ {
		v := z.Next(r)
		if v < 0 || v >= 1000 {
			t.Fatalf("Zipf out of bounds: %d", v)
		}
	}
}

// TestZipfTailClamp hammers nextFrom with u values within a few ulps of 1 —
// the region where `int(float64(n) * powF(...))` can round up to exactly n —
// across a grid of sizes and skews, and checks the rank never leaves [0, n).
func TestZipfTailClamp(t *testing.T) {
	// Walk down from the largest float64 below 1 one ulp at a time, plus a
	// few coarser tail offsets.
	var us []float64
	u := math.Nextafter(1, 0)
	for i := 0; i < 64; i++ {
		us = append(us, u)
		u = math.Nextafter(u, 0)
	}
	us = append(us, 1-1e-15, 1-1e-12, 1-1e-9, 1-1e-6, 0.999999, 0)
	for _, n := range []int{1, 2, 3, 10, 1000, 1 << 20} {
		for _, theta := range []float64{0.01, 0.5, 0.93, 0.99} {
			z := NewZipf(n, theta)
			for _, u := range us {
				if v := z.nextFrom(u); v < 0 || v >= n {
					t.Fatalf("Zipf(n=%d, theta=%g).nextFrom(%v) = %d out of [0, %d)", n, theta, u, v, n)
				}
			}
		}
	}
}

// TestZipfNextMatchesNextFrom pins Next to the nextFrom(Float64()) path so
// the clamp covers the public API.
func TestZipfNextMatchesNextFrom(t *testing.T) {
	z := NewZipf(1000, 0.9)
	a, b := NewRNG(29), NewRNG(29)
	for i := 0; i < 10_000; i++ {
		if got, want := z.Next(a), z.nextFrom(b.Float64()); got != want {
			t.Fatalf("draw %d: Next = %d, nextFrom(Float64()) = %d", i, got, want)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(10_000, 0.9)
	r := NewRNG(19)
	counts := make([]int, 10_000)
	const n = 200_000
	for i := 0; i < n; i++ {
		counts[z.Next(r)]++
	}
	// Rank 0 must be by far the most popular, and the top 1% of ranks must
	// carry a large share of the mass for theta = 0.9.
	top1pct := 0
	for i := 0; i < 100; i++ {
		top1pct += counts[i]
	}
	if counts[0] < counts[500] {
		t.Fatalf("rank 0 (%d) not hotter than rank 500 (%d)", counts[0], counts[500])
	}
	if frac := float64(top1pct) / n; frac < 0.30 {
		t.Fatalf("top 1%% of ranks carries only %.2f of mass; want heavy skew", frac)
	}
}

func TestZipfLowThetaIsFlatter(t *testing.T) {
	flat := NewZipf(1000, 0.1)
	skewed := NewZipf(1000, 0.95)
	rf, rs := NewRNG(23), NewRNG(23)
	var flatTop, skewTop int
	const n = 100_000
	for i := 0; i < n; i++ {
		if flat.Next(rf) < 10 {
			flatTop++
		}
		if skewed.Next(rs) < 10 {
			skewTop++
		}
	}
	if flatTop >= skewTop {
		t.Fatalf("theta=0.1 top-10 mass %d >= theta=0.95 mass %d", flatTop, skewTop)
	}
}

func TestZipfPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewZipf(0) did not panic")
		}
	}()
	NewZipf(0, 0.5)
}

// TestUint64Distribution checks a basic uniformity property with
// testing/quick: for arbitrary seeds, high and low halves of outputs are not
// constant.
func TestUint64Distribution(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		var orAll, andAll uint64 = 0, ^uint64(0)
		for i := 0; i < 64; i++ {
			v := r.Uint64()
			orAll |= v
			andAll &= v
		}
		// After 64 draws essentially every bit should have been 0 at least
		// once and 1 at least once.
		return orAll == ^uint64(0) && andAll == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
