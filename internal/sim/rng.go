// Package sim provides the deterministic simulation substrate shared by all
// other packages: seeded random-number streams, simulated clocks, and the
// run controller that interleaves per-CPU activity in global time order.
//
// Nothing in this package (or anywhere else in the simulator) reads the wall
// clock or a global random source; every run is a pure function of its
// configuration and seed, so every figure in the paper regenerates
// bit-identically.
package sim

import (
	"math"
	"math/bits"
	"sync"
)

// RNG is a splitmix64 pseudo-random generator. It is tiny, fast, and easy to
// fork into independent streams, which we use to give every simulated process
// and daemon its own deterministic randomness.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two generators with the same
// seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Fork derives an independent stream from this one. The parent advances by
// one step, so successive Fork calls yield distinct children.
func (r *RNG) Fork() *RNG {
	return &RNG{state: r.Uint64() ^ 0x9e3779b97f4a7c15}
}

// Uint64 returns the next value in the stream.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint32 returns the next value truncated to 32 bits.
func (r *RNG) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Uint64n returns a uniform value in [0, n) using Lemire's multiply-shift
// bounded-rejection method (Lemire, "Fast Random Integer Generation in an
// Interval", 2019). Unlike `Uint64() % n`, which over-weights small residues
// whenever n does not divide 2^64, the rejection step makes every value in
// [0, n) exactly equally likely. The fast path is a single 128-bit multiply;
// rejection fires with probability < n/2^64.
func (r *RNG) Uint64n(n uint64) uint64 {
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n // (2^64 - n) mod n, the biased low fringe
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Int63n returns a uniform value in [0, n) as int64. It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64n(uint64(n)))
}

// Float64 returns a value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Zipf draws from a bounded Zipf-like distribution over [0, n) with skew
// parameter theta in (0, 1). theta near 1 is heavily skewed; theta near 0 is
// close to uniform. It uses the standard inverse-CDF approximation employed by
// the TPC and YCSB workload generators, which is accurate enough for workload
// synthesis and allocation-free.
type Zipf struct {
	n      int
	theta  float64
	alpha  float64
	zetan  float64
	eta    float64
	zeta2  float64
	halfPN float64
}

// NewZipf precomputes the constants for a Zipf(n, theta) distribution.
func NewZipf(n int, theta float64) *Zipf {
	return NewZipfCached(n, theta, nil)
}

// NewZipfCached is NewZipf with the O(n) harmonic-sum constant served from
// cache when the cache already holds it. A nil cache always computes. The
// constants are a pure function of (n, theta), so a cached Zipf draws a
// bit-identical stream to an uncached one — the cache changes construction
// cost only, never simulation output.
func NewZipfCached(n int, theta float64, cache *ZetaCache) *Zipf {
	if n <= 0 {
		panic("sim: NewZipf with non-positive n")
	}
	z := &Zipf{n: n, theta: theta}
	z.zetan = cache.zetan(n, theta)
	z.zeta2 = zeta(2, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - powF(2.0/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	z.halfPN = 1 + powF(0.5, theta)
	return z
}

// ZetaCache memoizes the O(n) generalized harmonic sum zeta(n, theta) that
// dominates Zipf construction (n is the shared-pool line count — hundreds of
// thousands to millions of math.Pow calls per engine). Every experiment bar
// builds its own engine from the same sizing parameters, so the sum is
// recomputed with identical inputs once per bar; sharing one cache across a
// sweep removes all but the first computation.
//
// The cache is deliberately NOT package-level state: it is created by
// whoever owns a sweep (experiments.Options) and threaded through the
// configuration, so independent runs stay pure functions of (config, seed) —
// the determinism contract oltpvet enforces. The mutex makes it safe to
// share across the parallel experiment runner's workers; since the cached
// value is bit-identical to the recomputed one, hit/miss interleaving cannot
// affect results.
type ZetaCache struct {
	mu sync.Mutex
	m  map[zetaKey]float64
}

type zetaKey struct {
	n     int
	theta float64
}

// NewZetaCache returns an empty cache ready for concurrent use.
func NewZetaCache() *ZetaCache { return &ZetaCache{m: make(map[zetaKey]float64)} }

// zetan returns zeta(n, theta), memoized. A nil receiver computes directly.
func (c *ZetaCache) zetan(n int, theta float64) float64 {
	if c == nil {
		return zeta(n, theta)
	}
	k := zetaKey{n: n, theta: theta}
	c.mu.Lock()
	v, ok := c.m[k]
	c.mu.Unlock()
	if ok {
		return v
	}
	// Compute outside the lock: a concurrent first miss does duplicate work
	// but both goroutines store the identical value.
	v = zeta(n, theta)
	c.mu.Lock()
	c.m[k] = v
	c.mu.Unlock()
	return v
}

// Next draws the next rank in [0, n); rank 0 is the hottest item.
func (z *Zipf) Next(r *RNG) int { return z.nextFrom(r.Float64()) }

// nextFrom maps a uniform u in [0, 1) to a rank, clamping the result to
// [0, n): at the extreme tail (u within a few ulps of 1) the inverse-CDF
// approximation `int(float64(n) * pow(...))` can round up to exactly n,
// which would address a nonexistent item.
func (z *Zipf) nextFrom(u float64) int {
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < z.halfPN {
		return 1
	}
	k := int(float64(z.n) * powF(z.eta*u-z.eta+1, z.alpha))
	if k < 0 {
		return 0
	}
	if k >= z.n {
		return z.n - 1
	}
	return k
}

func zeta(n int, theta float64) float64 {
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1 / powF(float64(i), theta)
	}
	return sum
}

func powF(x, y float64) float64 { return math.Pow(x, y) }
