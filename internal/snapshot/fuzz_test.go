package snapshot

import (
	"bytes"
	"testing"
)

// fuzzSeed returns a well-formed two-section container exercising every
// primitive the encoder offers; the fuzzer mutates it from there.
func fuzzSeed() []byte {
	w := NewWriter()
	e := w.Section("alpha")
	e.U64(42)
	e.U32(7)
	e.U8(3)
	e.Bool(true)
	e.F64(1.5)
	e.Int(-9)
	e.U64s([]uint64{1, 2, 3})
	e.U8s([]byte("payload"))
	e.I64s([]int64{-1, 0, 1})
	e.F64s([]float64{0.5, -0.25})
	e.String("hello")
	w.Section("beta").U64(1)
	var buf bytes.Buffer
	if err := w.Emit(&buf); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzSnapshotDecode feeds arbitrary bytes through the full decode surface:
// container parsing, section lookup, and every typed Decoder read. The
// contract under fuzz is the package's core promise — corrupted, truncated,
// or hostile input produces an error, never a panic and never an allocation
// larger than the input itself. For inputs that do parse, the format must be
// canonical: re-emitting the parsed sections reproduces the input byte for
// byte.
func FuzzSnapshotDecode(f *testing.F) {
	valid := fuzzSeed()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte(Magic))
	f.Add(valid[:len(valid)-5]) // truncated mid-stream
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x40 // CRC mismatch
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := parse(data)
		if err != nil {
			return
		}
		// Canonical-format invariant: parse followed by emit is the identity
		// on every accepted stream.
		w := NewWriter()
		for i, name := range r.names {
			enc := w.Section(name)
			enc.buf = append(enc.buf, r.payloads[i]...)
		}
		var out bytes.Buffer
		if err := w.Emit(&out); err != nil {
			t.Fatalf("re-emit parsed stream: %v", err)
		}
		if !bytes.Equal(out.Bytes(), data) {
			t.Fatalf("parse/emit round trip diverged (%d vs %d bytes)", out.Len(), len(data))
		}
		// Drain every section through the typed decoders; whatever the
		// payload bytes claim, reads must stay in bounds and errors sticky.
		for _, name := range r.names {
			d, err := r.Section(name)
			if err != nil {
				t.Fatalf("section %q: %v", name, err)
			}
			drainSection(d)
			_ = d.Finish()
		}
		_ = r.Finish()
	})
}

// drainSection walks a payload with a data-driven mix of typed reads, so the
// fuzzer steers which decode paths see which bytes.
func drainSection(d *Decoder) {
	for d.Err() == nil && d.Remaining() > 0 {
		switch d.U8() % 10 {
		case 0:
			d.U64()
		case 1:
			d.U32()
		case 2:
			d.U8()
		case 3:
			d.Bool()
		case 4:
			d.F64()
		case 5:
			_ = d.U64s()
		case 6:
			_ = d.U8s()
		case 7:
			_ = d.I64s()
		case 8:
			_ = d.F64s()
		case 9:
			_ = d.String()
		}
	}
}
