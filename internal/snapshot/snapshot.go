// Package snapshot provides the binary container format and the primitive
// encoders/decoders used to checkpoint complete simulator state.
//
// The format is deliberately simple and strict:
//
//	magic "OLTPSNAP" | version u32 | section* | crc32 u32
//	section := nameLen u16 | name | payloadLen u64 | payload
//
// All integers are little-endian and fixed-width, floats travel as their
// IEEE-754 bit patterns, and the trailing CRC covers every preceding byte.
// Decoding never trusts a length field: every read is bounds-checked against
// the remaining input, so a corrupted or truncated snapshot produces an
// error (never a panic or an unbounded allocation). Sections are named so a
// reader can verify it consumed exactly the sections a writer produced —
// silent truncation and silent trailing garbage are both decode errors.
//
// The package is a leaf: stateful packages (cache, coherence, kernel, ...)
// implement their own save/load methods in terms of Encoder/Decoder, and
// core.System.Save/Load orchestrates the named sections.
package snapshot

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Magic identifies a snapshot stream.
const Magic = "OLTPSNAP"

// Version is the current format version. Load refuses any other version:
// state layout changes must bump it.
const Version uint32 = 1

// maxSectionName bounds section names; anything longer is corruption.
const maxSectionName = 255

// Writer accumulates named sections and emits the framed, checksummed
// stream. Sections are written in the order they are opened, which makes the
// byte stream a deterministic function of the save calls.
type Writer struct {
	names    []string
	payloads [][]byte
	cur      *Encoder
}

// NewWriter returns an empty snapshot writer.
func NewWriter() *Writer { return &Writer{} }

// Section opens a new named section and returns the encoder for its
// payload. The previous section (if any) is sealed.
func (w *Writer) Section(name string) *Encoder {
	if len(name) == 0 || len(name) > maxSectionName {
		panic(fmt.Sprintf("snapshot: section name %q out of range", name))
	}
	w.seal()
	w.names = append(w.names, name)
	w.cur = &Encoder{}
	return w.cur
}

func (w *Writer) seal() {
	if w.cur != nil {
		w.payloads = append(w.payloads, w.cur.buf)
		w.cur = nil
	}
}

// Emit seals the last section and writes the complete stream.
func (w *Writer) Emit(out io.Writer) error {
	w.seal()
	var buf []byte
	buf = append(buf, Magic...)
	buf = binary.LittleEndian.AppendUint32(buf, Version)
	for i, name := range w.names {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(name)))
		buf = append(buf, name...)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(len(w.payloads[i])))
		buf = append(buf, w.payloads[i]...)
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	_, err := out.Write(buf)
	return err
}

// Reader parses a complete snapshot stream: it validates the magic, the
// version, and the CRC up front, then hands out per-section decoders.
type Reader struct {
	names    []string
	payloads [][]byte
	read     []bool
}

// NewReader validates and indexes a snapshot stream read from r.
func NewReader(r io.Reader) (*Reader, error) {
	data, err := io.ReadAll(io.LimitReader(r, 1<<32))
	if err != nil {
		return nil, fmt.Errorf("snapshot: reading stream: %w", err)
	}
	return parse(data)
}

// parse is the allocation-bounded core of NewReader, shared with the fuzz
// target. It never allocates more than O(len(data)) regardless of what the
// length fields claim.
func parse(data []byte) (*Reader, error) {
	const headerLen = len(Magic) + 4
	if len(data) < headerLen+4 {
		return nil, fmt.Errorf("snapshot: stream too short (%d bytes)", len(data))
	}
	if string(data[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("snapshot: bad magic %q", data[:len(Magic)])
	}
	if v := binary.LittleEndian.Uint32(data[len(Magic):]); v != Version {
		return nil, fmt.Errorf("snapshot: version %d, want %d", v, Version)
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(tail); got != want {
		return nil, fmt.Errorf("snapshot: CRC mismatch (got %#x, want %#x)", got, want)
	}
	rd := &Reader{}
	rest := body[headerLen:]
	for len(rest) > 0 {
		if len(rest) < 2 {
			return nil, fmt.Errorf("snapshot: truncated section header")
		}
		nameLen := int(binary.LittleEndian.Uint16(rest))
		rest = rest[2:]
		if nameLen == 0 || nameLen > maxSectionName || nameLen > len(rest) {
			return nil, fmt.Errorf("snapshot: section name length %d out of range", nameLen)
		}
		name := string(rest[:nameLen])
		rest = rest[nameLen:]
		if len(rest) < 8 {
			return nil, fmt.Errorf("snapshot: section %q truncated before length", name)
		}
		payloadLen := binary.LittleEndian.Uint64(rest)
		rest = rest[8:]
		if payloadLen > uint64(len(rest)) {
			return nil, fmt.Errorf("snapshot: section %q claims %d bytes, only %d remain", name, payloadLen, len(rest))
		}
		for _, prev := range rd.names {
			if prev == name {
				return nil, fmt.Errorf("snapshot: duplicate section %q", name)
			}
		}
		rd.names = append(rd.names, name)
		rd.payloads = append(rd.payloads, rest[:payloadLen])
		rd.read = append(rd.read, false)
		rest = rest[payloadLen:]
	}
	return rd, nil
}

// Section returns the decoder for a named section, erroring if absent or
// already consumed.
func (r *Reader) Section(name string) (*Decoder, error) {
	for i, n := range r.names {
		if n != name {
			continue
		}
		if r.read[i] {
			return nil, fmt.Errorf("snapshot: section %q read twice", name)
		}
		r.read[i] = true
		return &Decoder{buf: r.payloads[i], section: name}, nil
	}
	return nil, fmt.Errorf("snapshot: section %q missing", name)
}

// Finish errors if any section was never consumed — a snapshot from a
// machine with components this reader does not know about must not load
// silently.
func (r *Reader) Finish() error {
	for i, ok := range r.read {
		if !ok {
			return fmt.Errorf("snapshot: unconsumed section %q", r.names[i])
		}
	}
	return nil
}

// Encoder appends fixed-width primitives to a section payload.
type Encoder struct {
	buf []byte
}

// U64 appends v.
func (e *Encoder) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// U32 appends v.
func (e *Encoder) U32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// U8 appends v.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// I64 appends v as its two's-complement bits.
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// Int appends v as a 64-bit integer.
func (e *Encoder) Int(v int) { e.I64(int64(v)) }

// Bool appends v as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// F64 appends v's IEEE-754 bit pattern, preserving it exactly (including
// NaN payloads and signed zeros).
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// U64s appends a length-prefixed slice.
func (e *Encoder) U64s(vs []uint64) {
	e.Int(len(vs))
	for _, v := range vs {
		e.U64(v)
	}
}

// U8s appends a length-prefixed byte slice.
func (e *Encoder) U8s(vs []uint8) {
	e.Int(len(vs))
	e.buf = append(e.buf, vs...)
}

// I64s appends a length-prefixed slice of signed integers.
func (e *Encoder) I64s(vs []int64) {
	e.Int(len(vs))
	for _, v := range vs {
		e.I64(v)
	}
}

// F64s appends a length-prefixed slice of floats.
func (e *Encoder) F64s(vs []float64) {
	e.Int(len(vs))
	for _, v := range vs {
		e.F64(v)
	}
}

// String appends a length-prefixed UTF-8 string.
func (e *Encoder) String(s string) {
	e.Int(len(s))
	e.buf = append(e.buf, s...)
}

// Decoder reads the primitives back with strict bounds checking. Errors are
// sticky: after the first failure every read returns the zero value, and
// Err/Finish report the original cause, so load code reads straight through
// and checks once.
type Decoder struct {
	buf     []byte
	off     int
	section string
	err     error
}

// Err returns the first decode error, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes in the section. Callers
// decoding variable-length structures use it to bound allocations by the
// input that could actually back them.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("snapshot: section %q: %s", d.section, fmt.Sprintf(format, args...))
	}
}

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > len(d.buf)-d.off {
		d.fail("need %d bytes at offset %d, have %d", n, d.off, len(d.buf)-d.off)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U64 reads one value.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// U32 reads one value.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// I64 reads one signed value.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// Int reads a 64-bit integer into an int.
func (d *Decoder) Int() int { return int(d.I64()) }

// Bool reads one byte, rejecting anything but 0 or 1.
func (d *Decoder) Bool() bool {
	switch d.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail("bad bool byte at offset %d", d.off-1)
		return false
	}
}

// F64 reads one float from its bit pattern.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// sliceLen reads a length prefix and bounds it by the bytes remaining in
// the section (elemBytes per element), so a hostile length cannot force an
// allocation larger than the input itself.
func (d *Decoder) sliceLen(elemBytes int) int {
	n := d.I64()
	if d.err != nil {
		return 0
	}
	if n < 0 || n*int64(elemBytes) > int64(len(d.buf)-d.off) {
		d.fail("slice length %d exceeds remaining input", n)
		return 0
	}
	return int(n)
}

// U64s reads a length-prefixed slice.
func (d *Decoder) U64s() []uint64 {
	n := d.sliceLen(8)
	if n == 0 {
		return nil
	}
	vs := make([]uint64, n)
	for i := range vs {
		vs[i] = d.U64()
	}
	return vs
}

// U8s reads a length-prefixed byte slice.
func (d *Decoder) U8s() []uint8 {
	n := d.sliceLen(1)
	if n == 0 {
		return nil
	}
	b := d.take(n)
	if b == nil {
		return nil
	}
	out := make([]uint8, n)
	copy(out, b)
	return out
}

// I64s reads a length-prefixed slice of signed integers.
func (d *Decoder) I64s() []int64 {
	n := d.sliceLen(8)
	if n == 0 {
		return nil
	}
	vs := make([]int64, n)
	for i := range vs {
		vs[i] = d.I64()
	}
	return vs
}

// F64s reads a length-prefixed slice of floats.
func (d *Decoder) F64s() []float64 {
	n := d.sliceLen(8)
	if n == 0 {
		return nil
	}
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = d.F64()
	}
	return vs
}

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n := d.sliceLen(1)
	if n == 0 {
		return ""
	}
	b := d.take(n)
	return string(b)
}

// Finish errors if the section has leftover bytes or a pending error.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("snapshot: section %q: %d trailing bytes", d.section, len(d.buf)-d.off)
	}
	return nil
}
