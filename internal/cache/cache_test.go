package cache

import (
	"testing"
	"testing/quick"

	"oltpsim/internal/sim"
)

func mk(t *testing.T, size int64, assoc int) *Cache {
	if t != nil {
		t.Helper()
	}
	return New(Config{Name: "T", SizeBytes: size, Assoc: assoc, LineBytes: 64})
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Name: "a", SizeBytes: 1024, Assoc: 1, LineBytes: 60},  // non-pow2 line
		{Name: "b", SizeBytes: 1000, Assoc: 1, LineBytes: 64},  // size not multiple
		{Name: "c", SizeBytes: 1024, Assoc: 0, LineBytes: 64},  // zero assoc
		{Name: "d", SizeBytes: -64, Assoc: 1, LineBytes: 64},   // negative
		{Name: "e", SizeBytes: 4096, Assoc: -2, LineBytes: 64}, // negative assoc
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v validated but should not", c)
		}
	}
	good := Config{Name: "g", SizeBytes: 2 << 20, Assoc: 8, LineBytes: 64}
	if err := good.Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
	if good.Sets() != 4096 {
		t.Errorf("Sets() = %d, want 4096", good.Sets())
	}
}

func TestBasicHitMiss(t *testing.T) {
	c := mk(t, 4096, 2) // 32 sets
	if st := c.Access(0); st != Invalid {
		t.Fatal("empty cache hit")
	}
	c.Insert(0, Shared)
	if st := c.Access(0); st != Shared {
		t.Fatalf("expected Shared hit, got %v", st)
	}
	if c.Accesses != 2 || c.Hits != 1 || c.Misses() != 1 {
		t.Fatalf("stats wrong: %d accesses %d hits", c.Accesses, c.Hits)
	}
}

func TestLRUWithinSet(t *testing.T) {
	c := mk(t, 2*64*4, 4) // 2 sets, 4 ways; lines 0,128,256,... map to set 0
	lineInSet0 := func(i int) uint64 { return uint64(i) * 128 }
	for i := 0; i < 4; i++ {
		c.Insert(lineInSet0(i), Shared)
	}
	// Touch line 0 so line 1 is LRU.
	c.Access(lineInSet0(0))
	victim, vst := c.Insert(lineInSet0(4), Shared)
	if vst == Invalid || victim != lineInSet0(1) {
		t.Fatalf("expected victim %#x, got %#x (%v)", lineInSet0(1), victim, vst)
	}
}

func TestInsertExisting(t *testing.T) {
	c := mk(t, 4096, 2)
	c.Insert(64, Shared)
	victim, vst := c.Insert(64, Modified)
	if vst != Invalid || victim != 0 {
		t.Fatal("re-insert evicted something")
	}
	if c.Probe(64) != Modified {
		t.Fatal("re-insert did not update state")
	}
	if c.Occupancy() != 1 {
		t.Fatalf("occupancy %d after re-insert", c.Occupancy())
	}
}

func TestInvalidateAndSetState(t *testing.T) {
	c := mk(t, 4096, 2)
	c.Insert(128, Exclusive)
	if !c.SetState(128, Modified) {
		t.Fatal("SetState failed on resident line")
	}
	if st := c.Invalidate(128); st != Modified {
		t.Fatalf("Invalidate returned %v", st)
	}
	if c.Probe(128) != Invalid {
		t.Fatal("line still present after Invalidate")
	}
	if c.SetState(128, Shared) {
		t.Fatal("SetState succeeded on absent line")
	}
	if st := c.Invalidate(128); st != Invalid {
		t.Fatal("double Invalidate returned non-Invalid")
	}
}

func TestSetStatePanicsOnInvalid(t *testing.T) {
	c := mk(t, 4096, 2)
	c.Insert(0, Shared)
	defer func() {
		if recover() == nil {
			t.Fatal("SetState(Invalid) did not panic")
		}
	}()
	c.SetState(0, Invalid)
}

func TestInsertPanicsOnInvalid(t *testing.T) {
	c := mk(t, 4096, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("Insert(Invalid) did not panic")
		}
	}()
	c.Insert(0, Invalid)
}

func TestNonPowerOfTwoSets(t *testing.T) {
	// 1.25 MB 4-way: 5120 sets, not a power of two (paper Figure 12 uses
	// this size for the RAC-tags-vs-L2-capacity comparison).
	c := mk(t, 5*256*1024, 4)
	if c.Config().Sets() != 5120 {
		t.Fatalf("sets = %d", c.Config().Sets())
	}
	// Insert and retrieve lines far apart.
	for i := 0; i < 10_000; i++ {
		line := uint64(i) * 64 * 7919
		c.Insert(line, Shared)
		if c.Probe(line) != Shared {
			t.Fatalf("line %#x lost immediately after insert", line)
		}
	}
}

func TestDirectMappedConflict(t *testing.T) {
	c := mk(t, 64*64, 1) // 64 sets, direct mapped
	a := uint64(0)
	b := uint64(64 * 64) // same set as a
	c.Insert(a, Shared)
	victim, vst := c.Insert(b, Shared)
	if vst == Invalid || victim != a {
		t.Fatal("direct-mapped insert did not evict the conflicting line")
	}
	// 4-way tolerates it.
	c4 := mk(t, 64*64, 4)
	c4.Insert(a, Shared)
	if _, vst := c4.Insert(b, Shared); vst != Invalid {
		t.Fatal("4-way evicted despite free ways")
	}
}

func TestResetStatsPreservesContents(t *testing.T) {
	c := mk(t, 4096, 2)
	c.Insert(0, Modified)
	c.Access(0)
	c.ResetStats()
	if c.Accesses != 0 || c.Hits != 0 {
		t.Fatal("stats not reset")
	}
	if c.Probe(0) != Modified {
		t.Fatal("contents lost on stats reset")
	}
}

func TestForEachResident(t *testing.T) {
	c := mk(t, 4096, 2)
	want := map[uint64]State{64: Shared, 128: Modified, 4096 + 64: Exclusive}
	for l, s := range want {
		c.Insert(l, s)
	}
	got := map[uint64]State{}
	c.ForEachResident(func(line uint64, st State) { got[line] = st })
	if len(got) != len(want) {
		t.Fatalf("resident count %d, want %d", len(got), len(want))
	}
	for l, s := range want {
		if got[l] != s {
			t.Errorf("line %#x state %v, want %v", l, got[l], s)
		}
	}
}

// TestOccupancyNeverExceedsCapacity is a property test: any access sequence
// keeps occupancy within capacity and every resident line is findable.
func TestOccupancyNeverExceedsCapacity(t *testing.T) {
	f := func(seed uint64) bool {
		r := sim.NewRNG(seed)
		c := mk(nil, 64*64*2, 2) // 128 lines capacity
		for i := 0; i < 2000; i++ {
			line := uint64(r.Intn(500)) * 64
			if c.Access(line) == Invalid {
				c.Insert(line, State(1+r.Intn(3)))
			}
		}
		if c.Occupancy() > 128 {
			return false
		}
		ok := true
		c.ForEachResident(func(line uint64, st State) {
			if c.Probe(line) != st {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestLRUAgainstReference checks the set-associative LRU against a simple
// reference model for random access sequences.
func TestLRUAgainstReference(t *testing.T) {
	f := func(seed uint64) bool {
		r := sim.NewRNG(seed)
		const sets, ways = 4, 2
		c := mk(nil, sets*ways*64, ways)
		// Reference model: per set, slice ordered most..least recent.
		ref := make([][]uint64, sets)
		for i := 0; i < 1000; i++ {
			line := uint64(r.Intn(32)) * 64
			set := int(line / 64 % sets)
			hitRef := false
			for j, l := range ref[set] {
				if l == line {
					ref[set] = append([]uint64{line}, append(ref[set][:j], ref[set][j+1:]...)...)
					hitRef = true
					break
				}
			}
			hit := c.Access(line) != Invalid
			if hit != hitRef {
				return false
			}
			if !hit {
				c.Insert(line, Shared)
				ref[set] = append([]uint64{line}, ref[set]...)
				if len(ref[set]) > ways {
					ref[set] = ref[set][:ways]
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestStateString(t *testing.T) {
	if Invalid.String() != "I" || Shared.String() != "S" || Exclusive.String() != "E" || Modified.String() != "M" {
		t.Fatal("state strings wrong")
	}
	if State(9).String() != "?" {
		t.Fatal("unknown state string wrong")
	}
}
