package cache

import (
	"fmt"

	"oltpsim/internal/snapshot"
)

// SaveState writes the cache's mutable state: the way arrays, the LRU
// clock, and the access counters. Geometry is not written — the loader
// rebuilds the cache from the same configuration and only the contents are
// restored — but the array length acts as a cross-check.
func (c *Cache) SaveState(e *snapshot.Encoder) {
	e.U64s(c.tags)
	e.U8s(stateBytes(c.states))
	e.U64s(c.stamps)
	e.U64(c.clock)
	e.U64(c.Accesses)
	e.U64(c.Hits)
}

// LoadState restores state saved by SaveState into a cache of identical
// geometry, validating every invariant the hot paths rely on.
func (c *Cache) LoadState(d *snapshot.Decoder) error {
	tags := d.U64s()
	states := d.U8s()
	stamps := d.U64s()
	clock := d.U64()
	accesses := d.U64()
	hits := d.U64()
	if err := d.Err(); err != nil {
		return err
	}
	if len(tags) != len(c.tags) || len(states) != len(c.states) || len(stamps) != len(c.stamps) {
		return fmt.Errorf("cache %s: snapshot geometry %d/%d/%d ways, want %d",
			c.cfg.Name, len(tags), len(states), len(stamps), len(c.tags))
	}
	for i := range tags {
		if states[i] > uint8(Modified) {
			return fmt.Errorf("cache %s: way %d has invalid state %d", c.cfg.Name, i, states[i])
		}
		if (tags[i] == 0) != (states[i] == uint8(Invalid)) {
			return fmt.Errorf("cache %s: way %d tag/state validity mismatch", c.cfg.Name, i)
		}
		if tags[i] != 0 && c.setOf(tags[i]>>1) != uint64(i)/c.assoc {
			return fmt.Errorf("cache %s: way %d holds line %#x outside its set", c.cfg.Name, i, tags[i]>>1)
		}
	}
	if hits > accesses {
		return fmt.Errorf("cache %s: %d hits exceed %d accesses", c.cfg.Name, hits, accesses)
	}
	copy(c.tags, tags)
	for i := range states {
		c.states[i] = State(states[i])
	}
	copy(c.stamps, stamps)
	c.clock = clock
	c.Accesses = accesses
	c.Hits = hits
	return nil
}

// SaveState writes the victim buffer contents, replacement cursor, and
// counters.
func (v *VictimBuffer) SaveState(e *snapshot.Encoder) {
	e.Int(len(v.entries))
	for _, ent := range v.entries {
		e.U64(ent.line)
		e.U8(uint8(ent.state))
	}
	e.Int(v.next)
	e.U64(v.Hits)
	e.U64(v.Probes)
}

// LoadState restores a buffer of identical size.
func (v *VictimBuffer) LoadState(d *snapshot.Decoder) error {
	n := d.Int()
	if d.Err() != nil {
		return d.Err()
	}
	if n != len(v.entries) {
		return fmt.Errorf("victim buffer: snapshot has %d entries, want %d", n, len(v.entries))
	}
	entries := make([]victimEntry, n)
	for i := range entries {
		entries[i] = victimEntry{line: d.U64(), state: State(d.U8())}
	}
	next := d.Int()
	hits := d.U64()
	probes := d.U64()
	if err := d.Err(); err != nil {
		return err
	}
	for i, ent := range entries {
		if ent.state > Modified {
			return fmt.Errorf("victim buffer: entry %d has invalid state %d", i, ent.state)
		}
	}
	if (n == 0 && next != 0) || (n > 0 && (next < 0 || next >= n)) {
		return fmt.Errorf("victim buffer: cursor %d out of range for %d entries", next, n)
	}
	if hits > probes {
		return fmt.Errorf("victim buffer: %d hits exceed %d probes", hits, probes)
	}
	copy(v.entries, entries)
	v.next = next
	v.Hits = hits
	v.Probes = probes
	return nil
}

func stateBytes(states []State) []uint8 {
	b := make([]uint8, len(states))
	for i, s := range states {
		b[i] = uint8(s)
	}
	return b
}
