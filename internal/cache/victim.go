package cache

// VictimBuffer models the small fully-associative buffer of recently evicted
// L2 lines shown on the Alpha 21364 block diagram (paper Figure 1, "L2
// Victim Buffers"). Its architectural purpose on the 21364 is to stage dirty
// victims on their way to memory so that the miss fill need not wait for the
// writeback; we model that by letting an access that hits a buffered victim
// count as an L2 hit. It is disabled in the paper-fidelity configurations
// (the Figure 3 latencies are end-to-end and already assume it), but is
// available for the ablation benchmarks.
type VictimBuffer struct {
	entries []victimEntry
	next    int // round-robin (FIFO) replacement

	Hits   uint64
	Probes uint64
}

type victimEntry struct {
	line  uint64
	state State
}

// NewVictimBuffer returns a buffer with n entries; n == 0 yields a buffer
// that never hits, so callers need no nil checks.
func NewVictimBuffer(n int) *VictimBuffer {
	return &VictimBuffer{entries: make([]victimEntry, n)}
}

// Put stages an evicted line, returning the entry it displaced (dstate ==
// Invalid if none). The caller must complete the displaced entry's writeback
// or replacement hint. A zero-sized buffer reports the line itself as
// displaced, so callers need no special case.
func (v *VictimBuffer) Put(line uint64, st State) (displaced uint64, dstate State) {
	if st == Invalid {
		return 0, Invalid
	}
	if len(v.entries) == 0 {
		return line, st
	}
	displaced, dstate = v.entries[v.next].line, v.entries[v.next].state
	v.entries[v.next] = victimEntry{line: line, state: st}
	v.next = (v.next + 1) % len(v.entries)
	return displaced, dstate
}

// Take removes and returns the state of line if buffered.
func (v *VictimBuffer) Take(line uint64) (State, bool) {
	v.Probes++
	for i := range v.entries {
		if v.entries[i].state != Invalid && v.entries[i].line == line {
			st := v.entries[i].state
			v.entries[i].state = Invalid
			v.Hits++
			return st, true
		}
	}
	return Invalid, false
}

// Downgrade demotes a buffered Modified/Exclusive line to Shared, returning
// its prior state (Invalid if absent).
func (v *VictimBuffer) Downgrade(line uint64) State {
	for i := range v.entries {
		if v.entries[i].state != Invalid && v.entries[i].line == line {
			st := v.entries[i].state
			v.entries[i].state = Shared
			return st
		}
	}
	return Invalid
}

// Invalidate drops line if buffered, returning its prior state. The
// coherence layer must invalidate victim buffers along with the caches.
func (v *VictimBuffer) Invalidate(line uint64) State {
	for i := range v.entries {
		if v.entries[i].state != Invalid && v.entries[i].line == line {
			st := v.entries[i].state
			v.entries[i].state = Invalid
			return st
		}
	}
	return Invalid
}
