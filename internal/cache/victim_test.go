package cache

import "testing"

func TestVictimBufferPutTake(t *testing.T) {
	v := NewVictimBuffer(4)
	if d, ds := v.Put(100, Modified); ds != Invalid || d != 0 {
		t.Fatal("first Put displaced something")
	}
	st, ok := v.Take(100)
	if !ok || st != Modified {
		t.Fatalf("Take = (%v, %v)", st, ok)
	}
	if _, ok := v.Take(100); ok {
		t.Fatal("second Take found the removed line")
	}
	if v.Hits != 1 || v.Probes != 2 {
		t.Fatalf("stats: hits %d probes %d", v.Hits, v.Probes)
	}
}

func TestVictimBufferDisplacement(t *testing.T) {
	v := NewVictimBuffer(2)
	v.Put(1*64, Shared)
	v.Put(2*64, Modified)
	d, ds := v.Put(3*64, Shared)
	if d != 1*64 || ds != Shared {
		t.Fatalf("displaced (%#x, %v), want oldest entry", d, ds)
	}
	d, ds = v.Put(4*64, Shared)
	if d != 2*64 || ds != Modified {
		t.Fatalf("displaced (%#x, %v), want FIFO order", d, ds)
	}
}

func TestZeroSizedVictimBuffer(t *testing.T) {
	v := NewVictimBuffer(0)
	d, ds := v.Put(64, Modified)
	if d != 64 || ds != Modified {
		t.Fatal("zero-sized buffer must pass the line through as displaced")
	}
	if _, ok := v.Take(64); ok {
		t.Fatal("zero-sized buffer hit")
	}
}

func TestVictimBufferInvalidate(t *testing.T) {
	v := NewVictimBuffer(2)
	v.Put(64, Modified)
	if st := v.Invalidate(64); st != Modified {
		t.Fatalf("Invalidate returned %v", st)
	}
	if st := v.Invalidate(64); st != Invalid {
		t.Fatal("double Invalidate returned non-Invalid")
	}
}

func TestVictimBufferDowngrade(t *testing.T) {
	v := NewVictimBuffer(2)
	v.Put(64, Modified)
	if st := v.Downgrade(64); st != Modified {
		t.Fatalf("Downgrade returned %v", st)
	}
	if st, ok := v.Take(64); !ok || st != Shared {
		t.Fatalf("after downgrade Take = (%v, %v), want Shared", st, ok)
	}
	if st := v.Downgrade(999); st != Invalid {
		t.Fatal("Downgrade of absent line returned non-Invalid")
	}
}

func TestVictimBufferDropsInvalidPut(t *testing.T) {
	v := NewVictimBuffer(2)
	if _, ds := v.Put(64, Invalid); ds != Invalid {
		t.Fatal("Put(Invalid) displaced something")
	}
}
