package cache

// MissClass distinguishes the three textbook miss causes. The paper's key
// cache observation — that most misses removed by an 8 MB direct-mapped
// off-chip cache are conflict misses, which a 2 MB 4/8-way on-chip cache also
// removes — is established with exactly this classification.
type MissClass uint8

const (
	// Cold: first reference to the line ever.
	Cold MissClass = iota
	// Capacity: the line was referenced before and would also miss in a
	// fully-associative cache of the same capacity with LRU replacement.
	Capacity
	// Conflict: the line would hit in the fully-associative cache; only the
	// set-index mapping of the real cache evicted it early.
	Conflict
)

// String implements fmt.Stringer.
func (m MissClass) String() string {
	switch m {
	case Cold:
		return "cold"
	case Capacity:
		return "capacity"
	case Conflict:
		return "conflict"
	default:
		return "?"
	}
}

// Classifier shadows a real cache with (a) the set of all lines ever seen and
// (b) a fully-associative LRU cache of identical capacity, and classifies
// each miss of the real cache. It is optional and costs memory proportional
// to the touched footprint, so experiments enable it only when the
// classification itself is the result being measured.
type Classifier struct {
	seen map[uint64]struct{}
	fa   *faLRU
	// Counts indexed by MissClass.
	Counts [3]uint64
}

// NewClassifier builds a classifier for a cache of capacityLines lines.
func NewClassifier(capacityLines int) *Classifier {
	return &Classifier{
		seen: make(map[uint64]struct{}, capacityLines*2),
		fa:   newFALRU(capacityLines),
	}
}

// Observe must be called for every access to the shadowed cache, with hit
// reporting the real cache's outcome. On a miss it returns the class; on a
// hit the returned class is meaningless and ok is false.
//
//oltpvet:coldpath diagnostic-only instrumentation: Classify configs are excluded from the 0 allocs/op steady-state contract (and cannot be snapshotted), so the shadow structures may allocate
func (cl *Classifier) Observe(line uint64, hit bool) (MissClass, bool) {
	_, everSeen := cl.seen[line]
	if !everSeen {
		cl.seen[line] = struct{}{}
	}
	faHit := cl.fa.access(line)
	if hit {
		return 0, false
	}
	var class MissClass
	switch {
	case !everSeen:
		class = Cold
	case faHit:
		class = Conflict
	default:
		class = Capacity
	}
	cl.Counts[class]++
	return class, true
}

// Total returns the number of classified misses.
func (cl *Classifier) Total() uint64 {
	return cl.Counts[Cold] + cl.Counts[Capacity] + cl.Counts[Conflict]
}

// faLRU is a fully-associative LRU cache over line addresses, implemented as
// a hash map plus an intrusive doubly-linked list.
type faLRU struct {
	cap   int
	nodes map[uint64]*faNode
	head  *faNode // most recently used
	tail  *faNode // least recently used
}

type faNode struct {
	line       uint64
	prev, next *faNode
}

func newFALRU(capacity int) *faLRU {
	if capacity <= 0 {
		panic("cache: fully-associative shadow with non-positive capacity")
	}
	return &faLRU{cap: capacity, nodes: make(map[uint64]*faNode, capacity+1)}
}

// access touches line and reports whether it was resident.
func (f *faLRU) access(line uint64) bool {
	if n, ok := f.nodes[line]; ok {
		f.unlink(n)
		f.pushFront(n)
		return true
	}
	n := &faNode{line: line}
	f.nodes[line] = n
	f.pushFront(n)
	if len(f.nodes) > f.cap {
		lru := f.tail
		f.unlink(lru)
		delete(f.nodes, lru.line)
	}
	return false
}

func (f *faLRU) pushFront(n *faNode) {
	n.prev = nil
	n.next = f.head
	if f.head != nil {
		f.head.prev = n
	}
	f.head = n
	if f.tail == nil {
		f.tail = n
	}
}

func (f *faLRU) unlink(n *faNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		f.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		f.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

// len reports residency, for tests.
func (f *faLRU) len() int { return len(f.nodes) }
