// Package cache implements the set-associative cache model used for the L1
// instruction, L1 data, and L2 caches of every simulated processor, plus the
// shadow structures that classify misses into cold, capacity, and conflict
// misses (the paper's Section 3/8 argument that large direct-mapped off-chip
// caches mostly remove conflict misses hinges on this classification).
//
// The model is a tag store only: data values live in the functional workload
// engine, so the cache tracks presence and coherence state per 64-byte line.
// Replacement is true LRU within a set.
package cache

import "fmt"

// State is the coherence state of a line in a cache. The same enum serves the
// private L1s (which only use Invalid/Exclusive/Modified relative to their
// L2) and the L2s (which hold directory-visible MESI states).
type State uint8

const (
	// Invalid: line not present.
	Invalid State = iota
	// Shared: present read-only; other caches may hold copies.
	Shared
	// Exclusive: present read-only but guaranteed sole copy; a write may
	// upgrade silently to Modified without a directory transaction.
	Exclusive
	// Modified: present, writable, dirty with respect to memory.
	Modified
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	default:
		return "?"
	}
}

// Config describes one cache.
type Config struct {
	// Name appears in statistics output (e.g. "L1I", "L2").
	Name string
	// SizeBytes is the total capacity. It must be a multiple of
	// LineBytes*Assoc.
	SizeBytes int64
	// Assoc is the number of ways per set (1 = direct mapped).
	Assoc int
	// LineBytes is the line size; all caches in the study use 64.
	LineBytes int
}

// Sets returns the number of sets implied by the configuration.
func (c Config) Sets() int {
	return int(c.SizeBytes) / (c.LineBytes * c.Assoc)
}

// Validate reports a descriptive error for impossible configurations.
func (c Config) Validate() error {
	if c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache %s: line size %d is not a positive power of two", c.Name, c.LineBytes)
	}
	if c.Assoc <= 0 {
		return fmt.Errorf("cache %s: associativity %d must be positive", c.Name, c.Assoc)
	}
	if c.SizeBytes <= 0 || c.SizeBytes%int64(c.LineBytes*c.Assoc) != 0 {
		return fmt.Errorf("cache %s: size %d is not a multiple of line*assoc = %d",
			c.Name, c.SizeBytes, c.LineBytes*c.Assoc)
	}
	if c.Sets() < 1 {
		return fmt.Errorf("cache %s: zero sets", c.Name)
	}
	return nil
}

// Cache is a set-associative tag store with per-set LRU replacement.
type Cache struct {
	cfg       Config
	nsets     uint64
	assoc     uint64 // cfg.Assoc hoisted out of the nested struct
	setMask   uint64 // nsets-1 when nsets is a power of two
	pow2      bool
	lineShift uint

	// Flat way arrays, indexed by set*assoc + way. A tag encodes the line
	// address and a validity bit as line<<1|1 (0 when the way is invalid),
	// so the hot lookup is a single compare per way instead of a state
	// check plus a tag check. states mirrors validity: states[i] == Invalid
	// exactly when tags[i] == 0.
	tags   []uint64
	states []State
	stamps []uint64

	clock uint64 // LRU timestamp source

	// Stats counts accesses and hits; misses are derived.
	Accesses uint64
	Hits     uint64
}

// New builds a cache from cfg, panicking on invalid configuration (cache
// geometry is fixed by the experiment definitions, so an invalid one is a
// programming error, not a runtime condition).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nsets := uint64(cfg.Sets())
	c := &Cache{
		cfg:    cfg,
		nsets:  nsets,
		assoc:  uint64(cfg.Assoc),
		pow2:   nsets&(nsets-1) == 0,
		tags:   make([]uint64, nsets*uint64(cfg.Assoc)),
		states: make([]State, nsets*uint64(cfg.Assoc)),
		stamps: make([]uint64, nsets*uint64(cfg.Assoc)),
	}
	c.setMask = nsets - 1
	for s := cfg.LineBytes; s > 1; s >>= 1 {
		c.lineShift++
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

func (c *Cache) setOf(line uint64) uint64 {
	idx := line >> c.lineShift
	if c.pow2 {
		return idx & c.setMask
	}
	return idx % c.nsets
}

// tagOf encodes line as a stored tag: the validity bit in bit 0 makes an
// invalid way (tag 0) unequal to every encoded line, including line 0.
func tagOf(line uint64) uint64 { return line<<1 | 1 }

// find returns the way index holding line within set, or -1.
func (c *Cache) find(set, line uint64) int {
	key := tagOf(line)
	base := set * c.assoc
	for i, end := base, base+c.assoc; i < end; i++ {
		if c.tags[i] == key {
			return int(i)
		}
	}
	return -1
}

// Probe returns the state of line without updating LRU or statistics.
func (c *Cache) Probe(line uint64) State {
	if i := c.find(c.setOf(line), line); i >= 0 {
		return c.states[i]
	}
	return Invalid
}

// Access looks up line, counts the access, and refreshes LRU on a hit.
// It returns the line's state; Invalid means miss.
func (c *Cache) Access(line uint64) State {
	c.Accesses++
	if i := c.find(c.setOf(line), line); i >= 0 {
		c.clock++
		c.stamps[i] = c.clock
		c.Hits++
		return c.states[i]
	}
	return Invalid
}

// Insert places line with the given state, evicting the LRU way if the set is
// full. It returns the victim line and its prior state; vstate == Invalid
// means no eviction happened. Inserting a line that is already present just
// updates its state.
func (c *Cache) Insert(line uint64, st State) (victim uint64, vstate State) {
	if st == Invalid {
		panic("cache: Insert with Invalid state")
	}
	set := c.setOf(line)
	if i := c.find(set, line); i >= 0 {
		c.states[i] = st
		c.clock++
		c.stamps[i] = c.clock
		return 0, Invalid
	}
	base := set * c.assoc
	victimIdx := base
	oldest := ^uint64(0)
	for i := base; i < base+c.assoc; i++ {
		if c.tags[i] == 0 {
			victimIdx = i
			oldest = 0
			break
		}
		if c.stamps[i] < oldest {
			oldest = c.stamps[i]
			victimIdx = i
		}
	}
	victim, vstate = c.tags[victimIdx]>>1, c.states[victimIdx]
	c.tags[victimIdx] = tagOf(line)
	c.states[victimIdx] = st
	c.clock++
	c.stamps[victimIdx] = c.clock
	if vstate == Invalid {
		return 0, Invalid
	}
	return victim, vstate
}

// SetState changes the state of a resident line, returning false if the line
// is not present.
func (c *Cache) SetState(line uint64, st State) bool {
	if st == Invalid {
		panic("cache: SetState to Invalid; use Invalidate")
	}
	if i := c.find(c.setOf(line), line); i >= 0 {
		c.states[i] = st
		return true
	}
	return false
}

// Invalidate removes line and returns its prior state (Invalid if absent).
func (c *Cache) Invalidate(line uint64) State {
	if i := c.find(c.setOf(line), line); i >= 0 {
		st := c.states[i]
		c.states[i] = Invalid
		c.tags[i] = 0
		return st
	}
	return Invalid
}

// Misses returns Accesses - Hits.
func (c *Cache) Misses() uint64 { return c.Accesses - c.Hits }

// ResetStats zeroes the access counters without disturbing cache contents;
// the experiment harness calls this at the end of warmup.
func (c *Cache) ResetStats() {
	c.Accesses = 0
	c.Hits = 0
}

// ForEachResident calls fn for every valid line. Used by back-invalidation
// (inclusion) checks in tests and by the functional engine's integrity
// checks; it is not on the hot path.
func (c *Cache) ForEachResident(fn func(line uint64, st State)) {
	for i := range c.tags {
		if c.states[i] != Invalid {
			fn(c.tags[i]>>1, c.states[i])
		}
	}
}

// Occupancy returns the number of valid lines.
func (c *Cache) Occupancy() int {
	n := 0
	for i := range c.states {
		if c.states[i] != Invalid {
			n++
		}
	}
	return n
}
