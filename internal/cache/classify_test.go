package cache

import (
	"testing"

	"oltpsim/internal/sim"
)

// driveClassified runs an access sequence through a real cache and its
// classifier together.
type classified struct {
	c  *Cache
	cl *Classifier
}

func newClassified(size int64, assoc int) *classified {
	c := New(Config{Name: "T", SizeBytes: size, Assoc: assoc, LineBytes: 64})
	return &classified{c: c, cl: NewClassifier(int(size / 64))}
}

func (x *classified) access(line uint64) (MissClass, bool) {
	hit := x.c.Access(line) != Invalid
	if !hit {
		x.c.Insert(line, Shared)
	}
	return x.cl.Observe(line, hit)
}

func TestColdMiss(t *testing.T) {
	x := newClassified(64*64, 1)
	class, miss := x.access(0)
	if !miss || class != Cold {
		t.Fatalf("first access = (%v, %v), want cold miss", class, miss)
	}
	if _, miss := x.access(0); miss {
		t.Fatal("second access missed")
	}
}

func TestConflictMiss(t *testing.T) {
	// Direct-mapped, 4 sets: lines 0 and 4*64 collide; a fully-associative
	// cache of the same capacity would keep both.
	x := newClassified(4*64, 1)
	x.access(0)
	x.access(4 * 64)
	class, miss := x.access(0)
	if !miss || class != Conflict {
		t.Fatalf("expected conflict miss, got (%v, %v)", class, miss)
	}
}

func TestCapacityMiss(t *testing.T) {
	// Fully-associative-equivalent pressure: touch capacity+1 distinct
	// lines round-robin so even the FA shadow must evict.
	x := newClassified(4*64, 4) // capacity 4 lines, fully associative
	for round := 0; round < 3; round++ {
		for i := uint64(0); i < 5; i++ {
			class, miss := x.access(i * 64)
			if round > 0 && miss && class != Capacity {
				t.Fatalf("round %d line %d: class %v, want capacity", round, i, class)
			}
		}
	}
	if x.cl.Counts[Capacity] == 0 {
		t.Fatal("no capacity misses recorded")
	}
	if x.cl.Counts[Conflict] != 0 {
		t.Fatalf("fully-associative cache recorded %d conflict misses", x.cl.Counts[Conflict])
	}
}

func TestClassifierTotals(t *testing.T) {
	x := newClassified(4*64, 1)
	r := sim.NewRNG(1)
	misses := uint64(0)
	for i := 0; i < 5000; i++ {
		if _, miss := x.access(uint64(r.Intn(64)) * 64); miss {
			misses++
		}
	}
	if x.cl.Total() != misses {
		t.Fatalf("classifier total %d != observed misses %d", x.cl.Total(), misses)
	}
}

// TestPaperClaim reproduces the Section 3 argument in miniature: misses a
// direct-mapped cache suffers beyond a same-capacity fully-associative
// cache are conflicts, and associativity removes them.
func TestPaperClaimConflictDominance(t *testing.T) {
	r := sim.NewRNG(2)
	// Hot working set of 48 lines scattered over a large address range,
	// cache capacity 64 lines.
	hot := make([]uint64, 32)
	for i := range hot {
		hot[i] = uint64(r.Intn(1<<20)) * 64
	}
	run := func(assoc int) (misses uint64, conflicts uint64) {
		x := newClassified(64*64, assoc)
		for i := 0; i < 20_000; i++ {
			if _, miss := x.access(hot[r.Intn(len(hot))]); miss {
				misses++
			}
		}
		return misses, x.cl.Counts[Conflict]
	}
	dmMisses, dmConf := run(1)
	aMisses, aConf := run(8)
	if dmMisses <= aMisses {
		t.Fatalf("direct-mapped misses %d <= 8-way misses %d", dmMisses, aMisses)
	}
	if dmConf == 0 {
		t.Fatal("direct-mapped run recorded no conflict misses")
	}
	if aConf*3 > dmConf {
		t.Fatalf("8-way conflicts %d not far below direct-mapped %d", aConf, dmConf)
	}
}

func TestFALRUEviction(t *testing.T) {
	f := newFALRU(3)
	f.access(1)
	f.access(2)
	f.access(3)
	f.access(1) // 1 now MRU; order: 1,3,2
	f.access(4) // evicts 2; order: 4,1,3
	if f.access(2) {
		t.Fatal("line 2 should have been evicted")
	}
	// That miss inserted 2 and evicted 3 (LRU); order: 2,4,1.
	if !f.access(4) || !f.access(1) || f.access(3) {
		t.Fatal("membership after evictions is wrong")
	}
	if f.len() > 3 {
		t.Fatalf("faLRU grew to %d", f.len())
	}
}

func TestMissClassString(t *testing.T) {
	if Cold.String() != "cold" || Capacity.String() != "capacity" || Conflict.String() != "conflict" {
		t.Fatal("class strings wrong")
	}
	if MissClass(7).String() != "?" {
		t.Fatal("unknown class string wrong")
	}
}

func TestClassifierPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewClassifier(0) did not panic")
		}
	}()
	NewClassifier(0)
}
