// Package cli holds the flag-parsing helpers shared by the command-line
// tools, kept out of package main so they are testable.
package cli

import (
	"fmt"
	"strings"

	"oltpsim/internal/core"
)

// ParseSize parses cache sizes like "8M", "1.25M", "512K", or plain bytes.
func ParseSize(s string) (int64, error) {
	s = strings.ToUpper(strings.TrimSpace(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "M"):
		mult = core.MB
		s = strings.TrimSuffix(s, "M")
	case strings.HasSuffix(s, "K"):
		mult = core.KB
		s = strings.TrimSuffix(s, "K")
	}
	var v float64
	if _, err := fmt.Sscanf(s, "%g", &v); err != nil || v <= 0 {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return int64(v * float64(mult)), nil
}

// MachineSpec is the command-line description of a machine. The JSON tags
// are the oltpserver job-spec wire format, so a sweep submitted over HTTP
// resolves through exactly the same Build path as the CLI flags.
type MachineSpec struct {
	Procs   int    `json:"procs"`
	Level   string `json:"level"` // cons|base|l2|l2mc|full
	L2      string `json:"l2"`    // e.g. "8M"
	Assoc   int    `json:"assoc"`
	DRAM    bool   `json:"dram,omitempty"`
	OOO     bool   `json:"ooo,omitempty"`
	RACSize string `json:"rac,omitempty"` // empty = no RAC
	Repl    bool   `json:"repl,omitempty"`
	Cores   int    `json:"cores,omitempty"` // cores per chip; 0/1 = paper configuration
	// Name, when non-empty, overrides the derived configuration name (the
	// bar label in rendered figures).
	Name string `json:"label,omitempty"`
}

// Build resolves a MachineSpec into a core.Config.
func Build(spec MachineSpec) (core.Config, error) {
	size, err := ParseSize(spec.L2)
	if err != nil {
		return core.Config{}, err
	}
	var cfg core.Config
	switch strings.ToLower(spec.Level) {
	case "cons":
		cfg = core.ConservativeConfig(spec.Procs)
		cfg.L2SizeBytes, cfg.L2Assoc = size, spec.Assoc
	case "base":
		cfg = core.BaseConfig(spec.Procs, size, spec.Assoc)
	case "l2":
		tech := core.OnChipSRAM
		if spec.DRAM {
			tech = core.OnChipDRAM
		}
		cfg = core.IntegratedL2Config(spec.Procs, size, spec.Assoc, tech)
	case "l2mc":
		cfg = core.L2MCConfig(spec.Procs, size, spec.Assoc)
	case "full":
		cfg = core.FullConfig(spec.Procs, size, spec.Assoc)
	default:
		return core.Config{}, fmt.Errorf("unknown level %q", spec.Level)
	}
	if spec.OOO {
		cfg.OutOfOrder = true
		cfg.OOO = core.DefaultOOO()
	}
	if spec.RACSize != "" {
		rs, err := ParseSize(spec.RACSize)
		if err != nil {
			return core.Config{}, err
		}
		cfg.RAC = &core.RACConfig{SizeBytes: rs, Assoc: 8}
	}
	cfg.CodeReplication = spec.Repl
	cfg.CoresPerChip = spec.Cores
	if spec.Name != "" {
		cfg.Name = spec.Name
	}
	if err := cfg.Validate(); err != nil {
		return core.Config{}, err
	}
	return cfg, nil
}
