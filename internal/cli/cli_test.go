package cli

import (
	"testing"

	"oltpsim/internal/core"
)

func TestParseSize(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		err  bool
	}{
		{"8M", 8 * core.MB, false},
		{"1.25M", 5 * core.MB / 4, false},
		{"512K", 512 * core.KB, false},
		{"2m", 2 * core.MB, false},
		{" 4M ", 4 * core.MB, false},
		{"65536", 65536, false},
		{"", 0, true},
		{"abc", 0, true},
		{"-2M", 0, true},
		{"0", 0, true},
	}
	for _, c := range cases {
		got, err := ParseSize(c.in)
		if c.err != (err != nil) {
			t.Errorf("ParseSize(%q) err = %v, want err=%v", c.in, err, c.err)
			continue
		}
		if !c.err && got != c.want {
			t.Errorf("ParseSize(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestBuildLevels(t *testing.T) {
	cases := []struct {
		level string
		want  core.IntegrationLevel
	}{
		{"cons", core.ConservativeBase},
		{"base", core.Base},
		{"l2", core.IntegratedL2},
		{"l2mc", core.IntegratedL2MC},
		{"full", core.FullIntegration},
		{"FULL", core.FullIntegration},
	}
	for _, c := range cases {
		cfg, err := Build(MachineSpec{Procs: 8, Level: c.level, L2: "2M", Assoc: 8})
		if err != nil {
			t.Fatalf("Build(%s): %v", c.level, err)
		}
		if cfg.Level != c.want {
			t.Errorf("Build(%s) level %v, want %v", c.level, cfg.Level, c.want)
		}
	}
	if _, err := Build(MachineSpec{Procs: 8, Level: "bogus", L2: "2M", Assoc: 8}); err == nil {
		t.Fatal("unknown level accepted")
	}
}

func TestBuildOptions(t *testing.T) {
	cfg, err := Build(MachineSpec{
		Procs: 8, Level: "full", L2: "1M", Assoc: 4,
		OOO: true, RACSize: "8M", Repl: true, Cores: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.OutOfOrder || cfg.OOO.Width != 4 {
		t.Fatal("OOO not configured")
	}
	if cfg.RAC == nil || cfg.RAC.SizeBytes != 8*core.MB {
		t.Fatal("RAC not configured")
	}
	if !cfg.CodeReplication || cfg.CoresPerChip != 2 {
		t.Fatal("replication/CMP not configured")
	}
}

func TestBuildDRAM(t *testing.T) {
	cfg, err := Build(MachineSpec{Procs: 1, Level: "l2", L2: "8M", Assoc: 8, DRAM: true})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.L2TechKind != core.OnChipDRAM {
		t.Fatal("DRAM tech not selected")
	}
	if cfg.Latencies().L2Hit != 25 {
		t.Fatal("DRAM hit latency wrong")
	}
}

func TestBuildRejectsInvalid(t *testing.T) {
	if _, err := Build(MachineSpec{Procs: 8, Level: "base", L2: "xx", Assoc: 1}); err == nil {
		t.Fatal("bad size accepted")
	}
	if _, err := Build(MachineSpec{Procs: 8, Level: "base", L2: "8M", Assoc: 1, RACSize: "zz"}); err == nil {
		t.Fatal("bad RAC size accepted")
	}
	if _, err := Build(MachineSpec{Procs: 8, Level: "base", L2: "8M", Assoc: 1, Cores: 3}); err == nil {
		t.Fatal("non-dividing cores accepted")
	}
}
