package core

// CrossingModel is the constructive counterpart of the Figure 3 table: it
// derives the end-to-end latencies from per-component costs, making explicit
// *why* each integration step changes each latency — chip-boundary crossings
// removed, system-bus hops avoided, external set selection eliminated, the
// directory moving between main memory and a dedicated store. The defaults
// reproduce Figure 3 exactly (pinned by tests); the ablation benchmarks
// perturb individual components to show their leverage, which the published
// table alone cannot.
type CrossingModel struct {
	// TagLookup is the on-chip L2 tag access (tags are on-chip in every
	// configuration, as in contemporary high-end parts).
	TagLookup uint32
	// ChipCrossing is one traversal of a chip boundary (pad, driver,
	// synchronization).
	ChipCrossing uint32
	// ExtSRAM is the external wave-pipelined L2 data array access.
	ExtSRAM uint32
	// ExtSetSelect is the extra external multiplexing a set-associative
	// off-chip cache pays after tag resolution (why off-chip caches stay
	// direct-mapped: 25 -> 30 cycles).
	ExtSetSelect uint32
	// IntSRAM and IntDRAM are the integrated array access times (15 vs. 25
	// cycle hits once the 5-cycle tag lookup is added).
	IntSRAM uint32
	IntDRAM uint32
	// MemCore is the irreducible memory access: controller scheduling, RDRAM
	// bank access, transfer (the 75 ns an integrated MC achieves).
	MemCore uint32
	// ExtMCPenalty is what an off-chip memory controller adds: two extra
	// chip crossings plus the processor-bus transaction (100 - 75).
	ExtMCPenalty uint32
	// LinkHop is one network traversal between adjacent nodes
	// (serialization onto a >4 GB/s link, flight, router).
	LinkHop uint32
	// CCRoundTrip is the coherence-controller processing on a clean remote
	// access (requester-side plus home-side).
	CCRoundTrip uint32
	// CCSplitPenalty is the Section 4 anomaly: an external CC reaching an
	// integrated MC's memory must cross the system bus both ways, making
	// 2-hop accesses *slower* than in the fully external arrangement
	// (225 vs. 175).
	CCSplitPenalty uint32
	// DirInMemory is the incremental cost of reading directory state held
	// in main-memory ECC bits alongside the data fetch.
	DirInMemory uint32
	// DirDedicatedSRAM is the faster lookup of the dedicated directory
	// store the split (L2+MC) design is forced to add (paper Figure 9).
	DirDedicatedSRAM uint32
	// OwnerProbe is the cache intervention at the dirty owner.
	OwnerProbe uint32
	// ExtCCDirtyPenalty is the extra chip-boundary work of external
	// coherence controllers on the 3-hop path (home and owner visits).
	ExtCCDirtyPenalty uint32
	// CCSplitDirtyPenalty is the split design's extra bus work on the 3-hop
	// path (the external CC moves the sharing writeback over the system
	// bus).
	CCSplitDirtyPenalty uint32
	// ConservativeSlack is the extra latency of the less-optimized
	// Conservative Base memory system.
	ConservativeSlack uint32
}

// DefaultCrossingModel reproduces Figure 3 exactly.
func DefaultCrossingModel() CrossingModel {
	return CrossingModel{
		TagLookup:           5,
		ChipCrossing:        5,
		ExtSRAM:             10,
		ExtSetSelect:        5,
		IntSRAM:             10,
		IntDRAM:             20,
		MemCore:             75,
		ExtMCPenalty:        25,
		LinkHop:             25,
		CCRoundTrip:         25,
		CCSplitPenalty:      75,
		DirInMemory:         25,
		DirDedicatedSRAM:    10,
		OwnerProbe:          75,
		ExtCCDirtyPenalty:   50,
		CCSplitDirtyPenalty: 40,
		ConservativeSlack:   50,
	}
}

// Derive computes the latency table for a configuration from component
// costs.
func (m CrossingModel) Derive(level IntegrationLevel, l2Assoc int, tech L2Tech) LatencyTable {
	var t LatencyTable
	mcIntegrated := level >= IntegratedL2MC
	ccIntegrated := level >= FullIntegration

	// L2 hit path.
	switch {
	case level <= Base:
		t.L2Hit = m.TagLookup + 2*m.ChipCrossing + m.ExtSRAM
		if l2Assoc > 1 {
			t.L2Hit += m.ExtSetSelect
		}
	case tech == OnChipDRAM:
		t.L2Hit = m.TagLookup + m.IntDRAM
	default:
		t.L2Hit = m.TagLookup + m.IntSRAM
	}

	// Local memory.
	t.Local = m.MemCore
	if !mcIntegrated {
		t.Local += m.ExtMCPenalty
	}
	if level == ConservativeBase {
		t.Local += m.ConservativeSlack
	}

	// Remote clean (2-hop): home fetch plus the network round trip and
	// coherence processing.
	t.Remote = t.Local + 2*m.LinkHop + m.CCRoundTrip
	if level == IntegratedL2MC {
		t.Remote += m.CCSplitPenalty
	}

	// Remote dirty (3-hop): request -> home (directory lookup) -> owner
	// (probe) -> requester.
	t.RemoteDirty = 3*m.LinkHop + m.OwnerProbe + m.CCRoundTrip
	switch {
	case ccIntegrated:
		t.RemoteDirty += m.DirInMemory
	case mcIntegrated:
		// Split design: dedicated SRAM directory, but extra external-CC and
		// bus work.
		t.RemoteDirty += m.DirDedicatedSRAM + m.ExtCCDirtyPenalty + m.CCSplitDirtyPenalty
	default:
		// Fully external: in-memory directory behind the external MC, plus
		// external-CC work.
		t.RemoteDirty += m.DirInMemory + m.ExtMCPenalty + m.ExtCCDirtyPenalty
	}
	if level == ConservativeBase {
		t.RemoteDirty += m.ConservativeSlack
	}

	t.RACHit = t.Local
	t.RemoteDirtyRAC = t.RemoteDirty + 2*m.LinkHop
	return t
}
