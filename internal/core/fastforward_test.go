package core

import (
	"reflect"
	"testing"

	"oltpsim/internal/kernel"
	"oltpsim/internal/memref"
	"oltpsim/internal/oltp"
)

// strideGen emits segments of loads at never-repeating line addresses: every
// reference is a cold L1 miss, so the stream contains zero guaranteed hits.
type strideGen struct {
	next uint64
	segs int
}

func (g *strideGen) NextSegment(now uint64, out *kernel.RefBuffer) kernel.Directive {
	if g.segs == 0 {
		return kernel.Directive{Kind: kernel.Exit}
	}
	g.segs--
	for i := 0; i < 32; i++ {
		out.Append(memref.Ref{Addr: g.next, Kind: memref.Load, Instrs: 1})
		g.next += 64
	}
	return kernel.Directive{Kind: kernel.Run}
}

// strideWorkload adapts a bare scheduler of strideGen processes to the
// Workload interface, exposing the RefSource fast path the fast-forward hook
// requires.
type strideWorkload struct {
	sched *kernel.Scheduler
	chips int
}

func newStrideWorkload(cpus, chips int) *strideWorkload {
	s := kernel.NewScheduler(cpus, 100, nil)
	for cpu := 0; cpu < cpus; cpu++ {
		// Disjoint gigabyte-apart address ranges per process: no line is
		// ever touched twice, by anyone.
		s.Spawn(cpu, "stride", &strideGen{next: uint64(cpu) << 30, segs: 8})
	}
	return &strideWorkload{sched: s, chips: chips}
}

func (w *strideWorkload) Next(cpu int, now uint64) (memref.Ref, kernel.Status, uint64) {
	return w.sched.Next(cpu, now)
}
func (w *strideWorkload) RefSource() *kernel.Scheduler { return w.sched }
func (w *strideWorkload) HomeOf(line uint64) int       { return int(line) % w.chips }
func (w *strideWorkload) Committed() uint64            { return 0 }

// TestFastForwardZeroHitStreamTakesSlowPath is the metamorphic degenerate
// case of hit-run fast-forwarding: on a stream with zero guaranteed L1 hits
// the bulk path must never retire a reference (every lookahead finds its
// terminator immediately), and the machine must still end in exactly the
// state the per-reference path produces.
func TestFastForwardZeroHitStreamTakesSlowPath(t *testing.T) {
	run := func(noFF bool) *System {
		cfg := BaseConfig(2, 1*MB, 4)
		sys := MustNewSystem(cfg, newStrideWorkload(2, 2))
		sys.SetFastForward(!noFF)
		for sys.Step() {
		}
		return sys
	}
	on := run(false)
	off := run(true)

	if ff := on.FastForwarded(); ff != 0 {
		t.Errorf("zero-hit stream fast-forwarded %d references, want 0", ff)
	}
	if on.Steps() != off.Steps() {
		t.Errorf("steps diverged: fast-forward on %d, off %d", on.Steps(), off.Steps())
	}
	if !reflect.DeepEqual(on.clocks, off.clocks) {
		t.Errorf("final clocks diverged:\non:  %v\noff: %v", on.clocks, off.clocks)
	}
	for cpu := 0; cpu < 2; cpu++ {
		if om, fm := on.L1D(cpu).Misses(), off.L1D(cpu).Misses(); om != fm {
			t.Errorf("cpu %d L1D misses diverged: on %d, off %d", cpu, om, fm)
		}
		if on.L1D(cpu).Hits != 0 {
			t.Errorf("cpu %d saw %d L1D hits in a stream built to never hit", cpu, on.L1D(cpu).Hits)
		}
	}
}

// TestFastForwardMatchesPerReference runs the real OLTP workload end to end
// with the bulk path on and off: the RunResults must be deeply equal, and
// the on-run must actually have exercised the bulk path (a hit-heavy stream
// that never fast-forwards would make the equivalence vacuous).
func TestFastForwardMatchesPerReference(t *testing.T) {
	run := func(noFF bool) (*System, interface{}) {
		p := oltp.TestParams(2)
		sys := MustNewSystem(BaseConfig(2, 1*MB, 4), oltp.MustNewHarness(p))
		sys.SetFastForward(!noFF)
		res := sys.Run(20, 60)
		return sys, res
	}
	onSys, onRes := run(false)
	_, offRes := run(true)

	if !reflect.DeepEqual(onRes, offRes) {
		t.Fatalf("fast-forward changed the result:\non:  %+v\noff: %+v", onRes, offRes)
	}
	if onSys.FastForwarded() == 0 {
		t.Fatal("OLTP run never took the fast path; equivalence test is vacuous")
	}
}
