package core

import (
	"fmt"

	"oltpsim/internal/cache"
	"oltpsim/internal/coherence"
	"oltpsim/internal/cpu"
	"oltpsim/internal/kernel"
	"oltpsim/internal/mem"
	"oltpsim/internal/memref"
	"oltpsim/internal/noc"
	"oltpsim/internal/rac"
	"oltpsim/internal/stats"
)

// Workload is what the system times: a per-CPU reference source (the OLTP
// harness with its scheduler) plus the page-placement and progress
// information the memory system needs.
type Workload interface {
	// Next produces the next reference for cpu at local time now; see
	// kernel.Status for the contract.
	Next(cpu int, now uint64) (r memref.Ref, st kernel.Status, wake uint64)
	// HomeOf maps a line address to its home node (chip).
	HomeOf(line uint64) int
	// Committed returns the global count of committed transactions.
	Committed() uint64
}

// RefSource is an optional fast path a Workload may implement: when its Next
// is a pure delegation to a kernel.Scheduler, exposing the scheduler lets
// the per-reference loop call it directly instead of dispatching through the
// Workload interface and the delegation frame on every reference. Implement
// it only if Next adds no logic around the scheduler — the system will
// bypass Next entirely.
type RefSource interface {
	RefSource() *kernel.Scheduler
}

// CommitSource is an optional fast path a Workload may implement alongside
// Committed: direct access to the committed-transaction counter. RunUntil
// stops exactly at the commit boundary, which means testing the counter
// after every single step; through this interface that test is one pointer
// load instead of an interface dispatch per reference. The counter must be
// the same value Committed returns.
type CommitSource interface {
	CommitCounter() *uint64
}

// coreCtx is one processor core: private L1s and a timing model. With
// CoresPerChip == 1 (every paper configuration) a chip has exactly one.
type coreCtx struct {
	cpuID int
	l1i   *cache.Cache
	l1d   *cache.Cache
	model cpu.Model
	// inorder is the devirtualized model when the configuration uses the
	// in-order processor (every configuration except the Figure 13 OOO
	// bars): Step issues direct calls through it instead of dispatching
	// through the Model interface on every reference.
	inorder *cpu.InOrder
	// chip is the node this core belongs to, so the flattened Step scan can
	// recover it without a parallel slice lookup.
	chip *node
}

// node is one processor chip: cores sharing an L2 (and victim buffer/RAC),
// which is also the unit of directory sharing. Multiple cores per chip is
// the CMP extension the paper's conclusion points to ("the next logical
// step seems to be to tolerate the remaining latencies by exploiting the
// inherent thread-level parallelism in OLTP through techniques such as chip
// multiprocessing").
type node struct {
	id    int
	cores []*coreCtx
	l2    *cache.Cache
	vb    *cache.VictimBuffer
	rc    *rac.RAC
	miss  stats.MissTable

	stores   uint64
	loads    uint64
	ifetches uint64
	racHitI  uint64
	racHitD  uint64
}

// System is the assembled machine: chips with cache hierarchies, a
// directory protocol, the latency model implied by the integration level,
// and (optionally) contention models for the memory controllers and
// network.
type System struct {
	cfg   Config
	lat   LatencyTable
	w     Workload
	sched *kernel.Scheduler // non-nil when w implements RefSource
	// commits is the workload's committed-transaction counter when it
	// implements CommitSource, letting RunUntil test its stop condition with
	// a plain load per step; nil means fall back to w.Committed().
	commits *uint64
	chips   int
	cores   int // per chip

	nodes []*node
	// allCores flattens nodes[i].cores[j] in CPU-ID order so Step's
	// earliest-core scan is one linear pass over a single slice.
	allCores []*coreCtx
	// clocks[i] mirrors allCores[i].model.Now(), with ^0 standing for a
	// finished core, so earliest-core selection touches one contiguous
	// uint64 slice instead of dereferencing every coreCtx.
	clocks []uint64
	// heap is an indexed binary min-heap of live core indices keyed on
	// (clocks[i], i): heap[0] is the next core to step, and pos[i] is core
	// i's slot in heap (-1 once the core is done and removed). A core's
	// clock only ever grows, and only the core at the root moves, so each
	// Step restores the heap with a single sift-down from the root — idle
	// and done cores cost nothing per step, unlike the former O(P) scan.
	// The (clock, then lowest index) key ordering reproduces the scan's
	// tie-break exactly, so the reference interleaving is byte-identical.
	//oltpvet:derived not saved: Load rebuilds the heap from the restored per-core clocks (rebuildHeap)
	heap []int32
	//oltpvet:derived not saved: rebuilt alongside heap by rebuildHeap on load
	pos []int32
	dir *coherence.Directory

	// latByCat / stallByCat are latFor/stallFor precomputed as arrays
	// indexed by coherence.Category, so the per-miss category mapping is a
	// load instead of a switch.
	latByCat   [4]uint32
	stallByCat [4]cpu.StallCat

	// Contention layer (nil unless cfg.Contention).
	mcs []*mem.Controller
	net *noc.Network

	classifier *cache.Classifier // only when cfg.Classify

	// stepWorkers > 1 turns on epoch-sharded stepping (shard.go) for
	// eligible configurations; eng is its reusable scratch state.
	//oltpvet:derived execution policy, not machine state: SetStepWorkers reconfigures it after load
	stepWorkers int
	//oltpvet:derived scratch for the sharded engine, rebuilt lazily by SetStepWorkers
	eng *epochEngine

	// noFF disables hit-run fast-forwarding (fastforward.go). The zero value
	// keeps the fast path on; SetFastForward exists so tests can pin the
	// fast/slow equivalence and benchmarks can measure the per-ref path.
	//oltpvet:derived execution policy, not machine state: SetFastForward reconfigures it after load
	noFF bool
	// ffSteps counts references retired through the bulk guaranteed-hit path
	// (serial fast-forward runs and sharded phase-B replays). Diagnostic
	// only: it feeds no RunResult and does not ride in snapshots.
	//oltpvet:derived diagnostic counter, not part of any result or snapshot
	ffSteps uint64

	writeInvalOps uint64
	steps         uint64
}

// NewSystem assembles a machine around the workload.
func NewSystem(cfg Config, w Workload) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cores := cfg.CoresPerChip
	if cores == 0 {
		cores = 1
	}
	chips := cfg.Processors / cores
	s := &System{cfg: cfg, lat: cfg.Latencies(), w: w, chips: chips, cores: cores}
	if rs, ok := w.(RefSource); ok {
		s.sched = rs.RefSource()
	}
	if cs, ok := w.(CommitSource); ok {
		s.commits = cs.CommitCounter()
	}
	s.dir = coherence.New(chips, w.HomeOf, (*peers)(s))
	s.dir.Migratory = !cfg.NoMigratory
	for i := 0; i < chips; i++ {
		n := &node{
			id: i,
			l2: cache.New(cfg.L2CacheConfig()),
			vb: cache.NewVictimBuffer(cfg.VictimBuffers),
		}
		if cfg.RAC != nil {
			if chips == 1 {
				return nil, fmt.Errorf("core: a RAC caches remote lines and needs a multiprocessor")
			}
			n.rc = rac.New(cfg.RAC.SizeBytes, cfg.RAC.Assoc)
		}
		for c := 0; c < cores; c++ {
			cc := &coreCtx{
				cpuID: i*cores + c,
				l1i:   cache.New(cfg.L1CacheConfig("L1I")),
				l1d:   cache.New(cfg.L1CacheConfig("L1D")),
				chip:  n,
			}
			if cfg.OutOfOrder {
				cc.model = cpu.NewOOO(cpu.OOOConfig{
					Width:          cfg.OOO.Width,
					Window:         cfg.OOO.Window,
					MemPorts:       cfg.OOO.MemPorts,
					EffectiveWidth: cfg.OOO.EffectiveWidth,
				})
			} else {
				cc.inorder = cpu.NewInOrder()
				cc.model = cc.inorder
			}
			n.cores = append(n.cores, cc)
			s.allCores = append(s.allCores, cc)
			s.clocks = append(s.clocks, 0)
		}
		s.nodes = append(s.nodes, n)
	}
	s.latByCat = [4]uint32{
		coherence.CatLocal:          s.lat.Local,
		coherence.CatRemoteClean:    s.lat.Remote,
		coherence.CatRemoteDirty:    s.lat.RemoteDirty,
		coherence.CatRemoteDirtyRAC: s.lat.RemoteDirtyRAC,
	}
	s.stallByCat = [4]cpu.StallCat{
		coherence.CatLocal:          cpu.CatLocal,
		coherence.CatRemoteClean:    cpu.CatRemote,
		coherence.CatRemoteDirty:    cpu.CatRemoteDirty,
		coherence.CatRemoteDirtyRAC: cpu.CatRemoteDirty,
	}
	if cfg.Contention {
		s.net = noc.New(noc.DefaultConfig(chips))
		for i := 0; i < chips; i++ {
			s.mcs = append(s.mcs, mem.NewController(mem.DefaultConfig()))
		}
	}
	if cfg.Classify {
		s.classifier = cache.NewClassifier(int(cfg.L2SizeBytes / 64))
	}
	s.rebuildHeap()
	return s, nil
}

// rebuildHeap reconstructs the event queue from s.clocks: every live core
// (clock below the done sentinel) enters the heap, finished cores are marked
// absent. Called at construction and after a snapshot load replaces the
// clocks wholesale.
func (s *System) rebuildHeap() {
	if s.pos == nil {
		s.pos = make([]int32, len(s.clocks))
		s.heap = make([]int32, 0, len(s.clocks))
	}
	s.heap = s.heap[:0]
	for i := range s.pos {
		s.pos[i] = -1
	}
	for i, t := range s.clocks {
		if t != ^uint64(0) {
			s.pos[i] = int32(len(s.heap))
			s.heap = append(s.heap, int32(i))
		}
	}
	for i := len(s.heap)/2 - 1; i >= 0; i-- {
		s.siftDown(i)
	}
}

// siftDown restores the heap invariant below slot i after the core stored
// there gained a later clock (or was just swapped in). Keys are (clock,
// core index), so equal clocks resolve to the lowest CPU ID — the exact
// tie-break of the linear scan this queue replaced.
func (s *System) siftDown(i int) {
	h, clocks := s.heap, s.clocks
	n := len(h)
	moved := h[i]
	mc := clocks[moved]
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		best := h[child]
		bc := clocks[best]
		if r := child + 1; r < n {
			if cand := h[r]; clocks[cand] < bc || (clocks[cand] == bc && cand < best) {
				child, best, bc = r, cand, clocks[cand]
			}
		}
		if mc < bc || (mc == bc && moved < best) {
			break
		}
		h[i] = best
		s.pos[best] = int32(i)
		i = child
	}
	h[i] = moved
	s.pos[moved] = int32(i)
}

// popRoot removes the earliest core from the queue once it reports done.
func (s *System) popRoot() {
	h := s.heap
	last := len(h) - 1
	s.pos[h[0]] = -1
	h[0] = h[last]
	s.heap = h[:last]
	if last > 0 {
		s.siftDown(0)
	}
}

// MustNewSystem panics on configuration errors.
func MustNewSystem(cfg Config, w Workload) *System {
	s, err := NewSystem(cfg, w)
	if err != nil {
		panic(err)
	}
	return s
}

// Config returns the machine configuration.
func (s *System) Config() Config { return s.cfg }

// Directory exposes the coherence directory (tests, invariant checks).
func (s *System) Directory() *coherence.Directory { return s.dir }

// chipOf maps a CPU index to its chip.
func (s *System) chipOf(cpuID int) *node { return s.nodes[cpuID/s.cores] }

// L2 returns the L2 of the chip hosting cpuID.
func (s *System) L2(cpuID int) *cache.Cache { return s.chipOf(cpuID).l2 }

// RACOf returns the RAC of the chip hosting cpuID (nil without one).
func (s *System) RACOf(cpuID int) *rac.RAC { return s.chipOf(cpuID).rc }

// L1I returns cpuID's instruction cache (tests, invariant checks).
func (s *System) L1I(cpuID int) *cache.Cache {
	return s.chipOf(cpuID).cores[cpuID%s.cores].l1i
}

// L1D returns cpuID's data cache (tests, invariant checks).
func (s *System) L1D(cpuID int) *cache.Cache {
	return s.chipOf(cpuID).cores[cpuID%s.cores].l1d
}

// Model returns cpuID's timing model.
func (s *System) Model(cpuID int) cpu.Model {
	return s.chipOf(cpuID).cores[cpuID%s.cores].model
}

// Classifier returns the miss classifier (nil unless cfg.Classify).
func (s *System) Classifier() *cache.Classifier { return s.classifier }

// Latency returns the resolved latency table.
func (s *System) Latency() LatencyTable { return s.lat }

// Chips returns the chip count (== Processors unless CoresPerChip > 1).
func (s *System) Chips() int { return s.chips }

// Committed returns the workload's committed-transaction count — the
// protocol position the warmup/measure boundaries and the checkpoint
// quanta are defined in.
func (s *System) Committed() uint64 { return s.w.Committed() }

// Steps returns the total simulator steps executed by this System. The
// counter rides in the snapshot, so a run resumed from a checkpoint
// continues the count of the run that wrote it.
func (s *System) Steps() uint64 { return s.steps }

// SetFastForward enables or disables hit-run fast-forwarding (on by
// default). The fast path retires runs of guaranteed L1 hits in bulk with
// byte-identical results to per-reference stepping — the switch exists so
// tests can pin that equivalence and benchmarks can measure the slow path.
func (s *System) SetFastForward(on bool) { s.noFF = !on }

// FastForwarded returns how many references have been retired through the
// bulk guaranteed-hit path (serial runs plus sharded phase-B replays). It is
// a diagnostic for tests and profiling, not a statistic: the count feeds no
// RunResult and resets with neither ResetStats nor snapshots.
func (s *System) FastForwarded() uint64 { return s.ffSteps }

// Step advances the earliest CPU by one reference. It returns false when
// every CPU's workload is exhausted.
func (s *System) Step() bool {
	// The event queue keeps the earliest core at the heap root; selection is
	// O(1) and the post-step reorder is one sift-down over the live cores
	// only. The clock mirror keeps the ^0 done sentinel for snapshots and
	// contention bookkeeping, but done cores leave the heap entirely.
	if len(s.heap) == 0 {
		return false
	}
	idx := int(s.heap[0])
	co := s.allCores[idx]
	// Hit-run fast-forward: when the root core's next references are
	// guaranteed L1 hits it retires the whole run in one bulk dispatch
	// (fastforward.go). Falls through to per-reference stepping for
	// scheduler events, out-of-order cores, and workloads without a kernel
	// scheduler.
	if !s.noFF && co.inorder != nil && s.sched != nil {
		if s.fastForward(idx, co) > 0 {
			return true
		}
	}
	best := s.clocks[idx]
	var r memref.Ref
	var st kernel.Status
	var wake uint64
	if s.sched != nil {
		r, st, wake = s.sched.Next(co.cpuID, best)
	} else {
		r, st, wake = s.w.Next(co.cpuID, best)
	}
	switch st {
	case kernel.StatusDone:
		s.clocks[idx] = ^uint64(0)
		s.popRoot()
		return true
	case kernel.StatusIdle:
		if m := co.inorder; m != nil {
			m.AdvanceTo(wake)
			s.clocks[idx] = m.Now()
		} else {
			co.model.AdvanceTo(wake)
			s.clocks[idx] = co.model.Now()
		}
		s.siftDown(0)
		return true
	}
	lat, cat := s.access(co.chip, co, r)
	if m := co.inorder; m != nil {
		m.Account(r, lat, cat)
		s.clocks[idx] = m.Now()
	} else {
		co.model.Account(r, lat, cat)
		s.clocks[idx] = co.model.Now()
	}
	s.siftDown(0)
	s.steps++
	return true
}

// refBudgetPerTxn is the deadlock-guard allowance: how many steps each core
// may take per outstanding committed transaction before RunUntil declares
// the scheduler stuck. Measured OLTP shapes spend on the order of 10⁴
// references per transaction per busy core (plus idleRecheck-paced naps on
// waiting cores), so a two-million-step allowance is two orders of
// magnitude of headroom — far beyond any latency or contention sweep, yet
// tight enough that a genuinely wedged scheduler dies in milliseconds of
// wall time instead of minutes.
const refBudgetPerTxn = 2_000_000

// stepBound derives RunUntil's deadlock bound from the work remaining:
// outstanding transactions × per-transaction reference budget × core count,
// saturating instead of overflowing for absurd targets.
func (s *System) stepBound(target uint64) uint64 {
	remaining := uint64(1)
	if c := s.w.Committed(); target > c {
		remaining += target - c
	}
	procs := uint64(len(s.allCores))
	if remaining > ^uint64(0)/refBudgetPerTxn/procs {
		return ^uint64(0)
	}
	return remaining * refBudgetPerTxn * procs
}

// RunUntil steps the system until the workload has committed target
// transactions (or all CPUs are done). The stop condition is tested after
// every step, so the run halts at exactly the reference whose segment drain
// crossed the commit boundary — warmup never bleeds references into the
// measurement window, and a run chunked into several RunUntil calls (the
// checkpoint loop) lands on the same boundaries as an uninterrupted one. It
// panics if the simulation exceeds the stepBound-derived budget, which
// indicates a scheduling deadlock.
func (s *System) RunUntil(target uint64) {
	if s.shardable() {
		s.runUntilSharded(target)
		return
	}
	var guard uint64
	bound := s.stepBound(target)
	commits := s.commits
	for {
		if commits != nil {
			if *commits >= target {
				return
			}
		} else if s.w.Committed() >= target {
			return
		}
		if !s.Step() {
			return
		}
		guard++
		if guard > bound {
			s.deadlockPanic(guard, target)
		}
	}
}

// deadlockPanic reports a run that exceeded its derived step budget.
func (s *System) deadlockPanic(guard, target uint64) {
	msg := fmt.Sprintf("core: %d steps without reaching %d committed transactions; scheduler deadlock?", guard, target)
	if s.sched != nil {
		msg += "\n" + s.sched.DumpState()
	}
	panic(msg)
}

// ResetStats zeroes every statistic while preserving architectural state
// (cache contents, directory, workload position) — called at the end of
// warmup.
func (s *System) ResetStats() {
	for _, n := range s.nodes {
		for _, co := range n.cores {
			co.l1i.ResetStats()
			co.l1d.ResetStats()
			co.model.ResetStats()
		}
		n.l2.ResetStats()
		if n.rc != nil {
			n.rc.ResetStats()
		}
		n.miss = stats.MissTable{}
		n.stores, n.loads, n.ifetches = 0, 0, 0
		n.racHitI, n.racHitD = 0, 0
	}
	s.dir.ResetStats()
	s.writeInvalOps = 0
	if s.net != nil {
		s.net.ResetStats()
	}
	for _, mc := range s.mcs {
		mc.ResetStats()
	}
}

// Collect summarizes the stats accumulated since the last ResetStats.
func (s *System) Collect(name string, txns uint64) stats.RunResult {
	res := stats.RunResult{Name: name, Txns: txns}
	var l1iAcc, l1iMiss, l1dAcc, l1dMiss uint64
	for _, n := range s.nodes {
		for _, co := range n.cores {
			res.Breakdown.Add(co.model.Breakdown())
			l1iAcc += co.l1i.Accesses
			l1iMiss += co.l1i.Misses()
			l1dAcc += co.l1d.Accesses
			l1dMiss += co.l1d.Misses()
		}
		var racProbes, racHits uint64
		if n.rc != nil {
			racProbes, racHits = n.rc.Stats.Probes, n.rc.Stats.Hits
		}
		res.AddNode(&n.miss, n.stores, n.l2.Accesses, racProbes, racHits)
	}
	if l1iAcc > 0 {
		res.L1IMissRate = float64(l1iMiss) / float64(l1iAcc)
	}
	if l1dAcc > 0 {
		res.L1DMissRate = float64(l1dMiss) / float64(l1dAcc)
	}
	res.L1IAccesses = l1iAcc
	res.L1IMisses = l1iMiss
	res.L1DAccesses = l1dAcc
	res.L1DMisses = l1dMiss
	res.Invalidations = s.dir.Stats.Invalidations
	res.Writebacks = s.dir.Stats.Writebacks
	res.WriteInvalOps = s.writeInvalOps
	if nd := res.Breakdown.NonIdle(); nd > 0 {
		res.KernelFraction = float64(res.Breakdown.Kernel) / float64(nd)
		res.Utilization = float64(res.Breakdown.Busy) / float64(nd)
	}
	res.IdleCycles = res.Breakdown.Idle
	return res
}

// Run executes the standard experiment protocol: warm up for warmupTxns
// committed transactions, reset statistics, measure for measureTxns more,
// and return the result.
func (s *System) Run(warmupTxns, measureTxns uint64) stats.RunResult {
	s.RunUntil(warmupTxns)
	return s.RunMeasured(measureTxns)
}

// access walks one reference through the memory hierarchy, mutating cache
// and directory state, and returns the stall latency and its category.
func (s *System) access(n *node, co *coreCtx, r memref.Ref) (uint32, cpu.StallCat) {
	line := r.Line()
	ifetch := r.Kind == memref.IFetch
	write := r.Kind == memref.Store

	switch r.Kind {
	case memref.IFetch:
		n.ifetches++
	case memref.Load:
		n.loads++
	case memref.Store:
		n.stores++
	}

	// L1.
	l1 := co.l1d
	if ifetch {
		l1 = co.l1i
	}
	st1 := l1.Access(line)
	if st1 != cache.Invalid {
		if !write {
			return 0, cpu.CatNone
		}
		switch st1 {
		case cache.Modified:
			return 0, cpu.CatNone
		case cache.Exclusive:
			// Silent E->M upgrade; keep the L2 state in sync so evictions
			// and interventions see the dirtiness.
			l1.SetState(line, cache.Modified)
			n.l2.SetState(line, cache.Modified)
			return 0, cpu.CatNone
		}
		// Shared in L1: fall through to the L2 permission path.
	}
	return s.accessBeyondL1(n, co, l1, line, ifetch, write)
}

// accessBeyondL1 continues a reference that did not retire in the L1: the L2
// permission path, victim buffer, RAC, and directory transaction. The caller
// has already performed the L1 lookup (whose result beyond hit/miss the
// lower levels never need) and counted the reference in the node's kind
// counters. Split out of access so the fast-forward path (fastforward.go)
// can finish a run-ending reference without repeating the L1 lookup.
func (s *System) accessBeyondL1(n *node, co *coreCtx, l1 *cache.Cache, line uint64, ifetch, write bool) (uint32, cpu.StallCat) {
	// L2 (shared by the chip's cores).
	st2 := n.l2.Access(line)
	if s.classifier != nil {
		s.classifier.Observe(line, st2 != cache.Invalid)
	}
	if st2 != cache.Invalid {
		if !write {
			st := l1FillState(st2, ifetch)
			if s.siblingShare(n, co, line) {
				// Another core on this chip holds a copy: fill read-only so
				// the single-writer invariant holds within the chip.
				st = cache.Shared
			}
			s.fillL1(n, l1, line, st)
			return s.lat.L2Hit, cpu.CatL2Hit
		}
		if st2 == cache.Exclusive || st2 == cache.Modified {
			s.siblingInvalidate(n, co, line)
			n.l2.SetState(line, cache.Modified)
			s.fillL1(n, l1, line, cache.Modified)
			return s.lat.L2Hit, cpu.CatL2Hit
		}
		// Shared in L2: upgrade through the directory.
		res := s.dir.Write(line, n.id)
		if res.Invalidations > 0 {
			s.writeInvalOps++
		}
		n.miss.CountUpgrade(res.Cat)
		s.siblingInvalidate(n, co, line)
		n.l2.SetState(line, cache.Modified)
		s.fillL1(n, l1, line, cache.Modified)
		return s.latFor(res.Cat), s.stallFor(res.Cat)
	}

	// L2 miss: victim buffer (if configured).
	if vst, ok := n.vb.Take(line); ok {
		if write && vst == cache.Shared {
			res := s.dir.Write(line, n.id)
			if res.Invalidations > 0 {
				s.writeInvalOps++
			}
			n.miss.CountUpgrade(res.Cat)
			s.insertL2(n, line, cache.Modified)
			s.fillL1(n, l1, line, cache.Modified)
			return s.latFor(res.Cat), s.stallFor(res.Cat)
		}
		if write {
			vst = cache.Modified
		}
		s.insertL2(n, line, vst)
		s.fillL1(n, l1, line, l1FillState(vst, ifetch))
		return s.lat.L2Hit, cpu.CatL2Hit
	}

	// L2 miss: own RAC (remote lines only).
	if n.rc != nil && s.dir.Home(line) != n.id {
		if rst, ok := n.rc.Take(line); ok {
			s.dir.MoveToL2(line, n.id)
			if write && rst == cache.Shared {
				// Data was local in the RAC but write permission still needs
				// the directory round trip.
				res := s.dir.Write(line, n.id)
				if res.Invalidations > 0 {
					s.writeInvalOps++
				}
				n.miss.CountUpgrade(res.Cat)
				s.insertL2(n, line, cache.Modified)
				s.fillL1(n, l1, line, cache.Modified)
				return s.latFor(res.Cat), s.stallFor(res.Cat)
			}
			st := rst
			if write {
				st = cache.Modified
			}
			s.insertL2(n, line, st)
			s.fillL1(n, l1, line, l1FillState(st, ifetch))
			// A RAC hit is a miss satisfied locally (paper Fig. 11 counts
			// these as local misses).
			n.miss.Count(ifetch, coherence.CatLocal)
			n.miss.CountRACHit(ifetch)
			if ifetch {
				n.racHitI++
			} else {
				n.racHitD++
			}
			return s.contended(s.lat.RACHit, n.id, n.id, line), cpu.CatLocal
		}
	}

	// Directory transaction.
	var res coherence.Result
	if write {
		res = s.dir.Write(line, n.id)
		if res.Invalidations > 0 {
			s.writeInvalOps++
		}
	} else {
		res = s.dir.Read(line, n.id)
	}
	s.insertL2(n, line, res.Grant)
	s.fillL1(n, l1, line, l1FillState(res.Grant, ifetch))
	n.miss.Count(ifetch, res.Cat)
	return s.contended(s.latFor(res.Cat), n.id, s.dir.Home(line), line), s.stallFor(res.Cat)
}

// siblingShare demotes other cores' exclusive L1 copies of line when a core
// reads through the shared L2 (single-writer invariant within the chip) and
// reports whether any sibling holds a copy.
func (s *System) siblingShare(n *node, co *coreCtx, line uint64) bool {
	if len(n.cores) == 1 {
		return false
	}
	held := false
	for _, other := range n.cores {
		if other == co {
			continue
		}
		switch other.l1d.Probe(line) {
		case cache.Modified:
			// Dirty data merges into the shared L2.
			n.l2.SetState(line, cache.Modified)
			other.l1d.SetState(line, cache.Shared)
			held = true
		case cache.Exclusive:
			other.l1d.SetState(line, cache.Shared)
			held = true
		case cache.Shared:
			held = true
		}
	}
	return held
}

// siblingInvalidate removes other cores' L1 copies when a core writes.
func (s *System) siblingInvalidate(n *node, co *coreCtx, line uint64) {
	if len(n.cores) == 1 {
		return
	}
	for _, other := range n.cores {
		if other == co {
			continue
		}
		other.l1d.Invalidate(line)
		other.l1i.Invalidate(line)
	}
}

// contended adds queuing delay from the contention layer, when enabled.
func (s *System) contended(base uint32, requester, home int, line uint64) uint32 {
	if s.mcs == nil {
		return base
	}
	// Read the model, not the clock mirror: the mirror holds the done
	// sentinel once a core's workload is exhausted.
	at := s.nodes[requester].cores[0].model.Now()
	extra := s.mcs[home].Access(line, at)
	if s.net != nil && requester != home {
		_, q := s.net.Send(requester, home, at)
		extra += q
	}
	return base + extra
}

// insertL2 installs line in chip n's L2 and unwinds the eviction cascade:
// inclusion back-invalidation of every core's L1s, victim buffer staging,
// RAC insertion for remote victims, and directory writebacks/hints.
func (s *System) insertL2(n *node, line uint64, st cache.State) {
	victim, vst := n.l2.Insert(line, st)
	if vst == cache.Invalid {
		return
	}
	// Inclusion: pull the line out of all the chip's L1s; a dirty L1 copy
	// makes the victim dirty regardless of the L2 state.
	for _, co := range n.cores {
		if d := co.l1d.Invalidate(victim); d == cache.Modified {
			vst = cache.Modified
		}
		co.l1i.Invalidate(victim)
	}

	// Victim buffer stage (identity pass-through when disabled).
	victim, vst = n.vb.Put(victim, vst)
	if vst == cache.Invalid {
		return
	}
	s.retire(n, victim, vst)
}

// retire finally disposes of an evicted line: into the RAC if it is remote
// and a RAC exists, otherwise back to its home directory.
func (s *System) retire(n *node, line uint64, st cache.State) {
	if n.rc != nil && s.dir.Home(line) != n.id {
		rvict, rvst := n.rc.Insert(line, st)
		s.dir.MoveToRAC(line, n.id)
		if rvst != cache.Invalid {
			s.dispose(n, rvict, rvst)
		}
		return
	}
	s.dispose(n, line, st)
}

// dispose notifies the directory that chip n dropped line.
func (s *System) dispose(n *node, line uint64, st cache.State) {
	if st == cache.Modified {
		s.dir.WritebackDirty(line, n.id)
		return
	}
	s.dir.EvictClean(line, n.id)
}

// fillL1 installs a line into one of n's L1s, folding a dirty L1 victim back
// into the L2 (which must hold it, by inclusion).
func (s *System) fillL1(n *node, l1 *cache.Cache, line uint64, st cache.State) {
	victim, vst := l1.Insert(line, st)
	if vst == cache.Modified {
		// Write the dirty L1 victim through to the L2 copy.
		if !n.l2.SetState(victim, cache.Modified) {
			// The L2 lost the line without back-invalidating: inclusion bug.
			panic(fmt.Sprintf("core: L1 dirty victim %#x absent from L2", victim))
		}
	}
}

// l1FillState maps the L2/grant state to the L1 fill state. Instruction
// lines are always read-only.
func l1FillState(st cache.State, ifetch bool) cache.State {
	if ifetch {
		return cache.Shared
	}
	switch st {
	case cache.Modified:
		return cache.Modified
	case cache.Exclusive:
		return cache.Exclusive
	default:
		return cache.Shared
	}
}

// latFor maps a directory category to its latency via the precomputed table
// (an out-of-range category panics on the bounds check, as the old switch
// did on its default arm).
func (s *System) latFor(cat coherence.Category) uint32 { return s.latByCat[cat] }

// stallFor maps a directory category to its breakdown bucket.
func (s *System) stallFor(cat coherence.Category) cpu.StallCat { return s.stallByCat[cat] }

// peers adapts System to the directory's Peers interface (node == chip).
type peers System

// InvalidatePeer implements coherence.Peers.
func (p *peers) InvalidatePeer(nodeID int, line uint64) bool {
	n := p.nodes[nodeID]
	dirty := false
	for _, co := range n.cores {
		if co.l1d.Invalidate(line) == cache.Modified {
			dirty = true
		}
		co.l1i.Invalidate(line)
	}
	if n.l2.Invalidate(line) == cache.Modified {
		dirty = true
	}
	if n.vb.Invalidate(line) == cache.Modified {
		dirty = true
	}
	if n.rc != nil && n.rc.Invalidate(line) == cache.Modified {
		dirty = true
	}
	return dirty
}

// DowngradePeer implements coherence.Peers.
func (p *peers) DowngradePeer(nodeID int, line uint64) bool {
	n := p.nodes[nodeID]
	dirty := false
	for _, co := range n.cores {
		if st := co.l1d.Probe(line); st == cache.Modified || st == cache.Exclusive {
			if st == cache.Modified {
				dirty = true
			}
			co.l1d.SetState(line, cache.Shared)
		}
	}
	if st := n.l2.Probe(line); st == cache.Modified || st == cache.Exclusive {
		if st == cache.Modified {
			dirty = true
		}
		n.l2.SetState(line, cache.Shared)
	}
	if st := n.vb.Downgrade(line); st == cache.Modified {
		dirty = true
	}
	if n.rc != nil {
		if st := n.rc.Probe(line); st == cache.Modified {
			dirty = true
		}
		n.rc.Downgrade(line)
	}
	return dirty
}
