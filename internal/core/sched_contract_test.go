package core

import (
	"math/rand"
	"testing"

	"oltpsim/internal/kernel"
	"oltpsim/internal/memref"
)

// The tests in this file pin the scheduling contract Step must preserve no
// matter how the earliest-core selection is implemented:
//
//  1. the core with the lowest clock is served next;
//  2. equal clocks tie-break to the lowest CPU ID;
//  3. a core that keeps its clock (zero-latency work, or an idle nap that
//     does not advance time) is re-served before any equal-clock peer with a
//     higher ID;
//  4. a core that returned StatusDone is never asked for work again;
//  5. Step returns false exactly when every core is done.
//
// They drive Step through a scripted workload that records the order of Next
// calls, so any reordering — however byte-compatible it might look in
// aggregate statistics — fails loudly.

// orderAct is one scripted response from orderSource.
type orderAct struct {
	st   kernel.Status
	wake uint64 // StatusIdle wake time
}

// orderEvent records one Next call as observed by the workload.
type orderEvent struct {
	cpu int
	now uint64
}

// orderSource is a Workload that replays a fixed per-CPU script of idle naps
// and records every Next call. CPUs whose scripts are exhausted report
// StatusDone.
type orderSource struct {
	acts  [][]orderAct
	pos   []int
	calls []orderEvent
}

func newOrderSource(cpus int) *orderSource {
	return &orderSource{acts: make([][]orderAct, cpus), pos: make([]int, cpus)}
}

func (s *orderSource) idle(cpu int, wake uint64) {
	s.acts[cpu] = append(s.acts[cpu], orderAct{st: kernel.StatusIdle, wake: wake})
}

func (s *orderSource) Next(cpu int, now uint64) (memref.Ref, kernel.Status, uint64) {
	s.calls = append(s.calls, orderEvent{cpu: cpu, now: now})
	if s.pos[cpu] >= len(s.acts[cpu]) {
		return memref.Ref{}, kernel.StatusDone, 0
	}
	a := s.acts[cpu][s.pos[cpu]]
	s.pos[cpu]++
	return memref.Ref{}, a.st, a.wake
}

func (s *orderSource) HomeOf(line uint64) int { return 0 }
func (s *orderSource) Committed() uint64      { return 0 }

func checkCallOrder(t *testing.T, sys *System, src *orderSource, want []orderEvent) {
	t.Helper()
	steps := 0
	for sys.Step() {
		steps++
		if steps > 10*len(want) {
			t.Fatalf("runaway: %d steps for %d expected calls", steps, len(want))
		}
	}
	if len(src.calls) != len(want) {
		t.Fatalf("Next called %d times, want %d\ngot:  %v\nwant: %v",
			len(src.calls), len(want), src.calls, want)
	}
	for i := range want {
		if src.calls[i] != want[i] {
			t.Fatalf("call %d = {cpu %d, now %d}, want {cpu %d, now %d}\nfull order: %v",
				i, src.calls[i].cpu, src.calls[i].now, want[i].cpu, want[i].now, src.calls)
		}
	}
	if sys.Step() {
		t.Fatal("Step returned true after every core reported done")
	}
}

// TestStepTieBreakLowestCPU: equal clocks are served in ascending CPU-ID
// order, at time zero and again after the cores advance in lockstep; once the
// clocks diverge, strict earliest-first order takes over.
func TestStepTieBreakLowestCPU(t *testing.T) {
	src := newOrderSource(3)
	// Round 1: all cores tie at 0, each naps to 100.
	for cpu := 0; cpu < 3; cpu++ {
		src.idle(cpu, 100)
	}
	// Round 2: three-way tie at 100; the naps stagger the clocks so round 3
	// must run in wake order 1, 0, 2 — not ID order.
	src.idle(0, 250)
	src.idle(1, 200)
	src.idle(2, 300)

	sys := MustNewSystem(smallCfg(3), src)
	checkCallOrder(t, sys, src, []orderEvent{
		{0, 0}, {1, 0}, {2, 0},
		{0, 100}, {1, 100}, {2, 100},
		{1, 200}, {0, 250}, {2, 300},
	})
}

// TestStepZeroAdvanceKeepsCore: a core whose clock does not move (an idle nap
// at or before now) stays the earliest under the lowest-ID tie-break and is
// re-served immediately; equal-clock peers wait until it advances.
func TestStepZeroAdvanceKeepsCore(t *testing.T) {
	src := newOrderSource(2)
	// CPU 0 naps twice to its own current time (AdvanceTo is a no-op), then
	// advances past CPU 1.
	src.idle(0, 0)
	src.idle(0, 0)
	src.idle(0, 100)
	src.idle(1, 50)

	sys := MustNewSystem(smallCfg(2), src)
	checkCallOrder(t, sys, src, []orderEvent{
		{0, 0}, {0, 0}, {0, 0},
		{1, 0}, {1, 50}, {0, 100},
	})
}

// TestStepDoneCoreNeverSelected: once a CPU reports StatusDone it must never
// be offered another step, even while live cores keep ticking past it, and
// Step keeps returning true for the survivors.
func TestStepDoneCoreNeverSelected(t *testing.T) {
	src := newOrderSource(3)
	// CPU 1 dies on its first call (empty script). CPUs 0 and 2 keep running
	// long past that point.
	src.idle(0, 10)
	src.idle(0, 20)
	src.idle(0, 30)
	src.idle(2, 15)
	src.idle(2, 25)

	sys := MustNewSystem(smallCfg(3), src)
	checkCallOrder(t, sys, src, []orderEvent{
		{0, 0}, {1, 0}, {2, 0},
		{0, 10}, {2, 15}, {0, 20},
		// The survivors' final calls find exhausted scripts and report done
		// in earliest-clock order; CPU 1 is never called again.
		{2, 25}, {0, 30},
	})
	calls1 := 0
	for _, c := range src.calls {
		if c.cpu == 1 {
			calls1++
		}
	}
	if calls1 != 1 {
		t.Fatalf("done CPU 1 was called %d times, want exactly 1", calls1)
	}
}

// TestStepOrderMatchesLinearScanReference cross-checks the event queue
// against a straight transliteration of the contract it must preserve: a
// linear scan picking the lowest (clock, CPU ID) live core, with idle naps
// advancing the clock to max(now, wake) and exhausted scripts removing the
// core. Randomized scripts (fixed seeds) hammer ties, zero-advance naps, and
// staggered deaths far beyond what the hand-written cases cover.
func TestStepOrderMatchesLinearScanReference(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	for trial := 0; trial < 50; trial++ {
		cpus := 2 + rng.Intn(7)
		src := newOrderSource(cpus)
		for cpu := 0; cpu < cpus; cpu++ {
			steps := 1 + rng.Intn(40)
			for k := 0; k < steps; k++ {
				// Wakes from a small absolute range so clocks collide often;
				// wakes in the past exercise the zero-advance re-serve path.
				src.idle(cpu, uint64(rng.Intn(60)))
			}
		}

		// Reference simulation over a copy of the scripts.
		clock := make([]uint64, cpus)
		done := make([]bool, cpus)
		ppos := make([]int, cpus)
		var want []orderEvent
		for {
			idx := -1
			best := ^uint64(0)
			for i := 0; i < cpus; i++ {
				if !done[i] && clock[i] < best {
					idx, best = i, clock[i]
				}
			}
			if idx < 0 {
				break
			}
			want = append(want, orderEvent{cpu: idx, now: best})
			if ppos[idx] >= len(src.acts[idx]) {
				done[idx] = true
				continue
			}
			if w := src.acts[idx][ppos[idx]].wake; w > clock[idx] {
				clock[idx] = w
			}
			ppos[idx]++
		}

		sys := MustNewSystem(smallCfg(cpus), src)
		checkCallOrder(t, sys, src, want)
	}
}
