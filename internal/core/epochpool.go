package core

// This file holds the epoch engine's persistent worker pool. The original
// sharded engine spawned fresh goroutines (plus a sync.WaitGroup and a
// closure per worker) for every phase of every epoch; with epochs a few
// hundred references long that spawn/join overhead was a measurable slice of
// the sharded run and the dominant source of its extra allocations. The pool
// replaces it with workers-1 long-lived goroutines created once per
// RunUntil: each worker owns a 1-buffered command channel carrying only the
// phase marker, the engine's per-epoch fields (live set, horizon, worker
// count) are published by the channel send's happens-before edge, and a
// shared done channel forms the rendezvous barrier. Closing the command
// channels retires the pool, so no goroutine outlives the run that started
// it.

// Phase markers carried on the pool's command channels.
const (
	phaseScan  = iota // phase A: read-only safe-prefix scans over e.live
	phaseServe        // phase B: serve validated references below e.horizon
)

// startPool spawns the engine's workers-1 persistent goroutines. The caller
// itself acts as slot 0, so a pool of n workers costs n-1 goroutines.
func (e *epochEngine) startPool() {
	if e.workers <= 1 || e.cmds != nil {
		return
	}
	e.cmds = make([]chan int, e.workers-1)
	e.done = make(chan struct{}, e.workers-1)
	for i := range e.cmds {
		ch := make(chan int, 1)
		e.cmds[i] = ch
		go e.worker(i+1, ch)
	}
}

// stopPool retires the pool's goroutines. Safe to call when no pool is
// running; after it returns the engine can start a fresh pool.
func (e *epochEngine) stopPool() {
	for _, ch := range e.cmds {
		close(ch)
	}
	e.cmds = nil
	e.done = nil
}

// worker is the persistent loop of pool slot > 0: run the signaled phase,
// then rendezvous on the done channel.
func (e *epochEngine) worker(slot int, ch chan int) {
	for ph := range ch {
		e.runWorker(ph, slot)
		e.done <- struct{}{}
	}
}

// dispatch runs one phase across nw slots — slots 1..nw-1 on pool workers,
// slot 0 on the calling goroutine — and returns once every slot finished
// (the epoch barrier). The per-epoch inputs (e.live, e.nw, e.horizon) must
// be written before dispatch; the command sends publish them to the workers
// and the done receives publish the workers' results (e.stop, e.delta) back.
func (e *epochEngine) dispatch(phase, nw int) {
	for i := 1; i < nw; i++ {
		e.cmds[i-1] <- phase
	}
	e.runWorker(phase, 0)
	for i := 1; i < nw; i++ {
		<-e.done
	}
}

// runWorker executes slot's share of the current phase. Work splits into
// contiguous chunks by slot index: phase A partitions the live-core
// snapshot, phase B partitions chips (so every worker touches disjoint
// per-core and per-chip state, which is what makes the phases race-free).
func (e *epochEngine) runWorker(phase, slot int) {
	switch phase {
	case phaseScan:
		chunk := (len(e.live) + e.nw - 1) / e.nw
		lo := slot * chunk
		hi := lo + chunk
		if hi > len(e.live) {
			hi = len(e.live)
		}
		for _, idx := range e.live[lo:hi] {
			e.stop[idx] = e.s.scanSafePrefix(int(idx))
		}
	case phaseServe:
		s := e.s
		nchips := len(s.nodes)
		chunk := (nchips + e.nw - 1) / e.nw
		lo := slot * chunk
		hi := lo + chunk
		if hi > nchips {
			hi = nchips
		}
		var n uint64
		for ci := lo; ci < hi; ci++ {
			for _, co := range s.nodes[ci].cores {
				// allCores is laid out in CPU-ID order, so cpuID doubles
				// as the clock index; done cores sit at the ^0 sentinel
				// and skip naturally.
				if s.clocks[co.cpuID] < e.horizon {
					n += s.serveValidated(co, e.horizon)
				}
			}
		}
		e.delta[slot] = n
	}
}
