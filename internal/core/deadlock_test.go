package core

import (
	"strings"
	"testing"

	"oltpsim/internal/kernel"
	"oltpsim/internal/memref"
)

// stuckWorkload naps forever without ever committing a transaction: the
// shape of a scheduler deadlock (every process blocked, nobody to wake
// them) as seen from the stepping loop.
type stuckWorkload struct{}

func (stuckWorkload) Next(cpu int, now uint64) (memref.Ref, kernel.Status, uint64) {
	return memref.Ref{}, kernel.StatusIdle, now + 2048
}

func (stuckWorkload) HomeOf(uint64) int { return 0 }
func (stuckWorkload) Committed() uint64 { return 0 }

// TestRunUntilPanicsOnStuckScheduler proves the deadlock guard actually
// fires: a workload that idles forever must trip the derived step bound
// instead of spinning until the heat death of the test runner.
func TestRunUntilPanicsOnStuckScheduler(t *testing.T) {
	sys := MustNewSystem(smallCfg(1), stuckWorkload{})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("RunUntil returned instead of panicking on a stuck scheduler")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "scheduler deadlock") {
			t.Fatalf("panic = %v, want a scheduler-deadlock message", r)
		}
	}()
	sys.RunUntil(1)
}

// TestStepBoundScalesWithWork pins the shape of the derived bound:
// proportional to outstanding transactions and core count, saturating
// rather than overflowing for absurd targets, and never zero (so the loop
// always gets at least a budget of steps before the guard trips).
func TestStepBoundScalesWithWork(t *testing.T) {
	sys1 := MustNewSystem(smallCfg(1), stuckWorkload{})
	sys4 := MustNewSystem(smallCfg(4), stuckWorkload{})

	b1 := sys1.stepBound(1)
	if want := uint64(2) * refBudgetPerTxn; b1 != want {
		t.Fatalf("stepBound(1 txn, 1 cpu) = %d, want %d", b1, want)
	}
	b4 := sys4.stepBound(10)
	if want := uint64(11) * refBudgetPerTxn * 4; b4 != want {
		t.Fatalf("stepBound(10 txns, 4 cpus) = %d, want %d", b4, want)
	}
	// A target at or below the committed count still leaves a one-transaction
	// budget for the loop's own bookkeeping.
	if b0 := sys1.stepBound(0); b0 != refBudgetPerTxn {
		t.Fatalf("stepBound(0) = %d, want %d", b0, refBudgetPerTxn)
	}
	if sat := sys4.stepBound(^uint64(0) / 2); sat != ^uint64(0) {
		t.Fatalf("stepBound(huge) = %d, want saturation at max uint64", sat)
	}
}
