package core

import "testing"

// TestFigureThreeValues pins the latency model to the paper's Figure 3.
func TestFigureThreeValues(t *testing.T) {
	cases := []struct {
		name  string
		lvl   IntegrationLevel
		assoc int
		tech  L2Tech
		want  LatencyTable
	}{
		{"conservative", ConservativeBase, 4, OffChipSRAM,
			LatencyTable{L2Hit: 30, Local: 150, Remote: 225, RemoteDirty: 325, RemoteDirtyRAC: 375, RACHit: 150}},
		{"base-1way", Base, 1, OffChipSRAM,
			LatencyTable{L2Hit: 25, Local: 100, Remote: 175, RemoteDirty: 275, RemoteDirtyRAC: 325, RACHit: 100}},
		{"base-nway", Base, 4, OffChipSRAM,
			LatencyTable{L2Hit: 30, Local: 100, Remote: 175, RemoteDirty: 275, RemoteDirtyRAC: 325, RACHit: 100}},
		{"l2-sram", IntegratedL2, 8, OnChipSRAM,
			LatencyTable{L2Hit: 15, Local: 100, Remote: 175, RemoteDirty: 275, RemoteDirtyRAC: 325, RACHit: 100}},
		{"l2-dram", IntegratedL2, 8, OnChipDRAM,
			LatencyTable{L2Hit: 25, Local: 100, Remote: 175, RemoteDirty: 275, RemoteDirtyRAC: 325, RACHit: 100}},
		{"l2mc", IntegratedL2MC, 8, OnChipSRAM,
			LatencyTable{L2Hit: 15, Local: 75, Remote: 225, RemoteDirty: 275, RemoteDirtyRAC: 325, RACHit: 75}},
		{"full", FullIntegration, 8, OnChipSRAM,
			LatencyTable{L2Hit: 15, Local: 75, Remote: 150, RemoteDirty: 200, RemoteDirtyRAC: 250, RACHit: 75}},
	}
	for _, c := range cases {
		if got := Latencies(c.lvl, c.assoc, c.tech); got != c.want {
			t.Errorf("%s: got %+v, want %+v", c.name, got, c.want)
		}
	}
}

// TestPaperRatios checks the ratios the paper states in Section 2.3: full
// integration reduces L2 hit latency 1.67x, local 1.33x, remote 1.17x and
// dirty 1.38x relative to Base.
func TestPaperRatios(t *testing.T) {
	base := Latencies(Base, 1, OffChipSRAM)
	full := Latencies(FullIntegration, 8, OnChipSRAM)
	check := func(name string, b, f uint32, want float64) {
		got := float64(b) / float64(f)
		if got < want-0.02 || got > want+0.02 {
			t.Errorf("%s ratio %.2f, want %.2f", name, got, want)
		}
	}
	check("L2 hit", base.L2Hit, full.L2Hit, 1.67)
	check("local", base.Local, full.Local, 1.33)
	check("remote", base.Remote, full.Remote, 1.17)
	check("dirty", base.RemoteDirty, full.RemoteDirty, 1.38)
}

// TestSplitDesignAnomaly pins the Section 4 observation: integrating the MC
// without the CC makes 2-hop accesses slower than not integrating at all.
func TestSplitDesignAnomaly(t *testing.T) {
	base := Latencies(Base, 1, OffChipSRAM)
	split := Latencies(IntegratedL2MC, 8, OnChipSRAM)
	if split.Remote <= base.Remote {
		t.Fatalf("split remote %d not worse than base %d", split.Remote, base.Remote)
	}
	if split.Local >= base.Local {
		t.Fatal("split local not better than base")
	}
}

// TestCrossingModelMatchesFigureThree: the constructive derivation must
// reproduce the table for every configuration the paper lists.
func TestCrossingModelMatchesFigureThree(t *testing.T) {
	m := DefaultCrossingModel()
	for _, row := range []struct {
		lvl   IntegrationLevel
		assoc int
		tech  L2Tech
	}{
		{ConservativeBase, 4, OffChipSRAM},
		{Base, 1, OffChipSRAM},
		{Base, 4, OffChipSRAM},
		{IntegratedL2, 8, OnChipSRAM},
		{IntegratedL2, 8, OnChipDRAM},
		{IntegratedL2MC, 8, OnChipSRAM},
		{FullIntegration, 8, OnChipSRAM},
	} {
		want := Latencies(row.lvl, row.assoc, row.tech)
		if got := m.Derive(row.lvl, row.assoc, row.tech); got != want {
			t.Errorf("%v assoc=%d tech=%v: derive %+v, want %+v", row.lvl, row.assoc, row.tech, got, want)
		}
	}
}

func TestFigureThreePresentation(t *testing.T) {
	rows := FigureThree()
	if len(rows) != 7 {
		t.Fatalf("Figure 3 has %d rows, want 7", len(rows))
	}
	if rows[0].Label != "Conservative Base" || rows[6].Lat.RemoteDirty != 200 {
		t.Fatal("presentation order wrong")
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := BaseConfig(8, 8*MB, 1)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg.Processors = 0
	if err := cfg.Validate(); err == nil {
		t.Fatal("0 processors accepted")
	}
	cfg = BaseConfig(8, 8*MB, 1)
	cfg.L2SizeBytes = 1000
	if err := cfg.Validate(); err == nil {
		t.Fatal("bad L2 size accepted")
	}
	cfg = BaseConfig(8, 8*MB, 1)
	cfg.RAC = &RACConfig{SizeBytes: 100, Assoc: 3}
	if err := cfg.Validate(); err == nil {
		t.Fatal("bad RAC accepted")
	}
}

func TestLatencyOverride(t *testing.T) {
	cfg := BaseConfig(1, 8*MB, 1)
	lt := LatencyTable{L2Hit: 1, Local: 2, Remote: 3, RemoteDirty: 4}
	cfg.LatencyOverride = &lt
	if cfg.Latencies() != lt {
		t.Fatal("override ignored")
	}
}

func TestConfigNames(t *testing.T) {
	if BaseConfig(1, 8*MB, 1).Name != "Base 8M1w" {
		t.Fatalf("name %q", BaseConfig(1, 8*MB, 1).Name)
	}
	if IntegratedL2Config(1, 2*MB, 8, OnChipSRAM).Name != "L2 2M8w" {
		t.Fatal("integrated name wrong")
	}
	if got := FullConfig(8, 5*MB/4, 4).Name; got != "All 1.2M4w" && got != "All 1.25M4w" {
		t.Fatalf("fractional name %q", got)
	}
}

func TestStringers(t *testing.T) {
	if FullIntegration.String() != "L2+MC+CC/NR" || Base.String() != "base" {
		t.Fatal("level strings wrong")
	}
	if OnChipDRAM.String() != "on-chip DRAM" {
		t.Fatal("tech strings wrong")
	}
}
