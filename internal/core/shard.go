package core

import (
	"oltpsim/internal/cache"
	"oltpsim/internal/memref"
)

// This file implements deterministic intra-run parallelism: epoch-sharded
// stepping. The serial engine interleaves cores by (clock, CPU ID); sharding
// exploits the observation that a reference which is a guaranteed L1 hit
// touches only its own core's state (plus, for the silent Exclusive→Modified
// store upgrade, its own chip's L2 line), so runs of such references on
// different chips commute — executing them concurrently produces exactly the
// state and statistics of the serial interleaving.
//
// Each epoch has three parts:
//
//  1. Phase A (parallel, read-only): every live core scans its pending
//     references through kernel.Scheduler.Pending, classifying the prefix of
//     guaranteed L1 hits with non-mutating cache probes and projecting its
//     clock across them with the in-order timing rule (an instruction fetch
//     advances by its instruction count; a zero-latency data hit advances
//     nothing). The scan stops at the first reference that could miss, at a
//     possible preemption point (the exact mirror of the scheduler's slice
//     test), or at the segment end — every one of those events can mutate
//     shared state, and its projected time is the core's stop time.
//
//  2. Barrier, then phase B (parallel over chip shards): with the horizon H
//     = min over live cores of the stop time, every reference served
//     strictly before H lies inside some core's validated prefix, so each
//     shard replays its cores' references through serveHitRun — the same
//     bulk path the serial engine's fast-forward uses, with the strict
//     horizon bound (limID < 0) in place of the root tie-break. Guard
//     panics enforce that nothing leaves the validated prefix. Per-shard
//     step counts merge into the System counter at the barrier, and the
//     event queue is rebuilt from the advanced clocks.
//
//  3. A serial batch of ordinary heap steps retires the non-validated
//     events at the horizon — misses, directory transactions, segment
//     drains (where transaction commits live), context switches — with the
//     per-step commit-boundary check of the serial loop.
//
// Because commits only happen in the serial part, RunUntil still stops at
// exactly the committed-transaction boundary, and the executed reference
// sequence is the serial sequence — output is byte-identical with sharding
// on or off, for any worker count.

const (
	// maxEpochScan bounds phase A's per-core lookahead, keeping the
	// read-only scan proportional to what an epoch could plausibly retire.
	maxEpochScan = 4096
	// serialBatch is how many ordinary heap steps run between epochs to
	// clear the events blocking the horizon.
	serialBatch = 256
	// epochMinYield is the retired-reference count below which an epoch is
	// judged unproductive: a full epoch prices a safe-prefix scan of every
	// live core, so retiring only a handful of references costs more than
	// serving them serially would have.
	epochMinYield = 32
	// epochBackoffMax caps the adaptive pacing multiplier: after repeated
	// unproductive epochs up to epochBackoffMax serial batches run between
	// attempts, so a workload whose horizon never opens up degrades to
	// nearly pure serial stepping instead of paying for futile scans.
	epochBackoffMax = 64
)

// SetStepWorkers selects how many goroutines step the machine inside a
// single run. n <= 1 keeps the pure serial engine. Sharded stepping needs a
// direct scheduler (RefSource), in-order cores, and at least two chips;
// systems that don't qualify silently stay serial. Output is byte-identical
// for every value of n.
func (s *System) SetStepWorkers(n int) {
	s.stepWorkers = n
}

// shardable reports whether RunUntil may use the epoch-sharded engine.
func (s *System) shardable() bool {
	return s.stepWorkers >= 2 && s.sched != nil && !s.cfg.OutOfOrder && s.chips >= 2
}

// committedCount returns the workload's committed-transaction count through
// the fast path when available.
func (s *System) committedCount() uint64 {
	if s.commits != nil {
		return *s.commits
	}
	return s.w.Committed()
}

// epochEngine holds the reusable scratch state of the sharded stepping loop,
// including the persistent worker pool (epochpool.go).
type epochEngine struct {
	s       *System
	workers int
	stop    []uint64 // per-core projected time of the first non-validated event
	live    []int32  // scratch snapshot of the live-core heap
	delta   []uint64 // per-slot executed-reference counts

	// Pool state: slot 1..workers-1 command channels, the barrier channel,
	// and the per-epoch inputs the dispatching goroutine publishes to the
	// workers (see epochpool.go for the synchronization argument).
	cmds    []chan int
	done    chan struct{}
	nw      int    // worker count of the phase being dispatched
	horizon uint64 // phase B's serving bound
}

func (s *System) engine() *epochEngine {
	if s.eng == nil || s.eng.workers != s.stepWorkers {
		if s.eng != nil {
			s.eng.stopPool()
		}
		s.eng = &epochEngine{
			s:       s,
			workers: s.stepWorkers,
			stop:    make([]uint64, len(s.allCores)),
			live:    make([]int32, 0, len(s.allCores)),
			delta:   make([]uint64, s.stepWorkers),
		}
	}
	return s.eng
}

// runUntilSharded is RunUntil's epoch-sharded twin: identical stop condition
// and deadlock guard, with epochs interleaved between serial batches. Epoch
// pacing is adaptive: each unproductive epoch doubles the number of serial
// batches before the next attempt and a productive one resets the pace.
// Pacing decisions key only on retired-reference counts, which are
// worker-count-independent, so the executed schedule — and therefore every
// result — stays byte-identical for any worker count (pacing merely moves
// work between the epoch path and the serial path, which execute the same
// sequence).
func (s *System) runUntilSharded(target uint64) {
	e := s.engine()
	e.startPool()
	defer e.stopPool()
	var guard uint64
	bound := s.stepBound(target)
	pace := 1
	for {
		for b := 0; b < pace; b++ {
			for i := 0; i < serialBatch; i++ {
				if s.committedCount() >= target {
					return
				}
				if !s.Step() {
					return
				}
				guard++
			}
		}
		if s.committedCount() >= target {
			return
		}
		n := e.runEpoch()
		guard += n
		if n < epochMinYield {
			if pace < epochBackoffMax {
				pace *= 2
			}
		} else {
			pace = 1
		}
		if guard > bound {
			s.deadlockPanic(guard, target)
		}
	}
}

// runEpoch executes one epoch and returns how many references it retired (0
// when no core could safely run, in which case only the serial loop makes
// progress).
func (e *epochEngine) runEpoch() uint64 {
	s := e.s
	e.live = append(e.live[:0], s.heap...)
	if len(e.live) == 0 {
		return 0
	}
	e.phaseA()
	horizon := ^uint64(0)
	for _, idx := range e.live {
		if t := e.stop[idx]; t < horizon {
			horizon = t
		}
	}
	progress := false
	for _, idx := range e.live {
		if s.clocks[idx] < horizon {
			progress = true
			break
		}
	}
	if !progress {
		return 0
	}
	n := e.phaseB(horizon)
	s.rebuildHeap()
	return n
}

// phaseA fills e.stop for every live core: a parallel, read-only scan
// dispatched across the persistent pool.
func (e *epochEngine) phaseA() {
	nw := e.workers
	if nw > len(e.live) {
		nw = len(e.live)
	}
	if nw < 1 {
		nw = 1
	}
	e.nw = nw
	e.dispatch(phaseScan, nw)
}

// phaseB replays every validated reference below the horizon, one pool slot
// per contiguous shard of chips, and merges the per-slot step counts. The
// replay runs through serveHitRun, so phase B retires whole runs per
// scheduler lookahead exactly like the serial fast-forward; its counts land
// in the fast-forward diagnostic too, since these references were bulk-
// retired the same way.
func (e *epochEngine) phaseB(horizon uint64) uint64 {
	s := e.s
	nw := e.workers
	if nw > len(s.nodes) {
		nw = len(s.nodes)
	}
	if nw < 1 {
		nw = 1
	}
	e.nw = nw
	e.horizon = horizon
	e.dispatch(phaseServe, nw)
	var total uint64
	for i := 0; i < nw; i++ {
		total += e.delta[i]
		e.delta[i] = 0
	}
	s.steps += total
	s.ffSteps += total
	return total
}

// serveValidated serves one core's references while its clock stays below
// the horizon, whole hit-runs at a time. Phase A guarantees every reference
// below the horizon is a zero-latency L1 hit whose serve leaves all
// cross-chip state untouched; serveHitRun's sharded mode panics on any
// non-hit inside the bound, and the progress panic here covers the remaining
// way the reasoning could fail (a scheduler event — drain, refill, dispatch,
// preemption — surfacing before the horizon), turning either violation into
// an immediate loud failure instead of silent nondeterminism.
func (s *System) serveValidated(co *coreCtx, horizon uint64) uint64 {
	idx := co.cpuID
	m := co.inorder
	var n uint64
	for s.clocks[idx] < horizon {
		k := s.serveHitRun(co, horizon, -1, false)
		if k == 0 {
			panic("core: sharded step left the validated prefix (scheduler event)")
		}
		s.clocks[idx] = m.Now()
		n += k
	}
	return n
}

// scanSafePrefix projects core idx's clock across its longest pending run of
// guaranteed L1 hits and returns the projected time of the first event that
// could touch shared state: a possible miss, a possible preemption, or the
// end of the materialized segment (drains, refills, and dispatches all
// mutate the scheduler). Read-only.
func (s *System) scanSafePrefix(idx int) uint64 {
	co := s.allCores[idx]
	t := s.clocks[idx]
	pr := s.sched.Pending(co.cpuID)
	scanned := 0
	// Context-switch overhead is served unconditionally — no slice
	// accounting and no preemption test.
	for _, r := range pr.Switch {
		if scanned >= maxEpochScan || !s.l1Guaranteed(co, r) {
			return t
		}
		if r.Kind == memref.IFetch {
			t += uint64(r.Instrs)
		}
		scanned++
	}
	for k := range pr.Seg {
		if scanned >= maxEpochScan {
			return t
		}
		// Exact mirror of the scheduler's slice-expiry test at serve time t.
		if pr.SliceUsed+k >= pr.Quantum && pr.OtherWake <= t {
			return t
		}
		r := pr.Seg[k]
		if !s.l1Guaranteed(co, r) {
			return t
		}
		if r.Kind == memref.IFetch {
			t += uint64(r.Instrs)
		}
		scanned++
	}
	return t
}

// l1Guaranteed reports whether serving r now would certainly take the
// zero-latency L1-hit path of access: any resident state satisfies a fetch
// or load, while a store needs Modified or Exclusive (the silent upgrade) —
// a Shared store goes through the L2 and the directory. Probes only; no LRU
// or statistics updates.
func (s *System) l1Guaranteed(co *coreCtx, r memref.Ref) bool {
	line := r.Line()
	switch r.Kind {
	case memref.IFetch:
		return co.l1i.Probe(line) != cache.Invalid
	case memref.Load:
		return co.l1d.Probe(line) != cache.Invalid
	default:
		switch co.l1d.Probe(line) {
		case cache.Modified, cache.Exclusive:
			return true
		}
		return false
	}
}
