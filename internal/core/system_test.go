package core

import (
	"testing"

	"oltpsim/internal/cache"
	"oltpsim/internal/kernel"
	"oltpsim/internal/memref"
	"oltpsim/internal/oltp"
)

// scriptSource is a minimal Workload for protocol-level system tests: a
// fixed list of refs per CPU, all pages homed round-robin by line.
type scriptSource struct {
	refs  [][]memref.Ref
	pos   []int
	nodes int
}

func newScript(nodes int) *scriptSource {
	return &scriptSource{refs: make([][]memref.Ref, nodes), pos: make([]int, nodes), nodes: nodes}
}

func (s *scriptSource) add(cpu int, r memref.Ref) { s.refs[cpu] = append(s.refs[cpu], r) }

func (s *scriptSource) Next(cpu int, now uint64) (memref.Ref, kernel.Status, uint64) {
	if s.pos[cpu] >= len(s.refs[cpu]) {
		return memref.Ref{}, kernel.StatusDone, 0
	}
	r := s.refs[cpu][s.pos[cpu]]
	s.pos[cpu]++
	return r, kernel.StatusRef, 0
}

func (s *scriptSource) HomeOf(line uint64) int {
	return int(line>>memref.PageShift) % s.nodes
}

func (s *scriptSource) Committed() uint64 { return 0 }

func smallCfg(procs int) Config {
	cfg := BaseConfig(procs, 1*MB, 4)
	return cfg
}

func runScript(t *testing.T, cfg Config, src *scriptSource) *System {
	t.Helper()
	sys, err := NewSystem(cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	for sys.Step() {
	}
	return sys
}

func TestUniprocessorAllLocal(t *testing.T) {
	src := newScript(1)
	for i := 0; i < 1000; i++ {
		src.add(0, memref.Ref{Addr: uint64(i) * 64, Kind: memref.Load})
	}
	sys := runScript(t, smallCfg(1), src)
	res := sys.Collect("t", 1)
	if res.Miss.RemoteClean() != 0 || res.Miss.RemoteDirty() != 0 {
		t.Fatal("uniprocessor produced remote misses")
	}
	if res.Miss.Local() == 0 {
		t.Fatal("no local misses for cold data")
	}
	if res.Breakdown.Local == 0 {
		t.Fatal("no local stall time")
	}
}

func TestL2HitLatencyCharged(t *testing.T) {
	src := newScript(1)
	// Touch a line; then touch enough other lines to evict it from L1
	// (64KB 2-way = 512 sets) but not from the 1MB L2; then touch it again.
	src.add(0, memref.Ref{Addr: 0, Kind: memref.Load})
	for i := 1; i <= 2048; i++ {
		src.add(0, memref.Ref{Addr: uint64(i) * 64, Kind: memref.Load})
	}
	src.add(0, memref.Ref{Addr: 0, Kind: memref.Load})
	sys := runScript(t, smallCfg(1), src)
	if sys.Model(0).Breakdown().L2Hit == 0 {
		t.Fatal("no L2-hit stall recorded")
	}
}

func TestStoreMigratesOwnership(t *testing.T) {
	src := newScript(2)
	src.add(0, memref.Ref{Addr: 4096, Kind: memref.Store})
	src.add(1, memref.Ref{Addr: 4096, Kind: memref.Load})
	cfg := smallCfg(2)
	sys := runScript(t, cfg, src)
	// After CPU1's migratory read, it must own the line Modified.
	if st := sys.L2(1).Probe(4096); st != cache.Modified {
		t.Fatalf("reader L2 state %v, want Modified (migratory)", st)
	}
	if st := sys.L2(0).Probe(4096); st != cache.Invalid {
		t.Fatalf("writer L2 state %v, want Invalid", st)
	}
	res := sys.Collect("t", 1)
	if res.Miss.RemoteDirty() != 1 {
		t.Fatalf("remote dirty misses %d, want 1", res.Miss.RemoteDirty())
	}
}

func TestNoMigratoryDowngrades(t *testing.T) {
	src := newScript(2)
	src.add(0, memref.Ref{Addr: 4096, Kind: memref.Store})
	src.add(1, memref.Ref{Addr: 4096, Kind: memref.Load})
	cfg := smallCfg(2)
	cfg.NoMigratory = true
	sys := runScript(t, cfg, src)
	if st := sys.L2(1).Probe(4096); st != cache.Shared {
		t.Fatalf("reader L2 state %v, want Shared", st)
	}
	if st := sys.L2(0).Probe(4096); st != cache.Shared {
		t.Fatalf("writer L2 state %v, want Shared", st)
	}
}

func TestUpgradePath(t *testing.T) {
	src := newScript(2)
	cfg := smallCfg(2)
	cfg.NoMigratory = true
	// Both CPUs read (shared), then CPU0 writes: an upgrade with one
	// invalidation.
	src.add(0, memref.Ref{Addr: 4096, Kind: memref.Load})
	src.add(1, memref.Ref{Addr: 4096, Kind: memref.Load})
	src.add(0, memref.Ref{Addr: 4096, Kind: memref.Store})
	sys := runScript(t, cfg, src)
	res := sys.Collect("t", 1)
	if res.Miss.UpgradeTotal() != 1 {
		t.Fatalf("upgrades %d, want 1", res.Miss.UpgradeTotal())
	}
	if res.Invalidations != 1 {
		t.Fatalf("invalidations %d, want 1", res.Invalidations)
	}
	if sys.L2(1).Probe(4096) != cache.Invalid {
		t.Fatal("sharer not invalidated by upgrade")
	}
}

func TestInclusionBackInvalidation(t *testing.T) {
	// A tiny L2 forces evictions; the L1s must never hold a line the L2
	// lost.
	cfg := smallCfg(1)
	cfg.L2SizeBytes = 64 * KB // same size as L1: heavy inclusion pressure
	cfg.L2Assoc = 1
	src := newScript(1)
	for i := 0; i < 20_000; i++ {
		kind := memref.Load
		if i%3 == 0 {
			kind = memref.Store
		}
		src.add(0, memref.Ref{Addr: uint64((i*7919)%4096) * 64, Kind: kind})
	}
	sys := runScript(t, cfg, src)
	violations := 0
	check := func(l1 *cache.Cache) {
		l1.ForEachResident(func(line uint64, st cache.State) {
			if sys.L2(0).Probe(line) == cache.Invalid {
				violations++
			}
		})
	}
	check(sys.nodes[0].cores[0].l1d)
	check(sys.nodes[0].cores[0].l1i)
	if violations > 0 {
		t.Fatalf("%d L1 lines not present in L2 (inclusion broken)", violations)
	}
}

// TestCoherenceGlobalInvariant: after a random multiprocessor run, no line
// may be Modified/Exclusive in two places, and every Modified line must be
// owned by that node in the directory.
func TestCoherenceGlobalInvariant(t *testing.T) {
	const cpus = 4
	src := newScript(cpus)
	// Pseudo-random shared traffic over a small line pool.
	state := uint64(12345)
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(n))
	}
	for c := 0; c < cpus; c++ {
		for i := 0; i < 5000; i++ {
			kind := memref.Load
			if next(3) == 0 {
				kind = memref.Store
			}
			src.add(c, memref.Ref{Addr: uint64(next(256)) * 64, Kind: kind})
		}
	}
	sys := runScript(t, smallCfg(cpus), src)
	for line := uint64(0); line < 256*64; line += 64 {
		exclusive := -1
		for c := 0; c < cpus; c++ {
			st := sys.L2(c).Probe(line)
			if st == cache.Modified || st == cache.Exclusive {
				if exclusive >= 0 {
					t.Fatalf("line %#x exclusive at both %d and %d", line, exclusive, c)
				}
				exclusive = c
			}
		}
		if exclusive >= 0 {
			owner, _ := sys.Directory().OwnerOf(line)
			if owner != exclusive {
				t.Fatalf("line %#x exclusive at %d but directory owner %d", line, exclusive, owner)
			}
		}
	}
}

func TestRACRequiresMultiprocessor(t *testing.T) {
	cfg := smallCfg(1)
	cfg.RAC = &RACConfig{SizeBytes: 8 * MB, Assoc: 8}
	if _, err := NewSystem(cfg, newScript(1)); err == nil {
		t.Fatal("uniprocessor RAC accepted")
	}
}

func TestRACCapturesRemoteVictims(t *testing.T) {
	cfg := smallCfg(2)
	cfg.L2SizeBytes = 64 * KB // tiny L2, lots of victims
	cfg.L2Assoc = 1
	cfg.RAC = &RACConfig{SizeBytes: 1 * MB, Assoc: 8}
	src := newScript(2)
	// CPU0 streams over remote lines twice: the second pass hits the RAC.
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < 4096; i++ {
			src.add(0, memref.Ref{Addr: uint64(i) * 64, Kind: memref.Load})
		}
	}
	sys := runScript(t, cfg, src)
	rc := sys.RACOf(0)
	if rc.Stats.Inserts == 0 {
		t.Fatal("RAC received no victims")
	}
	if rc.Stats.Hits == 0 {
		t.Fatal("RAC never hit on re-reference")
	}
	res := sys.Collect("t", 1)
	if res.Miss.RACHitsD == 0 {
		t.Fatal("no misses recorded as locally satisfied by the RAC")
	}
}

func TestVictimBufferHits(t *testing.T) {
	cfg := smallCfg(1)
	cfg.L2SizeBytes = 64 * KB
	cfg.L2Assoc = 1
	cfg.VictimBuffers = 8
	src := newScript(1)
	// Conflict pair in a direct-mapped L2: alternate accesses; the victim
	// buffer catches the ping-pong.
	a, b := uint64(0), uint64(64*KB)
	for i := 0; i < 200; i++ {
		src.add(0, memref.Ref{Addr: a, Kind: memref.Load})
		src.add(0, memref.Ref{Addr: b, Kind: memref.Load})
	}
	sys := runScript(t, cfg, src)
	if sys.nodes[0].vb.Hits == 0 {
		t.Fatal("victim buffer never hit")
	}
}

func TestIdleAccounting(t *testing.T) {
	cfg := smallCfg(1)
	src := &idleSource{}
	sys := MustNewSystem(cfg, src)
	for sys.Step() {
	}
	if sys.Model(0).Breakdown().Idle == 0 {
		t.Fatal("idle cycles not recorded")
	}
}

// idleSource emits one ref, idles, then finishes.
type idleSource struct{ step int }

func (s *idleSource) Next(cpu int, now uint64) (memref.Ref, kernel.Status, uint64) {
	s.step++
	switch s.step {
	case 1:
		return memref.Ref{Addr: 64, Kind: memref.Load}, kernel.StatusRef, 0
	case 2:
		return memref.Ref{}, kernel.StatusIdle, now + 500
	case 3:
		return memref.Ref{Addr: 128, Kind: memref.Load}, kernel.StatusRef, 0
	default:
		return memref.Ref{}, kernel.StatusDone, 0
	}
}

func (s *idleSource) HomeOf(line uint64) int { return 0 }
func (s *idleSource) Committed() uint64      { return 0 }

func TestResetStatsKeepsArchState(t *testing.T) {
	src := newScript(1)
	for i := 0; i < 100; i++ {
		src.add(0, memref.Ref{Addr: uint64(i) * 64, Kind: memref.Load})
	}
	sys := runScript(t, smallCfg(1), src)
	occ := sys.L2(0).Occupancy()
	sys.ResetStats()
	if sys.L2(0).Occupancy() != occ {
		t.Fatal("cache contents lost on stats reset")
	}
	after := sys.Collect("t", 1)
	if after.Miss.Total() != 0 {
		t.Fatal("miss stats survive reset")
	}
}

// TestEndToEndSmall runs the real OLTP workload end to end on 2 CPUs and
// checks the result's internal consistency plus the database invariants.
func TestEndToEndSmall(t *testing.T) {
	p := oltp.TestParams(2)
	h := oltp.MustNewHarness(p)
	cfg := BaseConfig(2, 1*MB, 4)
	sys := MustNewSystem(cfg, h)
	res := sys.Run(20, 60)
	if res.Txns < 60 {
		t.Fatalf("measured %d txns", res.Txns)
	}
	if res.Breakdown.Busy == 0 || res.Breakdown.L2Hit == 0 {
		t.Fatalf("degenerate breakdown %+v", res.Breakdown)
	}
	if res.Miss.Total() == 0 {
		t.Fatal("no misses measured")
	}
	if res.KernelFraction <= 0 || res.KernelFraction >= 1 {
		t.Fatalf("kernel fraction %v", res.KernelFraction)
	}
	if err := h.Engine().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestEndToEndDeterminism: two identical systems produce identical results.
func TestEndToEndDeterminism(t *testing.T) {
	run := func() uint64 {
		h := oltp.MustNewHarness(oltp.TestParams(2))
		sys := MustNewSystem(BaseConfig(2, 1*MB, 4), h)
		res := sys.Run(10, 40)
		return res.Breakdown.NonIdle() + res.Miss.Total()*1_000_003
	}
	if run() != run() {
		t.Fatal("simulation is not deterministic")
	}
}
