package core

import (
	"fmt"
	"io"

	"oltpsim/internal/cpu"
	"oltpsim/internal/snapshot"
	"oltpsim/internal/stats"
)

// SnapshotState is implemented by workloads whose complete execution state
// can be saved and restored. The OLTP harness implements it; a workload that
// does not cannot be checkpointed.
type SnapshotState interface {
	SaveState(*snapshot.Encoder)
	LoadState(*snapshot.Decoder) error
}

// Fingerprint canonicalizes the configuration minus its display name: two
// configs with equal fingerprints build machines of identical shape, which is
// the precondition for restoring a snapshot. Pointer fields are dereferenced
// so the fingerprint depends on values, never addresses.
func (c Config) Fingerprint() string {
	flat := c
	flat.Name = ""
	flat.RAC = nil
	flat.LatencyOverride = nil
	rac := "nil"
	if c.RAC != nil {
		rac = fmt.Sprintf("%+v", *c.RAC)
	}
	lat := "nil"
	if c.LatencyOverride != nil {
		lat = fmt.Sprintf("%+v", *c.LatencyOverride)
	}
	return fmt.Sprintf("%+v rac=%s lat=%s", flat, rac, lat)
}

// Save writes the complete machine state — caches, directory, CPU models,
// contention layer, counters, and the workload — as one versioned snapshot.
// A system with a miss classifier cannot be saved (the classifier's
// unbounded line-history table is diagnostic, not architectural).
func (s *System) Save(out io.Writer) error {
	if s.classifier != nil {
		return fmt.Errorf("core: a system with Classify enabled cannot be snapshotted")
	}
	ws, ok := s.w.(SnapshotState)
	if !ok {
		return fmt.Errorf("core: workload %T does not support snapshots", s.w)
	}
	w := snapshot.NewWriter()
	w.Section("config").String(s.cfg.Fingerprint())

	e := w.Section("machine")
	e.U64s(s.clocks)
	e.U64(s.writeInvalOps)
	e.U64(s.steps)
	for _, n := range s.nodes {
		for _, co := range n.cores {
			co.l1i.SaveState(e)
			co.l1d.SaveState(e)
			if co.inorder != nil {
				co.inorder.SaveState(e)
			} else {
				co.model.(*cpu.OOO).SaveState(e)
			}
		}
		n.l2.SaveState(e)
		n.vb.SaveState(e)
		if n.rc != nil {
			n.rc.SaveState(e)
		}
		n.miss.SaveState(e)
		e.U64(n.stores)
		e.U64(n.loads)
		e.U64(n.ifetches)
		e.U64(n.racHitI)
		e.U64(n.racHitD)
	}

	s.dir.SaveState(w.Section("directory"))

	if s.net != nil || s.mcs != nil {
		e := w.Section("contention")
		s.net.SaveState(e)
		for _, mc := range s.mcs {
			mc.SaveState(e)
		}
	}

	ws.SaveState(w.Section("workload"))
	return w.Emit(out)
}

// Load restores a snapshot into a system built from the identical
// configuration and workload parameters. On error the system is left in an
// unspecified partially-restored state and must be discarded.
func (s *System) Load(in io.Reader) error {
	if s.classifier != nil {
		return fmt.Errorf("core: a system with Classify enabled cannot restore a snapshot")
	}
	ws, ok := s.w.(SnapshotState)
	if !ok {
		return fmt.Errorf("core: workload %T does not support snapshots", s.w)
	}
	r, err := snapshot.NewReader(in)
	if err != nil {
		return err
	}

	d, err := r.Section("config")
	if err != nil {
		return err
	}
	if fp := d.String(); d.Err() == nil && fp != s.cfg.Fingerprint() {
		return fmt.Errorf("core: snapshot was taken on a different machine configuration")
	}
	if err := d.Finish(); err != nil {
		return err
	}

	d, err = r.Section("machine")
	if err != nil {
		return err
	}
	clocks := d.U64s()
	writeInvalOps := d.U64()
	steps := d.U64()
	if err := d.Err(); err != nil {
		return err
	}
	if len(clocks) != len(s.clocks) {
		return fmt.Errorf("core: snapshot has %d CPU clocks, want %d", len(clocks), len(s.clocks))
	}
	for _, n := range s.nodes {
		for _, co := range n.cores {
			if err := co.l1i.LoadState(d); err != nil {
				return err
			}
			if err := co.l1d.LoadState(d); err != nil {
				return err
			}
			if co.inorder != nil {
				if err := co.inorder.LoadState(d); err != nil {
					return err
				}
			} else if err := co.model.(*cpu.OOO).LoadState(d); err != nil {
				return err
			}
		}
		if err := n.l2.LoadState(d); err != nil {
			return err
		}
		if err := n.vb.LoadState(d); err != nil {
			return err
		}
		if n.rc != nil {
			if err := n.rc.LoadState(d); err != nil {
				return err
			}
		}
		if err := n.miss.LoadState(d); err != nil {
			return err
		}
		n.stores = d.U64()
		n.loads = d.U64()
		n.ifetches = d.U64()
		n.racHitI = d.U64()
		n.racHitD = d.U64()
	}
	if err := d.Finish(); err != nil {
		return err
	}
	copy(s.clocks, clocks)
	// The restored clocks invalidate the event queue wholesale (including
	// which cores are done), so rebuild it rather than patching.
	s.rebuildHeap()
	s.writeInvalOps = writeInvalOps
	s.steps = steps

	d, err = r.Section("directory")
	if err != nil {
		return err
	}
	if err := s.dir.LoadState(d); err != nil {
		return err
	}
	if err := d.Finish(); err != nil {
		return err
	}

	if s.net != nil || s.mcs != nil {
		d, err = r.Section("contention")
		if err != nil {
			return err
		}
		if err := s.net.LoadState(d); err != nil {
			return err
		}
		for _, mc := range s.mcs {
			if err := mc.LoadState(d); err != nil {
				return err
			}
		}
		if err := d.Finish(); err != nil {
			return err
		}
	}

	d, err = r.Section("workload")
	if err != nil {
		return err
	}
	if err := ws.LoadState(d); err != nil {
		return err
	}
	if err := d.Finish(); err != nil {
		return err
	}
	return r.Finish()
}

// RunMeasured executes the measurement phase against the current —
// presumably warmed — machine state: reset statistics, run measureTxns more
// committed transactions, and collect. Run is warmup followed by
// RunMeasured; a restored warm snapshot replaces the warmup.
func (s *System) RunMeasured(measureTxns uint64) stats.RunResult {
	base := s.w.Committed()
	s.ResetStats()
	s.RunUntil(base + measureTxns)
	return s.Collect(s.cfg.Name, s.w.Committed()-base)
}
