package core
