package core

import (
	"testing"

	"oltpsim/internal/cache"
	"oltpsim/internal/memref"
	"oltpsim/internal/oltp"
)

func cmpCfg(cores, perChip int) Config {
	cfg := FullConfig(cores, 2*MB, 8)
	cfg.CoresPerChip = perChip
	return cfg
}

func TestCMPValidation(t *testing.T) {
	cfg := cmpCfg(8, 3) // 8 % 3 != 0
	if err := cfg.Validate(); err == nil {
		t.Fatal("non-dividing CoresPerChip accepted")
	}
	if err := cmpCfg(8, 2).Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestCMPSharedL2 checks constructive sharing: a line written by core 0 is
// an L2 hit for core 1 on the same chip — no directory transaction, no
// remote miss.
func TestCMPSharedL2(t *testing.T) {
	src := newScript(4) // 4 cores on 2 chips
	src.add(0, memref.Ref{Addr: 4096, Kind: memref.Store})
	src.add(1, memref.Ref{Addr: 4096, Kind: memref.Load}) // same chip as 0
	cfg := cmpCfg(4, 2)
	sys := runScript(t, cfg, src)
	if sys.Chips() != 2 {
		t.Fatalf("chips = %d", sys.Chips())
	}
	res := sys.Collect("t", 1)
	// One miss total (core 0's cold store); core 1's read hits the shared L2.
	if got := res.Miss.Total(); got != 1 {
		t.Fatalf("misses %d, want 1 (second core should hit the shared L2)", got)
	}
	if res.Miss.RemoteDirty() != 0 {
		t.Fatal("intra-chip sharing produced a remote dirty miss")
	}
	if sys.Model(1).Breakdown().L2Hit == 0 {
		t.Fatal("core 1's read was not an L2 hit")
	}
}

// TestCMPCrossChipStillRemote: cores on different chips still communicate
// through the directory.
func TestCMPCrossChipStillRemote(t *testing.T) {
	src := newScript(4)
	src.add(0, memref.Ref{Addr: 4096, Kind: memref.Store}) // chip 0
	src.add(2, memref.Ref{Addr: 4096, Kind: memref.Load})  // chip 1
	sys := runScript(t, cmpCfg(4, 2), src)
	res := sys.Collect("t", 1)
	if res.Miss.RemoteDirty() != 1 {
		t.Fatalf("cross-chip dirty read: remote dirty misses %d, want 1", res.Miss.RemoteDirty())
	}
}

// TestCMPSiblingWriteInvariant: two cores of one chip alternately writing a
// line must never both hold it Modified in their L1s.
func TestCMPSiblingWriteInvariant(t *testing.T) {
	src := newScript(2)
	for i := 0; i < 50; i++ {
		src.add(0, memref.Ref{Addr: 4096, Kind: memref.Store})
		src.add(1, memref.Ref{Addr: 4096, Kind: memref.Store})
	}
	sys := runScript(t, cmpCfg(2, 2), src)
	n := sys.nodes[0]
	holders := 0
	for _, co := range n.cores {
		if st := co.l1d.Probe(4096); st == cache.Modified || st == cache.Exclusive {
			holders++
		}
	}
	if holders > 1 {
		t.Fatalf("%d sibling L1s hold the line exclusively", holders)
	}
}

// TestCMPDirtySiblingReadMergesToL2: core 0 dirties a line in its L1
// (silently via E); core 1's read must see the dirtiness merged into the
// shared L2 and both end up Shared.
func TestCMPDirtySiblingReadMergesToL2(t *testing.T) {
	src := newScript(2)
	src.add(0, memref.Ref{Addr: 4096, Kind: memref.Load})  // E grant
	src.add(0, memref.Ref{Addr: 4096, Kind: memref.Store}) // silent E->M
	// Pad core 1's clock with busy work so its read executes after core 0's
	// store in the global time order.
	for i := 0; i < 10; i++ {
		src.add(1, memref.Ref{Addr: 1 << 30, Kind: memref.IFetch, Instrs: 16})
	}
	src.add(1, memref.Ref{Addr: 4096, Kind: memref.Load})
	sys := runScript(t, cmpCfg(2, 2), src)
	if st := sys.nodes[0].l2.Probe(4096); st != cache.Modified {
		t.Fatalf("chip L2 state %v, want Modified (dirtiness merged)", st)
	}
	if st := sys.nodes[0].cores[0].l1d.Probe(4096); st == cache.Modified || st == cache.Exclusive {
		t.Fatalf("writer core still exclusive (%v) after sibling read", st)
	}
}

// TestCMPEndToEnd runs the OLTP workload on a 2-chip x 2-core machine and
// checks the paper-conclusion direction: CMP cores sharing an L2 turn some
// inter-processor communication into L2 hits, so per-transaction remote
// traffic drops versus 4 single-core chips.
func TestCMPEndToEnd(t *testing.T) {
	opt := func(perChip int) (Config, oltp.Params) {
		cfg := FullConfig(4, 2*MB, 8)
		cfg.CoresPerChip = perChip
		p := oltp.TestParams(4)
		p.CoresPerChip = perChip
		return cfg, p
	}

	run := func(perChip int) (cyclesPerTxn float64, remotePerTxn float64) {
		cfg, p := opt(perChip)
		sys := MustNewSystem(cfg, oltp.MustNewHarness(p))
		res := sys.Run(50, 150)
		return res.CyclesPerTxn(),
			float64(res.Miss.RemoteClean()+res.Miss.RemoteDirty()) / float64(res.Txns)
	}

	_, remoteSMP := run(1)
	cmpCyc, remoteCMP := run(2)
	if cmpCyc <= 0 {
		t.Fatal("CMP run degenerate")
	}
	if remoteCMP >= remoteSMP {
		t.Fatalf("CMP remote misses/txn %.1f not below SMP %.1f (shared L2 should absorb intra-chip sharing)",
			remoteCMP, remoteSMP)
	}
}
