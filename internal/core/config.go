package core

import (
	"fmt"

	"oltpsim/internal/cache"
)

// KB and MB are sizes in bytes.
const (
	KB = int64(1) << 10
	MB = int64(1) << 20
)

// RACConfig describes the optional off-chip remote access cache of paper
// Section 6: a memory-backed cache of remote lines with on-chip tags.
type RACConfig struct {
	SizeBytes int64
	Assoc     int
}

// OOOParams describes the out-of-order processor model (paper Section 7:
// four-wide issue, four integer units, two load/store units, 64-entry
// window).
type OOOParams struct {
	// Width is the issue/retire width.
	Width int
	// Window is the instruction window (ROB) size.
	Window int
	// MemPorts is the number of load/store units.
	MemPorts int
	// EffectiveWidth is the sustained issue rate on OLTP integer code,
	// accounting for fetch stalls and branch mispredictions the reference
	// stream abstracts away. OLTP has limited ILP (paper Section 7); the
	// default is calibrated so that OOO gains ~1.4x uniprocessor over
	// in-order, as the paper reports.
	EffectiveWidth float64
}

// DefaultOOO returns the paper's out-of-order configuration.
func DefaultOOO() OOOParams {
	return OOOParams{Width: 4, Window: 64, MemPorts: 2, EffectiveWidth: 1.6}
}

// Config describes one simulated machine (paper Figure 2 plus the
// integration level under study).
type Config struct {
	// Name labels the configuration in reports ("Base", "2M8w", ...).
	Name string
	// Processors is the number of CPU cores in the machine (1 or 8 in the
	// paper, one per chip).
	Processors int
	// CoresPerChip groups cores onto chips sharing one L2/RAC/home node
	// (0 or 1 = the paper's one-core chips). Values above 1 model the chip
	// multiprocessing the paper's conclusion proposes as the next step; the
	// CMP extension benchmark uses it.
	CoresPerChip int
	// Level is the integration level under study.
	Level IntegrationLevel
	// L2SizeBytes and L2Assoc set the unified L2 organization.
	L2SizeBytes int64
	L2Assoc     int
	// L2TechKind is the array technology (constrains what is realizable:
	// ~2 MB on-chip SRAM, ~8 MB on-chip DRAM in 0.18um).
	L2TechKind L2Tech
	// L1SizeBytes and L1Assoc apply to both L1 caches (64 KB 2-way).
	L1SizeBytes int64
	L1Assoc     int
	// RAC, when non-nil, adds a remote access cache (multiprocessor only).
	RAC *RACConfig
	// OutOfOrder selects the 4-wide OOO model instead of single-issue
	// in-order.
	OutOfOrder bool
	// OOO parametrizes the OOO model when OutOfOrder is set.
	OOO OOOParams
	// CodeReplication turns on OS-based replication of code pages at every
	// node (paper Section 6).
	CodeReplication bool
	// LatencyOverride, when non-nil, replaces the Figure 3 derivation.
	LatencyOverride *LatencyTable
	// NoMigratory disables the protocol's migratory-sharing optimization
	// (ablation: every dirty read miss then downgrades to shared and the
	// following write pays an upgrade).
	NoMigratory bool
	// Contention enables the queuing layer (banked memory controllers and
	// torus link occupancy) on top of the base latencies. The paper-fidelity
	// configurations leave it off — Figure 3 is end-to-end — so this is an
	// ablation knob.
	Contention bool
	// VictimBuffers enables the 21364-style L2 victim buffer with the given
	// entry count (0 = disabled; Figure 3 latencies already assume the
	// production arrangement, so this is an ablation knob).
	VictimBuffers int
	// Classify enables cold/capacity/conflict miss classification on the L2
	// (costly; used by the classification experiment only).
	Classify bool
}

// Latencies resolves the latency table for the configuration.
func (c Config) Latencies() LatencyTable {
	if c.LatencyOverride != nil {
		return *c.LatencyOverride
	}
	return Latencies(c.Level, c.L2Assoc, c.L2TechKind)
}

// L1CacheConfig returns the cache geometry for an L1.
func (c Config) L1CacheConfig(name string) cache.Config {
	return cache.Config{Name: name, SizeBytes: c.L1SizeBytes, Assoc: c.L1Assoc, LineBytes: 64}
}

// L2CacheConfig returns the cache geometry for the L2.
func (c Config) L2CacheConfig() cache.Config {
	return cache.Config{Name: "L2", SizeBytes: c.L2SizeBytes, Assoc: c.L2Assoc, LineBytes: 64}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Processors <= 0 || c.Processors > 128 {
		return fmt.Errorf("core: %d processors out of range", c.Processors)
	}
	if c.CoresPerChip < 0 || (c.CoresPerChip > 1 && c.Processors%c.CoresPerChip != 0) {
		return fmt.Errorf("core: %d cores do not divide into chips of %d", c.Processors, c.CoresPerChip)
	}
	if err := c.L1CacheConfig("L1").Validate(); err != nil {
		return err
	}
	if err := c.L2CacheConfig().Validate(); err != nil {
		return err
	}
	if c.RAC != nil {
		rc := cache.Config{Name: "RAC", SizeBytes: c.RAC.SizeBytes, Assoc: c.RAC.Assoc, LineBytes: 64}
		if err := rc.Validate(); err != nil {
			return err
		}
	}
	if c.OutOfOrder && (c.OOO.Width <= 0 || c.OOO.Window <= 0 || c.OOO.MemPorts <= 0) {
		return fmt.Errorf("core: out-of-order parameters not set (use DefaultOOO)")
	}
	return nil
}

// withDefaults fills the fields shared by every paper configuration.
func withDefaults(c Config) Config {
	c.L1SizeBytes = 64 * KB
	c.L1Assoc = 2
	if c.OutOfOrder && c.OOO.Width == 0 {
		c.OOO = DefaultOOO()
	}
	return c
}

// BaseConfig is the paper's "Base": everything off-chip, 8 MB L2 by
// default, aggressive latencies.
func BaseConfig(procs int, l2Size int64, l2Assoc int) Config {
	return withDefaults(Config{
		Name:        fmt.Sprintf("Base %s%dw", sizeLabel(l2Size), l2Assoc),
		Processors:  procs,
		Level:       Base,
		L2SizeBytes: l2Size,
		L2Assoc:     l2Assoc,
		L2TechKind:  OffChipSRAM,
	})
}

// ConservativeConfig is the paper's "Conservative Base" (8 MB 4-way in the
// figures).
func ConservativeConfig(procs int) Config {
	return withDefaults(Config{
		Name:        "Cons 8M4w",
		Processors:  procs,
		Level:       ConservativeBase,
		L2SizeBytes: 8 * MB,
		L2Assoc:     4,
		L2TechKind:  OffChipSRAM,
	})
}

// IntegratedL2Config integrates the L2 on die (SRAM or DRAM array).
func IntegratedL2Config(procs int, l2Size int64, l2Assoc int, tech L2Tech) Config {
	return withDefaults(Config{
		Name:        fmt.Sprintf("L2 %s%dw", sizeLabel(l2Size), l2Assoc),
		Processors:  procs,
		Level:       IntegratedL2,
		L2SizeBytes: l2Size,
		L2Assoc:     l2Assoc,
		L2TechKind:  tech,
	})
}

// L2MCConfig integrates the L2 and memory controller.
func L2MCConfig(procs int, l2Size int64, l2Assoc int) Config {
	return withDefaults(Config{
		Name:        fmt.Sprintf("L2+MC %s%dw", sizeLabel(l2Size), l2Assoc),
		Processors:  procs,
		Level:       IntegratedL2MC,
		L2SizeBytes: l2Size,
		L2Assoc:     l2Assoc,
		L2TechKind:  OnChipSRAM,
	})
}

// FullConfig integrates everything (Alpha 21364-like).
func FullConfig(procs int, l2Size int64, l2Assoc int) Config {
	return withDefaults(Config{
		Name:        fmt.Sprintf("All %s%dw", sizeLabel(l2Size), l2Assoc),
		Processors:  procs,
		Level:       FullIntegration,
		L2SizeBytes: l2Size,
		L2Assoc:     l2Assoc,
		L2TechKind:  OnChipSRAM,
	})
}

func sizeLabel(b int64) string {
	switch {
	case b >= MB && b%MB == 0:
		return fmt.Sprintf("%dM", b/MB)
	case b*4%MB == 0:
		return fmt.Sprintf("%.2gM", float64(b)/float64(MB))
	default:
		return fmt.Sprintf("%dK", b/KB)
	}
}
