// Package core implements the paper's primary contribution: the model of
// chip-level integration. An IntegrationLevel says which system modules
// (L2 cache, memory controller, coherence controller + network router) are
// on the processor die; from it and the L2 organization the package derives
// the end-to-end memory latencies of paper Figure 3, and assembles the whole
// simulated machine (caches, directory, RAC, CPU timing models) around a
// workload.
package core

import "fmt"

// IntegrationLevel enumerates the successive integration steps the paper
// studies (Sections 3-5).
type IntegrationLevel uint8

const (
	// ConservativeBase: all modules off-chip, conventional (less optimized)
	// memory system.
	ConservativeBase IntegrationLevel = iota
	// Base: all modules off-chip but aggressively optimized for the 0.18um
	// generation.
	Base
	// IntegratedL2: L2 data on the processor die (Section 3).
	IntegratedL2
	// IntegratedL2MC: L2 and memory controller on die, coherence controller
	// and router still external (Section 4) — note the *higher* 2-hop
	// latency this split causes.
	IntegratedL2MC
	// FullIntegration: L2, MC, coherence controller and network router all
	// on die, like the Alpha 21364 (Section 5).
	FullIntegration
)

// String implements fmt.Stringer.
func (l IntegrationLevel) String() string {
	switch l {
	case ConservativeBase:
		return "conservative-base"
	case Base:
		return "base"
	case IntegratedL2:
		return "L2"
	case IntegratedL2MC:
		return "L2+MC"
	case FullIntegration:
		return "L2+MC+CC/NR"
	default:
		return "?"
	}
}

// L2Tech selects the L2 array implementation for integrated designs
// (Section 2.3): on-chip SRAM allows ~2 MB at 15 cycles; embedded DRAM
// allows ~8 MB at 25 cycles.
type L2Tech uint8

const (
	// OffChipSRAM: external SRAM array (Base configurations).
	OffChipSRAM L2Tech = iota
	// OnChipSRAM: integrated SRAM array.
	OnChipSRAM
	// OnChipDRAM: integrated embedded-DRAM array.
	OnChipDRAM
)

// String implements fmt.Stringer.
func (t L2Tech) String() string {
	switch t {
	case OffChipSRAM:
		return "off-chip SRAM"
	case OnChipSRAM:
		return "on-chip SRAM"
	case OnChipDRAM:
		return "on-chip DRAM"
	default:
		return "?"
	}
}

// LatencyTable is the end-to-end latency vector of paper Figure 3, in
// processor cycles (== ns at 1 GHz).
type LatencyTable struct {
	// L2Hit is a hit in the second-level cache.
	L2Hit uint32
	// Local is a miss serviced by the node's own memory.
	Local uint32
	// Remote is a clean miss serviced by a remote home memory (2-hop).
	Remote uint32
	// RemoteDirty is a miss serviced by a dirty copy in a remote L2 (3-hop).
	RemoteDirty uint32
	// RemoteDirtyRAC is a miss serviced by a dirty copy in a remote
	// memory-backed RAC (Section 6: 250 ns vs. 200 ns from a remote L2 in
	// the fully integrated design).
	RemoteDirtyRAC uint32
	// RACHit is a hit in the node's own RAC; its data path is local memory
	// (75 ns) because the RAC stores data in main memory with on-chip tags.
	RACHit uint32
}

// Latencies returns the Figure 3 row for an integration level, L2
// associativity, and L2 technology. The associativity only matters for
// off-chip caches (external set selection adds 5 cycles: 25 -> 30); the
// technology only matters for integrated caches (DRAM: 15 -> 25).
func Latencies(level IntegrationLevel, l2Assoc int, tech L2Tech) LatencyTable {
	var t LatencyTable
	switch level {
	case ConservativeBase:
		t = LatencyTable{L2Hit: 30, Local: 150, Remote: 225, RemoteDirty: 325}
	case Base:
		t = LatencyTable{L2Hit: 25, Local: 100, Remote: 175, RemoteDirty: 275}
		if l2Assoc > 1 {
			t.L2Hit = 30
		}
	case IntegratedL2:
		t = LatencyTable{L2Hit: 15, Local: 100, Remote: 175, RemoteDirty: 275}
	case IntegratedL2MC:
		// Separating the coherence controller from the now-integrated memory
		// controller makes 2-hop accesses *slower* than Base (Section 4,
		// design issue 2): the external CC reaches memory through the system
		// bus.
		t = LatencyTable{L2Hit: 15, Local: 75, Remote: 225, RemoteDirty: 275}
	case FullIntegration:
		t = LatencyTable{L2Hit: 15, Local: 75, Remote: 150, RemoteDirty: 200}
	default:
		panic(fmt.Sprintf("core: unknown integration level %d", level))
	}
	if tech == OnChipDRAM && level >= IntegratedL2 {
		t.L2Hit = 25
	}
	// The RAC responds at local-memory speed; a dirty line fetched from a
	// remote RAC costs 50 cycles over the remote-L2 dirty case.
	t.RACHit = t.Local
	t.RemoteDirtyRAC = t.RemoteDirty + 50
	return t
}

// FigureThree returns every row of paper Figure 3 in presentation order,
// with the labels the paper uses.
func FigureThree() []struct {
	Label string
	Lat   LatencyTable
} {
	return []struct {
		Label string
		Lat   LatencyTable
	}{
		{"Conservative Base", Latencies(ConservativeBase, 4, OffChipSRAM)},
		{"Base, 1-way L2", Latencies(Base, 1, OffChipSRAM)},
		{"Base, n-way L2", Latencies(Base, 4, OffChipSRAM)},
		{"L2 integrated, SRAM L2", Latencies(IntegratedL2, 8, OnChipSRAM)},
		{"L2 integrated, DRAM L2", Latencies(IntegratedL2, 8, OnChipDRAM)},
		{"L2, MC integrated", Latencies(IntegratedL2MC, 8, OnChipSRAM)},
		{"L2, MC, CC/NR integrated", Latencies(FullIntegration, 8, OnChipSRAM)},
	}
}
