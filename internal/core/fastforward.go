package core

import (
	"oltpsim/internal/cache"
	"oltpsim/internal/memref"
)

// This file implements hit-run fast-forwarding: the serial engine's bulk
// path for runs of guaranteed L1 hits.
//
// The OLTP reference stream is overwhelmingly zero-latency L1 hits
// punctuated by the misses the paper is actually about. Per-reference
// stepping pays the full event-queue round trip — scheduler call, cache
// lookup, accounting, heap sift — for every one of those hits. The sharded
// engine's prefix scan (shard.go) already proves the key property: a
// reference that is a guaranteed L1 hit touches only its own core's state
// (plus its own chip's L2 line for the silent Exclusive→Modified store
// upgrade) and consumes zero stall cycles. Fast-forwarding exploits the
// same property serially.
//
// Correctness needs no commuting argument at all, which makes it simpler
// than sharding: the root core retires references only while it would
// remain the heap root — its projected clock stays strictly below the
// second-best heap key, or equal with a lower CPU ID (the serial
// tie-break). Under that bound the serial engine would have dispatched this
// core for every one of those references anyway, so the executed sequence
// IS the serial sequence, merely batched. The run stops at the first
// reference that is not a guaranteed hit, at a possible preemption point
// (the exact mirror of the scheduler's slice test, safe because the
// scheduler cannot mutate while one core runs), at the root bound, or at
// the end of the materialized segment. Runs contain no segment drains, so
// no transaction can commit inside a run and RunUntil's commit-boundary
// exactness is preserved.
//
// The bookkeeping is batched but exact: one AccountRun call adds the run's
// instruction totals (zero-latency data hits contribute nothing, exactly
// as Account would), node kind counters are added once per run, and
// Scheduler.ConsumeRun advances the cursors precisely as that many Next
// calls would have. Cache state is updated per reference through the same
// Access/SetState calls the slow path makes, so LRU order and hit counters
// are bit-identical.

// fastForward bulk-retires the longest run of guaranteed L1 hits the core
// at the heap root may serve while it remains the earliest event in the
// queue, returning the number of references retired. 0 means the next
// event is not a plain reference (idle, dispatch, drain, preemption) and
// the per-reference path must take over.
func (s *System) fastForward(idx int, co *coreCtx) uint64 {
	// The root keeps its slot while its key (clock, CPU ID) stays the queue
	// minimum; the runner-up key is the smaller of the root's two children.
	limT := ^uint64(0)
	limID := int32(-1)
	h := s.heap
	if len(h) > 1 {
		c1 := h[1]
		limT, limID = s.clocks[c1], c1
		if len(h) > 2 {
			c2 := h[2]
			if t2 := s.clocks[c2]; t2 < limT || (t2 == limT && c2 < limID) {
				limT, limID = t2, c2
			}
		}
	}
	n := s.serveHitRun(co, limT, limID, true)
	if n > 0 {
		s.clocks[idx] = co.inorder.Now()
		s.siftDown(0)
		s.steps += n
	}
	return n
}

// serveHitRun serves core co's pending references for as long as each one
// is a guaranteed zero-latency L1 hit and its serve time stays inside the
// bound: strictly before limT, or exactly at limT when co's CPU ID is below
// limID (the serial root tie-break; pass limID < 0 for the strict bound the
// sharded horizon requires). In serial mode the reference that ends the run
// is itself finished through the ordinary hierarchy path, so a run and its
// terminating miss cost one scheduler lookahead in total; in sharded mode
// (serial=false) a non-hit inside the bound violates the epoch horizon
// argument and panics. Returns the number of references retired.
func (s *System) serveHitRun(co *coreCtx, limT uint64, limID int32, serial bool) uint64 {
	m := co.inorder
	nd := co.chip
	cid := int32(co.cpuID)
	t := m.Now()
	pr := s.sched.Pending(co.cpuID)

	var (
		nSwitch, nSeg          int
		instrs, kinstrs        uint64
		fetches, loads, stores uint64
		served                 int
		term                   memref.Ref
		termLine               uint64
		termSwitch             bool
		haveTerm               bool
	)

scan:
	// Phase 0 walks the pending context-switch overhead (served by the
	// scheduler unconditionally — no slice accounting, no preemption test),
	// phase 1 the running process's segment. The walk mirrors
	// scanSafePrefix exactly, which is what lets the sharded engine replay
	// through this same function against its phase-A stop times.
	for phase := 0; phase < 2; phase++ {
		refs := pr.Switch
		if phase == 1 {
			refs = pr.Seg
		}
		for k := 0; k < len(refs); k++ {
			if served >= maxEpochScan {
				break scan
			}
			if !(t < limT || (t == limT && cid < limID)) {
				break scan
			}
			if phase == 1 && pr.SliceUsed+nSeg >= pr.Quantum && pr.OtherWake <= t {
				// Exact mirror of the scheduler's slice-expiry test at
				// serve time t; OtherWake cannot change mid-run because
				// only this core touches the scheduler while it runs.
				break scan
			}
			r := refs[k]
			line := r.Line()
			switch r.Kind {
			case memref.IFetch:
				if co.l1i.Access(line) == cache.Invalid {
					term, termLine, termSwitch, haveTerm = r, line, phase == 0, true
					break scan
				}
				in := uint64(r.Instrs)
				instrs += in
				if r.Kernel {
					kinstrs += in
				}
				fetches++
				t += in
			case memref.Load:
				if co.l1d.Access(line) == cache.Invalid {
					term, termLine, termSwitch, haveTerm = r, line, phase == 0, true
					break scan
				}
				loads++
			default:
				switch co.l1d.Access(line) {
				case cache.Modified:
				case cache.Exclusive:
					// Silent E->M upgrade, same as the slow path.
					co.l1d.SetState(line, cache.Modified)
					nd.l2.SetState(line, cache.Modified)
				default:
					// Shared or Invalid: the store needs the L2 or the
					// directory.
					term, termLine, termSwitch, haveTerm = r, line, phase == 0, true
					break scan
				}
				stores++
			}
			if phase == 0 {
				nSwitch++
			} else {
				nSeg++
			}
			served++
		}
	}

	if served == 0 && !haveTerm {
		return 0
	}
	if haveTerm && !serial {
		panic("core: sharded step left the validated prefix (memory miss)")
	}

	// Flush the batched accounting before any lower-level access: the
	// contention model reads core clocks, so the run's clock advance must
	// land first — exactly where per-reference stepping would have left it.
	if instrs != 0 {
		m.AccountRun(instrs, kinstrs)
	}
	nd.ifetches += fetches
	nd.loads += loads
	nd.stores += stores
	if serial {
		s.ffSteps += uint64(served)
	}
	if haveTerm {
		if termSwitch {
			nSwitch++
		} else {
			nSeg++
		}
	}
	s.sched.ConsumeRun(co.cpuID, nSwitch, nSeg)
	if !haveTerm {
		return uint64(served)
	}

	// Finish the run-ending reference through the ordinary hierarchy path.
	// Its L1 lookup already happened above (and missed the fast-path
	// criteria), so it resumes below the L1.
	ifetch := term.Kind == memref.IFetch
	write := term.Kind == memref.Store
	switch term.Kind {
	case memref.IFetch:
		nd.ifetches++
	case memref.Load:
		nd.loads++
	default:
		nd.stores++
	}
	l1 := co.l1d
	if ifetch {
		l1 = co.l1i
	}
	lat, cat := s.accessBeyondL1(nd, co, l1, termLine, ifetch, write)
	m.Account(term, lat, cat)
	return uint64(served) + 1
}
