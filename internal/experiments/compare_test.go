package experiments

import (
	"strings"
	"testing"

	"oltpsim/internal/paper"
	"oltpsim/internal/stats"
)

func mkBar(name string, cycles, misses uint64) stats.RunResult {
	r := stats.RunResult{Name: name, Txns: 1}
	r.Breakdown.Busy = cycles
	for i := uint64(0); i < misses; i++ {
		r.Miss.I[0]++
	}
	return r
}

func TestCompareScoresKnownFigure(t *testing.T) {
	f := Figure{
		ID: "Figure 10 (uni)",
		Bars: []stats.RunResult{
			mkBar("Base", 1000, 10),
			mkBar("L2", 710, 5),    // paper says 70: +1.4% deviation
			mkBar("L2+MC", 695, 5), // paper says 69
		},
	}
	rows := Compare(&f)
	if len(rows) != 3 {
		t.Fatalf("rows %d, want 3", len(rows))
	}
	for _, r := range rows {
		if !r.WithinTolerance {
			t.Fatalf("row %+v flagged as deviating", r)
		}
	}
	out := RenderComparison(rows)
	if !strings.Contains(out, "score: 3/3") {
		t.Fatalf("render missing score:\n%s", out)
	}
}

func TestCompareFlagsDeviation(t *testing.T) {
	f := Figure{
		ID: "Figure 10 (uni)",
		Bars: []stats.RunResult{
			mkBar("Base", 1000, 10),
			mkBar("L2", 2000, 5), // 200 vs paper 70: way out
		},
	}
	rows := Compare(&f)
	var l2 *ComparisonRow
	for i := range rows {
		if rows[i].Bar == "L2" {
			l2 = &rows[i]
		}
	}
	if l2 == nil || l2.WithinTolerance {
		t.Fatalf("gross deviation not flagged: %+v", l2)
	}
	if !strings.Contains(RenderComparison(rows), "DEVIATES") {
		t.Fatal("render does not mark deviation")
	}
}

func TestCompareUnknownFigure(t *testing.T) {
	f := Figure{ID: "Figure 99", Bars: []stats.RunResult{mkBar("x", 1, 1)}}
	if rows := Compare(&f); rows != nil {
		t.Fatal("unknown figure produced comparison rows")
	}
	if RenderComparison(nil) != "" {
		t.Fatal("empty comparison rendered non-empty")
	}
}

func TestExpectationsWellFormed(t *testing.T) {
	exps := paper.Expectations()
	if len(exps) < 8 {
		t.Fatalf("only %d figures have expectations", len(exps))
	}
	for id, e := range exps {
		if e.ID != id {
			t.Errorf("expectation %q has mismatched ID %q", id, e.ID)
		}
		for label, v := range e.Exec {
			if v.V <= 0 {
				t.Errorf("%s exec %q non-positive", id, label)
			}
			if tol := v.Tolerance(); tol <= 0 || tol >= 1 {
				t.Errorf("%s exec %q tolerance %v out of range", id, label, tol)
			}
		}
		for label, v := range e.Misses {
			if v.V <= 0 {
				t.Errorf("%s misses %q non-positive", id, label)
			}
		}
	}
	if len(paper.Ratios()) < 6 {
		t.Fatal("ratio claims missing")
	}
}
