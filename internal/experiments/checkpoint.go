package experiments

import (
	"bytes"
	"fmt"
	"io"

	"oltpsim/internal/core"
	"oltpsim/internal/snapshot"
)

// Checkpoint phases record where in the warmup/measure protocol a snapshot
// was taken, so a resumed process knows whether statistics still need their
// post-warmup reset.
const (
	// CheckpointWarmed marks a checkpoint taken at the end of warmup, before
	// the statistics reset: resuming starts the measurement phase afresh.
	CheckpointWarmed uint8 = 1
	// CheckpointMeasuring marks a mid-measurement checkpoint: statistics are
	// already accumulating and resuming continues without a reset.
	CheckpointMeasuring uint8 = 2
)

// SaveCheckpoint writes the machine state plus the protocol position.
// measureBase is the committed-transaction count at the statistics reset
// (meaningful only for CheckpointMeasuring).
func SaveCheckpoint(out io.Writer, sys *core.System, phase uint8, measureBase uint64) error {
	if phase != CheckpointWarmed && phase != CheckpointMeasuring {
		return fmt.Errorf("experiments: invalid checkpoint phase %d", phase)
	}
	var buf bytes.Buffer
	if err := sys.Save(&buf); err != nil {
		return err
	}
	w := snapshot.NewWriter()
	e := w.Section("protocol")
	e.U8(phase)
	e.U64(measureBase)
	w.Section("system").U8s(buf.Bytes())
	return w.Emit(out)
}

// LoadCheckpoint restores a checkpoint into a system built from the
// identical configuration and returns the protocol position. On error the
// system may be partially restored and must be discarded.
func LoadCheckpoint(in io.Reader, sys *core.System) (phase uint8, measureBase uint64, err error) {
	r, err := snapshot.NewReader(in)
	if err != nil {
		return 0, 0, err
	}
	d, err := r.Section("protocol")
	if err != nil {
		return 0, 0, err
	}
	phase = d.U8()
	measureBase = d.U64()
	if err := d.Finish(); err != nil {
		return 0, 0, err
	}
	if phase != CheckpointWarmed && phase != CheckpointMeasuring {
		return 0, 0, fmt.Errorf("experiments: checkpoint has invalid phase %d", phase)
	}
	d, err = r.Section("system")
	if err != nil {
		return 0, 0, err
	}
	payload := d.U8s()
	if err := d.Finish(); err != nil {
		return 0, 0, err
	}
	if err := r.Finish(); err != nil {
		return 0, 0, err
	}
	if err := sys.Load(bytes.NewReader(payload)); err != nil {
		return 0, 0, err
	}
	return phase, measureBase, nil
}
