package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"io"

	"oltpsim/internal/core"
	"oltpsim/internal/snapshot"
	"oltpsim/internal/stats"
)

// Checkpoint phases record where in the warmup/measure protocol a snapshot
// was taken, so a resumed process knows whether statistics still need their
// post-warmup reset.
const (
	// CheckpointWarmed marks a checkpoint taken at the end of warmup, before
	// the statistics reset: resuming starts the measurement phase afresh.
	CheckpointWarmed uint8 = 1
	// CheckpointMeasuring marks a mid-measurement checkpoint: statistics are
	// already accumulating and resuming continues without a reset.
	CheckpointMeasuring uint8 = 2
	// CheckpointWarming marks a mid-warmup checkpoint: the run has not
	// reached Options.WarmupTxns yet, and resuming (under identical options)
	// finishes the warmup before the statistics reset.
	CheckpointWarming uint8 = 3
)

// SaveCheckpoint writes the machine state plus the protocol position.
// measureBase is the committed-transaction count at the statistics reset
// (meaningful only for CheckpointMeasuring).
func SaveCheckpoint(out io.Writer, sys *core.System, phase uint8, measureBase uint64) error {
	if !validPhase(phase) {
		return fmt.Errorf("experiments: invalid checkpoint phase %d", phase)
	}
	var buf bytes.Buffer
	if err := sys.Save(&buf); err != nil {
		return err
	}
	w := snapshot.NewWriter()
	e := w.Section("protocol")
	e.U8(phase)
	e.U64(measureBase)
	w.Section("system").U8s(buf.Bytes())
	return w.Emit(out)
}

// LoadCheckpoint restores a checkpoint into a system built from the
// identical configuration and returns the protocol position. On error the
// system may be partially restored and must be discarded.
func LoadCheckpoint(in io.Reader, sys *core.System) (phase uint8, measureBase uint64, err error) {
	r, err := snapshot.NewReader(in)
	if err != nil {
		return 0, 0, err
	}
	d, err := r.Section("protocol")
	if err != nil {
		return 0, 0, err
	}
	phase = d.U8()
	measureBase = d.U64()
	if err := d.Finish(); err != nil {
		return 0, 0, err
	}
	if !validPhase(phase) {
		return 0, 0, fmt.Errorf("experiments: checkpoint has invalid phase %d", phase)
	}
	d, err = r.Section("system")
	if err != nil {
		return 0, 0, err
	}
	payload := d.U8s()
	if err := d.Finish(); err != nil {
		return 0, 0, err
	}
	if err := r.Finish(); err != nil {
		return 0, 0, err
	}
	if err := sys.Load(bytes.NewReader(payload)); err != nil {
		return 0, 0, err
	}
	return phase, measureBase, nil
}

func validPhase(p uint8) bool {
	return p == CheckpointWarmed || p == CheckpointMeasuring || p == CheckpointWarming
}

// ErrCanceled is returned by RunCheckpointed when CheckpointRun.Canceled
// reported cancellation at a quantum boundary. The machine state behind the
// most recent checkpoint write is intact, so a canceled run is resumable.
var ErrCanceled = errors.New("experiments: run canceled")

// CheckpointRun configures one checkpointed execution of the
// warmup/measure protocol: how often to persist the machine state, where
// the bytes go, what to resume from, and the cooperative hooks the job
// server drives its progress stream and cancellation from.
type CheckpointRun struct {
	// Every is the checkpoint quantum in committed transactions. When > 0
	// (and Write is set), the run persists a checkpoint after every Every
	// commits during warmup and measurement; 0 writes only the single
	// end-of-warmup checkpoint. The quantum never changes results: chunked
	// RunUntil lands on the same commit boundaries as an uninterrupted run.
	Every uint64
	// Write persists one checkpoint container (the SaveCheckpoint format).
	// Nil disables all checkpoint writes. Write must not retain the slice.
	Write func(data []byte) error
	// Resume, when non-nil, is a checkpoint container previously produced
	// against the identical configuration and options; the run continues
	// from it instead of starting cold.
	Resume []byte
	// Canceled, when non-nil, is polled before every protocol quantum; once
	// it returns true the run stops and RunCheckpointed returns ErrCanceled.
	// Polling happens at quantum boundaries only, so Every bounds the
	// cancellation latency in committed transactions.
	Canceled func() bool
	// OnProgress, when non-nil, observes measurement progress: it is called
	// with (0, target) at the statistics reset and (measured, target) after
	// every measurement quantum. Calls are synchronous with the run.
	OnProgress func(measured, target uint64)
}

// RunCheckpointed executes one configuration under the protocol with
// periodic checkpointing, resume, and cooperative cancellation. It returns
// the run result and the number of simulator steps executed in this
// process (a resumed run counts only the steps after the restore).
//
// The step sequence is identical to Options.Run — checkpoint writes are
// read-only and the chunked RunUntil loop stops on the same commit
// boundaries — so for any interleaving of checkpoint, kill, and resume the
// final RunResult is byte-identical to an uninterrupted run's
// (TestRunCheckpointedMatchesRun, TestServerResumeEquivalence).
// Options.WarmSnapshot is ignored here: warm-state reuse and per-job
// checkpoint streams answer different questions about where machine state
// comes from, and mixing them would make the resume story ambiguous.
func (o Options) RunCheckpointed(cfg core.Config, cr CheckpointRun) (stats.RunResult, uint64, error) {
	sys := o.build(cfg)
	phase := CheckpointWarming
	var measureBase, steps0 uint64
	if cr.Resume != nil {
		p, base, err := LoadCheckpoint(bytes.NewReader(cr.Resume), sys)
		if err != nil {
			return stats.RunResult{}, 0, fmt.Errorf("experiments: resuming checkpoint: %w", err)
		}
		phase = p
		steps0 = sys.Steps()
		if phase == CheckpointMeasuring {
			measureBase = base
		}
	}
	canceled := func() bool { return cr.Canceled != nil && cr.Canceled() }
	executed := func() uint64 { return sys.Steps() - steps0 }
	write := func(ph uint8, base uint64) error {
		if cr.Write == nil {
			return nil
		}
		var buf bytes.Buffer
		if err := SaveCheckpoint(&buf, sys, ph, base); err != nil {
			return err
		}
		return cr.Write(buf.Bytes())
	}

	// Warmup, chunked by the checkpoint quantum. The mid-warmup checkpoints
	// carry CheckpointWarming so a resume knows warmup is still in flight.
	if phase == CheckpointWarming {
		for sys.Committed() < o.WarmupTxns {
			if canceled() {
				return stats.RunResult{}, executed(), ErrCanceled
			}
			next := o.WarmupTxns
			if cr.Every > 0 && sys.Committed()+cr.Every < next {
				next = sys.Committed() + cr.Every
			}
			sys.RunUntil(next)
			if next < o.WarmupTxns && cr.Every > 0 {
				if err := write(CheckpointWarming, 0); err != nil {
					return stats.RunResult{}, executed(), fmt.Errorf("experiments: writing checkpoint: %w", err)
				}
			}
		}
		phase = CheckpointWarmed
		if err := write(CheckpointWarmed, 0); err != nil {
			return stats.RunResult{}, executed(), fmt.Errorf("experiments: writing checkpoint: %w", err)
		}
	}

	// Statistics reset at the warmup/measure boundary. A resume from a
	// CheckpointMeasuring container skips this: its statistics are already
	// accumulating.
	if phase == CheckpointWarmed {
		measureBase = sys.Committed()
		sys.ResetStats()
		if cr.OnProgress != nil {
			cr.OnProgress(0, o.MeasuredTxns())
		}
	}

	// Measurement, chunked by the checkpoint quantum.
	target := measureBase + o.MeasuredTxns()
	for sys.Committed() < target {
		if canceled() {
			return stats.RunResult{}, executed(), ErrCanceled
		}
		next := target
		if cr.Every > 0 && sys.Committed()+cr.Every < next {
			next = sys.Committed() + cr.Every
		}
		sys.RunUntil(next)
		if cr.Every > 0 {
			if err := write(CheckpointMeasuring, measureBase); err != nil {
				return stats.RunResult{}, executed(), fmt.Errorf("experiments: writing checkpoint: %w", err)
			}
		}
		if cr.OnProgress != nil {
			cr.OnProgress(sys.Committed()-measureBase, o.MeasuredTxns())
		}
	}
	res := sys.Collect(cfg.Name, sys.Committed()-measureBase)
	res.Name = cfg.Name
	return res, executed(), nil
}
