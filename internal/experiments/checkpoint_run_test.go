package experiments

import (
	"errors"
	"reflect"
	"testing"

	"oltpsim/internal/core"
)

// checkpointRunOptions is the quick protocol the RunCheckpointed suite
// drives: long enough that every checkpoint quantum under test fires at
// least once in both warmup and measurement.
func checkpointRunOptions() Options {
	o := QuickOptions()
	o.WarmupTxns, o.MeasureTxns = 90, 180
	return o
}

// TestRunCheckpointedMatchesRun: for every checkpoint quantum, a fully
// checkpointed run produces a RunResult byte-identical to Options.Run, and
// every checkpoint written along the way resumes to that same result.
func TestRunCheckpointedMatchesRun(t *testing.T) {
	cfgs := []core.Config{
		core.BaseConfig(1, 1*core.MB, 1),
		core.FullConfig(2, 1*core.MB, 2),
	}
	for _, cfg := range cfgs {
		o := checkpointRunOptions()
		want := o.Run(cfg)
		for _, every := range []uint64{25, 60, 121} {
			var checkpoints [][]byte
			res, steps, err := o.RunCheckpointed(cfg, CheckpointRun{
				Every: every,
				Write: func(data []byte) error {
					checkpoints = append(checkpoints, append([]byte(nil), data...))
					return nil
				},
			})
			if err != nil {
				t.Fatalf("%s every=%d: %v", cfg.Name, every, err)
			}
			if steps == 0 {
				t.Errorf("%s every=%d: reported zero steps", cfg.Name, every)
			}
			if !reflect.DeepEqual(res, want) {
				t.Errorf("%s every=%d: checkpointed result diverges from Options.Run", cfg.Name, every)
			}
			if len(checkpoints) < 3 {
				t.Fatalf("%s every=%d: only %d checkpoints written", cfg.Name, every, len(checkpoints))
			}
			// Resuming from every checkpoint — mid-warmup, end-of-warmup, and
			// mid-measurement alike — must land on the identical result.
			for i, ck := range checkpoints {
				resumed, _, err := o.RunCheckpointed(cfg, CheckpointRun{Resume: ck})
				if err != nil {
					t.Fatalf("%s every=%d resume %d: %v", cfg.Name, every, i, err)
				}
				if !reflect.DeepEqual(resumed, want) {
					t.Errorf("%s every=%d: resume from checkpoint %d diverges", cfg.Name, every, i)
				}
			}
		}
	}
}

// TestRunCheckpointedNoQuantum: Every == 0 writes exactly one checkpoint
// (end of warmup) and still matches Options.Run.
func TestRunCheckpointedNoQuantum(t *testing.T) {
	cfg := core.BaseConfig(1, 1*core.MB, 1)
	o := checkpointRunOptions()
	want := o.Run(cfg)
	var n int
	res, _, err := o.RunCheckpointed(cfg, CheckpointRun{
		Write: func(data []byte) error { n++; return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("wrote %d checkpoints, want 1 (end of warmup only)", n)
	}
	if !reflect.DeepEqual(res, want) {
		t.Error("result diverges from Options.Run")
	}
}

// TestRunCheckpointedCancel: cancellation is honored at quantum boundaries
// in both phases, returns ErrCanceled, and a run resumed from the last
// checkpoint before the cancel still converges to the uninterrupted result.
func TestRunCheckpointedCancel(t *testing.T) {
	cfg := core.BaseConfig(1, 1*core.MB, 1)
	o := checkpointRunOptions()
	want := o.Run(cfg)

	// Cancel after the k-th checkpoint write, for several k: early warmup,
	// around the phase boundary, and mid-measurement.
	for _, after := range []int{1, 3, 6} {
		var last []byte
		writes := 0
		_, _, err := o.RunCheckpointed(cfg, CheckpointRun{
			Every: 30,
			Write: func(data []byte) error {
				writes++
				last = append(last[:0], data...)
				return nil
			},
			Canceled: func() bool { return writes >= after },
		})
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("after=%d: err = %v, want ErrCanceled", after, err)
		}
		if writes < after {
			t.Fatalf("after=%d: only %d writes before cancel", after, writes)
		}
		resumed, _, err := o.RunCheckpointed(cfg, CheckpointRun{Resume: last})
		if err != nil {
			t.Fatalf("after=%d: resume: %v", after, err)
		}
		if !reflect.DeepEqual(resumed, want) {
			t.Errorf("after=%d: resumed result diverges from uninterrupted run", after)
		}
	}

	// Canceled before any work: no checkpoint, ErrCanceled immediately.
	_, steps, err := o.RunCheckpointed(cfg, CheckpointRun{
		Canceled: func() bool { return true },
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("pre-canceled run: err = %v, want ErrCanceled", err)
	}
	if steps != 0 {
		t.Errorf("pre-canceled run executed %d steps, want 0", steps)
	}
}

// TestRunCheckpointedProgress: OnProgress reports (0, target) at the
// statistics reset, is non-decreasing, and ends exactly at the target.
func TestRunCheckpointedProgress(t *testing.T) {
	cfg := core.BaseConfig(1, 1*core.MB, 1)
	o := checkpointRunOptions()
	var measured []uint64
	_, _, err := o.RunCheckpointed(cfg, CheckpointRun{
		Every: 40,
		OnProgress: func(m, target uint64) {
			if target != o.MeasureTxns {
				t.Errorf("OnProgress target = %d, want %d", target, o.MeasureTxns)
			}
			measured = append(measured, m)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(measured) < 3 {
		t.Fatalf("only %d progress calls", len(measured))
	}
	if measured[0] != 0 {
		t.Errorf("first progress call reported %d, want 0 (statistics reset)", measured[0])
	}
	for i := 1; i < len(measured); i++ {
		if measured[i] < measured[i-1] {
			t.Errorf("progress regressed: %v", measured)
		}
	}
	if last := measured[len(measured)-1]; last < o.MeasureTxns {
		t.Errorf("final progress %d below target %d", last, o.MeasureTxns)
	}
}
