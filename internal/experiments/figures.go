package experiments

import "oltpsim/internal/core"

// offChipSweep builds the Figure 5/6 bar list: off-chip L2 from 1 to 8 MB,
// direct-mapped and 4-way, plus the Conservative Base 8 MB 4-way.
func offChipSweep(procs int) []core.Config {
	var cfgs []core.Config
	for _, assoc := range []int{1, 4} {
		for _, size := range []int64{1, 2, 4, 8} {
			cfgs = append(cfgs, core.BaseConfig(procs, size*core.MB, assoc))
		}
	}
	cfgs = append(cfgs, core.ConservativeConfig(procs))
	return cfgs
}

// Fig05 reproduces "Behavior of OLTP with different off-chip L2
// configurations – uniprocessor".
func Fig05(o Options) Figure {
	return runAll(o, "Figure 5", "OLTP with off-chip L2, uniprocessor", offChipSweep(1))
}

// Fig06 reproduces the same sweep for 8 processors.
func Fig06(o Options) Figure {
	return runAll(o, "Figure 6", "OLTP with off-chip L2, 8 processors", offChipSweep(8))
}

// onChipSweep builds the Figure 7/8 bar list: the Base 8 MB direct-mapped
// off-chip L2 against integrated SRAM L2s of varying size/associativity and
// the 8 MB 8-way embedded-DRAM option.
func onChipSweep(procs int) []core.Config {
	cfgs := []core.Config{
		label(core.BaseConfig(procs, 8*core.MB, 1), "8M1w Base"),
		label(core.IntegratedL2Config(procs, 1*core.MB, 8, core.OnChipSRAM), "1M8w"),
		label(core.IntegratedL2Config(procs, 2*core.MB, 8, core.OnChipSRAM), "2M8w"),
		label(core.IntegratedL2Config(procs, 2*core.MB, 4, core.OnChipSRAM), "2M4w"),
		label(core.IntegratedL2Config(procs, 2*core.MB, 2, core.OnChipSRAM), "2M2w"),
		label(core.IntegratedL2Config(procs, 2*core.MB, 1, core.OnChipSRAM), "2M1w"),
		label(core.IntegratedL2Config(procs, 8*core.MB, 8, core.OnChipDRAM), "8M8w DRAM"),
	}
	return cfgs
}

// Fig07 reproduces "Impact of on-chip L2 – uniprocessor".
func Fig07(o Options) Figure {
	return runAll(o, "Figure 7", "Impact of on-chip L2, uniprocessor", onChipSweep(1))
}

// Fig08 reproduces "Impact of on-chip L2 – 8 processors".
func Fig08(o Options) Figure {
	return runAll(o, "Figure 8", "Impact of on-chip L2, 8 processors", onChipSweep(8))
}

// integrationLadder builds the Figure 10 bars: Base (8M 1-way off-chip),
// then 2M8w with successively more integration.
func integrationLadder(procs int, full bool) []core.Config {
	cfgs := []core.Config{
		label(core.BaseConfig(procs, 8*core.MB, 1), "Base"),
		label(core.IntegratedL2Config(procs, 2*core.MB, 8, core.OnChipSRAM), "L2"),
		label(core.L2MCConfig(procs, 2*core.MB, 8), "L2+MC"),
	}
	if full {
		cfgs = append(cfgs, label(core.FullConfig(procs, 2*core.MB, 8), "All"))
	}
	return cfgs
}

// Fig10Uni reproduces the uniprocessor half of "Impact of integrating L2,
// memory controller, and coherence/network hardware".
func Fig10Uni(o Options) Figure {
	return runAll(o, "Figure 10 (uni)", "Successive integration, uniprocessor", integrationLadder(1, false))
}

// Fig10MP reproduces the 8-processor half, including full integration.
func Fig10MP(o Options) Figure {
	return runAll(o, "Figure 10 (8p)", "Successive integration, 8 processors", integrationLadder(8, true))
}

// racConfig attaches the Section 6 RAC (8 MB 8-way, memory-backed) to a
// fully integrated machine.
func racConfig(l2Size int64, l2Assoc int, withRAC, repl bool, name string) core.Config {
	cfg := core.FullConfig(8, l2Size, l2Assoc)
	if withRAC {
		cfg.RAC = &core.RACConfig{SizeBytes: 8 * core.MB, Assoc: 8}
	}
	cfg.CodeReplication = repl
	cfg.Name = name
	return cfg
}

// Fig11 reproduces "Impact of remote access cache on L2 misses, with and
// without instruction replication – 8 processors, 1MB 4-way L2".
func Fig11(o Options) Figure {
	return runAll(o, "Figure 11", "RAC impact on L2 miss mix (1M4w L2, 8p)", []core.Config{
		racConfig(1*core.MB, 4, false, false, "NoRAC NoRepl"),
		racConfig(1*core.MB, 4, true, false, "RAC NoRepl"),
		racConfig(1*core.MB, 4, false, true, "NoRAC Repl"),
		racConfig(1*core.MB, 4, true, true, "RAC Repl"),
	})
}

// Fig12Small reproduces the 1 MB trio of "Performance impact of remote
// access caches": 1M4w without RAC, with RAC, and the 1.25M L2 that the
// RAC's tag space could have bought instead.
func Fig12Small(o Options) Figure {
	return runAll(o, "Figure 12 (1M)", "RAC performance, 1M4w L2 + repl (8p)", []core.Config{
		racConfig(1*core.MB, 4, false, true, "NoRAC 1M4w"),
		racConfig(1*core.MB, 4, true, true, "RAC 1M4w"),
		racConfig(5*core.MB/4, 4, false, true, "NoRAC 1.25M"),
	})
}

// Fig12Large reproduces the 2 MB pair.
func Fig12Large(o Options) Figure {
	return runAll(o, "Figure 12 (2M)", "RAC performance, 2M8w L2 + repl (8p)", []core.Config{
		racConfig(2*core.MB, 8, false, true, "NoRAC 2M8w"),
		racConfig(2*core.MB, 8, true, true, "RAC 2M8w"),
	})
}

// oooLadder builds the Figure 13 bars: the in-order Base for reference, then
// the integration ladder on out-of-order processors. Normalization is to
// the OOO Base (index 1), as in the paper.
func oooLadder(procs int, full bool) []core.Config {
	mk := func(cfg core.Config, name string) core.Config {
		cfg.OutOfOrder = true
		cfg.OOO = core.DefaultOOO()
		cfg.Name = name
		return cfg
	}
	cfgs := []core.Config{
		label(core.BaseConfig(procs, 8*core.MB, 1), "Base InOrder"),
		mk(core.BaseConfig(procs, 8*core.MB, 1), "Base OOO"),
		mk(core.IntegratedL2Config(procs, 2*core.MB, 8, core.OnChipSRAM), "L2 OOO"),
		mk(core.L2MCConfig(procs, 2*core.MB, 8), "L2+MC OOO"),
	}
	if full {
		cfgs = append(cfgs, mk(core.FullConfig(procs, 2*core.MB, 8), "All OOO"))
	}
	return cfgs
}

// Fig13Uni reproduces the uniprocessor half of the out-of-order study.
func Fig13Uni(o Options) Figure {
	f := runAll(o, "Figure 13 (uni)", "Out-of-order processors, uniprocessor", oooLadder(1, false))
	f.BaselineIdx = 1
	return f
}

// Fig13MP reproduces the 8-processor half.
func Fig13MP(o Options) Figure {
	f := runAll(o, "Figure 13 (8p)", "Out-of-order processors, 8 processors", oooLadder(8, true))
	f.BaselineIdx = 1
	return f
}
