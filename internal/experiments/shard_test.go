package experiments

import (
	"reflect"
	"testing"

	"oltpsim/internal/core"
)

// TestShardedSteppingMatchesSerial is the byte-identity contract of the
// intra-run execution engines: every invariant machine shape must produce
// exactly the same RunResult under per-reference serial stepping
// (NoFastForward), serial stepping with hit-run fast-forwarding (the
// default), and epoch-sharded stepping. Shapes the sharded engine declines
// (uniprocessors, out-of-order cores) exercise the silent serial fallback
// and must also match.
func TestShardedSteppingMatchesSerial(t *testing.T) {
	for _, cfg := range invariantConfigs() {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			t.Parallel()
			perRef := invariantOptions()
			perRef.NoFastForward = true
			want := perRef.Run(cfg)

			fast := invariantOptions()
			if got := fast.Run(cfg); !reflect.DeepEqual(want, got) {
				t.Fatalf("fast-forward diverged from per-reference stepping:\nper-ref: %+v\nfast:    %+v", want, got)
			}

			sharded := invariantOptions()
			sharded.StepWorkers = 3
			if got := sharded.Run(cfg); !reflect.DeepEqual(want, got) {
				t.Fatalf("sharded stepping diverged from serial:\nserial:  %+v\nsharded: %+v", want, got)
			}
		})
	}
}

// TestShardStress64Nodes drives the epoch engine at CI's stress point: a
// 64-chip machine stepped by 8 workers, the shape where the persistent
// pool's barrier discipline sees the most concurrent traffic. Run under
// -race this crosses thousands of epoch barriers; the serial run is the
// byte-identity oracle. Skipped in -short so the ordinary race sweep stays
// fast — CI runs it as its own step.
func TestShardStress64Nodes(t *testing.T) {
	if testing.Short() {
		t.Skip("64-node stress shape runs in the dedicated CI race step")
	}
	for _, cfg := range []core.Config{
		core.FullConfig(64, 2*core.MB, 8),
		core.BaseConfig(64, 8*core.MB, 1),
	} {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			t.Parallel()
			serial := invariantOptions()
			want := serial.Run(cfg)
			sharded := invariantOptions()
			sharded.StepWorkers = 8
			if got := sharded.Run(cfg); !reflect.DeepEqual(want, got) {
				t.Fatalf("64-node sharded stepping diverged from serial:\nserial:  %+v\nsharded: %+v", want, got)
			}
		})
	}
}

// TestShardedSteppingWorkerCountIrrelevant pins that the worker count only
// partitions the work: different shard counts give identical results.
func TestShardedSteppingWorkerCountIrrelevant(t *testing.T) {
	cfg := core.FullConfig(8, 2*core.MB, 8)
	base := invariantOptions()
	want := base.Run(cfg)
	for _, workers := range []int{2, 5, 16} {
		o := invariantOptions()
		o.StepWorkers = workers
		if got := o.Run(cfg); !reflect.DeepEqual(got, want) {
			t.Fatalf("StepWorkers=%d diverged from serial:\nserial: %+v\ngot:    %+v", workers, want, got)
		}
	}
}
