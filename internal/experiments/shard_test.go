package experiments

import (
	"reflect"
	"testing"

	"oltpsim/internal/core"
)

// TestShardedSteppingMatchesSerial is the byte-identity contract of the
// epoch-sharded stepping engine: every invariant machine shape must produce
// exactly the same RunResult with sharded stepping as with the serial
// engine. Shapes the sharded engine declines (uniprocessors, out-of-order
// cores) exercise the silent serial fallback and must also match.
func TestShardedSteppingMatchesSerial(t *testing.T) {
	for _, cfg := range invariantConfigs() {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			t.Parallel()
			serial := invariantOptions()
			sharded := invariantOptions()
			sharded.StepWorkers = 3

			rs := serial.Run(cfg)
			rp := sharded.Run(cfg)
			if !reflect.DeepEqual(rs, rp) {
				t.Fatalf("sharded stepping diverged from serial:\nserial:  %+v\nsharded: %+v", rs, rp)
			}
		})
	}
}

// TestShardedSteppingWorkerCountIrrelevant pins that the worker count only
// partitions the work: different shard counts give identical results.
func TestShardedSteppingWorkerCountIrrelevant(t *testing.T) {
	cfg := core.FullConfig(8, 2*core.MB, 8)
	base := invariantOptions()
	want := base.Run(cfg)
	for _, workers := range []int{2, 5, 16} {
		o := invariantOptions()
		o.StepWorkers = workers
		if got := o.Run(cfg); !reflect.DeepEqual(got, want) {
			t.Fatalf("StepWorkers=%d diverged from serial:\nserial: %+v\ngot:    %+v", workers, want, got)
		}
	}
}
