package experiments

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"oltpsim/internal/core"
)

// updateTimeline rewrites the golden timeline files instead of comparing:
//
//	go test ./internal/experiments/ -run TestTimelineGolden -update-timeline
var updateTimeline = flag.Bool("update-timeline", false, "rewrite the golden timeline testdata")

// goldenScenarioResult is the reference phased run the golden files pin: the
// burst profile on the fully integrated 8-way machine under the quick-sized
// invariant protocol.
func goldenScenarioResult(t *testing.T) ScenarioResult {
	t.Helper()
	o := invariantOptions()
	o.Scenario = compileProfile(t, burstProfile())
	return o.RunScenario(core.FullConfig(8, 2*core.MB, 8))
}

func checkGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *updateTimeline {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update-timeline): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from the golden file.\nIf the change is intentional, regenerate with -update-timeline.\ngot:\n%s\nwant:\n%s",
			filepath.Base(path), got, want)
	}
}

// TestTimelineGolden pins the timeline writers byte for byte, the same way
// figures_output.txt pins the figure renderers: the reference scenario's
// CSV and JSON timelines are committed as testdata and any drift — in the
// simulation, the segmentation, or the formatting — fails here.
func TestTimelineGolden(t *testing.T) {
	sr := goldenScenarioResult(t)

	var csv bytes.Buffer
	if err := WriteTimelineCSV(&csv, &sr); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, filepath.Join("testdata", "burst_timeline.csv"), csv.Bytes())

	var js bytes.Buffer
	if err := WriteTimelineJSON(&js, &sr); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(js.Bytes()) {
		t.Fatal("timeline JSON is not valid JSON")
	}
	checkGolden(t, filepath.Join("testdata", "burst_timeline.json"), js.Bytes())

	// The writers are pure functions of the result: a second rendering is
	// byte-identical.
	var csv2 bytes.Buffer
	if err := WriteTimelineCSV(&csv2, &sr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(csv.Bytes(), csv2.Bytes()) {
		t.Error("two CSV renderings of one result differ")
	}
}

// TestTimelineCSVShape pins the structural contract consumers parse by: the
// fixed header, one row per phase plus the trailing total row, and a total
// row that carries the whole-run transaction count.
func TestTimelineCSVShape(t *testing.T) {
	sr := goldenScenarioResult(t)
	var b bytes.Buffer
	if err := WriteTimelineCSV(&b, &sr); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(b.String(), "\n"), "\n")
	if len(lines) != 2+len(sr.Phases)+1 {
		t.Fatalf("got %d lines, want comment + header + %d phases + total", len(lines), len(sr.Phases))
	}
	if !strings.HasPrefix(lines[0], "# profile burst, config ") {
		t.Errorf("comment line %q", lines[0])
	}
	if lines[1] != timelineColumns {
		t.Errorf("header %q != %q", lines[1], timelineColumns)
	}
	last := lines[len(lines)-1]
	if !strings.HasPrefix(last, "-1,total,") {
		t.Errorf("total row %q", last)
	}
	for i, line := range lines[2 : 2+len(sr.Phases)] {
		if fields := strings.Split(line, ","); fields[1] != sr.Phases[i].Result.Name {
			t.Errorf("row %d names phase %q, want %q", i, fields[1], sr.Phases[i].Result.Name)
		}
	}
}

// TestTimelineLadderRender smoke-tests the figure family: every ladder
// configuration appears, every phase appears as a column, Base normalizes
// to 100.0 in each phase, and rendering is deterministic.
func TestTimelineLadderRender(t *testing.T) {
	o := invariantOptions()
	o.Scenario = compileProfile(t, burstProfile())
	f := RunTimelineLadder(o, 8, true)
	if len(f.Results) != 4 {
		t.Fatalf("ladder has %d results, want 4", len(f.Results))
	}
	out := f.Render()
	for _, want := range []string{"Base", "L2+MC", "All", "calm", "spike", "recover", "whole-run"} {
		if !strings.Contains(out, want) {
			t.Errorf("render is missing %q:\n%s", want, out)
		}
	}
	// The Base row normalizes to itself.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "Base") {
			if !strings.Contains(line, "100.0") {
				t.Errorf("Base row does not normalize to 100.0: %q", line)
			}
			break
		}
	}
	if out != f.Render() {
		t.Error("two renderings differ")
	}
}
