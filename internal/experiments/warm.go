package experiments

import (
	"bytes"
	"fmt"
	"sync"

	"oltpsim/internal/core"
	"oltpsim/internal/stats"
)

// WarmCache shares end-of-warmup machine snapshots between runs. Sweep
// points with an identical machine shape and workload seed pass through the
// same warm state, so the first run to arrive pays for the warmup and every
// later run forks from its snapshot. Restoring a snapshot is bit-identical
// to re-running the warmup (the snapshot-equivalence suite enforces this),
// so results never depend on whether the cache was hit. Safe for concurrent
// use by RunMany workers.
type WarmCache struct {
	mu sync.Mutex
	m  map[string]*warmEntry
}

type warmEntry struct {
	once sync.Once
	data []byte
	ok   bool
}

// NewWarmCache returns an empty cache.
func NewWarmCache() *WarmCache {
	return &WarmCache{m: make(map[string]*warmEntry)}
}

func (c *WarmCache) entry(key string) *warmEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[key]
	if !ok {
		e = &warmEntry{}
		c.m[key] = e
	}
	return e
}

// fetch returns the snapshot for key, invoking build at most once per key.
// Concurrent callers for the same key block until the first finishes.
func (c *WarmCache) fetch(key string, build func() ([]byte, bool)) ([]byte, bool) {
	e := c.entry(key)
	e.once.Do(func() {
		data, ok := build()
		c.mu.Lock()
		e.data, e.ok = data, ok
		c.mu.Unlock()
	})
	c.mu.Lock()
	defer c.mu.Unlock()
	return e.data, e.ok
}

// Seed installs a previously exported snapshot (no-op if the key is already
// populated), letting a CLI reload warm state persisted by an earlier
// process.
func (c *WarmCache) Seed(key string, data []byte) {
	e := c.entry(key)
	e.once.Do(func() {
		c.mu.Lock()
		e.data, e.ok = data, true
		c.mu.Unlock()
	})
}

// Entries returns a copy of every populated snapshot, keyed by warm key, for
// persistence.
func (c *WarmCache) Entries() map[string][]byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string][]byte, len(c.m))
	for k, e := range c.m {
		if e.ok {
			out[k] = e.data
		}
	}
	return out
}

// warmKey identifies the machine state at the end of warmup: the machine
// shape (configuration minus its display name) and everything that shapes
// the workload's trajectory to the end of warmup.
func (o Options) warmKey(cfg core.Config) string {
	return fmt.Sprintf("%s seed=%d warmup=%d quick=%t", cfg.Fingerprint(), o.Seed, o.WarmupTxns, o.Quick)
}

// runWarm executes the protocol against sys, reusing (or producing) the
// cached warm snapshot for cfg's shape. Any snapshot failure falls back to
// an ordinary cold warmup, so the result is always produced.
func (o Options) runWarm(cfg core.Config, sys *core.System) stats.RunResult {
	warmedHere := false
	snap, ok := o.WarmSnapshot.fetch(o.warmKey(cfg), func() ([]byte, bool) {
		sys.RunUntil(o.WarmupTxns)
		warmedHere = true
		var buf bytes.Buffer
		if err := sys.Save(&buf); err != nil {
			return nil, false
		}
		return buf.Bytes(), true
	})
	if !warmedHere {
		if !ok {
			sys.RunUntil(o.WarmupTxns)
		} else if err := sys.Load(bytes.NewReader(snap)); err != nil {
			// A failed restore leaves unspecified state: rebuild and warm.
			sys = o.build(cfg)
			sys.RunUntil(o.WarmupTxns)
		}
	}
	return sys.RunMeasured(o.MeasureTxns)
}
