package experiments

import (
	"runtime"
	"sync"

	"oltpsim/internal/core"
	"oltpsim/internal/stats"
)

// workers resolves Options.Workers to a concrete pool size for n jobs.
func (o Options) workers(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	return w
}

// RunMany executes every configuration under the protocol and returns the
// results in input order. Configurations are dispatched to a bounded worker
// pool (Options.Workers goroutines; default GOMAXPROCS). Because each
// simulation is a pure function of (config, seed) — no package shares
// mutable state between System instances — the result slice is bit-identical
// to running the same list serially; only wall-clock time changes.
func (o Options) RunMany(cfgs []core.Config) []stats.RunResult {
	results := make([]stats.RunResult, len(cfgs))
	w := o.workers(len(cfgs))
	if w <= 1 {
		for i := range cfgs {
			results[i] = o.Run(cfgs[i])
			if o.Progress != nil {
				o.Progress(i+1, len(cfgs))
			}
		}
		return results
	}
	// progress serializes the Options.Progress callback across workers and
	// turns completion events into the strictly increasing done count the
	// callback contract promises.
	var progressMu sync.Mutex
	completed := 0
	progress := func() {
		if o.Progress == nil {
			return
		}
		progressMu.Lock()
		completed++
		o.Progress(completed, len(cfgs))
		progressMu.Unlock()
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = o.Run(cfgs[i])
				progress()
			}
		}()
	}
	for i := range cfgs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}
