package experiments

import (
	"testing"

	"oltpsim/internal/core"
)

// TestClaimsRobustToSeed re-checks the two cheapest ordering claims under
// different workload seeds: the reproduction must not hinge on one lucky
// random stream.
func TestClaimsRobustToSeed(t *testing.T) {
	for _, seed := range []uint64{0xa11ce, 0xb0b5eed, 0xfeedf00d} {
		o := testOptions()
		o.Seed = seed
		dm8 := o.Run(core.BaseConfig(1, 8*core.MB, 1))
		a2 := o.Run(core.BaseConfig(1, 2*core.MB, 4))
		if a2.MissesPerTxn() >= dm8.MissesPerTxn() {
			t.Fatalf("seed %#x: 2M4w misses %.1f not below 8M1w %.1f",
				seed, a2.MissesPerTxn(), dm8.MissesPerTxn())
		}
		base := o.Run(core.BaseConfig(8, 8*core.MB, 1))
		full := o.Run(core.FullConfig(8, 2*core.MB, 8))
		if gain := base.CyclesPerTxn() / full.CyclesPerTxn(); gain < 1.2 {
			t.Fatalf("seed %#x: full-integration gain %.2f", seed, gain)
		}
	}
}
