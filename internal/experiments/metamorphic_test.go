package experiments

import (
	"fmt"
	"testing"

	"oltpsim/internal/core"
	"oltpsim/internal/stats"
)

// TestMetamorphicSeedOrderings is the metamorphic half of the invariant
// layer: changing the workload seed changes every absolute number, but the
// paper's qualitative conclusions are properties of the machine, not of one
// reference stream. Two distinct seeds must therefore preserve the
// orderings the figures argue from:
//
//  1. An integrated 2 MB 8-way L2 suffers no more misses per transaction
//     than the off-chip 8 MB direct-mapped Base (Figure 8: associativity
//     wins back what capacity loses, OLTP misses are mostly conflicts).
//  2. Full integration is at least as fast as stopping at L2+MC
//     (Figure 10: each integration step helps; the coherence/network step
//     is the largest).
//
// The test also proves the seed actually propagates: the absolute cycle
// counts of the two seeds must differ.
func TestMetamorphicSeedOrderings(t *testing.T) {
	o := QuickOptions()
	cfgs := []core.Config{
		label(core.BaseConfig(8, 8*core.MB, 1), "Base"),
		label(core.IntegratedL2Config(8, 2*core.MB, 8, core.OnChipSRAM), "L2"),
		label(core.L2MCConfig(8, 2*core.MB, 8), "L2+MC"),
		label(core.FullConfig(8, 2*core.MB, 8), "All"),
	}
	seeds := []uint64{0xA11CE, 0xB0B5EED}

	results := make(map[uint64][]stats.RunResult)
	for _, seed := range seeds {
		os := o
		os.Seed = seed
		results[seed] = os.RunMany(cfgs)
	}

	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%x", seed), func(t *testing.T) {
			base, l2, l2mc, all := results[seed][0], results[seed][1], results[seed][2], results[seed][3]

			// Ordering 1: on-chip 2M8w misses <= off-chip 8M1w misses.
			if l2.MissesPerTxn() > base.MissesPerTxn() {
				t.Errorf("2M8w on-chip misses/txn %.1f exceed 8M1w Base %.1f",
					l2.MissesPerTxn(), base.MissesPerTxn())
			}

			// Ordering 2: the integration ladder is monotone at both ends —
			// full integration beats L2+MC, and L2+MC beats Base.
			if all.CyclesPerTxn() > l2mc.CyclesPerTxn() {
				t.Errorf("full integration %.0f cycles/txn slower than L2+MC %.0f",
					all.CyclesPerTxn(), l2mc.CyclesPerTxn())
			}
			if l2mc.CyclesPerTxn() > base.CyclesPerTxn() {
				t.Errorf("L2+MC %.0f cycles/txn slower than Base %.0f",
					l2mc.CyclesPerTxn(), base.CyclesPerTxn())
			}
			// Equivalently in speedup form (what Figure 10 plots).
			if s, m := all.Speedup(&base), l2mc.Speedup(&base); s < m {
				t.Errorf("full-integration speedup %.3f below L2+MC-only %.3f", s, m)
			}
		})
	}

	// The seeds produced genuinely different workloads.
	a, b := results[seeds[0]], results[seeds[1]]
	same := true
	for i := range a {
		if a[i].Breakdown.NonIdle() != b[i].Breakdown.NonIdle() || a[i].Miss.Total() != b[i].Miss.Total() {
			same = false
		}
	}
	if same {
		t.Errorf("seeds %x and %x produced identical results; seed is not reaching the workload", seeds[0], seeds[1])
	}

	// And the same seed is reproducible: rerunning seed 0 of the Base config
	// must match bit for bit (the determinism contract the parallel runner
	// and the hot-path pooling rely on).
	os := o
	os.Seed = seeds[0]
	again := os.Run(cfgs[0])
	if again.Breakdown != a[0].Breakdown || again.Miss != a[0].Miss {
		t.Error("rerunning the same (config, seed) did not reproduce the result")
	}
}
