package experiments

import (
	"math"
	"reflect"
	"testing"

	"oltpsim/internal/core"
	"oltpsim/internal/scenario"
)

// TestScenarioPrefixExactness is the sharp half of the metamorphic pair:
// phase A of an A→B profile must equal — exactly, not approximately — the
// whole of a profile containing A alone. Until the first boundary the two
// schedules present identical parameters, so the two runs are the same RNG
// stream and the same machine, and the A segments must be deep-equal.
func TestScenarioPrefixExactness(t *testing.T) {
	cfg := core.FullConfig(8, 2*core.MB, 8)
	o := invariantOptions()

	ab := mixFlipProfile()
	aOnly := scenario.Profile{Name: "a-only", Phases: []scenario.Phase{ab.Phases[0]}}

	runAB := o
	runAB.Scenario = compileProfile(t, ab)
	srAB := runAB.RunScenario(cfg)

	runA := o
	runA.Scenario = compileProfile(t, aOnly)
	srA := runA.RunScenario(cfg)

	if !reflect.DeepEqual(srAB.Phases[0], srA.Phases[0]) {
		t.Errorf("phase A of A->B differs from A alone:\n got %+v\nwant %+v",
			srAB.Phases[0], srA.Phases[0])
	}
}

// TestScenarioPhaseVsSteadyTolerance is the soft half: phase B of an A→B
// profile runs on caches warmed by A, while a steady run of B's parameters
// warms on B itself — so the two B measurements differ, but only through
// warmed state, and their per-transaction costs must agree within a broad
// tolerance. A phase-switch bug that applies the wrong mix or skew shows up
// as a factor-level difference, far outside the band.
func TestScenarioPhaseVsSteadyTolerance(t *testing.T) {
	cfg := core.FullConfig(8, 2*core.MB, 8)
	o := invariantOptions()

	ab := mixFlipProfile()
	b := ab.Phases[1]

	runAB := o
	runAB.Scenario = compileProfile(t, ab)
	phaseB := runAB.RunScenario(cfg).Phases[1].Result

	bOnly := scenario.Profile{Name: "b-only", Phases: []scenario.Phase{b}}
	runB := o
	// Warm under B's own parameters (phase 0 governs warmup) and for as many
	// transactions as precede phase B in the A->B run, so both measurements
	// see comparably warmed caches.
	runB.WarmupTxns = o.WarmupTxns + ab.Phases[0].Txns
	runB.Scenario = compileProfile(t, bOnly)
	steadyB := runB.RunScenario(cfg).Total

	ratio := phaseB.CyclesPerTxn() / steadyB.CyclesPerTxn()
	if math.Abs(ratio-1) > 0.35 {
		t.Errorf("phase-B cycles/txn %.1f vs steady-B %.1f (ratio %.3f) outside 35%% warmed-state band",
			phaseB.CyclesPerTxn(), steadyB.CyclesPerTxn(), ratio)
	}
}

// TestScenarioPermutationConservesTotals permutes phase order: A→B and B→A
// retire the same transaction budget and both satisfy every whole-run
// conservation identity. The timelines legitimately differ (warmed state is
// order-dependent), but the accounting cannot.
func TestScenarioPermutationConservesTotals(t *testing.T) {
	cfg := core.FullConfig(8, 2*core.MB, 8)
	o := invariantOptions()

	ab := mixFlipProfile()
	ba := scenario.Profile{Name: "flip-rev", Phases: []scenario.Phase{ab.Phases[1], ab.Phases[0]}}

	runAB := o
	runAB.Scenario = compileProfile(t, ab)
	srAB := runAB.RunScenario(cfg)

	runBA := o
	runBA.Scenario = compileProfile(t, ba)
	srBA := runBA.RunScenario(cfg)

	if srAB.Total.Txns != srBA.Total.Txns {
		t.Errorf("permutation changed committed transactions: %d != %d", srAB.Total.Txns, srBA.Total.Txns)
	}
	for _, sr := range []*ScenarioResult{&srAB, &srBA} {
		for i := range sr.Phases {
			checkSegment(t, cfg, &sr.Phases[i].Result)
		}
		checkSegmentsFold(t, sr)
	}
}

// TestScenarioKnobsPropagate proves the phase parameters actually reach the
// generator — the identity suite alone would pass even if every knob were
// ignored. A read-heavy phase must retire reads, a scan phase scans, and a
// skewed phase concentrates misses relative to a uniform one.
func TestScenarioKnobsPropagate(t *testing.T) {
	cfg := core.FullConfig(8, 2*core.MB, 8)
	o := invariantOptions()
	o.Scenario = compileProfile(t, burstProfile())
	sr := o.RunScenario(cfg)

	calm, spike := &sr.Phases[0].Result, &sr.Phases[1].Result

	// The spike's mix draws reads and scans; updates alone write far more.
	// Stores per transaction must drop when most transactions stop writing.
	calmStores := float64(calm.Stores) / float64(calm.Txns)
	spikeStores := float64(spike.Stores) / float64(spike.Txns)
	if spikeStores >= calmStores {
		t.Errorf("read/scan spike stores/txn %.1f not below pure-update calm %.1f", spikeStores, calmStores)
	}
}
