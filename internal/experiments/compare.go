package experiments

import (
	"fmt"
	"sort"
	"strings"

	"oltpsim/internal/paper"
)

// ComparisonRow scores one bar of one metric against the published value.
type ComparisonRow struct {
	Figure   string
	Bar      string
	Metric   string // "exec" or "misses"
	Paper    float64
	Measured float64
	// RelDev is (measured - paper) / paper.
	RelDev float64
	// WithinTolerance applies the provenance-based tolerance.
	WithinTolerance bool
}

// Compare scores a regenerated figure against the paper's published values.
// Bars the paper does not pin are skipped.
func Compare(f *Figure) []ComparisonRow {
	exp, ok := paper.Expectations()[f.ID]
	if !ok {
		return nil
	}
	var rows []ComparisonRow
	add := func(metric string, want map[string]paper.Value, got func(int) float64) {
		for i := range f.Bars {
			v, ok := want[f.Bars[i].Name]
			if !ok {
				continue
			}
			measured := got(i)
			dev := 0.0
			if v.V != 0 {
				dev = (measured - v.V) / v.V
			}
			rows = append(rows, ComparisonRow{
				Figure:          f.ID,
				Bar:             f.Bars[i].Name,
				Metric:          metric,
				Paper:           v.V,
				Measured:        measured,
				RelDev:          dev,
				WithinTolerance: dev <= v.Tolerance() && dev >= -v.Tolerance(),
			})
		}
	}
	add("exec", exp.Exec, f.NormExec)
	add("misses", exp.Misses, f.NormMisses)
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].Metric != rows[j].Metric {
			return rows[i].Metric < rows[j].Metric
		}
		return false
	})
	return rows
}

// RenderComparison formats the comparison table, appending a score line.
func RenderComparison(rows []ComparisonRow) string {
	if len(rows) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — paper vs. measured\n", rows[0].Figure)
	fmt.Fprintf(&b, "%-14s %-7s %8s %9s %8s  %s\n", "config", "metric", "paper", "measured", "dev", "ok?")
	within := 0
	for _, r := range rows {
		mark := "OK"
		if !r.WithinTolerance {
			mark = "DEVIATES"
		} else {
			within++
		}
		fmt.Fprintf(&b, "%-14s %-7s %8.1f %9.1f %+7.1f%%  %s\n",
			r.Bar, r.Metric, r.Paper, r.Measured, 100*r.RelDev, mark)
	}
	fmt.Fprintf(&b, "score: %d/%d within tolerance\n", within, len(rows))
	return b.String()
}
