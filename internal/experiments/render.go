package experiments

import (
	"fmt"
	"strings"

	"oltpsim/internal/coherence"
)

// RenderExec formats a figure's left-hand graph: normalized execution time
// with the paper's breakdown (CPU, L2Hit, LocStall, RemStall split into
// clean and dirty).
func (f *Figure) RenderExec() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "normalized execution time (baseline %s = 100)\n", f.Bars[f.BaselineIdx].Name)
	fmt.Fprintf(&b, "%-14s %7s %7s %7s %7s %7s %7s\n", "config", "total", "CPU", "L2Hit", "Loc", "Rem", "Dirty")
	base := f.Baseline().CyclesPerTxn()
	for i := range f.Bars {
		r := &f.Bars[i]
		scale := 0.0
		if base > 0 && r.Txns > 0 {
			scale = 100 / (base * float64(r.Txns))
		}
		fmt.Fprintf(&b, "%-14s %7.1f %7.1f %7.1f %7.1f %7.1f %7.1f\n",
			r.Name, f.NormExec(i),
			float64(r.Breakdown.Busy)*scale,
			float64(r.Breakdown.L2Hit)*scale,
			float64(r.Breakdown.Local)*scale,
			float64(r.Breakdown.Remote)*scale,
			float64(r.Breakdown.RemoteDirty)*scale)
	}
	return b.String()
}

// RenderMisses formats a figure's right-hand graph: normalized L2 misses
// split instruction/data and local/2-hop/3-hop.
func (f *Figure) RenderMisses() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "normalized L2 misses (baseline %s = 100)\n", f.Bars[f.BaselineIdx].Name)
	fmt.Fprintf(&b, "%-14s %7s %7s %7s %7s %7s %7s\n",
		"config", "total", "I-Loc", "I-Rem", "D-Loc", "D-RemCl", "D-RemDy")
	base := f.Baseline().MissesPerTxn()
	for i := range f.Bars {
		r := &f.Bars[i]
		scale := 0.0
		if base > 0 && r.Txns > 0 {
			scale = 100 / (base * float64(r.Txns))
		}
		m := &r.Miss
		iLoc := float64(m.I[coherence.CatLocal])
		iRem := float64(m.I[coherence.CatRemoteClean] + m.I[coherence.CatRemoteDirty] + m.I[coherence.CatRemoteDirtyRAC])
		dLoc := float64(m.D[coherence.CatLocal])
		dCl := float64(m.D[coherence.CatRemoteClean])
		dDy := float64(m.D[coherence.CatRemoteDirty] + m.D[coherence.CatRemoteDirtyRAC])
		fmt.Fprintf(&b, "%-14s %7.1f %7.1f %7.1f %7.1f %7.1f %7.1f\n",
			r.Name, f.NormMisses(i), iLoc*scale, iRem*scale, dLoc*scale, dCl*scale, dDy*scale)
	}
	return b.String()
}

// RenderDetail appends per-bar raw diagnostics (hit rates, invalidation
// rates, RAC statistics) useful when validating against the paper's prose.
func (f *Figure) RenderDetail() string {
	var b strings.Builder
	for i := range f.Bars {
		r := &f.Bars[i]
		fmt.Fprintf(&b, "%-14s cyc/txn %8.0f  miss/txn %7.1f  L1I %5.1f%%  L1D %5.1f%%  kern %4.1f%%  util %4.1f%%",
			r.Name, r.CyclesPerTxn(), r.MissesPerTxn(),
			100*r.L1IMissRate, 100*r.L1DMissRate, 100*r.KernelFraction, 100*r.Utilization)
		if r.RACProbes > 0 {
			fmt.Fprintf(&b, "  RAC %4.1f%%", 100*r.RACHitRate())
		}
		fmt.Fprintf(&b, "  inval/store %.3f\n", r.InvalPerStore())
	}
	return b.String()
}
