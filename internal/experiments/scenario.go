package experiments

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"

	"oltpsim/internal/core"
	"oltpsim/internal/scenario"
	"oltpsim/internal/snapshot"
	"oltpsim/internal/stats"
)

// PhaseResult is one phase's segment of a scenario run.
type PhaseResult struct {
	// Index is the phase's position in the schedule.
	Index int
	// StartTxn is the committed-transaction offset (into the measurement)
	// at which the phase began.
	StartTxn uint64
	// Result is the segment between the phase's boundaries: Result.Name is
	// the phase name, Result.Txns the phase length, counters the
	// differences of cumulative collections at the two boundaries.
	Result stats.RunResult
}

// ScenarioResult is a scenario run segmented per phase. Phase segments sum
// to Total by construction (they are consecutive differences of one
// monotone counter stream), and the per-phase invariant suite re-checks the
// conservation laws inside every segment.
type ScenarioResult struct {
	// Profile is the schedule's display name.
	Profile string
	// Config is the machine configuration's name.
	Config string
	// Phases are the per-phase segments in schedule order.
	Phases []PhaseResult
	// Total is the whole measured run (the cumulative collection at the
	// last boundary), exactly what Options.Run would return.
	Total stats.RunResult
}

// phaseSegment cuts phase i's segment out of consecutive cumulative
// collections.
func phaseSegment(sched *scenario.Schedule, i int, cum, prev *stats.RunResult) PhaseResult {
	seg := stats.Sub(cum, prev)
	seg.Name = sched.PhaseName(i)
	var start uint64
	if i > 0 {
		start = sched.Boundary(i - 1)
	}
	return PhaseResult{Index: i, StartTxn: start, Result: seg}
}

// RunScenario executes one configuration under Options.Scenario and
// segments the measurement per phase: warm up (phase 0 governs warmup),
// reset, then stop at every phase boundary for a read-only cumulative
// collection. Stopping points are exact commit boundaries — RunUntil
// retires at most one commit per step — so every execution path (serial,
// sharded, fast-forward) lands on the same segments, and the whole-run
// Total is byte-identical to Options.Run of the same schedule.
func (o Options) RunScenario(cfg core.Config) ScenarioResult {
	sched := o.Scenario
	if sched == nil {
		panic("experiments: RunScenario requires Options.Scenario")
	}
	sys := o.build(cfg)
	sys.RunUntil(o.WarmupTxns)
	sys.ResetStats()
	base := sys.Committed()
	sr := ScenarioResult{Profile: sched.Name(), Config: cfg.Name}
	var prev stats.RunResult
	for i := 0; i < sched.NumPhases(); i++ {
		sys.RunUntil(base + sched.Boundary(i))
		cum := sys.Collect(cfg.Name, sys.Committed()-base)
		sr.Phases = append(sr.Phases, phaseSegment(sched, i, &cum, &prev))
		prev = cum
	}
	sr.Total = prev
	return sr
}

// scenarioCkptState is what a scenario checkpoint carries beyond the
// machine: protocol position plus the completed phase segments and the
// cumulative collection they were cut against.
type scenarioCkptState struct {
	phase       uint8
	measureBase uint64
	done        []PhaseResult
	prev        stats.RunResult
}

// saveScenarioCheckpoint writes the scenario checkpoint container: the
// generic protocol section, a scenario section (schedule fingerprint,
// completed phase segments, previous cumulative collection), and the
// machine state. Completed segments ride in the container because the
// machine's counters are cumulative — a resume could not re-derive earlier
// phase differences from state alone.
func saveScenarioCheckpoint(out io.Writer, sys *core.System, st *scenarioCkptState, fingerprint string) error {
	if !validPhase(st.phase) {
		return fmt.Errorf("experiments: invalid checkpoint phase %d", st.phase)
	}
	var buf bytes.Buffer
	if err := sys.Save(&buf); err != nil {
		return err
	}
	w := snapshot.NewWriter()
	e := w.Section("protocol")
	e.U8(st.phase)
	e.U64(st.measureBase)
	e = w.Section("scenario")
	e.String(fingerprint)
	e.Int(len(st.done))
	for i := range st.done {
		e.U64(st.done[i].StartTxn)
		st.done[i].Result.SaveState(e)
	}
	st.prev.SaveState(e)
	w.Section("system").U8s(buf.Bytes())
	return w.Emit(out)
}

// loadScenarioCheckpoint restores a scenario checkpoint into sys. The
// stored schedule fingerprint must match the resuming options' schedule:
// resuming one scenario under another would silently splice two different
// parameter streams.
func loadScenarioCheckpoint(in io.Reader, sys *core.System, wantFingerprint string) (scenarioCkptState, error) {
	var st scenarioCkptState
	r, err := snapshot.NewReader(in)
	if err != nil {
		return st, err
	}
	d, err := r.Section("protocol")
	if err != nil {
		return st, err
	}
	st.phase = d.U8()
	st.measureBase = d.U64()
	if err := d.Finish(); err != nil {
		return st, err
	}
	if !validPhase(st.phase) {
		return st, fmt.Errorf("experiments: checkpoint has invalid phase %d", st.phase)
	}
	d, err = r.Section("scenario")
	if err != nil {
		return st, err
	}
	fp := d.String()
	n := d.Int()
	if err := d.Err(); err != nil {
		return st, err
	}
	if fp != wantFingerprint {
		return st, errors.New("experiments: checkpoint was written under a different scenario")
	}
	if n < 0 || n > scenario.MaxPhases {
		return st, fmt.Errorf("experiments: checkpoint carries %d completed phases", n)
	}
	for i := 0; i < n; i++ {
		pr := PhaseResult{Index: i, StartTxn: d.U64()}
		if err := pr.Result.LoadState(d); err != nil {
			return st, err
		}
		st.done = append(st.done, pr)
	}
	if err := st.prev.LoadState(d); err != nil {
		return st, err
	}
	if err := d.Finish(); err != nil {
		return st, err
	}
	d, err = r.Section("system")
	if err != nil {
		return st, err
	}
	payload := d.U8s()
	if err := d.Finish(); err != nil {
		return st, err
	}
	if err := r.Finish(); err != nil {
		return st, err
	}
	if err := sys.Load(bytes.NewReader(payload)); err != nil {
		return st, err
	}
	return st, nil
}

// RunScenarioCheckpointed is RunScenario with the checkpoint/resume/cancel
// protocol of RunCheckpointed. The chunked RunUntil loop additionally stops
// at phase boundaries (which never changes results: chunked stepping lands
// on identical commit boundaries), and checkpoints carry the completed
// segments, so a run interrupted mid-phase and resumed produces a
// ScenarioResult byte-identical to an uninterrupted one.
func (o Options) RunScenarioCheckpointed(cfg core.Config, cr CheckpointRun) (ScenarioResult, uint64, error) {
	sched := o.Scenario
	if sched == nil {
		return ScenarioResult{}, 0, errors.New("experiments: RunScenarioCheckpointed requires Options.Scenario")
	}
	sys := o.build(cfg)
	st := scenarioCkptState{phase: CheckpointWarming}
	var steps0 uint64
	if cr.Resume != nil {
		loaded, err := loadScenarioCheckpoint(bytes.NewReader(cr.Resume), sys, sched.Fingerprint())
		if err != nil {
			return ScenarioResult{}, 0, fmt.Errorf("experiments: resuming scenario checkpoint: %w", err)
		}
		steps0 = sys.Steps()
		st.phase = loaded.phase
		if st.phase == CheckpointMeasuring {
			st.measureBase = loaded.measureBase
			st.done = loaded.done
			st.prev = loaded.prev
		}
	}
	canceled := func() bool { return cr.Canceled != nil && cr.Canceled() }
	executed := func() uint64 { return sys.Steps() - steps0 }
	write := func() error {
		if cr.Write == nil {
			return nil
		}
		var buf bytes.Buffer
		if err := saveScenarioCheckpoint(&buf, sys, &st, sched.Fingerprint()); err != nil {
			return err
		}
		return cr.Write(buf.Bytes())
	}

	if st.phase == CheckpointWarming {
		for sys.Committed() < o.WarmupTxns {
			if canceled() {
				return ScenarioResult{}, executed(), ErrCanceled
			}
			next := o.WarmupTxns
			if cr.Every > 0 && sys.Committed()+cr.Every < next {
				next = sys.Committed() + cr.Every
			}
			sys.RunUntil(next)
			if next < o.WarmupTxns && cr.Every > 0 {
				if err := write(); err != nil {
					return ScenarioResult{}, executed(), fmt.Errorf("experiments: writing checkpoint: %w", err)
				}
			}
		}
		st.phase = CheckpointWarmed
		if err := write(); err != nil {
			return ScenarioResult{}, executed(), fmt.Errorf("experiments: writing checkpoint: %w", err)
		}
	}

	total := sched.TotalTxns()
	if st.phase == CheckpointWarmed {
		st.measureBase = sys.Committed()
		sys.ResetStats()
		st.phase = CheckpointMeasuring
		if cr.OnProgress != nil {
			cr.OnProgress(0, total)
		}
	}

	for i := len(st.done); i < sched.NumPhases(); i++ {
		end := st.measureBase + sched.Boundary(i)
		for sys.Committed() < end {
			if canceled() {
				return ScenarioResult{}, executed(), ErrCanceled
			}
			next := end
			if cr.Every > 0 && sys.Committed()+cr.Every < next {
				next = sys.Committed() + cr.Every
			}
			sys.RunUntil(next)
			if cr.Every > 0 {
				if err := write(); err != nil {
					return ScenarioResult{}, executed(), fmt.Errorf("experiments: writing checkpoint: %w", err)
				}
			}
			if cr.OnProgress != nil {
				cr.OnProgress(sys.Committed()-st.measureBase, total)
			}
		}
		cum := sys.Collect(cfg.Name, sys.Committed()-st.measureBase)
		st.done = append(st.done, phaseSegment(sched, i, &cum, &st.prev))
		st.prev = cum
	}
	res := ScenarioResult{Profile: sched.Name(), Config: cfg.Name, Phases: st.done, Total: st.prev}
	return res, executed(), nil
}

// timelineColumns is the CSV header; WriteTimelineJSON mirrors the fields.
const timelineColumns = "phase_index,phase,start_txn,txns,cycles_per_txn,l2_misses_per_txn,miss_local,miss_remote_clean,miss_remote_dirty,l1i_miss_rate,l1d_miss_rate,kernel_fraction,utilization"

func timelineRow(b *bytes.Buffer, idx int, name string, start uint64, r *stats.RunResult) {
	fmt.Fprintf(b, "%d,%s,%d,%d,%.4f,%.4f,%d,%d,%d,%.6f,%.6f,%.6f,%.6f\n",
		idx, name, start, r.Txns,
		r.CyclesPerTxn(), r.MissesPerTxn(),
		r.Miss.Local(), r.Miss.RemoteClean(), r.Miss.RemoteDirty(),
		r.L1IMissRate, r.L1DMissRate, r.KernelFraction, r.Utilization)
}

// WriteTimelineCSV renders one scenario run as a per-phase CSV timeline,
// one row per phase plus a final whole-run row (phase_index -1, "total").
// Output is a pure function of the result — fixed header, fixed float
// precision — so a fixed seed pins it byte-for-byte (the golden timeline
// test and its CI step diff it like figures_output.txt).
func WriteTimelineCSV(w io.Writer, sr *ScenarioResult) error {
	var b bytes.Buffer
	fmt.Fprintf(&b, "# profile %s, config %s\n", sr.Profile, sr.Config)
	b.WriteString(timelineColumns)
	b.WriteByte('\n')
	for i := range sr.Phases {
		p := &sr.Phases[i]
		timelineRow(&b, p.Index, p.Result.Name, p.StartTxn, &p.Result)
	}
	timelineRow(&b, -1, "total", 0, &sr.Total)
	_, err := w.Write(b.Bytes())
	return err
}

// timelineJSONRow mirrors one CSV row.
type timelineJSONRow struct {
	Phase           string  `json:"phase"`
	StartTxn        uint64  `json:"start_txn"`
	Txns            uint64  `json:"txns"`
	CyclesPerTxn    float64 `json:"cycles_per_txn"`
	L2MissesPerTxn  float64 `json:"l2_misses_per_txn"`
	MissLocal       uint64  `json:"miss_local"`
	MissRemoteClean uint64  `json:"miss_remote_clean"`
	MissRemoteDirty uint64  `json:"miss_remote_dirty"`
	L1IMissRate     float64 `json:"l1i_miss_rate"`
	L1DMissRate     float64 `json:"l1d_miss_rate"`
	KernelFraction  float64 `json:"kernel_fraction"`
	Utilization     float64 `json:"utilization"`
}

func toTimelineJSONRow(name string, start uint64, r *stats.RunResult) timelineJSONRow {
	return timelineJSONRow{
		Phase:           name,
		StartTxn:        start,
		Txns:            r.Txns,
		CyclesPerTxn:    r.CyclesPerTxn(),
		L2MissesPerTxn:  r.MissesPerTxn(),
		MissLocal:       r.Miss.Local(),
		MissRemoteClean: r.Miss.RemoteClean(),
		MissRemoteDirty: r.Miss.RemoteDirty(),
		L1IMissRate:     r.L1IMissRate,
		L1DMissRate:     r.L1DMissRate,
		KernelFraction:  r.KernelFraction,
		Utilization:     r.Utilization,
	}
}

// WriteTimelineJSON renders the same timeline as indented JSON (ordered
// struct fields, so equally deterministic).
func WriteTimelineJSON(w io.Writer, sr *ScenarioResult) error {
	doc := struct {
		Profile string            `json:"profile"`
		Config  string            `json:"config"`
		Phases  []timelineJSONRow `json:"phases"`
		Total   timelineJSONRow   `json:"total"`
	}{Profile: sr.Profile, Config: sr.Config}
	for i := range sr.Phases {
		p := &sr.Phases[i]
		doc.Phases = append(doc.Phases, toTimelineJSONRow(p.Result.Name, p.StartTxn, &p.Result))
	}
	doc.Total = toTimelineJSONRow("total", 0, &sr.Total)
	enc, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	_, err = w.Write(enc)
	return err
}

// TimelineFigure is the timeline figure family: the Figure 10 integration
// ladder run under one scenario, asking how each integration step's benefit
// moves as the workload breathes phase to phase.
type TimelineFigure struct {
	// Profile is the schedule's display name.
	Profile string
	// Results holds one segmented run per ladder configuration, Base first.
	Results []ScenarioResult
}

// RunTimelineLadder runs the integration ladder (Base, L2, L2+MC, and with
// full the All configuration) under Options.Scenario.
func RunTimelineLadder(o Options, procs int, full bool) TimelineFigure {
	if o.Scenario == nil {
		panic("experiments: RunTimelineLadder requires Options.Scenario")
	}
	f := TimelineFigure{Profile: o.Scenario.Name()}
	for _, cfg := range integrationLadder(procs, full) {
		f.Results = append(f.Results, o.RunScenario(cfg))
	}
	return f
}

// Render presents the figure as two tables, configurations by phases: the
// paper's execution-time metric normalized to Base within each phase (how
// the ladder's benefit moves across phases), then absolute L2 misses per
// transaction.
func (f *TimelineFigure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Timeline: integration ladder vs. phase (profile %q)\n", f.Profile)
	if len(f.Results) == 0 {
		return b.String()
	}
	phases := f.Results[0].Phases
	writeHeader := func() {
		fmt.Fprintf(&b, "%-8s", "config")
		for i := range phases {
			fmt.Fprintf(&b, " %10s", phases[i].Result.Name)
		}
		fmt.Fprintf(&b, " %10s\n", "whole-run")
	}
	b.WriteString("\nnon-idle cycles/txn, normalized to Base within each phase (x100)\n")
	writeHeader()
	base := &f.Results[0]
	for r := range f.Results {
		res := &f.Results[r]
		fmt.Fprintf(&b, "%-8s", res.Config)
		for i := range res.Phases {
			norm := 0.0
			if bc := base.Phases[i].Result.CyclesPerTxn(); bc > 0 {
				norm = 100 * res.Phases[i].Result.CyclesPerTxn() / bc
			}
			fmt.Fprintf(&b, " %10.1f", norm)
		}
		norm := 0.0
		if bc := base.Total.CyclesPerTxn(); bc > 0 {
			norm = 100 * res.Total.CyclesPerTxn() / bc
		}
		fmt.Fprintf(&b, " %10.1f\n", norm)
	}
	b.WriteString("\nL2 misses per transaction\n")
	writeHeader()
	for r := range f.Results {
		res := &f.Results[r]
		fmt.Fprintf(&b, "%-8s", res.Config)
		for i := range res.Phases {
			fmt.Fprintf(&b, " %10.1f", res.Phases[i].Result.MissesPerTxn())
		}
		fmt.Fprintf(&b, " %10.1f\n", res.Total.MissesPerTxn())
	}
	return b.String()
}
