package experiments

import (
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"oltpsim/internal/core"
)

// progressSweep builds a small sweep of n distinct quick configurations.
func progressSweep(n int) []core.Config {
	var cfgs []core.Config
	shapes := []core.Config{
		core.BaseConfig(1, 1*core.MB, 1),
		core.IntegratedL2Config(1, 1*core.MB, 2, core.OnChipSRAM),
		core.BaseConfig(2, 1*core.MB, 1),
		core.IntegratedL2Config(2, 1*core.MB, 4, core.OnChipSRAM),
		core.FullConfig(2, 1*core.MB, 2),
	}
	for i := 0; i < n; i++ {
		cfgs = append(cfgs, shapes[i%len(shapes)])
	}
	return cfgs
}

// TestRunManyProgress pins the Options.Progress contract across the serial
// and parallel RunMany paths: the callback fires exactly once per
// configuration, the done count is strictly increasing from 1 to total,
// total is constant, calls are never concurrent, and no call arrives after
// RunMany has returned.
func TestRunManyProgress(t *testing.T) {
	cases := []struct {
		name    string
		workers int
		configs int
	}{
		{"serial one config", 1, 1},
		{"serial sweep", 1, 4},
		{"parallel sweep", 4, 5},
		{"more workers than configs", 8, 3},
		{"default workers", 0, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := QuickOptions()
			o.WarmupTxns, o.MeasureTxns = 30, 60
			o.Workers = tc.workers

			var (
				mu       sync.Mutex
				dones    []int
				totals   []int
				inflight int32
				returned atomic.Bool
			)
			o.Progress = func(done, total int) {
				if returned.Load() {
					t.Error("Progress called after RunMany returned")
				}
				if n := atomic.AddInt32(&inflight, 1); n != 1 {
					t.Errorf("Progress entered concurrently (%d in flight)", n)
				}
				mu.Lock()
				dones = append(dones, done)
				totals = append(totals, total)
				mu.Unlock()
				atomic.AddInt32(&inflight, -1)
			}

			res := o.RunMany(progressSweep(tc.configs))
			returned.Store(true)

			if len(res) != tc.configs {
				t.Fatalf("RunMany returned %d results, want %d", len(res), tc.configs)
			}
			if len(dones) != tc.configs {
				t.Fatalf("Progress fired %d times, want %d", len(dones), tc.configs)
			}
			for i, d := range dones {
				if d != i+1 {
					t.Errorf("call %d reported done=%d, want %d (monotonic 1..n)", i, d, i+1)
				}
			}
			for i, tot := range totals {
				if tot != tc.configs {
					t.Errorf("call %d reported total=%d, want %d", i, tot, tc.configs)
				}
			}
		})
	}
}

// TestRunManyProgressNil: a nil Progress is a no-op — same results, no
// panic — on both the serial and parallel paths.
func TestRunManyProgressNil(t *testing.T) {
	cfgs := progressSweep(3)
	o := QuickOptions()
	o.WarmupTxns, o.MeasureTxns = 30, 60

	o.Workers = 1
	serial := o.RunMany(cfgs)
	o.Workers = 4
	parallel := o.RunMany(cfgs)
	if !reflect.DeepEqual(serial, parallel) {
		t.Error("results with nil Progress diverge between serial and parallel paths")
	}
}

// TestRunManyProgressResultsUnchanged: attaching a Progress callback must
// not perturb the simulation — results stay byte-identical to a hook-free
// run, serial and parallel alike.
func TestRunManyProgressResultsUnchanged(t *testing.T) {
	cfgs := progressSweep(4)
	o := QuickOptions()
	o.WarmupTxns, o.MeasureTxns = 30, 60
	o.Workers = 1
	want := o.RunMany(cfgs)

	for _, workers := range []int{1, 4} {
		o.Workers = workers
		o.Progress = func(done, total int) {}
		if got := o.RunMany(cfgs); !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: results with Progress attached differ from hook-free run", workers)
		}
		o.Progress = nil
	}
}
