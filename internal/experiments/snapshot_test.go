package experiments

import (
	"bytes"
	"reflect"
	"testing"

	"oltpsim/internal/core"
	"oltpsim/internal/oltp"
)

// TestSnapshotEquivalence is the determinism contract for checkpoint/restore:
// for every machine shape the figures sweep, a run that saves its warm state,
// is discarded, and resumes in a freshly built machine must be bit-identical
// to an uninterrupted run — same RunResult, same final machine state down to
// every counter — and Save→Load→Save must reproduce the snapshot byte for
// byte.
func TestSnapshotEquivalence(t *testing.T) {
	o := invariantOptions()
	for _, cfg := range invariantConfigs() {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			t.Parallel()
			// Uninterrupted reference run through the public protocol.
			resA := o.Run(cfg)

			// The same run, checkpointing its warm state mid-flight. Save is
			// read-only, so this run must match the reference exactly.
			sysB := core.MustNewSystem(cfg, oltp.MustNewHarness(o.Params(cfg)))
			sysB.RunUntil(o.WarmupTxns)
			var warm bytes.Buffer
			if err := sysB.Save(&warm); err != nil {
				t.Fatalf("save warm state: %v", err)
			}
			resB := sysB.RunMeasured(o.MeasureTxns)
			resB.Name = cfg.Name
			if !reflect.DeepEqual(resA, resB) {
				t.Fatalf("saving a snapshot perturbed the run:\n%+v\nvs\n%+v", resA, resB)
			}
			var finalB bytes.Buffer
			if err := sysB.Save(&finalB); err != nil {
				t.Fatalf("save final state: %v", err)
			}

			// Restore into a fresh machine; the round trip must be byte-stable.
			sysC := core.MustNewSystem(cfg, oltp.MustNewHarness(o.Params(cfg)))
			if err := sysC.Load(bytes.NewReader(warm.Bytes())); err != nil {
				t.Fatalf("load warm state: %v", err)
			}
			var warm2 bytes.Buffer
			if err := sysC.Save(&warm2); err != nil {
				t.Fatalf("re-save warm state: %v", err)
			}
			if !bytes.Equal(warm.Bytes(), warm2.Bytes()) {
				t.Fatal("save-load-save warm state is not byte-stable")
			}

			// Resume: result and complete final machine state must match the
			// uninterrupted run bit for bit.
			resC := sysC.RunMeasured(o.MeasureTxns)
			resC.Name = cfg.Name
			if !reflect.DeepEqual(resB, resC) {
				t.Fatalf("resumed result diverges:\n%+v\nvs\n%+v", resB, resC)
			}
			var finalC bytes.Buffer
			if err := sysC.Save(&finalC); err != nil {
				t.Fatalf("save resumed final state: %v", err)
			}
			if !bytes.Equal(finalB.Bytes(), finalC.Bytes()) {
				t.Fatal("final machine state diverges after resume")
			}
			checkConservation(t, cfg, sysC, resC)
		})
	}
}

// TestSnapshotWarmReuse locks the Options.WarmSnapshot contract: a sweep run
// with warm-state sharing returns results bit-identical to the cold sweep,
// while identical machine shapes share one cached snapshot.
func TestSnapshotWarmReuse(t *testing.T) {
	o := invariantOptions()
	cfgs := []core.Config{
		core.BaseConfig(8, 8*core.MB, 1),
		label(core.BaseConfig(8, 8*core.MB, 1), "Base again"),
		core.FullConfig(8, 2*core.MB, 8),
	}
	cold := o.RunMany(cfgs)

	wo := o
	wo.WarmSnapshot = NewWarmCache()
	warm := wo.RunMany(cfgs)

	if !reflect.DeepEqual(cold, warm) {
		t.Fatalf("warm-reuse sweep diverges from cold sweep:\n%+v\nvs\n%+v", cold, warm)
	}
	if n := len(wo.WarmSnapshot.Entries()); n != 2 {
		t.Fatalf("cache holds %d snapshots, want 2 (two distinct machine shapes)", n)
	}

	// A second sweep against the populated cache is pure reuse and must
	// still match.
	again := wo.RunMany(cfgs)
	if !reflect.DeepEqual(cold, again) {
		t.Fatalf("second warm-reuse sweep diverges from cold sweep")
	}
}

// TestSnapshotCheckpointResume exercises the CLI checkpoint protocol: a run
// interrupted mid-measurement and resumed in a fresh machine reports the
// same result as an uninterrupted run.
func TestSnapshotCheckpointResume(t *testing.T) {
	o := invariantOptions()
	cfg := core.FullConfig(8, 2*core.MB, 8)
	resA := o.Run(cfg)

	h := oltp.MustNewHarness(o.Params(cfg))
	sys := core.MustNewSystem(cfg, h)
	sys.RunUntil(o.WarmupTxns)

	// Warm-phase checkpoint.
	var warmCk bytes.Buffer
	if err := SaveCheckpoint(&warmCk, sys, CheckpointWarmed, 0); err != nil {
		t.Fatalf("save warm checkpoint: %v", err)
	}

	// Keep running to mid-measurement and checkpoint again.
	base := h.Committed()
	sys.ResetStats()
	sys.RunUntil(base + o.MeasureTxns/2)
	var midCk bytes.Buffer
	if err := SaveCheckpoint(&midCk, sys, CheckpointMeasuring, base); err != nil {
		t.Fatalf("save mid checkpoint: %v", err)
	}

	// Resume from the warm checkpoint: full measurement phase.
	h2 := oltp.MustNewHarness(o.Params(cfg))
	sys2 := core.MustNewSystem(cfg, h2)
	phase, _, err := LoadCheckpoint(bytes.NewReader(warmCk.Bytes()), sys2)
	if err != nil {
		t.Fatalf("load warm checkpoint: %v", err)
	}
	if phase != CheckpointWarmed {
		t.Fatalf("warm checkpoint reports phase %d", phase)
	}
	resWarm := sys2.RunMeasured(o.MeasureTxns)
	resWarm.Name = cfg.Name
	if !reflect.DeepEqual(resA, resWarm) {
		t.Fatalf("warm-checkpoint resume diverges:\n%+v\nvs\n%+v", resA, resWarm)
	}

	// Resume from the mid-measurement checkpoint: continue without a reset.
	h3 := oltp.MustNewHarness(o.Params(cfg))
	sys3 := core.MustNewSystem(cfg, h3)
	phase, base3, err := LoadCheckpoint(bytes.NewReader(midCk.Bytes()), sys3)
	if err != nil {
		t.Fatalf("load mid checkpoint: %v", err)
	}
	if phase != CheckpointMeasuring || base3 != base {
		t.Fatalf("mid checkpoint reports phase %d base %d, want %d base %d",
			phase, base3, CheckpointMeasuring, base)
	}
	sys3.RunUntil(base3 + o.MeasureTxns)
	resMid := sys3.Collect(cfg.Name, h3.Committed()-base3)
	resMid.Name = cfg.Name
	if !reflect.DeepEqual(resA, resMid) {
		t.Fatalf("mid-measurement resume diverges:\n%+v\nvs\n%+v", resA, resMid)
	}
}

// TestSnapshotConfigMismatch: restoring into a machine of a different shape
// must fail loudly, never silently produce a franken-state.
func TestSnapshotConfigMismatch(t *testing.T) {
	o := invariantOptions()
	src := core.BaseConfig(8, 8*core.MB, 1)
	sys := o.build(src)
	sys.RunUntil(o.WarmupTxns)
	var snap bytes.Buffer
	if err := sys.Save(&snap); err != nil {
		t.Fatalf("save: %v", err)
	}
	other := o.build(core.FullConfig(8, 2*core.MB, 8))
	if err := other.Load(bytes.NewReader(snap.Bytes())); err == nil {
		t.Fatal("loading a snapshot into a different configuration succeeded")
	}
}
