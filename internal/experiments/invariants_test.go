package experiments

import (
	"fmt"
	"testing"

	"oltpsim/internal/core"
	"oltpsim/internal/oltp"
	"oltpsim/internal/stats"
)

// invariantOptions is the shortened protocol the conservation suite runs
// under: long enough that every counter class is exercised (all runs commit
// transactions, take remote misses on MP configs, and trigger upgrades),
// short enough that the whole table stays in test-suite budget.
func invariantOptions() Options {
	o := QuickOptions()
	o.WarmupTxns, o.MeasureTxns = 60, 120
	return o
}

// invariantConfigs is the table: one representative of every machine shape
// the figures sweep — off-chip and integrated L2s, uni- and multiprocessor,
// victim buffers, RAC, code replication, contention, CMP, and out-of-order
// cores — so a conservation bug in any path fails here, not in a figure.
func invariantConfigs() []core.Config {
	cfgs := []core.Config{
		core.BaseConfig(1, 8*core.MB, 1),
		core.BaseConfig(8, 8*core.MB, 1),
		core.ConservativeConfig(8),
		core.IntegratedL2Config(1, 2*core.MB, 8, core.OnChipSRAM),
		core.IntegratedL2Config(8, 2*core.MB, 8, core.OnChipSRAM),
		core.IntegratedL2Config(8, 8*core.MB, 8, core.OnChipDRAM),
		core.L2MCConfig(8, 2*core.MB, 8),
		core.FullConfig(8, 2*core.MB, 8),
		racConfig(1*core.MB, 4, true, false, "RAC NoRepl"),
		racConfig(1*core.MB, 4, true, true, "RAC Repl"),
	}
	vb := core.IntegratedL2Config(1, 2*core.MB, 1, core.OnChipSRAM)
	vb.VictimBuffers = 8
	vb.Name = "2M1w +VB"
	cfgs = append(cfgs, vb)

	cmp := core.FullConfig(8, 2*core.MB, 8)
	cmp.CoresPerChip = 4
	cmp.Name = "All 2x4 CMP"
	cfgs = append(cfgs, cmp)

	cont := core.FullConfig(8, 2*core.MB, 8)
	cont.Contention = true
	cont.Name = "All +contention"
	cfgs = append(cfgs, cont)

	ooo := core.BaseConfig(8, 8*core.MB, 1)
	ooo.OutOfOrder = true
	ooo.OOO = core.DefaultOOO()
	ooo.Name = "Base OOO"
	cfgs = append(cfgs, ooo)
	return cfgs
}

// checkConservation asserts every cross-counter identity the stats layer
// promises. sys is the system the result was collected from (still holding
// its post-measurement cache and directory counters).
func checkConservation(t *testing.T, cfg core.Config, sys *core.System, res stats.RunResult) {
	t.Helper()

	// The run did real work.
	if res.Txns == 0 {
		t.Fatal("no transactions committed during measurement")
	}
	if res.Breakdown.NonIdle() == 0 || res.L2Accesses == 0 || res.Miss.Total() == 0 {
		t.Fatalf("degenerate run: nonIdle=%d l2acc=%d misses=%d",
			res.Breakdown.NonIdle(), res.L2Accesses, res.Miss.Total())
	}

	// Miss-category decomposition: the figure renderers stack
	// local + 2-hop + 3-hop segments; they must reassemble to the total.
	if got := res.Miss.Local() + res.Miss.RemoteClean() + res.Miss.RemoteDirty(); got != res.Miss.Total() {
		t.Errorf("miss categories %d (local %d + clean %d + dirty %d) != total %d",
			got, res.Miss.Local(), res.Miss.RemoteClean(), res.Miss.RemoteDirty(), res.Miss.Total())
	}
	// Instruction/data split is the other decomposition of the same total.
	if got := res.Miss.ITotal() + res.Miss.DTotal(); got != res.Miss.Total() {
		t.Errorf("I misses %d + D misses %d != total %d", res.Miss.ITotal(), res.Miss.DTotal(), res.Miss.Total())
	}

	// Execution-time breakdown: the stacked-bar components must sum to the
	// non-idle total, and attributed subsets cannot exceed it.
	b := res.Breakdown
	if got := b.Busy + b.L2Hit + b.Local + b.Remote + b.RemoteDirty; got != b.NonIdle() {
		t.Errorf("breakdown components %d != NonIdle %d", got, b.NonIdle())
	}
	if b.Kernel > b.NonIdle() {
		t.Errorf("kernel cycles %d exceed non-idle cycles %d", b.Kernel, b.NonIdle())
	}
	if !cfg.OutOfOrder && b.Busy != b.Instructions {
		// In-order cores retire one instruction per busy cycle by definition.
		t.Errorf("in-order busy cycles %d != instructions %d", b.Busy, b.Instructions)
	}

	// Miss-flow conservation through the hierarchy. Every L1 miss issues an
	// L2 access (inclusive hierarchy), and L1-Shared writes fall through for
	// permission without an L1 miss, so L1 misses <= L2 accesses. Every
	// counted miss left the L2 tags, so table misses <= L2 tag misses
	// (victim-buffer hits are tag misses the table deliberately skips).
	cores := cfg.CoresPerChip
	if cores == 0 {
		cores = 1
	}
	var l1Misses, l2Accesses, l2Misses uint64
	for cpu := 0; cpu < cfg.Processors; cpu++ {
		l1Misses += sys.L1I(cpu).Misses() + sys.L1D(cpu).Misses()
		if cpu%cores == 0 {
			l2Accesses += sys.L2(cpu).Accesses
			l2Misses += sys.L2(cpu).Misses()
		}
	}
	if l2Accesses != res.L2Accesses {
		t.Errorf("summed L2 accesses %d != collected %d", l2Accesses, res.L2Accesses)
	}
	if l1Misses > l2Accesses {
		t.Errorf("L1 misses %d exceed L2 accesses %d", l1Misses, l2Accesses)
	}
	if res.Miss.Total() > l2Misses {
		t.Errorf("miss table total %d exceeds L2 tag misses %d", res.Miss.Total(), l2Misses)
	}

	// RAC accounting: every table-counted RAC hit is a local miss and a
	// subset of the RAC's own hit counter (write-upgrade RAC hits are
	// counted as upgrades instead).
	racHits := res.Miss.RACHitsI + res.Miss.RACHitsD
	if racHits > res.Miss.Local() {
		t.Errorf("RAC hits %d exceed local misses %d", racHits, res.Miss.Local())
	}
	if racHits > res.RACHits {
		t.Errorf("miss-table RAC hits %d exceed RAC hit counter %d", racHits, res.RACHits)
	}
	if res.RACHits > res.RACProbes {
		t.Errorf("RAC hits %d exceed probes %d", res.RACHits, res.RACProbes)
	}
	if cfg.RAC == nil && res.RACProbes != 0 {
		t.Errorf("RAC probes %d on a machine without a RAC", res.RACProbes)
	}

	// Uniprocessor machines have no one to communicate with: every remote
	// category, invalidation, and remote stall cycle must be zero.
	if cfg.Processors == 1 {
		if res.Miss.RemoteClean() != 0 || res.Miss.RemoteDirty() != 0 {
			t.Errorf("uniprocessor has remote misses: clean %d dirty %d",
				res.Miss.RemoteClean(), res.Miss.RemoteDirty())
		}
		if res.Invalidations != 0 {
			t.Errorf("uniprocessor has %d invalidations", res.Invalidations)
		}
		if b.Remote != 0 || b.RemoteDirty != 0 {
			t.Errorf("uniprocessor has remote stall cycles: %d + %d", b.Remote, b.RemoteDirty)
		}
	} else {
		// Multiprocessor OLTP always communicates (paper Section 4: the
		// majority of Base misses are dirty remote).
		if res.Miss.RemoteClean()+res.Miss.RemoteDirty() == 0 {
			t.Error("multiprocessor run saw no remote misses")
		}
	}

	// Directory cross-checks: invalidations were copied verbatim from the
	// directory, and a write-invalidate protocol cannot invalidate more
	// often than stores demand.
	if d := sys.Directory(); d != nil {
		if res.Invalidations != d.Stats.Invalidations {
			t.Errorf("collected invalidations %d != directory's %d", res.Invalidations, d.Stats.Invalidations)
		}
	}
	if res.WriteInvalOps > res.Stores {
		t.Errorf("invalidating writes %d exceed stores %d", res.WriteInvalOps, res.Stores)
	}

	// Derived ratios live in [0, 1].
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"L1I miss rate", res.L1IMissRate},
		{"L1D miss rate", res.L1DMissRate},
		{"kernel fraction", res.KernelFraction},
		{"utilization", res.Utilization},
		{"RAC hit rate", res.RACHitRate()},
	} {
		if f.v < 0 || f.v > 1 {
			t.Errorf("%s %.4f outside [0,1]", f.name, f.v)
		}
	}
}

// TestConservationInvariants runs the representative configuration table and
// checks every conservation identity on each result. This is the contract
// the hot-path optimizations must preserve: the counters are produced by the
// flattened Step/access path, so any double-count or dropped count shows up
// as a broken identity here.
func TestConservationInvariants(t *testing.T) {
	o := invariantOptions()
	for _, cfg := range invariantConfigs() {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			t.Parallel()
			h := oltp.MustNewHarness(o.Params(cfg))
			sys := core.MustNewSystem(cfg, h)
			res := sys.Run(o.WarmupTxns, o.MeasureTxns)
			res.Name = cfg.Name
			checkConservation(t, cfg, sys, res)
		})
	}
}

// TestConservationAcrossSeeds reruns a cheap uni and an 8-way config under
// three different seeds: the identities are properties of the accounting,
// not of one lucky reference stream.
func TestConservationAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep is the long form of TestConservationInvariants")
	}
	o := invariantOptions()
	cfgs := []core.Config{
		core.BaseConfig(1, 8*core.MB, 1),
		core.FullConfig(8, 2*core.MB, 8),
	}
	for _, seed := range []uint64{0x5eed1, 0x5eed2, 0x5eed3} {
		for _, cfg := range cfgs {
			seed, cfg := seed, cfg
			t.Run(fmt.Sprintf("%s/seed%x", cfg.Name, seed), func(t *testing.T) {
				t.Parallel()
				os := o
				os.Seed = seed
				h := oltp.MustNewHarness(os.Params(cfg))
				sys := core.MustNewSystem(cfg, h)
				res := sys.Run(os.WarmupTxns, os.MeasureTxns)
				res.Name = cfg.Name
				checkConservation(t, cfg, sys, res)
			})
		}
	}
}
