package experiments

import (
	"bytes"
	"reflect"
	"testing"

	"oltpsim/internal/core"
	"oltpsim/internal/oltp"
)

// TestScenarioExecutionPathIdentity is the three-way equivalence for phased
// runs: serial stepping, hit-run fast-forwarding, and epoch-sharded
// stepping must produce byte-identical ScenarioResults for every reference
// profile. Phase boundaries are commit counts and every execution path
// retires commits at the same steps, so the phase switches land on
// identical transactions.
func TestScenarioExecutionPathIdentity(t *testing.T) {
	cfg := core.FullConfig(8, 2*core.MB, 8)
	for _, p := range scenarioProfiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			o := invariantOptions()
			o.Scenario = compileProfile(t, p)

			ref := o.RunScenario(cfg)

			noFF := o
			noFF.NoFastForward = true
			if got := noFF.RunScenario(cfg); !reflect.DeepEqual(got, ref) {
				t.Errorf("per-reference stepping diverged from fast-forwarded run")
			}

			sharded := o
			sharded.StepWorkers = 4
			if got := sharded.RunScenario(cfg); !reflect.DeepEqual(got, ref) {
				t.Errorf("sharded stepping diverged from serial run")
			}
		})
	}
}

// TestScenarioSinglePhaseIsSteadyState pins the opt-in contract at its
// sharpest point: a single-phase pure-update profile must reproduce the
// steady-state run byte for byte — the identical RunResult and the
// identical final machine state — because the degenerate schedule draws
// from exactly the same RNG stream as the steady generator.
func TestScenarioSinglePhaseIsSteadyState(t *testing.T) {
	cfg := core.FullConfig(8, 2*core.MB, 8)
	o := invariantOptions()

	steady := o
	sysSteady := core.MustNewSystem(cfg, oltp.MustNewHarness(steady.Params(cfg)))
	sysSteady.SetStepWorkers(steady.StepWorkers)
	sysSteady.SetFastForward(true)
	refRes := sysSteady.Run(steady.WarmupTxns, steady.MeasureTxns)
	refRes.Name = cfg.Name

	phased := o
	phased.Scenario = compileProfile(t, steadyProfile(o.MeasureTxns))
	sysPhased := core.MustNewSystem(cfg, oltp.MustNewHarness(phased.Params(cfg)))
	sysPhased.SetStepWorkers(phased.StepWorkers)
	sysPhased.SetFastForward(true)
	sysPhased.RunUntil(phased.WarmupTxns)
	sysPhased.ResetStats()
	base := sysPhased.Committed()
	sysPhased.RunUntil(base + phased.Scenario.TotalTxns())
	gotRes := sysPhased.Collect(cfg.Name, sysPhased.Committed()-base)

	if !reflect.DeepEqual(gotRes, refRes) {
		t.Errorf("single-phase scenario result differs from steady state:\n got %+v\nwant %+v", gotRes, refRes)
	}

	var refState, gotState bytes.Buffer
	if err := sysSteady.Save(&refState); err != nil {
		t.Fatal(err)
	}
	if err := sysPhased.Save(&gotState); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refState.Bytes(), gotState.Bytes()) {
		t.Errorf("final machine state differs: steady %d bytes, phased %d bytes",
			refState.Len(), gotState.Len())
	}

	// The segmented runner reports the same total.
	sr := phased.RunScenario(cfg)
	if !reflect.DeepEqual(sr.Total, refRes) {
		t.Errorf("RunScenario total differs from steady-state result")
	}
	if len(sr.Phases) != 1 || !reflect.DeepEqual(sr.Phases[0].Result.Txns, refRes.Txns) {
		t.Errorf("degenerate schedule did not produce one full-length segment")
	}
}

// TestScenarioCheckpointResumeEquivalence kills a phased run mid-phase and
// resumes it from a checkpoint written inside phase two: the resumed run's
// ScenarioResult — including the segments completed before the kill, which
// ride in the checkpoint container — must equal the uninterrupted run's
// exactly.
func TestScenarioCheckpointResumeEquivalence(t *testing.T) {
	cfg := core.FullConfig(8, 2*core.MB, 8)
	o := invariantOptions()
	o.Scenario = compileProfile(t, burstProfile())

	ref := o.RunScenario(cfg)

	var checkpoints [][]byte
	full, _, err := o.RunScenarioCheckpointed(cfg, CheckpointRun{
		Every: 17,
		Write: func(data []byte) error {
			checkpoints = append(checkpoints, append([]byte(nil), data...))
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(full, ref) {
		t.Fatalf("checkpointed run differs from plain run")
	}
	if len(checkpoints) < 4 {
		t.Fatalf("expected several checkpoints, got %d", len(checkpoints))
	}

	// Resume from every checkpoint — end-of-warmup, mid-phase, and
	// end-of-phase snapshots alike must all converge on the same result.
	for i, ck := range checkpoints {
		resumed, _, err := o.RunScenarioCheckpointed(cfg, CheckpointRun{Resume: ck})
		if err != nil {
			t.Fatalf("resuming checkpoint %d: %v", i, err)
		}
		if !reflect.DeepEqual(resumed, ref) {
			t.Errorf("resume from checkpoint %d diverged from uninterrupted run", i)
		}
	}
}

// TestScenarioCheckpointFingerprintGuard rejects resuming one scenario's
// checkpoint under a different schedule: splicing two parameter streams
// would silently corrupt the phase clock.
func TestScenarioCheckpointFingerprintGuard(t *testing.T) {
	cfg := core.BaseConfig(1, 8*core.MB, 1)
	o := invariantOptions()
	o.Scenario = compileProfile(t, mixFlipProfile())

	var last []byte
	if _, _, err := o.RunScenarioCheckpointed(cfg, CheckpointRun{
		Every: 40,
		Write: func(data []byte) error {
			last = append(last[:0], data...)
			return nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	if last == nil {
		t.Fatal("no checkpoint written")
	}

	other := o
	other.Scenario = compileProfile(t, skewDriftProfile())
	if _, _, err := other.RunScenarioCheckpointed(cfg, CheckpointRun{Resume: last}); err == nil {
		t.Fatal("resuming under a different scenario was accepted")
	}
}
