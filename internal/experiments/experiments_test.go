package experiments

import (
	"testing"

	"oltpsim/internal/core"
)

// testOptions is deliberately small: these tests check the *direction* of
// every headline claim of the paper on the scaled-down database; the
// benchmarks regenerate the full figures.
func testOptions() Options {
	o := QuickOptions()
	o.WarmupTxns = 250
	o.MeasureTxns = 500
	return o
}

// Claim: a 2 MB 4-way cache has fewer misses than an 8 MB direct-mapped
// cache (the paper's central associativity result, Sections 1/3).
func TestAssociativityBeatsCapacity(t *testing.T) {
	o := testOptions()
	dm8 := o.Run(core.BaseConfig(1, 8*core.MB, 1))
	a2 := o.Run(core.BaseConfig(1, 2*core.MB, 4))
	if a2.MissesPerTxn() >= dm8.MissesPerTxn() {
		t.Fatalf("2M 4-way misses %.1f not below 8M direct-mapped %.1f",
			a2.MissesPerTxn(), dm8.MissesPerTxn())
	}
}

// Claim: the miss reduction from 1M 1-way to 8M 4-way is large (the paper
// reports ~50x at full scale; direction and order of magnitude here).
func TestMissReductionAcrossSweep(t *testing.T) {
	o := testOptions()
	// The residual-miss floor needs real steady state: warm longer than the
	// other direction-only tests.
	o.WarmupTxns = 2000
	small := o.Run(core.BaseConfig(1, 1*core.MB, 1))
	big := o.Run(core.BaseConfig(1, 8*core.MB, 4))
	ratio := small.MissesPerTxn() / big.MissesPerTxn()
	if ratio < 6 {
		t.Fatalf("1M1w/8M4w miss ratio %.1f; want a large reduction", ratio)
	}
}

// Claim: integrating the L2 improves uniprocessor performance substantially
// (paper: ~1.4x), and integrating the MC adds essentially nothing on top
// (paper Section 4).
func TestUniprocessorIntegrationLadder(t *testing.T) {
	o := testOptions()
	base := o.Run(core.BaseConfig(1, 8*core.MB, 1))
	l2 := o.Run(core.IntegratedL2Config(1, 2*core.MB, 8, core.OnChipSRAM))
	l2mc := o.Run(core.L2MCConfig(1, 2*core.MB, 8))
	gain := base.CyclesPerTxn() / l2.CyclesPerTxn()
	if gain < 1.2 {
		t.Fatalf("uniprocessor L2 integration gain %.2f; paper reports ~1.4x", gain)
	}
	mcGain := l2.CyclesPerTxn() / l2mc.CyclesPerTxn()
	if mcGain < 0.97 || mcGain > 1.1 {
		t.Fatalf("MC integration changed uniprocessor time by %.2fx; paper: virtually nothing", mcGain)
	}
}

// Claim: full integration gains ~1.4x on the multiprocessor, about half from
// the L2 and half from the dirty-remote latency, and the split L2+MC design
// performs like L2-only (paper Sections 4-5).
func TestMultiprocessorIntegrationLadder(t *testing.T) {
	o := testOptions()
	base := o.Run(core.BaseConfig(8, 8*core.MB, 1))
	l2 := o.Run(core.IntegratedL2Config(8, 2*core.MB, 8, core.OnChipSRAM))
	l2mc := o.Run(core.L2MCConfig(8, 2*core.MB, 8))
	full := o.Run(core.FullConfig(8, 2*core.MB, 8))

	fullGain := base.CyclesPerTxn() / full.CyclesPerTxn()
	if fullGain < 1.25 {
		t.Fatalf("full integration gain %.2f; paper reports ~1.43x", fullGain)
	}
	l2Gain := base.CyclesPerTxn() / l2.CyclesPerTxn()
	if l2Gain < 1.05 {
		t.Fatalf("L2 integration gain %.2f; paper reports ~1.2x", l2Gain)
	}
	restGain := l2.CyclesPerTxn() / full.CyclesPerTxn()
	if restGain < 1.05 {
		t.Fatalf("MC+CC/NR integration gain %.2f; paper reports ~1.2x", restGain)
	}
	split := l2mc.CyclesPerTxn() / l2.CyclesPerTxn()
	if split < 0.95 || split > 1.10 {
		t.Fatalf("L2+MC vs L2 ratio %.2f; paper: virtually identical", split)
	}
}

// Claim: multiprocessor OLTP is sensitive to remote latencies — the
// Conservative Base is clearly slower than Base (paper Section 3) — and the
// full-vs-conservative gain reaches ~1.5x (Section 5).
func TestConservativeSensitivity(t *testing.T) {
	o := testOptions()
	cons := o.Run(core.ConservativeConfig(8))
	base := o.Run(core.BaseConfig(8, 8*core.MB, 4))
	if cons.CyclesPerTxn() <= base.CyclesPerTxn() {
		t.Fatal("conservative base not slower than base on the multiprocessor")
	}
	full := o.Run(core.FullConfig(8, 2*core.MB, 8))
	if gain := cons.CyclesPerTxn() / full.CyclesPerTxn(); gain < 1.35 {
		t.Fatalf("full vs conservative gain %.2f; paper reports ~1.56x", gain)
	}
}

// Claim: most remaining multiprocessor misses are communication, with the
// majority dirty 3-hop, and better caching *increases* the absolute number
// of 3-hop misses (paper Section 3).
func TestThreeHopBehaviour(t *testing.T) {
	o := testOptions()
	small := o.Run(core.BaseConfig(8, 1*core.MB, 1))
	big := o.Run(core.BaseConfig(8, 8*core.MB, 4))
	if big.Miss.RemoteDirty() <= big.Miss.RemoteClean() {
		t.Fatalf("8M4w: 3-hop %d not dominating 2-hop %d",
			big.Miss.RemoteDirty(), big.Miss.RemoteClean())
	}
	dirtySmall := float64(small.Miss.RemoteDirty()) / float64(small.Txns)
	dirtyBig := float64(big.Miss.RemoteDirty()) / float64(big.Txns)
	if dirtyBig <= dirtySmall*0.95 {
		t.Fatalf("3-hop misses per txn fell from %.1f to %.1f with bigger caches; paper says they increase",
			dirtySmall, dirtyBig)
	}
	if small.Miss.RemoteClean() <= big.Miss.RemoteClean() {
		t.Fatal("2-hop misses did not decrease with bigger caches")
	}
}

// Claim: the RAC changes the miss mix (remote -> local) without changing the
// total, increases 3-hop misses, and instruction replication makes
// instruction misses local (paper Section 6 / Figure 11).
func TestRACMissMix(t *testing.T) {
	o := testOptions()
	mk := func(withRAC, repl bool) core.Config {
		cfg := core.FullConfig(8, 1*core.MB, 4)
		if withRAC {
			cfg.RAC = &core.RACConfig{SizeBytes: 8 * core.MB, Assoc: 8}
		}
		cfg.CodeReplication = repl
		return cfg
	}
	noRAC := o.Run(mk(false, false))
	withRAC := o.Run(mk(true, false))

	tolerance := 0.12 * noRAC.MissesPerTxn()
	if diff := withRAC.MissesPerTxn() - noRAC.MissesPerTxn(); diff > tolerance || diff < -tolerance {
		t.Fatalf("RAC changed total misses: %.1f vs %.1f", withRAC.MissesPerTxn(), noRAC.MissesPerTxn())
	}
	if withRAC.Miss.Local() <= noRAC.Miss.Local() {
		t.Fatal("RAC did not convert remote misses to local")
	}
	if withRAC.Miss.RemoteClean() >= noRAC.Miss.RemoteClean() {
		t.Fatal("RAC did not reduce 2-hop misses")
	}
	if withRAC.Miss.RemoteDirty() <= noRAC.Miss.RemoteDirty() {
		t.Fatal("RAC did not increase 3-hop misses (the paper's key RAC result)")
	}
	if withRAC.RACHitRate() <= 0.05 {
		t.Fatalf("RAC hit rate %.2f degenerate", withRAC.RACHitRate())
	}

	// Replication moves instruction misses local.
	noRACRepl := o.Run(mk(false, true))
	if noRACRepl.Miss.I[1]+noRACRepl.Miss.I[2]+noRACRepl.Miss.I[3] >= noRAC.Miss.I[1]+noRAC.Miss.I[2]+noRAC.Miss.I[3] {
		t.Fatal("replication did not reduce remote instruction misses")
	}
}

// Claim: with a 2 MB 8-way L2 the RAC adds nothing (paper Figure 12: hit
// rate < 10%, performance unchanged).
func TestRACUselessWithBigL2(t *testing.T) {
	o := testOptions()
	mk := func(withRAC bool) core.Config {
		cfg := core.FullConfig(8, 2*core.MB, 8)
		cfg.CodeReplication = true
		if withRAC {
			cfg.RAC = &core.RACConfig{SizeBytes: 8 * core.MB, Assoc: 8}
		}
		return cfg
	}
	noRAC := o.Run(mk(false))
	withRAC := o.Run(mk(true))
	ratio := withRAC.CyclesPerTxn() / noRAC.CyclesPerTxn()
	if ratio < 0.95 || ratio > 1.05 {
		t.Fatalf("RAC with 2M L2 changed performance by %.2fx; paper: almost the same", ratio)
	}
}

// Claim: out-of-order execution gains ~1.4x uni / ~1.3x MP, and the relative
// integration gains are virtually identical to in-order (paper Section 7).
func TestOOORelativeGains(t *testing.T) {
	o := testOptions()
	ooo := func(cfg core.Config) core.Config {
		cfg.OutOfOrder = true
		cfg.OOO = core.DefaultOOO()
		return cfg
	}
	baseIO := o.Run(core.BaseConfig(1, 8*core.MB, 1))
	baseOOO := o.Run(ooo(core.BaseConfig(1, 8*core.MB, 1)))
	gain := baseIO.CyclesPerTxn() / baseOOO.CyclesPerTxn()
	if gain < 1.15 || gain > 1.9 {
		t.Fatalf("uniprocessor OOO gain %.2f; paper reports ~1.4x", gain)
	}

	l2IO := o.Run(core.IntegratedL2Config(1, 2*core.MB, 8, core.OnChipSRAM))
	l2OOO := o.Run(ooo(core.IntegratedL2Config(1, 2*core.MB, 8, core.OnChipSRAM)))
	relIO := baseIO.CyclesPerTxn() / l2IO.CyclesPerTxn()
	relOOO := baseOOO.CyclesPerTxn() / l2OOO.CyclesPerTxn()
	if diff := relOOO/relIO - 1; diff > 0.15 || diff < -0.15 {
		t.Fatalf("relative integration gains differ: in-order %.2f vs OOO %.2f", relIO, relOOO)
	}
}

// Claim: kernel activity is a significant component (~25% in the paper) and
// processor utilization is low (~17-30%).
func TestWorkloadComposition(t *testing.T) {
	o := testOptions()
	res := o.Run(core.BaseConfig(1, 8*core.MB, 1))
	if res.KernelFraction < 0.10 || res.KernelFraction > 0.45 {
		t.Fatalf("kernel fraction %.2f outside plausible band", res.KernelFraction)
	}
	mp := o.Run(core.BaseConfig(8, 8*core.MB, 1))
	if mp.Utilization < 0.10 || mp.Utilization > 0.45 {
		t.Fatalf("MP utilization %.2f; paper reports ~17-30%%", mp.Utilization)
	}
}

// The figure plumbing itself.
func TestFigureNormalization(t *testing.T) {
	o := testOptions()
	fig := runAll(o, "t", "normalization check", []core.Config{
		core.BaseConfig(1, 1*core.MB, 1),
		core.BaseConfig(1, 8*core.MB, 4),
	})
	if fig.NormExec(0) != 100 || fig.NormMisses(0) != 100 {
		t.Fatal("baseline not normalized to 100")
	}
	if fig.NormExec(1) >= 100 || fig.NormMisses(1) >= 100 {
		t.Fatal("better configuration not below baseline")
	}
	if fig.RenderExec() == "" || fig.RenderMisses() == "" || fig.RenderDetail() == "" {
		t.Fatal("rendering empty")
	}
}
