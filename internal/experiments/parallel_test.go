package experiments

import (
	"reflect"
	"testing"
)

// parallelTestOptions is small enough to run a figure several times in a
// test, but long enough that any cross-goroutine contamination of simulator
// state would have room to show up.
func parallelTestOptions() Options {
	o := QuickOptions()
	o.WarmupTxns = 80
	o.MeasureTxns = 200
	return o
}

// TestParallelMatchesSerial is the determinism harness: a figure run through
// the worker pool must be indistinguishable from the serial run — identical
// stats.RunResult per bar and byte-identical rendered tables. This also
// guards against accidental shared mutable state (package-level maps, shared
// RNGs) creeping in between System instances.
func TestParallelMatchesSerial(t *testing.T) {
	figs := map[string]func(Options) Figure{
		"Fig10Uni": Fig10Uni,
		"Fig11":    Fig11,
	}
	for name, run := range figs {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			serial := parallelTestOptions()
			serial.Workers = 1
			par := parallelTestOptions()
			par.Workers = 4

			fs := run(serial)
			fp := run(par)

			if len(fs.Bars) != len(fp.Bars) {
				t.Fatalf("bar count differs: serial %d, parallel %d", len(fs.Bars), len(fp.Bars))
			}
			for i := range fs.Bars {
				if !reflect.DeepEqual(fs.Bars[i], fp.Bars[i]) {
					t.Errorf("bar %d (%s) differs between serial and parallel runs:\nserial:   %+v\nparallel: %+v",
						i, fs.Bars[i].Name, fs.Bars[i], fp.Bars[i])
				}
			}
			if fs.RenderExec() != fp.RenderExec() {
				t.Error("RenderExec output differs between serial and parallel runs")
			}
			if fs.RenderMisses() != fp.RenderMisses() {
				t.Error("RenderMisses output differs between serial and parallel runs")
			}
		})
	}
}

// TestRunManyOrderAndDefaults checks that RunMany preserves input order
// regardless of completion order, and that the Workers defaulting rules
// (0 -> GOMAXPROCS, 1 -> serial, n -> n, n > len(cfgs)) all produce the
// same results as the serial reference.
func TestRunManyOrderAndDefaults(t *testing.T) {
	o := parallelTestOptions()
	cfgs := offChipSweep(1)[:4] // heterogeneous runtimes: 1M..8M caches
	var want []string
	for _, c := range cfgs {
		want = append(want, c.Name)
	}

	o.Workers = 1
	ref := o.RunMany(cfgs)

	for _, workers := range []int{0, 2, 8} {
		o.Workers = workers
		res := o.RunMany(cfgs)
		if len(res) != len(cfgs) {
			t.Fatalf("Workers=%d: got %d results, want %d", workers, len(res), len(cfgs))
		}
		var names []string
		for i := range res {
			names = append(names, res[i].Name)
		}
		if !reflect.DeepEqual(names, want) {
			t.Fatalf("Workers=%d: result order %v, want %v", workers, names, want)
		}
		if !reflect.DeepEqual(res, ref) {
			t.Fatalf("Workers=%d: results diverge from the serial reference", workers)
		}
	}
}
