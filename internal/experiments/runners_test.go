package experiments

import "testing"

// TestRunnersProduceWellFormedFigures exercises the figure runners
// themselves (bar order, labels, normalization) on tiny runs; the full-scale
// outputs are produced by the benchmarks.
func TestRunnersProduceWellFormedFigures(t *testing.T) {
	o := QuickOptions()
	o.WarmupTxns, o.MeasureTxns = 60, 120

	t.Run("Fig11", func(t *testing.T) {
		f := Fig11(o)
		want := []string{"NoRAC NoRepl", "RAC NoRepl", "NoRAC Repl", "RAC Repl"}
		if len(f.Bars) != len(want) {
			t.Fatalf("bars %d", len(f.Bars))
		}
		for i, w := range want {
			if f.Bars[i].Name != w {
				t.Fatalf("bar %d = %q, want %q", i, f.Bars[i].Name, w)
			}
		}
		if f.NormMisses(0) != 100 {
			t.Fatal("baseline misses not 100")
		}
	})

	t.Run("Fig13Uni", func(t *testing.T) {
		f := Fig13Uni(o)
		if f.BaselineIdx != 1 || f.Bars[1].Name != "Base OOO" {
			t.Fatalf("baseline %d (%s), want Base OOO", f.BaselineIdx, f.Bars[f.BaselineIdx].Name)
		}
		// In-order must be slower than the OOO baseline.
		if f.NormExec(0) <= 100 {
			t.Fatalf("in-order %0.f not above OOO baseline", f.NormExec(0))
		}
	})

	t.Run("Fig10Uni", func(t *testing.T) {
		f := Fig10Uni(o)
		if len(f.Bars) != 3 {
			t.Fatalf("bars %d", len(f.Bars))
		}
		if f.NormExec(1) >= 100 {
			t.Fatal("L2 integration did not improve the quick run")
		}
	})
}
