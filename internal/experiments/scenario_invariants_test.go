package experiments

import (
	"testing"

	"oltpsim/internal/core"
	"oltpsim/internal/scenario"
	"oltpsim/internal/stats"
)

// The reference profiles the scenario suite runs: a transaction-mix flip, a
// skew drift with a ramp and a shrunken working set, a three-phase burst
// that exercises every phase knob at once (mix, ramp, skew, scans), and the
// single-phase degenerate that must reproduce steady state byte for byte.

func mixFlipProfile() scenario.Profile {
	return scenario.Profile{Name: "mix-flip", Phases: []scenario.Phase{
		{Name: "writes", Txns: 60},
		{Name: "reads", Txns: 60, Mix: &scenario.Mix{Update: 1, Read: 2}},
	}}
}

func skewDriftProfile() scenario.Profile {
	return scenario.Profile{Name: "skew-drift", Phases: []scenario.Phase{
		{Name: "uniform", Txns: 50},
		{Name: "hot", Txns: 70, RampTxns: 20, Skew: 0.9, WorkingSet: 0.5},
	}}
}

func burstProfile() scenario.Profile {
	return scenario.Profile{Name: "burst", Phases: []scenario.Phase{
		{Name: "calm", Txns: 40},
		{Name: "spike", Txns: 50, RampTxns: 10, Mix: &scenario.Mix{Update: 2, Read: 2, Scan: 1}, Skew: 0.8},
		{Name: "recover", Txns: 30, Mix: &scenario.Mix{Update: 3, Read: 1}},
	}}
}

func steadyProfile(txns uint64) scenario.Profile {
	return scenario.Profile{Name: "steady", Phases: []scenario.Phase{
		{Name: "all", Txns: txns},
	}}
}

func compileProfile(t testing.TB, p scenario.Profile) *scenario.Schedule {
	t.Helper()
	sched, err := p.Compile()
	if err != nil {
		t.Fatalf("compiling profile %q: %v", p.Name, err)
	}
	return sched
}

// scenarioProfiles is the profile matrix the identity and invariant suites
// sweep.
func scenarioProfiles() []scenario.Profile {
	return []scenario.Profile{
		mixFlipProfile(),
		skewDriftProfile(),
		burstProfile(),
		steadyProfile(120),
	}
}

// checkSegment asserts every conservation identity a phase segment promises
// on its own: the decompositions, the hierarchy flow bounds, and the
// [0,1] ratios all hold inside each phase window, not just cumulatively.
// Segments are differences of monotone counters collected at quiesced
// commit boundaries, so each identity that holds per event holds per
// window.
func checkSegment(t *testing.T, cfg core.Config, seg *stats.RunResult) {
	t.Helper()
	if seg.Txns == 0 {
		t.Fatalf("phase %q committed no transactions", seg.Name)
	}
	if got := seg.Miss.Local() + seg.Miss.RemoteClean() + seg.Miss.RemoteDirty(); got != seg.Miss.Total() {
		t.Errorf("phase %q: miss categories %d != total %d", seg.Name, got, seg.Miss.Total())
	}
	if got := seg.Miss.ITotal() + seg.Miss.DTotal(); got != seg.Miss.Total() {
		t.Errorf("phase %q: I+D misses %d != total %d", seg.Name, got, seg.Miss.Total())
	}
	b := seg.Breakdown
	if got := b.Busy + b.L2Hit + b.Local + b.Remote + b.RemoteDirty; got != b.NonIdle() {
		t.Errorf("phase %q: breakdown components %d != NonIdle %d", seg.Name, got, b.NonIdle())
	}
	if b.Kernel > b.NonIdle() {
		t.Errorf("phase %q: kernel cycles %d exceed non-idle %d", seg.Name, b.Kernel, b.NonIdle())
	}
	if !cfg.OutOfOrder && b.Busy != b.Instructions {
		t.Errorf("phase %q: in-order busy cycles %d != instructions %d", seg.Name, b.Busy, b.Instructions)
	}
	if seg.L1IMisses > seg.L1IAccesses {
		t.Errorf("phase %q: L1I misses %d exceed accesses %d", seg.Name, seg.L1IMisses, seg.L1IAccesses)
	}
	if seg.L1DMisses > seg.L1DAccesses {
		t.Errorf("phase %q: L1D misses %d exceed accesses %d", seg.Name, seg.L1DMisses, seg.L1DAccesses)
	}
	if seg.L1IMisses+seg.L1DMisses > seg.L2Accesses {
		t.Errorf("phase %q: L1 misses %d exceed L2 accesses %d",
			seg.Name, seg.L1IMisses+seg.L1DMisses, seg.L2Accesses)
	}
	if seg.Miss.Total() > seg.L2Accesses {
		t.Errorf("phase %q: table misses %d exceed L2 accesses %d", seg.Name, seg.Miss.Total(), seg.L2Accesses)
	}
	racHits := seg.Miss.RACHitsI + seg.Miss.RACHitsD
	if racHits > seg.Miss.Local() {
		t.Errorf("phase %q: RAC hits %d exceed local misses %d", seg.Name, racHits, seg.Miss.Local())
	}
	if racHits > seg.RACHits {
		t.Errorf("phase %q: miss-table RAC hits %d exceed RAC hit counter %d", seg.Name, racHits, seg.RACHits)
	}
	if seg.RACHits > seg.RACProbes {
		t.Errorf("phase %q: RAC hits %d exceed probes %d", seg.Name, seg.RACHits, seg.RACProbes)
	}
	if cfg.RAC == nil && seg.RACProbes != 0 {
		t.Errorf("phase %q: RAC probes %d on a machine without a RAC", seg.Name, seg.RACProbes)
	}
	if seg.WriteInvalOps > seg.Stores {
		t.Errorf("phase %q: invalidating writes %d exceed stores %d", seg.Name, seg.WriteInvalOps, seg.Stores)
	}
	if cfg.Processors == 1 {
		if seg.Miss.RemoteClean() != 0 || seg.Miss.RemoteDirty() != 0 {
			t.Errorf("phase %q: uniprocessor has remote misses: clean %d dirty %d",
				seg.Name, seg.Miss.RemoteClean(), seg.Miss.RemoteDirty())
		}
		if seg.Invalidations != 0 {
			t.Errorf("phase %q: uniprocessor has %d invalidations", seg.Name, seg.Invalidations)
		}
		if b.Remote != 0 || b.RemoteDirty != 0 {
			t.Errorf("phase %q: uniprocessor has remote stall cycles: %d + %d", seg.Name, b.Remote, b.RemoteDirty)
		}
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"L1I miss rate", seg.L1IMissRate},
		{"L1D miss rate", seg.L1DMissRate},
		{"kernel fraction", seg.KernelFraction},
		{"utilization", seg.Utilization},
	} {
		if f.v < 0 || f.v > 1 {
			t.Errorf("phase %q: %s %.4f outside [0,1]", seg.Name, f.name, f.v)
		}
	}
}

// checkSegmentsFold asserts the accounting identity of the segmentation
// itself: every counter summed across the phase segments equals the
// whole-run total exactly. Segments are consecutive differences of one
// cumulative stream, so any inexact fold means Sub dropped or double-counted
// a counter.
func checkSegmentsFold(t *testing.T, sr *ScenarioResult) {
	t.Helper()
	var sum stats.RunResult
	for i := range sr.Phases {
		seg := &sr.Phases[i].Result
		sum.Txns += seg.Txns
		sum.Breakdown.Add(&seg.Breakdown)
		sum.Miss.Add(&seg.Miss)
		sum.Invalidations += seg.Invalidations
		sum.Writebacks += seg.Writebacks
		sum.Stores += seg.Stores
		sum.WriteInvalOps += seg.WriteInvalOps
		sum.RACProbes += seg.RACProbes
		sum.RACHits += seg.RACHits
		sum.L1IAccesses += seg.L1IAccesses
		sum.L1IMisses += seg.L1IMisses
		sum.L1DAccesses += seg.L1DAccesses
		sum.L1DMisses += seg.L1DMisses
		sum.L2Accesses += seg.L2Accesses
		sum.IdleCycles += seg.IdleCycles
	}
	tot := &sr.Total
	if sum.Txns != tot.Txns {
		t.Errorf("segment txns sum %d != total %d", sum.Txns, tot.Txns)
	}
	if sum.Breakdown != tot.Breakdown {
		t.Errorf("segment breakdown sum %+v != total %+v", sum.Breakdown, tot.Breakdown)
	}
	if sum.Miss != tot.Miss {
		t.Errorf("segment miss-table sum %+v != total %+v", sum.Miss, tot.Miss)
	}
	counters := []struct {
		name      string
		got, want uint64
	}{
		{"invalidations", sum.Invalidations, tot.Invalidations},
		{"writebacks", sum.Writebacks, tot.Writebacks},
		{"stores", sum.Stores, tot.Stores},
		{"write-inval ops", sum.WriteInvalOps, tot.WriteInvalOps},
		{"RAC probes", sum.RACProbes, tot.RACProbes},
		{"RAC hits", sum.RACHits, tot.RACHits},
		{"L1I accesses", sum.L1IAccesses, tot.L1IAccesses},
		{"L1I misses", sum.L1IMisses, tot.L1IMisses},
		{"L1D accesses", sum.L1DAccesses, tot.L1DAccesses},
		{"L1D misses", sum.L1DMisses, tot.L1DMisses},
		{"L2 accesses", sum.L2Accesses, tot.L2Accesses},
		{"idle cycles", sum.IdleCycles, tot.IdleCycles},
	}
	for _, c := range counters {
		if c.got != c.want {
			t.Errorf("segment %s sum %d != total %d", c.name, c.got, c.want)
		}
	}
}

// TestScenarioConservationInvariants runs the burst profile — the one that
// exercises every phase knob — across the full representative configuration
// table and checks every segment-level conservation identity plus the exact
// fold of segments into the whole-run total.
func TestScenarioConservationInvariants(t *testing.T) {
	o := invariantOptions()
	o.Scenario = compileProfile(t, burstProfile())
	for _, cfg := range invariantConfigs() {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			t.Parallel()
			sr := o.RunScenario(cfg)
			if len(sr.Phases) != o.Scenario.NumPhases() {
				t.Fatalf("got %d segments, want %d", len(sr.Phases), o.Scenario.NumPhases())
			}
			for i := range sr.Phases {
				p := &sr.Phases[i]
				if p.Result.Name != o.Scenario.PhaseName(i) {
					t.Errorf("segment %d named %q, want %q", i, p.Result.Name, o.Scenario.PhaseName(i))
				}
				if want := p.Result.Txns; want != o.Scenario.PhaseTxns(i) {
					t.Errorf("segment %d has %d txns, want %d", i, want, o.Scenario.PhaseTxns(i))
				}
				var start uint64
				if i > 0 {
					start = o.Scenario.Boundary(i - 1)
				}
				if p.StartTxn != start {
					t.Errorf("segment %d starts at %d, want %d", i, p.StartTxn, start)
				}
				checkSegment(t, cfg, &p.Result)
			}
			checkSegmentsFold(t, &sr)
			if sr.Total.Txns != o.Scenario.TotalTxns() {
				t.Errorf("total txns %d != schedule total %d", sr.Total.Txns, o.Scenario.TotalTxns())
			}
		})
	}
}

// TestScenarioProfileMatrixInvariants runs every reference profile on one
// multiprocessor and one uniprocessor shape: the segment identities are
// properties of the segmentation, not of one profile's draw pattern.
func TestScenarioProfileMatrixInvariants(t *testing.T) {
	cfgs := []core.Config{
		core.BaseConfig(1, 8*core.MB, 1),
		core.FullConfig(8, 2*core.MB, 8),
	}
	for _, p := range scenarioProfiles() {
		for _, cfg := range cfgs {
			p, cfg := p, cfg
			t.Run(p.Name+"/"+cfg.Name, func(t *testing.T) {
				t.Parallel()
				o := invariantOptions()
				o.Scenario = compileProfile(t, p)
				sr := o.RunScenario(cfg)
				for i := range sr.Phases {
					checkSegment(t, cfg, &sr.Phases[i].Result)
				}
				checkSegmentsFold(t, &sr)
			})
		}
	}
}
