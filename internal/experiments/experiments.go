// Package experiments defines one runner per figure of the paper's
// evaluation. Each runner assembles the configurations that appear as bars
// in that figure, runs them under the standard warmup/measure protocol, and
// returns a Figure whose rendering matches the paper's presentation
// (normalized execution-time breakdowns on the left, normalized L2 miss
// breakdowns on the right).
package experiments

import (
	"oltpsim/internal/core"
	"oltpsim/internal/oltp"
	"oltpsim/internal/scenario"
	"oltpsim/internal/sim"
	"oltpsim/internal/stats"
)

// Options controls the measurement protocol.
type Options struct {
	// WarmupTxns positions the caches in steady state before measuring. The
	// paper's methodology warms through its fast-simulation mode; we warm
	// with real transactions.
	WarmupTxns uint64
	// MeasureTxns is the measured run length (the paper measures 2000).
	MeasureTxns uint64
	// Seed lets property tests vary the workload.
	Seed uint64
	// Quick shrinks the run for smoke tests.
	Quick bool
	// Workers bounds how many configurations RunMany simulates concurrently.
	// 0 means runtime.GOMAXPROCS(0); 1 forces the serial path. Every
	// simulation is a pure function of (config, seed), so parallel results
	// are bit-identical to serial ones, in the same order.
	Workers int
	// StepWorkers turns on epoch-sharded stepping inside each simulation:
	// n >= 2 shards the machine's chips across n goroutines with barrier
	// epochs (see internal/core/shard.go). 0 or 1 keeps the serial stepping
	// engine. Sharded stepping is byte-identical to serial stepping, so this
	// only trades wall-clock for cores; configurations the sharded engine
	// cannot drive (out-of-order cores, single chips) fall back to serial on
	// their own.
	StepWorkers int
	// NoFastForward disables hit-run fast-forwarding inside each simulation
	// (core.System.SetFastForward). The fast path is byte-identical to
	// per-reference stepping; the switch exists so equivalence tests can run
	// both sides and benchmarks can price the bulk path. The zero value —
	// fast-forward on — is what every committed figure uses.
	NoFastForward bool
	// WarmSnapshot, when non-nil, shares end-of-warmup machine snapshots
	// between the runs of a sweep: configurations with an identical machine
	// shape and seed fork their measurement phases from one warm state
	// instead of each re-running the warmup. Restoring a snapshot is
	// bit-identical to re-running the warmup, so results do not depend on
	// the cache; nil (the default, used for all committed figures) keeps the
	// traditional warm-every-run path.
	WarmSnapshot *WarmCache
	// Progress, when non-nil, is called by RunMany after each configuration
	// of a sweep finishes, with the number of configurations completed so
	// far and the sweep total. Calls are serialized (never concurrent),
	// done is strictly increasing from 1 to total, and no call is made
	// after RunMany returns — so a caller may drive an SSE stream or a
	// progress bar from it without its own locking. The callback observes
	// completion order, which under parallel Workers is not input order;
	// results themselves are always delivered in input order regardless.
	// Nil (the default) costs nothing.
	Progress func(done, total int)
	// Scenario, when non-nil, replaces the fixed-mix measurement with a
	// compiled time-varying schedule: the measured length becomes the
	// schedule's total transactions (MeasureTxns is ignored), phase 0 also
	// governs warmup, and RunScenario segments the result per phase. Nil —
	// every committed figure — keeps steady state, byte for byte.
	Scenario *scenario.Schedule
	// Zeta shares the Zipf harmonic-sum constants across the harness
	// constructions of a sweep. Every bar rebuilds its engine from the same
	// sizing parameters, so without the cache each bar redoes an O(database
	// size) math.Pow loop for an identical result. The cached constants are
	// bit-identical to freshly computed ones (and the cache is internally
	// locked), so sharing it across RunMany workers never changes output.
	// Nil is valid and means compute per harness.
	Zeta *sim.ZetaCache
}

// DefaultOptions is the paper-fidelity protocol: measure 2000 transactions
// as the paper does, after warming the caches into steady state (the paper
// fast-forwards with its binary-translation mode; we warm with real
// transactions, which takes a few thousand to populate the large metadata
// arrays).
func DefaultOptions() Options {
	return Options{WarmupTxns: 3000, MeasureTxns: 2000, Seed: 0, Zeta: sim.NewZetaCache()}
}

// QuickOptions is a fast variant for tests and iteration.
func QuickOptions() Options {
	return Options{WarmupTxns: 150, MeasureTxns: 400, Seed: 0, Quick: true, Zeta: sim.NewZetaCache()}
}

// Params builds the workload parameters for a machine configuration.
func (o Options) Params(cfg core.Config) oltp.Params {
	p := oltp.DefaultParams(cfg.Processors)
	if o.Quick {
		p.TPCB.AccountsPerBranch = 20_000
		p.TPCB.BufferFrames = 22_000
		p.TPCB.SharedPoolBytes = 32 << 20
	}
	if o.Seed != 0 {
		p.Seed = o.Seed
	}
	p.CodeReplication = cfg.CodeReplication
	p.CoresPerChip = cfg.CoresPerChip
	p.TPCB.Zeta = o.Zeta
	if o.Scenario != nil {
		p.Scenario = o.Scenario
		p.ScenarioBase = o.WarmupTxns
	}
	return p
}

// MeasuredTxns is the measured run length: the scenario's total when one is
// set, MeasureTxns otherwise.
func (o Options) MeasuredTxns() uint64 {
	if o.Scenario != nil {
		return o.Scenario.TotalTxns()
	}
	return o.MeasureTxns
}

// build assembles the machine for one configuration.
func (o Options) build(cfg core.Config) *core.System {
	sys := core.MustNewSystem(cfg, oltp.MustNewHarness(o.Params(cfg)))
	sys.SetStepWorkers(o.StepWorkers)
	sys.SetFastForward(!o.NoFastForward)
	return sys
}

// Run executes one configuration under the protocol.
func (o Options) Run(cfg core.Config) stats.RunResult {
	sys := o.build(cfg)
	var res stats.RunResult
	// Warm-snapshot sharing keys on the machine shape only, not the
	// schedule, so scenario runs always warm for real.
	if o.WarmSnapshot != nil && !cfg.Classify && o.Scenario == nil {
		res = o.runWarm(cfg, sys)
	} else {
		res = sys.Run(o.WarmupTxns, o.MeasuredTxns())
	}
	res.Name = cfg.Name
	return res
}

// Figure is one reproduced figure: a titled series of bars with a designated
// normalization baseline.
type Figure struct {
	// ID is the paper's figure number ("Figure 5").
	ID string
	// Title describes the experiment.
	Title string
	// Bars are the per-configuration results, in presentation order.
	Bars []stats.RunResult
	// BaselineIdx is the bar everything is normalized to (the paper
	// normalizes to the leftmost bar).
	BaselineIdx int
}

// Baseline returns the normalization bar.
func (f *Figure) Baseline() *stats.RunResult { return &f.Bars[f.BaselineIdx] }

// NormExec returns bar i's execution time normalized to the baseline (x100,
// as the paper labels its bars).
func (f *Figure) NormExec(i int) float64 {
	b := f.Baseline().CyclesPerTxn()
	if b == 0 {
		return 0
	}
	return 100 * (f.Bars[i].CyclesPerTxn() / b)
}

// NormMisses returns bar i's miss count normalized to the baseline (x100).
func (f *Figure) NormMisses(i int) float64 {
	b := f.Baseline().MissesPerTxn()
	if b == 0 {
		return 0
	}
	return 100 * (f.Bars[i].MissesPerTxn() / b)
}

// runAll executes a list of configurations as one figure, fanning the bars
// across the Options worker pool while keeping presentation order.
func runAll(o Options, id, title string, cfgs []core.Config) Figure {
	return Figure{ID: id, Title: title, Bars: o.RunMany(cfgs)}
}

// label renames a configuration for presentation.
func label(cfg core.Config, name string) core.Config {
	cfg.Name = name
	return cfg
}
