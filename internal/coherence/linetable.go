package coherence

// lineTable is the directory's line -> entry store: an open-addressed,
// linear-probe hash table specialized for uint64 line addresses. The
// generic Go map spent a measurable slice of the whole simulation hashing
// and bucket-walking on every directory transaction (two map operations per
// read-modify-write); this table costs one multiplicative hash and a short
// contiguous probe, and ref() gives the read-modify-write paths a pointer so
// they touch the table once.
//
// Behaviour is identical to the map it replaced: only keyed lookups are
// performed (never iteration, so determinism cannot hinge on ordering), and
// the zero entry means "uncached, clean at home" exactly as before.
type lineTable struct {
	keys    []uint64 // line<<1|1 when occupied, 0 when empty (no tombstones)
	entries []entry
	mask    uint64
	shift   uint // 64 - log2(len(keys)), for fibonacci hashing
	live    int
}

// fibMul is 2^64 / phi, the standard fibonacci-hashing multiplier; line
// addresses are multiples of the cache line size, and the multiply spreads
// those strided keys across the high bits the index is taken from.
const fibMul = 0x9e3779b97f4a7c15

func newLineTable(sizeHint int) *lineTable {
	size := 1
	for size < sizeHint*2 {
		size <<= 1
	}
	if size < 1024 {
		size = 1024
	}
	t := &lineTable{}
	t.alloc(size)
	return t
}

func (t *lineTable) alloc(size int) {
	t.keys = make([]uint64, size)
	t.entries = make([]entry, size)
	t.mask = uint64(size - 1)
	t.shift = 64
	for s := size; s > 1; s >>= 1 {
		t.shift--
	}
}

func (t *lineTable) slotOf(key uint64) uint64 {
	return (key * fibMul) >> t.shift
}

// find returns a pointer to line's entry, or nil if absent. The pointer is
// valid only until the next insertion (growth moves entries).
func (t *lineTable) find(line uint64) *entry {
	key := line<<1 | 1
	for i := t.slotOf(key); ; i = (i + 1) & t.mask {
		switch t.keys[i] {
		case key:
			return &t.entries[i]
		case 0:
			return nil
		}
	}
}

// get returns line's entry by value; absent lines read as the zero entry.
func (t *lineTable) get(line uint64) entry {
	if p := t.find(line); p != nil {
		return *p
	}
	return entry{}
}

// ref returns a pointer to line's entry, inserting a zero entry if absent.
// The pointer is valid only until the next insertion.
func (t *lineTable) ref(line uint64) *entry {
	if t.live*4 >= len(t.keys)*3 {
		t.grow()
	}
	key := line<<1 | 1
	for i := t.slotOf(key); ; i = (i + 1) & t.mask {
		switch t.keys[i] {
		case key:
			return &t.entries[i]
		case 0:
			t.keys[i] = key
			t.entries[i] = entry{}
			t.live++
			return &t.entries[i]
		}
	}
}

// del removes line if present, using backward-shift deletion so the table
// never accumulates tombstones: every element between the vacated slot and
// the next empty slot that could have probed through the vacancy is moved
// back into it.
func (t *lineTable) del(line uint64) {
	key := line<<1 | 1
	i := t.slotOf(key)
	for ; ; i = (i + 1) & t.mask {
		if t.keys[i] == key {
			break
		}
		if t.keys[i] == 0 {
			return
		}
	}
	t.live--
	for j := i; ; {
		j = (j + 1) & t.mask
		if t.keys[j] == 0 {
			break
		}
		// Element at j probed from home h. It may fill slot i only if i lies
		// on its probe path, i.e. the cyclic distance from h to i does not
		// exceed the distance from h to j.
		h := t.slotOf(t.keys[j])
		if (i-h)&t.mask <= (j-h)&t.mask {
			t.keys[i] = t.keys[j]
			t.entries[i] = t.entries[j]
			i = j
		}
	}
	t.keys[i] = 0
	t.entries[i] = entry{}
}

func (t *lineTable) grow() {
	oldKeys, oldEntries := t.keys, t.entries
	t.alloc(len(oldKeys) * 2)
	for i, k := range oldKeys {
		if k == 0 {
			continue
		}
		for j := t.slotOf(k); ; j = (j + 1) & t.mask {
			if t.keys[j] == 0 {
				t.keys[j] = k
				t.entries[j] = oldEntries[i]
				break
			}
		}
	}
}
