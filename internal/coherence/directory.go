// Package coherence implements the directory-based invalidation protocol of
// the simulated ccNUMA multiprocessor (paper Section 2.3: 8 processor nodes,
// distributed memory, directory-based coherence, sequential consistency).
//
// The protocol is MESI at the caches with a full-map directory per home node.
// Every L2 miss becomes a directory transaction, classified exactly the way
// the paper reports misses: serviced by local memory, by remote memory
// ("remote clean", 2-hop), or by a dirty copy in a remote cache ("remote
// dirty", 3-hop). When a remote access cache (RAC, paper Section 6) holds the
// dirty copy, the transaction is classified separately because the paper
// charges it a higher latency (250 ns vs. 200 ns in the fully integrated
// configuration).
package coherence

import (
	"fmt"

	"oltpsim/internal/cache"
)

// MaxNodes bounds the sharer bit-vector. The paper's multiprocessor has 8
// nodes; we allow up to 128 so scaling experiments are possible.
const MaxNodes = 128

// sharerWords is the number of 64-bit words in a sharer set.
const sharerWords = MaxNodes / 64

// sharerSet is a fixed-width bit-vector with one bit per node. It is a
// comparable value type, so whole-set equality tests (`s == only(node)`)
// keep working across the word boundary.
type sharerSet [sharerWords]uint64

func only(node int) sharerSet {
	var s sharerSet
	s.add(node)
	return s
}

func (s *sharerSet) add(node int)     { s[node>>6] |= 1 << uint(node&63) }
func (s *sharerSet) remove(node int)  { s[node>>6] &^= 1 << uint(node&63) }
func (s sharerSet) has(node int) bool { return s[node>>6]&(1<<uint(node&63)) != 0 }

func (s sharerSet) empty() bool {
	for _, w := range s {
		if w != 0 {
			return false
		}
	}
	return true
}

// beyond reports whether any bit at position >= nodes is set.
func (s sharerSet) beyond(nodes int) bool {
	for i := nodes; i < MaxNodes; i++ {
		if s.has(i) {
			return true
		}
	}
	return false
}

// Category classifies where a memory transaction was serviced from, which
// determines both its latency (core.LatencyTable) and its statistics bucket.
type Category uint8

const (
	// CatLocal: serviced by the requester's own memory (home is local and the
	// line is clean), or by the requester's own RAC.
	CatLocal Category = iota
	// CatRemoteClean: serviced by a remote home memory; a two-network-hop
	// transaction.
	CatRemoteClean
	// CatRemoteDirty: serviced by a dirty copy in a remote processor's L2
	// cache; a three-hop transaction (requester -> home -> owner ->
	// requester).
	CatRemoteDirty
	// CatRemoteDirtyRAC: like CatRemoteDirty, but the dirty copy lives in the
	// remote node's memory-backed RAC, which responds more slowly than its
	// L2.
	CatRemoteDirtyRAC
	// NumCategories is the number of classification buckets.
	NumCategories
)

// String implements fmt.Stringer.
func (c Category) String() string {
	switch c {
	case CatLocal:
		return "local"
	case CatRemoteClean:
		return "remote-clean"
	case CatRemoteDirty:
		return "remote-dirty"
	case CatRemoteDirtyRAC:
		return "remote-dirty-rac"
	default:
		return "?"
	}
}

// Peers is how the directory reaches into the caches of other nodes to apply
// invalidations and downgrades. The system model implements it; tests use
// lightweight fakes.
type Peers interface {
	// InvalidatePeer removes line from every structure at node (L1s, L2,
	// RAC, victim buffers) and reports whether any copy was dirty.
	InvalidatePeer(node int, line uint64) (wasDirty bool)
	// DowngradePeer demotes node's Modified/Exclusive copy of line to Shared
	// and reports whether it was dirty. The report is authoritative: a line
	// granted Exclusive may have been modified silently, so the directory's
	// own dirty flag is only a hint.
	DowngradePeer(node int, line uint64) (wasDirty bool)
}

// HomeFunc maps a line address to its home node (where the backing memory
// and directory entry live). The kernel's page-placement policy provides it.
type HomeFunc func(line uint64) int

// entry is the directory state for one line. The zero value means
// "uncached, clean at home". owner holds node+1 so that the zero value is
// "no owner".
type entry struct {
	sharers sharerSet // bit per node with a (possibly clean-exclusive) copy
	owner   int16     // node+1 with M/E rights, 0 if none
	dirty   bool      // owner's copy differs from home memory
	inRAC   bool      // owner's copy lives in its RAC, not its L2
}

func (e entry) hasOwner() bool { return e.owner != 0 }
func (e entry) ownerNode() int { return int(e.owner) - 1 }

// Result describes the outcome of a directory transaction.
type Result struct {
	// Cat is the service classification (drives latency and miss stats).
	Cat Category
	// Grant is the MESI state the requester installs in its L2.
	Grant cache.State
	// Upgrade is true when no data moved: the requester already held a
	// shared copy and only needed write permission.
	Upgrade bool
	// Invalidations is the number of invalidation messages this transaction
	// sent to other nodes.
	Invalidations int
}

// Stats aggregates protocol activity. All counters are monotonically
// increasing until ResetStats.
type Stats struct {
	Reads          [NumCategories]uint64
	Writes         [NumCategories]uint64
	Upgrades       uint64
	Invalidations  uint64
	Writebacks     uint64 // dirty data returned to home memory
	ReplHints      uint64 // clean-eviction notifications
	RACMigrations  uint64 // lines retired from an L2 into a RAC
	ExclusiveGrant uint64 // reads granted E because the line was uncached
}

// Directory is the full-map directory for the whole machine. Entries are
// held in one open-addressed table keyed by line address; the home node of
// each line is a function of the address, so a per-node split would only
// shard the table.
type Directory struct {
	nodes   int
	home    HomeFunc
	peers   Peers
	entries *lineTable

	// Migratory enables the migratory-sharing optimization (Cox & Fowler
	// style, standard in directory protocols of the paper's era): a read
	// miss that finds the line dirty in another cache transfers *exclusive*
	// ownership instead of downgrading the owner to shared. OLTP metadata is
	// overwhelmingly migratory (latches, buffer headers, hot rows follow
	// whichever processor runs the transaction), so without this every hot
	// read-modify-write would pay a 3-hop read plus a 2-hop upgrade. It is
	// on by default; the ablation benchmarks measure its effect.
	Migratory bool

	// Stats is exported for the harness to read and reset.
	Stats Stats
}

// New creates a directory for a machine with nodes processors. home maps a
// line to its home node and peers applies invalidations/downgrades.
func New(nodes int, home HomeFunc, peers Peers) *Directory {
	if nodes <= 0 || nodes > MaxNodes {
		panic(fmt.Sprintf("coherence: node count %d out of range 1..%d", nodes, MaxNodes))
	}
	return &Directory{
		nodes:     nodes,
		home:      home,
		peers:     peers,
		entries:   newLineTable(1 << 18),
		Migratory: true,
	}
}

// Nodes returns the machine size.
func (d *Directory) Nodes() int { return d.nodes }

// Home exposes the home mapping (used by the system model to decide whether
// a line is a candidate for the RAC — only remote lines are).
func (d *Directory) Home(line uint64) int { return d.home(line) }

// Read services a read miss for line by node. It mutates directory state,
// downgrades a remote owner if necessary, and returns the classification and
// the MESI state to install.
func (d *Directory) Read(line uint64, node int) Result {
	// ref gives one probe for the whole read-modify-write; the peer
	// callbacks below never insert into the table, so the pointer stays
	// valid across them.
	p := d.entries.ref(line)
	e := *p
	homeNode := d.home(line)
	res := Result{}

	switch {
	case e.hasOwner() && e.ownerNode() != node:
		// Some other node holds M or E rights. Probe it: the downgrade
		// reveals whether the copy was actually dirty (a silently-upgraded
		// E line makes the directory's own flag a hint only).
		owner := e.ownerNode()
		wasDirty := d.peers.DowngradePeer(owner, line)
		switch {
		case wasDirty && d.Migratory:
			// Migratory optimization: dirty data follows the readers —
			// transfer exclusive ownership instead of sharing, so the
			// reader's forthcoming write needs no second transaction. The
			// owner's (now Shared) residue is reclaimed; no home writeback.
			d.peers.InvalidatePeer(owner, line)
			if e.inRAC {
				res.Cat = CatRemoteDirtyRAC
			} else {
				res.Cat = CatRemoteDirty
			}
			e.dirty = true
			e.inRAC = false
			e.owner = int16(node + 1)
			e.sharers = only(node)
			res.Grant = cache.Modified
		case wasDirty:
			// Dirty data is forwarded by the owner (3-hop) and written back
			// to home as a side effect (DASH-style sharing writeback).
			if e.inRAC {
				res.Cat = CatRemoteDirtyRAC
			} else {
				res.Cat = CatRemoteDirty
			}
			d.Stats.Writebacks++
			e.dirty = false
			e.inRAC = false
			e.owner = 0
			e.sharers.add(owner)
			e.sharers.add(node)
			res.Grant = cache.Shared
		default:
			// Clean-exclusive at the owner: home memory is current, so the
			// data comes from home while the owner is demoted in parallel.
			res.Cat = categoryFromHome(homeNode, node)
			e.dirty = false
			e.inRAC = false
			e.owner = 0
			e.sharers.add(owner)
			e.sharers.add(node)
			res.Grant = cache.Shared
		}
	case !e.sharers.empty() && e.sharers != only(node):
		// Shared by others; data from home memory.
		res.Cat = categoryFromHome(homeNode, node)
		e.sharers.add(node)
		res.Grant = cache.Shared
	default:
		// Uncached (or only a stale self-sharer bit): grant Exclusive so
		// private data can later be written without a second transaction.
		res.Cat = categoryFromHome(homeNode, node)
		e.sharers = only(node)
		e.owner = int16(node + 1)
		e.dirty = false
		e.inRAC = false
		res.Grant = cache.Exclusive
		d.Stats.ExclusiveGrant++
	}

	*p = e
	d.Stats.Reads[res.Cat]++
	return res
}

// Write services a write miss or an upgrade for line by node: every other
// copy is invalidated and node becomes the dirty owner.
func (d *Directory) Write(line uint64, node int) Result {
	p := d.entries.ref(line)
	e := *p
	homeNode := d.home(line)
	res := Result{}

	switch {
	case e.hasOwner() && e.ownerNode() != node:
		// Dirty or clean-exclusive at another node: ownership transfer.
		owner := e.ownerNode()
		wasDirty := d.peers.InvalidatePeer(owner, line)
		res.Invalidations = 1
		if wasDirty {
			if e.inRAC {
				res.Cat = CatRemoteDirtyRAC
			} else {
				res.Cat = CatRemoteDirty
			}
		} else {
			res.Cat = categoryFromHome(homeNode, node)
		}
	case !e.sharers.empty():
		// Shared: invalidate every other sharer; if the requester was among
		// the sharers this is a pure upgrade (permission only, no data).
		res.Upgrade = e.sharers.has(node)
		for n := 0; n < d.nodes; n++ {
			if n != node && e.sharers.has(n) {
				d.peers.InvalidatePeer(n, line)
				res.Invalidations++
			}
		}
		res.Cat = categoryFromHome(homeNode, node)
	default:
		// Uncached.
		res.Cat = categoryFromHome(homeNode, node)
	}

	e.sharers = only(node)
	e.owner = int16(node + 1)
	e.dirty = true
	e.inRAC = false
	*p = e

	d.Stats.Invalidations += uint64(res.Invalidations)
	if res.Upgrade {
		d.Stats.Upgrades++
	} else {
		d.Stats.Writes[res.Cat]++
	}
	res.Grant = cache.Modified
	return res
}

// WritebackDirty records that node evicted its dirty copy of line all the
// way to home memory.
func (d *Directory) WritebackDirty(line uint64, node int) {
	e := d.entries.get(line)
	if !e.hasOwner() || e.ownerNode() != node {
		panic(fmt.Sprintf("coherence: writeback of line %#x by non-owner node %d", line, node))
	}
	e.owner = 0
	e.dirty = false
	e.inRAC = false
	e.sharers.remove(node)
	d.storeOrDelete(line, e)
	d.Stats.Writebacks++
}

// EvictClean records a replacement hint: node dropped its clean copy.
func (d *Directory) EvictClean(line uint64, node int) {
	e := d.entries.get(line)
	if e.hasOwner() && e.ownerNode() == node {
		// Silently held E copy evicted; home memory is already current.
		e.owner = 0
		e.dirty = false
		e.inRAC = false
	}
	e.sharers.remove(node)
	d.storeOrDelete(line, e)
	d.Stats.ReplHints++
}

// MoveToRAC records that node's copy of line migrated from its L2 into its
// RAC. The node remains a sharer/owner; only the location flag changes, so a
// later 3-hop request is charged the slower RAC-sourced latency.
func (d *Directory) MoveToRAC(line uint64, node int) {
	if p := d.entries.find(line); p != nil && p.hasOwner() && p.ownerNode() == node {
		p.inRAC = true
	}
	d.Stats.RACMigrations++
}

// MoveToL2 records the reverse migration (a RAC hit promoted the line back
// into the node's L2).
func (d *Directory) MoveToL2(line uint64, node int) {
	if p := d.entries.find(line); p != nil && p.hasOwner() && p.ownerNode() == node && p.inRAC {
		p.inRAC = false
	}
}

// SharerCount returns how many nodes hold line (for tests and invariants).
func (d *Directory) SharerCount(line uint64) int {
	e := d.entries.get(line)
	n := 0
	for i := 0; i < d.nodes; i++ {
		if e.sharers.has(i) {
			n++
		}
	}
	return n
}

// OwnerOf returns the owning node and whether its copy is dirty; owner is -1
// when no node has M/E rights.
func (d *Directory) OwnerOf(line uint64) (owner int, dirty bool) {
	e := d.entries.get(line)
	if !e.hasOwner() {
		return -1, false
	}
	return e.ownerNode(), e.dirty
}

// OwnerInRAC reports whether the owner's copy is flagged as living in its
// RAC.
func (d *Directory) OwnerInRAC(line uint64) bool { return d.entries.get(line).inRAC }

// IsSharer reports whether node holds a copy of line per the directory.
func (d *Directory) IsSharer(line uint64, node int) bool {
	return d.entries.get(line).sharers.has(node)
}

// Entries returns the number of lines with non-default directory state.
func (d *Directory) Entries() int { return d.entries.live }

// ResetStats zeroes protocol counters (after warmup) without touching state.
func (d *Directory) ResetStats() { d.Stats = Stats{} }

func (d *Directory) storeOrDelete(line uint64, e entry) {
	if e.sharers.empty() && !e.hasOwner() {
		d.entries.del(line)
		return
	}
	*d.entries.ref(line) = e
}

func categoryFromHome(home, requester int) Category {
	if home == requester {
		return CatLocal
	}
	return CatRemoteClean
}
