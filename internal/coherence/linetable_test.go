package coherence

import (
	"testing"

	"oltpsim/internal/sim"
)

// TestLineTableDifferential drives lineTable and a plain map with the same
// randomized operation stream and demands identical observable state
// throughout. The table backs every directory transaction, so a probe or
// backward-shift-deletion bug here would silently corrupt coherence results;
// this is the regression net under it.
func TestLineTableDifferential(t *testing.T) {
	rng := sim.NewRNG(0xd1ff)
	tab := newLineTable(4) // tiny so growth and wraparound happen constantly
	ref := make(map[uint64]entry)

	// A small key universe with colliding strides forces long probe chains.
	key := func() uint64 { return uint64(rng.Intn(512)) * 64 }

	for op := 0; op < 200_000; op++ {
		line := key()
		switch rng.Intn(4) {
		case 0: // insert/update through ref()
			e := entry{sharers: sharerSet{rng.Uint64(), rng.Uint64()}, owner: int16(rng.Intn(8) + 1)}
			*tab.ref(line) = e
			ref[line] = e
		case 1: // delete
			tab.del(line)
			delete(ref, line)
		case 2: // read through get()
			want, ok := ref[line]
			if got := tab.get(line); got != want {
				t.Fatalf("op %d: get(%#x) = %+v, want %+v (present=%v)", op, line, got, want, ok)
			}
		case 3: // read through find()
			want, ok := ref[line]
			p := tab.find(line)
			if ok != (p != nil) {
				t.Fatalf("op %d: find(%#x) presence = %v, want %v", op, line, p != nil, ok)
			}
			if p != nil && *p != want {
				t.Fatalf("op %d: find(%#x) = %+v, want %+v", op, line, *p, want)
			}
		}
		if tab.live != len(ref) {
			t.Fatalf("op %d: live = %d, want %d", op, tab.live, len(ref))
		}
	}
	// Full sweep at the end: every key in the universe agrees.
	for k := uint64(0); k < 512*64; k += 64 {
		if got, want := tab.get(k), ref[k]; got != want {
			t.Fatalf("final sweep: get(%#x) = %+v, want %+v", k, got, want)
		}
	}
}

// TestLineTableZeroLine checks that line 0 (a legal address) is
// distinguishable from an empty slot.
func TestLineTableZeroLine(t *testing.T) {
	tab := newLineTable(4)
	if tab.find(0) != nil {
		t.Fatal("empty table claims to hold line 0")
	}
	tab.ref(0).owner = 3
	if p := tab.find(0); p == nil || p.owner != 3 {
		t.Fatal("line 0 not retrievable after insert")
	}
	tab.del(0)
	if tab.find(0) != nil || tab.live != 0 {
		t.Fatal("line 0 survived deletion")
	}
}
