package coherence

import (
	"fmt"
	"sort"

	"oltpsim/internal/snapshot"
)

// SaveState writes the directory's line table and protocol counters. The
// table is dumped as its allocated size plus the live (key, entry) pairs in
// ascending key order: the canonical ordering makes Save→Load→Save
// byte-stable regardless of the insertion history that produced the slot
// layout (nothing ever iterates the table, so the layout itself is not
// architectural state).
func (d *Directory) SaveState(e *snapshot.Encoder) {
	t := d.entries
	type pair struct {
		key uint64
		ent entry
	}
	pairs := make([]pair, 0, t.live)
	for i, k := range t.keys {
		if k != 0 {
			pairs = append(pairs, pair{key: k, ent: t.entries[i]})
		}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].key < pairs[j].key })
	e.Int(len(t.keys))
	e.Int(len(pairs))
	for _, p := range pairs {
		e.U64(p.key)
		for _, w := range p.ent.sharers {
			e.U64(w)
		}
		e.I64(int64(p.ent.owner))
		e.Bool(p.ent.dirty)
		e.Bool(p.ent.inRAC)
	}
	e.U64s(d.Stats.Reads[:])
	e.U64s(d.Stats.Writes[:])
	e.U64(d.Stats.Upgrades)
	e.U64(d.Stats.Invalidations)
	e.U64(d.Stats.Writebacks)
	e.U64(d.Stats.ReplHints)
	e.U64(d.Stats.RACMigrations)
	e.U64(d.Stats.ExclusiveGrant)
}

// LoadState rebuilds the line table by probe-inserting the dumped pairs
// into a fresh allocation of the saved size, then restores the counters.
func (d *Directory) LoadState(dec *snapshot.Decoder) error {
	size := dec.Int()
	live := dec.Int()
	if dec.Err() != nil {
		return dec.Err()
	}
	if size < 1024 || size&(size-1) != 0 {
		return fmt.Errorf("coherence: table size %d is not a power of two >= 1024", size)
	}
	if live < 0 || live*4 >= size*3 {
		return fmt.Errorf("coherence: %d live entries overflow table of %d slots", live, size)
	}
	t := &lineTable{}
	t.alloc(size)
	var prevKey uint64
	for i := 0; i < live; i++ {
		key := dec.U64()
		var sh sharerSet
		for w := range sh {
			sh[w] = dec.U64()
		}
		ent := entry{
			sharers: sh,
			owner:   int16(dec.I64()),
			dirty:   dec.Bool(),
			inRAC:   dec.Bool(),
		}
		if dec.Err() != nil {
			return dec.Err()
		}
		if key&1 == 0 {
			return fmt.Errorf("coherence: entry %d key %#x missing validity bit", i, key)
		}
		if i > 0 && key <= prevKey {
			return fmt.Errorf("coherence: entry %d key %#x not in ascending order", i, key)
		}
		prevKey = key
		if int(ent.owner) < 0 || int(ent.owner) > d.nodes {
			return fmt.Errorf("coherence: entry %d owner %d out of range 0..%d", i, ent.owner, d.nodes)
		}
		if ent.sharers.beyond(d.nodes) {
			return fmt.Errorf("coherence: entry %d sharer bits beyond %d nodes", i, d.nodes)
		}
		if ent.sharers.empty() && !ent.hasOwner() {
			return fmt.Errorf("coherence: entry %d is the zero entry and should be absent", i)
		}
		for j := t.slotOf(key); ; j = (j + 1) & t.mask {
			if t.keys[j] == 0 {
				t.keys[j] = key
				t.entries[j] = ent
				break
			}
		}
	}
	t.live = live
	stats := Stats{}
	reads := dec.U64s()
	writes := dec.U64s()
	stats.Upgrades = dec.U64()
	stats.Invalidations = dec.U64()
	stats.Writebacks = dec.U64()
	stats.ReplHints = dec.U64()
	stats.RACMigrations = dec.U64()
	stats.ExclusiveGrant = dec.U64()
	if err := dec.Err(); err != nil {
		return err
	}
	if len(reads) != int(NumCategories) || len(writes) != int(NumCategories) {
		return fmt.Errorf("coherence: stats have %d/%d categories, want %d", len(reads), len(writes), NumCategories)
	}
	copy(stats.Reads[:], reads)
	copy(stats.Writes[:], writes)
	d.entries = t
	d.Stats = stats
	return nil
}
