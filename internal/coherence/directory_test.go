package coherence

import (
	"bytes"
	"testing"
	"testing/quick"

	"oltpsim/internal/cache"
	"oltpsim/internal/sim"
	"oltpsim/internal/snapshot"
)

// fakePeers is a model of per-node caches precise enough for the protocol:
// it tracks each node's state per line.
type fakePeers struct {
	nodes int
	state map[uint64][]cache.State // line -> per-node state

	invalidations int
	downgrades    int
}

func newFakePeers(nodes int) *fakePeers {
	return &fakePeers{nodes: nodes, state: map[uint64][]cache.State{}}
}

func (f *fakePeers) of(line uint64) []cache.State {
	s, ok := f.state[line]
	if !ok {
		s = make([]cache.State, f.nodes)
		f.state[line] = s
	}
	return s
}

// set installs a line at a node (mirrors what a cache fill does).
func (f *fakePeers) set(line uint64, node int, st cache.State) { f.of(line)[node] = st }

func (f *fakePeers) InvalidatePeer(node int, line uint64) bool {
	f.invalidations++
	s := f.of(line)
	dirty := s[node] == cache.Modified
	s[node] = cache.Invalid
	return dirty
}

func (f *fakePeers) DowngradePeer(node int, line uint64) bool {
	f.downgrades++
	s := f.of(line)
	dirty := s[node] == cache.Modified
	if s[node] == cache.Modified || s[node] == cache.Exclusive {
		s[node] = cache.Shared
	}
	return dirty
}

func setup(nodes int) (*Directory, *fakePeers) {
	p := newFakePeers(nodes)
	d := New(nodes, func(line uint64) int { return int(line>>6) % nodes }, p)
	return d, p
}

// apply mirrors a transaction result into the fake caches.
func apply(p *fakePeers, line uint64, node int, res Result) {
	p.set(line, node, res.Grant)
}

func TestFirstReadGrantsExclusive(t *testing.T) {
	d, p := setup(4)
	res := d.Read(64, 2) // home of line 64 is node 1, so this is remote
	apply(p, 64, 2, res)
	if res.Grant != cache.Exclusive {
		t.Fatalf("grant = %v, want Exclusive", res.Grant)
	}
	if res.Cat != CatRemoteClean {
		t.Fatalf("cat = %v (home=%d)", res.Cat, d.Home(64))
	}
	if owner, dirty := d.OwnerOf(64); owner != 2 || dirty {
		t.Fatalf("owner = %d dirty %v", owner, dirty)
	}
}

func TestLocalVsRemoteCategory(t *testing.T) {
	d, _ := setup(4)
	line := uint64(2 * 64) // home = node 2
	if d.Home(line) != 2 {
		t.Fatal("home mapping unexpected")
	}
	res := d.Read(line, 2)
	if res.Cat != CatLocal {
		t.Fatalf("read at home: cat %v", res.Cat)
	}
	d2, _ := setup(4)
	res = d2.Read(line, 0)
	if res.Cat != CatRemoteClean {
		t.Fatalf("remote read: cat %v", res.Cat)
	}
}

func TestMigratoryDirtyRead(t *testing.T) {
	d, p := setup(4)
	line := uint64(64)
	apply(p, line, 0, d.Write(line, 0)) // node 0 owns dirty
	res := d.Read(line, 3)
	apply(p, line, 3, res)
	if res.Cat != CatRemoteDirty {
		t.Fatalf("cat = %v, want remote-dirty", res.Cat)
	}
	if res.Grant != cache.Modified {
		t.Fatalf("migratory grant = %v, want Modified", res.Grant)
	}
	if owner, dirty := d.OwnerOf(line); owner != 3 || !dirty {
		t.Fatalf("owner after migration = %d dirty %v", owner, dirty)
	}
	if d.IsSharer(line, 0) {
		t.Fatal("old owner still a sharer after migration")
	}
	// No home writeback happened: ownership moved.
	if d.Stats.Writebacks != 0 {
		t.Fatalf("writebacks = %d, want 0", d.Stats.Writebacks)
	}
}

func TestNonMigratoryDirtyRead(t *testing.T) {
	d, p := setup(4)
	d.Migratory = false
	line := uint64(64)
	apply(p, line, 0, d.Write(line, 0))
	res := d.Read(line, 3)
	apply(p, line, 3, res)
	if res.Cat != CatRemoteDirty || res.Grant != cache.Shared {
		t.Fatalf("non-migratory: cat %v grant %v", res.Cat, res.Grant)
	}
	if owner, _ := d.OwnerOf(line); owner != -1 {
		t.Fatalf("owner %d after sharing writeback", owner)
	}
	if !d.IsSharer(line, 0) || !d.IsSharer(line, 3) {
		t.Fatal("both nodes should share the line")
	}
	if d.Stats.Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1 (sharing writeback)", d.Stats.Writebacks)
	}
}

func TestCleanExclusiveReadComesFromHome(t *testing.T) {
	d, p := setup(4)
	line := uint64(64)
	apply(p, line, 0, d.Read(line, 0)) // E, clean
	res := d.Read(line, 2)
	if res.Cat != CatRemoteClean {
		t.Fatalf("clean-E read: cat %v, want remote-clean (data from home)", res.Cat)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	d, p := setup(8)
	line := uint64(64)
	d.Migratory = false
	apply(p, line, 0, d.Write(line, 0))
	apply(p, line, 1, d.Read(line, 1)) // 0,1 share now
	apply(p, line, 2, d.Read(line, 2))
	res := d.Write(line, 5)
	apply(p, line, 5, res)
	if res.Invalidations != 3 {
		t.Fatalf("invalidations = %d, want 3 (nodes 0,1,2)", res.Invalidations)
	}
	if res.Upgrade {
		t.Fatal("writer was not a sharer; not an upgrade")
	}
	if d.SharerCount(line) != 1 || !d.IsSharer(line, 5) {
		t.Fatal("writer is not sole sharer")
	}
}

func TestUpgrade(t *testing.T) {
	d, p := setup(4)
	d.Migratory = false
	line := uint64(64)
	apply(p, line, 0, d.Write(line, 0))
	apply(p, line, 1, d.Read(line, 1)) // share 0,1
	res := d.Write(line, 1)            // 1 upgrades
	if !res.Upgrade {
		t.Fatal("expected an upgrade")
	}
	if res.Invalidations != 1 {
		t.Fatalf("upgrade invalidations = %d, want 1", res.Invalidations)
	}
	if d.Stats.Upgrades != 1 {
		t.Fatalf("upgrade stat = %d", d.Stats.Upgrades)
	}
}

func TestDirtyWriteMiss(t *testing.T) {
	d, p := setup(4)
	line := uint64(64)
	apply(p, line, 0, d.Write(line, 0))
	res := d.Write(line, 2)
	if res.Cat != CatRemoteDirty || res.Invalidations != 1 {
		t.Fatalf("dirty write miss: cat %v inv %d", res.Cat, res.Invalidations)
	}
}

func TestWritebackDirty(t *testing.T) {
	d, p := setup(4)
	line := uint64(64)
	apply(p, line, 0, d.Write(line, 0))
	d.WritebackDirty(line, 0)
	if owner, _ := d.OwnerOf(line); owner != -1 {
		t.Fatal("owner remains after writeback")
	}
	if d.Entries() != 0 {
		t.Fatalf("entry not reclaimed: %d", d.Entries())
	}
	// Next read is clean from home.
	if res := d.Read(line, 1); res.Cat != CatRemoteClean && res.Cat != CatLocal {
		t.Fatalf("read after writeback: cat %v", res.Cat)
	}
}

func TestWritebackByNonOwnerPanics(t *testing.T) {
	d, p := setup(4)
	apply(p, 64, 0, d.Write(64, 0))
	defer func() {
		if recover() == nil {
			t.Fatal("writeback by non-owner did not panic")
		}
	}()
	d.WritebackDirty(64, 1)
}

func TestEvictClean(t *testing.T) {
	d, p := setup(4)
	line := uint64(64)
	apply(p, line, 0, d.Read(line, 0)) // E at node 0
	d.EvictClean(line, 0)
	if d.Entries() != 0 {
		t.Fatal("entry not reclaimed after clean eviction of sole copy")
	}
	if d.Stats.ReplHints != 1 {
		t.Fatalf("replacement hints = %d", d.Stats.ReplHints)
	}
}

func TestRACLocationFlag(t *testing.T) {
	d, p := setup(4)
	line := uint64(64)
	apply(p, line, 0, d.Write(line, 0))
	d.MoveToRAC(line, 0)
	if !d.OwnerInRAC(line) {
		t.Fatal("inRAC flag not set")
	}
	// A read must now be classified as RAC-sourced dirty.
	res := d.Read(line, 2)
	if res.Cat != CatRemoteDirtyRAC {
		t.Fatalf("cat = %v, want remote-dirty-rac", res.Cat)
	}
	// And back.
	d2, p2 := setup(4)
	apply(p2, line, 0, d2.Write(line, 0))
	d2.MoveToRAC(line, 0)
	d2.MoveToL2(line, 0)
	if d2.OwnerInRAC(line) {
		t.Fatal("inRAC flag not cleared")
	}
}

func TestMoveToRACByNonOwnerIsNoop(t *testing.T) {
	d, p := setup(4)
	apply(p, 64, 0, d.Write(64, 0))
	d.MoveToRAC(64, 1)
	if d.OwnerInRAC(64) {
		t.Fatal("non-owner MoveToRAC set the flag")
	}
}

func TestNodeBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with 0 nodes did not panic")
		}
	}()
	New(0, func(uint64) int { return 0 }, newFakePeers(1))
}

func TestResetStats(t *testing.T) {
	d, p := setup(2)
	apply(p, 64, 0, d.Write(64, 0))
	d.ResetStats()
	if d.Stats != (Stats{}) {
		t.Fatal("stats not zeroed")
	}
	if owner, _ := d.OwnerOf(64); owner != 0 {
		t.Fatal("state lost on stats reset")
	}
}

func TestCategoryString(t *testing.T) {
	want := map[Category]string{
		CatLocal: "local", CatRemoteClean: "remote-clean",
		CatRemoteDirty: "remote-dirty", CatRemoteDirtyRAC: "remote-dirty-rac",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), s)
		}
	}
}

// TestProtocolInvariants drives random traffic and checks global protocol
// invariants after every step: at most one owner, the owner is always a
// sharer, no node is Modified without directory ownership, and the fake
// cache states stay consistent with the directory's sharer vector.
func TestProtocolInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		r := sim.NewRNG(seed)
		const nodes = 8
		d, p := setup(nodes)
		if r.Bool(0.5) {
			d.Migratory = false
		}
		lines := []uint64{0, 64, 128, 192, 256}
		for step := 0; step < 600; step++ {
			line := lines[r.Intn(len(lines))]
			node := r.Intn(nodes)
			st := p.of(line)[node]
			switch r.Intn(4) {
			case 0: // read (only when not already present)
				if st == cache.Invalid {
					apply(p, line, node, d.Read(line, node))
				}
			case 1: // write miss or upgrade
				if st == cache.Invalid || st == cache.Shared {
					apply(p, line, node, d.Write(line, node))
				} else {
					// silent E->M upgrade
					p.set(line, node, cache.Modified)
				}
			case 2: // evict
				switch st {
				case cache.Modified:
					d.WritebackDirty(line, node)
					p.set(line, node, cache.Invalid)
				case cache.Shared, cache.Exclusive:
					d.EvictClean(line, node)
					p.set(line, node, cache.Invalid)
				}
			case 3: // RAC migration flag exercises
				if st == cache.Modified && r.Bool(0.5) {
					d.MoveToRAC(line, node)
				} else if st == cache.Modified {
					d.MoveToL2(line, node)
				}
			}
			// Invariants.
			for _, l := range lines {
				owner, _ := d.OwnerOf(l)
				modified := -1
				for n := 0; n < nodes; n++ {
					ns := p.of(l)[n]
					if ns == cache.Modified || ns == cache.Exclusive {
						if modified >= 0 {
							return false // two exclusive holders
						}
						modified = n
					}
					if ns != cache.Invalid && !d.IsSharer(l, n) {
						return false // cache holds line directory forgot
					}
				}
				if modified >= 0 && owner != modified {
					return false // exclusive holder unknown to directory
				}
				if owner >= 0 && !d.IsSharer(l, owner) {
					return false // owner not in sharer vector
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestWideMachineCrossesWordBoundary drives a 128-node directory so sharer
// bookkeeping exercises both words of the sharer set: every node reads one
// line (127 sharers past the first word), then one write must invalidate all
// 127 other copies, and a snapshot of the wide state must round-trip.
func TestWideMachineCrossesWordBoundary(t *testing.T) {
	d, p := setup(MaxNodes)
	line := uint64(64) // home = node 1

	apply(p, line, 0, d.Read(line, 0)) // exclusive grant
	for n := 1; n < MaxNodes; n++ {
		res := d.Read(line, n)
		apply(p, line, n, res)
		if res.Grant != cache.Shared {
			t.Fatalf("node %d read grant = %v, want Shared", n, res.Grant)
		}
	}
	if got := d.SharerCount(line); got != MaxNodes {
		t.Fatalf("SharerCount = %d, want %d", got, MaxNodes)
	}
	for _, n := range []int{0, 63, 64, MaxNodes - 1} {
		if !d.IsSharer(line, n) {
			t.Fatalf("node %d not recorded as sharer", n)
		}
	}

	// Snapshot round-trip with bits set in the high sharer word.
	w := snapshot.NewWriter()
	d.SaveState(w.Section("directory"))
	var buf bytes.Buffer
	if err := w.Emit(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := snapshot.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	dec, err := r.Section("directory")
	if err != nil {
		t.Fatal(err)
	}
	d2, _ := setup(MaxNodes)
	if err := d2.LoadState(dec); err != nil {
		t.Fatal(err)
	}
	if got := d2.SharerCount(line); got != MaxNodes {
		t.Fatalf("restored SharerCount = %d, want %d", got, MaxNodes)
	}
	if !d2.IsSharer(line, MaxNodes-1) {
		t.Fatal("restored directory lost the high-word sharer bit")
	}

	res := d.Write(line, MaxNodes-1)
	apply(p, line, MaxNodes-1, res)
	if res.Invalidations != MaxNodes-1 {
		t.Fatalf("write invalidations = %d, want %d", res.Invalidations, MaxNodes-1)
	}
	if !res.Upgrade {
		t.Fatal("writer held a shared copy; expected an upgrade")
	}
	if owner, dirty := d.OwnerOf(line); owner != MaxNodes-1 || !dirty {
		t.Fatalf("owner = %d dirty %v after wide write", owner, dirty)
	}
	if got := d.SharerCount(line); got != 1 {
		t.Fatalf("SharerCount after write = %d, want 1", got)
	}
}
