// Package paper records the numbers the paper itself reports, so that
// regenerated figures can be scored against them automatically. Values come
// from two kinds of sources and are flagged accordingly:
//
//   - Stated: given numerically in the paper's prose ("a 1.43 times
//     improvement", "the RAC has a hit rate of 42%") or in Figure 3's table.
//   - FromBars: read off the published bar charts; the paper labels most
//     bars with their values, but chart-derived numbers still carry more
//     uncertainty than prose, so comparisons use a wider tolerance.
//
// Bars the paper does not label (and prose does not pin) are simply absent:
// the reproduction makes no numeric claim for them, only the qualitative
// ones checked in internal/experiments tests.
package paper

// Provenance says how a published value is known.
type Provenance uint8

const (
	// Stated in prose or a table.
	Stated Provenance = iota
	// FromBars: read off a labelled bar chart.
	FromBars
)

// Value is one published number.
type Value struct {
	V    float64
	Prov Provenance
}

// Tolerance returns the acceptable relative deviation when scoring a
// reproduction against this value. These are deliberately loose — the
// substrate is a different database engine on a synthetic OS — and exist to
// flag *shape* violations, not to assert equality.
func (v Value) Tolerance() float64 {
	if v.Prov == Stated {
		return 0.25
	}
	return 0.45
}

// FigureExpectation holds the published normalized series for one figure.
type FigureExpectation struct {
	// ID matches experiments.Figure.ID.
	ID string
	// Exec maps bar label -> normalized execution time (baseline = 100).
	Exec map[string]Value
	// Misses maps bar label -> normalized L2 misses (baseline = 100).
	Misses map[string]Value
}

// Expectations returns everything the paper pins numerically, keyed by
// figure ID.
func Expectations() map[string]FigureExpectation {
	bars := func(v float64) Value { return Value{V: v, Prov: FromBars} }
	stated := func(v float64) Value { return Value{V: v, Prov: Stated} }

	return map[string]FigureExpectation{
		"Figure 5": {
			ID: "Figure 5",
			Exec: map[string]Value{
				"Base 1M1w": stated(100),
				"Base 2M1w": bars(83),
				"Base 4M1w": bars(71),
				"Base 8M1w": bars(66),
				"Base 1M4w": bars(82),
				"Base 2M4w": bars(70),
				"Base 8M4w": bars(67),
				"Cons 8M4w": bars(67),
			},
			Misses: map[string]Value{
				"Base 1M1w": stated(100),
				"Base 2M1w": bars(58),
				"Base 4M1w": bars(43),
				"Base 8M1w": bars(32),
				"Base 1M4w": bars(14),
				"Base 2M4w": bars(11),
				"Base 8M4w": stated(2), // "almost a 50 times reduction"
			},
		},
		"Figure 7": {
			ID: "Figure 7",
			Exec: map[string]Value{
				"8M1w Base": stated(100),
				"1M8w":      bars(85),
				"2M8w":      stated(71), // "over a 1.4 times improvement"
				"2M4w":      bars(69),
			},
			Misses: map[string]Value{
				"8M1w Base": stated(100),
				"1M8w":      bars(182),
				"2M8w":      bars(47),
				"2M4w":      bars(78),
				"2M1w":      bars(396),
				"2M2w":      bars(242),
			},
		},
		"Figure 8": {
			ID: "Figure 8",
			Exec: map[string]Value{
				"8M1w Base": stated(100),
				"2M8w":      stated(84), // "about a 1.2 times improvement"
				"8M8w DRAM": stated(92), // "about a 10% loss" vs 2M8w
			},
		},
		"Figure 10 (uni)": {
			ID: "Figure 10 (uni)",
			Exec: map[string]Value{
				"Base":  stated(100),
				"L2":    stated(70), // "up to a 1.4 times performance improvement"
				"L2+MC": bars(69),
			},
		},
		"Figure 10 (8p)": {
			ID: "Figure 10 (8p)",
			Exec: map[string]Value{
				"Base":  stated(100),
				"L2":    stated(84), // "1.2 times"
				"L2+MC": bars(84),
				"All":   stated(70), // "1.43 times improvement"
			},
		},
		"Figure 12 (1M)": {
			ID: "Figure 12 (1M)",
			Exec: map[string]Value{
				"NoRAC 1M4w":  stated(100),
				"RAC 1M4w":    stated(95.7), // "4.3% reduction in execution time"
				"NoRAC 1.25M": bars(95),
			},
		},
		"Figure 12 (2M)": {
			ID: "Figure 12 (2M)",
			Exec: map[string]Value{
				"NoRAC 2M8w": stated(100),
				"RAC 2M8w":   stated(100), // "almost the same with and without"
			},
		},
		"Figure 13 (uni)": {
			ID: "Figure 13 (uni)",
			Exec: map[string]Value{
				"Base InOrder": stated(140), // "a gain of about 1.4 times"
				"Base OOO":     stated(100),
				"L2 OOO":       bars(68),
				"L2+MC OOO":    bars(67),
			},
		},
		"Figure 13 (8p)": {
			ID: "Figure 13 (8p)",
			Exec: map[string]Value{
				"Base InOrder": stated(130), // "1.3 times in multiprocessor"
				"Base OOO":     stated(100),
				"L2 OOO":       bars(85),
				"L2+MC OOO":    bars(85),
				"All OOO":      stated(70), // identical relative gains to Fig. 10
			},
		},
	}
}

// StatedRatios are the prose-level ratio claims not tied to a single figure.
type RatioClaim struct {
	Name  string
	Value float64
	Where string
}

// Ratios returns the paper's headline ratio claims.
func Ratios() []RatioClaim {
	return []RatioClaim{
		{"uni L2-integration speedup", 1.4, "Sec. 3"},
		{"MP L2-integration speedup", 1.2, "Sec. 3"},
		{"MP full-integration speedup", 1.43, "Sec. 5"},
		{"MP full vs conservative", 1.56, "Sec. 5"},
		{"OOO gain uniprocessor", 1.4, "Sec. 7"},
		{"OOO gain multiprocessor", 1.3, "Sec. 7"},
		{"RAC hit rate, 1M4w no-repl", 0.42, "Sec. 6"},
		{"RAC hit rate, 1M4w repl", 0.30, "Sec. 6"},
	}
}
