package rac

import (
	"testing"

	"oltpsim/internal/cache"
)

func TestTakeIsExclusive(t *testing.T) {
	r := New(64*64, 8)
	r.Insert(128, cache.Shared)
	st, ok := r.Take(128)
	if !ok || st != cache.Shared {
		t.Fatalf("Take = (%v, %v)", st, ok)
	}
	if _, ok := r.Take(128); ok {
		t.Fatal("line still in RAC after Take")
	}
	if r.Stats.Hits != 1 || r.Stats.Probes != 2 {
		t.Fatalf("stats %+v", r.Stats)
	}
}

func TestInsertEviction(t *testing.T) {
	r := New(8*64, 8) // one set, 8 ways
	for i := uint64(0); i < 8; i++ {
		if _, vst := r.Insert(i*64, cache.Modified); vst != cache.Invalid {
			t.Fatal("premature eviction")
		}
	}
	victim, vst := r.Insert(8*64, cache.Modified)
	if vst != cache.Modified || victim != 0 {
		t.Fatalf("victim (%#x, %v), want LRU line 0", victim, vst)
	}
	if r.Stats.Evictions != 1 || r.Stats.Inserts != 9 {
		t.Fatalf("stats %+v", r.Stats)
	}
}

func TestInvalidateAndDowngrade(t *testing.T) {
	r := New(64*64, 8)
	r.Insert(64, cache.Modified)
	if !r.Downgrade(64) {
		t.Fatal("Downgrade failed")
	}
	if r.Probe(64) != cache.Shared {
		t.Fatal("state after downgrade not Shared")
	}
	if st := r.Invalidate(64); st != cache.Shared {
		t.Fatalf("Invalidate returned %v", st)
	}
	if r.Occupancy() != 0 {
		t.Fatal("line remains after invalidate")
	}
	if r.Downgrade(64) {
		t.Fatal("Downgrade of absent line succeeded")
	}
}

func TestHitRate(t *testing.T) {
	r := New(64*64, 8)
	if r.Stats.HitRate() != 0 {
		t.Fatal("hit rate of fresh RAC not 0")
	}
	r.Insert(0, cache.Shared)
	r.Take(0)  // hit
	r.Take(64) // miss
	if hr := r.Stats.HitRate(); hr != 0.5 {
		t.Fatalf("hit rate %v, want 0.5", hr)
	}
}

func TestTagCost(t *testing.T) {
	// Paper Section 6: the 8 MB RAC's on-chip tags displace ~0.25 MB of L2.
	r := New(8<<20, 8)
	if r.TagBytes < 256<<10 || r.TagBytes > 1<<20 {
		t.Fatalf("tag cost %d bytes implausible for an 8 MB RAC", r.TagBytes)
	}
}

func TestResetStats(t *testing.T) {
	r := New(64*64, 8)
	r.Insert(0, cache.Shared)
	r.Take(0)
	r.ResetStats()
	if r.Stats != (Stats{}) {
		t.Fatal("stats not reset")
	}
}
