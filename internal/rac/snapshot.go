package rac

import "oltpsim/internal/snapshot"

// SaveState writes the backing tag store and the RAC counters. TagBytes is
// derived from geometry and is not state.
func (r *RAC) SaveState(e *snapshot.Encoder) {
	r.c.SaveState(e)
	e.U64(r.Stats.Probes)
	e.U64(r.Stats.Hits)
	e.U64(r.Stats.Inserts)
	e.U64(r.Stats.Evictions)
}

// LoadState restores a RAC of identical geometry.
func (r *RAC) LoadState(d *snapshot.Decoder) error {
	if err := r.c.LoadState(d); err != nil {
		return err
	}
	stats := Stats{
		Probes:    d.U64(),
		Hits:      d.U64(),
		Inserts:   d.U64(),
		Evictions: d.U64(),
	}
	if err := d.Err(); err != nil {
		return err
	}
	r.Stats = stats
	return nil
}
