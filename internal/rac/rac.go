// Package rac implements the remote access cache of paper Section 6: a
// large (8 MB 8-way) cache of *remote* lines only, whose data lives in a
// reserved portion of the node's local main memory while the tags are kept
// on the processor chip for fast lookup. A hit therefore costs local-memory
// latency (75 ns); a dirty line fetched out of a remote node's RAC costs
// 250 ns versus 200 ns from a remote L2.
//
// The RAC behaves as an exclusive victim cache below the L2: lines enter it
// when the L2 evicts a remote line, and a RAC hit promotes the line back to
// the L2. Because it is bigger than the L2 it holds dirty remote data
// longer before the data returns to its home — the mechanism behind the
// paper's observation that a RAC *increases* 3-hop misses and invalidation
// rates even as it converts 2-hop misses into local ones.
package rac

import (
	"oltpsim/internal/cache"
	"oltpsim/internal/memref"
)

// Stats counts RAC activity.
type Stats struct {
	Probes    uint64
	Hits      uint64
	Inserts   uint64
	Evictions uint64
}

// HitRate returns hits/probes (the paper quotes 42%, 30%, <10% across its
// configurations).
func (s Stats) HitRate() float64 {
	if s.Probes == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Probes)
}

// RAC is one node's remote access cache.
type RAC struct {
	c *cache.Cache
	// TagBytes is the on-chip tag array cost, charged against L2 capacity in
	// the paper's "1.25 MB L2 instead of a RAC" comparison.
	TagBytes int64
	Stats    Stats
}

// New builds a RAC of the given geometry.
func New(sizeBytes int64, assoc int) *RAC {
	c := cache.New(cache.Config{Name: "RAC", SizeBytes: sizeBytes, Assoc: assoc, LineBytes: memref.LineBytes})
	// Tag cost: ~5 bytes of tag+state per 64-byte line (the paper argues an
	// 8 MB RAC's tags displace ~0.25 MB of on-chip L2).
	lines := sizeBytes / memref.LineBytes
	return &RAC{c: c, TagBytes: lines * 5}
}

// Take probes for line and removes it on a hit (exclusive with the L2),
// returning its state.
func (r *RAC) Take(line uint64) (cache.State, bool) {
	r.Stats.Probes++
	st := r.c.Access(line)
	if st == cache.Invalid {
		return cache.Invalid, false
	}
	r.Stats.Hits++
	r.c.Invalidate(line)
	return st, true
}

// Insert places an L2 victim into the RAC, returning the RAC's own victim
// (vstate Invalid if none).
func (r *RAC) Insert(line uint64, st cache.State) (victim uint64, vstate cache.State) {
	r.Stats.Inserts++
	victim, vstate = r.c.Insert(line, st)
	if vstate != cache.Invalid {
		r.Stats.Evictions++
	}
	return victim, vstate
}

// Invalidate removes line (coherence invalidation), returning its prior
// state.
func (r *RAC) Invalidate(line uint64) cache.State { return r.c.Invalidate(line) }

// Downgrade demotes a Modified/Exclusive line to Shared (remote read).
func (r *RAC) Downgrade(line uint64) bool {
	if st := r.c.Probe(line); st == cache.Modified || st == cache.Exclusive {
		return r.c.SetState(line, cache.Shared)
	}
	return false
}

// Probe returns the state of line without side effects.
func (r *RAC) Probe(line uint64) cache.State { return r.c.Probe(line) }

// Occupancy returns the number of resident lines.
func (r *RAC) Occupancy() int { return r.c.Occupancy() }

// ResetStats zeroes counters.
func (r *RAC) ResetStats() { r.Stats = Stats{} }
