package oltpsim

import (
	"strings"
	"testing"
)

// TestFacadeQuickRun exercises the public API end to end at the smallest
// scale: configure, run, inspect.
func TestFacadeQuickRun(t *testing.T) {
	opt := QuickOptions()
	opt.WarmupTxns, opt.MeasureTxns = 100, 200

	base := opt.Run(BaseConfig(1, 8*MB, 1))
	full := opt.Run(IntegratedL2Config(1, 2*MB, 8, OnChipSRAM))
	if full.CyclesPerTxn() >= base.CyclesPerTxn() {
		t.Fatalf("integrated L2 (%0.f) not faster than base (%.0f)",
			full.CyclesPerTxn(), base.CyclesPerTxn())
	}
	if !strings.Contains(base.Summary(), "cycles/txn") {
		t.Fatal("summary malformed")
	}
}

// TestFacadeLatencyTable checks the re-exported latency entry points.
func TestFacadeLatencyTable(t *testing.T) {
	if got := Latencies(FullIntegration, 8, OnChipSRAM); got.L2Hit != 15 || got.RemoteDirty != 200 {
		t.Fatalf("full-integration latencies %+v", got)
	}
	if len(FigureThree()) != 7 {
		t.Fatal("FigureThree row count")
	}
	m := DefaultCrossingModel()
	if m.Derive(Base, 1, OffChipSRAM) != Latencies(Base, 1, OffChipSRAM) {
		t.Fatal("crossing model diverges from table")
	}
}

// TestFacadeCustomSystem assembles a system through the exported
// constructors rather than the experiment runner.
func TestFacadeCustomSystem(t *testing.T) {
	opt := QuickOptions()
	cfg := FullIntegrationConfig(2, 2*MB, 8)
	w, err := NewWorkload(opt.Params(cfg))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Run(20, 50)
	if res.Txns < 50 {
		t.Fatalf("measured %d txns", res.Txns)
	}
}

// TestFacadeFigureRunner runs the smallest figure end to end through the
// public API.
func TestFacadeFigureRunner(t *testing.T) {
	opt := QuickOptions()
	opt.WarmupTxns, opt.MeasureTxns = 80, 150
	fig := Fig12Large(opt)
	if len(fig.Bars) != 2 {
		t.Fatalf("figure has %d bars", len(fig.Bars))
	}
	if fig.RenderExec() == "" {
		t.Fatal("empty rendering")
	}
}
