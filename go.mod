module oltpsim

go 1.22
