package oltpsim

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"oltpsim/internal/cache"
	"oltpsim/internal/coherence"
	"oltpsim/internal/dss"
	"oltpsim/internal/experiments"
	"oltpsim/internal/lint"
	"oltpsim/internal/memref"
	"oltpsim/internal/oltp"
	"oltpsim/internal/server"
	"oltpsim/internal/sim"
	"oltpsim/internal/tpcb"
)

// benchOptions returns the measurement protocol for the figure benchmarks.
// Full paper fidelity (40-branch database, 2000 measured transactions) runs
// in a couple of seconds per configuration; `go test -short -bench=.`
// switches to the scaled-down database.
func benchOptions(b *testing.B) experiments.Options {
	if testing.Short() {
		o := experiments.QuickOptions()
		o.WarmupTxns, o.MeasureTxns = 300, 600
		return o
	}
	o := experiments.DefaultOptions()
	o.WarmupTxns = 3000
	return o
}

// benchFigure runs a figure once per iteration, logs the paper-format rows,
// and reports the bars as benchmark metrics so regressions are visible in
// benchstat output.
func benchFigure(b *testing.B, run func(experiments.Options) experiments.Figure, misses bool) {
	o := benchOptions(b)
	var fig experiments.Figure
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig = run(o)
	}
	b.StopTimer()
	b.Log("\n" + fig.RenderExec())
	if misses {
		b.Log("\n" + fig.RenderMisses())
	}
	b.Log("\n" + fig.RenderDetail())
	for i := range fig.Bars {
		b.ReportMetric(fig.NormExec(i), sanitizeMetric(fig.Bars[i].Name)+"-exec")
	}
}

func sanitizeMetric(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r == ' ' || r == '/':
			out = append(out, '_')
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

// BenchmarkFig02BaseParams prints the base system parameters (paper Figure
// 2) for the record.
func BenchmarkFig02BaseParams(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = BaseConfig(8, 8*MB, 1)
	}
	cfg := BaseConfig(8, 8*MB, 1)
	b.Logf("\nFigure 2 — Base system parameters:\n"+
		"  processor speed: 1 GHz (cycles == ns)\n"+
		"  line size: %d B\n  L1 I/D: %d KB %d-way each\n  L2: %d MB %d-way\n  processors: %d\n",
		memref.LineBytes, cfg.L1SizeBytes/KB, cfg.L1Assoc, cfg.L2SizeBytes/MB, cfg.L2Assoc, cfg.Processors)
}

// BenchmarkFig03LatencyTable regenerates the latency table (paper Figure 3).
func BenchmarkFig03LatencyTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = FigureThree()
	}
	out := "\nFigure 3 — Memory latencies (cycles @ 1 GHz):\n"
	for _, row := range FigureThree() {
		out += fmt.Sprintf("  %-28s L2Hit %3d  Local %3d  Remote %3d  Dirty %3d\n",
			row.Label, row.Lat.L2Hit, row.Lat.Local, row.Lat.Remote, row.Lat.RemoteDirty)
	}
	b.Log(out)
}

// BenchmarkFig05OffChipL2Uni regenerates paper Figure 5.
func BenchmarkFig05OffChipL2Uni(b *testing.B) { benchFigure(b, experiments.Fig05, true) }

// BenchmarkFig06OffChipL2MP regenerates paper Figure 6.
func BenchmarkFig06OffChipL2MP(b *testing.B) { benchFigure(b, experiments.Fig06, true) }

// BenchmarkFig07OnChipL2Uni regenerates paper Figure 7.
func BenchmarkFig07OnChipL2Uni(b *testing.B) { benchFigure(b, experiments.Fig07, true) }

// BenchmarkFig08OnChipL2MP regenerates paper Figure 8.
func BenchmarkFig08OnChipL2MP(b *testing.B) { benchFigure(b, experiments.Fig08, true) }

// BenchmarkFig10IntegrationUni regenerates the uniprocessor half of Figure 10.
func BenchmarkFig10IntegrationUni(b *testing.B) { benchFigure(b, experiments.Fig10Uni, false) }

// BenchmarkFig10IntegrationMP regenerates the 8-processor half of Figure 10.
func BenchmarkFig10IntegrationMP(b *testing.B) { benchFigure(b, experiments.Fig10MP, false) }

// BenchmarkFig11RACMisses regenerates paper Figure 11 (RAC miss mix).
func BenchmarkFig11RACMisses(b *testing.B) { benchFigure(b, experiments.Fig11, true) }

// BenchmarkFig12RACPerfSmall regenerates the 1 MB part of Figure 12.
func BenchmarkFig12RACPerfSmall(b *testing.B) { benchFigure(b, experiments.Fig12Small, false) }

// BenchmarkFig12RACPerfLarge regenerates the 2 MB part of Figure 12.
func BenchmarkFig12RACPerfLarge(b *testing.B) { benchFigure(b, experiments.Fig12Large, false) }

// BenchmarkFig13OutOfOrderUni regenerates the uniprocessor half of Figure 13.
func BenchmarkFig13OutOfOrderUni(b *testing.B) { benchFigure(b, experiments.Fig13Uni, false) }

// BenchmarkFig13OutOfOrderMP regenerates the 8-processor half of Figure 13.
func BenchmarkFig13OutOfOrderMP(b *testing.B) { benchFigure(b, experiments.Fig13MP, false) }

// BenchmarkMissClassification quantifies the Section 3/8 claim directly:
// the misses an 8 MB direct-mapped cache suffers are mostly conflicts, which
// the classifier proves against a same-capacity fully-associative shadow.
func BenchmarkMissClassification(b *testing.B) {
	o := benchOptions(b)
	var cold, capacity, conflict uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := BaseConfig(1, 8*MB, 1)
		cfg.Classify = true
		h := oltp.MustNewHarness(o.Params(cfg))
		sys := MustNewSystem(cfg, h)
		sys.Run(o.WarmupTxns, o.MeasureTxns)
		cl := sys.Classifier()
		cold, capacity, conflict = cl.Counts[cache.Cold], cl.Counts[cache.Capacity], cl.Counts[cache.Conflict]
	}
	b.StopTimer()
	total := cold + capacity + conflict
	if total > 0 {
		b.Logf("\n8M direct-mapped L2 miss classes: cold %.1f%%  capacity %.1f%%  conflict %.1f%%",
			100*float64(cold)/float64(total), 100*float64(capacity)/float64(total), 100*float64(conflict)/float64(total))
		b.ReportMetric(100*float64(conflict)/float64(total), "conflict-%")
	}
}

// --- Runner benchmarks: serial vs. parallel figure regeneration -------------

// benchRunnerWorkers times one multi-bar figure (the 9-bar Figure 5 sweep)
// with a fixed worker-pool width; compare the Serial and Parallel variants
// with benchstat to see the fan-out speedup on your host.
func benchRunnerWorkers(b *testing.B, workers int) {
	o := benchOptions(b)
	o.Workers = workers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = experiments.Fig05(o)
	}
}

// BenchmarkRunnerSerial runs the Figure 5 sweep one bar at a time.
func BenchmarkRunnerSerial(b *testing.B) { benchRunnerWorkers(b, 1) }

// BenchmarkRunnerParallel runs the same sweep across GOMAXPROCS workers; the
// results are bit-identical to the serial run (TestParallelMatchesSerial),
// only the wall clock differs.
func BenchmarkRunnerParallel(b *testing.B) { benchRunnerWorkers(b, 0) }

// benchWarmOptions is the protocol for the warm-reuse pair: snapshot restore
// has a fixed cost (encoding the tag arrays and database tables), so reuse
// pays off when the shared warmup dwarfs it — the sensitivity-sweep regime
// the feature is built for. The sweep visits one machine shape under six
// names; serial workers keep the cold/warm comparison a pure warmup story.
func benchWarmOptions(b *testing.B) (experiments.Options, []Config) {
	o := benchOptions(b)
	o.Workers = 1
	o.WarmupTxns = 4 * o.MeasureTxns
	cfgs := make([]Config, 6)
	for i := range cfgs {
		cfg := FullIntegrationConfig(8, 2*MB, 8)
		cfg.Name = fmt.Sprintf("%s #%d", cfg.Name, i)
		cfgs[i] = cfg
	}
	return o, cfgs
}

// BenchmarkRunnerColdRepeat runs the repeated-shape sweep paying a full
// warmup per point: the reference the warm variant is judged against.
func BenchmarkRunnerColdRepeat(b *testing.B) {
	o, cfgs := benchWarmOptions(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = o.RunMany(cfgs)
	}
}

// BenchmarkRunnerWarmReuse runs the same sweep sharing one end-of-warmup
// snapshot across the identical shapes. Results are bit-identical to the
// cold sweep (TestSnapshotWarmReuse); the gap to ColdRepeat is the reuse
// payoff, and cmd/benchdiff guards it from regressing into a slowdown.
func BenchmarkRunnerWarmReuse(b *testing.B) {
	o, cfgs := benchWarmOptions(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.WarmSnapshot = experiments.NewWarmCache()
		_ = o.RunMany(cfgs)
	}
}

// --- Ablation benchmarks: design choices DESIGN.md calls out ---------------

// BenchmarkAblationMigratory measures the migratory-sharing optimization's
// effect on the 8-processor Base configuration.
func BenchmarkAblationMigratory(b *testing.B) {
	o := benchOptions(b)
	var on, off float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := BaseConfig(8, 8*MB, 1)
		rOn := o.Run(cfg)
		on = rOn.CyclesPerTxn()
		cfg.NoMigratory = true
		cfg.Name = "Base no-migratory"
		rOff := o.Run(cfg)
		off = rOff.CyclesPerTxn()
	}
	b.StopTimer()
	b.Logf("\nmigratory on %.0f cycles/txn, off %.0f (%.2fx)", on, off, off/on)
	b.ReportMetric(off/on, "slowdown-without-migratory")
}

// BenchmarkAblationVictimBuffer measures the 21364-style L2 victim buffer.
func BenchmarkAblationVictimBuffer(b *testing.B) {
	o := benchOptions(b)
	var without, with float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := IntegratedL2Config(1, 2*MB, 1, OnChipSRAM) // direct-mapped: conflicts to catch
		rWithout := o.Run(cfg)
		without = rWithout.CyclesPerTxn()
		cfg.VictimBuffers = 8
		cfg.Name = "L2 2M1w +VB"
		rWith := o.Run(cfg)
		with = rWith.CyclesPerTxn()
	}
	b.StopTimer()
	b.Logf("\nvictim buffer: without %.0f, with %.0f cycles/txn (%.2fx)", without, with, without/with)
	b.ReportMetric(without/with, "victim-buffer-speedup")
}

// BenchmarkAblationContention turns on the queuing layer (banked memory
// controllers + torus links) that the fixed Figure 3 latencies abstract away.
func BenchmarkAblationContention(b *testing.B) {
	o := benchOptions(b)
	var flat, queued float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := FullIntegrationConfig(8, 2*MB, 8)
		rFlat := o.Run(cfg)
		flat = rFlat.CyclesPerTxn()
		cfg.Contention = true
		cfg.Name = "All +contention"
		rQueued := o.Run(cfg)
		queued = rQueued.CyclesPerTxn()
	}
	b.StopTimer()
	b.Logf("\ncontention layer: flat %.0f, queued %.0f cycles/txn (+%.1f%%)", flat, queued, 100*(queued/flat-1))
	b.ReportMetric(queued/flat, "contention-slowdown")
}

// BenchmarkAblationSharedL2Latency sweeps the integrated L2 hit latency to
// show how strongly uniprocessor OLTP depends on it (the paper's Section 3
// design argument).
func BenchmarkAblationL2HitLatency(b *testing.B) {
	o := benchOptions(b)
	out := "\nL2 hit latency sweep (uniprocessor, 2M8w integrated):\n"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = "\nL2 hit latency sweep (uniprocessor, 2M8w integrated):\n"
		for _, hit := range []uint32{10, 15, 20, 25, 30} {
			cfg := IntegratedL2Config(1, 2*MB, 8, OnChipSRAM)
			lt := cfg.Latencies()
			lt.L2Hit = hit
			cfg.LatencyOverride = &lt
			cfg.Name = fmt.Sprintf("hit=%d", hit)
			res := o.Run(cfg)
			out += fmt.Sprintf("  L2 hit %2d cycles -> %.0f cycles/txn\n", hit, res.CyclesPerTxn())
		}
	}
	b.StopTimer()
	b.Log(out)
}

// BenchmarkExtensionCMP explores the paper's stated next step ("chip
// multiprocessing... should also be effective"): the same 8 cores arranged
// as 8x1, 4x2, and 2x4 chips, each chip fully integrated with a shared 2 MB
// 8-way L2. Cores sharing an L2 absorb intra-chip communication misses.
func BenchmarkExtensionCMP(b *testing.B) {
	o := benchOptions(b)
	type row struct {
		name   string
		cyc    float64
		remote float64
	}
	var rows []row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, perChip := range []int{1, 2, 4} {
			cfg := FullIntegrationConfig(8, 2*MB, 8)
			cfg.CoresPerChip = perChip
			cfg.Name = fmt.Sprintf("%dx%d", 8/perChip, perChip)
			res := o.Run(cfg)
			rows = append(rows, row{cfg.Name,
				res.CyclesPerTxn(),
				float64(res.Miss.RemoteClean()+res.Miss.RemoteDirty()) / float64(res.Txns)})
		}
	}
	b.StopTimer()
	out := "\nCMP arrangements of 8 cores (chips x cores/chip):\n"
	for _, r := range rows {
		out += fmt.Sprintf("  %-4s %8.0f cycles/txn  %6.1f remote misses/txn\n", r.name, r.cyc, r.remote)
	}
	b.Log(out)
	if len(rows) == 3 {
		b.ReportMetric(rows[0].cyc/rows[1].cyc, "4x2-speedup")
		b.ReportMetric(rows[0].cyc/rows[2].cyc, "2x4-speedup")
	}
}

// BenchmarkExtensionDSS measures the paper's framing contrast: decision
// support is "relatively insensitive to memory system performance" while
// OLTP is not. Same machine ladder, scan queries instead of transactions.
func BenchmarkExtensionDSS(b *testing.B) {
	mkParams := func(cfg Config) dss.Params {
		var p dss.Params
		if testing.Short() {
			p = dss.TestParams(cfg.Processors)
		} else {
			p = dss.DefaultParams(cfg.Processors)
		}
		p.CoresPerChip = cfg.CoresPerChip
		return p
	}
	run := func(cfg Config) Result {
		sys := MustNewSystem(cfg, dss.MustNewHarness(mkParams(cfg)))
		units := uint64(400)
		if testing.Short() {
			units = 150
		}
		return sys.Run(units/4, units)
	}
	var base, full Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base = run(BaseConfig(8, 8*MB, 1))
		full = run(FullIntegrationConfig(8, 2*MB, 8))
	}
	b.StopTimer()
	gain := base.CyclesPerTxn() / full.CyclesPerTxn()
	b.Logf("\nDSS scan workload, 8 CPUs: Base %.0f -> Full %.0f cycles/unit (%.2fx; OLTP gets ~1.35x)\n"+
		"DSS 3-hop misses: %d of %d total (OLTP: the majority)",
		base.CyclesPerTxn(), full.CyclesPerTxn(), gain,
		full.Miss.RemoteDirty(), full.Miss.Total())
	b.ReportMetric(gain, "dss-integration-speedup")
}

// BenchmarkExtensionScaling sweeps the machine size for Base and Full
// integration. Communication misses grow with processor count (more sharers
// for the same hot metadata), so the integration gain — driven by the dirty
// 3-hop latency — grows with it; the paper only reports the 8-CPU point.
func BenchmarkExtensionScaling(b *testing.B) {
	o := benchOptions(b)
	type row struct {
		procs      int
		base, full float64
		dirtyShare float64
	}
	var rows []row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, procs := range []int{2, 4, 8, 16} {
			rb := o.Run(BaseConfig(procs, 8*MB, 1))
			rf := o.Run(FullIntegrationConfig(procs, 2*MB, 8))
			rows = append(rows, row{procs, rb.CyclesPerTxn(), rf.CyclesPerTxn(),
				float64(rb.Miss.RemoteDirty()) / float64(rb.Miss.Total())})
		}
	}
	b.StopTimer()
	out := "\nscaling: procs  Base cyc/txn  Full cyc/txn  gain   3-hop share (Base)\n"
	for _, r := range rows {
		out += fmt.Sprintf("  %5d %12.0f %13.0f %6.2fx %8.0f%%\n",
			r.procs, r.base, r.full, r.base/r.full, 100*r.dirtyShare)
	}
	b.Log(out)
}

// --- Microbenchmarks: substrate performance ---------------------------------

// BenchmarkCacheAccess measures the raw tag-store throughput that bounds
// simulation speed.
func BenchmarkCacheAccess(b *testing.B) {
	c := cache.New(cache.Config{Name: "b", SizeBytes: 2 * MB, Assoc: 8, LineBytes: 64})
	r := sim.NewRNG(1)
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = uint64(r.Intn(1<<22)) * 64
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		line := addrs[i&4095]
		if c.Access(line) == cache.Invalid {
			c.Insert(line, cache.Shared)
		}
	}
}

// BenchmarkDirectoryReadWrite measures protocol transaction throughput.
func BenchmarkDirectoryReadWrite(b *testing.B) {
	p := benchPeers{}
	d := coherence.New(8, func(line uint64) int { return int(line>>6) % 8 }, p)
	r := sim.NewRNG(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		line := uint64(r.Intn(65536)) * 64
		node := r.Intn(8)
		if i%3 == 0 {
			d.Write(line, node)
		} else {
			d.Read(line, node)
		}
	}
}

type benchPeers struct{}

func (benchPeers) InvalidatePeer(node int, line uint64) bool { return true }
func (benchPeers) DowngradePeer(node int, line uint64) bool  { return true }

// BenchmarkTPCBTransaction measures the functional database engine alone
// (no timing model): transactions per second of pure engine work.
func BenchmarkTPCBTransaction(b *testing.B) {
	cfg := tpcb.SmallConfig()
	e := tpcb.MustNewEngine(cfg, &tpcb.BumpAllocator{}, tpcb.NopEmitter{}, 1)
	e.Prewarm()
	sess := e.NewSession(0, 1<<40)
	r := sim.NewRNG(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ExecTxn(sess, e.DrawTxn(r))
		target, _ := e.LogWriterGather()
		e.LogWriterComplete(target)
		e.PostCommit(sess)
	}
}

// stepRefs advances sys until it has retired n more references. One Step
// call may bulk-retire a whole fast-forwarded hit run, so benchmarks that
// want ns-per-reference count retired references through Steps() instead of
// Step calls; b.N iterations of this loop body would conflate runs with
// references.
func stepRefs(sys *System, n uint64) {
	target := sys.Steps() + n
	for sys.Steps() < target && sys.Step() {
	}
}

// BenchmarkSimulationThroughput measures end-to-end simulated references per
// second on the full machine (8 CPUs, Base), the number that governs how
// long figure regeneration takes. ns/op is ns per retired reference
// (hit-run fast-forwarding retires many references per Step call).
// The steady-state loop must not allocate: ReportAllocs makes allocs/op
// part of the default output, and cmd/benchdiff fails CI if it ever rises
// above the committed zero. Run with a large -benchtime (e.g. 2000000x) for
// meaningful ns/op; at small iteration counts warmup effects dominate.
func BenchmarkSimulationThroughput(b *testing.B) {
	o := experiments.QuickOptions()
	cfg := BaseConfig(8, 8*MB, 1)
	h := oltp.MustNewHarness(o.Params(cfg))
	sys := MustNewSystem(cfg, h)
	b.ReportAllocs()
	b.ResetTimer()
	stepRefs(sys, uint64(b.N))
}

// BenchmarkStepScaling measures per-reference stepping cost as the machine
// widens from the paper's 8 nodes to 128. With the indexed min-heap event
// queue, earliest-core selection costs O(log P) instead of the former O(P)
// scan, so ns/op (ns per retired reference) should grow far slower than
// node count; cmd/benchdiff tracks the large shapes to keep that
// sub-linear.
func BenchmarkStepScaling(b *testing.B) {
	for _, procs := range []int{8, 32, 64, 128} {
		b.Run(fmt.Sprintf("nodes=%d", procs), func(b *testing.B) {
			o := experiments.QuickOptions()
			cfg := BaseConfig(procs, 8*MB, 1)
			h := oltp.MustNewHarness(o.Params(cfg))
			sys := MustNewSystem(cfg, h)
			b.ReportAllocs()
			b.ResetTimer()
			stepRefs(sys, uint64(b.N))
		})
	}
}

// benchStepWorkers times a whole warm+measure run of the 64-node full
// configuration with a fixed intra-run stepping width. The serial and
// sharded variants produce byte-identical results
// (TestShardedSteppingMatchesSerial); the wall-clock gap is the epoch
// engine's payoff, and benchdiff keeps the sharded variant from regressing
// into a slowdown.
func benchStepWorkers(b *testing.B, workers int) {
	o := experiments.QuickOptions()
	o.WarmupTxns, o.MeasureTxns = 200, 400
	o.StepWorkers = workers
	cfg := FullIntegrationConfig(64, 2*MB, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = o.Run(cfg)
	}
}

// BenchmarkStep64Serial is the serial reference for the 64-node run.
func BenchmarkStep64Serial(b *testing.B) { benchStepWorkers(b, 1) }

// BenchmarkStep64Sharded sweeps the epoch-shard worker count over the same
// 64-node configuration, pinning the whole scaling curve — not one point —
// in the benchdiff baseline. workers=1 exercises the sharded code path's
// degenerate case (SetStepWorkers(1) keeps the serial engine, so it should
// track BenchmarkStep64Serial exactly).
func BenchmarkStep64Sharded(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			benchStepWorkers(b, workers)
		})
	}
}

// BenchmarkJobThroughput measures one job's end-to-end trip through the
// simulation service: HTTP submission, queue admission, worker execution of
// a quick single-machine run, and the SSE stream closing on completion.
// The simulation itself is the same work the runner benchmarks time, so
// this number is the service-layer overhead on top of it; cmd/benchdiff
// guards it like the rest.
func BenchmarkJobThroughput(b *testing.B) {
	srv, err := server.New(server.Config{
		DataDir:    b.TempDir(),
		Workers:    1,
		QueueDepth: 4,
		Now:        time.Now,
	})
	if err != nil {
		b.Fatal(err)
	}
	srv.Start()
	defer srv.Close()
	const spec = `{
		"name": "bench",
		"machines": [{"procs": 1, "level": "base", "l2": "1M", "assoc": 1}],
		"warmup_txns": 30,
		"measure_txns": 60,
		"quick": true,
		"checkpoint_every": 0
	}`
	oneJob := func() {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest("POST", "/jobs", strings.NewReader(spec)))
		if rec.Code != 202 {
			b.Fatalf("POST /jobs: status %d: %s", rec.Code, rec.Body)
		}
		var st struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
			b.Fatal(err)
		}
		// The SSE handler returns only once the job reaches a terminal
		// state, so the stream doubles as the completion barrier.
		stream := httptest.NewRecorder()
		srv.ServeHTTP(stream, httptest.NewRequest("GET", "/jobs/"+st.ID+"/stream", nil))
		if !strings.Contains(stream.Body.String(), "event: done") {
			b.Fatalf("job %s did not finish: %s", st.ID, stream.Body)
		}
	}
	// One unmeasured job first: process-wide lazy initialization (JSON
	// reflection caches, HTTP routing tables) otherwise lands on the first
	// measured iteration and makes allocs/op noisy at -benchtime 1x.
	oneJob()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		oneJob()
	}
}

// BenchmarkOltpvet times the full static-analysis suite over the whole
// module: load and type-check every package from source, build the
// conservative call graph, and run all eight analyzers. The suite runs on
// every CI push, so a super-linear regression in the analysis substrate
// (the call-graph builder, the reachability sweeps) shows up in the bench
// guard like any simulator regression. Each iteration starts from a fresh
// loader — package and graph caches must not carry over, since cold
// analysis time is what CI pays.
func BenchmarkOltpvet(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ld, err := lint.NewLoader(".")
		if err != nil {
			b.Fatal(err)
		}
		paths, err := ld.Expand([]string{"./..."})
		if err != nil {
			b.Fatal(err)
		}
		prog, err := lint.NewProgram(ld, paths)
		if err != nil {
			b.Fatal(err)
		}
		if len(prog.Broken) > 0 {
			b.Fatalf("%s does not type-check: %v", prog.Broken[0].Path, prog.Broken[0].TypeErrors)
		}
		if diags := prog.Run(lint.All(), paths...); len(diags) != 0 {
			b.Fatalf("repo is not clean: %v", diags)
		}
	}
}
