// Command tracedump prints a window of the OLTP reference stream as CSV,
// for inspecting what the workload generator actually emits: kinds, kernel
// attribution, dependence chains, and the NUMA home of every line. This is
// the debugging lens used while calibrating the workload against the
// paper's characteristics.
//
//	tracedump -cpus 2 -n 2000 -skip 100000 > trace.csv
//
// Large windows with a deep -skip can run for minutes, so SIGINT/SIGTERM
// are honored inside the dump loop: the rows emitted so far are flushed as
// a well-formed CSV prefix and the tool exits 130. A CI timeout therefore
// leaves a usable partial trace instead of an empty file.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"oltpsim/internal/kernel"
	"oltpsim/internal/oltp"
)

func main() {
	var (
		cpus  = flag.Int("cpus", 1, "machine size")
		cpu   = flag.Int("cpu", 0, "which CPU's stream to dump")
		n     = flag.Int("n", 1000, "references to dump")
		skip  = flag.Int("skip", 0, "references to skip first (move past cold start)")
		quick = flag.Bool("quick", true, "scaled-down database")
	)
	flag.Parse()

	if err := validate(*cpus, *cpu, *n, *skip); err != nil {
		fmt.Fprintln(os.Stderr, "tracedump:", err)
		flag.Usage()
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	w := bufio.NewWriter(os.Stdout)
	if err := run(ctx, w, *cpus, *cpu, *n, *skip, *quick); err != nil {
		w.Flush()
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "tracedump: interrupted; partial dump flushed")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "tracedump:", err)
		os.Exit(2)
	}
	w.Flush()
}

// validate rejects flag combinations the dump loop would misinterpret.
func validate(cpus, cpu, n, skip int) error {
	if cpus < 1 {
		return fmt.Errorf("-cpus must be >= 1 (got %d)", cpus)
	}
	if cpu < 0 || cpu >= cpus {
		return fmt.Errorf("-cpu must be in [0,%d) (got %d)", cpus, cpu)
	}
	if n < 0 {
		return fmt.Errorf("-n must be >= 0 (got %d)", n)
	}
	if skip < 0 {
		return fmt.Errorf("-skip must be >= 0 (got %d)", skip)
	}
	return nil
}

// run drives a fresh harness and writes n references of the chosen CPU's
// stream as CSV. The output is a pure function of the arguments: the harness
// is seeded deterministically and CPUs advance in global time order.
// Cancelling ctx stops the loop between references and returns ctx's error;
// everything already written is a valid CSV prefix of the full dump.
func run(ctx context.Context, out io.Writer, cpus, cpu, n, skip int, quick bool) error {
	p := oltp.DefaultParams(cpus)
	if quick {
		p = oltp.TestParams(cpus)
	}
	h, err := oltp.NewHarness(p)
	if err != nil {
		return err
	}

	fmt.Fprintln(out, "seq,cpu,kind,addr,line,home,kernel,dep,instrs")

	clocks := make([]uint64, cpus)
	emitted, seen := 0, 0
	for emitted < n {
		if err := ctx.Err(); err != nil {
			return err
		}
		// Drive every CPU in global time order (commits depend on the log
		// writer's progress).
		c := 0
		for i := 1; i < cpus; i++ {
			if clocks[i] < clocks[c] {
				c = i
			}
		}
		r, st, wake := h.Next(c, clocks[c])
		switch st {
		case kernel.StatusRef:
			clocks[c] += uint64(r.Instrs) + 1
			if c != cpu {
				continue
			}
			seen++
			if seen <= skip {
				continue
			}
			fmt.Fprintf(out, "%d,%d,%s,%#x,%#x,%d,%t,%t,%d\n",
				seen, c, r.Kind, r.Addr, r.Line(),
				h.HomeOf(r.Line()), r.Kernel, r.DepPrev, r.Instrs)
			emitted++
		case kernel.StatusIdle:
			clocks[c] = wake
		default:
			return nil
		}
	}
	return nil
}
