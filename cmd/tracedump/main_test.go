package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// updateGolden regenerates the golden files instead of comparing.
var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// TestValidate pins the flag-validation rules: every rejected combination is
// a usage error before any simulation work starts.
func TestValidate(t *testing.T) {
	cases := []struct {
		name               string
		cpus, cpu, n, skip int
		wantErr            bool
	}{
		{"defaults", 1, 0, 1000, 0, false},
		{"multi-cpu window", 8, 3, 10, 100, false},
		{"zero references", 1, 0, 0, 0, false},
		{"zero cpus", 0, 0, 10, 0, true},
		{"negative cpus", -1, 0, 10, 0, true},
		{"cpu out of range", 2, 2, 10, 0, true},
		{"negative cpu", 2, -1, 10, 0, true},
		{"negative n", 1, 0, -1, 0, true},
		{"negative skip", 1, 0, 10, -5, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validate(tc.cpus, tc.cpu, tc.n, tc.skip)
			if (err != nil) != tc.wantErr {
				t.Fatalf("validate(%d,%d,%d,%d) = %v, wantErr %v",
					tc.cpus, tc.cpu, tc.n, tc.skip, err, tc.wantErr)
			}
		})
	}
}

// TestRunGolden locks the dump format and the determinism of the reference
// stream: a fixed-seed short trace must reproduce the committed golden file
// byte for byte. Regenerate with:
//
//	go test ./cmd/tracedump -run TestRunGolden -update
func TestRunGolden(t *testing.T) {
	var got bytes.Buffer
	if err := run(context.Background(), &got, 2, 0, 25, 10, true); err != nil {
		t.Fatalf("run: %v", err)
	}

	golden := filepath.Join("testdata", "trace_cpus2_n25_skip10.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, got.Bytes(), 0o644); err != nil {
			t.Fatalf("update golden: %v", err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("trace diverges from golden file:\ngot:\n%s\nwant:\n%s", got.Bytes(), want)
	}

	// Structural checks independent of the golden bytes.
	lines := strings.Split(strings.TrimRight(got.String(), "\n"), "\n")
	if lines[0] != "seq,cpu,kind,addr,line,home,kernel,dep,instrs" {
		t.Errorf("unexpected header %q", lines[0])
	}
	if len(lines) != 1+25 {
		t.Errorf("%d data rows, want 25", len(lines)-1)
	}
	for i, line := range lines[1:] {
		if fields := strings.Split(line, ","); len(fields) != 9 {
			t.Errorf("row %d has %d fields, want 9: %q", i, len(fields), line)
		}
	}

	// Determinism: a second fresh harness emits the identical window.
	var again bytes.Buffer
	if err := run(context.Background(), &again, 2, 0, 25, 10, true); err != nil {
		t.Fatalf("second run: %v", err)
	}
	if !bytes.Equal(got.Bytes(), again.Bytes()) {
		t.Error("two runs with identical arguments diverge")
	}
}

// cancelingWriter cancels a context once a set number of Write calls have
// gone through, simulating a signal arriving mid-dump: run writes one line
// per call, so the cutoff lands between CSV rows.
type cancelingWriter struct {
	w      io.Writer
	cancel context.CancelFunc
	left   int
}

func (c *cancelingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.left--
	if c.left == 0 {
		c.cancel()
	}
	return n, err
}

// TestRunPreCanceled: a context canceled before the loop starts yields the
// header and nothing else — the minimal well-formed partial CSV.
func TestRunPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var got bytes.Buffer
	err := run(ctx, &got, 1, 0, 30, 0, true)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("run = %v, want context.Canceled", err)
	}
	if got.String() != "seq,cpu,kind,addr,line,home,kernel,dep,instrs\n" {
		t.Errorf("pre-canceled run emitted %q, want header only", got.String())
	}
}

// TestRunInterruptMidStream: cancellation mid-dump stops the loop with the
// context error, and the truncated output is byte-for-byte a prefix of the
// uninterrupted dump — partial, but never torn or divergent.
func TestRunInterruptMidStream(t *testing.T) {
	var full bytes.Buffer
	if err := run(context.Background(), &full, 1, 0, 30, 0, true); err != nil {
		t.Fatalf("full run: %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var partial bytes.Buffer
	// 11 writes = header + 10 rows; the loop notices the cancellation on
	// its next iteration, so exactly 10 rows land.
	cw := &cancelingWriter{w: &partial, cancel: cancel, left: 11}
	err := run(ctx, cw, 1, 0, 30, 0, true)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("run = %v, want context.Canceled", err)
	}
	lines := strings.Split(strings.TrimRight(partial.String(), "\n"), "\n")
	if len(lines) != 11 {
		t.Fatalf("interrupted dump has %d lines, want header + 10 rows", len(lines))
	}
	if !strings.HasPrefix(full.String(), partial.String()) {
		t.Errorf("interrupted dump is not a prefix of the full dump:\n%s", partial.String())
	}
}

// TestRunSkipWindow: the skip offset selects a strictly later window of the
// same stream — sequence numbers continue where the unskipped dump left off.
func TestRunSkipWindow(t *testing.T) {
	var all, windowed bytes.Buffer
	if err := run(context.Background(), &all, 1, 0, 30, 0, true); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := run(context.Background(), &windowed, 1, 0, 10, 20, true); err != nil {
		t.Fatalf("windowed run: %v", err)
	}
	allLines := strings.Split(strings.TrimRight(all.String(), "\n"), "\n")
	winLines := strings.Split(strings.TrimRight(windowed.String(), "\n"), "\n")
	if len(allLines) != 31 || len(winLines) != 11 {
		t.Fatalf("got %d and %d lines, want 31 and 11", len(allLines), len(winLines))
	}
	// Rows 21..30 of the full dump are exactly the windowed dump's rows.
	for i := 0; i < 10; i++ {
		if allLines[21+i] != winLines[1+i] {
			t.Fatalf("window row %d diverges:\n%s\nvs\n%s", i, allLines[21+i], winLines[1+i])
		}
	}
}
