package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"oltpsim/internal/experiments"
	"oltpsim/internal/stats"
)

// jobStatus mirrors the server's status JSON from outside the package, the
// way a real client sees it.
type jobStatus struct {
	ID          string            `json:"id"`
	State       string            `json:"state"`
	Error       string            `json:"error"`
	Done        int               `json:"configs_done"`
	Checkpoints int               `json:"checkpoints"`
	Results     []stats.RunResult `json:"results"`
}

// ladderSpec is the paper's Figure 10 (8p) sweep — Base vs. successive
// integration at 8 nodes — under the committed figures' protocol
// (DefaultOptions: warmup 3000, measure 2000, seed 0).
const ladderSpec = `{
	"name": "fig10-8p",
	"machines": [
		{"label": "Base", "procs": 8, "level": "base", "l2": "8M", "assoc": 1},
		{"label": "L2", "procs": 8, "level": "l2", "l2": "2M", "assoc": 8},
		{"label": "L2+MC", "procs": 8, "level": "l2mc", "l2": "2M", "assoc": 8},
		{"label": "All", "procs": 8, "level": "full", "l2": "2M", "assoc": 8}
	],
	"warmup_txns": 3000,
	"measure_txns": 2000
}`

// TestOLTPServerE2E is the CI smoke test for the whole service: build the
// real binary, boot it on a free port, submit the 8-node Base-vs-ladder
// sweep over HTTP, and require the rendered figure to appear verbatim in
// the committed figures_output.txt — the service path and the direct
// figure-generation path must be the same simulation. Then SIGINT must
// drain cleanly.
func TestOLTPServerE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and boots the real server binary")
	}

	bin := filepath.Join(t.TempDir(), "oltpserver")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building oltpserver: %v\n%s", err, out)
	}

	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-data-dir", t.TempDir(),
		"-workers", "1",
		"-checkpoint-every", "500",
	)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	exited := false
	defer func() {
		if !exited {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()

	// The server prints its actual address once the socket is open.
	scanner := bufio.NewScanner(stdout)
	if !scanner.Scan() {
		t.Fatal("server exited before printing its address")
	}
	line := scanner.Text()
	addr, ok := strings.CutPrefix(line, "oltpserver listening on ")
	if !ok {
		t.Fatalf("unexpected startup line %q", line)
	}
	base := "http://" + addr

	resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(ladderSpec))
	if err != nil {
		t.Fatal(err)
	}
	var st jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs: status %d", resp.StatusCode)
	}

	// Poll to completion. The sweep takes a few seconds; the deadline is
	// generous for slow CI machines.
	deadline := time.Now().Add(5 * time.Minute)
	for {
		resp, err := http.Get(base + "/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if st.State == "done" || st.State == "failed" || st.State == "cancelled" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job still %q (%d/4 configs) at deadline", st.State, st.Done)
		}
		time.Sleep(500 * time.Millisecond)
	}
	if st.State != "done" {
		t.Fatalf("job finished %q: %s", st.State, st.Error)
	}
	if len(st.Results) != 4 {
		t.Fatalf("job returned %d results, want 4", len(st.Results))
	}
	if st.Checkpoints == 0 {
		t.Error("job reported zero checkpoints despite a 500-txn quantum")
	}

	// The figure rendered from the service's results must appear verbatim
	// in the committed figures output: same simulation, same bytes.
	fig := experiments.Figure{
		ID:    "Figure 10 (8p)",
		Title: "Successive integration, 8 processors",
		Bars:  st.Results,
	}
	committed, err := os.ReadFile(filepath.Join("..", "..", "figures_output.txt"))
	if err != nil {
		t.Fatal(err)
	}
	for _, block := range []struct{ name, text string }{
		{"exec", fig.RenderExec()},
		{"detail", fig.RenderDetail()},
	} {
		if !strings.Contains(string(committed), block.text) {
			t.Errorf("%s block rendered from server results is not in figures_output.txt:\n%s", block.name, block.text)
		}
	}

	// Prometheus sees the completed job.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics := new(strings.Builder)
	if _, err := fmt.Fprint(metrics, readAll(t, resp)); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"oltpserver_jobs_completed_total 1",
		`oltpserver_jobs{state="done"} 1`,
		"oltpserver_checkpoints_written_total",
	} {
		if !strings.Contains(metrics.String(), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Graceful drain on SIGINT.
	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Errorf("server exited non-zero after SIGINT: %v", err)
	}
	exited = true
}

// readAll drains a response body as a string.
func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var b strings.Builder
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		b.WriteString(scanner.Text())
		b.WriteByte('\n')
	}
	if err := scanner.Err(); err != nil {
		t.Fatal(err)
	}
	return b.String()
}
