// Command oltpserver runs the simulation-as-a-service job server: a REST
// API over internal/server that queues sweeps of machine configurations,
// executes them on a worker pool with periodic checkpointing, streams
// progress over SSE, and exposes Prometheus metrics.
//
//	oltpserver -addr 127.0.0.1:8080 -data-dir ./oltpserver-data
//
// The data directory is the server's memory: every job's spec, state,
// results, and latest checkpoint live there, and a server restarted on the
// same directory resumes interrupted jobs from their checkpoints with
// results bit-identical to an uninterrupted run (see DESIGN.md §6).
//
// The listen address is printed to stdout once the socket is open (port 0
// picks a free port), so scripts and the e2e test can scrape the actual
// endpoint. SIGINT/SIGTERM drain gracefully: workers stop at the next
// checkpoint boundary, in-flight jobs stay resumable, and the HTTP
// listener shuts down.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"oltpsim/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("oltpserver", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	dataDir := fs.String("data-dir", "oltpserver-data", "persistence root for job specs, states, results, and checkpoints")
	workers := fs.Int("workers", 1, "job worker-pool size")
	queue := fs.Int("queue", 16, "max jobs admitted but not yet finished (429 beyond)")
	every := fs.Uint64("checkpoint-every", 500, "default checkpoint quantum in committed transactions for jobs that don't set checkpoint_every")
	retryAfter := fs.Int("retry-after", 1, "Retry-After seconds advertised on 429 responses")
	pprofOn := fs.Bool("pprof", true, "serve Go profiling endpoints under /debug/pprof/ (profile a live job with `go tool pprof http://ADDR/debug/pprof/profile`)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "oltpserver: unexpected arguments: %v\n", fs.Args())
		return 2
	}

	srv, err := server.New(server.Config{
		DataDir:           *dataDir,
		Workers:           *workers,
		QueueDepth:        *queue,
		CheckpointEvery:   *every,
		RetryAfterSeconds: *retryAfter,
		Now:               time.Now,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(stderr, "oltpserver: "+format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintf(stderr, "oltpserver: %v\n", err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "oltpserver: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "oltpserver listening on %s\n", ln.Addr())
	srv.Start()

	// The job API stays on the server's own method+pattern mux; profiling
	// endpoints mount in front of it here so the library handler never
	// exposes them to embedders that don't opt in.
	handler := http.Handler(srv)
	if *pprofOn {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", srv)
		handler = mux
	}
	hs := &http.Server{Handler: handler}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		fmt.Fprintln(stderr, "oltpserver: signal received, draining (jobs stay resumable)")
	case err := <-errCh:
		fmt.Fprintf(stderr, "oltpserver: serve: %v\n", err)
		srv.Close()
		return 1
	}

	// Stop the workers first (jobs preempt at their next checkpoint
	// boundary and live SSE streams end), then drain the HTTP side.
	if err := srv.Close(); err != nil {
		fmt.Fprintf(stderr, "oltpserver: close: %v\n", err)
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		hs.Close()
		fmt.Fprintf(stderr, "oltpserver: shutdown: %v\n", err)
		return 1
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(stderr, "oltpserver: serve: %v\n", err)
		return 1
	}
	fmt.Fprintln(stderr, "oltpserver: drained")
	return 0
}
