// Command oltpvet runs the project's static-analysis suite (internal/lint)
// over the given packages and exits non-zero on any diagnostic. It enforces
// the contracts the compiler cannot see: determinism (no wall clock,
// environment, or global randomness under internal/), RNG discipline (no
// modulo bias, no constant seeds), zero-guarded counter ratios, stats-owned
// counter mutation, goroutine discipline, snapshot coverage (every mutable
// field of a SaveState/LoadState pair is serialized or marked derived),
// map-iteration order on paths that flow to output, and allocation-prone
// constructs on the core.System.Step hot path.
//
// Usage:
//
//	oltpvet [-doc] [-json] [packages...]
//
// Packages default to ./... relative to the module root. Patterns accept
// the usual ./dir and ./dir/... forms. Whatever the patterns select, the
// whole module is always loaded as the analysis program: the call-graph
// analyzers need every caller and callee to reason about reachability, and
// the patterns only scope which packages' diagnostics are reported.
//
// With -json, diagnostics are written to stdout as one JSON array of
// {file, line, col, analyzer, message} records — the shape CI turns into
// GitHub annotations. The human format (file:line:col: analyzer: message)
// stays the default.
//
// Suppress a diagnostic with a trailing or immediately preceding comment:
//
//	//oltpvet:allow <reason>
//
// The reason is mandatory, as it is for the //oltpvet:derived and
// //oltpvet:coldpath exemption annotations. Test files are not analyzed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"oltpsim/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonDiag is the -json record shape; a stable contract for CI tooling.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("oltpvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	doc := fs.Bool("doc", false, "print each analyzer's documentation and exit")
	verbose := fs.Bool("v", false, "list analyzed packages")
	asJSON := fs.Bool("json", false, "emit diagnostics as a JSON array of {file,line,col,analyzer,message} records")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.All()
	if *doc {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%s:\n  %s\n", a.Name, indent(a.Doc))
		}
		return 0
	}

	wd, err := os.Getwd()
	if err != nil {
		return fatal(stderr, err)
	}
	ld, err := lint.NewLoader(wd)
	if err != nil {
		return fatal(stderr, err)
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	reportPaths, err := ld.Expand(patterns)
	if err != nil {
		return fatal(stderr, err)
	}
	universe, err := ld.Expand([]string{"./..."})
	if err != nil {
		return fatal(stderr, err)
	}
	prog, err := lint.NewProgram(ld, universe)
	if err != nil {
		return fatal(stderr, err)
	}

	failed := false
	for _, pkg := range prog.Broken {
		// Analysis over a package that does not type-check is unreliable;
		// surface the first error and count it as failure.
		fmt.Fprintf(stderr, "oltpvet: %s does not type-check: %v\n", pkg.Path, pkg.TypeErrors[0])
		failed = true
	}
	if *verbose {
		for _, path := range reportPaths {
			fmt.Fprintln(stderr, path)
		}
	}

	diags := prog.Run(analyzers, reportPaths...)
	if len(diags) > 0 {
		failed = true
	}
	if *asJSON {
		records := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			records = append(records, jsonDiag{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(records); err != nil {
			return fatal(stderr, err)
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if failed {
		return 1
	}
	return 0
}

func fatal(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "oltpvet:", err)
	return 2
}

func indent(s string) string {
	out := ""
	for i, line := range splitLines(s) {
		if i > 0 {
			out += "\n  "
		}
		out += line
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	return append(lines, s[start:])
}
