// Command oltpvet runs the project's static-analysis suite (internal/lint)
// over the given packages and exits non-zero on any diagnostic. It enforces
// the contracts the compiler cannot see: determinism (no wall clock,
// environment, or global randomness under internal/), RNG discipline (no
// modulo bias, no constant seeds), zero-guarded counter ratios, and
// stats-owned counter mutation.
//
// Usage:
//
//	oltpvet [-doc] [packages...]
//
// Packages default to ./... relative to the module root. Patterns accept
// the usual ./dir and ./dir/... forms. Suppress a diagnostic with a
// trailing or immediately preceding comment:
//
//	//oltpvet:allow <reason>
//
// The reason is mandatory. Test files are not analyzed.
package main

import (
	"flag"
	"fmt"
	"os"

	"oltpsim/internal/lint"
)

func main() {
	doc := flag.Bool("doc", false, "print each analyzer's documentation and exit")
	verbose := flag.Bool("v", false, "list analyzed packages")
	flag.Parse()

	analyzers := lint.All()
	if *doc {
		for _, a := range analyzers {
			fmt.Printf("%s:\n  %s\n", a.Name, indent(a.Doc))
		}
		return
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	ld, err := lint.NewLoader(wd)
	if err != nil {
		fatal(err)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	paths, err := ld.Expand(patterns)
	if err != nil {
		fatal(err)
	}

	failed := false
	for _, path := range paths {
		pkg, err := ld.Load(path)
		if err != nil {
			fatal(err)
		}
		if len(pkg.TypeErrors) > 0 {
			// Analysis over a package that does not type-check is
			// unreliable; surface the first error and count it as failure.
			fmt.Fprintf(os.Stderr, "oltpvet: %s does not type-check: %v\n", path, pkg.TypeErrors[0])
			failed = true
			continue
		}
		if *verbose {
			fmt.Fprintln(os.Stderr, path)
		}
		for _, d := range lint.Run(pkg, analyzers) {
			fmt.Println(d)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "oltpvet:", err)
	os.Exit(2)
}

func indent(s string) string {
	out := ""
	for i, line := range splitLines(s) {
		if i > 0 {
			out += "\n  "
		}
		out += line
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	return append(lines, s[start:])
}
