package main

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

// violation is the single diagnostic the golden module produces: a wall
// clock read under internal/. Line and column below are pinned to this
// exact source.
const violation = `// Package clock reads the wall clock.
package clock

import "time"

// Now leaks wall-clock time.
func Now() int64 { return time.Now().UnixNano() }
`

// writeModule lays out a self-contained one-package module and chdirs into
// it, returning the resolved root (the loader and the diagnostics use the
// resolved working directory, which may differ from TempDir through
// symlinks).
func writeModule(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(dir+"/go.mod", []byte("module vettest\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(dir+"/internal/clock", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dir+"/internal/clock/clock.go", []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(old) })
	resolved, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return resolved
}

// TestHumanGolden pins the default output format byte for byte:
// file:line:col: analyzer: message, one line per diagnostic, exit 1.
func TestHumanGolden(t *testing.T) {
	dir := writeModule(t, violation)
	var stdout, stderr bytes.Buffer
	code := run(nil, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr:\n%s", code, stderr.String())
	}
	got := strings.ReplaceAll(stdout.String(), dir, "$MOD")
	want := "$MOD/internal/clock/clock.go:7:27: determinism: time.Now is a wall clock; a simulation run must be a pure function of config and seed\n"
	if got != want {
		t.Errorf("human output:\n%s\nwant:\n%s", got, want)
	}
}

// TestJSONGolden pins the -json record shape byte for byte: a stable
// contract for the CI artifact and annotation tooling.
func TestJSONGolden(t *testing.T) {
	dir := writeModule(t, violation)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-json"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr:\n%s", code, stderr.String())
	}
	got := strings.ReplaceAll(stdout.String(), dir, "$MOD")
	want := `[
  {
    "file": "$MOD/internal/clock/clock.go",
    "line": 7,
    "col": 27,
    "analyzer": "determinism",
    "message": "time.Now is a wall clock; a simulation run must be a pure function of config and seed"
  }
]
`
	if got != want {
		t.Errorf("json output:\n%s\nwant:\n%s", got, want)
	}
}

// TestCleanModule checks the quiet path in both formats: exit 0, no human
// lines, and an empty (non-null) JSON array.
func TestCleanModule(t *testing.T) {
	writeModule(t, "// Package clock is deterministic.\npackage clock\n\n// Zero is zero.\nfunc Zero() int64 { return 0 }\n")
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0; stdout:\n%s stderr:\n%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("human output for a clean module = %q, want empty", stdout.String())
	}
	stdout.Reset()
	if code := run([]string{"-json"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-json exit = %d, want 0", code)
	}
	if got := stdout.String(); got != "[]\n" {
		t.Errorf("-json output for a clean module = %q, want %q", got, "[]\n")
	}
}

// TestDocListsAllAnalyzers keeps -doc in sync with the suite.
func TestDocListsAllAnalyzers(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-doc"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-doc exit = %d, want 0", code)
	}
	for _, name := range []string{
		"determinism", "rngdiscipline", "zeroguard", "counterowner",
		"goroutine", "snapshotcomplete", "maporder", "hotpathalloc",
	} {
		if !strings.Contains(stdout.String(), name+":") {
			t.Errorf("-doc output is missing analyzer %s", name)
		}
	}
}
