// Command figures regenerates the paper's evaluation figures. Each figure
// prints its normalized execution-time breakdown and (where the paper shows
// one) its normalized L2 miss breakdown, in the same bar order as the paper.
//
//	figures            # all figures, paper-fidelity protocol
//	figures -quick     # scaled-down database, short runs
//	figures -fig 7     # just Figure 7
//	figures -parallel  # run whole figures concurrently (GOMAXPROCS workers)
//	figures -j 4       # same, with an explicit worker count
//
// Within one figure the bars already fan out across a worker pool
// (experiments.Options.Workers); -parallel/-j additionally runs the figure
// runners themselves concurrently, buffering each figure's rendered report
// so interleaved goroutines never corrupt the output. Results are
// bit-identical to a serial run and print in the paper's order.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"

	"oltpsim/internal/core"
	"oltpsim/internal/experiments"
	"oltpsim/internal/prof"
	"oltpsim/internal/scenario"
	"oltpsim/internal/snapshot"
)

func main() {
	var (
		quick     = flag.Bool("quick", false, "scaled-down database and short runs")
		fig       = flag.String("fig", "all", "which figure: 3,5,6,7,8,10,11,12,13 or all")
		warmup    = flag.Int64("warmup", -1, "override warmup transactions (0 is honored; default: protocol value)")
		measure   = flag.Int64("txns", -1, "override measured transactions (0 is honored; default: protocol value)")
		detail    = flag.Bool("detail", false, "print per-bar diagnostics")
		compare   = flag.Bool("compare", false, "score each figure against the paper's published values")
		parallel  = flag.Bool("parallel", false, "run figures concurrently (GOMAXPROCS workers)")
		jobs      = flag.Int("j", 0, "concurrent figure runners (implies -parallel; 0 = GOMAXPROCS)")
		stepJobs  = flag.Int("step-j", 0, "epoch-sharded stepping workers inside each simulation (0 or 1 = serial; results stay bit-identical)")
		warm      = flag.Bool("warm", false, "share end-of-warmup machine state between identical sweep points (results stay bit-identical)")
		ckptDir   = flag.String("checkpoint", "", "write shared warm-state snapshots to this directory (implies -warm)")
		resumeDir = flag.String("resume", "", "preload warm-state snapshots from a -checkpoint directory (implies -warm)")
		cpuProf   = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProf   = flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
		scenFile  = flag.String("scenario", "", "render the timeline figure family for this scenario profile (integration ladder vs. phase) instead of the paper figures")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
	}()

	if *jobs < 0 {
		fmt.Fprintf(os.Stderr, "figures: -j must be >= 0 (got %d)\n", *jobs)
		flag.Usage()
		os.Exit(2)
	}
	if *stepJobs < 0 {
		fmt.Fprintf(os.Stderr, "figures: -step-j must be >= 0 (got %d)\n", *stepJobs)
		flag.Usage()
		os.Exit(2)
	}

	opt := experiments.DefaultOptions()
	if *quick {
		opt = experiments.QuickOptions()
	}
	opt.StepWorkers = *stepJobs
	// flag.Visit distinguishes "flag absent" from an explicit -warmup 0 /
	// -txns 0, which are legitimate requests (e.g. measuring cold caches, or
	// warmup-only runs) the old `> 0` guard silently ignored. Explicit
	// negative values — including the -1 default — are usage errors.
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "warmup":
			if *warmup < 0 {
				fmt.Fprintf(os.Stderr, "figures: -warmup must be >= 0 (got %d)\n", *warmup)
				flag.Usage()
				os.Exit(2)
			}
			opt.WarmupTxns = uint64(*warmup)
		case "txns":
			if *measure < 0 {
				fmt.Fprintf(os.Stderr, "figures: -txns must be >= 0 (got %d)\n", *measure)
				flag.Usage()
				os.Exit(2)
			}
			opt.MeasureTxns = uint64(*measure)
		}
	})

	// The timeline family replaces the paper figures: run the integration
	// ladder under the scenario and render normalized cost per phase. The
	// default figure set (and its golden output) is untouched.
	if *scenFile != "" {
		sched, err := loadSchedule(*scenFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(2)
		}
		opt.Scenario = sched
		tf := experiments.RunTimelineLadder(opt, 8, true)
		fmt.Print(tf.Render())
		fmt.Println(strings.Repeat("-", 72))
		return
	}

	if *warm || *ckptDir != "" || *resumeDir != "" {
		opt.WarmSnapshot = experiments.NewWarmCache()
	}
	if *resumeDir != "" {
		if err := loadWarmDir(opt.WarmSnapshot, *resumeDir); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
	}

	figWorkers := 1
	if *parallel || *jobs > 0 {
		figWorkers = *jobs
		if figWorkers == 0 {
			figWorkers = runtime.GOMAXPROCS(0)
		}
	}

	want := func(id string) bool { return *fig == "all" || *fig == id }

	if want("3") {
		printFigure3()
	}

	type runner struct {
		id     string
		run    func(experiments.Options) experiments.Figure
		misses bool
	}
	runners := []runner{
		{"5", experiments.Fig05, true},
		{"6", experiments.Fig06, true},
		{"7", experiments.Fig07, true},
		{"8", experiments.Fig08, true},
		{"10", experiments.Fig10Uni, false},
		{"10", experiments.Fig10MP, false},
		{"11", experiments.Fig11, true},
		{"12", experiments.Fig12Small, false},
		{"12", experiments.Fig12Large, false},
		{"13", experiments.Fig13Uni, false},
		{"13", experiments.Fig13MP, false},
	}

	var selected []runner
	for _, r := range runners {
		if want(r.id) {
			selected = append(selected, r)
		}
	}
	if len(selected) == 0 && !want("3") {
		fmt.Fprintf(os.Stderr, "figures: unknown figure %q\n", *fig)
		os.Exit(2)
	}

	// Each selected figure renders into its own buffer; reports print in
	// presentation order once ready, so a fast later figure never interleaves
	// with a slow earlier one.
	reports := make([]string, len(selected))
	render := func(i int) {
		f := selected[i].run(opt)
		var b strings.Builder
		fmt.Fprintln(&b, f.RenderExec())
		if selected[i].misses {
			fmt.Fprintln(&b, f.RenderMisses())
		}
		if *detail {
			fmt.Fprintln(&b, f.RenderDetail())
		}
		if *compare {
			if rows := experiments.Compare(&f); len(rows) > 0 {
				fmt.Fprintln(&b, experiments.RenderComparison(rows))
			}
		}
		fmt.Fprintln(&b, strings.Repeat("-", 72))
		reports[i] = b.String()
	}

	if figWorkers <= 1 || len(selected) == 1 {
		for i := range selected {
			render(i)
			fmt.Print(reports[i])
		}
		saveWarm(opt.WarmSnapshot, *ckptDir)
		return
	}

	if figWorkers > len(selected) {
		figWorkers = len(selected)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(figWorkers)
	for g := 0; g < figWorkers; g++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				render(i)
			}
		}()
	}
	for i := range selected {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for i := range reports {
		fmt.Print(reports[i])
	}
	saveWarm(opt.WarmSnapshot, *ckptDir)
}

// loadSchedule decodes and compiles a scenario profile file.
func loadSchedule(path string) (*scenario.Schedule, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	p, err := scenario.DecodeProfile(f)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", path, err)
	}
	return p.Compile()
}

// saveWarm persists the warm cache to dir (no-op without -checkpoint).
func saveWarm(c *experiments.WarmCache, dir string) {
	if dir == "" {
		return
	}
	if err := saveWarmDir(c, dir); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

// saveWarmDir writes every cached warm snapshot as one file: a snapshot
// container holding the warm key and the machine state, named by the key's
// checksum.
func saveWarmDir(c *experiments.WarmCache, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	entries := c.Entries()
	keys := make([]string, 0, len(entries))
	for k := range entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		data := entries[key]
		w := snapshot.NewWriter()
		w.Section("key").String(key)
		w.Section("data").U8s(data)
		var buf bytes.Buffer
		if err := w.Emit(&buf); err != nil {
			return err
		}
		name := fmt.Sprintf("%08x.warm", crc32.ChecksumIEEE([]byte(key)))
		if err := os.WriteFile(filepath.Join(dir, name), buf.Bytes(), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// loadWarmDir seeds the cache from a directory written by saveWarmDir. A
// snapshot that no longer matches its configuration is rejected at restore
// time and the run falls back to a cold warmup, so stale files are safe.
func loadWarmDir(c *experiments.WarmCache, dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".warm") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			return err
		}
		r, err := snapshot.NewReader(bytes.NewReader(data))
		if err != nil {
			return fmt.Errorf("%s: %v", ent.Name(), err)
		}
		kd, err := r.Section("key")
		if err != nil {
			return fmt.Errorf("%s: %v", ent.Name(), err)
		}
		key := kd.String()
		if err := kd.Finish(); err != nil {
			return fmt.Errorf("%s: %v", ent.Name(), err)
		}
		dd, err := r.Section("data")
		if err != nil {
			return fmt.Errorf("%s: %v", ent.Name(), err)
		}
		payload := dd.U8s()
		if err := dd.Finish(); err != nil {
			return fmt.Errorf("%s: %v", ent.Name(), err)
		}
		if err := r.Finish(); err != nil {
			return fmt.Errorf("%s: %v", ent.Name(), err)
		}
		c.Seed(key, payload)
	}
	return nil
}

func printFigure3() {
	fmt.Println("Figure 3 — Memory latencies for different configurations (cycles @ 1 GHz)")
	fmt.Printf("%-28s %6s %6s %7s %7s\n", "configuration", "L2Hit", "Local", "Remote", "Dirty")
	for _, row := range core.FigureThree() {
		fmt.Printf("%-28s %6d %6d %7d %7d\n",
			row.Label, row.Lat.L2Hit, row.Lat.Local, row.Lat.Remote, row.Lat.RemoteDirty)
	}
	fmt.Println(strings.Repeat("-", 72))
}
