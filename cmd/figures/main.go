// Command figures regenerates the paper's evaluation figures. Each figure
// prints its normalized execution-time breakdown and (where the paper shows
// one) its normalized L2 miss breakdown, in the same bar order as the paper.
//
//	figures            # all figures, paper-fidelity protocol (~minutes)
//	figures -quick     # scaled-down database, short runs
//	figures -fig 7     # just Figure 7
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"oltpsim/internal/core"
	"oltpsim/internal/experiments"
)

func main() {
	var (
		quick   = flag.Bool("quick", false, "scaled-down database and short runs")
		fig     = flag.String("fig", "all", "which figure: 3,5,6,7,8,10,11,12,13 or all")
		warmup  = flag.Uint64("warmup", 0, "override warmup transactions")
		measure = flag.Uint64("txns", 0, "override measured transactions")
		detail  = flag.Bool("detail", false, "print per-bar diagnostics")
		compare = flag.Bool("compare", false, "score each figure against the paper's published values")
	)
	flag.Parse()

	opt := experiments.DefaultOptions()
	if *quick {
		opt = experiments.QuickOptions()
	}
	if *warmup > 0 {
		opt.WarmupTxns = *warmup
	}
	if *measure > 0 {
		opt.MeasureTxns = *measure
	}

	want := func(id string) bool { return *fig == "all" || *fig == id }

	if want("3") {
		printFigure3()
	}

	type runner struct {
		id     string
		run    func(experiments.Options) experiments.Figure
		misses bool
	}
	runners := []runner{
		{"5", experiments.Fig05, true},
		{"6", experiments.Fig06, true},
		{"7", experiments.Fig07, true},
		{"8", experiments.Fig08, true},
		{"10", experiments.Fig10Uni, false},
		{"10", experiments.Fig10MP, false},
		{"11", experiments.Fig11, true},
		{"12", experiments.Fig12Small, false},
		{"12", experiments.Fig12Large, false},
		{"13", experiments.Fig13Uni, false},
		{"13", experiments.Fig13MP, false},
	}
	ran := false
	for _, r := range runners {
		if !want(r.id) {
			continue
		}
		ran = true
		f := r.run(opt)
		fmt.Println(f.RenderExec())
		if r.misses {
			fmt.Println(f.RenderMisses())
		}
		if *detail {
			fmt.Println(f.RenderDetail())
		}
		if *compare {
			if rows := experiments.Compare(&f); len(rows) > 0 {
				fmt.Println(experiments.RenderComparison(rows))
			}
		}
		fmt.Println(strings.Repeat("-", 72))
	}
	if !ran && !want("3") {
		fmt.Fprintf(os.Stderr, "figures: unknown figure %q\n", *fig)
		os.Exit(2)
	}
}

func printFigure3() {
	fmt.Println("Figure 3 — Memory latencies for different configurations (cycles @ 1 GHz)")
	fmt.Printf("%-28s %6s %6s %7s %7s\n", "configuration", "L2Hit", "Local", "Remote", "Dirty")
	for _, row := range core.FigureThree() {
		fmt.Printf("%-28s %6d %6d %7d %7d\n",
			row.Label, row.Lat.L2Hit, row.Lat.Local, row.Lat.Remote, row.Lat.RemoteDirty)
	}
	fmt.Println(strings.Repeat("-", 72))
}
