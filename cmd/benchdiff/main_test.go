package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
)

// TestCompare pins the regression policy: the -threshold flag governs the
// machine-dependent time check, -alloc-tolerance the deterministic alloc
// check, and -allocs-only disables only the former.
func TestCompare(t *testing.T) {
	base := []Benchmark{{Name: "BenchmarkX", NsPerOp: 1000, AllocsPerOp: 100}}
	obs := func(ns float64, allocs uint64) map[string]Benchmark {
		return map[string]Benchmark{"BenchmarkX": {Name: "BenchmarkX", NsPerOp: ns, AllocsPerOp: allocs}}
	}
	cases := []struct {
		name       string
		base       []Benchmark
		got        map[string]Benchmark
		threshold  float64
		allocTol   float64
		allocsOnly bool
		wantFailed bool
		wantLine   string
	}{
		{"identical", base, obs(1000, 100), 10, 0.01, false, false, "ok  "},
		{"faster is fine", base, obs(500, 100), 10, 0.01, false, false, "ok  "},
		{"time within threshold", base, obs(1050, 100), 10, 0.01, false, false, "ok  "},
		{"time beyond threshold", base, obs(1150, 100), 10, 0.01, false, true, "FAIL"},
		{"raised threshold admits it", base, obs(1150, 100), 25, 0.01, false, false, "ok  "},
		{"tightened threshold rejects it", base, obs(1050, 100), 2, 0.01, false, true, "FAIL"},
		{"allocs-only skips time check", base, obs(2000, 100), 10, 0.01, true, false, "ok  "},
		{"alloc regression", base, obs(1000, 110), 10, 0.01, false, true, "FAIL"},
		{"alloc regression despite allocs-only", base, obs(1000, 110), 10, 0.01, true, true, "FAIL"},
		{"alloc within tolerance", base, obs(1000, 100), 10, 0.15, false, false, "ok  "},
		{"missing benchmark", base, map[string]Benchmark{}, 10, 0.01, false, true, "missing"},
		{
			"allocation where baseline had none",
			[]Benchmark{{Name: "BenchmarkX", NsPerOp: 1000, AllocsPerOp: 0}},
			obs(1000, 1), 10, 0.01, false, true, "FAIL",
		},
		{"empty baseline", nil, obs(1000, 100), 10, 0.01, false, false, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			results, failed := compare(tc.base, tc.got, tc.threshold, tc.allocTol, tc.allocsOnly)
			if failed != tc.wantFailed {
				t.Fatalf("failed = %v, want %v (results: %v)", failed, tc.wantFailed, results)
			}
			if len(results) != len(tc.base) {
				t.Fatalf("%d results for %d baseline entries", len(results), len(tc.base))
			}
			if tc.wantLine != "" && !strings.Contains(renderResult(results[0]), tc.wantLine) {
				t.Fatalf("line %q does not contain %q", renderResult(results[0]), tc.wantLine)
			}
			// Every failing result must carry an explicit reason; passing
			// ones must not.
			for _, r := range results {
				if (r.Status != "ok") != (len(r.Reasons) > 0) {
					t.Errorf("result %+v: status and reasons disagree", r)
				}
			}
		})
	}
}

// TestCompareReportsDeltasWhenPassing pins the always-report contract: a
// benchmark inside every tolerance still carries its exact time and alloc
// deltas, in both the structured result and the human line.
func TestCompareReportsDeltasWhenPassing(t *testing.T) {
	base := []Benchmark{{Name: "BenchmarkX", NsPerOp: 1000, AllocsPerOp: 200}}
	got := map[string]Benchmark{"BenchmarkX": {Name: "BenchmarkX", NsPerOp: 1050, AllocsPerOp: 198}}
	results, failed := compare(base, got, 10, 0.05, false)
	if failed || len(results) != 1 {
		t.Fatalf("failed=%v results=%v, want one passing result", failed, results)
	}
	r := results[0]
	if r.Status != "ok" || r.TimeDeltaPct < 4.9 || r.TimeDeltaPct > 5.1 {
		t.Errorf("time delta %+v, want ~+5%%", r)
	}
	if r.AllocDeltaPct > -0.9 || r.AllocDeltaPct < -1.1 {
		t.Errorf("alloc delta %.2f%%, want ~-1%%", r.AllocDeltaPct)
	}
	line := renderResult(r)
	for _, want := range []string{"allocs/op", "ns/op", "baseline"} {
		if !strings.Contains(line, want) {
			t.Errorf("human line %q missing %q", line, want)
		}
	}
	// The structured form must round-trip through JSON with both deltas.
	out, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"time_delta_pct"`, `"alloc_delta_pct"`, `"base_allocs_per_op"`} {
		if !strings.Contains(string(out), want) {
			t.Errorf("JSON %s missing %s", out, want)
		}
	}
}

// TestCompareFailureReasons pins that a double regression names both
// counters.
func TestCompareFailureReasons(t *testing.T) {
	base := []Benchmark{{Name: "BenchmarkX", NsPerOp: 1000, AllocsPerOp: 100}}
	got := map[string]Benchmark{"BenchmarkX": {Name: "BenchmarkX", NsPerOp: 2000, AllocsPerOp: 150}}
	results, failed := compare(base, got, 10, 0.01, false)
	if !failed || len(results) != 1 || len(results[0].Reasons) != 2 {
		t.Fatalf("results = %+v, want one result with two reasons", results)
	}
	line := renderResult(results[0])
	if !strings.Contains(line, "exceeds") {
		t.Errorf("human line %q does not spell out the failure reasons", line)
	}
}

// fakeRunner returns a runOne stub whose group names derive from the spec
// pattern, recording how many groups actually ran.
func fakeRunner(calls *int) func(context.Context, benchSpec) (map[string]Benchmark, error) {
	return func(_ context.Context, spec benchSpec) (map[string]Benchmark, error) {
		*calls++
		name := "Benchmark" + strings.Trim(spec.pattern, "^$")
		return map[string]Benchmark{name: {Name: name, NsPerOp: float64(*calls)}}, nil
	}
}

// TestCollectComplete: with an untouched context, collect merges every
// group's observations.
func TestCollectComplete(t *testing.T) {
	specs := []benchSpec{{"^A$", "1x"}, {"^B$", "1x"}, {"^C$", "1x"}}
	calls := 0
	got, err := collect(context.Background(), specs, fakeRunner(&calls))
	if err != nil {
		t.Fatalf("collect: %v", err)
	}
	if calls != 3 || len(got) != 3 {
		t.Fatalf("calls=%d len(got)=%d, want 3 and 3", calls, len(got))
	}
	for _, name := range []string{"BenchmarkA", "BenchmarkB", "BenchmarkC"} {
		if _, ok := got[name]; !ok {
			t.Errorf("missing %s", name)
		}
	}
}

// TestCollectInterrupted pins the partial-output contract: a signal that
// kills the in-flight benchmark group yields the groups that finished
// before it, the context error (not the kill error), and no further runs.
func TestCollectInterrupted(t *testing.T) {
	specs := []benchSpec{{"^A$", "1x"}, {"^B$", "1x"}, {"^C$", "1x"}}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	calls := 0
	got, err := collect(ctx, specs, func(_ context.Context, spec benchSpec) (map[string]Benchmark, error) {
		calls++
		if spec.pattern == "^B$" {
			// The signal arrives while B runs: the context dies and the
			// killed `go test` surfaces its own error.
			cancel()
			return nil, errors.New("go test -bench: signal: killed")
		}
		name := "Benchmark" + strings.Trim(spec.pattern, "^$")
		return map[string]Benchmark{name: {Name: name, NsPerOp: 1}}, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("collect = %v, want context.Canceled", err)
	}
	if calls != 2 {
		t.Errorf("ran %d groups, want 2 (C must not run after the interrupt)", calls)
	}
	if len(got) != 1 {
		t.Fatalf("partial results = %v, want BenchmarkA only", got)
	}
	if _, ok := got["BenchmarkA"]; !ok {
		t.Errorf("completed group BenchmarkA missing from partial results")
	}
}

// TestCollectPreCanceled: an already-dead context runs nothing.
func TestCollectPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	got, err := collect(ctx, []benchSpec{{"^A$", "1x"}}, fakeRunner(&calls))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("collect = %v, want context.Canceled", err)
	}
	if calls != 0 || len(got) != 0 {
		t.Errorf("calls=%d len(got)=%d, want 0 and 0", calls, len(got))
	}
}

// TestCollectRunError: a genuine benchmark failure (context still alive)
// propagates as-is, with the groups collected before it.
func TestCollectRunError(t *testing.T) {
	specs := []benchSpec{{"^A$", "1x"}, {"^B$", "1x"}}
	broken := errors.New("compile error")
	got, err := collect(context.Background(), specs, func(_ context.Context, spec benchSpec) (map[string]Benchmark, error) {
		if spec.pattern == "^B$" {
			return nil, broken
		}
		return map[string]Benchmark{"BenchmarkA": {Name: "BenchmarkA"}}, nil
	})
	if !errors.Is(err, broken) {
		t.Fatalf("collect = %v, want the runner's own error", err)
	}
	if len(got) != 1 {
		t.Errorf("partial results = %v, want BenchmarkA", got)
	}
}

// TestCollectEmptyMatch: a pattern that matches nothing is an error naming
// the pattern — a silently absent benchmark would make the baseline lie.
func TestCollectEmptyMatch(t *testing.T) {
	got, err := collect(context.Background(), []benchSpec{{"^Nope$", "1x"}},
		func(context.Context, benchSpec) (map[string]Benchmark, error) {
			return map[string]Benchmark{}, nil
		})
	if err == nil || !strings.Contains(err.Error(), "^Nope$") {
		t.Fatalf("collect = (%v, %v), want error naming the pattern", got, err)
	}
}

// TestCollected: the interrupted-comparison filter keeps baseline order and
// drops only the entries the interrupt skipped.
func TestCollected(t *testing.T) {
	base := []Benchmark{{Name: "BenchmarkA"}, {Name: "BenchmarkB"}, {Name: "BenchmarkC"}}
	got := map[string]Benchmark{"BenchmarkC": {}, "BenchmarkA": {}}
	have := collected(base, got)
	if fmt.Sprint(have) != fmt.Sprint([]Benchmark{{Name: "BenchmarkA"}, {Name: "BenchmarkC"}}) {
		t.Errorf("collected = %v, want A then C in baseline order", have)
	}
}

// TestCompareExtraObservations: benchmarks present in the run but absent from
// the baseline are ignored — the baseline defines the guarded set.
func TestCompareExtraObservations(t *testing.T) {
	base := []Benchmark{{Name: "BenchmarkX", NsPerOp: 1000, AllocsPerOp: 10}}
	got := map[string]Benchmark{
		"BenchmarkX": {Name: "BenchmarkX", NsPerOp: 1000, AllocsPerOp: 10},
		"BenchmarkY": {Name: "BenchmarkY", NsPerOp: 9999, AllocsPerOp: 9999},
	}
	lines, failed := compare(base, got, 10, 0.01, false)
	if failed || len(lines) != 1 {
		t.Fatalf("failed=%v lines=%v, want one passing line", failed, lines)
	}
}
