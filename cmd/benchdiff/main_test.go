package main

import (
	"strings"
	"testing"
)

// TestCompare pins the regression policy: the -threshold flag governs the
// machine-dependent time check, -alloc-tolerance the deterministic alloc
// check, and -allocs-only disables only the former.
func TestCompare(t *testing.T) {
	base := []Benchmark{{Name: "BenchmarkX", NsPerOp: 1000, AllocsPerOp: 100}}
	obs := func(ns float64, allocs uint64) map[string]Benchmark {
		return map[string]Benchmark{"BenchmarkX": {Name: "BenchmarkX", NsPerOp: ns, AllocsPerOp: allocs}}
	}
	cases := []struct {
		name       string
		base       []Benchmark
		got        map[string]Benchmark
		threshold  float64
		allocTol   float64
		allocsOnly bool
		wantFailed bool
		wantLine   string
	}{
		{"identical", base, obs(1000, 100), 10, 0.01, false, false, "ok  "},
		{"faster is fine", base, obs(500, 100), 10, 0.01, false, false, "ok  "},
		{"time within threshold", base, obs(1050, 100), 10, 0.01, false, false, "ok  "},
		{"time beyond threshold", base, obs(1150, 100), 10, 0.01, false, true, "FAIL"},
		{"raised threshold admits it", base, obs(1150, 100), 25, 0.01, false, false, "ok  "},
		{"tightened threshold rejects it", base, obs(1050, 100), 2, 0.01, false, true, "FAIL"},
		{"allocs-only skips time check", base, obs(2000, 100), 10, 0.01, true, false, "ok  "},
		{"alloc regression", base, obs(1000, 110), 10, 0.01, false, true, "FAIL"},
		{"alloc regression despite allocs-only", base, obs(1000, 110), 10, 0.01, true, true, "FAIL"},
		{"alloc within tolerance", base, obs(1000, 100), 10, 0.15, false, false, "ok  "},
		{"missing benchmark", base, map[string]Benchmark{}, 10, 0.01, false, true, "missing"},
		{
			"allocation where baseline had none",
			[]Benchmark{{Name: "BenchmarkX", NsPerOp: 1000, AllocsPerOp: 0}},
			obs(1000, 1), 10, 0.01, false, true, "FAIL",
		},
		{"empty baseline", nil, obs(1000, 100), 10, 0.01, false, false, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			lines, failed := compare(tc.base, tc.got, tc.threshold, tc.allocTol, tc.allocsOnly)
			if failed != tc.wantFailed {
				t.Fatalf("failed = %v, want %v (lines: %v)", failed, tc.wantFailed, lines)
			}
			if len(lines) != len(tc.base) {
				t.Fatalf("%d report lines for %d baseline entries", len(lines), len(tc.base))
			}
			if tc.wantLine != "" && !strings.Contains(lines[0], tc.wantLine) {
				t.Fatalf("line %q does not contain %q", lines[0], tc.wantLine)
			}
		})
	}
}

// TestCompareExtraObservations: benchmarks present in the run but absent from
// the baseline are ignored — the baseline defines the guarded set.
func TestCompareExtraObservations(t *testing.T) {
	base := []Benchmark{{Name: "BenchmarkX", NsPerOp: 1000, AllocsPerOp: 10}}
	got := map[string]Benchmark{
		"BenchmarkX": {Name: "BenchmarkX", NsPerOp: 1000, AllocsPerOp: 10},
		"BenchmarkY": {Name: "BenchmarkY", NsPerOp: 9999, AllocsPerOp: 9999},
	}
	lines, failed := compare(base, got, 10, 0.01, false)
	if failed || len(lines) != 1 {
		t.Fatalf("failed=%v lines=%v, want one passing line", failed, lines)
	}
}
