// Command benchdiff is the benchmark regression guard for the hot-path
// work: it runs the repo's benchmarks, reduces each to its best (minimum)
// observation across -count repetitions — the right statistic on noisy
// shared machines, since noise only ever adds time — and either records the
// result as the committed baseline (-write) or compares against it (-check).
//
// Two counters are guarded differently because they fail differently:
//
//   - allocs/op is deterministic for a deterministic simulator, so ANY
//     increase beyond -alloc-tolerance is a real regression and always
//     fails the check, on any machine.
//   - ns/op is machine-dependent, so the time check (-threshold, default
//     10%) is meaningful on hardware comparable to the baseline's; pass
//     -allocs-only to skip it entirely (the blocking CI step does this,
//     the advisory step runs the full comparison).
//
// Usage:
//
//	go run ./cmd/benchdiff -write            # record baseline BENCH_pr9.json
//	go run ./cmd/benchdiff -check            # fail on time or alloc regression
//	go run ./cmd/benchdiff -check -allocs-only
//	go run ./cmd/benchdiff -check -threshold 25
//	go run ./cmd/benchdiff -check -json      # machine-readable comparison
//
// Every comparison — human or -json — reports both deltas for every
// benchmark, including the ones that pass: a time delta inside the
// threshold and an alloc delta inside tolerance are still data (CI trend
// dashboards read the -json form), and a FAIL carries its explicit reasons
// rather than leaving the reader to reverse-engineer which counter tripped.
//
// A full sweep takes minutes, so SIGINT/SIGTERM are honored between and
// during benchmark groups: the in-flight `go test` is killed, and -check
// compares whatever completed before the interrupt (exit 130 if that
// partial slice is clean, 1 if it already shows a regression). A CI
// timeout therefore still reports which benchmarks passed instead of
// discarding the whole run. -write never records a partial baseline.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"syscall"
)

// Baseline is the committed benchmark record.
type Baseline struct {
	// Note reminds readers how the numbers were produced.
	Note string `json:"note"`
	// Short records whether the benchmarks ran with -short (the scaled-down
	// database); a check against a baseline from the other mode is invalid.
	Short      bool        `json:"short"`
	Count      int         `json:"count"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one benchmark's best observation.
type Benchmark struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  uint64  `json:"bytes_per_op"`
	AllocsPerOp uint64  `json:"allocs_per_op"`
}

func main() {
	var (
		write      = flag.Bool("write", false, "record the baseline instead of checking against it")
		check      = flag.Bool("check", false, "compare against the committed baseline")
		baseline   = flag.String("baseline", "BENCH_pr9.json", "baseline file path")
		count      = flag.Int("count", 3, "repetitions; the minimum per benchmark is used")
		short      = flag.Bool("short", true, "run benchmarks in -short mode")
		threshold  = flag.Float64("threshold", 10, "allowed ns/op regression in percent")
		allocTol   = flag.Float64("alloc-tolerance", 0.01, "allowed fractional allocs/op regression")
		allocsOnly = flag.Bool("allocs-only", false, "skip the machine-dependent ns/op comparison")
		jsonOut    = flag.Bool("json", false, "with -check, emit the comparison as JSON on stdout")
	)
	flag.Parse()
	if *write == *check {
		fmt.Fprintln(os.Stderr, "benchdiff: exactly one of -write or -check is required")
		os.Exit(2)
	}

	// Each guarded benchmark carries its own iteration budget:
	// RunnerSerial and the Step64 pair regenerate a whole run per iteration
	// (1x is already seconds of simulation); SimulationThroughput and
	// StepScaling time single Step calls and need enough iterations that
	// setup cost amortizes away, which is also what drives their allocs/op
	// to the steady-state zero. StepScaling's sub-benchmarks (8 to 128
	// nodes) are the scaling guard: each is recorded under its full
	// "BenchmarkStepScaling/nodes=N" name, so a super-linear per-ref
	// slowdown at large N shows up as a plain time regression at that N.
	// Step64Sharded likewise sweeps worker counts as sub-benchmarks
	// ("BenchmarkStep64Sharded/workers=N"), so the baseline records the
	// whole parallel-efficiency curve, not one point. Oltpvet re-analyzes
	// the whole module per iteration (seconds of type-checking), so like
	// the runner benchmarks it runs at 1x.
	specs := []benchSpec{
		{"^BenchmarkRunnerSerial$", "1x"},
		{"^BenchmarkRunnerColdRepeat$", "1x"},
		{"^BenchmarkRunnerWarmReuse$", "1x"},
		{"^BenchmarkSimulationThroughput$", "2000000x"},
		{"^BenchmarkStepScaling$", "1000000x"},
		{"^BenchmarkStep64Serial$", "1x"},
		{"^BenchmarkStep64Sharded$", "1x"},
		{"^BenchmarkJobThroughput$", "1x"},
		{"^BenchmarkOltpvet$", "1x"},
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	got, err := collect(ctx, specs, func(ctx context.Context, spec benchSpec) (map[string]Benchmark, error) {
		return runBenchmarks(ctx, spec.pattern, spec.benchtime, *count, *short)
	})
	interrupted := errors.Is(err, context.Canceled)
	if err != nil && !interrupted {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}

	if *write {
		if interrupted {
			fmt.Fprintln(os.Stderr, "benchdiff: interrupted; refusing to write a partial baseline")
			os.Exit(130)
		}
		b := Baseline{
			Note:  "minimum of -count runs of `go test -bench -benchmem`; regenerate with: go run ./cmd/benchdiff -write",
			Short: *short,
			Count: *count,
		}
		for _, name := range sortedNames(got) {
			b.Benchmarks = append(b.Benchmarks, got[name])
		}
		out, err := json.MarshalIndent(&b, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*baseline, append(out, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d benchmarks)\n", *baseline, len(b.Benchmarks))
		return
	}

	raw, err := os.ReadFile(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: reading baseline: %v\n", err)
		os.Exit(1)
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: parsing baseline: %v\n", err)
		os.Exit(1)
	}
	if base.Short != *short {
		fmt.Fprintf(os.Stderr, "benchdiff: baseline recorded with short=%v but check ran with short=%v\n", base.Short, *short)
		os.Exit(2)
	}

	// On interrupt, compare only the baseline entries that finished before
	// the signal — a benchmark the interrupt skipped is not "missing".
	guarded := base.Benchmarks
	if interrupted {
		guarded = collected(base.Benchmarks, got)
	}
	results, failed := compare(guarded, got, *threshold, *allocTol, *allocsOnly)
	if *jsonOut {
		rep := Report{
			Baseline:    *baseline,
			Interrupted: interrupted,
			Compared:    len(guarded),
			Total:       len(base.Benchmarks),
			Failed:      failed,
			Results:     results,
		}
		out, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(string(out))
	} else {
		for _, r := range results {
			fmt.Println(renderResult(r))
		}
		if interrupted {
			fmt.Printf("benchdiff: interrupted; compared %d of %d baseline benchmarks\n",
				len(guarded), len(base.Benchmarks))
		}
		if failed {
			fmt.Println("benchdiff: regression detected")
		} else {
			fmt.Println("benchdiff: within tolerance")
		}
	}
	if failed {
		os.Exit(1)
	}
	if interrupted {
		os.Exit(130)
	}
}

// benchSpec names one benchmark group and its iteration budget.
type benchSpec struct {
	pattern   string
	benchtime string
}

// collect runs every benchmark group in order and merges the observations.
// If ctx is canceled mid-sweep — a developer's ^C or a CI timeout killing
// the in-flight `go test` — it returns everything gathered so far together
// with the context error, so the caller can still report a partial
// comparison instead of discarding minutes of completed work. runOne is
// injected so tests can exercise the interrupt paths without running real
// benchmarks.
func collect(ctx context.Context, specs []benchSpec, runOne func(context.Context, benchSpec) (map[string]Benchmark, error)) (map[string]Benchmark, error) {
	got := make(map[string]Benchmark)
	for _, spec := range specs {
		if err := ctx.Err(); err != nil {
			return got, err
		}
		part, err := runOne(ctx, spec)
		if err != nil {
			// A group killed by the signal reports the kill, not the
			// cancellation; surface the context error so the caller can
			// tell an interrupt from a genuinely broken benchmark.
			if cerr := ctx.Err(); cerr != nil {
				return got, cerr
			}
			return got, err
		}
		if len(part) == 0 {
			return got, fmt.Errorf("no benchmarks matched %q", spec.pattern)
		}
		for name, b := range part {
			got[name] = b
		}
	}
	return got, nil
}

// collected filters the baseline to the entries observed this run,
// preserving baseline order.
func collected(base []Benchmark, got map[string]Benchmark) []Benchmark {
	var have []Benchmark
	for _, b := range base {
		if _, ok := got[b.Name]; ok {
			have = append(have, b)
		}
	}
	return have
}

// Report is the machine-readable form of one -check run (-json).
type Report struct {
	Baseline    string   `json:"baseline"`
	Interrupted bool     `json:"interrupted"`
	Compared    int      `json:"compared"`
	Total       int      `json:"total"`
	Failed      bool     `json:"failed"`
	Results     []Result `json:"results"`
}

// Result is one benchmark's comparison outcome. Both deltas are always
// present — a passing benchmark's drift is still data — and a failing one
// names every counter that tripped in Reasons.
type Result struct {
	Name            string   `json:"name"`
	Status          string   `json:"status"` // "ok", "fail", or "missing"
	NsPerOp         float64  `json:"ns_per_op"`
	BaseNsPerOp     float64  `json:"base_ns_per_op"`
	TimeDeltaPct    float64  `json:"time_delta_pct"`
	AllocsPerOp     uint64   `json:"allocs_per_op"`
	BaseAllocsPerOp uint64   `json:"base_allocs_per_op"`
	AllocDeltaPct   float64  `json:"alloc_delta_pct"`
	Reasons         []string `json:"reasons,omitempty"`
}

// compare checks fresh observations against the baseline benchmarks,
// returning one Result per baseline entry and whether anything regressed.
// threshold is the allowed ns/op regression in percent; allocTol the
// allowed fractional allocs/op regression; allocsOnly skips the
// machine-dependent time comparison.
func compare(base []Benchmark, got map[string]Benchmark, threshold, allocTol float64, allocsOnly bool) ([]Result, bool) {
	var results []Result
	failed := false
	for _, b := range base {
		g, ok := got[b.Name]
		if !ok {
			results = append(results, Result{
				Name: b.Name, Status: "missing",
				BaseNsPerOp: b.NsPerOp, BaseAllocsPerOp: b.AllocsPerOp,
				Reasons: []string{"benchmark missing from this run"},
			})
			failed = true
			continue
		}
		timeRatio := g.NsPerOp / b.NsPerOp
		allocRatio := ratio(g.AllocsPerOp, b.AllocsPerOp)
		r := Result{
			Name:    b.Name,
			Status:  "ok",
			NsPerOp: g.NsPerOp, BaseNsPerOp: b.NsPerOp,
			TimeDeltaPct:    100 * (timeRatio - 1),
			AllocsPerOp:     g.AllocsPerOp,
			BaseAllocsPerOp: b.AllocsPerOp,
			AllocDeltaPct:   100 * (allocRatio - 1),
		}
		if allocRatio > 1+allocTol {
			r.Reasons = append(r.Reasons, fmt.Sprintf("allocs/op %d exceeds baseline %d beyond %.1f%% tolerance",
				g.AllocsPerOp, b.AllocsPerOp, 100*allocTol))
		}
		if !allocsOnly && timeRatio > 1+threshold/100 {
			r.Reasons = append(r.Reasons, fmt.Sprintf("ns/op %+.1f%% exceeds %.0f%% threshold",
				r.TimeDeltaPct, threshold))
		}
		if len(r.Reasons) > 0 {
			r.Status = "fail"
			failed = true
		}
		results = append(results, r)
	}
	return results, failed
}

// renderResult is the human form of one comparison outcome: status, both
// counters with their baselines and deltas, and any failure reasons.
func renderResult(r Result) string {
	if r.Status == "missing" {
		return fmt.Sprintf("FAIL %s: benchmark missing from this run", r.Name)
	}
	status := "ok  "
	if r.Status == "fail" {
		status = "FAIL"
	}
	line := fmt.Sprintf("%s %s: %.0f ns/op (baseline %.0f, %+.1f%%), %d allocs/op (baseline %d, %+.1f%%)",
		status, r.Name, r.NsPerOp, r.BaseNsPerOp, r.TimeDeltaPct,
		r.AllocsPerOp, r.BaseAllocsPerOp, r.AllocDeltaPct)
	if len(r.Reasons) > 0 {
		line += " [" + strings.Join(r.Reasons, "; ") + "]"
	}
	return line
}

// runBenchmarks shells out to `go test` and returns the best observation per
// benchmark (name with the -GOMAXPROCS suffix stripped). The context kills
// the child process on cancellation, so an interrupted sweep stops promptly
// instead of finishing a minutes-long benchmark nobody will read.
func runBenchmarks(ctx context.Context, pattern, benchtime string, count int, short bool) (map[string]Benchmark, error) {
	args := []string{"test", "-run", "^$", "-bench", pattern, "-benchmem",
		"-benchtime", benchtime, "-count", strconv.Itoa(count), "."}
	if short {
		args = append(args, "-short")
	}
	cmd := exec.CommandContext(ctx, "go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go test -bench: %w", err)
	}
	return parseBench(string(out))
}

// benchLine matches e.g.
//
//	BenchmarkRunnerSerial-16  1  951630154 ns/op  205174040 B/op  29821 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func parseBench(out string) (map[string]Benchmark, error) {
	res := make(map[string]Benchmark)
	for _, line := range strings.Split(out, "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("parsing %q: %w", line, err)
		}
		bytes, _ := strconv.ParseUint(m[3], 10, 64)
		allocs, _ := strconv.ParseUint(m[4], 10, 64)
		b := Benchmark{Name: m[1], NsPerOp: ns, BytesPerOp: bytes, AllocsPerOp: allocs}
		if prev, ok := res[b.Name]; ok {
			// Keep the per-field minimum: noise is strictly additive.
			if prev.NsPerOp < b.NsPerOp {
				b.NsPerOp = prev.NsPerOp
			}
			if prev.BytesPerOp < b.BytesPerOp {
				b.BytesPerOp = prev.BytesPerOp
			}
			if prev.AllocsPerOp < b.AllocsPerOp {
				b.AllocsPerOp = prev.AllocsPerOp
			}
		}
		res[b.Name] = b
	}
	return res, nil
}

func ratio(a, b uint64) float64 {
	if b == 0 {
		if a == 0 {
			return 1
		}
		return 2 // any allocation where the baseline had none is a regression
	}
	return float64(a) / float64(b)
}

func sortedNames(m map[string]Benchmark) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
