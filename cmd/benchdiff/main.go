// Command benchdiff is the benchmark regression guard for the hot-path
// work: it runs the repo's benchmarks, reduces each to its best (minimum)
// observation across -count repetitions — the right statistic on noisy
// shared machines, since noise only ever adds time — and either records the
// result as the committed baseline (-write) or compares against it (-check).
//
// Two counters are guarded differently because they fail differently:
//
//   - allocs/op is deterministic for a deterministic simulator, so ANY
//     increase beyond -alloc-tolerance is a real regression and always
//     fails the check, on any machine.
//   - ns/op is machine-dependent, so the time check (-threshold, default
//     10%) is meaningful on hardware comparable to the baseline's; pass
//     -allocs-only to skip it entirely (the blocking CI step does this,
//     the advisory step runs the full comparison).
//
// Usage:
//
//	go run ./cmd/benchdiff -write            # record baseline BENCH_pr8.json
//	go run ./cmd/benchdiff -check            # fail on time or alloc regression
//	go run ./cmd/benchdiff -check -allocs-only
//	go run ./cmd/benchdiff -check -threshold 25
//
// A full sweep takes minutes, so SIGINT/SIGTERM are honored between and
// during benchmark groups: the in-flight `go test` is killed, and -check
// compares whatever completed before the interrupt (exit 130 if that
// partial slice is clean, 1 if it already shows a regression). A CI
// timeout therefore still reports which benchmarks passed instead of
// discarding the whole run. -write never records a partial baseline.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"syscall"
)

// Baseline is the committed benchmark record.
type Baseline struct {
	// Note reminds readers how the numbers were produced.
	Note string `json:"note"`
	// Short records whether the benchmarks ran with -short (the scaled-down
	// database); a check against a baseline from the other mode is invalid.
	Short      bool        `json:"short"`
	Count      int         `json:"count"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one benchmark's best observation.
type Benchmark struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  uint64  `json:"bytes_per_op"`
	AllocsPerOp uint64  `json:"allocs_per_op"`
}

func main() {
	var (
		write      = flag.Bool("write", false, "record the baseline instead of checking against it")
		check      = flag.Bool("check", false, "compare against the committed baseline")
		baseline   = flag.String("baseline", "BENCH_pr8.json", "baseline file path")
		count      = flag.Int("count", 3, "repetitions; the minimum per benchmark is used")
		short      = flag.Bool("short", true, "run benchmarks in -short mode")
		threshold  = flag.Float64("threshold", 10, "allowed ns/op regression in percent")
		allocTol   = flag.Float64("alloc-tolerance", 0.01, "allowed fractional allocs/op regression")
		allocsOnly = flag.Bool("allocs-only", false, "skip the machine-dependent ns/op comparison")
	)
	flag.Parse()
	if *write == *check {
		fmt.Fprintln(os.Stderr, "benchdiff: exactly one of -write or -check is required")
		os.Exit(2)
	}

	// Each guarded benchmark carries its own iteration budget:
	// RunnerSerial and the Step64 pair regenerate a whole run per iteration
	// (1x is already seconds of simulation); SimulationThroughput and
	// StepScaling time single Step calls and need enough iterations that
	// setup cost amortizes away, which is also what drives their allocs/op
	// to the steady-state zero. StepScaling's sub-benchmarks (8 to 128
	// nodes) are the scaling guard: each is recorded under its full
	// "BenchmarkStepScaling/nodes=N" name, so a super-linear per-ref
	// slowdown at large N shows up as a plain time regression at that N.
	// Oltpvet re-analyzes the whole module per iteration (seconds of
	// type-checking), so like the runner benchmarks it runs at 1x.
	specs := []benchSpec{
		{"^BenchmarkRunnerSerial$", "1x"},
		{"^BenchmarkRunnerColdRepeat$", "1x"},
		{"^BenchmarkRunnerWarmReuse$", "1x"},
		{"^BenchmarkSimulationThroughput$", "2000000x"},
		{"^BenchmarkStepScaling$", "1000000x"},
		{"^BenchmarkStep64Serial$", "1x"},
		{"^BenchmarkStep64Sharded$", "1x"},
		{"^BenchmarkJobThroughput$", "1x"},
		{"^BenchmarkOltpvet$", "1x"},
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	got, err := collect(ctx, specs, func(ctx context.Context, spec benchSpec) (map[string]Benchmark, error) {
		return runBenchmarks(ctx, spec.pattern, spec.benchtime, *count, *short)
	})
	interrupted := errors.Is(err, context.Canceled)
	if err != nil && !interrupted {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}

	if *write {
		if interrupted {
			fmt.Fprintln(os.Stderr, "benchdiff: interrupted; refusing to write a partial baseline")
			os.Exit(130)
		}
		b := Baseline{
			Note:  "minimum of -count runs of `go test -bench -benchmem`; regenerate with: go run ./cmd/benchdiff -write",
			Short: *short,
			Count: *count,
		}
		for _, name := range sortedNames(got) {
			b.Benchmarks = append(b.Benchmarks, got[name])
		}
		out, err := json.MarshalIndent(&b, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*baseline, append(out, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d benchmarks)\n", *baseline, len(b.Benchmarks))
		return
	}

	raw, err := os.ReadFile(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: reading baseline: %v\n", err)
		os.Exit(1)
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: parsing baseline: %v\n", err)
		os.Exit(1)
	}
	if base.Short != *short {
		fmt.Fprintf(os.Stderr, "benchdiff: baseline recorded with short=%v but check ran with short=%v\n", base.Short, *short)
		os.Exit(2)
	}

	// On interrupt, compare only the baseline entries that finished before
	// the signal — a benchmark the interrupt skipped is not "missing".
	guarded := base.Benchmarks
	if interrupted {
		guarded = collected(base.Benchmarks, got)
	}
	lines, failed := compare(guarded, got, *threshold, *allocTol, *allocsOnly)
	for _, line := range lines {
		fmt.Println(line)
	}
	if interrupted {
		fmt.Printf("benchdiff: interrupted; compared %d of %d baseline benchmarks\n",
			len(guarded), len(base.Benchmarks))
	}
	if failed {
		fmt.Println("benchdiff: regression detected")
		os.Exit(1)
	}
	if interrupted {
		os.Exit(130)
	}
	fmt.Println("benchdiff: within tolerance")
}

// benchSpec names one benchmark group and its iteration budget.
type benchSpec struct {
	pattern   string
	benchtime string
}

// collect runs every benchmark group in order and merges the observations.
// If ctx is canceled mid-sweep — a developer's ^C or a CI timeout killing
// the in-flight `go test` — it returns everything gathered so far together
// with the context error, so the caller can still report a partial
// comparison instead of discarding minutes of completed work. runOne is
// injected so tests can exercise the interrupt paths without running real
// benchmarks.
func collect(ctx context.Context, specs []benchSpec, runOne func(context.Context, benchSpec) (map[string]Benchmark, error)) (map[string]Benchmark, error) {
	got := make(map[string]Benchmark)
	for _, spec := range specs {
		if err := ctx.Err(); err != nil {
			return got, err
		}
		part, err := runOne(ctx, spec)
		if err != nil {
			// A group killed by the signal reports the kill, not the
			// cancellation; surface the context error so the caller can
			// tell an interrupt from a genuinely broken benchmark.
			if cerr := ctx.Err(); cerr != nil {
				return got, cerr
			}
			return got, err
		}
		if len(part) == 0 {
			return got, fmt.Errorf("no benchmarks matched %q", spec.pattern)
		}
		for name, b := range part {
			got[name] = b
		}
	}
	return got, nil
}

// collected filters the baseline to the entries observed this run,
// preserving baseline order.
func collected(base []Benchmark, got map[string]Benchmark) []Benchmark {
	var have []Benchmark
	for _, b := range base {
		if _, ok := got[b.Name]; ok {
			have = append(have, b)
		}
	}
	return have
}

// compare checks fresh observations against the baseline benchmarks,
// returning one report line per baseline entry and whether anything
// regressed. threshold is the allowed ns/op regression in percent; allocTol
// the allowed fractional allocs/op regression; allocsOnly skips the
// machine-dependent time comparison.
func compare(base []Benchmark, got map[string]Benchmark, threshold, allocTol float64, allocsOnly bool) ([]string, bool) {
	var lines []string
	failed := false
	for _, b := range base {
		g, ok := got[b.Name]
		if !ok {
			lines = append(lines, fmt.Sprintf("FAIL %s: benchmark missing from this run", b.Name))
			failed = true
			continue
		}
		timeRatio := g.NsPerOp / b.NsPerOp
		allocRatio := ratio(g.AllocsPerOp, b.AllocsPerOp)
		status := "ok  "
		switch {
		case allocRatio > 1+allocTol:
			status, failed = "FAIL", true
		case !allocsOnly && timeRatio > 1+threshold/100:
			status, failed = "FAIL", true
		}
		lines = append(lines, fmt.Sprintf("%s %s: %.0f ns/op (baseline %.0f, %+.1f%%), %d allocs/op (baseline %d, %+.1f%%)",
			status, b.Name, g.NsPerOp, b.NsPerOp, 100*(timeRatio-1),
			g.AllocsPerOp, b.AllocsPerOp, 100*(allocRatio-1)))
	}
	return lines, failed
}

// runBenchmarks shells out to `go test` and returns the best observation per
// benchmark (name with the -GOMAXPROCS suffix stripped). The context kills
// the child process on cancellation, so an interrupted sweep stops promptly
// instead of finishing a minutes-long benchmark nobody will read.
func runBenchmarks(ctx context.Context, pattern, benchtime string, count int, short bool) (map[string]Benchmark, error) {
	args := []string{"test", "-run", "^$", "-bench", pattern, "-benchmem",
		"-benchtime", benchtime, "-count", strconv.Itoa(count), "."}
	if short {
		args = append(args, "-short")
	}
	cmd := exec.CommandContext(ctx, "go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go test -bench: %w", err)
	}
	return parseBench(string(out))
}

// benchLine matches e.g.
//
//	BenchmarkRunnerSerial-16  1  951630154 ns/op  205174040 B/op  29821 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func parseBench(out string) (map[string]Benchmark, error) {
	res := make(map[string]Benchmark)
	for _, line := range strings.Split(out, "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("parsing %q: %w", line, err)
		}
		bytes, _ := strconv.ParseUint(m[3], 10, 64)
		allocs, _ := strconv.ParseUint(m[4], 10, 64)
		b := Benchmark{Name: m[1], NsPerOp: ns, BytesPerOp: bytes, AllocsPerOp: allocs}
		if prev, ok := res[b.Name]; ok {
			// Keep the per-field minimum: noise is strictly additive.
			if prev.NsPerOp < b.NsPerOp {
				b.NsPerOp = prev.NsPerOp
			}
			if prev.BytesPerOp < b.BytesPerOp {
				b.BytesPerOp = prev.BytesPerOp
			}
			if prev.AllocsPerOp < b.AllocsPerOp {
				b.AllocsPerOp = prev.AllocsPerOp
			}
		}
		res[b.Name] = b
	}
	return res, nil
}

func ratio(a, b uint64) float64 {
	if b == 0 {
		if a == 0 {
			return 1
		}
		return 2 // any allocation where the baseline had none is a regression
	}
	return float64(a) / float64(b)
}

func sortedNames(m map[string]Benchmark) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
