// Command oltpsim runs one machine configuration against the OLTP workload
// and prints its execution-time breakdown and L2 miss profile.
//
// Examples:
//
//	oltpsim -procs 8 -level base -l2 8M -assoc 1
//	oltpsim -procs 1 -level l2 -l2 2M -assoc 8
//	oltpsim -procs 8 -level full -l2 2M -assoc 8 -ooo
//	oltpsim -procs 8 -level full -l2 1M -assoc 4 -rac 8M -repl
//	oltpsim -procs 8 -level full -l2 2M -assoc 8 -cores 2   # CMP
//	oltpsim -procs 8 -level full -l2 2M -assoc 8 -scenario examples/burst.json -timeline out.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"oltpsim/internal/cli"
	"oltpsim/internal/core"
	"oltpsim/internal/experiments"
	"oltpsim/internal/prof"
	"oltpsim/internal/scenario"
	"oltpsim/internal/stats"
)

func main() {
	var (
		spec       cli.MachineSpec
		warmup     = flag.Uint64("warmup", 3000, "warmup transactions")
		measure    = flag.Uint64("txns", 2000, "measured transactions")
		quick      = flag.Bool("quick", false, "scaled-down database for fast runs")
		checkpoint = flag.String("checkpoint", "", "write a machine-state checkpoint to this file (at end of warmup, and during measurement with -checkpoint-every)")
		ckptEvery  = flag.Uint64("checkpoint-every", 0, "with -checkpoint, rewrite the checkpoint every N committed transactions (during warmup and measurement)")
		resume     = flag.String("resume", "", "resume from a checkpoint file written with the same configuration flags")
		stepJobs   = flag.Int("step-j", 0, "epoch-sharded stepping workers inside the simulation (0 or 1 = serial; results stay bit-identical)")
		cpuProf    = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProf    = flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
		scenFile   = flag.String("scenario", "", "run a time-varying workload profile from this JSON file instead of the fixed mix (-txns is ignored; phases are segmented in the output)")
		timeline   = flag.String("timeline", "", "with -scenario, write the per-phase timeline to this file (.json for JSON, anything else CSV)")
	)
	flag.IntVar(&spec.Procs, "procs", 1, "processor count (1 or 8 in the paper)")
	flag.StringVar(&spec.Level, "level", "base", "integration level: cons|base|l2|l2mc|full")
	flag.StringVar(&spec.L2, "l2", "8M", "L2 size (e.g. 1M, 1.25M, 2M, 8M)")
	flag.IntVar(&spec.Assoc, "assoc", 1, "L2 associativity")
	flag.BoolVar(&spec.DRAM, "dram", false, "use on-chip DRAM for an integrated L2")
	flag.BoolVar(&spec.OOO, "ooo", false, "out-of-order processor model")
	flag.StringVar(&spec.RACSize, "rac", "", "add a remote access cache of this size (e.g. 8M)")
	flag.BoolVar(&spec.Repl, "repl", false, "replicate code pages at every node")
	flag.IntVar(&spec.Cores, "cores", 1, "cores per chip (CMP extension; 1 = paper)")
	flag.Parse()

	if *ckptEvery > 0 && *checkpoint == "" {
		fmt.Fprintln(os.Stderr, "oltpsim: -checkpoint-every requires -checkpoint")
		os.Exit(2)
	}
	if *stepJobs < 0 {
		fmt.Fprintf(os.Stderr, "oltpsim: -step-j must be >= 0 (got %d)\n", *stepJobs)
		os.Exit(2)
	}
	if *timeline != "" && *scenFile == "" {
		fmt.Fprintln(os.Stderr, "oltpsim: -timeline requires -scenario")
		os.Exit(2)
	}

	cfg, err := cli.Build(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "oltpsim:", err)
		os.Exit(2)
	}

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "oltpsim:", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "oltpsim:", err)
			os.Exit(1)
		}
	}()

	opt := experiments.DefaultOptions()
	opt.WarmupTxns = *warmup
	opt.MeasureTxns = *measure
	opt.Quick = *quick
	opt.StepWorkers = *stepJobs
	if *scenFile != "" {
		sched, err := loadSchedule(*scenFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "oltpsim:", err)
			os.Exit(2)
		}
		opt.Scenario = sched
	}

	printConfig := func() {
		fmt.Printf("configuration: %s (%s, %d processor(s))\n", cfg.Name, cfg.Level, cfg.Processors)
		lat := cfg.Latencies()
		fmt.Printf("latencies: L2 hit %d, local %d, remote %d, remote dirty %d\n",
			lat.L2Hit, lat.Local, lat.Remote, lat.RemoteDirty)
	}

	if opt.Scenario != nil {
		sr, err := runScenario(opt, cfg, *resume, *checkpoint, *ckptEvery)
		if err != nil {
			fmt.Fprintln(os.Stderr, "oltpsim:", err)
			os.Exit(1)
		}
		printConfig()
		fmt.Printf("scenario: %s (%d phase(s), %d transactions)\n",
			opt.Scenario.Name(), opt.Scenario.NumPhases(), opt.Scenario.TotalTxns())
		for i := range sr.Phases {
			p := &sr.Phases[i]
			fmt.Printf("phase %-12s %8d txns  %10.1f cycles/txn  %8.2f L2 misses/txn\n",
				p.Result.Name, p.Result.Txns, p.Result.CyclesPerTxn(), p.Result.MissesPerTxn())
		}
		fmt.Print(sr.Total.Summary())
		if *timeline != "" {
			if err := writeTimeline(*timeline, &sr); err != nil {
				fmt.Fprintln(os.Stderr, "oltpsim:", err)
				os.Exit(1)
			}
		}
		return
	}

	var res stats.RunResult
	if *checkpoint == "" && *resume == "" {
		res = opt.Run(cfg)
	} else {
		res, err = runCheckpointed(opt, cfg, *resume, *checkpoint, *ckptEvery)
		if err != nil {
			fmt.Fprintln(os.Stderr, "oltpsim:", err)
			os.Exit(1)
		}
	}
	printConfig()
	fmt.Print(res.Summary())
}

// loadSchedule decodes and compiles a scenario profile file.
func loadSchedule(path string) (*scenario.Schedule, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	prof, err := scenario.DecodeProfile(f)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", path, err)
	}
	return prof.Compile()
}

// runScenario executes a phased run, plain or through the checkpoint
// protocol when -checkpoint/-resume are set.
func runScenario(opt experiments.Options, cfg core.Config, resumePath, checkpointPath string, every uint64) (experiments.ScenarioResult, error) {
	if checkpointPath == "" && resumePath == "" {
		return opt.RunScenario(cfg), nil
	}
	cr, err := checkpointIO(resumePath, checkpointPath, every)
	if err != nil {
		return experiments.ScenarioResult{}, err
	}
	sr, _, err := opt.RunScenarioCheckpointed(cfg, cr)
	if err != nil && resumePath != "" {
		err = fmt.Errorf("resume %s: %w", resumePath, err)
	}
	return sr, err
}

// writeTimeline writes the per-phase timeline, JSON for .json paths and CSV
// otherwise.
func writeTimeline(path string, sr *experiments.ScenarioResult) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".json") {
		err = experiments.WriteTimelineJSON(f, sr)
	} else {
		err = experiments.WriteTimelineCSV(f, sr)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// runCheckpointed executes the warmup/measure protocol with checkpoint
// and/or resume through experiments.RunCheckpointed (shared with the
// oltpserver job executor). The step sequence is identical to
// experiments.Options.Run (checkpoint writes are read-only), so a resumed
// run's output is bit-identical to an uninterrupted one.
func runCheckpointed(opt experiments.Options, cfg core.Config, resumePath, checkpointPath string, every uint64) (stats.RunResult, error) {
	cr, err := checkpointIO(resumePath, checkpointPath, every)
	if err != nil {
		return stats.RunResult{}, err
	}
	res, _, err := opt.RunCheckpointed(cfg, cr)
	if err != nil && resumePath != "" {
		err = fmt.Errorf("resume %s: %w", resumePath, err)
	}
	return res, err
}

// checkpointIO wires file paths into a CheckpointRun.
func checkpointIO(resumePath, checkpointPath string, every uint64) (experiments.CheckpointRun, error) {
	var cr experiments.CheckpointRun
	if resumePath != "" {
		data, err := os.ReadFile(resumePath)
		if err != nil {
			return cr, err
		}
		cr.Resume = data
	}
	if checkpointPath != "" {
		cr.Every = every
		cr.Write = func(data []byte) error {
			return os.WriteFile(checkpointPath, data, 0o644)
		}
	}
	return cr, nil
}
