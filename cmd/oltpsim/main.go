// Command oltpsim runs one machine configuration against the OLTP workload
// and prints its execution-time breakdown and L2 miss profile.
//
// Examples:
//
//	oltpsim -procs 8 -level base -l2 8M -assoc 1
//	oltpsim -procs 1 -level l2 -l2 2M -assoc 8
//	oltpsim -procs 8 -level full -l2 2M -assoc 8 -ooo
//	oltpsim -procs 8 -level full -l2 1M -assoc 4 -rac 8M -repl
//	oltpsim -procs 8 -level full -l2 2M -assoc 8 -cores 2   # CMP
package main

import (
	"flag"
	"fmt"
	"os"

	"oltpsim/internal/cli"
	"oltpsim/internal/experiments"
)

func main() {
	var (
		spec    cli.MachineSpec
		warmup  = flag.Uint64("warmup", 3000, "warmup transactions")
		measure = flag.Uint64("txns", 2000, "measured transactions")
		quick   = flag.Bool("quick", false, "scaled-down database for fast runs")
	)
	flag.IntVar(&spec.Procs, "procs", 1, "processor count (1 or 8 in the paper)")
	flag.StringVar(&spec.Level, "level", "base", "integration level: cons|base|l2|l2mc|full")
	flag.StringVar(&spec.L2, "l2", "8M", "L2 size (e.g. 1M, 1.25M, 2M, 8M)")
	flag.IntVar(&spec.Assoc, "assoc", 1, "L2 associativity")
	flag.BoolVar(&spec.DRAM, "dram", false, "use on-chip DRAM for an integrated L2")
	flag.BoolVar(&spec.OOO, "ooo", false, "out-of-order processor model")
	flag.StringVar(&spec.RACSize, "rac", "", "add a remote access cache of this size (e.g. 8M)")
	flag.BoolVar(&spec.Repl, "repl", false, "replicate code pages at every node")
	flag.IntVar(&spec.Cores, "cores", 1, "cores per chip (CMP extension; 1 = paper)")
	flag.Parse()

	cfg, err := cli.Build(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "oltpsim:", err)
		os.Exit(2)
	}

	opt := experiments.DefaultOptions()
	opt.WarmupTxns = *warmup
	opt.MeasureTxns = *measure
	opt.Quick = *quick

	res := opt.Run(cfg)
	fmt.Printf("configuration: %s (%s, %d processor(s))\n", cfg.Name, cfg.Level, cfg.Processors)
	lat := cfg.Latencies()
	fmt.Printf("latencies: L2 hit %d, local %d, remote %d, remote dirty %d\n",
		lat.L2Hit, lat.Local, lat.Remote, lat.RemoteDirty)
	fmt.Print(res.Summary())
}
