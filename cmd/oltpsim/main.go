// Command oltpsim runs one machine configuration against the OLTP workload
// and prints its execution-time breakdown and L2 miss profile.
//
// Examples:
//
//	oltpsim -procs 8 -level base -l2 8M -assoc 1
//	oltpsim -procs 1 -level l2 -l2 2M -assoc 8
//	oltpsim -procs 8 -level full -l2 2M -assoc 8 -ooo
//	oltpsim -procs 8 -level full -l2 1M -assoc 4 -rac 8M -repl
//	oltpsim -procs 8 -level full -l2 2M -assoc 8 -cores 2   # CMP
package main

import (
	"flag"
	"fmt"
	"os"

	"oltpsim/internal/cli"
	"oltpsim/internal/core"
	"oltpsim/internal/experiments"
	"oltpsim/internal/prof"
	"oltpsim/internal/stats"
)

func main() {
	var (
		spec       cli.MachineSpec
		warmup     = flag.Uint64("warmup", 3000, "warmup transactions")
		measure    = flag.Uint64("txns", 2000, "measured transactions")
		quick      = flag.Bool("quick", false, "scaled-down database for fast runs")
		checkpoint = flag.String("checkpoint", "", "write a machine-state checkpoint to this file (at end of warmup, and during measurement with -checkpoint-every)")
		ckptEvery  = flag.Uint64("checkpoint-every", 0, "with -checkpoint, rewrite the checkpoint every N committed transactions (during warmup and measurement)")
		resume     = flag.String("resume", "", "resume from a checkpoint file written with the same configuration flags")
		stepJobs   = flag.Int("step-j", 0, "epoch-sharded stepping workers inside the simulation (0 or 1 = serial; results stay bit-identical)")
		cpuProf    = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProf    = flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	)
	flag.IntVar(&spec.Procs, "procs", 1, "processor count (1 or 8 in the paper)")
	flag.StringVar(&spec.Level, "level", "base", "integration level: cons|base|l2|l2mc|full")
	flag.StringVar(&spec.L2, "l2", "8M", "L2 size (e.g. 1M, 1.25M, 2M, 8M)")
	flag.IntVar(&spec.Assoc, "assoc", 1, "L2 associativity")
	flag.BoolVar(&spec.DRAM, "dram", false, "use on-chip DRAM for an integrated L2")
	flag.BoolVar(&spec.OOO, "ooo", false, "out-of-order processor model")
	flag.StringVar(&spec.RACSize, "rac", "", "add a remote access cache of this size (e.g. 8M)")
	flag.BoolVar(&spec.Repl, "repl", false, "replicate code pages at every node")
	flag.IntVar(&spec.Cores, "cores", 1, "cores per chip (CMP extension; 1 = paper)")
	flag.Parse()

	if *ckptEvery > 0 && *checkpoint == "" {
		fmt.Fprintln(os.Stderr, "oltpsim: -checkpoint-every requires -checkpoint")
		os.Exit(2)
	}
	if *stepJobs < 0 {
		fmt.Fprintf(os.Stderr, "oltpsim: -step-j must be >= 0 (got %d)\n", *stepJobs)
		os.Exit(2)
	}

	cfg, err := cli.Build(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "oltpsim:", err)
		os.Exit(2)
	}

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "oltpsim:", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "oltpsim:", err)
			os.Exit(1)
		}
	}()

	opt := experiments.DefaultOptions()
	opt.WarmupTxns = *warmup
	opt.MeasureTxns = *measure
	opt.Quick = *quick
	opt.StepWorkers = *stepJobs

	var res stats.RunResult
	if *checkpoint == "" && *resume == "" {
		res = opt.Run(cfg)
	} else {
		res, err = runCheckpointed(opt, cfg, *resume, *checkpoint, *ckptEvery)
		if err != nil {
			fmt.Fprintln(os.Stderr, "oltpsim:", err)
			os.Exit(1)
		}
	}
	fmt.Printf("configuration: %s (%s, %d processor(s))\n", cfg.Name, cfg.Level, cfg.Processors)
	lat := cfg.Latencies()
	fmt.Printf("latencies: L2 hit %d, local %d, remote %d, remote dirty %d\n",
		lat.L2Hit, lat.Local, lat.Remote, lat.RemoteDirty)
	fmt.Print(res.Summary())
}

// runCheckpointed executes the warmup/measure protocol with checkpoint
// and/or resume through experiments.RunCheckpointed (shared with the
// oltpserver job executor). The step sequence is identical to
// experiments.Options.Run (checkpoint writes are read-only), so a resumed
// run's output is bit-identical to an uninterrupted one.
func runCheckpointed(opt experiments.Options, cfg core.Config, resumePath, checkpointPath string, every uint64) (stats.RunResult, error) {
	var cr experiments.CheckpointRun
	if resumePath != "" {
		data, err := os.ReadFile(resumePath)
		if err != nil {
			return stats.RunResult{}, err
		}
		cr.Resume = data
	}
	if checkpointPath != "" {
		cr.Every = every
		cr.Write = func(data []byte) error {
			return os.WriteFile(checkpointPath, data, 0o644)
		}
	}
	res, _, err := opt.RunCheckpointed(cfg, cr)
	if err != nil && resumePath != "" {
		err = fmt.Errorf("resume %s: %w", resumePath, err)
	}
	return res, err
}
