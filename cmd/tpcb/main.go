// Command tpcb runs the functional TPC-B database engine standalone — no
// timing simulation, just the engine executing transactions with its buffer
// pool, redo log, and daemons — and verifies the TPC-B consistency
// conditions at the end. It demonstrates that the workload substrate is a
// real database engine, not a statistical trace generator.
//
// Every line of output is a pure function of the flags: the report counts
// logical work (buffer gets, latch acquires, redo bytes, emitted references)
// rather than wall-clock time, so a fixed seed reproduces the run
// byte-for-byte. Throughput in real time is the timing simulator's job
// (cmd/oltpsim, cmd/figures); mixing the wall clock into this tool's output
// would break the determinism contract oltpvet enforces.
//
//	tpcb -txns 100000 -branches 40
package main

import (
	"flag"
	"fmt"
	"os"

	"oltpsim/internal/sim"
	"oltpsim/internal/tpcb"
)

func main() {
	var (
		txns     = flag.Int("txns", 100_000, "transactions to execute")
		branches = flag.Int("branches", 40, "TPC-B scale (branches)")
		accounts = flag.Int("accounts", 100_000, "accounts per branch")
		sessions = flag.Int("sessions", 8, "concurrent sessions (round-robin)")
		seed     = flag.Uint64("seed", 42, "workload seed")
		count    = flag.Bool("count", false, "count emitted memory references")
	)
	flag.Parse()

	cfg := tpcb.DefaultConfig()
	cfg.Branches = *branches
	cfg.AccountsPerBranch = *accounts
	cfg.BufferFrames = cfg.TotalBlocks() + 1000
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "tpcb:", err)
		os.Exit(2)
	}

	var em tpcb.Emitter = tpcb.NopEmitter{}
	var counter *tpcb.CountingEmitter
	if *count {
		counter = &tpcb.CountingEmitter{}
		em = counter
	}

	eng, err := tpcb.NewEngine(cfg, &tpcb.BumpAllocator{}, em, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tpcb:", err)
		os.Exit(2)
	}
	eng.Prewarm()

	sess := make([]*tpcb.Session, *sessions)
	for i := range sess {
		sess[i] = eng.NewSession(i, uint64(1)<<40+uint64(i)<<24)
	}
	rng := sim.NewRNG(*seed)

	for i := 0; i < *txns; i++ {
		s := sess[i%len(sess)]
		eng.ExecTxn(s, eng.DrawTxn(rng))
		// Group commit: flush once per round of sessions.
		if i%len(sess) == len(sess)-1 {
			target, _ := eng.LogWriterGather()
			eng.LogWriterComplete(target)
			for _, s2 := range sess {
				eng.PostCommit(s2)
			}
		}
		if i%4096 == 0 {
			eng.DBWriterScan(64)
		}
	}
	target, _ := eng.LogWriterGather()
	eng.LogWriterComplete(target)
	for _, s2 := range sess {
		eng.PostCommit(s2)
	}

	fmt.Printf("executed %d TPC-B transactions (seed %d, %d sessions; functional engine only)\n",
		*txns, *seed, *sessions)
	a, tl, bsum, d := eng.Balances()
	fmt.Printf("consistency: sum(accounts)=%d sum(tellers)=%d sum(branches)=%d sum(deltas)=%d\n", a, tl, bsum, d)
	if err := eng.CheckInvariants(); err != nil {
		fmt.Fprintln(os.Stderr, "INVARIANT VIOLATION:", err)
		os.Exit(1)
	}
	fmt.Println("TPC-B consistency conditions hold.")
	fmt.Printf("history rows: %d  buffer gets: %d  latch acquires: %d  redo bytes: %d\n",
		eng.HistoryLen(), eng.Pool().Stats.Gets, eng.Latches().Acquires, eng.Log().Stats.BytesWritten)
	if *txns > 0 {
		n := float64(*txns)
		fmt.Printf("logical work per txn: %.1f buffer gets, %.1f latch acquires, %.1f redo bytes\n",
			float64(eng.Pool().Stats.Gets)/n,
			float64(eng.Latches().Acquires)/n,
			float64(eng.Log().Stats.BytesWritten)/n)
		if counter != nil {
			fmt.Printf("emitted per txn: %.0f instructions, %.1f loads, %.1f stores\n",
				float64(counter.Instrs)/n,
				float64(counter.Loads)/n,
				float64(counter.Stores)/n)
		}
	}
}
