// Package oltpsim reproduces "Impact of Chip-Level Integration on
// Performance of OLTP Workloads" (Barroso, Gharachorloo, Nowatzyk, Verghese;
// HPCA-6, 2000) as a simulation library.
//
// The package is a facade over the internal packages:
//
//   - a protocol-level multiprocessor memory-system simulator
//     (set-associative caches, MESI directory coherence with 2-hop/3-hop
//     classification, remote access caches, victim buffers, in-order and
//     out-of-order processor timing models, the paper's Figure 3 latency
//     model and a constructive derivation of it);
//   - a functional TPC-B database engine standing in for Oracle 7.3.2
//     (buffer pool with cache-buffers-chains, latches, redo log with group
//     commit, undo segments, log-writer and database-writer daemons) whose
//     real transaction executions emit the simulated memory references;
//   - an OS model (scheduler with dedicated server processes, NUMA page
//     placement, code replication, syscall paths);
//   - experiment runners that regenerate every figure of the paper's
//     evaluation.
//
// Quick start:
//
//	cfg := oltpsim.FullIntegrationConfig(8, 2*oltpsim.MB, 8)
//	res := oltpsim.DefaultOptions().Run(cfg)
//	fmt.Print(res.Summary())
//
// Every run is a pure function of (configuration, seed), so independent
// configurations can be swept in parallel with bit-identical results:
//
//	results := oltpsim.DefaultOptions().RunMany(cfgs) // Workers=0 -> GOMAXPROCS
package oltpsim

import (
	"oltpsim/internal/core"
	"oltpsim/internal/dss"
	"oltpsim/internal/experiments"
	"oltpsim/internal/oltp"
	"oltpsim/internal/stats"
)

// Size units.
const (
	KB = core.KB
	MB = core.MB
)

// Config describes one simulated machine; see the field documentation in
// internal/core.
type Config = core.Config

// LatencyTable is the end-to-end latency vector of paper Figure 3.
type LatencyTable = core.LatencyTable

// CrossingModel derives latency tables from per-component costs.
type CrossingModel = core.CrossingModel

// RACConfig describes a remote access cache (paper Section 6).
type RACConfig = core.RACConfig

// OOOParams describes the out-of-order processor (paper Section 7).
type OOOParams = core.OOOParams

// IntegrationLevel enumerates the integration steps under study.
type IntegrationLevel = core.IntegrationLevel

// Integration levels.
const (
	ConservativeBase = core.ConservativeBase
	Base             = core.Base
	IntegratedL2     = core.IntegratedL2
	IntegratedL2MC   = core.IntegratedL2MC
	FullIntegration  = core.FullIntegration
)

// L2Tech selects the L2 array implementation.
type L2Tech = core.L2Tech

// L2 technologies.
const (
	OffChipSRAM = core.OffChipSRAM
	OnChipSRAM  = core.OnChipSRAM
	OnChipDRAM  = core.OnChipDRAM
)

// Result is one configuration's measured outcome.
type Result = stats.RunResult

// Options is the warmup/measure protocol. Options.RunMany fans a list of
// configurations across a bounded worker pool (Options.Workers goroutines;
// 0 means GOMAXPROCS, 1 forces serial) with results in input order,
// bit-identical to a serial sweep.
type Options = experiments.Options

// Figure is a reproduced paper figure (a titled series of Results).
type Figure = experiments.Figure

// WorkloadParams configures the TPC-B/Oracle-style workload.
type WorkloadParams = oltp.Params

// System is the assembled machine (CPUs, cache hierarchies, directory,
// latency model) driving a workload.
type System = core.System

// Workload is the interface a reference source must satisfy; the OLTP
// harness implements it.
type Workload = core.Workload

// System and workload constructors.
var (
	NewSystem             = core.NewSystem
	MustNewSystem         = core.MustNewSystem
	NewWorkload           = oltp.NewHarness
	MustNewWorkload       = oltp.MustNewHarness
	DefaultWorkloadParams = oltp.DefaultParams
)

// Configuration constructors (paper Figure 3 rows).
var (
	BaseConfig            = core.BaseConfig
	ConservativeConfig    = core.ConservativeConfig
	IntegratedL2Config    = core.IntegratedL2Config
	L2MCConfig            = core.L2MCConfig
	FullIntegrationConfig = core.FullConfig
	DefaultOOO            = core.DefaultOOO
)

// Latency model entry points.
var (
	Latencies            = core.Latencies
	FigureThree          = core.FigureThree
	DefaultCrossingModel = core.DefaultCrossingModel
)

// Measurement protocols.
var (
	DefaultOptions = experiments.DefaultOptions
	QuickOptions   = experiments.QuickOptions
)

// DSSParams configures the decision-support contrast workload (the paper's
// introduction: DSS is "relatively insensitive to memory system
// performance"; the extension benchmarks quantify the contrast).
type DSSParams = dss.Params

// DSS workload constructors.
var (
	NewDSSWorkload        = dss.NewHarness
	MustNewDSSWorkload    = dss.MustNewHarness
	DefaultDSSParams      = dss.DefaultParams
	CompareWithPaper      = experiments.Compare
	RenderPaperComparison = experiments.RenderComparison
)

// Figure runners: one per figure of the paper's evaluation section.
var (
	Fig05      = experiments.Fig05
	Fig06      = experiments.Fig06
	Fig07      = experiments.Fig07
	Fig08      = experiments.Fig08
	Fig10Uni   = experiments.Fig10Uni
	Fig10MP    = experiments.Fig10MP
	Fig11      = experiments.Fig11
	Fig12Small = experiments.Fig12Small
	Fig12Large = experiments.Fig12Large
	Fig13Uni   = experiments.Fig13Uni
	Fig13MP    = experiments.Fig13MP
)
