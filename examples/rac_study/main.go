// rac_study reproduces the paper's Section 6 investigation: does a large
// off-chip remote access cache (RAC) help a fully integrated chip? It shows
// the miss-mix shift (remote -> local, but more 3-hop), the hit-rate
// collapse with instruction replication and larger L2s, and the punchline
// that spending the RAC's tag area on 0.25 MB more L2 is the better trade.
//
//	go run ./examples/rac_study
package main

import (
	"fmt"

	"oltpsim"
)

func run(opt oltpsim.Options, l2 int64, assoc int, withRAC, repl bool, name string) oltpsim.Result {
	cfg := oltpsim.FullIntegrationConfig(8, l2, assoc)
	if withRAC {
		cfg.RAC = &oltpsim.RACConfig{SizeBytes: 8 * oltpsim.MB, Assoc: 8}
	}
	cfg.CodeReplication = repl
	cfg.Name = name
	return opt.Run(cfg)
}

func main() {
	opt := oltpsim.QuickOptions()
	opt.MeasureTxns = 800

	fmt.Println("RAC study: 8 processors, fully integrated chip, 8 MB 8-way memory-backed RAC")
	fmt.Println("\n1 MB 4-way on-chip L2 (paper Figure 11/12):")
	rows := []oltpsim.Result{
		run(opt, oltpsim.MB, 4, false, false, "NoRAC NoRepl"),
		run(opt, oltpsim.MB, 4, true, false, "RAC NoRepl"),
		run(opt, oltpsim.MB, 4, false, true, "NoRAC Repl"),
		run(opt, oltpsim.MB, 4, true, true, "RAC Repl"),
		run(opt, 5*oltpsim.MB/4, 4, false, true, "1.25M NoRAC"),
	}
	fmt.Printf("%-14s %10s %8s %8s %8s %8s %9s\n",
		"config", "cyc/txn", "miss/txn", "local", "2-hop", "3-hop", "RAC hit")
	for i := range rows {
		r := &rows[i]
		hit := "-"
		if r.RACProbes > 0 {
			hit = fmt.Sprintf("%5.1f%%", 100*r.RACHitRate())
		}
		fmt.Printf("%-14s %10.0f %8.1f %8d %8d %8d %9s\n",
			r.Name, r.CyclesPerTxn(), r.MissesPerTxn(),
			r.Miss.Local(), r.Miss.RemoteClean(), r.Miss.RemoteDirty(), hit)
	}

	fmt.Println("\n2 MB 8-way on-chip L2:")
	big := []oltpsim.Result{
		run(opt, 2*oltpsim.MB, 8, false, true, "NoRAC 2M8w"),
		run(opt, 2*oltpsim.MB, 8, true, true, "RAC 2M8w"),
	}
	for i := range big {
		r := &big[i]
		hit := "-"
		if r.RACProbes > 0 {
			hit = fmt.Sprintf("%5.1f%%", 100*r.RACHitRate())
		}
		fmt.Printf("%-14s %10.0f cycles/txn   RAC hit rate %s\n", r.Name, r.CyclesPerTxn(), hit)
	}

	fmt.Println("\nObservations to compare with the paper:")
	fmt.Println(" - the RAC converts 2-hop misses to local ones but *adds* 3-hop misses")
	fmt.Println("   (it retains dirty remote data longer);")
	fmt.Println(" - instruction replication already captures the instruction share;")
	fmt.Println(" - a 1.25 MB L2 (the area the RAC tags cost) beats 1 MB L2 + RAC;")
	fmt.Println(" - with a 2 MB 8-way L2 the RAC hit rate collapses and the RAC is moot.")
}
