// ooo_vs_inorder reproduces the paper's Section 7 comparison: a 4-wide
// out-of-order core gains ~1.4x on OLTP in absolute terms, but the
// *relative* benefit of chip-level integration is the same as for a
// single-issue in-order core — memory stalls dominated by dependent chains
// and SC stores do not yield to instruction-level parallelism.
//
//	go run ./examples/ooo_vs_inorder
package main

import (
	"fmt"

	"oltpsim"
)

func main() {
	opt := oltpsim.QuickOptions()
	opt.MeasureTxns = 800

	ooo := func(cfg oltpsim.Config, name string) oltpsim.Config {
		cfg.OutOfOrder = true
		cfg.OOO = oltpsim.DefaultOOO()
		cfg.Name = name
		return cfg
	}

	for _, procs := range []int{1, 8} {
		fmt.Printf("=== %d processor(s) ===\n", procs)
		baseIO := opt.Run(oltpsim.BaseConfig(procs, 8*oltpsim.MB, 1))
		baseOOO := opt.Run(ooo(oltpsim.BaseConfig(procs, 8*oltpsim.MB, 1), "Base OOO"))
		intIO := opt.Run(oltpsim.IntegratedL2Config(procs, 2*oltpsim.MB, 8, oltpsim.OnChipSRAM))
		intOOO := opt.Run(ooo(oltpsim.IntegratedL2Config(procs, 2*oltpsim.MB, 8, oltpsim.OnChipSRAM), "L2 OOO"))

		fmt.Printf("  in-order:     Base %7.0f -> L2 %7.0f cycles/txn (integration gain %.2fx)\n",
			baseIO.CyclesPerTxn(), intIO.CyclesPerTxn(), intIO.Speedup(&baseIO))
		fmt.Printf("  out-of-order: Base %7.0f -> L2 %7.0f cycles/txn (integration gain %.2fx)\n",
			baseOOO.CyclesPerTxn(), intOOO.CyclesPerTxn(), intOOO.Speedup(&baseOOO))
		fmt.Printf("  OOO absolute gain over in-order at Base: %.2fx (paper: ~1.4x uni, ~1.3x MP)\n\n",
			baseOOO.Speedup(&baseIO))
	}
	fmt.Println("The two integration-gain columns should match: out-of-order execution")
	fmt.Println("does not change what chip-level integration buys on OLTP.")
}
