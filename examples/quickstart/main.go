// Quickstart: simulate OLTP on a fully integrated chip (Alpha 21364-like)
// and on the off-chip Base design, and report the speedup — the paper's
// headline experiment in a dozen lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"oltpsim"
)

func main() {
	opt := oltpsim.QuickOptions() // scaled-down database; fast
	opt.MeasureTxns = 800

	base := opt.Run(oltpsim.BaseConfig(8, 8*oltpsim.MB, 1))
	full := opt.Run(oltpsim.FullIntegrationConfig(8, 2*oltpsim.MB, 8))

	fmt.Println("Base (everything off-chip, 8 MB direct-mapped L2):")
	fmt.Print(base.Summary())
	fmt.Println("\nFull integration (on-chip 2 MB 8-way L2 + MC + CC/NR):")
	fmt.Print(full.Summary())

	fmt.Printf("\nchip-level integration speedup: %.2fx (paper reports ~1.4x)\n",
		full.Speedup(&base))
}
