// capacity_vs_associativity reproduces the paper's most surprising result
// interactively: a small, highly associative on-chip L2 out-caches a much
// larger direct-mapped off-chip L2 on OLTP, because the big cache's
// advantage was mostly the removal of conflict misses (paper Sections 3 and
// 8). The example sweeps organizations and prints misses per transaction.
//
//	go run ./examples/capacity_vs_associativity
package main

import (
	"fmt"

	"oltpsim"
)

func main() {
	opt := oltpsim.QuickOptions()
	opt.WarmupTxns = 1500
	opt.MeasureTxns = 800

	fmt.Println("OLTP uniprocessor, off-chip L2 organizations (misses per transaction):")
	fmt.Printf("%10s %12s %12s\n", "size", "1-way", "4-way")
	// All eight organizations are independent; sweep them through the worker
	// pool in one shot and read the results back in input order.
	sizes := []int64{1, 2, 4, 8}
	var cfgs []oltpsim.Config
	for _, size := range sizes {
		cfgs = append(cfgs,
			oltpsim.BaseConfig(1, size*oltpsim.MB, 1),
			oltpsim.BaseConfig(1, size*oltpsim.MB, 4))
	}
	results := opt.RunMany(cfgs)
	var best4 float64
	var dm8 float64
	for i, size := range sizes {
		dm := results[2*i].MissesPerTxn()
		a4 := results[2*i+1].MissesPerTxn()
		fmt.Printf("%9dM %12.1f %12.1f\n", size, dm, a4)
		if size == 8 {
			dm8 = dm
		}
		if size == 2 {
			best4 = a4
		}
	}

	fmt.Printf("\n2 MB 4-way: %.1f misses/txn vs 8 MB direct-mapped: %.1f misses/txn\n", best4, dm8)
	if best4 < dm8 {
		fmt.Println("=> the 4x smaller associative cache wins, as the paper found:")
		fmt.Println("   most misses removed by giant direct-mapped caches are conflict misses.")
	}

	// Make the conflict argument explicit with the miss classifier.
	cfg := oltpsim.BaseConfig(1, 8*oltpsim.MB, 1)
	cfg.Classify = true
	h := oltpsim.MustNewWorkload(opt.Params(cfg))
	sys := oltpsim.MustNewSystem(cfg, h)
	sys.Run(opt.WarmupTxns, opt.MeasureTxns)
	cl := sys.Classifier()
	total := cl.Total()
	if total > 0 {
		fmt.Printf("\n8M direct-mapped miss classification: cold %.0f%%, capacity %.0f%%, conflict %.0f%%\n",
			100*float64(cl.Counts[0])/float64(total),
			100*float64(cl.Counts[1])/float64(total),
			100*float64(cl.Counts[2])/float64(total))
	}
}
