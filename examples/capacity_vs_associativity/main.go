// capacity_vs_associativity reproduces the paper's most surprising result
// interactively: a small, highly associative on-chip L2 out-caches a much
// larger direct-mapped off-chip L2 on OLTP, because the big cache's
// advantage was mostly the removal of conflict misses (paper Sections 3 and
// 8). The example sweeps organizations and prints misses per transaction.
//
//	go run ./examples/capacity_vs_associativity
package main

import (
	"fmt"

	"oltpsim"
)

func main() {
	opt := oltpsim.QuickOptions()
	opt.WarmupTxns = 1500
	opt.MeasureTxns = 800

	fmt.Println("OLTP uniprocessor, off-chip L2 organizations (misses per transaction):")
	fmt.Printf("%10s %12s %12s\n", "size", "1-way", "4-way")
	type row struct{ dm, a4 float64 }
	var best4 float64
	var dm8 float64
	for _, size := range []int64{1, 2, 4, 8} {
		r := row{}
		res := opt.Run(oltpsim.BaseConfig(1, size*oltpsim.MB, 1))
		r.dm = res.MissesPerTxn()
		res = opt.Run(oltpsim.BaseConfig(1, size*oltpsim.MB, 4))
		r.a4 = res.MissesPerTxn()
		fmt.Printf("%9dM %12.1f %12.1f\n", size, r.dm, r.a4)
		if size == 8 {
			dm8 = r.dm
		}
		if size == 2 {
			best4 = r.a4
		}
	}

	fmt.Printf("\n2 MB 4-way: %.1f misses/txn vs 8 MB direct-mapped: %.1f misses/txn\n", best4, dm8)
	if best4 < dm8 {
		fmt.Println("=> the 4x smaller associative cache wins, as the paper found:")
		fmt.Println("   most misses removed by giant direct-mapped caches are conflict misses.")
	}

	// Make the conflict argument explicit with the miss classifier.
	cfg := oltpsim.BaseConfig(1, 8*oltpsim.MB, 1)
	cfg.Classify = true
	h := oltpsim.MustNewWorkload(opt.Params(cfg))
	sys := oltpsim.MustNewSystem(cfg, h)
	sys.Run(opt.WarmupTxns, opt.MeasureTxns)
	cl := sys.Classifier()
	total := cl.Total()
	if total > 0 {
		fmt.Printf("\n8M direct-mapped miss classification: cold %.0f%%, capacity %.0f%%, conflict %.0f%%\n",
			100*float64(cl.Counts[0])/float64(total),
			100*float64(cl.Counts[1])/float64(total),
			100*float64(cl.Counts[2])/float64(total))
	}
}
